// Command atomicswap demonstrates cross-blockchain interoperation (Section 4.6 of the
// paper, Herlihy's HTLC construction). Alice trades her asset on chain
// one for Bob's on chain two with no intermediary; the hash-time locks
// make cheating pointless — we run the honest exchange and then an
// aborted one.
//
//	go run ./examples/atomicswap
package main

import (
	"fmt"
	"log"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/swap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("atomicswap: ", err)
	}
}

func run() error {
	alice := cryptoutil.KeyFromSeed([]byte("alice")).Address()
	bob := cryptoutil.KeyFromSeed([]byte("bob")).Address()
	t0 := time.Unix(0, 0)

	fmt.Println("--- scenario 1: both cooperate ---")
	chain1, chain2 := newChains(alice, bob)
	secret := []byte("only alice knows this")
	lock := swap.HashLock(secret)

	h1, err := chain1.Lock(alice, bob, 100, lock, t0.Add(2*time.Hour))
	if err != nil {
		return err
	}
	fmt.Println("alice locked 100 on chain-1 (deadline T+2h)")
	h2, err := chain2.Lock(bob, alice, 100, lock, t0.Add(time.Hour))
	if err != nil {
		return err
	}
	fmt.Println("bob locked 100 on chain-2 with the same hash (deadline T+1h)")

	if err := chain2.Claim(h2.ID, secret, t0.Add(10*time.Minute)); err != nil {
		return err
	}
	fmt.Println("alice claimed on chain-2, revealing the secret on-chain")
	revealed, _ := chain2.Get(h2.ID)
	if err := chain1.Claim(h1.ID, revealed.Preimage, t0.Add(20*time.Minute)); err != nil {
		return err
	}
	fmt.Println("bob read the secret from chain-2 and claimed on chain-1")
	report(chain1, chain2, alice, bob)

	fmt.Println("\n--- scenario 2: alice walks away ---")
	chain1, chain2 = newChains(alice, bob)
	h1, err = chain1.Lock(alice, bob, 100, lock, t0.Add(2*time.Hour))
	if err != nil {
		return err
	}
	h2, err = chain2.Lock(bob, alice, 100, lock, t0.Add(time.Hour))
	if err != nil {
		return err
	}
	fmt.Println("both locked; alice never claims")
	if err := chain2.Refund(h2.ID, t0.Add(61*time.Minute)); err != nil {
		return err
	}
	if err := chain1.Refund(h1.ID, t0.Add(121*time.Minute)); err != nil {
		return err
	}
	fmt.Println("after the deadlines both refunded — nobody lost anything")
	report(chain1, chain2, alice, bob)
	return nil
}

func newChains(alice, bob cryptoutil.Address) (*managerPair, *managerPair) {
	st1, st2 := state.New(), state.New()
	st1.Credit(alice, 100)
	st2.Credit(bob, 100)
	return &managerPair{Manager: swap.NewManager(st1, "one"), st: st1},
		&managerPair{Manager: swap.NewManager(st2, "two"), st: st2}
}

type managerPair struct {
	*swap.Manager
	st *state.State
}

func report(c1, c2 *managerPair, alice, bob cryptoutil.Address) {
	o := swap.Outcome{
		AliceGotAsset2: c2.st.Balance(alice) == 100,
		BobGotAsset1:   c1.st.Balance(bob) == 100,
		AliceRefunded:  c1.st.Balance(alice) == 100,
		BobRefunded:    c2.st.Balance(bob) == 100,
	}
	fmt.Printf("outcome: alice-got-asset2=%v bob-got-asset1=%v atomic=%v\n",
		o.AliceGotAsset2, o.BobGotAsset1, o.Atomic())
}
