// Command crowdfunding runs a Blockchain 2.0 ÐApp (Section 3.2 of the paper). A
// founder deploys the crowdfund contract on a mining network, backers
// contribute before the deadline, and the founder claims once the goal
// is met — every step a gas-paying transaction, every read a free
// constant query.
//
//	go run ./examples/crowdfunding
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/contract"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/state"
	"dcsledger/internal/vm"
	"dcsledger/internal/wallet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("crowdfunding: ", err)
	}
}

func run() error {
	founder := wallet.FromSeed("founder")
	backers := []*wallet.Wallet{
		wallet.FromSeed("backer-1"),
		wallet.FromSeed("backer-2"),
		wallet.FromSeed("backer-3"),
	}
	alloc := map[cryptoutil.Address]uint64{founder.Address(): 10_000}
	for _, b := range backers {
		alloc[b.Address()] = 10_000
	}

	cluster, err := node.NewCluster(node.ClusterConfig{
		N: 4,
		Engine: func(i int, key *cryptoutil.KeyPair) consensus.Engine {
			return pow.New(pow.Config{
				TargetInterval:    5 * time.Second,
				InitialDifficulty: 128,
				HashRate:          25.6,
			}, rand.New(rand.NewSource(int64(i)+70)))
		},
		ForkChoice: func() consensus.ForkChoice { return forkchoice.LongestChain{} },
		Executor:   func() state.Executor { return contract.NewExecutor(contract.NewRegistry()) },
		Alloc:      alloc,
		Rewards:    incentive.Schedule{InitialReward: 10},
		Seed:       2,
	})
	if err != nil {
		return err
	}
	cluster.Start()
	submit := func(w *wallet.Wallet, build func() error) error {
		if err := build(); err != nil {
			return err
		}
		cluster.Sim.RunFor(30 * time.Second) // a few blocks
		return nil
	}
	n0 := cluster.Nodes[0]

	// 1. Deploy the crowdfund ÐApp.
	deploy, err := founder.Deploy(contract.DeployPayload("crowdfund"), 0, 100, 100_000)
	if err != nil {
		return err
	}
	if err := submit(founder, func() error { return n0.SubmitTx(deploy) }); err != nil {
		return err
	}
	contractAddr := contractAddress(n0, deploy.ID())
	fmt.Printf("contract deployed at %s\n", contractAddr.Short())

	// 2. Initialize: goal 1000, deadline 10 virtual minutes from now.
	deadline := cluster.Sim.Now().Add(10 * time.Minute).UnixNano()
	initTx, err := founder.Invoke(contractAddr,
		contract.EncodeCall("init", "1000", strconv.FormatInt(deadline, 10)), 0, 50, 100_000)
	if err != nil {
		return err
	}
	if err := submit(founder, func() error { return n0.SubmitTx(initTx) }); err != nil {
		return err
	}

	// 3. Backers contribute value-carrying invocations.
	for i, b := range backers {
		amount := uint64(400 + 100*i)
		tx, err := b.Invoke(contractAddr, contract.EncodeCall("contribute"), amount, 20, 100_000)
		if err != nil {
			return err
		}
		if err := submit(b, func() error { return cluster.Nodes[i%4].SubmitTx(tx) }); err != nil {
			return err
		}
		fmt.Printf("backer %d contributed %d; raised so far: %s\n", i+1, amount, query(n0, contractAddr, "raised"))
	}

	// 4. Wait out the deadline, then the founder claims.
	cluster.Sim.RunFor(10 * time.Minute)
	before := n0.Balance(founder.Address())
	claim, err := founder.Invoke(contractAddr, contract.EncodeCall("claim"), 0, 20, 100_000)
	if err != nil {
		return err
	}
	if err := submit(founder, func() error { return n0.SubmitTx(claim) }); err != nil {
		return err
	}
	cluster.Stop()
	cluster.Sim.RunFor(time.Minute)
	fmt.Printf("goal %s reached with %s raised; founder claimed %+d\n",
		query(n0, contractAddr, "goal"), query(n0, contractAddr, "raised"),
		int64(n0.Balance(founder.Address()))-int64(before))
	fmt.Printf("constant queries cost no gas — the paper's free say() call (§2.5)\n")
	return nil
}

// contractAddress finds the deploy receipt's contract address by
// re-deriving it from the transaction (deterministic derivation).
func contractAddress(n *node.Node, deployID cryptoutil.Hash) cryptoutil.Address {
	bh, idx, ok := n.Chain().FindTx(deployID)
	if !ok {
		log.Fatal("deploy tx not committed — mine longer")
	}
	b, _ := n.Tree().Get(bh)
	tx := b.Txs[idx]
	return vm.ContractAddress(tx.From, tx.Nonce)
}

func query(n *node.Node, addr cryptoutil.Address, fn string, args ...string) string {
	ex := contract.NewExecutor(contract.NewRegistry())
	out, err := ex.Query(n.State(), addr, cryptoutil.ZeroAddress, fn, args...)
	if err != nil {
		return "(" + err.Error() + ")"
	}
	return string(out)
}
