// Command quickstart spins up a simulated 8-peer proof-of-work network, moves
// money, and verifies a payment with an SPV light client — the complete
// Figure-1 architecture in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/wallet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("quickstart: ", err)
	}
}

func run() error {
	// 1. Two wallets; alice is funded at genesis.
	alice := wallet.FromSeed("alice")
	bob := wallet.FromSeed("bob")

	// 2. An 8-peer PoW network on a virtual clock: a 10-second block
	// interval simulates in milliseconds of wall time.
	cluster, err := node.NewCluster(node.ClusterConfig{
		N: 8,
		Engine: func(i int, key *cryptoutil.KeyPair) consensus.Engine {
			return pow.New(pow.Config{
				TargetInterval:    10 * time.Second,
				InitialDifficulty: 256,
				HashRate:          25.6,
			}, rand.New(rand.NewSource(int64(i)+7)))
		},
		ForkChoice: func() consensus.ForkChoice { return forkchoice.LongestChain{} },
		Alloc:      map[cryptoutil.Address]uint64{alice.Address(): 10_000},
		Rewards:    incentive.Schedule{InitialReward: 50},
		Seed:       1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: %d peers, genesis %s\n", len(cluster.Nodes), cluster.Genesis.Hash().Short())

	// 3. Submit a few payments at different peers and let the network
	// mine for five virtual minutes.
	var lastTx cryptoutil.Hash
	for i := 0; i < 3; i++ {
		tx, err := alice.Transfer(bob.Address(), 100, 2)
		if err != nil {
			return err
		}
		if err := cluster.Nodes[i].SubmitTx(tx); err != nil {
			return err
		}
		lastTx = tx.ID()
	}
	cluster.Start()
	cluster.Sim.RunFor(5 * time.Minute)
	cluster.Stop()
	cluster.Sim.RunFor(30 * time.Second)

	n0 := cluster.Nodes[0]
	fmt.Printf("chain: height %d, %d blocks total, fork rate %.3f\n",
		n0.Chain().Height(), n0.Tree().Len()-1, cluster.ForkRate())
	fmt.Printf("consistency: common prefix %d across all peers\n", cluster.ConsistentPrefix())
	fmt.Printf("balances: alice=%d bob=%d\n", n0.Balance(alice.Address()), n0.Balance(bob.Address()))

	// 4. SPV: a light client verifies bob's last payment from headers
	// alone (Section 2.2 of the paper).
	light := wallet.NewSPVClient(cluster.Genesis.Header)
	if err := light.AddHeaders(n0.Chain().Headers(1, 1<<20)); err != nil {
		return err
	}
	proof, err := wallet.ProveTx(n0.Chain(), lastTx)
	if err != nil {
		return err
	}
	conf, err := light.VerifyTx(proof)
	if err != nil {
		return err
	}
	fmt.Printf("spv: light client stores %d bytes of headers and verified tx %s with %d confirmations (proof: %d bytes)\n",
		light.StorageBytes(), lastTx.Short(), conf, proof.Size())
	return nil
}
