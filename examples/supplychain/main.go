// Command supplychain runs a Blockchain 3.0 consortium deployment (Section 3.3)
// touching every layer of the paper's stack (Figure 3):
//
//   - Modeling layer: the farm-to-shelf workflow as a state machine,
//     compiled to a contract.
//
//   - Contract layer: the compiled workflow enforced on-chain.
//
//   - System layer: a solo ordering service with PBFT committing peers
//     (the Hyperledger pattern of Section 2.4) — no PoW, no forks.
//
//   - Data layer: bulky certificates off-chain, hash anchors on-chain.
//
//   - Network/privacy: a channel keeping pricing data inside the
//     supplier–buyer boundary (Section 5.3).
//
//     go run ./examples/supplychain
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"dcsledger/internal/channel"
	"dcsledger/internal/consensus/ordering"
	"dcsledger/internal/consensus/pbft"
	"dcsledger/internal/contract"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
	"dcsledger/internal/store"
	"dcsledger/internal/types"
	"dcsledger/internal/usecase"
	"dcsledger/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("supplychain: ", err)
	}
}

// fire is the operation the consortium orders and executes: one
// workflow action by one actor.
type fire struct {
	Actor  string `json:"actor"`
	Action string `json:"action"`
}

func run() error {
	// 0. Application layer: fill the paper's §5.1 template and let the
	// advisor confirm the platform choice.
	rec, err := usecase.Advise(usecase.UseCase{
		Name:   "farm-to-shelf",
		Intent: "trace produce across competing companies",
		Actors: []usecase.Actor{
			{Name: "supplier", Role: usecase.RoleSubmitter, Known: true, Count: 10},
			{Name: "peers", Role: usecase.RoleMaintainer, Known: true, Trusted: false, Count: 4},
		},
		DataObjects: []usecase.DataObject{
			{Name: "handover workflow", Executable: true},
			{Name: "quality certificate", Bulky: true},
			{Name: "pricing", Confidential: true},
		},
		Performance: usecase.Performance{ExpectedTPS: 500, MaxLatencySec: 2},
	})
	if err != nil {
		return err
	}
	fmt.Printf("advisor: %s ledger, %s, balance %s (generation %s)\n\n",
		rec.Ledger, rec.Consensus, rec.Balance, rec.Generation)

	// 1. Modeling layer: the workflow, validated and compiled.
	actors := map[string]*cryptoutil.KeyPair{
		"supplier": cryptoutil.KeyFromSeed([]byte("supplier")),
		"buyer":    cryptoutil.KeyFromSeed([]byte("buyer")),
		"carrier":  cryptoutil.KeyFromSeed([]byte("carrier")),
	}
	model := &workflow.Model{
		Name:    "farm-to-shelf",
		States:  []string{"submitted", "validated", "agreed", "produced", "shipped", "received"},
		Initial: "submitted",
		Transitions: []workflow.Transition{
			{From: "submitted", To: "validated", Action: "validate", Role: "supplier"},
			{From: "validated", To: "agreed", Action: "agree", Role: "buyer"},
			{From: "agreed", To: "produced", Action: "produce", Role: "supplier"},
			{From: "produced", To: "shipped", Action: "ship", Role: "carrier"},
			{From: "shipped", To: "received", Action: "receive", Role: "buyer"},
		},
		Roles: map[string]cryptoutil.Address{
			"supplier": actors["supplier"].Address(),
			"buyer":    actors["buyer"].Address(),
			"carrier":  actors["carrier"].Address(),
		},
	}
	process, err := model.Compile()
	if err != nil {
		return err
	}
	fmt.Println("modeling layer: workflow validated and compiled to a contract")

	// 2. System layer: solo orderer + 4 PBFT committing peers, each
	// executing the ordered actions against its own state.
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 3, p2p.WithLatency(10*time.Millisecond))
	orderer := ordering.NewSolo(ordering.BatchConfig{MaxTxs: 8, Timeout: 200 * time.Millisecond}, sim)
	processAddr := cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("process/42")))

	peerIDs := []p2p.NodeID{"org1", "org2", "org3", "org4"}
	states := make(map[p2p.NodeID]*state.State, len(peerIDs))
	for _, id := range peerIDs {
		id := id
		st := state.New()
		states[id] = st
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			return err
		}
		committer := ordering.NewCommitter(func(b ordering.Batch) {
			for _, tx := range b.Txs {
				var f fire
				if json.Unmarshal(tx.Data, &f) != nil {
					continue
				}
				ctx := &contract.Context{State: st, Self: processAddr, Caller: actors[f.Actor].Address()}
				if _, err := process.Invoke(ctx, "fire", []string{f.Action}); err != nil && id == "org1" {
					fmt.Printf("  [%s rejected: %v]\n", f.Action, err)
				}
			}
		})
		pbftNode, err := pbft.NewNode(id, peerIDs, ep, sim, pbft.Config{ViewTimeout: 5 * time.Second}, committer.Apply)
		if err != nil {
			return err
		}
		committer.Attach(pbftNode)
		mux.Handle(pbft.MsgPrefix, pbftNode.HandleMessage)
		orderer.Subscribe(committer.OnBatch)
	}
	fmt.Println("system layer: solo ordering + 4 PBFT committing peers (no forks possible)")

	// 3. Drive the workflow — including one out-of-order attempt the
	// contract must refuse.
	steps := []fire{
		{Actor: "carrier", Action: "ship"}, // too early: rejected on-chain
		{Actor: "supplier", Action: "validate"},
		{Actor: "buyer", Action: "agree"},
		{Actor: "supplier", Action: "produce"},
		{Actor: "carrier", Action: "ship"},
		{Actor: "buyer", Action: "receive"},
	}
	for i, f := range steps {
		data, err := json.Marshal(f)
		if err != nil {
			return err
		}
		tx := &types.Transaction{Kind: types.TxInvoke, To: processAddr, Nonce: uint64(i), Data: data}
		if err := orderer.Submit(tx); err != nil {
			return err
		}
	}
	sim.RunFor(10 * time.Second)

	// All peers agree on the final workflow state.
	for _, id := range peerIDs {
		ctx := &contract.Context{State: states[id], Self: processAddr}
		got, err := process.Invoke(ctx, "state", nil)
		if err != nil {
			return err
		}
		fmt.Printf("  peer %s: process state = %s\n", id, got)
	}

	// 4. Data layer: the quality certificate lives off-chain; only its
	// anchor would go in a transaction.
	off := store.NewOffChainStore()
	cert := []byte("ISO-22000 audit report, 4 MB of PDF in real life")
	anchor := off.Put(cert)
	fmt.Printf("data layer: certificate stored off-chain, %d-byte anchor on-chain (%s)\n",
		len(anchor.Bytes()), anchor.Short())

	// 5. Privacy: pricing stays in a supplier–buyer channel the carrier
	// cannot read.
	hub := channel.NewHub()
	priceChan, err := hub.Create("pricing", []cryptoutil.Address{
		actors["supplier"].Address(), actors["buyer"].Address(),
	})
	if err != nil {
		return err
	}
	if _, err := priceChan.Append(actors["supplier"].Address(), []byte("unit price: 3.20"), sim.Now().UnixNano()); err != nil {
		return err
	}
	if _, err := priceChan.Read(actors["carrier"].Address()); err != nil {
		fmt.Printf("privacy: carrier read denied as required (%v)\n", err)
	}
	return nil
}
