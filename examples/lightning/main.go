// Command lightning demonstrates off-chain payment channels (Sections 5.2/5.4 of the
// paper). Two on-chain transactions bracket thousands of instant
// off-chain payments, a fraud attempt is defeated by the challenge
// window, and a multi-hop HTLC payment crosses a small channel graph.
//
//	go run ./examples/lightning
package main

import (
	"fmt"
	"log"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/payment"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("lightning: ", err)
	}
}

func run() error {
	st := state.New()
	sim := simclock.NewSimulator()
	alice := cryptoutil.KeyFromSeed([]byte("alice"))
	bob := cryptoutil.KeyFromSeed([]byte("bob"))
	carol := cryptoutil.KeyFromSeed([]byte("carol"))
	for _, k := range []*cryptoutil.KeyPair{alice, bob, carol} {
		st.Credit(k.Address(), 100_000)
	}

	// 1. Open: the single on-chain footprint.
	ch, err := payment.Open(st, alice, bob, 5_000, 5_000)
	if err != nil {
		return err
	}
	fmt.Printf("channel open: alice and bob locked 5000 each (on-chain tx #1)\n")

	// 2. Thousands of instant off-chain payments.
	start := time.Now()
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := ch.Pay(i%3 != 0, 1); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	a, b := ch.Balances()
	fmt.Printf("off-chain: %d payments in %s (%.0f tps), balances now %d/%d\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), a, b)

	// 3. Fraud attempt: alice tries to close with an old state; bob
	// challenges inside the window and the latest state settles.
	stale, err := ch.Pay(true, 100)
	if err != nil {
		return err
	}
	latest, err := ch.Pay(true, 900)
	if err != nil {
		return err
	}
	if err := ch.UnilateralClose(sim, stale, time.Hour); err != nil {
		return err
	}
	fmt.Println("fraud: alice filed a stale state for unilateral close")
	if err := ch.Challenge(sim, latest); err != nil {
		return err
	}
	fmt.Println("defense: bob presented the newer co-signed state inside the challenge window")
	sim.RunFor(2 * time.Hour)
	if err := ch.SettleDispute(st, sim); err != nil {
		return err
	}
	fmt.Printf("settled (on-chain tx #2): alice=%d bob=%d\n",
		st.Balance(alice.Address()), st.Balance(bob.Address()))

	// 4. Multi-hop: alice pays carol through bob with one HTLC secret.
	ab, err := payment.Open(st, alice, bob, 2_000, 2_000)
	if err != nil {
		return err
	}
	bc, err := payment.Open(st, bob, carol, 2_000, 2_000)
	if err != nil {
		return err
	}
	secret := []byte("invoice-58291")
	if err := payment.RoutePayment([]*payment.Channel{ab, bc}, []bool{true, true},
		750, secret, payment.HashLock(secret)); err != nil {
		return err
	}
	_, got := bc.Balances()
	fmt.Printf("multi-hop: alice → bob → carol moved 750 atomically; carol's channel balance %d\n", got)
	return nil
}
