module dcsledger

go 1.22
