package dcsledger

import (
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the public API exactly as README's
// quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	alice := NewWallet("alice")
	bob := NewWallet("bob")
	cluster, err := NewPoWNetwork(4, map[Address]uint64{alice.Address(): 10_000})
	if err != nil {
		t.Fatalf("NewPoWNetwork: %v", err)
	}
	tx, err := alice.Transfer(bob.Address(), 500, 2)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if err := cluster.Nodes[0].SubmitTx(tx); err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	cluster.Start()
	cluster.Sim.RunFor(3 * time.Minute)
	cluster.Stop()
	cluster.Sim.RunFor(30 * time.Second)

	if got := cluster.Nodes[0].Balance(bob.Address()); got != 500 {
		t.Fatalf("bob = %d, want 500", got)
	}

	// SPV through the facade.
	light := NewSPVClient(cluster.Genesis.Header)
	if err := light.AddHeaders(cluster.Nodes[0].Chain().Headers(1, 1<<20)); err != nil {
		t.Fatalf("AddHeaders: %v", err)
	}
	proof, err := ProveTx(cluster.Nodes[0], tx.ID())
	if err != nil {
		t.Fatalf("ProveTx: %v", err)
	}
	if _, err := light.VerifyTx(proof); err != nil {
		t.Fatalf("VerifyTx: %v", err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) != 18 {
		t.Fatalf("experiments = %d, want 18", len(ids))
	}
	table, err := RunExperiment("E11", 0.1)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if table.ID != "E11" || len(table.Rows) == 0 {
		t.Fatalf("table = %+v", table)
	}
	if _, err := RunExperiment("E99", 1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFacadeAdvise(t *testing.T) {
	rec, err := Advise(UseCase{})
	if err == nil {
		t.Fatalf("incomplete template must error, got %+v", rec)
	}
}
