package dcsledger

// Benchmarks, one family per experiment in DESIGN.md's index, plus the
// micro-benchmarks for the consensus-critical primitives. The experiment
// benchmarks execute the corresponding EXPERIMENTS.md runner at a small
// scale per iteration; run `go run ./cmd/dcsbench -e all` for the
// full-scale tables.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/bench"
	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/iavl"
	"dcsledger/internal/incentive"
	"dcsledger/internal/merkle"
	"dcsledger/internal/mpt"
	"dcsledger/internal/node"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/vm"
)

// --- micro-benchmarks: the primitives every table rests on ---

func BenchmarkSHA256Header(b *testing.B) {
	hdr := types.BlockHeader{Height: 1, Time: 2, Difficulty: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr.Nonce = uint64(i)
		_ = hdr.Hash()
	}
}

func BenchmarkTxSign(b *testing.B) {
	k := cryptoutil.KeyFromSeed([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := types.NewTransfer(k.Address(), cryptoutil.ZeroAddress, 1, 1, uint64(i))
		if err := tx.Sign(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxVerify(b *testing.B) {
	k := cryptoutil.KeyFromSeed([]byte("bench"))
	tx := types.NewTransfer(k.Address(), cryptoutil.ZeroAddress, 1, 1, 0)
	if err := tx.Sign(k); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tx.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleRoot1k(b *testing.B) {
	leaves := make([]cryptoutil.Hash, 1024)
	for i := range leaves {
		leaves[i] = cryptoutil.HashUint64("bench", uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = merkle.Root(leaves)
	}
}

func BenchmarkMPTInsert(b *testing.B) {
	b.ReportAllocs()
	tr := mpt.New()
	for i := 0; i < b.N; i++ {
		tr = tr.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
}

func BenchmarkIAVLInsert(b *testing.B) {
	b.ReportAllocs()
	tr := iavl.New()
	for i := 0; i < b.N; i++ {
		tr = tr.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
}

func BenchmarkPoWSolve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr := types.BlockHeader{Height: uint64(i), Difficulty: 1024}
		if _, err := pow.Solve(&hdr, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMExecute(b *testing.B) {
	code := vm.MustAssemble(`
		PUSH 0
		SLOAD
		PUSH 1
		ADD
		PUSH 0
		SWAP
		SSTORE
		STOP
	`)
	st := state.New()
	env := &vm.Env{State: st, GasLimit: 1 << 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Execute(code, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateCommit(b *testing.B) {
	st := state.New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		var a cryptoutil.Address
		rng.Read(a[:])
		st.Credit(a, uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = st.Commit()
	}
}

func BenchmarkBlockEncodeDecode(b *testing.B) {
	k := cryptoutil.KeyFromSeed([]byte("bench"))
	txs := make([]*types.Transaction, 64)
	for i := range txs {
		txs[i] = types.NewTransfer(k.Address(), cryptoutil.ZeroAddress, 1, 1, uint64(i))
		if err := txs[i].Sign(k); err != nil {
			b.Fatal(err)
		}
	}
	blk := types.NewBlock(cryptoutil.ZeroHash, 1, 0, k.Address(), txs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := types.DecodeBlock(blk.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateCopy shows the copy-on-write layer cost: Copy is O(1)
// regardless of how much state the parent holds.
func BenchmarkStateCopy(b *testing.B) {
	st := state.New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		var a cryptoutil.Address
		rng.Read(a[:])
		st.Credit(a, uint64(i)+1)
		st.SetStorage(a, []byte("slot"), []byte("value"))
	}
	var target cryptoutil.Address
	rng.Read(target[:])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := st.Copy()
		cp.Credit(target, 1)
	}
}

// BenchmarkConnectBlock measures full block validation and connection at
// a node — batched signature verification, state apply on a
// copy-on-write layer, commit, and fork-choice update. Block
// construction and signing happen off the timer; every iteration uses
// freshly signed transactions so verification is actually measured
// (the signature memo would otherwise short-circuit it).
//
// The hot variant sends every transfer to the proposer with interleaved
// senders — worst case for the parallel executor (everything replays).
// The low-conflict variants group each sender's transactions
// contiguously with disjoint recipients, so at exec-workers > 1 the
// speculative lanes all merge; the speedup is bounded by available
// cores (a 1-CPU runner shows ~1x regardless of width).
func BenchmarkConnectBlock(b *testing.B) {
	b.Run("hot-recipient-64tx", func(b *testing.B) {
		benchConnectBlock(b, 64, 8, 0, false)
	})
	for _, workers := range []int{0, 2, 8} {
		workers := workers
		b.Run(fmt.Sprintf("low-conflict-256tx-workers-%d", workers), func(b *testing.B) {
			benchConnectBlock(b, 256, 32, workers, true)
		})
	}
}

func benchConnectBlock(b *testing.B, txsPerBlock, senderCount, execWorkers int, lowConflict bool) {
	const blocksPerIter = 4
	miner := cryptoutil.KeyFromSeed([]byte("bench-connect-miner"))
	senders := make([]*cryptoutil.KeyPair, senderCount)
	alloc := make(map[cryptoutil.Address]uint64, len(senders))
	for i := range senders {
		senders[i] = cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("bench-sender-%d", i)))
		alloc[senders[i].Address()] = 1 << 40
	}
	genesis := node.NewGenesis("bench-connect")
	rewards := incentive.Schedule{InitialReward: 50}
	engine := func(seed int64) consensus.Engine {
		return pow.New(pow.Config{
			TargetInterval:    10 * time.Second,
			InitialDifficulty: pow.MinDifficulty,
			RetargetWindow:    1 << 32,
			HashRate:          1,
		}, rand.New(rand.NewSource(seed)))
	}
	newNode := func() *node.Node {
		n, err := node.New(node.Config{
			ID:             "bench",
			Key:            miner,
			Engine:         engine(1),
			ForkChoice:     forkchoice.LongestChain{},
			Genesis:        genesis,
			Alloc:          alloc,
			Rewards:        rewards,
			Clock:          simclock.NewSimulator(),
			StateRetention: 64,
			ExecWorkers:    execWorkers,
		})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}

	// buildChain seals blocksPerIter transfer-filled blocks on genesis.
	buildChain := func(n *node.Node) []*types.Block {
		seal := engine(2)
		gst, ok := n.StateAt(genesis.Hash())
		if !ok {
			b.Fatal("no genesis state")
		}
		st := gst.Copy()
		nonces := make(map[cryptoutil.Address]uint64, len(senders))
		parent := genesis
		blocks := make([]*types.Block, 0, blocksPerIter)
		for i := 0; i < blocksPerIter; i++ {
			height := parent.Header.Height + 1
			reward := rewards.RewardAt(height)
			var fees uint64
			txs := make([]*types.Transaction, 0, txsPerBlock+1)
			for j := 0; j < txsPerBlock; j++ {
				var (
					s  *cryptoutil.KeyPair
					to cryptoutil.Address
				)
				if lowConflict {
					// Sender-major order: each sender's nonce chain is one
					// contiguous run, recipients are disjoint.
					s = senders[j/(txsPerBlock/len(senders))]
					to = cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("bench-to-%d-%d", i, j))).Address()
				} else {
					s = senders[j%len(senders)]
					to = miner.Address()
				}
				from := s.Address()
				tx := types.NewTransfer(from, to, 1, 1, nonces[from])
				if err := tx.Sign(s); err != nil {
					b.Fatal(err)
				}
				nonces[from]++
				fees += tx.Fee
				txs = append(txs, tx)
			}
			txs = append([]*types.Transaction{types.NewCoinbase(miner.Address(), reward+fees, height)}, txs...)
			blk := types.NewBlock(parent.Hash(), height,
				parent.Header.Time+int64(10*time.Second), miner.Address(), txs)
			next := st.Copy()
			if _, err := next.ApplyBlock(blk, reward); err != nil {
				b.Fatal(err)
			}
			blk.Header.StateRoot = next.Commit()
			if err := seal.Prepare(&blk.Header, parent); err != nil {
				b.Fatal(err)
			}
			if err := seal.Seal(blk, parent); err != nil {
				b.Fatal(err)
			}
			st, parent = next, blk
			blocks = append(blocks, blk)
		}
		return blocks
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := newNode()
		blocks := buildChain(n) // fresh signatures: nothing memoized yet
		b.StartTimer()
		for _, blk := range blocks {
			if err := n.HandleBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
		if n.Chain().Height() != blocksPerIter {
			b.Fatal("chain did not advance")
		}
		if execWorkers > 0 && lowConflict {
			if m := n.Metrics(); m.ExecConflicts > 0 {
				b.Fatalf("low-conflict block replayed: %d conflicts, %d replayed txs",
					m.ExecConflicts, m.ExecReplayedTxs)
			}
		}
	}
}

// --- experiment benchmarks: one per DESIGN.md index entry ---

// benchScale keeps per-iteration experiment runs small; the dcsbench
// CLI runs them at full scale.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := bench.Experiments()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1Gossip(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2PoW(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3ForkChoice(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4Ordering(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5DCS(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6Proposers(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7BitcoinNG(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Sharding(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9Lightning(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10Attack(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11SPV(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE12OffChain(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13Bootstrap(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14PBFT(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15State(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16Mixer(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17Gossip(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18Swap(b *testing.B)      { benchExperiment(b, "E18") }

// BenchmarkClusterBlockFlow measures full end-to-end block production
// and validation across a small simulated network per iteration.
func BenchmarkClusterBlockFlow(b *testing.B) {
	alice := NewWallet("alice")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster, err := NewPoWNetwork(4, map[Address]uint64{alice.Address(): 1000})
		if err != nil {
			b.Fatal(err)
		}
		cluster.Start()
		cluster.Sim.RunFor(time.Minute)
		cluster.Stop()
		if cluster.Nodes[0].Chain().Height() == 0 {
			b.Fatal("no blocks mined")
		}
	}
}
