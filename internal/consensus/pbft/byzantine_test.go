package pbft

import (
	"testing"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
)

// TestEquivocatingPrimarySafety arms an equivocating transport on the
// view-0 primary of a 4-replica cluster and checks PBFT's safety
// property: conflicting pre-prepares may stall a slot and force a view
// change, but no two replicas ever execute different operations at the
// same sequence number, and the cluster recovers to execute the
// original request under the next primary.
func TestEquivocatingPrimarySafety(t *testing.T) {
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 11, p2p.WithLatency(10*time.Millisecond))
	ids := []p2p.NodeID{"n0", "n1", "n2", "n3"}

	executed := make(map[p2p.NodeID]map[uint64]cryptoutil.Hash)
	var nodes []*Node
	var evil *EquivocatingTransport
	for i, id := range ids {
		id := id
		executed[id] = make(map[uint64]cryptoutil.Hash)
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		var tr p2p.Transport = ep
		if i == 0 {
			evil = NewEquivocatingTransport(ep, ids)
			tr = evil
		}
		node, err := NewNode(id, ids, tr, sim, Config{ViewTimeout: time.Second},
			func(seq uint64, op []byte) {
				executed[id][seq] = opDigest(op)
			})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		mux.Handle(MsgPrefix, node.HandleMessage)
		nodes = append(nodes, node)
	}

	evil.Arm(true)
	if err := nodes[0].Propose([]byte("transfer A->B")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	sim.RunFor(10 * time.Second)
	evil.Arm(false)
	sim.RunFor(10 * time.Second)

	if evil.Equivocations() == 0 {
		t.Fatal("equivocating transport never tampered a pre-prepare")
	}

	// Safety: any sequence executed by two replicas carries one digest.
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			for seq, da := range executed[a] {
				if db, ok := executed[b][seq]; ok && da != db {
					t.Fatalf("divergent execution at seq %d: %s=%s %s=%s",
						seq, a, da.Short(), b, db.Short())
				}
			}
		}
	}

	// Liveness after the attack: the honest majority moved past view 0
	// and executed the original operation.
	orig := opDigest([]byte("transfer A->B"))
	for _, id := range ids[1:] {
		found := false
		for _, d := range executed[id] {
			if d == orig {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("replica %s never executed the original op (executed %d ops)",
				id, len(executed[id]))
		}
	}
	if v := nodes[1].View(); v == 0 {
		t.Fatal("equivocation should have forced a view change")
	}
}
