package pbft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
)

type cluster struct {
	sim     *simclock.Simulator
	net     *p2p.SimNetwork
	nodes   []*Node
	applied map[p2p.NodeID][]string
	ids     []p2p.NodeID
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 5, p2p.WithLatency(10*time.Millisecond))
	c := &cluster{sim: sim, net: net, applied: make(map[p2p.NodeID][]string)}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, p2p.NodeName(i))
	}
	for _, id := range c.ids {
		id := id
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		node, err := NewNode(id, c.ids, ep, sim, Config{ViewTimeout: time.Second},
			func(seq uint64, op []byte) {
				c.applied[id] = append(c.applied[id], string(op))
			})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		mux.Handle(MsgPrefix, node.HandleMessage)
		c.nodes = append(c.nodes, node)
	}
	return c
}

func (c *cluster) primary() *Node { return c.nodes[0] } // view 0 primary

func TestNewNodeValidation(t *testing.T) {
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 1)
	ep, err := net.Join("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode("x", []p2p.NodeID{"x", "y", "z"}, ep, sim, Config{}, nil); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
	if _, err := NewNode("x", []p2p.NodeID{"a", "b", "c", "d"}, ep, sim, Config{}, nil); err == nil {
		t.Fatal("id outside replica set must be rejected")
	}
}

func TestFaultFreeAgreement(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 10; i++ {
		if err := c.primary().Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("Propose: %v", err)
		}
	}
	c.sim.RunFor(2 * time.Second)
	for _, id := range c.ids {
		got := c.applied[id]
		if len(got) != 10 {
			t.Fatalf("replica %s executed %d/10", id, len(got))
		}
		for i, v := range got {
			if v != fmt.Sprintf("op-%d", i) {
				t.Fatalf("replica %s order broken at %d: %q", id, i, v)
			}
		}
	}
}

func TestProposeViaBackup(t *testing.T) {
	c := newCluster(t, 4)
	if err := c.nodes[2].Propose([]byte("from-backup")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(2 * time.Second)
	for _, id := range c.ids {
		if got := c.applied[id]; len(got) != 1 || got[0] != "from-backup" {
			t.Fatalf("replica %s applied %v", id, got)
		}
	}
}

func TestToleratesBackupCrashes(t *testing.T) {
	// n=7 tolerates f=2 crashed backups.
	c := newCluster(t, 7)
	if c.primary().F() != 2 {
		t.Fatalf("F = %d, want 2", c.primary().F())
	}
	c.nodes[5].Stop()
	c.nodes[6].Stop()
	for i := 0; i < 5; i++ {
		if err := c.primary().Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("Propose: %v", err)
		}
	}
	c.sim.RunFor(3 * time.Second)
	for i := 0; i < 5; i++ {
		id := c.ids[i]
		if got := c.applied[id]; len(got) != 5 {
			t.Fatalf("replica %s executed %d/5 with f crashed backups", id, len(got))
		}
	}
}

func TestExceedingFStalls(t *testing.T) {
	// n=4 tolerates f=1; crashing 2 backups must prevent commitment
	// (safety over liveness).
	c := newCluster(t, 4)
	c.nodes[2].Stop()
	c.nodes[3].Stop()
	if err := c.primary().Propose([]byte("stuck")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(10 * time.Second)
	for _, id := range c.ids[:2] {
		if len(c.applied[id]) != 0 {
			t.Fatalf("replica %s executed with quorum unavailable", id)
		}
	}
}

func TestPrimaryCrashViewChange(t *testing.T) {
	c := newCluster(t, 4)
	// Commit something in view 0 first.
	if err := c.primary().Propose([]byte("before")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(2 * time.Second)

	c.primary().Stop()
	// A backup receives a request; the primary is dead, so the view
	// change fires and the op commits in view 1.
	if err := c.nodes[1].Propose([]byte("after")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(10 * time.Second)
	for _, id := range c.ids[1:] {
		got := c.applied[id]
		if len(got) != 2 || got[0] != "before" || got[1] != "after" {
			t.Fatalf("replica %s applied %v", id, got)
		}
	}
	if v := c.nodes[1].View(); v == 0 {
		t.Fatal("view must have advanced")
	}
	if c.nodes[1].Primary() == c.ids[0] {
		t.Fatal("dead replica must not remain primary")
	}
}

func TestEquivocatingPrimaryCannotSplitExecution(t *testing.T) {
	// A Byzantine primary sends different pre-prepares for the same
	// sequence to different backups. No conflicting ops may execute at
	// the same position on any two correct replicas.
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 9, p2p.WithLatency(10*time.Millisecond))
	ids := []p2p.NodeID{"evil", "r1", "r2", "r3"}
	applied := make(map[p2p.NodeID][]string)
	var nodes []*Node
	// The evil primary is raw: we drive its messages by hand.
	evilEp, err := net.Join("evil", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		id := id
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(id, ids, ep, sim, Config{ViewTimeout: time.Second},
			func(seq uint64, op []byte) { applied[id] = append(applied[id], string(op)) })
		if err != nil {
			t.Fatal(err)
		}
		mux.Handle(MsgPrefix, node.HandleMessage)
		nodes = append(nodes, node)
	}
	send := func(to p2p.NodeID, op string) {
		pp := prePrepare{View: 0, Seq: 1, Digest: opDigest([]byte(op)), Op: []byte(op)}
		_ = evilEp.Send(to, p2p.Message{Type: MsgPrefix + "pre-prepare", Data: pp.encode()})
	}
	send("r1", "op-A")
	send("r2", "op-A")
	send("r3", "op-B")
	sim.RunFor(5 * time.Second)
	// With only 2 prepares for A (r1, r2 + evil's implicit = 3 = 2f+1
	// actually)... the point of the assertion: no two correct replicas
	// disagree about position 1.
	var first string
	for _, id := range ids[1:] {
		if len(applied[id]) == 0 {
			continue
		}
		if first == "" {
			first = applied[id][0]
		}
		if applied[id][0] != first {
			t.Fatalf("split execution: %v", applied)
		}
	}
	_ = nodes
}

func TestStoppedPropose(t *testing.T) {
	c := newCluster(t, 4)
	c.nodes[1].Stop()
	if err := c.nodes[1].Propose([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestThroughputManyOps(t *testing.T) {
	c := newCluster(t, 4)
	const ops = 100
	for i := 0; i < ops; i++ {
		if err := c.primary().Propose([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
			t.Fatalf("Propose: %v", err)
		}
	}
	c.sim.RunFor(10 * time.Second)
	if got := c.primary().Executed(); got != ops {
		t.Fatalf("primary executed %d/%d", got, ops)
	}
	for _, id := range c.ids {
		if len(c.applied[id]) != ops {
			t.Fatalf("replica %s executed %d/%d", id, len(c.applied[id]), ops)
		}
	}
}
