package pbft

// Byzantine behavior injection for the scenario harness (ISSUE 10 /
// ROADMAP item 5): an equivocating transport that splits a primary's
// pre-prepares into two conflicting proposals. It lives in this package
// because equivocation must re-encode protocol messages with the
// package-internal codec and digest.

import (
	"sync"

	"dcsledger/internal/p2p"
)

// EquivocatingTransport wraps a PBFT replica's transport and, while
// armed, turns the replica into an equivocating primary: outgoing
// pre-prepare messages addressed to the second half of the replica set
// carry a tampered operation (with a correctly recomputed digest, so
// the receiver's integrity check passes), while the first half receives
// the original. Each half then prepares a different digest for the same
// (view, seq) slot — the classic conflicting-proposal attack that PBFT
// must survive by stalling the slot and changing views rather than
// executing divergent operations.
//
// The transformation is a pure function of the message and its target,
// so simulations stay deterministic. All other traffic passes through
// untouched.
type EquivocatingTransport struct {
	mu       sync.Mutex
	inner    p2p.Transport
	replicas []p2p.NodeID
	armed    bool
	sent     int // tampered pre-prepares sent
}

var _ p2p.Transport = (*EquivocatingTransport)(nil)

// NewEquivocatingTransport wraps inner. replicas must list the cluster
// in the same order the replica itself was configured with; targets in
// its second half receive the conflicting proposal while armed.
func NewEquivocatingTransport(inner p2p.Transport, replicas []p2p.NodeID) *EquivocatingTransport {
	return &EquivocatingTransport{
		inner:    inner,
		replicas: append([]p2p.NodeID(nil), replicas...),
	}
}

// Arm enables or disables equivocation.
func (e *EquivocatingTransport) Arm(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.armed = on
}

// Equivocations returns how many tampered pre-prepares were sent.
func (e *EquivocatingTransport) Equivocations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent
}

// Self implements p2p.Transport.
func (e *EquivocatingTransport) Self() p2p.NodeID { return e.inner.Self() }

// Peers implements p2p.Transport.
func (e *EquivocatingTransport) Peers() []p2p.NodeID { return e.inner.Peers() }

// Send implements p2p.Transport, tampering armed pre-prepares to
// second-half targets.
func (e *EquivocatingTransport) Send(to p2p.NodeID, m p2p.Message) error {
	e.mu.Lock()
	if e.armed && m.Type == MsgPrefix+"pre-prepare" && e.secondHalf(to) {
		if pp, err := decodePrePrepare(m.Data); err == nil {
			pp.Op = append(append([]byte(nil), pp.Op...), []byte("/equivocated")...)
			pp.Digest = opDigest(pp.Op)
			m.Data = pp.encode()
			e.sent++
		}
	}
	e.mu.Unlock()
	return e.inner.Send(to, m)
}

func (e *EquivocatingTransport) secondHalf(id p2p.NodeID) bool {
	for i, r := range e.replicas {
		if r == id {
			return i >= len(e.replicas)/2
		}
	}
	return false
}
