// Package pbft implements Practical Byzantine Fault Tolerance: the
// three-phase (pre-prepare / prepare / commit) protocol the paper's
// Hyperledger discussion assigns to committing peers (Section 2.4). A
// cluster of n replicas executes client operations in a single agreed
// order while tolerating f = ⌊(n−1)/3⌋ Byzantine members, with view
// changes to replace a faulty primary.
//
// Replica identity is provided by the transport (the simulated network
// cannot forge From); the classic protocol's per-message signatures are
// therefore subsumed by the transport layer. The view change is the
// simplified variant without prepared-certificate transfer or
// checkpointing: pending operations are renumbered and re-proposed in
// the new view, which is sound when the cluster quiesces around the
// view change — the regime the ordering workload and the E14 fault
// experiments operate in.
package pbft

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/obs"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
)

// MsgPrefix routes pbft traffic through a p2p.Mux.
const MsgPrefix = "pbft/"

// Package errors, matchable with errors.Is.
var (
	ErrStopped = errors.New("pbft: node stopped")
	ErrTooFew  = errors.New("pbft: cluster needs at least 4 replicas to tolerate a fault")
)

// ApplyFunc receives executed operations exactly once, in sequence
// order.
type ApplyFunc func(seq uint64, op []byte)

// Config tunes the protocol.
type Config struct {
	// ViewTimeout is how long a replica waits for a pending request to
	// execute before suspecting the primary and starting a view change.
	ViewTimeout time.Duration
}

// Protocol messages travel in the binary wire format defined in
// codec.go; field order there matches declaration order here.

type prePrepare struct {
	View   uint64
	Seq    uint64
	Digest cryptoutil.Hash
	Op     []byte
}

type phaseVote struct {
	View   uint64
	Seq    uint64
	Digest cryptoutil.Hash
}

type viewChange struct {
	NewView uint64
}

type newView struct {
	View uint64
	// StartSeq is the sequence number the new primary resumes from;
	// replicas align their execution cursors to it so renumbered
	// proposals execute without waiting on abandoned old-view slots.
	StartSeq uint64
}

type request struct {
	Op []byte
}

// instance is the agreement state for one (view, seq) slot.
type instance struct {
	digest     cryptoutil.Hash
	op         []byte
	prePrep    bool
	prepares   map[p2p.NodeID]bool
	commits    map[p2p.NodeID]bool
	committed  bool
	executed   bool
	commitSent bool
	startedAt  time.Time // clock time this replica saw the pre-prepare
}

// Node is one PBFT replica.
type Node struct {
	mu sync.Mutex

	id       p2p.NodeID
	replicas []p2p.NodeID // all replicas, fixed order; index = replica number
	tr       p2p.Transport
	clock    simclock.Clock
	cfg      Config
	apply    ApplyFunc

	f               int
	view            uint64
	nextSeq         uint64 // primary's next sequence to assign
	maxSeq          uint64 // highest sequence seen in any view
	lastExec        uint64
	slots           map[uint64]*instance // by seq (current view)
	pending         map[cryptoutil.Hash][]byte
	vcVotes         map[uint64]map[p2p.NodeID]bool
	vcTimer         *simclock.Timer
	executedDigests map[cryptoutil.Hash]bool
	executedQ       []cryptoutil.Hash // FIFO of live dedup digests, oldest at executedHead
	executedHead    int
	stopped         bool

	executedOps uint64
	tracer      *obs.Tracer
}

// NewNode creates a PBFT replica. replicas must list the full cluster in
// the same order at every member and include id.
func NewNode(id p2p.NodeID, replicas []p2p.NodeID, tr p2p.Transport, clock simclock.Clock, cfg Config, apply ApplyFunc) (*Node, error) {
	if len(replicas) < 4 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFew, len(replicas))
	}
	if cfg.ViewTimeout <= 0 {
		cfg.ViewTimeout = 2 * time.Second
	}
	found := false
	for _, r := range replicas {
		if r == id {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("pbft: id %s not in replica set", id)
	}
	return &Node{
		id:              id,
		replicas:        append([]p2p.NodeID(nil), replicas...),
		tr:              tr,
		clock:           clock,
		cfg:             cfg,
		apply:           apply,
		f:               (len(replicas) - 1) / 3,
		slots:           make(map[uint64]*instance),
		pending:         make(map[cryptoutil.Hash][]byte),
		vcVotes:         make(map[uint64]map[p2p.NodeID]bool),
		executedDigests: make(map[cryptoutil.Hash]bool),
	}, nil
}

// F returns the number of Byzantine faults the cluster tolerates.
func (n *Node) F() int { return n.f }

// SetTracer wires the pipeline event tracer: each operation this
// replica executes records a pbft_round span whose duration is the
// (clock) time from this replica's pre-prepare to execution — the
// three-phase round latency. Call before protocol traffic starts.
func (n *Node) SetTracer(tr *obs.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = tr
}

// View returns the current view number.
func (n *Node) View() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view
}

// Primary returns the current primary replica.
func (n *Node) Primary() p2p.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primaryLocked(n.view)
}

// IsPrimary reports whether this replica leads the current view.
func (n *Node) IsPrimary() bool { return n.Primary() == n.id }

// Executed returns how many operations this replica has executed.
func (n *Node) Executed() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.executedOps
}

// Stop halts the replica.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	n.vcTimer.Stop()
}

// Propose submits an operation. The request is broadcast to the whole
// cluster (as PBFT clients do) so every replica arms its view-change
// timer; the primary assigns it a sequence number.
func (n *Node) Propose(op []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	digest := opDigest(op)
	n.pending[digest] = op
	n.armViewChangeTimerLocked()
	n.broadcast("request", request{Op: op})
	if n.primaryLocked(n.view) == n.id {
		n.assignLocked(op)
	}
	return nil
}

// HandleMessage processes one pbft message; wire under MsgPrefix.
func (n *Node) HandleMessage(m p2p.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return
	}
	if !n.isReplica(m.From) && m.Type != MsgPrefix+"request" {
		return // protocol messages only from cluster members
	}
	switch m.Type {
	case MsgPrefix + "request":
		if req, err := decodeRequest(m.Data); err == nil {
			digest := opDigest(req.Op)
			if n.executedDigests[digest] {
				return
			}
			if _, known := n.pending[digest]; !known {
				n.pending[digest] = req.Op
				n.armViewChangeTimerLocked()
			}
			if n.primaryLocked(n.view) == n.id {
				n.assignLocked(req.Op)
			}
		}
	case MsgPrefix + "pre-prepare":
		if pp, err := decodePrePrepare(m.Data); err == nil {
			n.onPrePrepare(m.From, pp)
		}
	case MsgPrefix + "prepare":
		if v, err := decodePhaseVote(m.Data); err == nil {
			n.onPrepare(m.From, v)
		}
	case MsgPrefix + "commit":
		if v, err := decodePhaseVote(m.Data); err == nil {
			n.onCommit(m.From, v)
		}
	case MsgPrefix + "view-change":
		if vc, err := decodeViewChange(m.Data); err == nil {
			n.onViewChange(m.From, vc)
		}
	case MsgPrefix + "new-view":
		if nv, err := decodeNewView(m.Data); err == nil {
			n.onNewView(m.From, nv)
		}
	}
}

func (n *Node) primaryLocked(view uint64) p2p.NodeID {
	return n.replicas[int(view)%len(n.replicas)]
}

func (n *Node) isReplica(id p2p.NodeID) bool {
	for _, r := range n.replicas {
		if r == id {
			return true
		}
	}
	return false
}

func (n *Node) quorum() int { return 2*n.f + 1 }

func (n *Node) send(to p2p.NodeID, typ string, v wireMsg) {
	_ = n.tr.Send(to, p2p.Message{Type: MsgPrefix + typ, Data: v.encode()})
}

func (n *Node) broadcast(typ string, v wireMsg) {
	for _, r := range n.replicas {
		if r == n.id {
			continue
		}
		n.send(r, typ, v)
	}
}

// assignLocked runs at the primary: assigns the next sequence number and
// starts the three-phase protocol.
func (n *Node) assignLocked(op []byte) {
	digest := opDigest(op)
	// Skip if already assigned in this view.
	for _, inst := range n.slots {
		if inst.digest == digest {
			return
		}
	}
	n.nextSeq++
	seq := n.nextSeq
	if seq > n.maxSeq {
		n.maxSeq = seq
	}
	pp := prePrepare{View: n.view, Seq: seq, Digest: digest, Op: op}
	inst := n.slot(seq)
	inst.digest = digest
	inst.op = op
	inst.prePrep = true
	inst.startedAt = n.clock.Now()
	inst.prepares[n.id] = true
	n.broadcast("pre-prepare", pp)
	// The primary's own prepare is implicit in the pre-prepare; peers
	// count it. Check quorum in case f=0 thresholds are already met.
	n.maybePrepareQuorumLocked(seq)
}

func (n *Node) slot(seq uint64) *instance {
	inst, ok := n.slots[seq]
	if !ok {
		inst = &instance{
			prepares: make(map[p2p.NodeID]bool),
			commits:  make(map[p2p.NodeID]bool),
		}
		n.slots[seq] = inst
	}
	return inst
}

func (n *Node) onPrePrepare(from p2p.NodeID, pp prePrepare) {
	if pp.View != n.view || from != n.primaryLocked(pp.View) {
		return
	}
	if opDigest(pp.Op) != pp.Digest {
		return // equivocating or corrupt primary
	}
	inst := n.slot(pp.Seq)
	if inst.prePrep && inst.digest != pp.Digest {
		// Primary equivocation for this slot: suspect it.
		n.startViewChangeLocked(n.view + 1)
		return
	}
	if inst.prePrep {
		return
	}
	inst.prePrep = true
	inst.digest = pp.Digest
	inst.op = pp.Op
	inst.startedAt = n.clock.Now()
	if pp.Seq > n.maxSeq {
		n.maxSeq = pp.Seq
	}
	if _, ok := n.pending[pp.Digest]; !ok {
		n.pending[pp.Digest] = pp.Op
	}
	n.armViewChangeTimerLocked()
	inst.prepares[from] = true // primary's implicit prepare
	inst.prepares[n.id] = true
	n.broadcast("prepare", phaseVote{View: pp.View, Seq: pp.Seq, Digest: pp.Digest})
	n.maybePrepareQuorumLocked(pp.Seq)
}

func (n *Node) onPrepare(from p2p.NodeID, v phaseVote) {
	if v.View != n.view {
		return
	}
	inst := n.slot(v.Seq)
	if inst.prePrep && inst.digest != v.Digest {
		return
	}
	inst.prepares[from] = true
	n.maybePrepareQuorumLocked(v.Seq)
}

func (n *Node) maybePrepareQuorumLocked(seq uint64) {
	inst := n.slots[seq]
	if inst == nil || !inst.prePrep || inst.commitSent {
		return
	}
	if len(inst.prepares) < n.quorum() {
		return
	}
	inst.commitSent = true
	inst.commits[n.id] = true
	n.broadcast("commit", phaseVote{View: n.view, Seq: seq, Digest: inst.digest})
	n.maybeCommitQuorumLocked(seq)
}

func (n *Node) onCommit(from p2p.NodeID, v phaseVote) {
	if v.View != n.view {
		return
	}
	inst := n.slot(v.Seq)
	if inst.prePrep && inst.digest != v.Digest {
		return
	}
	inst.commits[from] = true
	n.maybeCommitQuorumLocked(v.Seq)
}

func (n *Node) maybeCommitQuorumLocked(seq uint64) {
	inst := n.slots[seq]
	if inst == nil || !inst.commitSent || inst.committed {
		return
	}
	if len(inst.commits) < n.quorum() {
		return
	}
	inst.committed = true
	n.executeReadyLocked()
}

// executeReadyLocked applies committed operations strictly in sequence
// order.
func (n *Node) executeReadyLocked() {
	for {
		inst := n.slots[n.lastExec+1]
		if inst == nil || !inst.committed || inst.executed {
			break
		}
		n.lastExec++
		inst.executed = true
		delete(n.pending, inst.digest)
		if !n.executedDigests[inst.digest] {
			n.executedDigests[inst.digest] = true
			n.recordExecutedLocked(inst.digest)
			n.executedOps++
			if n.tracer != nil && !inst.startedAt.IsZero() {
				n.tracer.Record(obs.Span{
					Stage:  obs.StagePBFTRound,
					Start:  inst.startedAt.UnixNano(),
					Dur:    int64(n.clock.Now().Sub(inst.startedAt)),
					Peer:   string(n.id),
					Height: n.lastExec,
					N:      uint64(len(inst.op)),
				})
			}
			if n.apply != nil {
				n.apply(n.lastExec, inst.op)
			}
		}
	}
	if len(n.pending) == 0 {
		n.vcTimer.Stop()
	} else {
		n.armViewChangeTimerLocked()
	}
}

// executedDedupCap bounds the replay-suppression set. Eviction is FIFO
// in *execution* order, which every correct replica observes
// identically, so all replicas forget the same digests at the same
// point — the bound cannot fork the ledger. A client replaying a
// request older than the cap window re-executes it, the same exposure
// production PBFT accepts when checkpoint garbage-collection discards
// old request logs. At 32 bytes per digest this is ~2 MiB of state.
const executedDedupCap = 65536

// maxTrackedViewAhead bounds how far above the current view this
// replica tracks view-change votes: vcVotes holds at most this many
// views, each with at most one vote per replica.
const maxTrackedViewAhead = 128

// recordExecutedLocked appends a digest to the dedup FIFO and evicts
// past the cap, compacting the queue so its backing array stays
// O(executedDedupCap) rather than growing with total throughput.
func (n *Node) recordExecutedLocked(digest cryptoutil.Hash) {
	n.executedQ = append(n.executedQ, digest)
	for len(n.executedDigests) > executedDedupCap {
		delete(n.executedDigests, n.executedQ[n.executedHead])
		n.executedHead++
	}
	if n.executedHead > executedDedupCap {
		n.executedQ = append(n.executedQ[:0], n.executedQ[n.executedHead:]...)
		n.executedHead = 0
	}
}

// --- view change ---

func (n *Node) armViewChangeTimerLocked() {
	if len(n.pending) == 0 {
		return
	}
	n.vcTimer.Stop()
	target := n.view + 1
	n.vcTimer = n.clock.After(n.cfg.ViewTimeout, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || len(n.pending) == 0 {
			return
		}
		n.startViewChangeLocked(target)
	})
}

func (n *Node) startViewChangeLocked(newViewNum uint64) {
	if newViewNum <= n.view {
		return
	}
	votes := n.vcVotesFor(newViewNum)
	if votes[n.id] {
		return
	}
	votes[n.id] = true
	n.broadcast("view-change", viewChange{NewView: newViewNum})
	n.maybeEnterViewLocked(newViewNum)
}

func (n *Node) vcVotesFor(v uint64) map[p2p.NodeID]bool {
	m, ok := n.vcVotes[v]
	if !ok {
		m = make(map[p2p.NodeID]bool)
		n.vcVotes[v] = m
	}
	return m
}

func (n *Node) onViewChange(from p2p.NodeID, vc viewChange) {
	if vc.NewView <= n.view {
		return
	}
	// Track votes only within a bounded window above the current view:
	// honest replicas propose at most their view+1, so a vote far ahead
	// is either Byzantine spam (each fresh view number would otherwise
	// allocate a vote map forever) or evidence this replica is lagging —
	// and a lagging replica catches up via the primary's new-view
	// message, not via vote accumulation.
	if vc.NewView > n.view+maxTrackedViewAhead {
		return
	}
	votes := n.vcVotesFor(vc.NewView)
	votes[from] = true
	// Join the view change once f+1 members suspect the primary (we
	// cannot all be wrong).
	if len(votes) > n.f && !votes[n.id] {
		n.startViewChangeLocked(vc.NewView)
		return
	}
	n.maybeEnterViewLocked(vc.NewView)
}

func (n *Node) maybeEnterViewLocked(v uint64) {
	votes := n.vcVotes[v]
	if len(votes) < n.quorum() || v <= n.view {
		return
	}
	n.enterViewLocked(v)
	if n.primaryLocked(v) == n.id {
		n.broadcast("new-view", newView{View: v, StartSeq: n.nextSeq})
		n.alignCursorLocked(n.nextSeq)
		// Re-propose everything still pending, in digest order: map
		// iteration order would assign sequence numbers differently
		// run-to-run, breaking the simulation determinism contract.
		for _, d := range n.sortedPendingLocked() {
			n.assignLocked(n.pending[d])
		}
	}
}

// sortedPendingLocked returns the pending digests in byte order — the
// canonical traversal for anything that turns the pending set into
// ordered protocol actions.
func (n *Node) sortedPendingLocked() []cryptoutil.Hash {
	out := make([]cryptoutil.Hash, 0, len(n.pending))
	for d := range n.pending {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

func (n *Node) onNewView(from p2p.NodeID, nv newView) {
	if nv.View < n.view || from != n.primaryLocked(nv.View) {
		return
	}
	if nv.View > n.view {
		n.enterViewLocked(nv.View)
	}
	if nv.StartSeq > n.nextSeq {
		n.nextSeq = nv.StartSeq
	}
	if nv.StartSeq > n.maxSeq {
		n.maxSeq = nv.StartSeq
	}
	n.alignCursorLocked(nv.StartSeq)
}

// alignCursorLocked jumps the execution cursor over sequence numbers
// abandoned by a view change (no committed operation can occupy them
// under the quiescence assumption documented above).
func (n *Node) alignCursorLocked(startSeq uint64) {
	if startSeq > n.lastExec {
		n.lastExec = startSeq
	}
	n.executeReadyLocked()
}

func (n *Node) enterViewLocked(v uint64) {
	n.view = v
	// Votes for views at or below the one just entered can never be
	// consulted again (onViewChange rejects NewView <= view): drop them
	// so a peer spamming view-change messages cannot grow this map
	// without bound.
	for past := range n.vcVotes {
		if past <= v {
			delete(n.vcVotes, past)
		}
	}
	// Discard un-executed per-view state; executed ops are final.
	// Numbering continues above every sequence this replica has seen so
	// a renumbered op can never collide with an executed slot.
	n.slots = make(map[uint64]*instance)
	n.nextSeq = max(n.lastExec, n.maxSeq)
	n.vcTimer.Stop()
	if len(n.pending) > 0 {
		n.armViewChangeTimerLocked()
		// Hand pending ops to the new primary, in digest order (see
		// sortedPendingLocked).
		if n.primaryLocked(v) != n.id {
			for _, d := range n.sortedPendingLocked() {
				n.send(n.primaryLocked(v), "request", request{Op: n.pending[d]})
			}
		}
	}
}

func opDigest(op []byte) cryptoutil.Hash {
	return cryptoutil.HashBytes([]byte("pbft/op"), op)
}
