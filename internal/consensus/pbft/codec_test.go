package pbft

import (
	"bytes"
	"encoding/hex"
	"testing"

	"dcsledger/internal/cryptoutil"
)

// TestPBFTGoldenVectors freezes the pbft wire formats byte-exactly. A
// failure here is a protocol break: bump CodecVersion and update
// docs/WIRE.md.
func TestPBFTGoldenVectors(t *testing.T) {
	digest := cryptoutil.HashBytes([]byte("pbft/op"), []byte("op"))
	dhex := hex.EncodeToString(digest[:])
	cases := []struct {
		name string
		got  []byte
		want string
	}{
		{"request", request{Op: []byte("op")}.encode(),
			"01" + "00000002" + "6f70"},
		{"pre-prepare", prePrepare{View: 1, Seq: 2, Digest: digest, Op: []byte("op")}.encode(),
			"01" + "0000000000000001" + "0000000000000002" + dhex + "00000002" + "6f70"},
		{"phase-vote", phaseVote{View: 1, Seq: 2, Digest: digest}.encode(),
			"01" + "0000000000000001" + "0000000000000002" + dhex},
		{"view-change", viewChange{NewView: 3}.encode(),
			"01" + "0000000000000003"},
		{"new-view", newView{View: 3, StartSeq: 9}.encode(),
			"01" + "0000000000000003" + "0000000000000009"},
	}
	for _, c := range cases {
		if got := hex.EncodeToString(c.got); got != c.want {
			t.Errorf("%s encoding changed:\n got %s\nwant %s", c.name, got, c.want)
		}
	}
}

func TestPBFTRoundTrips(t *testing.T) {
	digest := opDigest([]byte("x"))

	pp := prePrepare{View: 7, Seq: 9, Digest: digest, Op: []byte("x")}
	if got, err := decodePrePrepare(pp.encode()); err != nil || got.View != pp.View ||
		got.Seq != pp.Seq || got.Digest != pp.Digest || !bytes.Equal(got.Op, pp.Op) {
		t.Fatalf("pre-prepare: %+v, %v", got, err)
	}
	v := phaseVote{View: 1, Seq: 2, Digest: digest}
	if got, err := decodePhaseVote(v.encode()); err != nil || got != v {
		t.Fatalf("phase-vote: %+v, %v", got, err)
	}
	vc := viewChange{NewView: 4}
	if got, err := decodeViewChange(vc.encode()); err != nil || got != vc {
		t.Fatalf("view-change: %+v, %v", got, err)
	}
	nv := newView{View: 4, StartSeq: 11}
	if got, err := decodeNewView(nv.encode()); err != nil || got != nv {
		t.Fatalf("new-view: %+v, %v", got, err)
	}
	req := request{Op: []byte("x")}
	if got, err := decodeRequest(req.encode()); err != nil || !bytes.Equal(got.Op, req.Op) {
		t.Fatalf("request: %+v, %v", got, err)
	}
}

func TestPBFTDecodeRejects(t *testing.T) {
	pp := prePrepare{View: 1, Seq: 1, Digest: opDigest([]byte("x")), Op: []byte("x")}
	enc := pp.encode()
	if _, err := decodePrePrepare(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := decodePrePrepare(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 42
	if _, err := decodePrePrepare(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := decodePhaseVote(nil); err == nil {
		t.Fatal("empty phase-vote accepted")
	}
}

// FuzzPrePrepareDecode: pre-prepares arrive from the (possibly
// Byzantine) primary; the decoder must be total and canonical.
func FuzzPrePrepareDecode(f *testing.F) {
	f.Add(prePrepare{View: 1, Seq: 2, Digest: opDigest([]byte("x")), Op: []byte("x")}.encode())
	f.Add([]byte{})
	f.Add([]byte{CodecVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		pp, err := decodePrePrepare(data)
		if err != nil {
			return
		}
		if !bytes.Equal(pp.encode(), data) {
			t.Fatal("non-canonical pre-prepare accepted")
		}
	})
}

// FuzzPhaseVoteDecode covers the prepare/commit vote decoder.
func FuzzPhaseVoteDecode(f *testing.F) {
	f.Add(phaseVote{View: 1, Seq: 2, Digest: opDigest([]byte("x"))}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := decodePhaseVote(data)
		if err != nil {
			return
		}
		if !bytes.Equal(v.encode(), data) {
			t.Fatal("non-canonical phase vote accepted")
		}
	})
}
