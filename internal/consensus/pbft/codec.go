package pbft

// Binary wire codec for the PBFT protocol messages. Each message is a
// version byte followed by fixed-width big-endian fields (see
// docs/WIRE.md); decoders bound every length, reject unknown versions,
// and reject trailing bytes so one message has exactly one encoding.

import (
	"fmt"

	"dcsledger/internal/wire"
)

const (
	// CodecVersion tags every pbft wire message; bump on any layout
	// change.
	CodecVersion = 1
	// MaxOpLen bounds a client operation carried in request/pre-prepare
	// messages (matches the transport's default frame cap headroom).
	MaxOpLen = 1 << 24
)

// wireMsg is implemented by every pbft protocol message.
type wireMsg interface {
	encode() []byte
}

func (r request) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.Blob(r.Op)
	return w.Bytes()
}

func decodeRequest(data []byte) (request, error) {
	var r request
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return r, fmt.Errorf("pbft: unknown request version %d", v)
	}
	r.Op = rd.Blob(MaxOpLen)
	return r, rd.Close()
}

func (pp prePrepare) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(pp.View)
	w.U64(pp.Seq)
	w.Raw(pp.Digest[:])
	w.Blob(pp.Op)
	return w.Bytes()
}

func decodePrePrepare(data []byte) (prePrepare, error) {
	var pp prePrepare
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return pp, fmt.Errorf("pbft: unknown pre-prepare version %d", v)
	}
	pp.View = rd.U64()
	pp.Seq = rd.U64()
	rd.Raw(pp.Digest[:])
	pp.Op = rd.Blob(MaxOpLen)
	return pp, rd.Close()
}

func (v phaseVote) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(v.View)
	w.U64(v.Seq)
	w.Raw(v.Digest[:])
	return w.Bytes()
}

func decodePhaseVote(data []byte) (phaseVote, error) {
	var v phaseVote
	rd := wire.NewReader(data)
	if ver := rd.U8(); rd.Err() == nil && ver != CodecVersion {
		return v, fmt.Errorf("pbft: unknown phase-vote version %d", ver)
	}
	v.View = rd.U64()
	v.Seq = rd.U64()
	rd.Raw(v.Digest[:])
	return v, rd.Close()
}

func (vc viewChange) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(vc.NewView)
	return w.Bytes()
}

func decodeViewChange(data []byte) (viewChange, error) {
	var vc viewChange
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return vc, fmt.Errorf("pbft: unknown view-change version %d", v)
	}
	vc.NewView = rd.U64()
	return vc, rd.Close()
}

func (nv newView) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(nv.View)
	w.U64(nv.StartSeq)
	return w.Bytes()
}

func decodeNewView(data []byte) (newView, error) {
	var nv newView
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return nv, fmt.Errorf("pbft: unknown new-view version %d", v)
	}
	nv.View = rd.U64()
	nv.StartSeq = rd.U64()
	return nv, rd.Close()
}
