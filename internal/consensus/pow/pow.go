// Package pow implements Nakamoto proof-of-work (Section 2.4): the block
// proposal algorithm where inserting a block requires solving a
// computational puzzle over the block header, plus Bitcoin-style
// difficulty retargeting toward a fixed block interval.
//
// Difficulty semantics: Header.Difficulty is the expected number of hash
// attempts a block represents. It drives retargeting, fork-choice
// weight, and — in simulations — the virtual solve-time distribution.
// The *actual* preimage search performed by Solve saturates at
// RealWorkCap attempts so experiments with Bitcoin-scale difficulty
// remain runnable on a laptop: every block still carries a genuine,
// verifiable proof of RealWorkCap-hard work, while timing and economics
// use the full difficulty under virtual time (see DESIGN.md,
// substitutions table).
package pow

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/obs"
	"dcsledger/internal/types"
)

// RealWorkCap bounds the hardness of the actual preimage search.
const RealWorkCap = 1 << 14

// MinDifficulty is the floor the retargeting never goes below.
const MinDifficulty = 16

var maxTarget = new(big.Int).Lsh(big.NewInt(1), 256)

// Target returns the numeric threshold a header hash must stay below for
// the given difficulty (capped at RealWorkCap for tractability).
func Target(difficulty uint64) *big.Int {
	d := difficulty
	if d > RealWorkCap {
		d = RealWorkCap
	}
	if d < 1 {
		d = 1
	}
	return new(big.Int).Div(maxTarget, new(big.Int).SetUint64(d))
}

// CheckHeader reports whether the header's hash satisfies its declared
// difficulty.
func CheckHeader(h *types.BlockHeader) bool {
	hash := h.Hash()
	return new(big.Int).SetBytes(hash[:]).Cmp(Target(h.Difficulty)) < 0
}

// Solve searches nonces (starting from the header's current nonce) until
// the header satisfies its difficulty, mutating the header in place. It
// returns the number of attempts, or an error if maxAttempts (0 =
// unlimited) is exhausted.
func Solve(h *types.BlockHeader, maxAttempts uint64) (uint64, error) {
	var attempts uint64
	for {
		if CheckHeader(h) {
			return attempts + 1, nil
		}
		h.Nonce++
		attempts++
		if maxAttempts > 0 && attempts >= maxAttempts {
			return attempts, fmt.Errorf("pow: no solution within %d attempts (difficulty %d)", maxAttempts, h.Difficulty)
		}
	}
}

// Retarget computes the next difficulty from the parent's, nudging the
// block interval toward target. The adjustment factor is clamped to
// [1/4, 4] per window, like Bitcoin's.
func Retarget(parentDifficulty uint64, actual, target time.Duration) uint64 {
	if parentDifficulty < MinDifficulty {
		parentDifficulty = MinDifficulty
	}
	if actual <= 0 {
		actual = time.Nanosecond
	}
	ratio := float64(target) / float64(actual)
	if ratio > 4 {
		ratio = 4
	}
	if ratio < 0.25 {
		ratio = 0.25
	}
	next := uint64(float64(parentDifficulty) * ratio)
	if next < MinDifficulty {
		next = MinDifficulty
	}
	return next
}

// Config parameterizes a PoW engine instance.
type Config struct {
	// TargetInterval is the desired block interval (600s for the
	// Bitcoin-like configuration of experiment E2).
	TargetInterval time.Duration
	// InitialDifficulty seeds the chain before retargeting has data.
	InitialDifficulty uint64
	// RetargetWindow is how many blocks between difficulty adjustments
	// (1 = adjust every block).
	RetargetWindow uint64
	// HashRate is this miner's virtual hash rate in attempts/second;
	// the solve time on a given difficulty is exponentially distributed
	// with mean difficulty/HashRate (the Poisson mining process).
	HashRate float64
}

// HeaderReader resolves headers by hash so the engine can average block
// intervals over a retarget window. The node backs it with its block
// tree.
type HeaderReader interface {
	HeaderByHash(h cryptoutil.Hash) (*types.BlockHeader, bool)
}

// Engine is a per-node PoW instance.
type Engine struct {
	cfg    Config
	rng    *rand.Rand
	reader HeaderReader
	tracer *obs.Tracer
}

var _ consensus.Engine = (*Engine)(nil)

// New creates a PoW engine. rng drives the stochastic virtual solve
// times; pass a seeded source for reproducible experiments.
func New(cfg Config, rng *rand.Rand) *Engine {
	if cfg.InitialDifficulty < MinDifficulty {
		cfg.InitialDifficulty = MinDifficulty
	}
	if cfg.RetargetWindow == 0 {
		// Averaging over a window keeps the difficulty unbiased: per-block
		// retargeting on exponential intervals drifts upward by e^γ.
		cfg.RetargetWindow = 16
	}
	if cfg.HashRate <= 0 {
		cfg.HashRate = 1000
	}
	return &Engine{cfg: cfg, rng: rng}
}

// Name implements consensus.Engine.
func (e *Engine) Name() string { return "pow" }

// SetHeaderReader wires the chain view used for windowed retargeting.
// Without one the engine falls back to single-interval retargeting.
func (e *Engine) SetHeaderReader(r HeaderReader) { e.reader = r }

// SetTracer wires the pipeline event tracer: each Seal records a
// pow_seal span whose duration is the wall time of the real preimage
// search and whose N is the number of hash attempts. The node
// propagates its tracer here via Node.SetTracer; call before mining
// starts.
func (e *Engine) SetTracer(tr *obs.Tracer) { e.tracer = tr }

// Prepare implements consensus.Engine: difficulty is constant within a
// retarget window and adjusts at window boundaries from the average
// block interval over the completed window (Bitcoin's schedule, with a
// smaller default window).
func (e *Engine) Prepare(hdr *types.BlockHeader, parent *types.Block) error {
	if parent.Header.Height == 0 || parent.Header.Time == 0 {
		hdr.Difficulty = e.cfg.InitialDifficulty
		return nil
	}
	if hdr.Height%e.cfg.RetargetWindow != 0 {
		hdr.Difficulty = parent.Header.Difficulty
		return nil
	}
	actual := e.windowInterval(hdr, &parent.Header)
	hdr.Difficulty = Retarget(parent.Header.Difficulty, actual, e.cfg.TargetInterval)
	return nil
}

// windowInterval averages the block interval over up to RetargetWindow
// trailing blocks ending at hdr.
func (e *Engine) windowInterval(hdr *types.BlockHeader, parent *types.BlockHeader) time.Duration {
	start := parent
	for steps := uint64(1); steps < e.cfg.RetargetWindow && start.Height > 0 && e.reader != nil; steps++ {
		prev, ok := e.reader.HeaderByHash(start.ParentHash)
		if !ok {
			break
		}
		start = prev
	}
	blocks := hdr.Height - start.Height
	if blocks == 0 {
		blocks = 1
	}
	return time.Duration(hdr.Time-start.Time) / time.Duration(blocks)
}

// Delay implements consensus.Engine: an exponential sample with mean
// difficulty/hashRate — the memoryless race every miner runs.
func (e *Engine) Delay(parent *types.Block, self cryptoutil.Address) (time.Duration, bool) {
	difficulty := parent.Header.Difficulty
	if difficulty < MinDifficulty {
		difficulty = e.cfg.InitialDifficulty
	}
	mean := float64(difficulty) / e.cfg.HashRate // seconds
	sample := e.rng.ExpFloat64() * mean
	if math.IsInf(sample, 0) || sample > 1e9 {
		sample = 1e9
	}
	return time.Duration(sample * float64(time.Second)), true
}

// Seal implements consensus.Engine: performs the real preimage search.
// When a tracer is attached, the search is recorded as a pow_seal span
// (wall duration of the solve; N = hash attempts).
func (e *Engine) Seal(b *types.Block, parent *types.Block) error {
	if b.Header.Difficulty == 0 {
		if err := e.Prepare(&b.Header, parent); err != nil {
			return err
		}
	}
	sw := obs.StartTimer()
	attempts, err := Solve(&b.Header, 64*RealWorkCap)
	if err != nil {
		return err
	}
	e.tracer.Record(obs.Span{
		Stage:  obs.StagePowSeal,
		Start:  sw.StartUnixNano(),
		Dur:    int64(sw.Elapsed()),
		Height: b.Header.Height,
		N:      attempts,
	})
	return nil
}

// VerifySeal implements consensus.Engine: checks the proof and that the
// declared difficulty follows the retarget schedule.
func (e *Engine) VerifySeal(b *types.Block, parent *types.Block) error {
	var want types.BlockHeader
	want.Height = b.Header.Height
	want.Time = b.Header.Time
	if err := e.Prepare(&want, parent); err != nil {
		return err
	}
	if b.Header.Difficulty != want.Difficulty {
		return fmt.Errorf("%w: difficulty %d, want %d", consensus.ErrInvalidSeal, b.Header.Difficulty, want.Difficulty)
	}
	if b.Header.Time < parent.Header.Time {
		return fmt.Errorf("%w: block time precedes parent", consensus.ErrBadTimestamp)
	}
	if !CheckHeader(&b.Header) {
		return fmt.Errorf("%w: header hash misses target", consensus.ErrInvalidSeal)
	}
	return nil
}
