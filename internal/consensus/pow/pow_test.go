package pow

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func genesisBlock() *types.Block {
	return types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
}

func childOf(parent *types.Block, at time.Duration) *types.Block {
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()
	cb := types.NewCoinbase(miner, 50, parent.Header.Height+1)
	return types.NewBlock(parent.Hash(), parent.Header.Height+1, int64(at), miner, []*types.Transaction{cb})
}

func testEngine(hashRate float64) *Engine {
	return New(Config{
		TargetInterval:    10 * time.Minute,
		InitialDifficulty: 256,
		HashRate:          hashRate,
	}, rand.New(rand.NewSource(1)))
}

func TestSolveAndCheck(t *testing.T) {
	b := childOf(genesisBlock(), time.Second)
	b.Header.Difficulty = 256
	attempts, err := Solve(&b.Header, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if attempts == 0 {
		t.Fatal("Solve should report attempts")
	}
	if !CheckHeader(&b.Header) {
		t.Fatal("solved header must check")
	}
	// Any mutation invalidates the proof (with overwhelming probability
	// at this difficulty).
	b.Header.TxRoot[0] ^= 1
	if CheckHeader(&b.Header) {
		t.Fatal("mutated header should not satisfy the target")
	}
}

func TestSolveRespectsMaxAttempts(t *testing.T) {
	b := childOf(genesisBlock(), time.Second)
	b.Header.Difficulty = RealWorkCap // hardest real puzzle
	if _, err := Solve(&b.Header, 1); err == nil {
		// One attempt succeeding is possible but absurdly unlikely to
		// happen for this fixed test vector; treat success as failure
		// only if the header actually fails the check.
		if !CheckHeader(&b.Header) {
			t.Fatal("Solve claimed success without a valid header")
		}
	}
}

func TestTargetMonotonic(t *testing.T) {
	if Target(16).Cmp(Target(256)) <= 0 {
		t.Fatal("higher difficulty must mean lower target")
	}
	// Saturation at RealWorkCap.
	if Target(RealWorkCap).Cmp(Target(RealWorkCap*1024)) != 0 {
		t.Fatal("target must saturate at RealWorkCap")
	}
	if Target(0).Cmp(maxTarget) != 0 {
		t.Fatal("zero difficulty must clamp to easiest target")
	}
}

func TestRetarget(t *testing.T) {
	target := 10 * time.Minute
	tests := []struct {
		name   string
		actual time.Duration
		check  func(next uint64) bool
	}{
		{name: "on pace keeps difficulty", actual: target, check: func(n uint64) bool { return n == 1000 }},
		{name: "fast blocks raise difficulty", actual: target / 2, check: func(n uint64) bool { return n == 2000 }},
		{name: "slow blocks lower difficulty", actual: target * 2, check: func(n uint64) bool { return n == 500 }},
		{name: "clamped up", actual: target / 100, check: func(n uint64) bool { return n == 4000 }},
		{name: "clamped down", actual: target * 100, check: func(n uint64) bool { return n == 250 }},
		{name: "zero interval clamps", actual: 0, check: func(n uint64) bool { return n == 4000 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if next := Retarget(1000, tt.actual, target); !tt.check(next) {
				t.Fatalf("Retarget = %d", next)
			}
		})
	}
	if Retarget(1, time.Hour, target) < MinDifficulty {
		t.Fatal("difficulty must not fall below the floor")
	}
}

func TestDelayDistribution(t *testing.T) {
	// The mean of the exponential solve times should approximate
	// difficulty / hashRate.
	e := testEngine(256) // mean = 256/256 = 1s
	g := genesisBlock()
	g.Header.Difficulty = 256
	var total time.Duration
	const n = 3000
	for i := 0; i < n; i++ {
		d, ok := e.Delay(g, cryptoutil.ZeroAddress)
		if !ok {
			t.Fatal("PoW must always be allowed to mine")
		}
		total += d
	}
	mean := total / n
	if mean < 800*time.Millisecond || mean > 1200*time.Millisecond {
		t.Fatalf("mean delay = %v, want ≈1s", mean)
	}
}

func TestDelayScalesWithHashRate(t *testing.T) {
	g := genesisBlock()
	g.Header.Difficulty = 1 << 20
	meanOf := func(rate float64) time.Duration {
		e := testEngine(rate)
		var total time.Duration
		for i := 0; i < 2000; i++ {
			d, _ := e.Delay(g, cryptoutil.ZeroAddress)
			total += d
		}
		return total / 2000
	}
	slow, fast := meanOf(1000), meanOf(16000)
	if slow < 10*fast {
		t.Fatalf("16x hash rate should be ≈16x faster: slow=%v fast=%v", slow, fast)
	}
}

func TestSealVerifyRoundTrip(t *testing.T) {
	e := testEngine(1000)
	g := genesisBlock()
	b := childOf(g, 10*time.Minute)
	b.Header.Proposer = cryptoutil.KeyFromSeed([]byte("miner")).Address()
	if err := e.Prepare(&b.Header, g); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if err := e.Seal(b, g); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := e.VerifySeal(b, g); err != nil {
		t.Fatalf("VerifySeal: %v", err)
	}
}

func TestVerifySealRejections(t *testing.T) {
	e := testEngine(1000)
	g := genesisBlock()

	seal := func() *types.Block {
		b := childOf(g, 10*time.Minute)
		if err := e.Prepare(&b.Header, g); err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		if err := e.Seal(b, g); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		return b
	}

	t.Run("unsolved header", func(t *testing.T) {
		b := seal()
		b.Header.Nonce = 0
		// Nonce 0 almost surely misses; if it happens to hit, re-check.
		if !CheckHeader(&b.Header) {
			if err := e.VerifySeal(b, g); !errors.Is(err, consensus.ErrInvalidSeal) {
				t.Fatalf("want ErrInvalidSeal, got %v", err)
			}
		}
	})
	t.Run("wrong difficulty", func(t *testing.T) {
		b := seal()
		b.Header.Difficulty = 17
		if err := e.VerifySeal(b, g); !errors.Is(err, consensus.ErrInvalidSeal) {
			t.Fatalf("want ErrInvalidSeal, got %v", err)
		}
	})
	t.Run("time before parent", func(t *testing.T) {
		parent := seal()
		b := childOf(parent, 5*time.Minute) // parent is at 10m
		if err := e.Prepare(&b.Header, parent); err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		if err := e.Seal(b, parent); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		if err := e.VerifySeal(b, parent); !errors.Is(err, consensus.ErrBadTimestamp) {
			t.Fatalf("want ErrBadTimestamp, got %v", err)
		}
	})
}

func TestRetargetConvergesInSimulation(t *testing.T) {
	// Simulate sequential mining with virtual time: difficulty should
	// converge so the interval approaches the 100s target.
	const targetInterval = 100 * time.Second
	const hashRate = 100.0
	e := New(Config{TargetInterval: targetInterval, InitialDifficulty: 64, HashRate: hashRate},
		rand.New(rand.NewSource(7)))
	headers := make(map[cryptoutil.Hash]*types.BlockHeader)
	e.SetHeaderReader(headerMap(headers))

	parent := genesisBlock()
	headers[parent.Hash()] = &parent.Header
	now := time.Duration(0)
	var lastIntervals []time.Duration
	prevTime := now
	for i := 0; i < 600; i++ {
		// Virtual mining: exponential with mean difficulty/hashRate.
		d, _ := e.Delay(parent, cryptoutil.ZeroAddress)
		now += d
		b := childOf(parent, now)
		if err := e.Prepare(&b.Header, parent); err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		// Skip the real solve (timing is what matters here); difficulty
		// bookkeeping only.
		headers[b.Hash()] = &b.Header
		if i >= 400 {
			lastIntervals = append(lastIntervals, now-prevTime)
		}
		prevTime = now
		parent = b
	}
	var sum time.Duration
	for _, iv := range lastIntervals {
		sum += iv
	}
	mean := sum / time.Duration(len(lastIntervals))
	if mean < targetInterval/2 || mean > targetInterval*2 {
		t.Fatalf("retargeted interval = %v, want ≈%v", mean, targetInterval)
	}
}

// headerMap adapts a map to the HeaderReader interface.
type headerMap map[cryptoutil.Hash]*types.BlockHeader

func (m headerMap) HeaderByHash(h cryptoutil.Hash) (*types.BlockHeader, bool) {
	hdr, ok := m[h]
	return hdr, ok
}

func TestWindowedRetargetBoundariesOnly(t *testing.T) {
	// Within a window, difficulty is inherited unchanged.
	e := testEngine(1000)
	g := genesisBlock()
	b1 := childOf(g, time.Second)
	if err := e.Prepare(&b1.Header, g); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	b2 := childOf(b1, 2*time.Second)
	if err := e.Prepare(&b2.Header, b1); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if b2.Header.Difficulty != b1.Header.Difficulty {
		t.Fatal("difficulty must be constant inside a retarget window")
	}
}

func TestEngineName(t *testing.T) {
	if testEngine(1).Name() != "pow" {
		t.Fatal("name changed")
	}
}
