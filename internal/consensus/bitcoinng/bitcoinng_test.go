package bitcoinng

import (
	"errors"
	"testing"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func keyBlockBy(seed string) (*types.Block, *cryptoutil.KeyPair) {
	k := cryptoutil.KeyFromSeed([]byte(seed))
	b := types.NewBlock(cryptoutil.ZeroHash, 1, 0, k.Address(), nil)
	return b, k
}

func someTxs(n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i))
	}
	return out
}

func TestEpochIssueAccept(t *testing.T) {
	kb, leader := keyBlockBy("leader")
	issuer := NewEpoch(kb)
	follower := NewEpoch(kb)
	for i := 0; i < 5; i++ {
		m, err := issuer.Issue(leader, int64(i), someTxs(3))
		if err != nil {
			t.Fatalf("Issue %d: %v", i, err)
		}
		if err := issuer.Accept(m); err != nil {
			t.Fatalf("self Accept %d: %v", i, err)
		}
		if err := follower.Accept(m); err != nil {
			t.Fatalf("follower Accept %d: %v", i, err)
		}
	}
	if issuer.Tip() != follower.Tip() {
		t.Fatal("issuer and follower tips must agree")
	}
}

func TestNonLeaderCannotIssue(t *testing.T) {
	kb, _ := keyBlockBy("leader")
	epoch := NewEpoch(kb)
	mallory := cryptoutil.KeyFromSeed([]byte("mallory"))
	if _, err := epoch.Issue(mallory, 0, someTxs(1)); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("want ErrNotLeader, got %v", err)
	}
}

func TestAcceptRejections(t *testing.T) {
	kb, leader := keyBlockBy("leader")
	mallory := cryptoutil.KeyFromSeed([]byte("mallory"))

	t.Run("forged leader", func(t *testing.T) {
		epoch := NewEpoch(kb)
		m := &Microblock{Prev: epoch.Tip(), KeyBlock: epoch.KeyBlock, Txs: someTxs(1)}
		if err := m.Sign(mallory); err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if err := epoch.Accept(m); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("want ErrNotLeader, got %v", err)
		}
	})
	t.Run("tampered body", func(t *testing.T) {
		epoch := NewEpoch(kb)
		m, err := epoch.Issue(leader, 0, someTxs(2))
		if err != nil {
			t.Fatalf("Issue: %v", err)
		}
		m.Txs = someTxs(3) // mutate after signing
		if err := epoch.Accept(m); !errors.Is(err, ErrBadSig) {
			t.Fatalf("want ErrBadSig, got %v", err)
		}
	})
	t.Run("wrong tip", func(t *testing.T) {
		epoch := NewEpoch(kb)
		m, err := epoch.Issue(leader, 0, someTxs(1))
		if err != nil {
			t.Fatalf("Issue: %v", err)
		}
		if err := epoch.Accept(m); err != nil {
			t.Fatalf("Accept: %v", err)
		}
		// Replaying the same microblock no longer extends the tip.
		if err := epoch.Accept(m); !errors.Is(err, ErrBrokenChain) {
			t.Fatalf("want ErrBrokenChain, got %v", err)
		}
	})
}

func simCfg() SimConfig {
	return SimConfig{
		KeyInterval:   600 * time.Second,
		MicroInterval: 10 * time.Second,
		TxRate:        20,
		MicroCap:      4000,
		BlockCap:      4000,
		Duration:      4 * time.Hour,
		Seed:          42,
	}
}

func TestNGLatencyFarBelowNakamoto(t *testing.T) {
	cfg := simCfg()
	ng := SimulateNG(cfg)
	nak := SimulateNakamoto(cfg)
	if ng.Committed == 0 || nak.Committed == 0 {
		t.Fatalf("no commits: ng=%d nak=%d", ng.Committed, nak.Committed)
	}
	// NG commits every 10s; Nakamoto waits ~600s. Expect an order of
	// magnitude difference.
	if ng.MeanLatency*10 > nak.MeanLatency {
		t.Fatalf("NG latency %v should be ≪ Nakamoto %v", ng.MeanLatency, nak.MeanLatency)
	}
}

func TestNGThroughputAtLeastNakamoto(t *testing.T) {
	cfg := simCfg()
	// Tight block cap: Nakamoto's throughput ceiling is
	// BlockCap/KeyInterval; NG's is MicroCap/MicroInterval.
	cfg.BlockCap = 4000
	cfg.MicroCap = 4000
	cfg.TxRate = 50 // above Nakamoto's ceiling of 4000/600 ≈ 6.7 tps
	ng := SimulateNG(cfg)
	nak := SimulateNakamoto(cfg)
	if ng.ThroughputTPS < 3*nak.ThroughputTPS {
		t.Fatalf("NG throughput %.1f should exceed Nakamoto %.1f under load",
			ng.ThroughputTPS, nak.ThroughputTPS)
	}
}

func TestSimulationAccounting(t *testing.T) {
	cfg := simCfg()
	cfg.Duration = time.Hour
	ng := SimulateNG(cfg)
	if ng.KeyBlocks == 0 || ng.Microblocks == 0 {
		t.Fatalf("expected both block kinds: %+v", ng)
	}
	// Microblocks every 10s for an hour ≈ 360.
	if ng.Microblocks < 300 || ng.Microblocks > 400 {
		t.Fatalf("microblocks = %d, want ≈360", ng.Microblocks)
	}
	nak := SimulateNakamoto(cfg)
	if nak.Microblocks != 0 {
		t.Fatal("Nakamoto mode must not issue microblocks")
	}
	// Deterministic for a fixed seed.
	if again := SimulateNG(cfg); again != ng {
		t.Fatal("simulation must be deterministic for a fixed seed")
	}
}

func TestMicroblockIDBindsSignature(t *testing.T) {
	kb, leader := keyBlockBy("leader")
	epoch := NewEpoch(kb)
	m, err := epoch.Issue(leader, 0, someTxs(1))
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	unsigned := &Microblock{Prev: m.Prev, KeyBlock: m.KeyBlock, Index: m.Index, Time: m.Time, Txs: m.Txs}
	if unsigned.ID() == m.ID() {
		t.Fatal("ID must commit to the signature")
	}
}
