// Package bitcoinng implements the Bitcoin-NG hybrid of Section 2.4
// (Eyal et al., NSDI'16): proof-of-work key blocks elect a leader, who
// then streams signed microblocks carrying transactions until the next
// key block. Ordering capacity thus decouples from the slow PoW
// interval — the throughput/latency comparison experiment E7
// regenerates the paper's claim with SimulateNG vs SimulateNakamoto.
package bitcoinng

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

// Package errors, matchable with errors.Is.
var (
	ErrNotLeader   = errors.New("bitcoinng: microblock not signed by current leader")
	ErrBadSig      = errors.New("bitcoinng: invalid microblock signature")
	ErrBrokenChain = errors.New("bitcoinng: microblock does not extend the tip")
)

// Microblock is a leader-signed transaction batch between key blocks.
type Microblock struct {
	Prev     cryptoutil.Hash      `json:"prev"` // previous micro- or key-block hash
	KeyBlock cryptoutil.Hash      `json:"keyBlock"`
	Index    uint64               `json:"index"`
	Time     int64                `json:"time"`
	Txs      []*types.Transaction `json:"txs"`
	PubKey   []byte               `json:"pubKey"`
	Sig      []byte               `json:"sig"`
}

// SigningDigest covers everything except the signature fields.
func (m *Microblock) SigningDigest() cryptoutil.Hash {
	var buf bytes.Buffer
	buf.Write(m.Prev[:])
	buf.Write(m.KeyBlock[:])
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], m.Index)
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], uint64(m.Time))
	buf.Write(b8[:])
	for _, tx := range m.Txs {
		id := tx.ID()
		buf.Write(id[:])
	}
	return cryptoutil.HashBytes([]byte("bitcoinng/micro"), buf.Bytes())
}

// ID returns the microblock identifier.
func (m *Microblock) ID() cryptoutil.Hash {
	d := m.SigningDigest()
	return cryptoutil.HashBytes([]byte("bitcoinng/microid"), d[:], m.Sig)
}

// Sign attaches the leader's signature.
func (m *Microblock) Sign(k *cryptoutil.KeyPair) error {
	sig, err := k.Sign(m.SigningDigest())
	if err != nil {
		return fmt.Errorf("bitcoinng: %w", err)
	}
	m.PubKey = k.PublicKey()
	m.Sig = sig
	return nil
}

// Verify checks the microblock against the current leader (the key
// block's proposer) and the expected tip it must extend.
func (m *Microblock) Verify(leader cryptoutil.Address, tip cryptoutil.Hash) error {
	if m.Prev != tip {
		return fmt.Errorf("%w: prev %s, tip %s", ErrBrokenChain, m.Prev.Short(), tip.Short())
	}
	if cryptoutil.PubKeyToAddress(m.PubKey) != leader {
		return fmt.Errorf("%w: signed by %s", ErrNotLeader, cryptoutil.PubKeyToAddress(m.PubKey).Short())
	}
	if !cryptoutil.Verify(m.PubKey, m.SigningDigest(), m.Sig) {
		return ErrBadSig
	}
	return nil
}

// Epoch tracks one leader's reign: the key block that elected it and
// the microblock tip.
type Epoch struct {
	Leader    cryptoutil.Address
	KeyBlock  cryptoutil.Hash
	tip       cryptoutil.Hash
	nextIndex uint64
}

// NewEpoch starts an epoch at a freshly mined key block.
func NewEpoch(keyBlock *types.Block) *Epoch {
	h := keyBlock.Hash()
	return &Epoch{Leader: keyBlock.Header.Proposer, KeyBlock: h, tip: h}
}

// Tip returns the hash new microblocks must extend.
func (e *Epoch) Tip() cryptoutil.Hash { return e.tip }

// Issue builds and signs the next microblock of this epoch.
func (e *Epoch) Issue(k *cryptoutil.KeyPair, now int64, txs []*types.Transaction) (*Microblock, error) {
	if k.Address() != e.Leader {
		return nil, fmt.Errorf("%w: %s is not the epoch leader", ErrNotLeader, k.Address().Short())
	}
	m := &Microblock{
		Prev:     e.tip,
		KeyBlock: e.KeyBlock,
		Index:    e.nextIndex,
		Time:     now,
		Txs:      txs,
	}
	if err := m.Sign(k); err != nil {
		return nil, err
	}
	return m, nil
}

// Accept validates a microblock and advances the epoch tip.
func (e *Epoch) Accept(m *Microblock) error {
	if err := m.Verify(e.Leader, e.tip); err != nil {
		return err
	}
	if m.Index != e.nextIndex {
		return fmt.Errorf("%w: index %d, want %d", ErrBrokenChain, m.Index, e.nextIndex)
	}
	e.tip = m.ID()
	e.nextIndex++
	return nil
}

// SimConfig parameterizes the E7 comparison simulation.
type SimConfig struct {
	// KeyInterval is the expected PoW key-block interval.
	KeyInterval time.Duration
	// MicroInterval is the leader's microblock period (NG only).
	MicroInterval time.Duration
	// TxRate is the Poisson transaction arrival rate (tx/second).
	TxRate float64
	// MicroCap bounds transactions per microblock.
	MicroCap int
	// BlockCap bounds transactions per key block (Nakamoto mode).
	BlockCap int
	// Duration is the simulated span.
	Duration time.Duration
	// Seed drives the randomness.
	Seed int64
}

// Result aggregates one simulation run.
type Result struct {
	Committed     int
	ThroughputTPS float64
	MeanLatency   time.Duration
	KeyBlocks     int
	Microblocks   int
}

// SimulateNG runs the Bitcoin-NG commit process: transactions commit at
// each microblock (every MicroInterval), bounded by MicroCap.
func SimulateNG(cfg SimConfig) Result {
	return simulate(cfg, cfg.MicroInterval, cfg.MicroCap, true)
}

// SimulateNakamoto runs the plain Nakamoto process at the same key-block
// interval: transactions only commit when a key block is mined.
func SimulateNakamoto(cfg SimConfig) Result {
	return simulate(cfg, 0, cfg.BlockCap, false)
}

func simulate(cfg SimConfig, microEvery time.Duration, perCommit int, ng bool) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		res     Result
		pending []time.Duration // arrival times of queued txs
		now     time.Duration
		nextTx  = expDur(rng, time.Duration(float64(time.Second)/cfg.TxRate))
		nextKey = expDur(rng, cfg.KeyInterval)
		nextMic = microEvery
		totLat  time.Duration
	)
	commit := func(at time.Duration, limit int) {
		n := len(pending)
		if limit > 0 && n > limit {
			n = limit
		}
		for _, arr := range pending[:n] {
			totLat += at - arr
			res.Committed++
		}
		pending = pending[n:]
	}
	for now < cfg.Duration {
		// Next event: tx arrival, key block, or microblock.
		next := nextTx
		if nextKey < next {
			next = nextKey
		}
		if ng && nextMic < next {
			next = nextMic
		}
		now = next
		switch {
		case now == nextTx:
			pending = append(pending, now)
			nextTx = now + expDur(rng, time.Duration(float64(time.Second)/cfg.TxRate))
		case now == nextKey:
			res.KeyBlocks++
			if !ng {
				commit(now, perCommit)
			}
			nextKey = now + expDur(rng, cfg.KeyInterval)
		default: // microblock
			res.Microblocks++
			commit(now, perCommit)
			nextMic = now + microEvery
		}
	}
	if res.Committed > 0 {
		res.MeanLatency = totLat / time.Duration(res.Committed)
	}
	if cfg.Duration > 0 {
		res.ThroughputTPS = float64(res.Committed) / cfg.Duration.Seconds()
	}
	return res
}

func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return time.Nanosecond
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
