// Package consensus defines the System-layer interfaces of the stack.
// Following Section 2.4 of the paper, proof-based consensus decomposes
// into two pluggable pieces: a block-proposal algorithm (Engine — who may
// extend the chain, when, with what evidence) and a branch-selection
// algorithm (ForkChoice — which branch peers converge on). PoW, PoS, and
// PoET implement Engine; longest-chain and GHOST implement ForkChoice;
// any Engine composes with any ForkChoice.
package consensus

import (
	"errors"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/store"
	"dcsledger/internal/types"
)

// Shared engine errors, matchable with errors.Is.
var (
	ErrInvalidSeal  = errors.New("consensus: invalid seal")
	ErrNotProposer  = errors.New("consensus: node is not the proposer")
	ErrBadTimestamp = errors.New("consensus: bad block timestamp")
)

// Engine is a block-proposal algorithm: it decides when a given
// validator may extend a given parent and produces/validates the
// header evidence ("proof").
type Engine interface {
	// Name identifies the algorithm ("pow", "pos", "poet").
	Name() string
	// Prepare fills the consensus-owned header fields (e.g. difficulty)
	// of a candidate extending parent.
	Prepare(hdr *types.BlockHeader, parent *types.Block) error
	// Delay returns how long this validator must wait (virtual time,
	// measured from the moment parent became its tip) before sealing a
	// block on parent. ok=false means it may never propose on parent.
	Delay(parent *types.Block, self cryptoutil.Address) (delay time.Duration, ok bool)
	// Seal completes the block's proof (nonce, Extra). The block's
	// header must already be Prepared and its Proposer set.
	Seal(b *types.Block, parent *types.Block) error
	// VerifySeal checks a received block's proof against its parent.
	VerifySeal(b *types.Block, parent *types.Block) error
}

// ForkChoice is a branch-selection algorithm over the block tree.
type ForkChoice interface {
	// Name identifies the rule ("longest", "ghost").
	Name() string
	// Choose returns the tip of the branch all correct peers should
	// adopt.
	Choose(tree *store.BlockTree) (cryptoutil.Hash, error)
}
