package poet

import (
	"errors"
	"testing"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func genesisBlock() *types.Block {
	return types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
}

func addr(seed string) cryptoutil.Address {
	return cryptoutil.KeyFromSeed([]byte(seed)).Address()
}

func TestWaitDeterministicAndExponential(t *testing.T) {
	enclave := NewEnclave([]byte("sgx"))
	parent := cryptoutil.HashBytes([]byte("parent"))
	mean := 10 * time.Second
	a := enclave.DrawWait(parent, addr("v1"), mean)
	b := enclave.DrawWait(parent, addr("v1"), mean)
	if a != b {
		t.Fatal("wait draw must be deterministic")
	}
	if a == enclave.DrawWait(parent, addr("v2"), mean) {
		t.Fatal("different validators should draw different waits")
	}
	// Mean over many validators ≈ the configured mean.
	var total time.Duration
	const n = 4000
	for i := 0; i < n; i++ {
		total += enclave.DrawWait(parent, addr(string(rune(i))+"x"), mean)
	}
	got := total / n
	if got < 8*time.Second || got > 12*time.Second {
		t.Fatalf("mean wait = %v, want ≈10s", got)
	}
}

func TestCertificateIssueVerify(t *testing.T) {
	enclave := NewEnclave([]byte("sgx"))
	parent := cryptoutil.HashBytes([]byte("p"))
	mean := 5 * time.Second
	cert, err := enclave.IssueCertificate(parent, addr("v1"), mean)
	if err != nil {
		t.Fatalf("IssueCertificate: %v", err)
	}
	if err := VerifyCertificate(enclave.PublicKey(), cert, mean); err != nil {
		t.Fatalf("VerifyCertificate: %v", err)
	}

	t.Run("forged wait", func(t *testing.T) {
		bad := cert
		bad.WaitNanos = 1 // claim an instant wait
		if err := VerifyCertificate(enclave.PublicKey(), bad, mean); !errors.Is(err, ErrBadCertificate) {
			t.Fatalf("want ErrBadCertificate, got %v", err)
		}
	})
	t.Run("wrong enclave", func(t *testing.T) {
		rogue := NewEnclave([]byte("rogue"))
		cert2, err := rogue.IssueCertificate(parent, addr("v1"), mean)
		if err != nil {
			t.Fatalf("IssueCertificate: %v", err)
		}
		if err := VerifyCertificate(enclave.PublicKey(), cert2, mean); !errors.Is(err, ErrBadCertificate) {
			t.Fatalf("want ErrBadCertificate, got %v", err)
		}
	})
}

func sealAt(t *testing.T, e *Engine, parent *types.Block, proposer cryptoutil.Address, at time.Duration) *types.Block {
	t.Helper()
	b := types.NewBlock(parent.Hash(), parent.Header.Height+1, int64(at), proposer, nil)
	if err := e.Prepare(&b.Header, parent); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if err := e.Seal(b, parent); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return b
}

func TestSealVerifyRoundTrip(t *testing.T) {
	enclave := NewEnclave([]byte("sgx"))
	e := New(Config{MeanWait: time.Second}, enclave)
	g := genesisBlock()
	v := addr("v1")
	wait, ok := e.Delay(g, v)
	if !ok {
		t.Fatal("PoET validators can always draw")
	}
	b := sealAt(t, e, g, v, wait+time.Millisecond)
	if err := e.VerifySeal(b, g); err != nil {
		t.Fatalf("VerifySeal: %v", err)
	}
}

func TestVerifySealRejections(t *testing.T) {
	enclave := NewEnclave([]byte("sgx"))
	e := New(Config{MeanWait: time.Second}, enclave)
	g := genesisBlock()
	v := addr("v1")
	wait, _ := e.Delay(g, v)

	t.Run("did not wait", func(t *testing.T) {
		b := sealAt(t, e, g, v, wait/2)
		if err := e.VerifySeal(b, g); !errors.Is(err, consensus.ErrBadTimestamp) {
			t.Fatalf("want ErrBadTimestamp, got %v", err)
		}
	})
	t.Run("certificate for someone else", func(t *testing.T) {
		b := sealAt(t, e, g, v, wait+time.Millisecond)
		b.Header.Proposer = addr("v2")
		if err := e.VerifySeal(b, g); !errors.Is(err, ErrBadCertificate) {
			t.Fatalf("want ErrBadCertificate, got %v", err)
		}
	})
	t.Run("garbage extra", func(t *testing.T) {
		b := sealAt(t, e, g, v, wait+time.Millisecond)
		b.Header.Extra = []byte("junk")
		if err := e.VerifySeal(b, g); !errors.Is(err, ErrBadCertificate) {
			t.Fatalf("want ErrBadCertificate, got %v", err)
		}
	})
	t.Run("wrong parent cert", func(t *testing.T) {
		other := types.NewBlock(g.Hash(), 1, 1, addr("m"), nil)
		b := sealAt(t, e, g, v, wait+time.Millisecond)
		b.Header.ParentHash = other.Hash() // header no longer matches cert
		if err := e.VerifySeal(b, other); !errors.Is(err, ErrBadCertificate) {
			t.Fatalf("want ErrBadCertificate, got %v", err)
		}
	})
}

func TestMinWaitWinsRace(t *testing.T) {
	// The engine's Delay defines the race: the validator with the
	// minimum wait is the natural winner for this parent.
	enclave := NewEnclave([]byte("sgx"))
	e := New(Config{MeanWait: time.Second}, enclave)
	g := genesisBlock()
	winner, best := cryptoutil.ZeroAddress, time.Duration(1<<62)
	for i := 0; i < 20; i++ {
		v := addr(string(rune('a' + i)))
		d, _ := e.Delay(g, v)
		if d < best {
			winner, best = v, d
		}
	}
	// All validators agree who wins (determinism).
	again, _ := e.Delay(g, winner)
	if again != best {
		t.Fatal("draws must be stable")
	}
}

func TestDetectCheaters(t *testing.T) {
	honest1, honest2, cheater := addr("h1"), addr("h2"), addr("cheat")
	wins := map[cryptoutil.Address]int{
		honest1: 32,
		honest2: 36,
		cheater: 132, // ~4x fair share
	}
	flagged := DetectCheaters(wins, 200, 6, 3.0)
	if len(flagged) != 1 || flagged[0] != cheater {
		t.Fatalf("flagged = %v", flagged)
	}
	if got := DetectCheaters(nil, 0, 6, 3.0); got != nil {
		t.Fatal("empty input flags nobody")
	}
	fair := map[cryptoutil.Address]int{honest1: 34, honest2: 33}
	if got := DetectCheaters(fair, 200, 6, 3.0); len(got) != 0 {
		t.Fatalf("fair validators flagged: %v", got)
	}
}

func TestEngineName(t *testing.T) {
	if New(Config{}, NewEnclave([]byte("x"))).Name() != "poet" {
		t.Fatal("name changed")
	}
}
