// Package poet implements Proof-of-Elapsed-Time consensus (Hyperledger
// Sawtooth, Section 5.4): every validator asks a trusted execution
// environment for a random wait time; the validator whose wait expires
// first proposes the block, and the enclave-signed wait certificate in
// the header proves the draw was honest.
//
// The paper's repro context has no Intel SGX, so the enclave is
// simulated (see DESIGN.md substitutions): a process-wide signing
// authority whose draws are deterministic in (parent, validator). The
// consensus-visible contract — trustworthy random waits, verifiable by
// anyone holding the enclave's public key — is preserved, and the
// statistical cheater detection of the PoET literature is provided by
// DetectCheaters.
package poet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
	"dcsledger/internal/wire"
)

// ErrBadCertificate reports a forged or mismatched wait certificate.
var ErrBadCertificate = errors.New("poet: invalid wait certificate")

// CertCodecVersion tags the binary certificate encoding carried in
// Header.Extra; bump on layout change (this changes poet block hashes).
const CertCodecVersion = 1

// maxCertSigLen bounds the signature blob when decoding untrusted
// Header.Extra bytes.
const maxCertSigLen = 256

// Certificate is an enclave-signed statement that a validator was
// assigned the given wait for blocks extending Parent. It is embedded
// in Header.Extra in the binary encoding below, so the encoding is
// consensus-critical: one certificate has exactly one byte form.
type Certificate struct {
	Validator cryptoutil.Address
	Parent    cryptoutil.Hash
	WaitNanos int64
	Sig       []byte
}

// Encode renders the certificate in its canonical binary form.
func (c Certificate) Encode() []byte {
	var w wire.Buffer
	w.U8(CertCodecVersion)
	w.Raw(c.Validator[:])
	w.Raw(c.Parent[:])
	w.U64(uint64(c.WaitNanos))
	w.Blob(c.Sig)
	return w.Bytes()
}

// DecodeCertificate parses a canonical certificate encoding.
func DecodeCertificate(data []byte) (Certificate, error) {
	var c Certificate
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CertCodecVersion {
		return c, fmt.Errorf("poet: unknown certificate version %d", v)
	}
	rd.Raw(c.Validator[:])
	rd.Raw(c.Parent[:])
	c.WaitNanos = int64(rd.U64())
	c.Sig = rd.Blob(maxCertSigLen)
	return c, rd.Close()
}

func (c *Certificate) digest() cryptoutil.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(c.WaitNanos))
	return cryptoutil.HashBytes([]byte("poet/cert"), c.Validator[:], c.Parent[:], buf[:])
}

// Enclave is the simulated trusted execution environment: a signing
// authority whose wait draws are deterministic in (parent, validator),
// hence reproducible by any verifier.
type Enclave struct {
	key *cryptoutil.KeyPair
}

// NewEnclave derives the enclave identity from a seed (the "platform
// attestation key").
func NewEnclave(seed []byte) *Enclave {
	return &Enclave{key: cryptoutil.KeyFromSeed(append([]byte("poet/enclave/"), seed...))}
}

// PublicKey returns the enclave's attestation public key.
func (e *Enclave) PublicKey() []byte { return e.key.PublicKey() }

// DrawWait returns the deterministic exponential wait assigned to
// validator for blocks extending parent.
func (e *Enclave) DrawWait(parent cryptoutil.Hash, validator cryptoutil.Address, mean time.Duration) time.Duration {
	return drawWait(parent, validator, mean)
}

func drawWait(parent cryptoutil.Hash, validator cryptoutil.Address, mean time.Duration) time.Duration {
	h := cryptoutil.HashBytes([]byte("poet/wait"), parent[:], validator[:])
	// Map the first 8 bytes to (0,1], then invert the exponential CDF.
	u := float64(binary.BigEndian.Uint64(h[:8])>>11) / float64(1<<53)
	if u <= 0 {
		u = 1.0 / float64(1<<53)
	}
	w := -math.Log(u) * float64(mean)
	return time.Duration(w)
}

// IssueCertificate signs the wait assigned to validator on parent.
func (e *Enclave) IssueCertificate(parent cryptoutil.Hash, validator cryptoutil.Address, mean time.Duration) (Certificate, error) {
	cert := Certificate{
		Validator: validator,
		Parent:    parent,
		WaitNanos: int64(drawWait(parent, validator, mean)),
	}
	sig, err := e.key.Sign(cert.digest())
	if err != nil {
		return Certificate{}, fmt.Errorf("poet: %w", err)
	}
	cert.Sig = sig
	return cert, nil
}

// VerifyCertificate checks a certificate against the enclave public key
// and the deterministic draw.
func VerifyCertificate(enclavePub []byte, cert Certificate, mean time.Duration) error {
	if int64(drawWait(cert.Parent, cert.Validator, mean)) != cert.WaitNanos {
		return fmt.Errorf("%w: wait does not match enclave draw", ErrBadCertificate)
	}
	if !cryptoutil.Verify(enclavePub, cert.digest(), cert.Sig) {
		return fmt.Errorf("%w: bad enclave signature", ErrBadCertificate)
	}
	return nil
}

// Config parameterizes a PoET engine.
type Config struct {
	// MeanWait is the mean of the exponential wait distribution — the
	// expected block interval (per validator pool, the minimum of n
	// draws has mean MeanWait/n).
	MeanWait time.Duration
}

// Engine is a per-node PoET instance.
type Engine struct {
	cfg        Config
	enclave    *Enclave
	enclavePub []byte
}

var _ consensus.Engine = (*Engine)(nil)

// New creates a PoET engine bound to the (shared) enclave.
func New(cfg Config, enclave *Enclave) *Engine {
	if cfg.MeanWait <= 0 {
		cfg.MeanWait = 30 * time.Second
	}
	return &Engine{cfg: cfg, enclave: enclave, enclavePub: enclave.PublicKey()}
}

// Name implements consensus.Engine.
func (e *Engine) Name() string { return "poet" }

// Prepare implements consensus.Engine.
func (e *Engine) Prepare(hdr *types.BlockHeader, parent *types.Block) error {
	hdr.Difficulty = 1
	return nil
}

// Delay implements consensus.Engine: the enclave-drawn wait.
func (e *Engine) Delay(parent *types.Block, self cryptoutil.Address) (time.Duration, bool) {
	return drawWait(parent.Hash(), self, e.cfg.MeanWait), true
}

// Seal implements consensus.Engine: embeds the enclave certificate.
func (e *Engine) Seal(b *types.Block, parent *types.Block) error {
	cert, err := e.enclave.IssueCertificate(parent.Hash(), b.Header.Proposer, e.cfg.MeanWait)
	if err != nil {
		return err
	}
	b.Header.Extra = cert.Encode()
	return nil
}

// VerifySeal implements consensus.Engine: the certificate must be
// enclave-signed, match the deterministic draw, and the block timestamp
// must show the validator actually waited.
func (e *Engine) VerifySeal(b *types.Block, parent *types.Block) error {
	cert, err := DecodeCertificate(b.Header.Extra)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if cert.Validator != b.Header.Proposer {
		return fmt.Errorf("%w: certificate for %s, block by %s",
			ErrBadCertificate, cert.Validator.Short(), b.Header.Proposer.Short())
	}
	if cert.Parent != b.Header.ParentHash {
		return fmt.Errorf("%w: certificate for wrong parent", ErrBadCertificate)
	}
	if err := VerifyCertificate(e.enclavePub, cert, e.cfg.MeanWait); err != nil {
		return err
	}
	if b.Header.Time-parent.Header.Time < cert.WaitNanos {
		return fmt.Errorf("%w: block produced before wait elapsed", consensus.ErrBadTimestamp)
	}
	return nil
}

// DetectCheaters runs the PoET z-test: validators whose win count
// exceeds the expected share of totalBlocks by more than zThreshold
// standard deviations are flagged. validators is the pool size.
func DetectCheaters(wins map[cryptoutil.Address]int, totalBlocks, validators int, zThreshold float64) []cryptoutil.Address {
	if totalBlocks == 0 || validators == 0 {
		return nil
	}
	p := 1.0 / float64(validators)
	mean := float64(totalBlocks) * p
	std := math.Sqrt(float64(totalBlocks) * p * (1 - p))
	if std == 0 {
		return nil
	}
	var out []cryptoutil.Address
	for v, w := range wins {
		if z := (float64(w) - mean) / std; z > zThreshold {
			out = append(out, v)
		}
	}
	// Map iteration order is randomized per process; sort so every
	// replica reports the same cheater list in the same order.
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}
