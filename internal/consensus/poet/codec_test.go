package poet

import (
	"bytes"
	"testing"
	"time"

	"dcsledger/internal/cryptoutil"
)

func testCert(t *testing.T) Certificate {
	t.Helper()
	enc := NewEnclave([]byte("seed"))
	var v cryptoutil.Address
	v[0] = 7
	cert, err := enc.IssueCertificate(cryptoutil.ZeroHash, v, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func TestCertificateRoundTrip(t *testing.T) {
	cert := testCert(t)
	got, err := DecodeCertificate(cert.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Validator != cert.Validator || got.Parent != cert.Parent ||
		got.WaitNanos != cert.WaitNanos || !bytes.Equal(got.Sig, cert.Sig) {
		t.Fatalf("round trip: got %+v, want %+v", got, cert)
	}
}

func TestCertificateDecodeRejects(t *testing.T) {
	enc := testCert(t).Encode()
	if _, err := DecodeCertificate(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeCertificate(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated certificate accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 3
	if _, err := DecodeCertificate(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := DecodeCertificate(nil); err == nil {
		t.Fatal("empty certificate accepted")
	}
}

// FuzzCertificateDecode: Header.Extra arrives from untrusted block
// producers; the decoder must be total and canonical.
func FuzzCertificateDecode(f *testing.F) {
	f.Add(Certificate{WaitNanos: 1, Sig: []byte("sig")}.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCertificate(data)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Encode(), data) {
			t.Fatal("non-canonical certificate accepted")
		}
	})
}
