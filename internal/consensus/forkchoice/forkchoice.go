// Package forkchoice implements the two branch-selection algorithms the
// paper discusses: Nakamoto's longest-chain rule (Section 2.4) and the
// GHOST rule Ethereum adopted to tolerate shorter block intervals
// (Section 2.7). Both operate on the block tree; they are interchangeable
// under any proposal engine, which is exactly the ablation experiment E3
// exercises.
package forkchoice

import (
	"bytes"
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/store"
)

// LongestChain selects the tip with the greatest cumulative difficulty
// (ties broken by height, then lowest hash, so all peers agree).
type LongestChain struct{}

// Name implements consensus.ForkChoice.
func (LongestChain) Name() string { return "longest" }

// Choose implements consensus.ForkChoice.
func (LongestChain) Choose(tree *store.BlockTree) (cryptoutil.Hash, error) {
	tips := tree.Tips()
	if len(tips) == 0 {
		return tree.Genesis(), nil
	}
	var (
		best   cryptoutil.Hash
		bestTD uint64
		bestH  uint64
		found  bool
	)
	for _, tip := range tips {
		td, err := tree.TotalDifficulty(tip)
		if err != nil {
			return cryptoutil.ZeroHash, fmt.Errorf("longest: %w", err)
		}
		h, err := tree.Height(tip)
		if err != nil {
			return cryptoutil.ZeroHash, fmt.Errorf("longest: %w", err)
		}
		if !found || td > bestTD || (td == bestTD && h > bestH) ||
			(td == bestTD && h == bestH && bytes.Compare(tip[:], best[:]) < 0) {
			best, bestTD, bestH, found = tip, td, h, true
		}
	}
	return best, nil
}

// GHOST implements the Greedy Heaviest-Observed Sub-Tree rule: starting
// from genesis, repeatedly descend into the child whose subtree contains
// the most blocks, so stale sibling blocks still contribute weight to
// their ancestors' branch.
type GHOST struct{}

// Name implements consensus.ForkChoice.
func (GHOST) Name() string { return "ghost" }

// Choose implements consensus.ForkChoice.
func (GHOST) Choose(tree *store.BlockTree) (cryptoutil.Hash, error) {
	cur := tree.Genesis()
	for {
		children := tree.Children(cur)
		if len(children) == 0 {
			return cur, nil
		}
		var (
			best     cryptoutil.Hash
			bestSize = -1
		)
		for _, c := range children {
			size, err := tree.SubtreeSize(c)
			if err != nil {
				return cryptoutil.ZeroHash, fmt.Errorf("ghost: %w", err)
			}
			if size > bestSize || (size == bestSize && bytes.Compare(c[:], best[:]) < 0) {
				best, bestSize = c, size
			}
		}
		cur = best
	}
}
