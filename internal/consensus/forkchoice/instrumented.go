package forkchoice

import (
	"sync/atomic"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/metrics"
	"dcsledger/internal/obs"
	"dcsledger/internal/store"
)

// Instrumented decorates any ForkChoice with pipeline observability:
// every Choose is timed into an optional latency histogram, recorded as
// a fork_choice span on an optional tracer, and tip switches (the
// decision changing from the previous call's answer) are counted. The
// zero-value extras are all optional — a bare
// &Instrumented{Inner: GHOST{}} is a transparent pass-through — so the
// same wrapper serves the daemon (histogram + /metrics), the benchmark
// harness (tracer), and tests.
type Instrumented struct {
	// Inner is the wrapped branch-selection rule.
	Inner consensus.ForkChoice
	// Tracer receives one fork_choice span per Choose (nil = off).
	Tracer *obs.Tracer
	// Hist receives each Choose latency (nil = off).
	Hist *metrics.Histogram
	// Peer labels the spans (the observing node's ID).
	Peer string

	last     atomic.Value // cryptoutil.Hash: previous Choose answer
	switches atomic.Uint64
}

var _ consensus.ForkChoice = (*Instrumented)(nil)

// Name implements consensus.ForkChoice, delegating to the wrapped rule
// so experiment labels stay stable under instrumentation.
func (i *Instrumented) Name() string { return i.Inner.Name() }

// Choose implements consensus.ForkChoice: runs the wrapped rule, records
// its latency, and counts a switch when the chosen tip differs from the
// previous successful call's.
func (i *Instrumented) Choose(tree *store.BlockTree) (cryptoutil.Hash, error) {
	sw := obs.StartTimer()
	tip, err := i.Inner.Choose(tree)
	if err != nil {
		return tip, err
	}
	dur := sw.Elapsed()
	if i.Hist != nil {
		i.Hist.ObserveDuration(dur)
	}
	switched := uint64(0)
	if prev, ok := i.last.Load().(cryptoutil.Hash); ok && prev != tip {
		i.switches.Add(1)
		switched = 1
	}
	i.last.Store(tip)
	i.Tracer.Record(obs.Span{
		Stage: obs.StageForkChoice,
		Start: sw.StartUnixNano(),
		Dur:   int64(dur),
		Peer:  i.Peer,
		N:     switched,
	})
	return tip, nil
}

// Switches returns how many times the decision changed tips across
// successful Choose calls — the fork-churn signal behind the paper's
// consistency-vs-scalability trade-off (stale branches under short
// block intervals).
func (i *Instrumented) Switches() uint64 { return i.switches.Load() }
