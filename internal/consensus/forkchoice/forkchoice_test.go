package forkchoice

import (
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/store"
	"dcsledger/internal/types"
)

func mkBlock(parent *types.Block, marker string, difficulty uint64) *types.Block {
	miner := cryptoutil.KeyFromSeed([]byte(marker)).Address()
	cb := types.NewCoinbase(miner, 50, parent.Header.Height+1)
	cb.Data = []byte(marker)
	b := types.NewBlock(parent.Hash(), parent.Header.Height+1, int64(parent.Header.Height+1), miner, []*types.Transaction{cb})
	b.Header.Difficulty = difficulty
	return b
}

func mustAdd(t *testing.T, tree *store.BlockTree, blocks ...*types.Block) {
	t.Helper()
	for _, b := range blocks {
		if err := tree.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
}

func TestGenesisOnly(t *testing.T) {
	g := types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
	tree := store.NewBlockTree(g)
	for _, fc := range []interface {
		Choose(*store.BlockTree) (cryptoutil.Hash, error)
	}{LongestChain{}, GHOST{}} {
		tip, err := fc.Choose(tree)
		if err != nil {
			t.Fatalf("Choose: %v", err)
		}
		if tip != g.Hash() {
			t.Fatal("genesis-only tree must choose genesis")
		}
	}
}

// buildGHOSTCounterexample builds the classic tree where GHOST and
// longest-chain disagree:
//
//	        ┌─ a1 ─ a2 ─ a3          (long, lonely chain)
//	g ──────┤
//	        └─ b1 ┬ b2
//	              ├ c2
//	              └ d2               (short but heavily attested subtree)
//
// Longest chain prefers a3 (height 3); GHOST prefers the b-subtree
// (4 blocks vs 3) and lands on its deepest member.
func buildGHOSTCounterexample(t *testing.T) (*store.BlockTree, cryptoutil.Hash, cryptoutil.Hash) {
	t.Helper()
	g := types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
	tree := store.NewBlockTree(g)
	a1 := mkBlock(g, "a1", 1)
	a2 := mkBlock(a1, "a2", 1)
	a3 := mkBlock(a2, "a3", 1)
	b1 := mkBlock(g, "b1", 1)
	b2 := mkBlock(b1, "b2", 1)
	c2 := mkBlock(b1, "c2", 1)
	d2 := mkBlock(b1, "d2", 1)
	mustAdd(t, tree, a1, a2, a3, b1, b2, c2, d2)
	return tree, a3.Hash(), b1.Hash()
}

func TestLongestChainPrefersHeight(t *testing.T) {
	tree, a3, _ := buildGHOSTCounterexample(t)
	tip, err := LongestChain{}.Choose(tree)
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if tip != a3 {
		t.Fatalf("longest chain chose %s, want a3", tip.Short())
	}
}

func TestGHOSTPrefersHeavySubtree(t *testing.T) {
	tree, a3, b1 := buildGHOSTCounterexample(t)
	tip, err := GHOST{}.Choose(tree)
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if tip == a3 {
		t.Fatal("GHOST must not choose the lonely long chain")
	}
	ok, err := tree.Ancestor(b1, tip)
	if err != nil || !ok {
		t.Fatalf("GHOST tip %s should descend from b1", tip.Short())
	}
}

func TestLongestChainUsesDifficulty(t *testing.T) {
	// A shorter branch with more total difficulty must win.
	g := types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
	tree := store.NewBlockTree(g)
	a1 := mkBlock(g, "a1", 1)
	a2 := mkBlock(a1, "a2", 1)
	heavy := mkBlock(g, "heavy", 10)
	mustAdd(t, tree, a1, a2, heavy)
	tip, err := LongestChain{}.Choose(tree)
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if tip != heavy.Hash() {
		t.Fatalf("difficulty-weighted choice = %s, want heavy", tip.Short())
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal branches: both rules must pick the same tip on every
	// call (consistency requires all peers agree).
	g := types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
	tree := store.NewBlockTree(g)
	x := mkBlock(g, "x", 1)
	y := mkBlock(g, "y", 1)
	mustAdd(t, tree, x, y)
	for _, fc := range []interface {
		Name() string
		Choose(*store.BlockTree) (cryptoutil.Hash, error)
	}{LongestChain{}, GHOST{}} {
		first, err := fc.Choose(tree)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		for i := 0; i < 5; i++ {
			again, err := fc.Choose(tree)
			if err != nil || again != first {
				t.Fatalf("%s: tie break unstable", fc.Name())
			}
		}
	}
}

func TestAgreementOnLinearChain(t *testing.T) {
	// With no forks the two rules agree.
	g := types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
	tree := store.NewBlockTree(g)
	parent := g
	for i := 0; i < 10; i++ {
		b := mkBlock(parent, string(rune('a'+i)), 1)
		mustAdd(t, tree, b)
		parent = b
	}
	l, err := LongestChain{}.Choose(tree)
	if err != nil {
		t.Fatalf("longest: %v", err)
	}
	gh, err := GHOST{}.Choose(tree)
	if err != nil {
		t.Fatalf("ghost: %v", err)
	}
	if l != gh || l != parent.Hash() {
		t.Fatal("rules must agree on a linear chain")
	}
}

func TestNames(t *testing.T) {
	if (LongestChain{}).Name() != "longest" || (GHOST{}).Name() != "ghost" {
		t.Fatal("names changed")
	}
}
