package ordering

// Binary codec for ordered batches. A batch rides the raft log and the
// pbft operation stream, so its encoding sits on the ordering hot path;
// transactions reuse the canonical types.Transaction encoding.

import (
	"fmt"

	"dcsledger/internal/types"
	"dcsledger/internal/wire"
)

const (
	// BatchCodecVersion tags the batch encoding; bump on layout change.
	BatchCodecVersion = 1
	// MaxBatchTxs bounds the transaction count a decoded batch may
	// claim, so a forged count cannot drive allocation; cut batches
	// (BatchConfig.MaxTxs, default 256) are always far smaller.
	MaxBatchTxs = 1 << 16
	// MaxBatchTxLen bounds one encoded transaction inside a batch.
	MaxBatchTxLen = 1 << 24
)

// Encode renders the batch in its canonical binary form.
func (b Batch) Encode() []byte {
	var w wire.Buffer
	w.U8(BatchCodecVersion)
	w.U64(b.Seq)
	w.U32(uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		w.Blob(tx.Encode())
	}
	return w.Bytes()
}

// DecodeBatch parses a canonical batch encoding, rejecting trailing
// bytes, forged counts, and malformed transactions.
func DecodeBatch(data []byte) (Batch, error) {
	var b Batch
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != BatchCodecVersion {
		return b, fmt.Errorf("ordering: unknown batch version %d", v)
	}
	b.Seq = rd.U64()
	count := rd.Count(MaxBatchTxs)
	for i := uint32(0); i < count && rd.Err() == nil; i++ {
		raw := rd.Blob(MaxBatchTxLen)
		if rd.Err() != nil {
			break
		}
		tx, err := types.DecodeTransaction(raw)
		if err != nil {
			return b, fmt.Errorf("ordering: batch tx %d: %w", i, err)
		}
		b.Txs = append(b.Txs, tx)
	}
	return b, rd.Close()
}
