package ordering

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/consensus/pbft"
	"dcsledger/internal/consensus/raft"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
	"dcsledger/internal/types"
)

func tx(i int) *types.Transaction {
	return types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i))
}

func TestSoloCutsBySize(t *testing.T) {
	sim := simclock.NewSimulator()
	s := NewSolo(BatchConfig{MaxTxs: 4, Timeout: time.Hour}, sim)
	var got []Batch
	s.Subscribe(func(b Batch) { got = append(got, b) })
	for i := 0; i < 10; i++ {
		if err := s.Submit(tx(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("batches = %d, want 2 (full cuts)", len(got))
	}
	if len(got[0].Txs) != 4 || len(got[1].Txs) != 4 {
		t.Fatal("full batches must have MaxTxs transactions")
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatal("batch sequence must increment")
	}
}

func TestSoloCutsByTimeout(t *testing.T) {
	sim := simclock.NewSimulator()
	s := NewSolo(BatchConfig{MaxTxs: 100, Timeout: time.Second}, sim)
	var got []Batch
	s.Subscribe(func(b Batch) { got = append(got, b) })
	if err := s.Submit(tx(0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(got) != 0 {
		t.Fatal("batch must not cut before timeout")
	}
	sim.RunFor(2 * time.Second)
	if len(got) != 1 || len(got[0].Txs) != 1 {
		t.Fatalf("timeout cut missing: %v", got)
	}
}

func TestSoloOrderIsTotal(t *testing.T) {
	sim := simclock.NewSimulator()
	s := NewSolo(BatchConfig{MaxTxs: 3, Timeout: time.Second}, sim)
	var a, b []uint64
	s.Subscribe(func(batch Batch) {
		for _, tx := range batch.Txs {
			a = append(a, tx.Value)
		}
	})
	s.Subscribe(func(batch Batch) {
		for _, tx := range batch.Txs {
			b = append(b, tx.Value)
		}
	})
	for i := 0; i < 9; i++ {
		if err := s.Submit(tx(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	sim.RunFor(2 * time.Second)
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("subscribers saw %d/%d txs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != uint64(i) {
			t.Fatalf("order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSoloStop(t *testing.T) {
	sim := simclock.NewSimulator()
	s := NewSolo(BatchConfig{}, sim)
	s.Stop()
	if err := s.Submit(tx(0)); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

// raftCluster builds an n-orderer raft cluster and returns the orderers.
func raftCluster(t *testing.T, sim *simclock.Simulator, n int, cfg BatchConfig) ([]*Raft, []*raft.Node) {
	t.Helper()
	net := p2p.NewSimNetwork(sim, 21, p2p.WithLatency(5*time.Millisecond))
	var ids []p2p.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, p2p.NodeName(i))
	}
	var (
		orderers []*Raft
		nodes    []*raft.Node
	)
	for i, id := range ids {
		var peers []p2p.NodeID
		for _, other := range ids {
			if other != id {
				peers = append(peers, other)
			}
		}
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		o := NewRaft(cfg, sim)
		node := raft.NewNode(id, peers, ep, sim, rand.New(rand.NewSource(int64(i+1))),
			raft.Config{ElectionTimeout: 100 * time.Millisecond}, o.Apply)
		o.Attach(node)
		mux.Handle(raft.MsgPrefix, node.HandleMessage)
		orderers = append(orderers, o)
		nodes = append(nodes, node)
	}
	for _, node := range nodes {
		node.Start()
	}
	return orderers, nodes
}

func leaderOrderer(t *testing.T, sim *simclock.Simulator, orderers []*Raft) *Raft {
	t.Helper()
	for round := 0; round < 100; round++ {
		sim.RunFor(100 * time.Millisecond)
		for _, o := range orderers {
			if o.IsLeader() {
				return o
			}
		}
	}
	t.Fatal("no raft orderer leader")
	return nil
}

func TestRaftOrdererReplicatesBatches(t *testing.T) {
	sim := simclock.NewSimulator()
	orderers, _ := raftCluster(t, sim, 3, BatchConfig{MaxTxs: 5, Timeout: time.Second})
	delivered := make([][]uint64, 3)
	for i, o := range orderers {
		i := i
		o.Subscribe(func(b Batch) {
			for _, tx := range b.Txs {
				delivered[i] = append(delivered[i], tx.Value)
			}
		})
	}
	leader := leaderOrderer(t, sim, orderers)
	for i := 0; i < 20; i++ {
		if err := leader.Submit(tx(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	sim.RunFor(5 * time.Second)
	for i, seq := range delivered {
		if len(seq) != 20 {
			t.Fatalf("orderer %d delivered %d/20 txs", i, len(seq))
		}
		for j, v := range seq {
			if v != uint64(j) {
				t.Fatalf("orderer %d order broken at %d", i, j)
			}
		}
	}
}

func TestRaftOrdererFollowerRejects(t *testing.T) {
	sim := simclock.NewSimulator()
	orderers, _ := raftCluster(t, sim, 3, BatchConfig{})
	leader := leaderOrderer(t, sim, orderers)
	for _, o := range orderers {
		if o == leader {
			continue
		}
		if err := o.Submit(tx(0)); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("want ErrNotLeader, got %v", err)
		}
	}
}

func TestRaftOrdererSurvivesLeaderCrash(t *testing.T) {
	sim := simclock.NewSimulator()
	orderers, nodes := raftCluster(t, sim, 3, BatchConfig{MaxTxs: 2, Timeout: 100 * time.Millisecond})
	var survivors []uint64
	orderers[0].Subscribe(func(b Batch) {})
	leader := leaderOrderer(t, sim, orderers)
	var leaderIdx int
	for i, o := range orderers {
		if o == leader {
			leaderIdx = i
		}
		i := i
		o.Subscribe(func(b Batch) {
			if i != leaderIdx {
				for _, tx := range b.Txs {
					survivors = append(survivors, tx.Value)
				}
			}
		})
	}
	if err := leader.Submit(tx(1)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := leader.Submit(tx(2)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sim.RunFor(time.Second)
	// Crash the leader; a new one takes over and keeps ordering.
	nodes[leaderIdx].Stop()
	leader.Stop()
	newLeader := leaderOrderer(t, sim, orderersWithout(orderers, leaderIdx))
	if err := newLeader.Submit(tx(3)); err != nil {
		t.Fatalf("Submit after failover: %v", err)
	}
	if err := newLeader.Submit(tx(4)); err != nil {
		t.Fatalf("Submit after failover: %v", err)
	}
	sim.RunFor(2 * time.Second)
	// One survivor subscriber sees all four txs in order (two before,
	// two after the crash). survivors aggregates both survivor orderers;
	// check per-tx multiset instead of strict slice.
	counts := map[uint64]int{}
	for _, v := range survivors {
		counts[v]++
	}
	for _, v := range []uint64{1, 2, 3, 4} {
		if counts[v] == 0 {
			t.Fatalf("tx %d lost across failover (got %v)", v, counts)
		}
	}
}

func orderersWithout(all []*Raft, skip int) []*Raft {
	var out []*Raft
	for i, o := range all {
		if i != skip {
			out = append(out, o)
		}
	}
	return out
}

// TestCommitterAgreesViaPBFT wires a solo orderer to four committing
// peers that agree on batches through PBFT — the full Hyperledger
// pattern of Section 2.4.
func TestCommitterAgreesViaPBFT(t *testing.T) {
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 8, p2p.WithLatency(5*time.Millisecond))
	orderer := NewSolo(BatchConfig{MaxTxs: 3, Timeout: time.Second}, sim)

	var ids []p2p.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, p2p.NodeName(i))
	}
	executed := make(map[p2p.NodeID][]uint64)
	var committers []*Committer
	for _, id := range ids {
		id := id
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		c := NewCommitter(func(b Batch) {
			for _, tx := range b.Txs {
				executed[id] = append(executed[id], tx.Value)
			}
		})
		node, err := pbft.NewNode(id, ids, ep, sim, pbft.Config{ViewTimeout: time.Second}, c.Apply)
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		c.Attach(node)
		mux.Handle(pbft.MsgPrefix, node.HandleMessage)
		orderer.Subscribe(c.OnBatch)
		committers = append(committers, c)
	}

	for i := 0; i < 9; i++ {
		if err := orderer.Submit(tx(i)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	sim.RunFor(10 * time.Second)
	for _, id := range ids {
		got := executed[id]
		if len(got) != 9 {
			t.Fatalf("peer %s executed %d/9 txs", id, len(got))
		}
		for j, v := range got {
			if v != uint64(j) {
				t.Fatalf("peer %s execution order broken: %v", id, got)
			}
		}
	}
	if committers[0].Committed() != 3 {
		t.Fatalf("committed batches = %d, want 3", committers[0].Committed())
	}
}

func TestRaftOrdererThroughputScalesWithBatchSize(t *testing.T) {
	// Sanity for E4's shape: bigger batches → fewer raft proposals for
	// the same tx count.
	proposals := func(batch int) uint64 {
		sim := simclock.NewSimulator()
		orderers, nodes := raftCluster(t, sim, 3, BatchConfig{MaxTxs: batch, Timeout: 10 * time.Second})
		leader := leaderOrderer(t, sim, orderers)
		for i := 0; i < 64; i++ {
			if err := leader.Submit(tx(i)); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		sim.RunFor(5 * time.Second)
		var leaderNode *raft.Node
		for _, n := range nodes {
			if n.IsLeader() {
				leaderNode = n
			}
		}
		if leaderNode == nil {
			t.Fatal("leader vanished")
		}
		return uint64(leaderNode.LogLen())
	}
	small, large := proposals(4), proposals(32)
	if large >= small {
		t.Fatalf("batching should reduce proposals: batch4=%d batch32=%d", small, large)
	}
}
