// Package ordering implements the Hyperledger-style ordering service of
// Section 2.4: transactions are submitted to an orderer, which cuts them
// into totally-ordered batches ("blocks") by size or timeout. There is
// no branching and no branch-selection algorithm — the trade the paper
// describes for permissioned (CS) systems.
//
// Two orderers are provided: Solo (a static, centralized leader) and
// Raft (a replicated orderer cluster with periodic leader election).
// Committer funnels delivered batches through PBFT so committing peers
// agree on the execution order even if some peers are Byzantine —
// Hyperledger's split between ordering and validation.
package ordering

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dcsledger/internal/consensus/pbft"
	"dcsledger/internal/consensus/raft"
	"dcsledger/internal/obs"
	"dcsledger/internal/simclock"
	"dcsledger/internal/types"
)

// Package errors, matchable with errors.Is.
var (
	ErrNotLeader = errors.New("ordering: this orderer is not the leader")
	ErrStopped   = errors.New("ordering: orderer stopped")
)

// Batch is one ordered block of transactions. It travels the raft log
// and the pbft operation stream in the binary encoding of codec.go.
type Batch struct {
	Seq uint64
	Txs []*types.Transaction
}

// DeliverFunc receives ordered batches, in Seq order, exactly once.
type DeliverFunc func(Batch)

// BatchConfig controls batch cutting.
type BatchConfig struct {
	// MaxTxs cuts a batch when this many transactions are buffered.
	MaxTxs int
	// Timeout cuts a nonempty batch after this much time even if it is
	// not full, bounding latency at low load.
	Timeout time.Duration
}

func (c *BatchConfig) defaults() {
	if c.MaxTxs <= 0 {
		c.MaxTxs = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
}

// Solo is the centralized single-process orderer (Hyperledger's "solo"):
// maximal throughput, no fault tolerance, zero decentralization.
type Solo struct {
	mu      sync.Mutex
	cfg     BatchConfig
	clock   simclock.Clock
	buf     []*types.Transaction
	seq     uint64
	subs    []DeliverFunc
	timer   *simclock.Timer
	stopped bool

	tracer  *obs.Tracer
	firstAt time.Time // clock time the current batch's first tx arrived
}

// NewSolo creates a solo orderer.
func NewSolo(cfg BatchConfig, clock simclock.Clock) *Solo {
	cfg.defaults()
	return &Solo{cfg: cfg, clock: clock}
}

// Subscribe registers a committing peer's delivery callback.
func (s *Solo) Subscribe(fn DeliverFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//dcslint:ignore unbounded one Subscribe per peer at wiring time; the set is fixed by deployment config, not network input
	s.subs = append(s.subs, fn)
}

// SetTracer wires the pipeline event tracer: each batch cut records an
// ordering_cut span whose duration is the (clock) time the batch's
// oldest transaction waited before the cut — the batching latency the
// Timeout knob bounds. Call before Submit traffic starts.
func (s *Solo) SetTracer(tr *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// Submit implements the orderer interface.
func (s *Solo) Submit(tx *types.Transaction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrStopped
	}
	s.buf = append(s.buf, tx)
	if len(s.buf) == 1 {
		s.firstAt = s.clock.Now()
	}
	if len(s.buf) >= s.cfg.MaxTxs {
		s.cutLocked()
		return nil
	}
	if s.timer == nil {
		s.timer = s.clock.After(s.cfg.Timeout, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.timer = nil
			if !s.stopped && len(s.buf) > 0 {
				s.cutLocked()
			}
		})
	}
	return nil
}

// Stop halts the orderer, flushing nothing.
func (s *Solo) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	s.timer.Stop()
	s.timer = nil
}

// Delivered returns the number of batches cut so far.
func (s *Solo) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *Solo) cutLocked() {
	s.timer.Stop()
	s.timer = nil
	s.seq++
	b := Batch{Seq: s.seq, Txs: s.buf}
	s.buf = nil
	s.tracer.Record(obs.Span{
		Stage:  obs.StageOrderingCut,
		Start:  s.firstAt.UnixNano(),
		Dur:    int64(s.clock.Now().Sub(s.firstAt)),
		Peer:   "solo",
		Height: b.Seq,
		N:      uint64(len(b.Txs)),
	})
	for _, fn := range s.subs {
		fn(b)
	}
}

// Raft is the replicated orderer: the elected leader cuts batches and
// replicates them through a Raft log, so ordering survives orderer
// crashes (the "distributed ordering service with periodic leader
// election" of the paper).
type Raft struct {
	mu      sync.Mutex
	cfg     BatchConfig
	clock   simclock.Clock
	node    *raft.Node
	buf     []*types.Transaction
	subs    []DeliverFunc
	timer   *simclock.Timer
	seq     uint64
	stopped bool

	tracer  *obs.Tracer
	firstAt time.Time // clock time the current batch's first tx arrived
}

// NewRaft creates a replicated orderer. Construction is two-phase
// because the raft node needs the orderer's Apply callback:
//
//	o := ordering.NewRaft(cfg, clock)
//	node := raft.NewNode(..., o.Apply)
//	o.Attach(node)
func NewRaft(cfg BatchConfig, clock simclock.Clock) *Raft {
	cfg.defaults()
	return &Raft{cfg: cfg, clock: clock}
}

// Attach binds the raft node. Must be called before Submit.
func (r *Raft) Attach(node *raft.Node) { r.node = node }

// Apply is the raft ApplyFunc: decodes committed batches and delivers
// them.
func (r *Raft) Apply(index uint64, data []byte) {
	b, err := DecodeBatch(data)
	if err != nil {
		return
	}
	r.mu.Lock()
	r.seq = b.Seq
	subs := append([]DeliverFunc(nil), r.subs...)
	r.mu.Unlock()
	for _, fn := range subs {
		fn(b)
	}
}

// Subscribe registers a committing peer's delivery callback.
func (r *Raft) Subscribe(fn DeliverFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//dcslint:ignore unbounded one Subscribe per peer at wiring time; the set is fixed by deployment config, not network input
	r.subs = append(r.subs, fn)
}

// SetTracer wires the pipeline event tracer: each batch cut at the
// leader records an ordering_cut span (see Solo.SetTracer).
func (r *Raft) SetTracer(tr *obs.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = tr
}

// IsLeader reports whether this orderer currently leads the cluster.
func (r *Raft) IsLeader() bool { return r.node.IsLeader() }

// Submit buffers a transaction at the leader. Followers reject with
// ErrNotLeader; clients retry against the current leader.
func (r *Raft) Submit(tx *types.Transaction) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return ErrStopped
	}
	if !r.node.IsLeader() {
		return fmt.Errorf("%w (leader: %s)", ErrNotLeader, r.node.Leader())
	}
	r.buf = append(r.buf, tx)
	if len(r.buf) == 1 {
		r.firstAt = r.clock.Now()
	}
	if len(r.buf) >= r.cfg.MaxTxs {
		return r.cutLocked()
	}
	if r.timer == nil {
		r.timer = r.clock.After(r.cfg.Timeout, func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.timer = nil
			if !r.stopped && len(r.buf) > 0 && r.node.IsLeader() {
				_ = r.cutLocked()
			}
		})
	}
	return nil
}

// Stop halts the orderer (the raft node is stopped separately).
func (r *Raft) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	r.timer.Stop()
	r.timer = nil
}

// Delivered returns the latest delivered batch sequence.
func (r *Raft) Delivered() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

func (r *Raft) cutLocked() error {
	r.timer.Stop()
	r.timer = nil
	b := Batch{Seq: r.nextSeqLocked(), Txs: r.buf}
	if _, err := r.node.Propose(b.Encode()); err != nil {
		return fmt.Errorf("ordering: %w", err)
	}
	r.tracer.Record(obs.Span{
		Stage:  obs.StageOrderingCut,
		Start:  r.firstAt.UnixNano(),
		Dur:    int64(r.clock.Now().Sub(r.firstAt)),
		Peer:   "raft",
		Height: b.Seq,
		N:      uint64(len(b.Txs)),
	})
	r.buf = nil
	return nil
}

// nextSeqLocked derives the next batch sequence from the raft log
// length, which is consistent at the leader.
func (r *Raft) nextSeqLocked() uint64 {
	return uint64(r.node.LogLen()) + 1
}

// Committer runs at a committing peer: batches delivered by the orderer
// are pushed through PBFT so all (≤ f faulty) peers agree on the
// execution sequence, then executed via exec.
type Committer struct {
	mu    sync.Mutex
	node  *pbft.Node
	exec  func(Batch)
	seen  map[uint64]bool
	count uint64
}

// NewCommitter creates a committer. Wire its Apply as the PBFT node's
// ApplyFunc and its OnBatch as the orderer subscription.
func NewCommitter(exec func(Batch)) *Committer {
	return &Committer{exec: exec, seen: make(map[uint64]bool)}
}

// Attach binds the PBFT node used for agreement.
func (c *Committer) Attach(node *pbft.Node) { c.node = node }

// OnBatch receives a batch from the orderer and proposes it to the
// peer-group's PBFT instance.
func (c *Committer) OnBatch(b Batch) {
	_ = c.node.Propose(b.Encode())
}

// Apply is the PBFT ApplyFunc: executes each agreed batch once.
func (c *Committer) Apply(seq uint64, op []byte) {
	b, err := DecodeBatch(op)
	if err != nil {
		return
	}
	c.mu.Lock()
	if c.seen[b.Seq] {
		c.mu.Unlock()
		return
	}
	c.seen[b.Seq] = true
	c.count++
	c.mu.Unlock()
	if c.exec != nil {
		c.exec(b)
	}
}

// Committed returns how many distinct batches this peer has executed.
func (c *Committer) Committed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}
