package ordering

import (
	"bytes"
	"testing"

	"dcsledger/internal/types"
	"dcsledger/internal/wire"
)

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{Seq: 7, Txs: []*types.Transaction{tx(1), tx(2), tx(3)}}
	got, err := DecodeBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != b.Seq || len(got.Txs) != len(b.Txs) {
		t.Fatalf("got %+v", got)
	}
	for i := range b.Txs {
		if got.Txs[i].ID() != b.Txs[i].ID() {
			t.Fatalf("tx %d identity mismatch", i)
		}
	}
	// Empty batch.
	if got, err := DecodeBatch(Batch{Seq: 1}.Encode()); err != nil || got.Seq != 1 || len(got.Txs) != 0 {
		t.Fatalf("empty batch: %+v, %v", got, err)
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	enc := Batch{Seq: 1, Txs: []*types.Transaction{tx(1)}}.Encode()
	if _, err := DecodeBatch(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeBatch(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated batch accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 9
	if _, err := DecodeBatch(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// A batch whose tx blob is not a valid transaction must be rejected,
	// not silently skipped: the raft log and pbft stream carry only
	// canonical batches.
	var w wire.Buffer
	w.U8(BatchCodecVersion)
	w.U64(1)
	w.U32(1)
	w.Blob([]byte("not a transaction"))
	if _, err := DecodeBatch(w.Bytes()); err == nil {
		t.Fatal("garbage tx blob accepted")
	}
}

// FuzzBatchDecode: batches are pbft operations proposed by any peer.
func FuzzBatchDecode(f *testing.F) {
	f.Add(Batch{Seq: 3, Txs: []*types.Transaction{tx(1)}}.Encode())
	f.Add(Batch{}.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if !bytes.Equal(b.Encode(), data) {
			t.Fatal("non-canonical batch accepted")
		}
	})
}
