// Package pos implements proof-of-stake block proposal (Section 2.4,
// PeerCoin-style): time is divided into slots, and each slot's proposer
// is drawn pseudo-randomly with probability proportional to committed
// stake ("follow the coin"). Forging a block costs one signature instead
// of a hash race, which is the energy argument of Section 5.4; safety
// against equivocation is restored economically by slashing (Slasher).
package pos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/simclock"
	"dcsledger/internal/types"
)

// Package errors, matchable with errors.Is.
var (
	ErrNoStake      = errors.New("pos: validator has no stake")
	ErrEquivocation = errors.New("pos: proposer equivocated in slot")
)

// Config parameterizes the PoS engine.
type Config struct {
	// SlotInterval is the wall-clock length of one proposal slot.
	SlotInterval time.Duration
	// Stakes is the validator set with committed stakes.
	Stakes map[cryptoutil.Address]uint64
}

// Engine is a per-node PoS instance.
type Engine struct {
	cfg   Config
	clock simclock.Clock
	key   *cryptoutil.KeyPair // nil for verify-only instances

	order []cryptoutil.Address // validators sorted by address
	cum   []uint64             // cumulative stakes aligned with order
	total uint64
}

var _ consensus.Engine = (*Engine)(nil)

// New creates a PoS engine. key may be nil for observer nodes that only
// verify.
func New(cfg Config, clock simclock.Clock, key *cryptoutil.KeyPair) *Engine {
	e := &Engine{cfg: cfg, clock: clock, key: key}
	if e.cfg.SlotInterval <= 0 {
		e.cfg.SlotInterval = 10 * time.Second
	}
	for a := range cfg.Stakes {
		e.order = append(e.order, a)
	}
	sort.Slice(e.order, func(i, j int) bool {
		return bytes.Compare(e.order[i][:], e.order[j][:]) < 0
	})
	e.cum = make([]uint64, len(e.order))
	for i, a := range e.order {
		e.total += cfg.Stakes[a]
		e.cum[i] = e.total
	}
	return e
}

// Name implements consensus.Engine.
func (e *Engine) Name() string { return "pos" }

// TotalStake returns the sum of all committed stake.
func (e *Engine) TotalStake() uint64 { return e.total }

// SlotAt returns the slot number containing time t.
func (e *Engine) SlotAt(t time.Time) uint64 {
	ns := t.UnixNano()
	if ns < 0 {
		return 0
	}
	return uint64(ns) / uint64(e.cfg.SlotInterval)
}

// slotStart returns the instant slot s begins.
func (e *Engine) slotStart(s uint64) time.Time {
	return time.Unix(0, int64(s)*int64(e.cfg.SlotInterval))
}

// ProposerForSlot returns the stake-weighted pseudo-random proposer for
// a slot on top of the given parent. The draw is verifiable: any peer
// recomputes it from public data.
func (e *Engine) ProposerForSlot(parent cryptoutil.Hash, slot uint64) (cryptoutil.Address, error) {
	if e.total == 0 {
		return cryptoutil.ZeroAddress, ErrNoStake
	}
	seed := cryptoutil.HashBytes([]byte("pos/slot"), parent[:], u64bytes(slot))
	r := binary.BigEndian.Uint64(seed[:8]) % e.total
	// First validator whose cumulative stake exceeds r.
	i := sort.Search(len(e.cum), func(i int) bool { return e.cum[i] > r })
	return e.order[i], nil
}

// Prepare implements consensus.Engine: PoS blocks carry unit difficulty
// so longest-chain weight equals chain length.
func (e *Engine) Prepare(hdr *types.BlockHeader, parent *types.Block) error {
	hdr.Difficulty = 1
	return nil
}

// Delay implements consensus.Engine: time until the start of the next
// slot (strictly after the parent's slot) in which self is the drawn
// proposer.
func (e *Engine) Delay(parent *types.Block, self cryptoutil.Address) (time.Duration, bool) {
	if e.cfg.Stakes[self] == 0 {
		return 0, false
	}
	now := e.clock.Now()
	startSlot := e.SlotAt(now) + 1
	if pt := e.SlotAt(time.Unix(0, parent.Header.Time)); pt >= startSlot {
		startSlot = pt + 1
	}
	parentHash := parent.Hash()
	// Scan a bounded horizon of future slots for one we own.
	horizon := uint64(64 * (len(e.order) + 1))
	for s := startSlot; s < startSlot+horizon; s++ {
		proposer, err := e.ProposerForSlot(parentHash, s)
		if err != nil {
			return 0, false
		}
		if proposer == self {
			return e.slotStart(s).Sub(now), true
		}
	}
	return 0, false
}

// Seal implements consensus.Engine: stamps the block into its slot and
// signs the header.
func (e *Engine) Seal(b *types.Block, parent *types.Block) error {
	if e.key == nil {
		return fmt.Errorf("%w: engine has no signing key", consensus.ErrNotProposer)
	}
	slot := e.SlotAt(time.Unix(0, b.Header.Time))
	proposer, err := e.ProposerForSlot(parent.Hash(), slot)
	if err != nil {
		return err
	}
	if proposer != e.key.Address() || b.Header.Proposer != proposer {
		return fmt.Errorf("%w: slot %d belongs to %s", consensus.ErrNotProposer, slot, proposer.Short())
	}
	b.Header.Extra = nil
	digest := sealDigest(&b.Header)
	sig, err := e.key.Sign(digest)
	if err != nil {
		return fmt.Errorf("pos: %w", err)
	}
	b.Header.Extra = encodeSeal(e.key.PublicKey(), sig)
	return nil
}

// VerifySeal implements consensus.Engine.
func (e *Engine) VerifySeal(b *types.Block, parent *types.Block) error {
	if b.Header.Time < parent.Header.Time {
		return fmt.Errorf("%w: block time precedes parent", consensus.ErrBadTimestamp)
	}
	slot := e.SlotAt(time.Unix(0, b.Header.Time))
	if parentSlot := e.SlotAt(time.Unix(0, parent.Header.Time)); parent.Header.Height > 0 && slot <= parentSlot {
		return fmt.Errorf("%w: slot %d not after parent slot %d", consensus.ErrBadTimestamp, slot, parentSlot)
	}
	want, err := e.ProposerForSlot(parent.Hash(), slot)
	if err != nil {
		return err
	}
	if b.Header.Proposer != want {
		return fmt.Errorf("%w: proposer %s, slot %d belongs to %s",
			consensus.ErrInvalidSeal, b.Header.Proposer.Short(), slot, want.Short())
	}
	pub, sig, err := decodeSeal(b.Header.Extra)
	if err != nil {
		return err
	}
	if cryptoutil.PubKeyToAddress(pub) != b.Header.Proposer {
		return fmt.Errorf("%w: seal key does not match proposer", consensus.ErrInvalidSeal)
	}
	hdr := b.Header
	hdr.Extra = nil
	if !cryptoutil.Verify(pub, sealDigest(&hdr), sig) {
		return fmt.Errorf("%w: bad proposer signature", consensus.ErrInvalidSeal)
	}
	return nil
}

func sealDigest(h *types.BlockHeader) cryptoutil.Hash {
	return cryptoutil.HashBytes([]byte("pos/seal"), h.Encode())
}

func encodeSeal(pub, sig []byte) []byte {
	out := make([]byte, 0, 1+len(pub)+len(sig))
	out = append(out, byte(len(pub)))
	out = append(out, pub...)
	return append(out, sig...)
}

func decodeSeal(extra []byte) (pub, sig []byte, err error) {
	if len(extra) < 2 {
		return nil, nil, fmt.Errorf("%w: missing seal", consensus.ErrInvalidSeal)
	}
	n := int(extra[0])
	if len(extra) < 1+n+1 {
		return nil, nil, fmt.Errorf("%w: truncated seal", consensus.ErrInvalidSeal)
	}
	return extra[1 : 1+n], extra[1+n:], nil
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Evidence records a proven equivocation: two distinct sealed headers by
// the same proposer for the same parent and slot.
type Evidence struct {
	Proposer cryptoutil.Address
	Slot     uint64
	BlockA   cryptoutil.Hash
	BlockB   cryptoutil.Hash
}

// Slasher detects equivocation and burns the offender's stake — the
// economic deterrent that lets PoS drop the hash race without giving up
// safety. It is safe for concurrent use.
type Slasher struct {
	mu     sync.Mutex
	engine *Engine
	seen   map[string]cryptoutil.Hash
	stakes map[cryptoutil.Address]uint64
}

// NewSlasher creates a slasher over a copy of the given stake table.
func NewSlasher(e *Engine, stakes map[cryptoutil.Address]uint64) *Slasher {
	cp := make(map[cryptoutil.Address]uint64, len(stakes))
	for a, s := range stakes {
		cp[a] = s
	}
	return &Slasher{
		engine: e,
		seen:   make(map[string]cryptoutil.Hash),
		stakes: cp,
	}
}

// Observe records a sealed header. If the proposer already sealed a
// different block for the same parent/slot, the offender's remaining
// stake is burned and the evidence returned.
func (s *Slasher) Observe(parent cryptoutil.Hash, hdr *types.BlockHeader) (*Evidence, error) {
	slot := s.engine.SlotAt(time.Unix(0, hdr.Time))
	key := fmt.Sprintf("%s/%d/%s", hdr.Proposer, slot, parent)
	h := hdr.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.seen[key]
	if !ok {
		s.seen[key] = h
		return nil, nil
	}
	if prev == h {
		return nil, nil
	}
	s.stakes[hdr.Proposer] = 0
	return &Evidence{Proposer: hdr.Proposer, Slot: slot, BlockA: prev, BlockB: h},
		fmt.Errorf("%w: %s at slot %d", ErrEquivocation, hdr.Proposer.Short(), slot)
}

// StakeOf returns the current (post-slashing) stake of addr.
func (s *Slasher) StakeOf(addr cryptoutil.Address) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stakes[addr]
}
