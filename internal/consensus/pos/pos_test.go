package pos

import (
	"errors"
	"math"
	"testing"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/simclock"
	"dcsledger/internal/types"
)

func validators(n int) ([]*cryptoutil.KeyPair, map[cryptoutil.Address]uint64) {
	keys := make([]*cryptoutil.KeyPair, n)
	stakes := make(map[cryptoutil.Address]uint64, n)
	for i := range keys {
		keys[i] = cryptoutil.KeyFromSeed([]byte{byte(i), 'v'})
		stakes[keys[i].Address()] = 100
	}
	return keys, stakes
}

func genesisBlock() *types.Block {
	return types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
}

func TestProposerForSlotDeterministicAndValid(t *testing.T) {
	keys, stakes := validators(5)
	e := New(Config{SlotInterval: time.Second, Stakes: stakes}, simclock.NewSimulator(), keys[0])
	parent := cryptoutil.HashBytes([]byte("parent"))
	for slot := uint64(0); slot < 50; slot++ {
		a, err := e.ProposerForSlot(parent, slot)
		if err != nil {
			t.Fatalf("ProposerForSlot: %v", err)
		}
		if stakes[a] == 0 {
			t.Fatalf("slot %d drew a non-validator", slot)
		}
		b, err := e.ProposerForSlot(parent, slot)
		if err != nil || a != b {
			t.Fatal("proposer draw must be deterministic")
		}
	}
}

func TestProposerSelectionStakeWeighted(t *testing.T) {
	// A validator with 4x the stake should win ≈4x the slots.
	keys, stakes := validators(2)
	whale, minnow := keys[0].Address(), keys[1].Address()
	stakes[whale] = 400
	stakes[minnow] = 100
	e := New(Config{SlotInterval: time.Second, Stakes: stakes}, simclock.NewSimulator(), nil)
	parent := cryptoutil.HashBytes([]byte("p"))
	wins := map[cryptoutil.Address]int{}
	const slots = 5000
	for s := uint64(0); s < slots; s++ {
		a, err := e.ProposerForSlot(parent, s)
		if err != nil {
			t.Fatalf("ProposerForSlot: %v", err)
		}
		wins[a]++
	}
	ratio := float64(wins[whale]) / float64(wins[minnow])
	if math.Abs(ratio-4) > 0.8 {
		t.Fatalf("stake weighting off: whale/minnow = %.2f, want ≈4", ratio)
	}
}

func TestZeroStakeCannotPropose(t *testing.T) {
	keys, stakes := validators(3)
	e := New(Config{SlotInterval: time.Second, Stakes: stakes}, simclock.NewSimulator(), keys[0])
	outsider := cryptoutil.KeyFromSeed([]byte("outsider")).Address()
	if _, ok := e.Delay(genesisBlock(), outsider); ok {
		t.Fatal("zero-stake validator must not get a proposal slot")
	}
}

func TestNoStakeTableErrors(t *testing.T) {
	e := New(Config{SlotInterval: time.Second}, simclock.NewSimulator(), nil)
	if _, err := e.ProposerForSlot(cryptoutil.ZeroHash, 1); !errors.Is(err, ErrNoStake) {
		t.Fatalf("want ErrNoStake, got %v", err)
	}
}

// sealOwnSlot advances the simulator until self owns a slot, then builds
// and seals a block there.
func sealOwnSlot(t *testing.T, e *Engine, sim *simclock.Simulator, parent *types.Block, self *cryptoutil.KeyPair) *types.Block {
	t.Helper()
	d, ok := e.Delay(parent, self.Address())
	if !ok {
		t.Fatal("validator should eventually own a slot")
	}
	sim.RunFor(d)
	b := types.NewBlock(parent.Hash(), parent.Header.Height+1, sim.Now().UnixNano(), self.Address(), nil)
	if err := e.Prepare(&b.Header, parent); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if err := e.Seal(b, parent); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return b
}

func TestSealVerifyRoundTrip(t *testing.T) {
	keys, stakes := validators(4)
	sim := simclock.NewSimulator()
	cfg := Config{SlotInterval: time.Second, Stakes: stakes}
	// Every validator runs its own engine; take the one whose slot comes
	// first and verify at another node.
	engines := make([]*Engine, len(keys))
	for i, k := range keys {
		engines[i] = New(cfg, sim, k)
	}
	g := genesisBlock()

	// Find the earliest slot owner.
	bestIdx, bestDelay := -1, time.Duration(math.MaxInt64)
	for i, k := range keys {
		if d, ok := engines[i].Delay(g, k.Address()); ok && d < bestDelay {
			bestIdx, bestDelay = i, d
		}
	}
	if bestIdx < 0 {
		t.Fatal("no validator owns a slot")
	}
	b := sealOwnSlot(t, engines[bestIdx], sim, g, keys[bestIdx])

	verifier := New(cfg, sim, nil)
	if err := verifier.VerifySeal(b, g); err != nil {
		t.Fatalf("VerifySeal: %v", err)
	}
}

func TestVerifySealRejections(t *testing.T) {
	keys, stakes := validators(4)
	sim := simclock.NewSimulator()
	cfg := Config{SlotInterval: time.Second, Stakes: stakes}
	e0 := New(cfg, sim, keys[0])
	g := genesisBlock()
	b := sealOwnSlot(t, e0, sim, g, keys[0])
	verifier := New(cfg, sim, nil)

	t.Run("tampered header", func(t *testing.T) {
		bb := *b
		bb.Header.StateRoot[0] ^= 1
		if err := verifier.VerifySeal(&bb, g); !errors.Is(err, consensus.ErrInvalidSeal) {
			t.Fatalf("want ErrInvalidSeal, got %v", err)
		}
	})
	t.Run("wrong proposer claims slot", func(t *testing.T) {
		bb := *b
		bb.Header.Proposer = keys[1].Address()
		if err := verifier.VerifySeal(&bb, g); !errors.Is(err, consensus.ErrInvalidSeal) {
			t.Fatalf("want ErrInvalidSeal, got %v", err)
		}
	})
	t.Run("missing seal", func(t *testing.T) {
		bb := *b
		bb.Header.Extra = nil
		if err := verifier.VerifySeal(&bb, g); !errors.Is(err, consensus.ErrInvalidSeal) {
			t.Fatalf("want ErrInvalidSeal, got %v", err)
		}
	})
	t.Run("time before parent", func(t *testing.T) {
		bb := *b
		bb.Header.Time = -5
		if err := verifier.VerifySeal(&bb, g); !errors.Is(err, consensus.ErrBadTimestamp) {
			t.Fatalf("want ErrBadTimestamp, got %v", err)
		}
	})
}

func TestSealRejectsWrongSlotOwner(t *testing.T) {
	keys, stakes := validators(4)
	sim := simclock.NewSimulator()
	cfg := Config{SlotInterval: time.Second, Stakes: stakes}
	g := genesisBlock()
	// Find a slot owned by validator 0, then have validator 1 try to
	// seal there.
	e0 := New(cfg, sim, keys[0])
	e1 := New(cfg, sim, keys[1])
	d, ok := e0.Delay(g, keys[0].Address())
	if !ok {
		t.Fatal("no slot for validator 0")
	}
	sim.RunFor(d)
	b := types.NewBlock(g.Hash(), 1, sim.Now().UnixNano(), keys[1].Address(), nil)
	if err := e1.Prepare(&b.Header, g); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if err := e1.Seal(b, g); !errors.Is(err, consensus.ErrNotProposer) {
		t.Fatalf("want ErrNotProposer, got %v", err)
	}
}

func TestDelayLandsInOwnSlot(t *testing.T) {
	keys, stakes := validators(5)
	sim := simclock.NewSimulator()
	cfg := Config{SlotInterval: time.Second, Stakes: stakes}
	e := New(cfg, sim, keys[2])
	g := genesisBlock()
	d, ok := e.Delay(g, keys[2].Address())
	if !ok {
		t.Fatal("validator should own some slot in the horizon")
	}
	at := sim.Now().Add(d)
	proposer, err := e.ProposerForSlot(g.Hash(), e.SlotAt(at))
	if err != nil {
		t.Fatalf("ProposerForSlot: %v", err)
	}
	if proposer != keys[2].Address() {
		t.Fatal("Delay must land in a slot owned by the validator")
	}
}

func TestSlasherDetectsEquivocation(t *testing.T) {
	keys, stakes := validators(3)
	sim := simclock.NewSimulator()
	cfg := Config{SlotInterval: time.Second, Stakes: stakes}
	e := New(cfg, sim, keys[0])
	g := genesisBlock()
	b1 := sealOwnSlot(t, e, sim, g, keys[0])

	// Equivocation: a second, different block in the same slot.
	b2 := types.NewBlock(g.Hash(), 1, b1.Header.Time, keys[0].Address(),
		[]*types.Transaction{types.NewCoinbase(keys[0].Address(), 1, 1)})
	if err := e.Prepare(&b2.Header, g); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if err := e.Seal(b2, g); err != nil {
		t.Fatalf("Seal: %v", err)
	}

	sl := NewSlasher(e, stakes)
	if ev, err := sl.Observe(g.Hash(), &b1.Header); ev != nil || err != nil {
		t.Fatalf("first observation must be clean: %v %v", ev, err)
	}
	// Re-observing the same block is fine.
	if ev, err := sl.Observe(g.Hash(), &b1.Header); ev != nil || err != nil {
		t.Fatalf("duplicate observation must be clean: %v %v", ev, err)
	}
	ev, err := sl.Observe(g.Hash(), &b2.Header)
	if !errors.Is(err, ErrEquivocation) {
		t.Fatalf("want ErrEquivocation, got %v", err)
	}
	if ev == nil || ev.Proposer != keys[0].Address() {
		t.Fatalf("evidence = %+v", ev)
	}
	if sl.StakeOf(keys[0].Address()) != 0 {
		t.Fatal("equivocator must be slashed to zero")
	}
	if sl.StakeOf(keys[1].Address()) != 100 {
		t.Fatal("honest validators keep their stake")
	}
}

func TestEngineName(t *testing.T) {
	e := New(Config{}, simclock.NewSimulator(), nil)
	if e.Name() != "pos" {
		t.Fatal("name changed")
	}
}
