package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
)

// cluster wires n raft nodes over a simulated network.
type cluster struct {
	sim     *simclock.Simulator
	net     *p2p.SimNetwork
	nodes   map[p2p.NodeID]*Node
	applied map[p2p.NodeID][]string
	ids     []p2p.NodeID
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 7, p2p.WithLatency(10*time.Millisecond))
	c := &cluster{
		sim:     sim,
		net:     net,
		nodes:   make(map[p2p.NodeID]*Node),
		applied: make(map[p2p.NodeID][]string),
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, p2p.NodeName(i))
	}
	for i, id := range c.ids {
		id := id
		var peers []p2p.NodeID
		for _, other := range c.ids {
			if other != id {
				peers = append(peers, other)
			}
		}
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		node := NewNode(id, peers, ep, sim, rand.New(rand.NewSource(int64(i+1))),
			Config{ElectionTimeout: 200 * time.Millisecond},
			func(idx uint64, data []byte) {
				c.applied[id] = append(c.applied[id], string(data))
			})
		mux.Handle(MsgPrefix, node.HandleMessage)
		c.nodes[id] = node
	}
	for _, node := range c.nodes {
		node.Start()
	}
	return c
}

func (c *cluster) leader(t *testing.T) *Node {
	t.Helper()
	for round := 0; round < 100; round++ {
		c.sim.RunFor(100 * time.Millisecond)
		var leaders []*Node
		for _, n := range c.nodes {
			if n.IsLeader() && !n.stopped {
				leaders = append(leaders, n)
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
	}
	t.Fatal("no stable leader elected")
	return nil
}

func TestElectsSingleLeader(t *testing.T) {
	c := newCluster(t, 5)
	leader := c.leader(t)
	// Every node should agree on the leader after settling.
	c.sim.RunFor(time.Second)
	for id, n := range c.nodes {
		if n.Leader() != leader.id {
			t.Fatalf("node %s sees leader %q, want %q", id, n.Leader(), leader.id)
		}
	}
	// Exactly one leader in the final state.
	count := 0
	for _, n := range c.nodes {
		if n.IsLeader() {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d leaders", count)
	}
}

func TestReplicationAndApply(t *testing.T) {
	c := newCluster(t, 3)
	leader := c.leader(t)
	for i := 0; i < 5; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatalf("Propose: %v", err)
		}
		c.sim.RunFor(100 * time.Millisecond)
	}
	c.sim.RunFor(time.Second)
	for id, got := range c.applied {
		if len(got) != 5 {
			t.Fatalf("node %s applied %d entries, want 5", id, len(got))
		}
		for i, v := range got {
			if v != fmt.Sprintf("cmd-%d", i) {
				t.Fatalf("node %s applied %q at %d", id, v, i)
			}
		}
	}
	if leader.CommitIndex() != 5 {
		t.Fatalf("commit index = %d", leader.CommitIndex())
	}
}

func TestFollowerRejectsPropose(t *testing.T) {
	c := newCluster(t, 3)
	leader := c.leader(t)
	for _, n := range c.nodes {
		if n == leader {
			continue
		}
		if _, err := n.Propose([]byte("x")); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("want ErrNotLeader, got %v", err)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 5)
	leader := c.leader(t)
	if _, err := leader.Propose([]byte("before-crash")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(time.Second)

	leader.Stop()
	// A new leader emerges among the survivors.
	var newLeader *Node
	for round := 0; round < 200 && newLeader == nil; round++ {
		c.sim.RunFor(100 * time.Millisecond)
		for _, n := range c.nodes {
			if n != leader && n.IsLeader() {
				newLeader = n
				break
			}
		}
	}
	if newLeader == nil {
		t.Fatal("no failover leader elected")
	}
	if newLeader.Term() <= leader.Term() {
		t.Fatal("new leader must have a higher term")
	}
	// The committed entry survives and new proposals still commit.
	if _, err := newLeader.Propose([]byte("after-crash")); err != nil {
		t.Fatalf("Propose after failover: %v", err)
	}
	c.sim.RunFor(2 * time.Second)
	for id, n := range c.nodes {
		if n == leader {
			continue
		}
		got := c.applied[id]
		if len(got) != 2 || got[0] != "before-crash" || got[1] != "after-crash" {
			t.Fatalf("node %s applied %v", id, got)
		}
	}
}

func TestPartitionedMinorityCannotCommit(t *testing.T) {
	c := newCluster(t, 5)
	leader := c.leader(t)

	// Partition the leader with one follower (minority).
	var minority, majority []p2p.NodeID
	minority = append(minority, leader.id)
	for _, id := range c.ids {
		if id == leader.id {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
		}
	}
	c.net.Partition(minority, majority)

	before := leader.CommitIndex()
	if _, err := leader.Propose([]byte("doomed")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(3 * time.Second)
	if leader.CommitIndex() != before {
		t.Fatal("minority leader must not commit")
	}

	// The majority elects its own leader and makes progress.
	var majLeader *Node
	for _, id := range majority {
		if c.nodes[id].IsLeader() {
			majLeader = c.nodes[id]
		}
	}
	if majLeader == nil {
		t.Fatal("majority partition should elect a leader")
	}
	if _, err := majLeader.Propose([]byte("survives")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.sim.RunFor(time.Second)
	if majLeader.CommitIndex() == 0 {
		t.Fatal("majority must commit")
	}

	// Heal: the old leader steps down and converges; the doomed entry is
	// replaced by the majority's log.
	c.net.Heal()
	c.sim.RunFor(5 * time.Second)
	if leader.IsLeader() {
		t.Fatal("stale leader must step down after heal")
	}
	for id := range c.nodes {
		got := c.applied[id]
		if len(got) == 0 || got[len(got)-1] != "survives" {
			t.Fatalf("node %s applied %v, want trailing 'survives'", id, got)
		}
		for _, v := range got {
			if v == "doomed" {
				t.Fatalf("node %s applied the uncommitted minority entry", id)
			}
		}
	}
}

func TestSingleNodeClusterCommitsInstantly(t *testing.T) {
	c := newCluster(t, 1)
	leader := c.leader(t)
	idx, err := leader.Propose([]byte("solo"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if idx != 1 || leader.CommitIndex() != 1 {
		t.Fatalf("idx=%d commit=%d", idx, leader.CommitIndex())
	}
	c.sim.RunFor(100 * time.Millisecond)
	if got := c.applied[leader.id]; len(got) != 1 || got[0] != "solo" {
		t.Fatalf("applied %v", got)
	}
}

func TestStoppedNodeRefusesPropose(t *testing.T) {
	c := newCluster(t, 3)
	leader := c.leader(t)
	leader.Stop()
	if _, err := leader.Propose([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("role strings changed")
	}
}

func TestLogsConvergeUnderLoss(t *testing.T) {
	// With 10% message loss, committed prefixes must still converge.
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 3, p2p.WithLatency(10*time.Millisecond), p2p.WithDropRate(0.1))
	ids := []p2p.NodeID{"r0", "r1", "r2"}
	nodes := make(map[p2p.NodeID]*Node)
	applied := make(map[p2p.NodeID][]string)
	for i, id := range ids {
		id := id
		var peers []p2p.NodeID
		for _, other := range ids {
			if other != id {
				peers = append(peers, other)
			}
		}
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		n := NewNode(id, peers, ep, sim, rand.New(rand.NewSource(int64(i+11))),
			Config{ElectionTimeout: 200 * time.Millisecond},
			func(idx uint64, data []byte) { applied[id] = append(applied[id], string(data)) })
		mux.Handle(MsgPrefix, n.HandleMessage)
		nodes[id] = n
		n.Start()
	}

	proposed := 0
	for round := 0; round < 300 && proposed < 10; round++ {
		sim.RunFor(100 * time.Millisecond)
		for _, n := range nodes {
			if n.IsLeader() {
				if _, err := n.Propose([]byte(fmt.Sprintf("op-%d", proposed))); err == nil {
					proposed++
				}
				break
			}
		}
	}
	sim.RunFor(5 * time.Second)
	if proposed < 10 {
		t.Fatalf("only proposed %d/10", proposed)
	}
	// All applied sequences must be consistent prefixes of each other.
	var longest []string
	for _, seq := range applied {
		if len(seq) > len(longest) {
			longest = seq
		}
	}
	for id, seq := range applied {
		for i, v := range seq {
			if v != longest[i] {
				t.Fatalf("node %s diverges at %d: %q vs %q", id, i, v, longest[i])
			}
		}
	}
}
