package raft

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"
)

// TestRaftGoldenVectors freezes the raft wire formats byte-exactly. A
// failure here is a protocol break: bump CodecVersion and update
// docs/WIRE.md.
func TestRaftGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		got  []byte
		want string
	}{
		{"vote-req", voteReq{Term: 2, Candidate: "n1", LastLogIndex: 5, LastLogTerm: 1}.encode(),
			"01" + "0000000000000002" + "0002" + "6e31" +
				"0000000000000005" + "0000000000000001"},
		{"vote-resp", voteResp{Term: 2, Granted: true}.encode(),
			"01" + "0000000000000002" + "01"},
		{"append", appendReq{Term: 2, Leader: "n1", PrevLogIndex: 3, PrevLogTerm: 1,
			LeaderCommit: 3, Entries: []Entry{{Term: 2, Data: []byte{0xAB}}}}.encode(),
			"01" + "0000000000000002" + "0002" + "6e31" +
				"0000000000000003" + "0000000000000001" + "0000000000000003" +
				"00000001" + "0000000000000002" + "00000001" + "ab"},
		{"append-resp", appendResp{Term: 2, Success: true, MatchIndex: 4}.encode(),
			"01" + "0000000000000002" + "01" + "0000000000000004"},
	}
	for _, c := range cases {
		if got := hex.EncodeToString(c.got); got != c.want {
			t.Errorf("%s encoding changed:\n got %s\nwant %s", c.name, got, c.want)
		}
	}
}

func TestRaftRoundTrips(t *testing.T) {
	vr := voteReq{Term: 9, Candidate: "node-007", LastLogIndex: 42, LastLogTerm: 8}
	if got, err := decodeVoteReq(vr.encode()); err != nil || got != vr {
		t.Fatalf("vote-req: %+v, %v", got, err)
	}
	vresp := voteResp{Term: 9, Granted: false}
	if got, err := decodeVoteResp(vresp.encode()); err != nil || got != vresp {
		t.Fatalf("vote-resp: %+v, %v", got, err)
	}
	ar := appendReq{Term: 3, Leader: "n2", PrevLogIndex: 10, PrevLogTerm: 2,
		LeaderCommit: 9, Entries: []Entry{{Term: 3, Data: []byte("a")}, {Term: 3, Data: nil}}}
	got, err := decodeAppendReq(ar.encode())
	if err != nil {
		t.Fatal(err)
	}
	// Blob round-trips nil as empty; normalize for comparison.
	for i := range got.Entries {
		if len(got.Entries[i].Data) == 0 {
			got.Entries[i].Data = nil
		}
	}
	if !reflect.DeepEqual(got, ar) {
		t.Fatalf("append: got %+v, want %+v", got, ar)
	}
	// Heartbeat: no entries.
	hb := appendReq{Term: 3, Leader: "n2", LeaderCommit: 1}
	if got, err := decodeAppendReq(hb.encode()); err != nil || len(got.Entries) != 0 {
		t.Fatalf("heartbeat: %+v, %v", got, err)
	}
	aresp := appendResp{Term: 3, Success: true, MatchIndex: 11}
	if got, err := decodeAppendResp(aresp.encode()); err != nil || got != aresp {
		t.Fatalf("append-resp: %+v, %v", got, err)
	}
}

func TestRaftDecodeRejects(t *testing.T) {
	enc := appendReq{Term: 1, Leader: "x"}.encode()
	if _, err := decodeAppendReq(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := decodeAppendReq(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 7
	if _, err := decodeAppendReq(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Non-canonical bool in vote-resp.
	vb := voteResp{Term: 1, Granted: true}.encode()
	vb[len(vb)-1] = 2
	if _, err := decodeVoteResp(vb); err == nil {
		t.Fatal("non-canonical bool accepted")
	}
	// A forged entry count larger than the body must fail without
	// allocating for the claimed count.
	forged := appendReq{Term: 1, Leader: "x"}.encode()
	forged[len(forged)-4] = 0xFF // count field high byte
	if _, err := decodeAppendReq(forged); err == nil {
		t.Fatal("forged entry count accepted")
	}
}

// FuzzAppendReqDecode: append messages carry attacker-influenceable
// batches; the decoder must never panic and must be canonical.
func FuzzAppendReqDecode(f *testing.F) {
	f.Add(appendReq{Term: 2, Leader: "n1", PrevLogIndex: 1, PrevLogTerm: 1,
		LeaderCommit: 1, Entries: []Entry{{Term: 2, Data: []byte("d")}}}.encode())
	f.Add(appendReq{}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeAppendReq(data)
		if err != nil {
			return
		}
		if !bytes.Equal(r.encode(), data) {
			t.Fatal("non-canonical append accepted")
		}
	})
}
