package raft

// Binary wire codec for the Raft protocol messages: version byte plus
// fixed-width big-endian fields (see docs/WIRE.md). Decoders bound
// every length, reject unknown versions, and reject trailing bytes.

import (
	"fmt"

	"dcsledger/internal/wire"
)

const (
	// CodecVersion tags every raft wire message; bump on layout change.
	CodecVersion = 1
	// MaxLeaderIDLen bounds the leader/candidate identifier.
	MaxLeaderIDLen = 128
	// MaxEntryLen bounds one log entry's payload.
	MaxEntryLen = 1 << 24
	// MaxEntriesPerAppend bounds the entry count in one append; the
	// leader never sends more than its whole log, and the bound stops a
	// forged count from pre-allocating unbounded memory.
	MaxEntriesPerAppend = 1 << 16
)

// wireMsg is implemented by every raft protocol message.
type wireMsg interface {
	encode() []byte
}

func (r voteReq) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(r.Term)
	w.String(r.Candidate)
	w.U64(r.LastLogIndex)
	w.U64(r.LastLogTerm)
	return w.Bytes()
}

func decodeVoteReq(data []byte) (voteReq, error) {
	var r voteReq
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return r, fmt.Errorf("raft: unknown vote-req version %d", v)
	}
	r.Term = rd.U64()
	r.Candidate = rd.String(MaxLeaderIDLen)
	r.LastLogIndex = rd.U64()
	r.LastLogTerm = rd.U64()
	return r, rd.Close()
}

func (r voteResp) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(r.Term)
	w.Bool(r.Granted)
	return w.Bytes()
}

func decodeVoteResp(data []byte) (voteResp, error) {
	var r voteResp
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return r, fmt.Errorf("raft: unknown vote-resp version %d", v)
	}
	r.Term = rd.U64()
	r.Granted = rd.Bool()
	return r, rd.Close()
}

func (r appendReq) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(r.Term)
	w.String(r.Leader)
	w.U64(r.PrevLogIndex)
	w.U64(r.PrevLogTerm)
	w.U64(r.LeaderCommit)
	w.U32(uint32(len(r.Entries)))
	for _, e := range r.Entries {
		w.U64(e.Term)
		w.Blob(e.Data)
	}
	return w.Bytes()
}

func decodeAppendReq(data []byte) (appendReq, error) {
	var r appendReq
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return r, fmt.Errorf("raft: unknown append version %d", v)
	}
	r.Term = rd.U64()
	r.Leader = rd.String(MaxLeaderIDLen)
	r.PrevLogIndex = rd.U64()
	r.PrevLogTerm = rd.U64()
	r.LeaderCommit = rd.U64()
	count := rd.Count(MaxEntriesPerAppend)
	for i := uint32(0); i < count && rd.Err() == nil; i++ {
		var e Entry
		e.Term = rd.U64()
		e.Data = rd.Blob(MaxEntryLen)
		r.Entries = append(r.Entries, e)
	}
	return r, rd.Close()
}

func (r appendResp) encode() []byte {
	var w wire.Buffer
	w.U8(CodecVersion)
	w.U64(r.Term)
	w.Bool(r.Success)
	w.U64(r.MatchIndex)
	return w.Bytes()
}

func decodeAppendResp(data []byte) (appendResp, error) {
	var r appendResp
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != CodecVersion {
		return r, fmt.Errorf("raft: unknown append-resp version %d", v)
	}
	r.Term = rd.U64()
	r.Success = rd.Bool()
	r.MatchIndex = rd.U64()
	return r, rd.Close()
}
