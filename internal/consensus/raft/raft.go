// Package raft implements a minimal Raft consensus node: randomized
// leader election, log replication, and commitment. It is the
// "distributed ordering service with periodic leader election" of the
// paper's Hyperledger discussion (Section 2.4): the ordering layer uses
// it to replicate transaction batches across orderer nodes so ordering
// survives orderer failure.
//
// The implementation follows the Raft paper's Figure 2 rules; it omits
// snapshots and membership change, which the ordering workload does not
// need.
package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
)

// MsgPrefix routes raft traffic through a p2p.Mux.
const MsgPrefix = "raft/"

// Package errors, matchable with errors.Is.
var (
	ErrNotLeader = errors.New("raft: not the leader")
	ErrStopped   = errors.New("raft: node stopped")
)

// Role is a node's current Raft role.
type Role int

// Raft roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Entry is one replicated log record.
type Entry struct {
	Term uint64
	Data []byte
}

// ApplyFunc receives committed entries exactly once, in log order.
// Index is 1-based.
type ApplyFunc func(index uint64, data []byte)

// Config tunes timing.
type Config struct {
	// ElectionTimeout is the base follower timeout; actual timeouts are
	// uniform in [ElectionTimeout, 2*ElectionTimeout).
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's append/heartbeat period; it
	// must be well under ElectionTimeout.
	HeartbeatInterval time.Duration
}

// Protocol messages travel in the binary wire format defined in
// codec.go.

type voteReq struct {
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

type voteResp struct {
	Term    uint64
	Granted bool
}

type appendReq struct {
	Term         uint64
	Leader       string
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
}

type appendResp struct {
	Term       uint64
	Success    bool
	MatchIndex uint64
}

// Node is one Raft participant.
type Node struct {
	mu sync.Mutex

	id    p2p.NodeID
	peers []p2p.NodeID
	tr    p2p.Transport
	clock simclock.Clock
	rng   *rand.Rand
	cfg   Config
	apply ApplyFunc

	role        Role
	currentTerm uint64
	votedFor    p2p.NodeID
	leader      p2p.NodeID
	log         []Entry // 1-based indexing: log[0] unused sentinel
	commitIndex uint64
	lastApplied uint64
	votes       map[p2p.NodeID]bool
	nextIndex   map[p2p.NodeID]uint64
	matchIndex  map[p2p.NodeID]uint64

	electionTimer  *simclock.Timer
	heartbeatTimer *simclock.Timer
	stopped        bool
}

// NewNode creates a Raft node. peers lists all cluster members except
// self. apply may be nil.
func NewNode(id p2p.NodeID, peers []p2p.NodeID, tr p2p.Transport, clock simclock.Clock, rng *rand.Rand, cfg Config, apply ApplyFunc) *Node {
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 500 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.ElectionTimeout / 5
	}
	return &Node{
		id:    id,
		peers: append([]p2p.NodeID(nil), peers...),
		tr:    tr,
		clock: clock,
		rng:   rng,
		cfg:   cfg,
		apply: apply,
		role:  Follower,
		log:   make([]Entry, 1), // sentinel at index 0
	}
}

// Start arms the election timer; call once after wiring the transport.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resetElectionTimerLocked()
}

// Stop halts the node; it ignores all further traffic.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	n.electionTimer.Stop()
	n.heartbeatTimer.Stop()
}

// IsLeader reports whether this node currently believes it leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader
}

// Leader returns the node's current view of the leader ("" if unknown).
func (n *Node) Leader() p2p.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// Term returns the current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.currentTerm
}

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Propose appends data to the replicated log. Only the leader accepts
// proposals; followers return ErrNotLeader.
func (n *Node) Propose(data []byte) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return 0, ErrStopped
	}
	if n.role != Leader {
		return 0, fmt.Errorf("%w (leader is %q)", ErrNotLeader, n.leader)
	}
	n.log = append(n.log, Entry{Term: n.currentTerm, Data: data})
	idx := uint64(len(n.log) - 1)
	n.matchIndex[n.id] = idx
	n.broadcastAppendLocked()
	// Single-node cluster: commit immediately.
	n.advanceCommitLocked()
	return idx, nil
}

// HandleMessage processes one raft message; wire it into the node's Mux
// under MsgPrefix.
func (n *Node) HandleMessage(m p2p.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return
	}
	switch m.Type {
	case MsgPrefix + "vote-req":
		if req, err := decodeVoteReq(m.Data); err == nil {
			n.onVoteReq(m.From, req)
		}
	case MsgPrefix + "vote-resp":
		if resp, err := decodeVoteResp(m.Data); err == nil {
			n.onVoteResp(m.From, resp)
		}
	case MsgPrefix + "append":
		if req, err := decodeAppendReq(m.Data); err == nil {
			n.onAppend(m.From, req)
		}
	case MsgPrefix + "append-resp":
		if resp, err := decodeAppendResp(m.Data); err == nil {
			n.onAppendResp(m.From, resp)
		}
	}
}

func (n *Node) send(to p2p.NodeID, typ string, v wireMsg) {
	_ = n.tr.Send(to, p2p.Message{Type: MsgPrefix + typ, Data: v.encode()})
}

func (n *Node) resetElectionTimerLocked() {
	n.electionTimer.Stop()
	d := n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.electionTimer = n.clock.After(d, n.onElectionTimeout)
}

func (n *Node) onElectionTimeout() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped || n.role == Leader {
		return
	}
	// Become candidate.
	n.role = Candidate
	n.currentTerm++
	n.votedFor = n.id
	n.leader = ""
	n.votes = map[p2p.NodeID]bool{n.id: true}
	lastIdx := uint64(len(n.log) - 1)
	req := voteReq{
		Term:         n.currentTerm,
		Candidate:    string(n.id),
		LastLogIndex: lastIdx,
		LastLogTerm:  n.log[lastIdx].Term,
	}
	for _, p := range n.peers {
		n.send(p, "vote-req", req)
	}
	n.resetElectionTimerLocked()
	n.maybeWinLocked() // single-node cluster wins instantly
}

func (n *Node) stepDownLocked(term uint64) {
	n.currentTerm = term
	n.role = Follower
	n.votedFor = ""
	n.heartbeatTimer.Stop()
	n.resetElectionTimerLocked()
}

func (n *Node) onVoteReq(from p2p.NodeID, req voteReq) {
	if req.Term > n.currentTerm {
		n.stepDownLocked(req.Term)
	}
	grant := false
	if req.Term == n.currentTerm && (n.votedFor == "" || n.votedFor == p2p.NodeID(req.Candidate)) {
		// Log up-to-date check (§5.4.1).
		lastIdx := uint64(len(n.log) - 1)
		lastTerm := n.log[lastIdx].Term
		if req.LastLogTerm > lastTerm || (req.LastLogTerm == lastTerm && req.LastLogIndex >= lastIdx) {
			grant = true
			n.votedFor = p2p.NodeID(req.Candidate)
			n.resetElectionTimerLocked()
		}
	}
	n.send(from, "vote-resp", voteResp{Term: n.currentTerm, Granted: grant})
}

func (n *Node) onVoteResp(from p2p.NodeID, resp voteResp) {
	if resp.Term > n.currentTerm {
		n.stepDownLocked(resp.Term)
		return
	}
	if n.role != Candidate || resp.Term < n.currentTerm || !resp.Granted {
		return
	}
	n.votes[from] = true
	n.maybeWinLocked()
}

func (n *Node) maybeWinLocked() {
	if n.role != Candidate || len(n.votes) < n.quorum() {
		return
	}
	// Win the election.
	n.role = Leader
	n.leader = n.id
	n.nextIndex = make(map[p2p.NodeID]uint64, len(n.peers))
	n.matchIndex = make(map[p2p.NodeID]uint64, len(n.peers)+1)
	last := uint64(len(n.log) - 1)
	for _, p := range n.peers {
		n.nextIndex[p] = last + 1
	}
	n.matchIndex[n.id] = last
	n.electionTimer.Stop()
	n.broadcastAppendLocked()
	n.scheduleHeartbeatLocked()
}

func (n *Node) quorum() int { return (len(n.peers)+1)/2 + 1 }

func (n *Node) scheduleHeartbeatLocked() {
	n.heartbeatTimer.Stop()
	n.heartbeatTimer = n.clock.After(n.cfg.HeartbeatInterval, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped || n.role != Leader {
			return
		}
		n.broadcastAppendLocked()
		n.scheduleHeartbeatLocked()
	})
}

func (n *Node) broadcastAppendLocked() {
	for _, p := range n.peers {
		next := n.nextIndex[p]
		if next < 1 {
			next = 1
		}
		prev := next - 1
		req := appendReq{
			Term:         n.currentTerm,
			Leader:       string(n.id),
			PrevLogIndex: prev,
			PrevLogTerm:  n.log[prev].Term,
			LeaderCommit: n.commitIndex,
		}
		if uint64(len(n.log)) > next {
			req.Entries = append([]Entry(nil), n.log[next:]...)
		}
		n.send(p, "append", req)
	}
}

func (n *Node) onAppend(from p2p.NodeID, req appendReq) {
	if req.Term > n.currentTerm {
		n.stepDownLocked(req.Term)
	}
	resp := appendResp{Term: n.currentTerm}
	if req.Term < n.currentTerm {
		n.send(from, "append-resp", resp)
		return
	}
	// Valid leader for this term.
	if n.role != Follower {
		n.role = Follower
		n.heartbeatTimer.Stop()
	}
	n.leader = p2p.NodeID(req.Leader)
	n.resetElectionTimerLocked()

	// Consistency check.
	if req.PrevLogIndex >= uint64(len(n.log)) || n.log[req.PrevLogIndex].Term != req.PrevLogTerm {
		n.send(from, "append-resp", resp)
		return
	}
	// Append, truncating conflicts.
	idx := req.PrevLogIndex
	for i, e := range req.Entries {
		idx = req.PrevLogIndex + uint64(i) + 1
		if idx < uint64(len(n.log)) {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx]
				n.log = append(n.log, e)
			}
			continue
		}
		n.log = append(n.log, e)
	}
	last := req.PrevLogIndex + uint64(len(req.Entries))
	if req.LeaderCommit > n.commitIndex {
		n.commitIndex = min(req.LeaderCommit, uint64(len(n.log)-1))
		n.applyCommittedLocked()
	}
	resp.Success = true
	resp.MatchIndex = last
	n.send(from, "append-resp", resp)
}

func (n *Node) onAppendResp(from p2p.NodeID, resp appendResp) {
	if resp.Term > n.currentTerm {
		n.stepDownLocked(resp.Term)
		return
	}
	if n.role != Leader || resp.Term < n.currentTerm {
		return
	}
	if !resp.Success {
		if n.nextIndex[from] > 1 {
			n.nextIndex[from]--
		}
		return
	}
	if resp.MatchIndex > n.matchIndex[from] {
		n.matchIndex[from] = resp.MatchIndex
		n.nextIndex[from] = resp.MatchIndex + 1
	}
	n.advanceCommitLocked()
}

func (n *Node) advanceCommitLocked() {
	for idx := uint64(len(n.log) - 1); idx > n.commitIndex; idx-- {
		if n.log[idx].Term != n.currentTerm {
			continue // §5.4.2: only commit current-term entries by counting
		}
		count := 0
		for _, m := range n.matchIndex {
			if m >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			n.applyCommittedLocked()
			break
		}
	}
}

func (n *Node) applyCommittedLocked() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		if n.apply != nil {
			n.apply(n.lastApplied, n.log[n.lastApplied].Data)
		}
	}
}

// LogLen returns the number of entries in the log (excluding sentinel).
func (n *Node) LogLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.log) - 1
}
