package atomicmix_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	atest.Run(t, "testdata/src/mix", "dcsledger/internal/fake", atomicmix.Analyzer)
}

func TestSuppression(t *testing.T) {
	atest.Run(t, "testdata/src/suppress", "dcsledger/internal/fake", atomicmix.Analyzer)
}
