// Package atomicmix implements the dcslint analyzer that forbids
// mixing sync/atomic and plain accesses on the same struct field.
//
// A field that is written with atomic.StoreX in one place and read
// with a plain load in another has no synchronization at all on the
// plain side — the race detector flags it only when the schedule
// cooperates, and on weakly-ordered hardware the plain reader can see
// torn or stale values. In a ledger that means counters diverging
// between replicas and memoized verification flags being trusted when
// they were never published. The rule: once any access to a field goes
// through sync/atomic, every access must (or the field becomes a typed
// atomic.Uint64/Int64/Bool, which makes violations unrepresentable).
//
// Composite-literal initialization (before the value is shared) is
// exempt.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dcsledger/internal/analysis"
)

// Analyzer is the atomic/plain mixed-access checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields accessed both through sync/atomic functions and by " +
		"plain reads/writes anywhere in the package (use typed atomic.Xxx fields " +
		"to make the mix unrepresentable)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find fields whose address is taken as the pointer
	// argument of a sync/atomic call, remembering the selector nodes
	// involved so pass 2 can exclude them.
	atomicFields := map[*types.Var]token.Position{} // field → first atomic site
	atomicSels := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fld := fieldOf(info, sel)
				if fld == nil {
					continue
				}
				atomicSels[sel] = true
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = pass.Fset.Position(un.Pos())
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector of those fields is a plain access.
	type finding struct {
		pos token.Pos
		fld *types.Var
	}
	var findings []finding
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSels[sel] {
				return true
			}
			fld := fieldOf(info, sel)
			if fld == nil {
				return true
			}
			if _, isAtomic := atomicFields[fld]; isAtomic {
				findings = append(findings, finding{sel.Pos(), fld})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, fd := range findings {
		first := atomicFields[fd.fld]
		pass.Reportf(fd.pos,
			"plain access to field %s, which is accessed via sync/atomic at %s: mixed atomic/plain access is a data race; use sync/atomic everywhere or a typed atomic.%s field",
			fieldDesc(fd.fld), fmt.Sprintf("%s:%d", first.Filename, first.Line), suggestTyped(fd.fld.Type()))
	}
	return nil
}

// fieldOf resolves a selector to a struct-field object, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// fieldDesc renders "Type.field" for messages.
func fieldDesc(v *types.Var) string {
	return v.Name()
}

// suggestTyped maps a primitive to the matching typed atomic.
func suggestTyped(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uintptr:
		return "Uint64"
	case types.Int32:
		return "Int32"
	case types.Int64:
		return "Int64"
	case types.Bool:
		return "Bool"
	}
	return "Value"
}
