// Package mix exercises the atomicmix triggers.
package mix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits  uint64 // mixed: atomic in record, plain in snapshot/bump
	ready uint32 // mixed: atomic store, plain read
	cold  uint64 // plain-only: never touched by sync/atomic
	typed atomic.Uint64
	mu    sync.Mutex
	safe  uint64 // mutex-guarded plain accesses only
}

// --- positive cases ---

func (c *counter) record() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) snapshot() uint64 {
	return c.hits // want "plain access to field hits"
}

func (c *counter) bump() {
	c.hits++ // want "plain access to field hits"
}

func (c *counter) publish() {
	atomic.StoreUint32(&c.ready, 1)
}

func (c *counter) isReady() bool {
	return c.ready == 1 // want "plain access to field ready"
}

// --- negative cases ---

// allAtomic only ever touches hits through sync/atomic: the load here
// names the field inside an atomic call and must not be flagged.
func (c *counter) allAtomic() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// plainOnly never mixes: cold has no atomic accesses anywhere.
func (c *counter) plainOnly() uint64 {
	c.cold++
	return c.cold
}

// typedField uses the typed atomic wrapper: unrepresentable mix.
func (c *counter) typedField() uint64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// mutexGuarded synchronizes with a lock, not sync/atomic: fine.
func (c *counter) mutexGuarded() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.safe++
	return c.safe
}
