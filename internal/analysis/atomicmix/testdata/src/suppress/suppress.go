// Package suppress verifies the ignore protocol for atomicmix.
package suppress

import "sync/atomic"

type gauge struct {
	v uint64
}

func (g *gauge) inc() {
	atomic.AddUint64(&g.v, 1)
}

// justified suppression: silenced.
func (g *gauge) resetBeforeShare() {
	g.v = 0 //dcslint:ignore atomicmix value not yet shared, reset runs before the goroutines start
}

// reason-less suppression: finding survives and the directive is
// reported.
func (g *gauge) peek() uint64 {
	return g.v /*dcslint:ignore atomicmix*/ // want "missing reason" "plain access to field v"
}
