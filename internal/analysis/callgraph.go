package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// A CallGraph is the package-local static call graph fact propagation
// runs over: every declared function and method of the package under
// analysis, each with the static calls its body (including nested
// function literals — a closure's calls are attributed to the
// function that created it) makes. Dynamic calls through func values
// resolve to no *types.Func and are simply absent; interface method
// calls resolve to the interface's method object, which no fact is
// ever exported for, so both fail conservative-closed: no fact, no
// propagation, no report.
type CallGraph struct {
	// Decls maps every function object declared in the package to its
	// syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls maps each declared function to the call expressions in its
	// body, paired with the resolved callee (nil body functions and
	// unresolvable calls are omitted).
	Calls map[*types.Func][]ResolvedCall
}

// A ResolvedCall is one static call site inside a declared function.
type ResolvedCall struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// BuildCallGraph constructs the call graph of the files under
// analysis. Only files passed in (i.e. the non-test files RunPackage
// selected) contribute.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Calls: make(map[*types.Func][]ResolvedCall),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[obj] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(pass.TypesInfo, call); callee != nil {
					g.Calls[obj] = append(g.Calls[obj], ResolvedCall{Site: call, Callee: callee})
				}
				return true
			})
		}
	}
	return g
}

// Functions returns the declared functions in deterministic (source
// position) order, so fact propagation and diagnostics are stable.
func (g *CallGraph) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return g.Decls[out[i]].Pos() < g.Decls[out[j]].Pos() })
	return out
}

// Fixpoint propagates a monotone per-function property over the call
// graph until nothing changes: step is called for every (caller,
// call) pair and returns true if it changed the caller's state. The
// iteration order is deterministic; convergence is guaranteed as long
// as step only ever adds information.
func (g *CallGraph) Fixpoint(step func(caller *types.Func, call ResolvedCall) bool) {
	fns := g.Functions()
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, call := range g.Calls[fn] {
				if step(fn, call) {
					changed = true
				}
			}
		}
	}
}
