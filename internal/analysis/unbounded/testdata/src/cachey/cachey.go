// Package cachey exercises the unbounded-growth analyzer on a
// long-lived struct (it has Close, the lifecycle marker).
package cachey

import "sync"

// Cache is long-lived: map/slice fields are policed.
type Cache struct {
	seen    map[string]bool // grows, never shrinks → finding
	entries map[string]int  // grows, but Forget deletes → clean
	history []string        // append, never shrinks → finding
	buf     []int           // append + compaction → clean
	capped  map[string]int  // grows under a len guard → clean
	scratch []byte          // append + reset in Reset → clean
	intent  map[string]int  // grows, suppressed with a reason
}

// New primes fields: constructor writes are neither growth nor shrink.
func New() *Cache {
	c := &Cache{}
	c.seen = make(map[string]bool)
	c.entries = make(map[string]int)
	c.capped = make(map[string]int)
	c.intent = make(map[string]int)
	c.seen["self"] = true
	return c
}

// Close marks Cache long-lived.
func (c *Cache) Close() {}

func (c *Cache) Mark(id string) {
	c.seen[id] = true // want "map field seen of long-lived struct Cache grows in Mark with no eviction, prune, or cap"
}

func (c *Cache) Put(k string, v int) {
	c.entries[k] = v // clean: Forget deletes
}

func (c *Cache) Forget(k string) {
	delete(c.entries, k)
}

func (c *Cache) Log(line string) {
	c.history = append(c.history, line) // want "slice field history of long-lived struct Cache grows in Log"
}

func (c *Cache) Push(v int) {
	c.buf = append(c.buf, v) // clean: Compact reslices
}

func (c *Cache) Compact() {
	c.buf = append(c.buf[:0], c.buf[1:]...)
}

func (c *Cache) PutCapped(k string, v int) {
	if len(c.capped) >= 1024 {
		return
	}
	c.capped[k] = v // clean: len guard in the same function
}

func (c *Cache) Append(b []byte) {
	c.scratch = append(c.scratch, b...) // clean: Reset re-makes it
}

func (c *Cache) Reset() {
	c.scratch = make([]byte, 0, 64)
}

func (c *Cache) Record(k string) {
	//dcslint:ignore unbounded keyspace is the fixed validator set, bounded by genesis config
	c.intent[k] = 1
}

// Router has no lifecycle method, but a mutex-guarded struct in a
// component package is long-lived by construction: still policed.
type Router struct {
	mu    sync.Mutex
	dedup map[string]bool
}

func (r *Router) See(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dedup[id] {
		return false
	}
	r.dedup[id] = true // want "map field dedup of long-lived struct Router grows in See"
	return true
}

// Short is request-scoped (no lifecycle method, no mutex): its fields
// are never policed.
type Short struct {
	tmp map[string]int
}

func (s *Short) Add(k string) {
	if s.tmp == nil {
		s.tmp = map[string]int{}
	}
	s.tmp[k] = 1 // clean: Short is not long-lived
}
