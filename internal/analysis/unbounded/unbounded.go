// Package unbounded implements the dcslint analyzer that flags map and
// slice fields of long-lived structs that grow on hot paths with no
// eviction, prune, or cap reachable from any method.
//
// The failure mode is the slowest kind of outage: a dedup cache, peer
// table, or in-flight index that only ever gains entries. Under the
// adversarial churn the roadmap's harness runs (hours of join/crash/
// replay, or a peer free to invent fresh keys), such a field is an
// unmetered memory grant to the network — the replica dies by OOM long
// after the commit that caused it. The machine-checked rule: if a
// struct has a lifecycle (a Close/Stop/Run-style method — the marker
// of a component that outlives requests), then every map/slice field
// that grows outside its constructor must have *some* shrink path in
// the package — a delete, a reslice, a reset to nil/make, or a
// len-guard at the growth site. Bounded-by-design growth (an address
// book capped by config) is exactly what //dcslint:ignore with a
// reason is for.
//
// The analysis is interprocedural within the package: growth and
// shrink evidence is collected across every function (a method may
// delegate eviction to a helper), and a field is judged by the union.
package unbounded

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dcsledger/internal/analysis"
	"dcsledger/internal/analysis/goroleak"
)

// Analyzer is the unbounded-growth checker.
var Analyzer = &analysis.Analyzer{
	Name: "unbounded",
	Doc: "flags map/slice fields of long-lived structs (types with a " +
		"Close/Stop/Run lifecycle method) that grow on non-constructor paths " +
		"with no delete, reslice, reset, or len-cap reachable anywhere in the " +
		"package — unbounded growth is an OOM an adversary can schedule",
	Run: run,
}

// lifecycleMethods mark a struct as long-lived.
var lifecycleMethods = []string{"Close", "Stop", "Run", "Start", "Serve", "Shutdown"}

// evidence accumulates per-field observations across the package.
type evidence struct {
	growth []growthSite
	shrink bool
}

type growthSite struct {
	pos    token.Pos
	fn     string // enclosing function name, for the report
	capped bool   // a len(field) guard appears in the same function
}

func run(pass *analysis.Pass) error {
	if strings.Contains(pass.Path, "internal/analysis") {
		return nil // analyzer scaffolding is not a replica component
	}

	longLived := lifecycleFields(pass)
	if len(longLived) == 0 {
		return nil
	}

	ev := map[*types.Var]*evidence{}
	rec := func(field *types.Var) *evidence {
		e := ev[field]
		if e == nil {
			e = &evidence{}
			ev[field] = e
		}
		return e
	}

	graph := analysis.BuildCallGraph(pass)
	for _, fn := range graph.Functions() {
		decl := graph.Decls[fn]
		isCtor := strings.HasPrefix(fn.Name(), "New") || strings.HasPrefix(fn.Name(), "Open")
		isCleanup := false
		for _, m := range lifecycleMethods {
			if fn.Name() == m && (m == "Close" || m == "Stop" || m == "Shutdown") {
				isCleanup = true
			}
		}
		guards := lenGuardedFields(pass, decl.Body, longLived)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					field := fieldOf(pass, lhs, longLived)
					indexed := false
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						field = fieldOf(pass, ix.X, longLived)
						indexed = true
					}
					if field == nil {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					classifyAssign(pass, rec(field), field, indexed, rhs, n.Pos(), fn.Name(), isCtor || isCleanup, isCtor, guards[field])
				}
			case *ast.CallExpr:
				// delete(x.f, k)
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) >= 1 {
					if field := fieldOf(pass, n.Args[0], longLived); field != nil {
						rec(field).shrink = true
					}
				}
			}
			return true
		})
	}

	for field, e := range ev {
		if e.shrink {
			continue
		}
		for _, g := range e.growth {
			if g.capped {
				continue
			}
			kind := "map"
			if _, ok := field.Type().Underlying().(*types.Slice); ok {
				kind = "slice"
			}
			pass.Reportf(g.pos,
				"%s field %s of long-lived struct %s grows in %s with no eviction, prune, or cap reachable from any method in %s: an adversary supplying fresh keys turns this into a scheduled OOM — bound it (len guard, ring, or TTL sweep) or delete entries on the shutdown/ack path",
				kind, field.Name(), ownerName(field), g.fn, pass.Path)
			break // one report per field
		}
	}
	return nil
}

// classifyAssign records one assignment touching a tracked field as
// growth or shrink. growthExempt covers constructors and cleanup
// methods (their inserts don't accumulate on hot paths); shrinkExempt
// covers constructors only — `x.f = make(...)` in New is
// initialization, not eviction, and must not mask a real leak.
func classifyAssign(pass *analysis.Pass, e *evidence, field *types.Var, indexed bool, rhs ast.Expr, pos token.Pos, fnName string, growthExempt, shrinkExempt, guarded bool) {
	shrink := func() {
		if !shrinkExempt {
			e.shrink = true
		}
	}
	if indexed {
		// x.f[k] = v — map insert (or slice element store; element
		// stores don't grow, but only maps are indexed-assignable to new
		// keys, and field is map-typed in that case).
		if _, ok := field.Type().Underlying().(*types.Map); ok && !growthExempt {
			e.growth = append(e.growth, growthSite{pos, fnName, guarded})
		}
		return
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "append":
				// append whose any argument reslices the field is
				// compaction, not growth.
				for _, a := range rhs.Args {
					if sl, ok := ast.Unparen(a).(*ast.SliceExpr); ok {
						if fieldOf(pass, sl.X, map[*types.Var]bool{field: true}) == field {
							shrink()
							return
						}
					}
				}
				if !growthExempt {
					e.growth = append(e.growth, growthSite{pos, fnName, guarded})
				}
				return
			case "make":
				shrink() // reset to empty
				return
			}
		}
	case *ast.Ident:
		if rhs.Name == "nil" {
			shrink()
			return
		}
	case *ast.SliceExpr:
		if fieldOf(pass, rhs.X, map[*types.Var]bool{field: true}) == field {
			shrink() // reslice in place
			return
		}
	case *ast.CompositeLit:
		shrink() // reset to a fresh literal
		return
	}
}

// lifecycleFields returns the map/slice fields of every package-local
// struct type judged long-lived: it has a lifecycle method, or — in
// the long-lived component packages goroleak polices — it guards its
// state with a sync.Mutex/RWMutex field (a gossip router or dedup
// cache outlives every call even when nobody thought to give it a
// Close).
func lifecycleFields(pass *analysis.Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	policed := goroleak.Policed(pass.Path)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		longLived := false
		for _, m := range lifecycleMethods {
			if sel := ms.Lookup(pass.Pkg, m); sel != nil {
				longLived = true
				break
			}
		}
		if !longLived && policed {
			for i := 0; i < st.NumFields(); i++ {
				if analysis.MutexOf(st.Field(i).Type()) != analysis.NotMutex {
					longLived = true
					break
				}
			}
		}
		if !longLived {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			switch f.Type().Underlying().(type) {
			case *types.Map, *types.Slice:
				out[f] = true
			}
		}
	}
	return out
}

// fieldOf resolves e to a tracked struct field (x.f where f is in the
// tracked set), or nil.
func fieldOf(pass *analysis.Pass, e ast.Expr, tracked map[*types.Var]bool) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !tracked[v] {
		return nil
	}
	return v
}

// lenGuardedFields returns the tracked fields that appear under a
// len(...) call inside any if- or for-condition in body: the shape of
// an explicit cap check guarding growth in the same function.
func lenGuardedFields(pass *analysis.Pass, body *ast.BlockStmt, tracked map[*types.Var]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	scan := func(cond ast.Expr) {
		if cond == nil {
			return
		}
		ast.Inspect(cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
				if f := fieldOf(pass, call.Args[0], tracked); f != nil {
					out[f] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			scan(n.Cond)
		case *ast.ForStmt:
			scan(n.Cond)
		}
		return true
	})
	return out
}

// ownerName names the struct a field belongs to, for diagnostics.
func ownerName(f *types.Var) string {
	// The field's parent scope is the struct; recover the type name via
	// the package scope is not directly possible, so fall back to the
	// field's qualified string which embeds the struct type.
	if pkg := f.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == f {
					return tn.Name()
				}
			}
		}
	}
	return "?"
}
