package unbounded_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/unbounded"
)

func TestUnbounded(t *testing.T) {
	atest.Run(t, "testdata/src/cachey", "dcsledger/internal/p2p/fake", unbounded.Analyzer)
}
