// Package atest is the golden-test harness for dcslint analyzers — a
// stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata packages live under testdata/src/<name>/ and annotate
// expected findings with trailing comments of the form
//
//	x := time.Now() // want "wall-clock"
//
// Each quoted string is a regular expression that must match one
// diagnostic reported on that line; unexpected diagnostics and
// unmatched expectations both fail the test. Suppressed findings
// (//dcslint:ignore with a reason) are filtered before matching, and
// malformed directives surface as ordinary diagnostics under the
// "dcslint" pseudo-analyzer, so the suppression protocol itself is
// golden-testable.
package atest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dcsledger/internal/analysis"
)

// wantRe matches one quoted expectation inside a // want comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// wantMarker introduces expectations inside a comment.
const wantMarker = `want "`

// lineKey addresses diagnostics by file basename and line.
type lineKey struct {
	file string
	line int
}

// A PkgSpec names one testdata package of a multi-package fixture: its
// on-disk directory and the import path to analyze it under (which
// controls path-scoped analyzers such as determinism, and is the path
// dependent fixture packages import it by).
type PkgSpec struct {
	Dir        string
	ImportPath string
}

// Run loads the single package rooted at dir, analyzes it under the
// given import path (which controls path-scoped analyzers such as
// determinism), and matches the diagnostics against the // want
// comments in the sources.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunPackages(t, []PkgSpec{{Dir: dir, ImportPath: importPath}}, analyzers...)
}

// RunPackages analyzes a sequence of testdata packages in order with a
// shared fact store — the interprocedural harness. Earlier packages'
// type-checked results are made importable by later ones (under their
// spec ImportPath), and facts exported while analyzing an earlier
// package are visible when a later package is analyzed, exactly like
// the driver's dependency-ordered run. // want expectations are
// matched per package.
func RunPackages(t *testing.T, specs []PkgSpec, analyzers ...*analysis.Analyzer) {
	t.Helper()
	facts := analysis.NewFactStore()
	local := map[string]*types.Package{}

	// One FileSet and one fallback importer for the whole fixture set:
	// shared external dependencies (context, time, sync, ...) must
	// resolve to identical *types.Package values across fixture
	// packages, or values flowing between them fail to type-check.
	fset := token.NewFileSet()
	isLocal := map[string]bool{}
	for _, spec := range specs {
		isLocal[spec.ImportPath] = true
	}
	parsed := make([][]*ast.File, len(specs))
	seen := map[string]bool{}
	var external []string
	for i, spec := range specs {
		parsed[i] = parseDir(t, fset, spec.Dir)
		for _, f := range parsed[i] {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err == nil && !seen[p] && !isLocal[p] {
					seen[p] = true
					external = append(external, p)
				}
			}
		}
	}
	sort.Strings(external)
	fallback, err := analysis.ExportImporter(fset, "", external)
	if err != nil {
		t.Fatalf("building importer: %v", err)
	}

	for i, spec := range specs {
		diags := analyze(t, fset, parsed[i], spec.Dir, spec.ImportPath, local, fallback, facts, analyzers...)
		match(t, fset, parsed[i], diags)
	}
}

// match checks one package's diagnostics against its // want comments.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	got := make(map[lineKey][]analysis.Diagnostic)
	for _, d := range diags {
		k := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		got[k] = append(got[k], d)
	}

	for _, f := range files {
		base := filepath.Base(fset.Position(f.Pos()).Filename)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantMarker)
				if idx < 0 {
					continue
				}
				line := fset.Position(c.Pos()).Line
				k := lineKey{base, line}
				for _, q := range wantRe.FindAllString(c.Text[idx:], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", base, line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", base, line, pat, err)
					}
					if !matchAndRemove(got, k, re) {
						t.Errorf("%s:%d: no diagnostic matching %q", base, line, pat)
					}
				}
			}
		}
	}

	// Anything left unmatched is an unexpected diagnostic.
	var leftover []string
	for _, ds := range got {
		for _, d := range ds {
			leftover = append(leftover, d.String())
		}
	}
	sort.Strings(leftover)
	for _, s := range leftover {
		t.Errorf("unexpected diagnostic: %s", s)
	}
}

// parseDir parses every .go file directly under dir.
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	return files
}

// analyze type-checks the parsed files and runs the analyzers. local
// maps import paths of already-checked fixture packages (consulted
// before export data, so fixture packages can import one another);
// the checked package is added to it.
func analyze(t *testing.T, fset *token.FileSet, files []*ast.File, dir, importPath string, local map[string]*types.Package, fallback types.Importer, facts *analysis.FactStore, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.CheckFiles(fset, localImporter{local, fallback}, importPath, dir, files)
	if err != nil {
		t.Fatalf("type-checking testdata: %v", err)
	}
	local[importPath] = pkg.Types
	diags, err := analysis.RunPackageFacts(pkg, analyzers, facts)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return diags
}

// localImporter resolves fixture packages from memory before falling
// back to export data for the standard library.
type localImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (li localImporter) Import(path string) (*types.Package, error) {
	if p := li.local[path]; p != nil {
		return p, nil
	}
	return li.fallback.Import(path)
}

// matchAndRemove consumes the first diagnostic at k matching re.
func matchAndRemove(got map[lineKey][]analysis.Diagnostic, k lineKey, re *regexp.Regexp) bool {
	ds := got[k]
	for i, d := range ds {
		if re.MatchString(d.Message) {
			got[k] = append(ds[:i:i], ds[i+1:]...)
			return true
		}
	}
	return false
}
