// Package nondetflow implements the interprocedural dcslint analyzer
// that catches nondeterminism *laundered through helper functions*
// into consensus-critical code.
//
// The intraprocedural determinism analyzer flags a time.Now call that
// appears literally inside a critical package — but a helper one hop
// away defeats it:
//
//	package util                       // not consensus-critical
//	func Stamp() int64 { return time.Now().UnixNano() }
//
//	package consensus                  // critical — and silently forked
//	func propose() { h.deadline = util.Stamp() }
//
// nondetflow closes that hole with taint facts: every function, in
// every package, is classified by whether it transitively reaches a
// nondeterminism source — a wall clock (time.Now/Since), the
// process-global math/rand, or map-iteration order escaping through
// its return value. The classification propagates over the
// package-local call graph to a fixpoint, is exported as a per-function
// fact alongside the package's export data, and is imported when
// dependent packages are analyzed — so the taint follows calls across
// package boundaries exactly like go vet's facts protocol. Inside
// consensus-critical packages, every call to a tainted function is
// reported at the call site, with the chain of helpers that reaches
// the source.
//
// Direct source calls (a literal time.Now inside critical code) are
// the determinism analyzer's job and are not re-reported here.
// Packages whose relationship with wall time is sanctioned by design —
// internal/obs (observability stopwatches), internal/simclock (the
// injectable clock itself), internal/metrics — neither export taint
// nor trigger reports: they are the audited funnels critical code is
// *supposed* to route timing through.
package nondetflow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"dcsledger/internal/analysis"
	"dcsledger/internal/analysis/determinism"
)

// Analyzer is the interprocedural nondeterminism-taint checker.
var Analyzer = &analysis.Analyzer{
	Name: "nondetflow",
	Doc: "taint-tracks wall-clock reads, global math/rand, and map-iteration-order " +
		"leaks through helper functions (same-package and cross-package via facts) " +
		"into consensus-critical code",
	Run:       run,
	FactTypes: []analysis.Fact{&TaintFact{}},
}

// Taint kinds, in the order they render in diagnostics.
const (
	KindGlobalRand = "globalrand"
	KindMapOrder   = "maporder"
	KindWallClock  = "wallclock"
)

// kindDesc renders one kind for humans.
var kindDesc = map[string]string{
	KindGlobalRand: "process-global math/rand",
	KindMapOrder:   "map-iteration order",
	KindWallClock:  "a wall clock (time.Now/Since)",
}

// A TaintFact marks a function that transitively reaches a
// nondeterminism source. Via is one witness chain ("Stamp → time.Now")
// used in diagnostics.
type TaintFact struct {
	Kinds []string // sorted subset of {globalrand, maporder, wallclock}
	Via   string
}

// AFact marks TaintFact as a fact type.
func (*TaintFact) AFact() {}

// sanctionedMarkers are import-path fragments of packages whose
// wall-clock/randomness use is by-design: the audited funnels critical
// code routes timing through. They neither export taint facts nor
// trigger call-site reports.
var sanctionedMarkers = []string{
	"internal/obs",
	"internal/simclock",
	"internal/metrics",
	"internal/analysis",
}

func sanctioned(path string) bool {
	for _, m := range sanctionedMarkers {
		if strings.Contains(path, m) {
			return true
		}
	}
	return false
}

// taint is the per-function analysis state.
type taint struct {
	kinds map[string]bool
	via   string
}

func run(pass *analysis.Pass) error {
	if sanctioned(pass.Path) {
		return nil
	}
	graph := analysis.BuildCallGraph(pass)

	// Seed: intrinsic sources reached directly by each function body.
	taints := map[*types.Func]*taint{}
	mark := func(fn *types.Func, kind, via string) bool {
		t := taints[fn]
		if t == nil {
			t = &taint{kinds: map[string]bool{}, via: via}
			taints[fn] = t
		}
		if t.kinds[kind] {
			return false
		}
		t.kinds[kind] = true
		return true
	}
	for fn, decl := range graph.Decls {
		seedFunc(pass, fn, decl, mark)
	}

	// Propagate over the package-local call graph, importing facts at
	// package boundaries, until fixpoint.
	graph.Fixpoint(func(caller *types.Func, call analysis.ResolvedCall) bool {
		callee := call.Callee
		if callee.Pkg() == nil || sanctioned(callee.Pkg().Path()) {
			return false
		}
		changed := false
		if callee.Pkg() == pass.Pkg {
			if ct := taints[callee]; ct != nil {
				for k := range ct.kinds {
					if mark(caller, k, callee.Name()+" → "+ct.via) {
						changed = true
					}
				}
			}
			return changed
		}
		var fact TaintFact
		if pass.ImportFunctionFact(callee, &fact) {
			for _, k := range fact.Kinds {
				if mark(caller, k, callee.Name()+" → "+fact.Via) {
					changed = true
				}
			}
		}
		return changed
	})

	// Export facts for every tainted function so dependent packages see
	// the taint.
	for _, fn := range graph.Functions() {
		if t := taints[fn]; t != nil {
			pass.ExportFunctionFact(fn, &TaintFact{Kinds: sortedKinds(t.kinds), Via: t.via})
		}
	}

	// Report, in consensus-critical packages only, every call to a
	// tainted helper. Direct intrinsic-source calls belong to the
	// determinism analyzer and are not re-reported.
	if !determinism.Critical(pass.Path) {
		return nil
	}
	for _, fn := range graph.Functions() {
		for _, call := range graph.Calls[fn] {
			callee := call.Callee
			if callee.Pkg() == nil || sanctioned(callee.Pkg().Path()) {
				continue
			}
			var kinds []string
			var via string
			if callee.Pkg() == pass.Pkg {
				if t := taints[callee]; t != nil {
					kinds, via = sortedKinds(t.kinds), t.via
				}
			} else {
				var fact TaintFact
				if pass.ImportFunctionFact(callee, &fact) {
					kinds, via = fact.Kinds, fact.Via
				}
			}
			if len(kinds) == 0 {
				continue
			}
			pass.Reportf(call.Site.Pos(),
				"call to %s in consensus-critical package %s reaches %s (via %s): nondeterminism laundered through helpers forks replicas; inject a simclock.Clock or seeded *rand.Rand, or sort before the value escapes",
				callee.Name(), pass.Path, describeKinds(kinds), callee.Name()+" → "+via)
		}
	}
	return nil
}

// seedFunc marks fn with every intrinsic source its own body reaches:
// wall-clock and global-rand calls, and map-iteration order escaping
// through a return value.
func seedFunc(pass *analysis.Pass, fn *types.Func, decl *ast.FuncDecl, mark func(*types.Func, string, string) bool) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if kind, via := intrinsicSource(pass.TypesInfo, n); kind != "" {
				mark(fn, kind, via)
			}
		case *ast.RangeStmt:
			if isMapRange(pass, n) && mapOrderEscapes(pass, decl, n) {
				mark(fn, KindMapOrder, "map range")
			}
		}
		return true
	})
}

// intrinsicSource classifies a call as a nondeterminism source:
// time.Now/Since, or a package-global math/rand draw (constructors for
// injectable generators are exempt, as in the determinism analyzer).
func intrinsicSource(info *types.Info, call *ast.CallExpr) (kind, via string) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // methods (time.Time.Sub etc.) are derived, not sources
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return KindWallClock, "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf":
			return "", ""
		}
		return KindGlobalRand, fn.Pkg().Name() + "." + fn.Name()
	}
	return "", ""
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapOrderEscapes reports whether rs leaks iteration order through the
// enclosing function's return value: an early return of a
// loop-dependent value ("first match wins"), or appending to a slice
// that is returned without an intervening sort. A helper that sorts
// before returning — the sorted-map-fold idiom — is clean.
func mapOrderEscapes(pass *analysis.Pass, decl *ast.FuncDecl, rs *ast.RangeStmt) bool {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := pass.ObjectOf(id); o != nil {
				loopVars[o] = true
			}
		}
	}

	escapes := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if analysis.UsesObject(pass.TypesInfo, n, loopVars) {
				escapes = true
				return false
			}
		case *ast.AssignStmt:
			if obj := appendTarget(pass, n, rs); obj != nil &&
				!sortedBeforeReturn(pass, decl, obj, rs) && returnsObject(pass, decl, obj) {
				escapes = true
				return false
			}
		}
		return true
	})
	return escapes
}

// appendTarget returns the object of an outer-declared slice grown by
// `s = append(s, ...)` inside the loop, or nil.
func appendTarget(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "append" {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.ObjectOf(lhs)
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
		return nil // loop-local: order cannot escape this way
	}
	return obj
}

// returnsObject reports whether any return statement of decl (or a
// named result) carries obj.
func returnsObject(pass *analysis.Pass, decl *ast.FuncDecl, obj types.Object) bool {
	if res := decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if pass.ObjectOf(name) == obj {
					return true // named result: every return carries it
				}
			}
		}
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if analysis.UsesObject(pass.TypesInfo, ret, map[types.Object]bool{obj: true}) {
			found = true
		}
		return !found
	})
	return found
}

// sortedBeforeReturn reports whether a recognized sort of obj appears
// after the loop in decl — the sorted-map-fold exemption.
func sortedBeforeReturn(pass *analysis.Pass, decl *ast.FuncDecl, obj types.Object, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		name := fn.Name()
		sorter := strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "Slice") ||
			name == "Strings" || name == "Ints" || name == "Float64s" || name == "Stable"
		if !sorter {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func sortedKinds(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func describeKinds(kinds []string) string {
	descs := make([]string, len(kinds))
	for i, k := range kinds {
		if d := kindDesc[k]; d != "" {
			descs[i] = d
		} else {
			descs[i] = k
		}
	}
	return strings.Join(descs, " and ")
}
