package nondetflow_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/nondetflow"
)

// TestNondetflow is the acceptance golden: a time.Now laundered
// through a same-package helper AND a cross-package helper is flagged
// in consensus-critical code, while the sorted-map-fold helper is not.
// The util fixture is analyzed first (exporting taint facts), then the
// critical fixture imports it — the same dependency-ordered flow the
// driver runs.
func TestNondetflow(t *testing.T) {
	atest.RunPackages(t, []atest.PkgSpec{
		{Dir: "testdata/src/util", ImportPath: "dcsledger/internal/util"},
		{Dir: "testdata/src/critical", ImportPath: "dcsledger/internal/consensus/fake"},
	}, nondetflow.Analyzer)
}

// TestNondetflowSanctioned proves the sanctioned funnels (obs,
// simclock, metrics) neither export taint nor trigger reports: the
// same laundering shape analyzed under a sanctioned path stays silent.
func TestNondetflowSanctioned(t *testing.T) {
	atest.RunPackages(t, []atest.PkgSpec{
		{Dir: "testdata/src/sanctioned", ImportPath: "dcsledger/internal/obs/fake"},
		{Dir: "testdata/src/sanctioneduser", ImportPath: "dcsledger/internal/consensus/fake2"},
	}, nondetflow.Analyzer)
}
