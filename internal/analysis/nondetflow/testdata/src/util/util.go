// Package util is a NON-critical helper package: nothing is reported
// here, but taint facts are exported for the critical fixture that
// imports it.
package util

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp launders a wall-clock read behind an innocent-looking helper.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// DeepStamp adds a second hop: taint must survive same-package
// propagation before it is exported.
func DeepStamp() int64 {
	return Stamp() + 1
}

// Jitter launders the process-global math/rand.
func Jitter() int64 {
	return rand.Int63n(100)
}

// UnsortedKeys leaks map-iteration order through its return value.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the sorted-map-fold idiom: iteration order is erased
// by the sort before the slice escapes. It must NOT be tainted.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Double is a plain pure helper: never tainted.
func Double(x int64) int64 {
	return 2 * x
}
