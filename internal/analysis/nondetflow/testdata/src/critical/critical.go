// Package critical is analyzed under a consensus-critical import path
// and imports the util fixture: cross-package taint arrives via facts,
// same-package taint via the local call graph.
package critical

import (
	"time"

	"dcsledger/internal/util"
)

// localStamp is a same-package launderer. Its own time.Now call is the
// determinism analyzer's finding, not nondetflow's — nondetflow flags
// the *call sites* of localStamp.
func localStamp() int64 {
	return time.Now().UnixNano()
}

// localDeep proves same-package transitive propagation.
func localDeep() int64 {
	return localStamp() // want "call to localStamp in consensus-critical package .* reaches a wall clock .*via localStamp → time.Now"
}

func proposeDeadline() int64 {
	return localDeep() // want "call to localDeep in consensus-critical package .* reaches a wall clock"
}

func crossStamp() int64 {
	return util.Stamp() // want "call to Stamp in consensus-critical package .* reaches a wall clock .*via Stamp → time.Now"
}

func crossDeep() int64 {
	return util.DeepStamp() // want "call to DeepStamp in consensus-critical package .* reaches a wall clock .*via DeepStamp → Stamp → time.Now"
}

func crossJitter() int64 {
	return util.Jitter() // want "call to Jitter in consensus-critical package .* reaches process-global math/rand"
}

func crossOrder(m map[string]int) []string {
	return util.UnsortedKeys(m) // want "call to UnsortedKeys in consensus-critical package .* reaches map-iteration order"
}

// sortedFold is the negative case the acceptance criterion names: a
// sorted-map-fold helper is deterministic and must stay clean.
func sortedFold(m map[string]int) []string {
	return util.SortedKeys(m)
}

func pure() int64 {
	return util.Double(21)
}

func suppressed() int64 {
	//dcslint:ignore nondetflow deadline is operator-facing only, never hashed or compared across replicas
	return util.Stamp()
}
