// Package sanctioneduser is critical but calls only the sanctioned
// funnel: no report — that is exactly how critical code is supposed to
// consume timing.
package sanctioneduser

import sanctioned "dcsledger/internal/obs/fake"

func record() int64 {
	return sanctioned.Stopwatch() // clean: sanctioned funnel
}
