// Package sanctioned mirrors internal/obs: wall-clock use here is
// by-design, so no taint fact is exported for Stopwatch.
package sanctioned

import "time"

// Stopwatch reads the wall clock — sanctioned, never tainted.
func Stopwatch() int64 {
	return time.Now().UnixNano()
}
