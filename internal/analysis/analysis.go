// Package analysis is a dependency-free static-analysis framework for
// the dcslint suite: a miniature, stdlib-only re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer / Pass / Diagnostic)
// plus a package loader built on `go list -export` and the compiler's
// export-data importer.
//
// Why not x/tools? The build environment is hermetic — the module has
// no external dependencies and must stay that way — so the framework
// re-creates exactly the part of the analysis API the four dcslint
// analyzers need, including `go vet -vettool` compatibility (the
// unitchecker .cfg protocol) in cmd/dcslint.
//
// The suite exists because the paper's DCS conjecture assumes every
// replica computes identical branch-selection and state-transition
// results: one nondeterministic map iteration or wall-clock read in a
// consensus path silently forks the ledger. The analyzers turn the
// repo's convention-only rules (simclock-only time, no I/O under
// locks, atomics-or-mutexes-never-both, no discarded hash-write
// errors) into machine-checked invariants.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check of the dcslint suite.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dcslint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `dcslint -list`.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Reportf.
	Run func(*Pass) error
	// FactTypes lists prototype values of every Fact type the analyzer
	// exports (each a pointer to a gob-encodable struct). An analyzer
	// with a non-empty FactTypes participates in the interprocedural
	// facts protocol: its facts are serialized alongside export data
	// and imported when dependent packages are analyzed.
	FactTypes []Fact
}

// A Pass provides one analyzer with the loaded, type-checked package
// under analysis and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path of the package under analysis
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the run's fact store: dependency facts are already
	// present when Run starts (the driver analyzes packages in
	// dependency order), and facts the analyzer exports become visible
	// to dependent packages. Nil when the driver runs without facts.
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// A Diagnostic is one finding, positioned and attributed to an
// analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// FrameworkName is the pseudo-analyzer name under which the framework
// itself reports (malformed //dcslint:ignore directives). Findings
// under this name cannot be suppressed.
const FrameworkName = "dcslint"

// A Package is one loaded, type-checked compilation unit ready for
// analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports (when loaded through
	// Listing.Load) — the edges the concurrent driver schedules fact
	// propagation over.
	Imports []string
}

// RunPackage applies every analyzer to pkg, enforces the
// //dcslint:ignore suppression protocol, and returns the surviving
// diagnostics sorted by position. Malformed directives (no reason, or
// an unknown analyzer name) are themselves diagnostics, attributed to
// FrameworkName and never suppressible.
//
// _test.go files are exempt: the invariants police code that runs on
// replicas, and test-local nondeterminism (collecting results into a
// slice, resetting a memo between sequential benchmark rounds) cannot
// fork a ledger. This keeps `go vet -vettool` — which analyzes test
// variants — consistent with the standalone runner.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackageFacts(pkg, analyzers, nil)
}

// RunPackageFacts is RunPackage with an interprocedural fact store:
// facts of the package's dependencies must already be in the store
// (analyze packages in dependency order), and facts this package
// exports are added to it.
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}

	known := make(map[string]bool, len(analyzers)+1)
	known["all"] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	ignores := make(map[string][]Ignore) // filename → directives
	for _, f := range files {
		name := pkg.Fset.Position(f.Pos()).Filename
		igs, malformed := ParseIgnores(pkg.Fset, f, known)
		ignores[name] = igs
		out = append(out, malformed...)
	}
	for _, d := range raw {
		if !suppressed(d, ignores[d.Pos.Filename]) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressed reports whether a well-formed ignore directive in the
// diagnostic's file covers it.
func suppressed(d Diagnostic, igs []Ignore) bool {
	if d.Analyzer == FrameworkName {
		return false
	}
	for _, ig := range igs {
		if !ig.Covers(d.Pos.Line) {
			continue
		}
		if ig.Analyzers["all"] || ig.Analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}
