package determinism_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/determinism"
)

func TestCritical(t *testing.T) {
	atest.Run(t, "testdata/src/critical", "dcsledger/internal/consensus/fake", determinism.Analyzer)
}

func TestBenignPackageIsExempt(t *testing.T) {
	atest.Run(t, "testdata/src/benign", "dcsledger/internal/bench", determinism.Analyzer)
}

func TestSuppression(t *testing.T) {
	atest.Run(t, "testdata/src/suppress", "dcsledger/internal/state/fake", determinism.Analyzer)
}

func TestCriticalPathMatching(t *testing.T) {
	for path, want := range map[string]bool{
		"dcsledger/internal/consensus":          true,
		"dcsledger/internal/consensus/pow":      true,
		"dcsledger/internal/state":              true,
		"dcsledger/internal/txpool":             true,
		"internal/mpt":                          true,
		"dcsledger/internal/bench":              false,
		"dcsledger/internal/p2p":                false,
		"dcsledger/internal/statistics":         false,
		"dcsledger/cmd/ledgerd":                 false,
		"dcsledger/internal/analysis/atest":     false,
		"dcsledger/internal/node":               true,
		"example.com/other/internal/node/inner": true,
	} {
		if got := determinism.Critical(path); got != want {
			t.Errorf("Critical(%q) = %v, want %v", path, got, want)
		}
	}
}
