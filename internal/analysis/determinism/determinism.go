// Package determinism implements the dcslint analyzer that keeps
// consensus-critical packages replica-deterministic.
//
// The DCS conjecture only holds if every replica computes the same
// branch-selection and state-transition results from the same inputs.
// Three implementation-level leaks break that silently:
//
//   - wall-clock reads (time.Now / time.Since) — two replicas never
//     agree on "now", so any decision derived from it forks;
//   - process-global math/rand — unseeded and unshared, so proposal
//     jitter, eviction choices, and shuffles differ per process;
//   - Go map iteration order — deliberately randomized per run, so any
//     hash, proposal body, callback fan-out, or "first match" choice
//     fed from a bare `range m` differs across replicas.
//
// The analyzer fires only inside the consensus-critical package set
// (consensus engines, state, node, merkle/mpt/iavl commitments, and
// the mempool); simulation harnesses and the network layer may use
// wall time and jitter freely.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dcsledger/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags wall-clock reads, package-global math/rand, and order-dependent " +
		"map iteration in consensus-critical packages (inject simclock.Clock, a " +
		"seeded *rand.Rand, or sort the keys instead)",
	Run: run,
}

// criticalMarkers are import-path fragments that mark a package as
// consensus-critical. "internal/consensus" matches every engine
// subpackage.
var criticalMarkers = []string{
	"internal/consensus",
	"internal/state",
	"internal/exec",
	"internal/node",
	"internal/merkle",
	"internal/mpt",
	"internal/iavl",
	"internal/txpool",
	"internal/scenario",
}

// Critical reports whether an import path belongs to the
// consensus-critical set the analyzer polices.
func Critical(path string) bool {
	for _, m := range criticalMarkers {
		if path == m ||
			strings.HasSuffix(path, "/"+m) ||
			strings.HasPrefix(path, m+"/") ||
			strings.Contains(path, "/"+m+"/") {
			return true
		}
	}
	return false
}

// globalRandExceptions are math/rand package functions that do not
// touch the process-global source: constructors for injectable,
// seeded generators.
var globalRandExceptions = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	if !Critical(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkFunc walks one function body: call-site checks everywhere, plus
// map-range hazard checks with access to the enclosing body (needed to
// decide whether an order-leaking slice is sorted afterwards).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			if isMapRange(pass, n) {
				checkMapRange(pass, n, body)
			}
		}
		return true
	})
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: time.Time methods etc. are fine.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"call to time.%s in consensus-critical package %s: wall-clock reads diverge across replicas and fork the ledger; inject a simclock.Clock (use internal/obs helpers for observability-only timing)",
				fn.Name(), pass.Path)
		}
	case "math/rand", "math/rand/v2":
		if !globalRandExceptions[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to package-global %s.%s in consensus-critical package %s: the process-global generator is unseeded and unshared, so replicas draw different values; inject a seeded *rand.Rand",
				fn.Pkg().Name(), fn.Name(), pass.Path)
		}
	}
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one `range m` loop over a map for the
// order-dependence hazards: order leaking into an (unsorted) slice,
// hash state written per iteration, callbacks invoked per iteration,
// and early exits that capture a loop variable ("first match wins").
// Pure folds — counting, min/max with total tie-breaks, set building,
// deletes — pass untouched.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	loopVars := rangeVars(pass, rs)
	escapes := false // loop-var-derived value stored outside the loop

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later; out of scope for order analysis
		case *ast.RangeStmt:
			// A nested map-range runs its own checkMapRange pass;
			// skipping it here avoids duplicate diagnostics.
			if isMapRange(pass, n) {
				return false
			}
		case *ast.AssignStmt:
			checkAppend(pass, n, rs, fnBody)
			if assignsOutside(pass, n, rs, loopVars) {
				escapes = true
			}
		case *ast.CallExpr:
			checkLoopCall(pass, n)
		case *ast.ReturnStmt:
			if analysis.UsesObject(pass.TypesInfo, n, loopVars) {
				pass.Reportf(n.Pos(),
					"return of a loop-dependent value inside map iteration: which element is returned depends on randomized map order; collect and sort the keys first")
			}
		}
		return true
	})

	// A break combined with a loop-var value escaping to an outer
	// variable is the "pick some element" pattern.
	if pos := directBreak(rs); pos.IsValid() && escapes {
		pass.Reportf(pos,
			"break after capturing a map element: the chosen element depends on randomized iteration order; iterate sorted keys or fold over all elements")
	}
}

// rangeVars returns the objects of the loop's key/value variables.
func rangeVars(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := pass.ObjectOf(id); o != nil {
				out[o] = true
			}
		}
	}
	return out
}

// checkAppend flags `s = append(s, ...)` growing a slice declared
// outside the loop, unless the same function later sorts s.
func checkAppend(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "append" {
		return
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.ObjectOf(lhs)
	if obj == nil {
		return
	}
	// Declared inside the loop body → order cannot leak out this way.
	if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
		return
	}
	if sortedAfter(pass, fnBody, obj, rs.End()) {
		return
	}
	pass.Reportf(as.Pos(),
		"map iteration order leaks into slice %q: append inside `range` over a map produces a different order on every replica; sort the map keys first or sort %q before use",
		lhs.Name, lhs.Name)
}

// sortedAfter reports whether fnBody contains, after pos, a recognized
// sorting call applied to obj.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		name := fn.Name()
		sorter := strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "Slice") ||
			name == "Strings" || name == "Ints" || name == "Float64s" || name == "Stable"
		if !sorter {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// assignsOutside reports whether as stores a loop-var-derived value
// into a variable declared outside the loop (excluding appends, which
// checkAppend owns, and excluding writes through index or field
// expressions, which are keyed and hence order-independent).
func assignsOutside(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt, loopVars map[types.Object]bool) bool {
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // indexed/field writes are keyed
		}
		obj := pass.ObjectOf(id)
		if obj == nil || id.Name == "_" {
			continue
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			continue // loop-local
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
				continue
			}
		}
		if analysis.UsesObject(pass.TypesInfo, rhs, loopVars) {
			return true
		}
	}
	return false
}

// checkLoopCall flags hash writes and dynamic callback invocations
// performed per map-iteration.
func checkLoopCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Write" || sel.Sel.Name == "Sum" {
			if recv := analysis.ReceiverType(info, call); recv != nil &&
				analysis.IsHashWriter(recv, pass.Pkg) {
				pass.Reportf(call.Pos(),
					"hash state written during map iteration: digests are order-sensitive and map order is randomized per replica; hash over sorted keys")
				return
			}
		}
	}
	if analysis.IsDynamicCall(info, call) {
		pass.Reportf(call.Pos(),
			"callback invoked during map iteration: invocation order is randomized per replica; snapshot the entries, sort, then invoke")
	}
}

// directBreak returns the position of the first break statement
// belonging to rs itself (not to a nested loop or switch), or NoPos.
func directBreak(rs *ast.RangeStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				pos = n.Pos()
			}
			return false
		case *ast.RangeStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // their breaks are not ours
		}
		return true
	})
	return pos
}
