// Package benign uses wall time, global rand, and bare map iteration —
// all fine outside the consensus-critical package set, where this
// package is analyzed. No diagnostics are expected.
package benign

import (
	"math/rand"
	"time"
)

func wallClock() int64 { return time.Now().UnixNano() }

func jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second)))
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
