// Package suppress exercises the //dcslint:ignore protocol under a
// consensus-critical import path: a justified suppression silences the
// finding, a reason-less one is itself a diagnostic, and an unknown
// analyzer name is rejected.
package suppress

import "time"

// justified: no determinism diagnostic, no framework diagnostic.
func observed() int64 {
	t := time.Now() //dcslint:ignore determinism observability-only timing, never feeds consensus
	return t.UnixNano()
}

// standalone directive covering the next line also works.
func observedBelow() int64 {
	//dcslint:ignore determinism observability-only timing, never feeds consensus
	t := time.Now()
	return t.UnixNano()
}

// missing reason: the suppression fails AND the directive is reported.
func unjustified() int64 {
	t := time.Now() /*dcslint:ignore determinism*/ // want "missing reason" "call to time.Now"
	return t.UnixNano()
}

// unknown analyzer name: reported, and nothing is suppressed.
func unknownName() int64 {
	t := time.Now() /*dcslint:ignore nosuchcheck because reasons*/ // want "unknown analyzer \"nosuchcheck\"" "call to time.Now"
	return t.UnixNano()
}
