// Package critical exercises every determinism trigger; it is analyzed
// under a consensus-critical import path.
package critical

import (
	"crypto/sha256"
	"math/rand"
	"sort"
	"time"
)

// --- positive cases ---

func wallClock() int64 {
	t := time.Now() // want "call to time.Now in consensus-critical package"
	return t.UnixNano()
}

func wallSince(start time.Time) time.Duration {
	return time.Since(start) // want "call to time.Since in consensus-critical package"
}

func globalRand() int {
	return rand.Intn(10) // want "package-global rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "package-global rand.Shuffle"
}

func orderLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "map iteration order leaks into slice \"keys\""
	}
	return keys
}

func hashUnderRange(m map[string][]byte) [32]byte {
	h := sha256.New()
	for _, v := range m {
		h.Write(v) // want "hash state written during map iteration"
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func callbackUnderRange(subs map[string]func(int)) {
	for id, fn := range subs {
		fn(len(id)) // want "callback invoked during map iteration"
	}
}

func firstMatchReturn(m map[string]int, min int) string {
	for k, v := range m {
		if v >= min {
			return k // want "return of a loop-dependent value inside map iteration"
		}
	}
	return ""
}

func pickSome(m map[string]int) string {
	var chosen string
	for k := range m {
		chosen = k
		break // want "break after capturing a map element"
	}
	return chosen
}

// --- negative cases ---

// seededRand injects a seeded generator: the approved pattern.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// sortedLeak appends map keys but sorts before use: deterministic.
func sortedLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fold is an order-independent aggregation.
func fold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// existence sets a flag and breaks without capturing the element.
func existence(m map[string]int, min int) bool {
	found := false
	for _, v := range m {
		if v >= min {
			found = true
			break
		}
	}
	return found
}

// keyedWrites build another map: keyed, hence order-independent.
func keyedWrites(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
