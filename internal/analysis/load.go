package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A Listing is the parsed result of one `go list -export` invocation:
// the root packages to analyze plus the export-data and vendor/import
// maps needed to type-check them. Roots are sorted by import path.
type Listing struct {
	Roots     []listPackage
	exportFor map[string]string // import path → export data file
	importMap map[string]string // source import path → vendored path
}

// List runs `go list -export` over the given patterns rooted at dir
// ("" means the current directory) and parses the result.
func List(dir string, patterns ...string) (*Listing, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Imports,Export,DepOnly,Standard,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	return parseGoList(&out)
}

// parseGoList decodes a stream of `go list -json` objects into a
// Listing. Split from List so malformed-output and edge-case handling
// is unit-testable without shelling out.
func parseGoList(r io.Reader) (*Listing, error) {
	l := &Listing{
		exportFor: make(map[string]string),
		importMap: make(map[string]string),
	}
	dec := json.NewDecoder(r)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exportFor[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			l.importMap[from] = to
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			l.Roots = append(l.Roots, p)
		}
	}
	sort.Slice(l.Roots, func(i, j int) bool { return l.Roots[i].ImportPath < l.Roots[j].ImportPath })
	return l, nil
}

// lookup resolves an import path (through the vendor map) to its
// export-data file.
func (l *Listing) lookup(path string) (io.ReadCloser, error) {
	if to, ok := l.importMap[path]; ok {
		path = to
	}
	f, ok := l.exportFor[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Load parses and type-checks one root package from the listing. Each
// call builds its own FileSet and export-data importer, so independent
// packages can be loaded concurrently — the gc importer's package
// cache is not safe for sharing across goroutines.
func (l *Listing) Load(r listPackage) (*Package, error) {
	if len(r.CgoFiles) > 0 {
		// Cgo packages cannot be parsed as plain Go (none exist in this
		// module).
		return nil, fmt.Errorf("loading %s: cgo packages are unsupported", r.ImportPath)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", l.lookup)
	pkg, err := checkPackage(fset, imp, r.ImportPath, r.Dir, r.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg.Imports = append([]string(nil), r.Imports...)
	return pkg, nil
}

// LoadPackages loads, parses, and type-checks the packages matched by
// the given `go list` patterns (e.g. "./..."), rooted at dir ("" means
// the current directory). Dependencies are resolved from compiler
// export data produced by `go list -export`, so loading is as fast as
// an incremental build and needs no network access.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	l, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, r := range l.Roots {
		if len(r.CgoFiles) > 0 {
			// Skip rather than fail the whole run.
			continue
		}
		pkg, err := l.Load(r)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from explicit files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		fn := gf
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// CheckFiles type-checks an already-parsed file set as one package —
// the entry point used by the vettool driver and the golden-test
// harness, which supply their own importer.
func CheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// ExportImporter builds a types.Importer that resolves the given
// import paths (and their transitive dependencies) from compiler
// export data via `go list -export`. It is the helper the golden-test
// harness uses so testdata packages can import the standard library.
func ExportImporter(fset *token.FileSet, dir string, imports []string) (types.Importer, error) {
	if len(imports) == 0 {
		return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no imports expected, got %q", path)
		}), nil
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Error",
	}, imports...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", imports, err, errb.String())
	}
	l, err := parseGoList(&out)
	if err != nil {
		return nil, err
	}
	return importer.ForCompiler(fset, "gc", l.lookup), nil
}
