package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// LoadPackages loads, parses, and type-checks the packages matched by
// the given `go list` patterns (e.g. "./..."), rooted at dir ("" means
// the current directory). Dependencies are resolved from compiler
// export data produced by `go list -export`, so loading is as fast as
// an incremental build and needs no network access.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}

	exportFor := make(map[string]string)
	importMap := make(map[string]string)
	var roots []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, r := range roots {
		if len(r.CgoFiles) > 0 {
			// Cgo packages cannot be parsed as plain Go; skip rather
			// than fail the whole run (none exist in this module).
			continue
		}
		pkg, err := checkPackage(fset, imp, r.ImportPath, r.Dir, r.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from explicit files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		fn := gf
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// CheckFiles type-checks an already-parsed file set as one package —
// the entry point used by the vettool driver and the golden-test
// harness, which supply their own importer.
func CheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// ExportImporter builds a types.Importer that resolves the given
// import paths (and their transitive dependencies) from compiler
// export data via `go list -export`. It is the helper the golden-test
// harness uses so testdata packages can import the standard library.
func ExportImporter(fset *token.FileSet, dir string, imports []string) (types.Importer, error) {
	if len(imports) == 0 {
		return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no imports expected, got %q", path)
		}), nil
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Error",
	}, imports...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", imports, err, errb.String())
	}
	exportFor := make(map[string]string)
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}), nil
}
