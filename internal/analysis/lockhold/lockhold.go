// Package lockhold implements the dcslint analyzer that enforces lock
// hygiene: no blocking or unbounded work while a sync.Mutex/RWMutex is
// held.
//
// This is exactly the deadlock/latency bug class the transport rework
// (PR 1) hand-fixed in the gossiper: a channel send, a network write,
// or a subscriber callback executed under a lock turns one slow peer
// into a stalled node — and a callback that re-acquires the same lock
// deadlocks it. The analyzer tracks Lock/RLock…Unlock/RUnlock regions
// intraprocedurally (deferred unlocks hold to the end of the function)
// and flags, inside a held region:
//
//   - channel sends — except sends inside a `select` with a `default`
//     clause, the sanctioned non-blocking pattern;
//   - calls to methods named Send / Publish / Broadcast;
//   - network and file I/O (callees in net or os);
//   - dynamic calls of func-typed variables or fields (callbacks);
//   - re-locking a mutex already held (self-deadlock).
//
// The analysis is intraprocedural by design: a helper that is *called
// with* a lock held is not flagged (convention: name such helpers
// *Locked). Function literals are analyzed as separate functions —
// they usually run on another goroutine or after the region ends.
package lockhold

import (
	"go/ast"
	"go/types"

	"dcsledger/internal/analysis"
)

// Analyzer is the lock-hygiene checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "flags channel sends, network/file I/O, Send/Publish calls, and callback " +
		"invocations performed while a sync.Mutex or RWMutex is held, plus " +
		"re-locking a held mutex",
	Run: run,
}

// ioExempt are os package helpers that do no I/O worth flagging.
var ioExempt = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Getpid": true,
	"Getppid": true, "Getuid": true, "Geteuid": true, "Hostname": true,
	"IsNotExist": true, "IsExist": true, "IsTimeout": true, "IsPermission": true,
	"TempDir": true, "UserHomeDir": true, "UserCacheDir": true, "UserConfigDir": true,
	"Getwd": true, "Expand": true, "ExpandEnv": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// heldLock records one acquired mutex, keyed by the printed receiver
// expression (e.g. "n.mu").
type heldLock struct {
	name string
}

// checkBody runs the sequential lock-region scan over one function
// body. held maps mutex expression → the Lock call position.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := map[string]bool{}
	walkStmts(pass, body.List, held)
}

// walkStmts processes a statement list in order, tracking lock state.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		walkStmt(pass, s, held)
	}
}

// walkStmt dispatches one statement: lock-state transitions first,
// then violation checks when at least one lock is held, then recursion
// into nested blocks.
func walkStmt(pass *analysis.Pass, s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, op, ok := lockOp(pass, s.X); ok {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if held[name] {
					pass.Reportf(s.Pos(),
						"%s.%s while %s is already held in this function: self-deadlock (or double-RLock writer starvation)", name, op, name)
				}
				held[name] = true
			case "Unlock", "RUnlock":
				delete(held, name)
			}
			return
		}
		if len(held) > 0 {
			checkExpr(pass, s.X, held)
		}
	case *ast.DeferStmt:
		if name, op, ok := lockOp(pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: the lock stays held for the remainder of
			// the function — keep it in the set.
			_ = name
			return
		}
		// Deferred calls run at return; their args are evaluated now.
		if len(held) > 0 {
			for _, a := range s.Call.Args {
				checkExpr(pass, a, held)
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(),
				"channel send while holding %s: a full (or unbuffered) channel blocks the critical section; send after unlocking or use a select with default", heldNames(held))
		}
		if len(held) > 0 {
			checkExpr(pass, s.Value, held)
		}
	case *ast.AssignStmt:
		if len(held) > 0 {
			for _, e := range s.Rhs {
				checkExpr(pass, e, held)
			}
			for _, e := range s.Lhs {
				checkExpr(pass, e, held)
			}
		}
	case *ast.ReturnStmt:
		if len(held) > 0 {
			for _, e := range s.Results {
				checkExpr(pass, e, held)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if len(held) > 0 && s.Cond != nil {
			checkExpr(pass, s.Cond, held)
		}
		walkBranch(pass, s.Body, held)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				walkBranch(pass, e, held)
			case *ast.IfStmt:
				walkStmt(pass, e, held)
			}
		}
	case *ast.BlockStmt:
		walkStmts(pass, s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if len(held) > 0 && s.Cond != nil {
			checkExpr(pass, s.Cond, held)
		}
		walkBranch(pass, s.Body, held)
	case *ast.RangeStmt:
		if len(held) > 0 {
			checkExpr(pass, s.X, held)
		}
		walkBranch(pass, s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if len(held) > 0 && s.Tag != nil {
			checkExpr(pass, s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				walkBranchStmts(pass, c.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				walkBranchStmts(pass, c.Body, held)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
				hasDefault = true
			}
		}
		for _, cc := range s.Body.List {
			c, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := c.Comm.(*ast.SendStmt); ok && len(held) > 0 && !hasDefault {
				pass.Reportf(send.Pos(),
					"blocking channel send in select while holding %s: add a default clause or send after unlocking", heldNames(held))
			}
			walkBranchStmts(pass, c.Body, held)
		}
	case *ast.GoStmt:
		// Starting a goroutine under a lock is fine; the goroutine body
		// is analyzed as its own function.
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, held)
	default:
		if len(held) > 0 {
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					checkExpr(pass, e, held)
					return false
				}
				return true
			})
		}
	}
}

// walkBranch recurses into a branch block. If the branch terminates
// (ends in return/break/continue/panic), lock-state mutations inside
// it do not affect the fall-through path, so the held set is restored.
func walkBranch(pass *analysis.Pass, block *ast.BlockStmt, held map[string]bool) {
	walkBranchStmts(pass, block.List, held)
}

func walkBranchStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	saved := make(map[string]bool, len(held))
	for k, v := range held {
		saved[k] = v
	}
	walkStmts(pass, stmts, held)
	if terminates(stmts) {
		for k := range held {
			delete(held, k)
		}
		for k, v := range saved {
			held[k] = v
		}
	}
}

// terminates reports whether the statement list ends in a control
// transfer out of the enclosing region.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// lockOp decodes expr as a mutex Lock/Unlock-family call, returning
// the receiver's printed name and the operation.
func lockOp(pass *analysis.Pass, expr ast.Expr) (name, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	if analysis.MutexOf(pass.TypeOf(sel.X)) == analysis.NotMutex {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkExpr scans one expression subtree for violating calls. FuncLits
// are skipped — they are analyzed as independent functions.
func checkExpr(pass *analysis.Pass, expr ast.Expr, held map[string]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			checkCall(pass, n, held)
		}
		return true
	})
}

// checkCall flags one call made while locks are held.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, held map[string]bool) {
	info := pass.TypesInfo
	if fn := analysis.Callee(info, call); fn != nil {
		name := fn.Name()
		switch name {
		case "Send", "Publish", "Broadcast":
			pass.Reportf(call.Pos(),
				"call to %s while holding %s: transport/fan-out calls can block or re-enter; move it after the unlock", name, heldNames(held))
			return
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return // lock ops are handled by the region tracker
		}
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		rp := recvPkg(info, call)
		isIO := pkg == "net" || pkg == "os" || rp == "net" || rp == "os" ||
			// Stream codecs wrap a conn/file: Encode/Decode is I/O.
			((rp == "encoding/json" || rp == "encoding/gob") && (name == "Encode" || name == "Decode")) ||
			(rp == "bufio" && name == "Flush")
		if isIO && !ioExempt[name] {
			pass.Reportf(call.Pos(),
				"network/file I/O (%s.%s) while holding %s: I/O latency extends the critical section unboundedly; perform it after unlocking", pkgShort(pkg, info, call), name, heldNames(held))
		}
		return
	}
	if analysis.IsDynamicCall(info, call) {
		pass.Reportf(call.Pos(),
			"callback invoked while holding %s: the callee is opaque and may block or re-acquire the lock (deadlock); snapshot under the lock, invoke after unlocking", heldNames(held))
	}
}

// recvPkg returns the package path of a method call's receiver named
// type ("" otherwise).
func recvPkg(info *types.Info, call *ast.CallExpr) string {
	return analysis.NamedPkgPath(analysis.ReceiverType(info, call))
}

func pkgShort(pkg string, info *types.Info, call *ast.CallExpr) string {
	if pkg == "net" || pkg == "os" {
		return pkg
	}
	if p := recvPkg(info, call); p != "" {
		return p
	}
	return pkg
}

// heldNames renders the held-lock set for messages.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Deterministic order for stable messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := names[0]
	for _, n := range names[1:] {
		out += ", " + n
	}
	return out
}
