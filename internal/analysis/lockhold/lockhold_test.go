package lockhold_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	atest.Run(t, "testdata/src/locks", "dcsledger/internal/fake", lockhold.Analyzer)
}

func TestSuppression(t *testing.T) {
	atest.Run(t, "testdata/src/suppress", "dcsledger/internal/fake", lockhold.Analyzer)
}
