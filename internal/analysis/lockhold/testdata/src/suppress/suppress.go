// Package suppress verifies the ignore protocol for lockhold.
package suppress

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// justified suppression: silenced.
func (b *box) sendAnyway(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v //dcslint:ignore lockhold channel is buffered and drained by a dedicated goroutine
}

// reason-less suppression: finding survives and the directive is
// reported.
func (b *box) sendBad(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v /*dcslint:ignore lockhold*/ // want "missing reason" "channel send while holding b.mu"
}
