// Package locks exercises the lockhold triggers.
package locks

import (
	"net"
	"sync"
)

type sender interface {
	Send(to string, b []byte) error
}

type node struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	tr     sender
	conn   net.Conn
	ch     chan int
	onDone func(int)
	seen   map[string]bool
}

// --- positive cases ---

func (n *node) sendUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.tr.Send("peer", nil) // want "call to Send while holding n.mu"
}

func (n *node) channelSendUnderLock(v int) {
	n.mu.Lock()
	n.ch <- v // want "channel send while holding n.mu"
	n.mu.Unlock()
}

func (n *node) ioUnderLock(b []byte) {
	n.rw.RLock()
	defer n.rw.RUnlock()
	_, _ = n.conn.Write(b) // want "network/file I/O \\(net.Write\\) while holding n.rw"
}

func (n *node) callbackUnderLock(v int) {
	n.mu.Lock()
	n.onDone(v) // want "callback invoked while holding n.mu"
	n.mu.Unlock()
}

func (n *node) doubleLock() {
	n.mu.Lock()
	n.mu.Lock() // want "n.mu.Lock while n.mu is already held"
	n.mu.Unlock()
	n.mu.Unlock()
}

func (n *node) blockingSelectSend(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- v: // want "blocking channel send in select while holding n.mu"
	}
}

// --- negative cases ---

// sendAfterUnlock snapshots under the lock and sends outside: the
// sanctioned pattern.
func (n *node) sendAfterUnlock() {
	n.mu.Lock()
	dup := n.seen["x"]
	n.mu.Unlock()
	if !dup {
		_ = n.tr.Send("peer", nil)
	}
}

// nonBlockingSend uses select-with-default under the lock: allowed.
func (n *node) nonBlockingSend(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- v:
	default:
	}
}

// earlyReturnKeepsRegion: the unlock inside the terminating branch must
// not clear the lock state of the fall-through path.
func (n *node) earlyReturnKeepsRegion(bad bool, v int) {
	n.mu.Lock()
	if bad {
		n.mu.Unlock()
		return
	}
	n.ch <- v // want "channel send while holding n.mu"
	n.mu.Unlock()
}

// callbackAfterSnapshot reads the callback under the lock but invokes
// it after unlocking: allowed.
func (n *node) callbackAfterSnapshot(v int) {
	n.mu.Lock()
	fn := n.onDone
	n.mu.Unlock()
	if fn != nil {
		fn(v)
	}
}

// goroutineUnderLock: spawning is fine; the literal body is analyzed
// independently (and holds no lock of its own).
func (n *node) goroutineUnderLock(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.ch <- v
	}()
}
