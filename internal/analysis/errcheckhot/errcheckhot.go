// Package errcheckhot implements the dcslint analyzer that flags
// discarded errors on the ledger's hot integrity paths.
//
// A general errcheck is noisy; this one is deliberately narrow. It
// only fires where a silently dropped error corrupts consensus state
// or ledger durability:
//
//   - hash.Hash.Write — a failed or partial digest write yields a
//     wrong block/merkle hash, which forks replicas silently.
//   - json.Encoder.Encode / gob encode-decode / binary.Write — wire
//     and disk encoding errors mean a peer or the store received a
//     truncated object.
//   - store/sink mutations (Put, Append, Commit, Flush, Delete) —
//     dropping these errors makes the node believe data is durable
//     when it is not.
//
// An explicit `_ = expr` discard is allowed: it is visible in review
// and greppable, unlike a bare expression statement.
package errcheckhot

import (
	"go/ast"
	"go/types"

	"dcsledger/internal/analysis"
)

// Analyzer is the hot-path error-discard checker.
var Analyzer = &analysis.Analyzer{
	Name: "errcheckhot",
	Doc: "flags expression statements that discard the error from hash writes, " +
		"encoder/decoder calls, and store/sink mutations (use `_ =` for an " +
		"intentional, visible discard)",
	Run: run,
}

// sinkMethods are mutation method names that, on any receiver, count
// as a durability-critical sink when they return an error.
var sinkMethods = map[string]bool{
	"Put":    true,
	"Append": true,
	"Commit": true,
	"Flush":  true,
	"Delete": true,
}

// encoderCalls maps package path → function/method names whose error
// result must not be dropped.
var encoderCalls = map[string]map[string]bool{
	"encoding/json":   {"Encode": true, "Decode": true},
	"encoding/gob":    {"Encode": true, "Decode": true, "EncodeValue": true, "DecodeValue": true},
	"encoding/binary": {"Write": true, "Read": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				if c, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					call = c
				}
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				// The goroutine's function value is analyzed on its
				// own; the spawn itself discards nothing.
				return true
			}
			if call == nil {
				return true
			}
			if !returnsError(pass.TypesInfo, call) {
				return true
			}
			if desc := hotCallee(pass, call); desc != "" {
				pass.Reportf(call.Pos(),
					"error from %s is discarded on a hot integrity path; handle it or discard explicitly with `_ =`",
					desc)
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	check := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if check(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(t)
}

// hotCallee classifies the call; non-empty return is the description
// used in the diagnostic.
func hotCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	info := pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()

	// Package-level encoder functions: binary.Write(buf, order, v).
	if fn.Pkg() != nil {
		if names, ok := encoderCalls[fn.Pkg().Path()]; ok && names[name] && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + name
		}
	}

	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	// For interface methods reached through embedding (hash.Hash
	// embeds io.Writer), the declared receiver is the embedded
	// interface; prefer the static type of the selector operand.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv = s.Recv()
		}
	}

	// Encoder/decoder methods: json.Encoder.Encode, gob, etc.
	if pkg := analysis.NamedPkgPath(recv); pkg != "" {
		if names, ok := encoderCalls[pkg]; ok && names[name] {
			return pkg + " " + typeName(recv) + "." + name
		}
	}

	// Hash writes: structural hash.Hash (Write+Sum+Reset+BlockSize)
	// or io.Writer named like a hasher is too fuzzy — require the
	// full hash.Hash method set.
	if name == "Write" && analysis.IsHashWriter(recv, pass.Pkg) {
		return "hash write " + typeName(recv) + ".Write"
	}

	// Store/sink mutations by method name.
	if sinkMethods[name] {
		return "sink mutation " + typeName(recv) + "." + name
	}
	return ""
}

// typeName renders the receiver's bare type name for messages.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
