package errcheckhot_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/errcheckhot"
)

func TestErrcheckhot(t *testing.T) {
	atest.Run(t, "testdata/src/hot", "dcsledger/internal/fake", errcheckhot.Analyzer)
}

func TestSuppression(t *testing.T) {
	atest.Run(t, "testdata/src/suppress", "dcsledger/internal/fake", errcheckhot.Analyzer)
}
