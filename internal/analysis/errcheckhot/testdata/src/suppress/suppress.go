// Package suppress verifies the ignore protocol for errcheckhot.
package suppress

import (
	"crypto/sha256"
	"hash"
)

// justified suppression: silenced.
func bestEffort(h hash.Hash, b []byte) {
	h.Write(b) //dcslint:ignore errcheckhot stdlib sha256 documents that Write never returns an error
}

// reason-less suppression: finding survives and the directive is
// reported.
func bestEffortBad(b []byte) {
	h := sha256.New()
	h.Write(b) /*dcslint:ignore errcheckhot*/ // want "missing reason" "error from hash write .*Write is discarded"
	_ = h.Sum(nil)
}
