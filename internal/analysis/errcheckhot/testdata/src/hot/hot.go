// Package hot exercises the errcheckhot triggers.
package hot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"io"
)

type store struct{}

func (s *store) Put(k, v []byte) error { return nil }
func (s *store) Flush() error          { return nil }
func (s *store) Get(k []byte) []byte   { return nil } // no error result
func (s *store) Notify(ev string)      {}             // not a sink name
func (s *store) Append(b []byte) error { return nil }

// --- positive cases ---

func hashDrop(b []byte) []byte {
	h := sha256.New()
	h.Write(b) // want "error from hash write .*Write is discarded"
	return h.Sum(nil)
}

func encodeDrop(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.Encode(v) // want "error from encoding/json Encoder.Encode is discarded"
}

func binaryDrop(w io.Writer, v uint64) {
	binary.Write(w, binary.BigEndian, v) // want "error from binary.Write is discarded"
}

func sinkDrop(s *store, k, v []byte) {
	s.Put(k, v) // want "error from sink mutation store.Put is discarded"
}

func deferredFlushDrop(s *store, b []byte) {
	defer s.Flush() // want "error from sink mutation store.Flush is discarded"
	s.Append(b)     // want "error from sink mutation store.Append is discarded"
}

// --- negative cases ---

// explicitDiscard is visible in review: allowed.
func explicitDiscard(b []byte) []byte {
	h := sha256.New()
	_, _ = h.Write(b)
	return h.Sum(nil)
}

// handled checks the error: the call is not in statement position.
func handled(w io.Writer, v any) error {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return err
	}
	return nil
}

// noErrorResult: Get returns no error, nothing to discard.
func noErrorResult(s *store, k []byte) {
	s.Get(k)
}

// notASink: Notify is not a sink-mutation name and returns nothing.
func notASink(s *store) {
	s.Notify("tick")
}

// bufferWrite: bytes.Buffer.Write returns an error but the receiver is
// not a hash.Hash and Write is not in the sink list — a general
// errcheck concern, not a hot-path one.
func bufferWrite(buf *bytes.Buffer, b []byte) {
	buf.Write(b)
}
