package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// A Fact is a per-function deduction one analyzer exports so that the
// analysis of *dependent* packages can consume it — the interprocedural
// half of the suite. Facts follow the same shape as go vet's facts
// protocol: they are computed once per package, serialized alongside
// the package's export data (the .vetx file under `go vet -vettool`,
// an in-memory store in standalone mode), and imported when a
// dependent package is analyzed.
//
// A Fact type must be a pointer to a gob-encodable struct and must be
// listed in its analyzer's FactTypes so the codec can register it.
// Facts are keyed by (analyzer, function): the suite only needs
// function-granularity facts ("calls a wall clock", "spawns an
// unstoppable goroutine"), which keeps the object-addressing problem
// trivial — a function is addressed by its types.Func.FullName(),
// which is stable across processes and across separately type-checked
// package snapshots.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// factKey addresses one fact in a store.
type factKey struct {
	Analyzer string // Analyzer.Name
	Func     string // types.Func.FullName(), e.g. "(*pkg.T).Method" or "pkg.Fn"
}

// factRecord is the serialized form of one exported fact.
type factRecord struct {
	Analyzer string
	Func     string
	Fact     Fact
}

// A FactStore holds every fact known to one analysis run: facts
// imported from dependency packages plus facts exported while
// analyzing. It is safe for concurrent use — the standalone driver
// analyzes independent packages in parallel, publishing each package's
// facts before any dependent package starts.
type FactStore struct {
	mu sync.RWMutex
	m  map[string]map[factKey]Fact // package path → facts on its functions
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[factKey]Fact)}
}

// put records one fact for a function of package pkgPath.
func (s *FactStore) put(pkgPath string, key factKey, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pkg := s.m[pkgPath]
	if pkg == nil {
		pkg = make(map[factKey]Fact)
		s.m[pkgPath] = pkg
	}
	pkg[key] = fact
}

// get returns the fact stored under (pkgPath, key), or nil.
func (s *FactStore) get(pkgPath string, key factKey) Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[pkgPath][key]
}

// records snapshots every fact in the store, sorted for deterministic
// serialization.
func (s *FactStore) records() []factRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []factRecord
	for _, pkg := range s.m {
		for k, f := range pkg {
			out = append(out, factRecord{Analyzer: k.Analyzer, Func: k.Func, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// RegisterFactTypes registers every analyzer's FactTypes with gob so
// stores can be serialized. Call once per process before WriteFile /
// ReadFile.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// WriteFile serializes the whole store to path — the .vetx payload in
// vettool mode. cmd/go treats the file as an opaque build artifact
// keyed on the tool's buildID, so the format only has to agree with
// ReadFile in the same binary.
func (s *FactStore) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.records()); err != nil {
		return fmt.Errorf("encoding facts: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// ReadFile merges the facts serialized at path into the store under
// pkgPath's dependency namespace. The funcKey carries the declaring
// package implicitly via FullName, so records land keyed by the
// function's own package — pass "" to derive it from each record.
func (s *FactStore) ReadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil // dependency exported no facts
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding facts from %s: %w", path, err)
	}
	for _, r := range recs {
		s.put(pkgOfFuncKey(r.Func), factKey{Analyzer: r.Analyzer, Func: r.Func}, r.Fact)
	}
	return nil
}

// pkgOfFuncKey recovers the declaring package path from a
// types.Func.FullName key: "path/to/pkg.Fn" or "(*path/to/pkg.T).Fn"
// or "(path/to/pkg.T).Fn".
func pkgOfFuncKey(full string) string {
	s := full
	if strings.HasPrefix(s, "(") {
		if i := strings.IndexByte(s, ')'); i >= 0 {
			s = s[1:i]
		}
		s = strings.TrimPrefix(s, "*")
	}
	// s is now "path/to/pkg.T" (method) or "path/to/pkg.Fn" (function);
	// the package path ends at the first '.' after the final '/'.
	slash := strings.LastIndexByte(s, '/')
	if i := strings.IndexByte(s[slash+1:], '.'); i >= 0 {
		return s[:slash+1+i]
	}
	return s
}

// funcKey renders the store key for fn under analyzer a.
func funcKey(a *Analyzer, fn *types.Func) factKey {
	return factKey{Analyzer: a.Name, Func: fn.FullName()}
}

// ExportFunctionFact records fact for fn, visible to the analysis of
// every dependent package (and to later same-package queries). fn must
// be declared in the package under analysis.
func (p *Pass) ExportFunctionFact(fn *types.Func, fact Fact) {
	if p.Facts == nil || fn == nil {
		return
	}
	pkgPath := p.Path
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	p.Facts.put(pkgPath, funcKey(p.Analyzer, fn), fact)
}

// ImportFunctionFact copies the fact recorded for fn (by this
// analyzer, in any previously analyzed package — or this one) into
// *fact and reports whether one existed. fact must be a pointer of the
// same concrete type the fact was exported with.
func (p *Pass) ImportFunctionFact(fn *types.Func, fact Fact) bool {
	if p.Facts == nil || fn == nil || fn.Pkg() == nil {
		return false
	}
	got := p.Facts.get(fn.Pkg().Path(), funcKey(p.Analyzer, fn))
	if got == nil {
		return false
	}
	dv := reflect.ValueOf(fact)
	sv := reflect.ValueOf(got)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}
