package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the called function of a CallExpr to its
// *types.Func (package-level function or method), or nil when the call
// is dynamic (a func-typed variable, field, or parameter), a builtin,
// or a type conversion.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CalleePkgPath returns the import path of the package a called
// function belongs to ("" for dynamic calls, builtins, and
// conversions). For methods it is the package declaring the receiver
// type's method.
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsDynamicCall reports whether the call invokes a func-typed value
// (variable, struct field, or parameter) rather than a declared
// function, method, builtin, or conversion. Interface method calls are
// not dynamic in this sense — they resolve to a *types.Func.
func IsDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		// Computed expression (e.g. fns[i](), f()()): dynamic if it has
		// a signature type.
		if tv, ok := info.Types[fun]; ok {
			_, isSig := tv.Type.Underlying().(*types.Signature)
			return isSig && !tv.IsType() && !tv.IsBuiltin()
		}
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isSig := v.Type().Underlying().(*types.Signature)
	return isSig
}

// ReceiverType returns the (pointer-stripped) type of the receiver
// expression of a method-call selector, or nil for non-selector calls.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// NamedPkgPath returns the import path of the package declaring t's
// named (or alias-resolved) type, following one level of pointer.
// It returns "" for unnamed and universe types.
func NamedPkgPath(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok && !isNamed(t) {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

func isNamed(t types.Type) bool {
	_, ok := t.(*types.Named)
	return ok
}

// NamedTypeName returns the bare name of t's named type ("" if t is
// not a named type), following one level of pointer.
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok && !isNamed(t) {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// HasMethods reports whether type t (or *t) has methods with every
// given name — a structural stand-in for interface satisfaction that
// needs no access to the interface's declaring package. It is how the
// analyzers recognize hash.Hash implementations (Sum + BlockSize +
// Reset) without importing hash.
func HasMethods(t types.Type, pkg *types.Package, names ...string) bool {
	if t == nil {
		return false
	}
	for _, name := range names {
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// IsHashWriter reports whether t structurally looks like a hash.Hash:
// it has Write, Sum, Reset, and BlockSize methods. bytes.Buffer and
// plain io.Writers do not qualify.
func IsHashWriter(t types.Type, pkg *types.Package) bool {
	return HasMethods(t, pkg, "Write", "Sum", "Reset", "BlockSize")
}

// MutexKind classifies a type as a sync mutex.
type MutexKind int

// Mutex classifications.
const (
	NotMutex MutexKind = iota
	PlainMutex
	RWMutex
)

// MutexOf reports whether t is sync.Mutex or sync.RWMutex (directly or
// behind one pointer).
func MutexOf(t types.Type) MutexKind {
	if t == nil {
		return NotMutex
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return NotMutex
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return NotMutex
	}
	switch obj.Name() {
	case "Mutex":
		return PlainMutex
	case "RWMutex":
		return RWMutex
	}
	return NotMutex
}

// UsesObject reports whether any identifier inside node resolves to
// one of the given objects.
func UsesObject(info *types.Info, node ast.Node, objs map[types.Object]bool) bool {
	if node == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if o := info.Uses[id]; o != nil && objs[o] {
			found = true
		}
		return !found
	})
	return found
}
