package goroleak_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	atest.RunPackages(t, []atest.PkgSpec{
		{Dir: "testdata/src/goroutil", ImportPath: "dcsledger/internal/goroutil"},
		{Dir: "testdata/src/leaky", ImportPath: "dcsledger/internal/p2p/fake"},
	}, goroleak.Analyzer)
}
