// Package goroleak implements the dcslint analyzer that demands a
// provable stop path for every goroutine launched in a long-lived
// component.
//
// The churn scenarios the roadmap's adversarial harness needs (nodes
// joining, crashing, reconnecting for hours) turn a single
// fire-and-forget goroutine into a linear leak: every reconnect spawns
// another loop that nothing ever stops. The rule this analyzer
// machine-checks is the repo's existing convention: a goroutine that
// loops must be wired to the component's lifecycle — a
// context.Context's Done/Err, a done-channel some Close/Stop closes,
// or a sync.WaitGroup the component Waits on (Close blocking on
// wg.Wait proves the goroutine exits, or Close itself hangs and every
// test catches it).
//
// The analysis is interprocedural two ways. Within a package, the body
// a `go` statement runs is resolved through the package-local call
// graph (a spawned method, or a closure calling a same-package
// helper). Across packages, two facts are exported per function:
// "calling this launches an unstoppable goroutine" (a spawner — so a
// policed package calling util.StartTicker() is flagged at the call
// site) and "this loops forever with no stop token" (so `go
// util.Forever()` is flagged at the spawn). Only long-lived component
// packages — p2p (incl. gossip), node, wal, nodestore — report;
// everything else just exports facts.
//
// One-shot goroutines (no unbounded loop) are exempt: they terminate
// by construction and cannot accumulate.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"dcsledger/internal/analysis"
)

// Analyzer is the goroutine-lifecycle checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flags goroutines in long-lived components (p2p, node, wal, nodestore) " +
		"that loop with no provable stop path (context, closed done-channel, or " +
		"Waited WaitGroup), including spawns laundered through helper calls",
	Run:       run,
	FactTypes: []analysis.Fact{&LeakFact{}},
}

// Fact kinds.
const (
	// KindSpawner marks a function that launches an unstoppable
	// goroutine when called.
	KindSpawner = "spawner"
	// KindLoop marks a function that is itself an unbounded loop with
	// no stop token — dangerous as a `go` target.
	KindLoop = "loop"
)

// A LeakFact marks a function as a goroutine-lifecycle hazard for
// callers in other packages.
type LeakFact struct {
	Kind string // KindSpawner or KindLoop
	Via  string // witness, e.g. "goroutine at tick.go:12" or "Forever"
}

// AFact marks LeakFact as a fact type.
func (*LeakFact) AFact() {}

// policedMarkers are the long-lived component packages where findings
// are reported. Everything else only exports facts.
var policedMarkers = []string{
	"internal/p2p",
	"internal/node",
	"internal/wal",
	"internal/nodestore",
}

// Policed reports whether an import path belongs to the long-lived
// component set.
func Policed(path string) bool {
	for _, m := range policedMarkers {
		if path == m ||
			strings.HasSuffix(path, "/"+m) ||
			strings.HasPrefix(path, m+"/") ||
			strings.Contains(path, "/"+m+"/") {
			return true
		}
	}
	return false
}

// stopTokens is the package-wide set of lifecycle objects a goroutine
// body may reference to prove it stops.
type stopTokens struct {
	closedChans map[types.Object]bool // channel vars/fields close()d somewhere
	waitedWGs   map[types.Object]bool // WaitGroup vars/fields .Wait()ed somewhere
}

func run(pass *analysis.Pass) error {
	if strings.Contains(pass.Path, "internal/analysis") {
		return nil // the suite itself is not a replica component
	}
	graph := analysis.BuildCallGraph(pass)
	tokens := collectStopTokens(pass)
	policed := Policed(pass.Path)

	// Phase 1: classify every `go` statement, reporting (policed) or
	// marking the enclosing function a spawner (for fact export).
	spawners := map[*types.Func]string{} // fn → witness
	loopFns := map[*types.Func]bool{}
	for _, fn := range graph.Functions() {
		decl := graph.Decls[fn]
		if isUnstoppableLoop(pass, graph, decl.Body, tokens) {
			loopFns[fn] = true
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			witness, bad := classifySpawn(pass, graph, gs, tokens, loopFns)
			if !bad {
				return true
			}
			if policed {
				pass.Reportf(gs.Pos(),
					"goroutine launched in long-lived component %s has no provable stop path (%s): no context.Done/Err, no done-channel closed by Close/Stop, no WaitGroup this package Waits on — it outlives shutdown and accumulates under churn",
					pass.Path, witness)
			} else if _, seen := spawners[fn]; !seen {
				spawners[fn] = witness
			}
			return true
		})
	}

	// Phase 2: propagate spawner facts up the call graph (a function
	// that calls a spawner is a spawner) and across packages.
	graph.Fixpoint(func(caller *types.Func, call analysis.ResolvedCall) bool {
		if _, already := spawners[caller]; already {
			return false
		}
		callee := call.Callee
		if callee.Pkg() == pass.Pkg {
			if w, ok := spawners[callee]; ok {
				spawners[caller] = callee.Name() + " → " + w
				return true
			}
			return false
		}
		var fact LeakFact
		if pass.ImportFunctionFact(callee, &fact) && fact.Kind == KindSpawner {
			spawners[caller] = callee.Name() + " → " + fact.Via
			return true
		}
		return false
	})

	// Phase 3: export facts (non-policed packages only — policed spawn
	// sites were already reported where they occur).
	if !policed {
		for _, fn := range graph.Functions() {
			if w, ok := spawners[fn]; ok {
				pass.ExportFunctionFact(fn, &LeakFact{Kind: KindSpawner, Via: w})
			} else if loopFns[fn] {
				pass.ExportFunctionFact(fn, &LeakFact{Kind: KindLoop, Via: fn.Name()})
			}
		}
		return nil
	}

	// Phase 4 (policed only): report calls into other packages that
	// launch unstoppable goroutines.
	for _, fn := range graph.Functions() {
		for _, call := range graph.Calls[fn] {
			callee := call.Callee
			if callee.Pkg() == nil || callee.Pkg() == pass.Pkg {
				continue
			}
			var fact LeakFact
			if pass.ImportFunctionFact(callee, &fact) && fact.Kind == KindSpawner {
				pass.Reportf(call.Site.Pos(),
					"call to %s launches a goroutine with no provable stop path (via %s): wire it to this component's Close/Stop lifecycle or it accumulates under churn",
					callee.Name(), callee.Name()+" → "+fact.Via)
			}
		}
	}
	return nil
}

// isUnstoppableLoop reports whether a function body is an unbounded
// loop with no stop token — the shape that makes the function a
// dangerous `go` target for other packages.
func isUnstoppableLoop(pass *analysis.Pass, graph *analysis.CallGraph, body *ast.BlockStmt, tokens stopTokens) bool {
	_ = graph
	return hasUnboundedLoop(pass, body) && !referencesStopToken(pass, body, tokens) && !takesContext(pass, body)
}

// takesContext reports whether body is enclosed by a function whose
// parameters include a context.Context — accepting one is the
// conventional promise that the loop honours cancellation even when
// the body only passes ctx through to blocking calls.
func takesContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	// The body's enclosing FuncDecl/FuncLit params are not reachable
	// from the block; scan files for the declaration owning this body.
	for _, f := range pass.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == body {
					ft = n.Type
				}
			case *ast.FuncLit:
				if n.Body == body {
					ft = n.Type
				}
			}
			if ft == nil {
				return true
			}
			for _, p := range ft.Params.List {
				if t := pass.TypeOf(p.Type); t != nil && isContext(t) {
					found = true
				}
			}
			return false
		})
		if found {
			return true
		}
	}
	return false
}

// collectStopTokens scans the whole package for lifecycle machinery:
// channels that are close()d and WaitGroups that are Wait()ed.
func collectStopTokens(pass *analysis.Pass) stopTokens {
	t := stopTokens{
		closedChans: map[types.Object]bool{},
		waitedWGs:   map[types.Object]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// close(x) on an ident or field selector.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
				if obj := exprObject(pass, call.Args[0]); obj != nil {
					t.closedChans[obj] = true
				}
				return true
			}
			// x.Wait() on a sync.WaitGroup.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if recv := analysis.ReceiverType(pass.TypesInfo, call); recv != nil && isWaitGroup(recv) {
					if obj := exprObject(pass, sel.X); obj != nil {
						t.waitedWGs[obj] = true
					}
				}
			}
			return true
		})
	}
	return t
}

// exprObject resolves an ident or a field selector to its object.
func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return pass.ObjectOf(e.Sel)
	}
	return nil
}

func isWaitGroup(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// classifySpawn decides whether one `go` statement launches an
// unstoppable loop. It resolves the goroutine's body through the
// package-local call graph (closure bodies, same-package callees up to
// a small depth) and cross-package loop facts.
func classifySpawn(pass *analysis.Pass, graph *analysis.CallGraph, gs *ast.GoStmt, tokens stopTokens, loopFns map[*types.Func]bool) (witness string, bad bool) {
	bodies, externalLoop := spawnBodies(pass, graph, gs)
	if externalLoop != "" {
		// `go otherpkg.Forever()` — the loop fact already proved no
		// internal stop token; a wrapper body with its own token (e.g.
		// select on done around the call) was collected in bodies.
		for _, b := range bodies {
			if referencesStopToken(pass, b, tokens) {
				return "", false
			}
		}
		return "runs " + externalLoop + ", which loops with no stop token", true
	}
	unbounded := false
	for _, b := range bodies {
		if hasUnboundedLoop(pass, b) {
			unbounded = true
			break
		}
	}
	if !unbounded {
		return "", false // one-shot goroutine: terminates by construction
	}
	for _, b := range bodies {
		if referencesStopToken(pass, b, tokens) || takesContext(pass, b) {
			return "", false
		}
	}
	return "loops without a stop token", true
}

// spawnBodies collects the statement bodies a `go` statement executes:
// the closure literal or same-package function declaration, plus the
// bodies of same-package functions they call (bounded depth). If the
// spawn target (or a body call) is a cross-package function carrying a
// loop fact, its name is returned as externalLoop.
func spawnBodies(pass *analysis.Pass, graph *analysis.CallGraph, gs *ast.GoStmt) (bodies []*ast.BlockStmt, externalLoop string) {
	type item struct {
		body  *ast.BlockStmt
		depth int
	}
	var queue []item
	seen := map[*ast.BlockStmt]bool{}

	addCallee := func(call *ast.CallExpr, depth int) {
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		if fn.Pkg() == pass.Pkg {
			if decl, ok := graph.Decls[fn]; ok && !seen[decl.Body] {
				seen[decl.Body] = true
				queue = append(queue, item{decl.Body, depth})
			}
			return
		}
		var fact LeakFact
		if externalLoop == "" && pass.ImportFunctionFact(fn, &fact) && fact.Kind == KindLoop {
			externalLoop = fn.Name()
		}
	}

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		seen[lit.Body] = true
		queue = append(queue, item{lit.Body, 0})
	} else {
		addCallee(gs.Call, 0)
	}

	const maxDepth = 3
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		bodies = append(bodies, it.body)
		if it.depth >= maxDepth {
			continue
		}
		ast.Inspect(it.body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				addCallee(call, it.depth+1)
			}
			return true
		})
	}
	return bodies, externalLoop
}

// hasUnboundedLoop reports whether body contains a loop with no
// intrinsic bound: `for {}` / `for cond {}` (no init/post), or a range
// over a channel. Three-clause for loops and ranges over slices, maps,
// and integers are bounded per iteration set.
func hasUnboundedLoop(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init == nil && n.Post == nil {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// referencesStopToken reports whether body touches any lifecycle
// object: a context's Done/Err, a channel the package closes, or a
// WaitGroup the package Waits on.
func referencesStopToken(pass *analysis.Pass, body *ast.BlockStmt, tokens stopTokens) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") {
				if recv := pass.TypeOf(sel.X); recv != nil && isContext(recv) {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(n); obj != nil && (tokens.closedChans[obj] || tokens.waitedWGs[obj]) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() == types.FieldVal {
				if obj := s.Obj(); tokens.closedChans[obj] || tokens.waitedWGs[obj] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
