// Package leaky is analyzed under a policed long-lived-component
// import path: every `go` statement needs a provable stop path.
package leaky

import (
	"context"
	"sync"

	goroutil "dcsledger/internal/goroutil"
)

// Comp is a long-lived component with the conventional lifecycle
// machinery: a done channel its Close closes and a WaitGroup it Waits.
type Comp struct {
	done chan struct{}
	wg   sync.WaitGroup
	ch   chan int
}

// Close wires the stop tokens the goroutines below are judged against.
func (c *Comp) Close() {
	close(c.done)
	c.wg.Wait()
}

// --- clean spawns ---

// StartGood resolves the spawned method through the call graph; its
// loop selects on the closed done channel.
func (c *Comp) StartGood() {
	go c.loop()
}

func (c *Comp) loop() {
	for {
		select {
		case <-c.done:
			return
		case v := <-c.ch:
			_ = v
		}
	}
}

// StartCtx stops via context cancellation.
func (c *Comp) StartCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-c.ch:
				_ = v
			}
		}
	}()
}

// StartOnce is a one-shot goroutine: terminates by construction.
func (c *Comp) StartOnce() {
	go func() {
		c.ch <- 1
	}()
}

// StartDrain loops, but under the WaitGroup Close Waits on: either the
// loop exits on shutdown or Close hangs and every test catches it.
func (c *Comp) StartDrain() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for v := range c.ch {
			_ = v
		}
	}()
}

// SpawnExternalCtx hands the external loop a context: clean.
func (c *Comp) SpawnExternalCtx(ctx context.Context) {
	go goroutil.ForeverCtx(ctx)
}

// --- leaks ---

func (c *Comp) StartBad() {
	go func() { // want "goroutine launched in long-lived component .* has no provable stop path"
		for {
			v := <-c.ch
			_ = v
		}
	}()
}

// StartBadMethod leaks through a same-package method target.
func (c *Comp) StartBadMethod() {
	go c.pump() // want "goroutine launched in long-lived component .* has no provable stop path"
}

func (c *Comp) pump() {
	for v := range c.ch {
		_ = v
	}
}

// StartExternal calls a cross-package spawner: flagged at the call
// site via the imported fact.
func (c *Comp) StartExternal() {
	goroutil.StartTicker() // want "call to StartTicker launches a goroutine with no provable stop path"
}

// StartWrapped proves the fact survived same-package propagation in
// the helper package before export.
func (c *Comp) StartWrapped() {
	goroutil.Wrapped() // want "call to Wrapped launches a goroutine with no provable stop path"
}

// SpawnExternalLoop spawns a cross-package unstoppable loop: flagged
// at the `go` via the imported loop fact.
func (c *Comp) SpawnExternalLoop() {
	go goroutil.Forever() // want "runs Forever, which loops with no stop token"
}

// StartSuppressed is bounded by a test harness, not by lifecycle —
// the justified-suppression path.
func (c *Comp) StartSuppressed() {
	//dcslint:ignore goroleak fixture goroutine, bounded by the test harness closing ch
	go func() {
		for {
			v := <-c.ch
			_ = v
		}
	}()
}
