// Package goroutil is a NON-policed helper package: nothing is
// reported here, but spawner/loop facts are exported for the policed
// fixture that imports it.
package goroutil

import "context"

func work() {}

// StartTicker launches an unstoppable goroutine: exported as a spawner
// fact so policed callers are flagged at the call site.
func StartTicker() {
	go func() {
		for {
			work()
		}
	}()
}

// Wrapped proves spawner facts propagate through same-package wrappers
// before export.
func Wrapped() {
	StartTicker()
}

// Forever is an unbounded loop with no stop token: exported as a loop
// fact so `go goroutil.Forever()` is flagged at the spawn.
func Forever() {
	for {
		work()
	}
}

// ForeverCtx takes a context — the conventional promise of
// cancellation — so no fact is exported.
func ForeverCtx(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}
