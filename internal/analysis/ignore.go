package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An Ignore is one parsed, well-formed //dcslint:ignore directive.
//
// Grammar:
//
//	//dcslint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list may be "all". The reason is mandatory — a
// suppression without a recorded justification is itself a diagnostic.
// A directive covers the line it appears on and the line immediately
// below it, so both end-of-line and standalone-comment placement work:
//
//	x := time.Now() //dcslint:ignore determinism observability-only timing
//
//	//dcslint:ignore lockhold Send is non-blocking by design (bounded queue)
//	t.Send(to, msg)
//
// The block-comment form /*dcslint:ignore ...*/ is also accepted.
type Ignore struct {
	Line      int             // line the directive appears on
	Analyzers map[string]bool // lower-cased analyzer names (or "all")
	Reason    string
}

// Covers reports whether the directive applies to a diagnostic on the
// given line.
func (ig Ignore) Covers(line int) bool {
	return line == ig.Line || line == ig.Line+1
}

const directivePrefix = "dcslint:ignore"

// ParseIgnores extracts every dcslint:ignore directive from a file.
// Well-formed directives are returned as Ignores; malformed ones
// (missing reason, empty or unknown analyzer list) are returned as
// ready-to-report diagnostics attributed to FrameworkName. known is
// the set of acceptable analyzer names (plus "all").
func ParseIgnores(fset *token.FileSet, f *ast.File, known map[string]bool) ([]Ignore, []Diagnostic) {
	var (
		igs  []Ignore
		bad  []Diagnostic
		oops = func(pos token.Pos, format string, args ...any) {
			bad = append(bad, Diagnostic{
				Pos:      fset.Position(pos),
				Analyzer: FrameworkName,
				Message:  fmt.Sprintf(format, args...),
			})
		}
	)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := commentText(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. dcslint:ignorefoo — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				oops(c.Pos(), "malformed //dcslint:ignore: missing analyzer list and reason")
				continue
			}
			names := strings.Split(fields[0], ",")
			set := make(map[string]bool, len(names))
			valid := true
			for _, n := range names {
				n = strings.ToLower(strings.TrimSpace(n))
				if n == "" || (known != nil && !known[n]) {
					oops(c.Pos(), "malformed //dcslint:ignore: unknown analyzer %q", n)
					valid = false
					break
				}
				set[n] = true
			}
			if !valid {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			if reason == "" {
				oops(c.Pos(), "malformed //dcslint:ignore %s: missing reason — every suppression must say why", fields[0])
				continue
			}
			igs = append(igs, Ignore{
				Line:      fset.Position(c.Pos()).Line,
				Analyzers: set,
				Reason:    reason,
			})
		}
	}
	return igs, bad
}

// commentText strips the comment markers from a raw comment token.
func commentText(raw string) string {
	if strings.HasPrefix(raw, "//") {
		return strings.TrimSuffix(strings.TrimPrefix(raw, "//"), "\n")
	}
	raw = strings.TrimPrefix(raw, "/*")
	raw = strings.TrimSuffix(raw, "*/")
	return strings.TrimSpace(raw)
}
