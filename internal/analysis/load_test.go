package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseGoListMalformed: truncated or non-JSON `go list` output
// must surface as a decode error, not a panic or silent empty listing.
func TestParseGoListMalformed(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"truncated object", `{"ImportPath": "a", "Dir":`},
		{"not json", `go: downloading something`},
		{"wrong type", `{"ImportPath": 42}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseGoList(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("parseGoList(%q): want error, got nil", tc.in)
			}
		})
	}
}

// TestParseGoListPackageError: a package with a load error (broken
// source, missing dependency) fails the listing with that message.
func TestParseGoListPackageError(t *testing.T) {
	in := `{"ImportPath": "broken/pkg", "Error": {"Err": "no Go files in /x"}}`
	_, err := parseGoList(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "broken/pkg") || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("want package error mentioning path and cause, got %v", err)
	}
}

// TestParseGoListRootsAndDeps: DepOnly and file-less packages are not
// roots; roots come back sorted by import path.
func TestParseGoListRootsAndDeps(t *testing.T) {
	in := `
{"ImportPath": "m/b", "Dir": "/m/b", "GoFiles": ["b.go"]}
{"ImportPath": "m/dep", "Dir": "/m/dep", "GoFiles": ["d.go"], "DepOnly": true, "Export": "/cache/dep.a"}
{"ImportPath": "m/a", "Dir": "/m/a", "GoFiles": ["a.go"], "Export": "/cache/a.a"}
{"ImportPath": "m/empty", "Dir": "/m/empty"}
`
	l, err := parseGoList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Roots) != 2 || l.Roots[0].ImportPath != "m/a" || l.Roots[1].ImportPath != "m/b" {
		t.Fatalf("roots = %+v, want sorted [m/a m/b]", l.Roots)
	}
	if l.exportFor["m/dep"] != "/cache/dep.a" {
		t.Errorf("dep export data not recorded: %q", l.exportFor["m/dep"])
	}
}

// TestLookupMissingExportData: an import path without export data is a
// descriptive error (the vettool and standalone drivers both rely on
// this to distinguish "not compiled" from I/O failure).
func TestLookupMissingExportData(t *testing.T) {
	l, err := parseGoList(strings.NewReader(`{"ImportPath": "m/a", "GoFiles": ["a.go"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.lookup("m/ghost"); err == nil || !strings.Contains(err.Error(), `no export data for "m/ghost"`) {
		t.Fatalf("lookup(m/ghost) = %v, want missing-export-data error", err)
	}
}

// TestLookupVendoredImportMap: the vendored-stdlib edge case — cmd/go
// reports e.g. "golang.org/x/net/http2/hpack" imported as
// "vendor/golang.org/x/net/http2/hpack" via ImportMap; lookup must
// chase the mapping before consulting export data.
func TestLookupVendoredImportMap(t *testing.T) {
	dir := t.TempDir()
	exp := filepath.Join(dir, "hpack.a")
	if err := os.WriteFile(exp, []byte("fake export data"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := `{"ImportPath": "vendor/golang.org/x/net/http2/hpack", "GoFiles": ["hpack.go"], "DepOnly": true, "Export": ` + quote(exp) + `, "ImportMap": {"golang.org/x/net/http2/hpack": "vendor/golang.org/x/net/http2/hpack"}}`
	l, err := parseGoList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := l.lookup("golang.org/x/net/http2/hpack")
	if err != nil {
		t.Fatalf("vendored lookup failed: %v", err)
	}
	rc.Close()
}

// TestLoadRejectsCgo: Listing.Load fails loudly on cgo packages (they
// cannot be parsed as plain Go); LoadPackages skips them instead.
func TestLoadRejectsCgo(t *testing.T) {
	l, err := parseGoList(strings.NewReader(`{"ImportPath": "m/c", "Dir": "/m/c", "GoFiles": ["c.go"], "CgoFiles": ["cgo.go"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(l.Roots[0]); err == nil || !strings.Contains(err.Error(), "cgo") {
		t.Fatalf("Load(cgo pkg) = %v, want cgo error", err)
	}
}

// TestListBadPattern: an unresolvable pattern is reported with go
// list's stderr attached.
func TestListBadPattern(t *testing.T) {
	if _, err := List("", "./does/not/exist/..."); err == nil {
		t.Fatal("List of nonexistent pattern should fail")
	}
}

func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `\`, `\\`) + `"`
}
