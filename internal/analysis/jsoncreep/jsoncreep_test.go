package jsoncreep_test

import (
	"testing"

	"dcsledger/internal/analysis/atest"
	"dcsledger/internal/analysis/jsoncreep"
)

func TestJSONCreep(t *testing.T) {
	atest.Run(t, "testdata/src/creep", "dcsledger/internal/p2p/fake", jsoncreep.Analyzer)
}

func TestJSONAllowedOutside(t *testing.T) {
	atest.Run(t, "testdata/src/allowed", "dcsledger/cmd/ledgercli/fake", jsoncreep.Analyzer)
}
