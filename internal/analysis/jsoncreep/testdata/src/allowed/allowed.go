// Package allowed is CLI-side tooling: JSON stays fine outside the
// binary-codec set.
package allowed

import "encoding/json"

// Render pretty-prints operator-facing output.
func Render(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
