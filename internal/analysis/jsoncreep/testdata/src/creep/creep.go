// Package creep reintroduces encoding/json in a binary-codec package:
// the regression the analyzer exists to catch.
package creep

import (
	"encoding/json" // want "imports encoding/json: this package was converted to the canonical binary codec"
)

// Encode is the convenient mistake: non-canonical bytes on a hot path.
func Encode(v any) ([]byte, error) {
	return json.Marshal(v)
}
