// Package jsoncreep implements the dcslint analyzer that keeps
// encoding/json out of the packages PR 6 converted to canonical binary
// codecs.
//
// The binary wire/storage formats exist for two consensus-critical
// reasons: they are canonical (one byte sequence per value, so hashes
// and signatures are stable across replicas) and they are bounded
// (lengths are validated before allocation). encoding/json is neither
// — map-key order and float formatting vary, and a decoder allocates
// whatever the input claims. A single convenient `json.Marshal` in a
// hot path silently reintroduces both failure modes, so the guard is
// mechanical: the converted packages (p2p, consensus, state/snapshot,
// WAL, nodestore, and the wire substrate itself) must not import
// encoding/json at all. CLI and HTTP tooling keep JSON; this analyzer
// never fires there.
package jsoncreep

import (
	"strconv"
	"strings"

	"dcsledger/internal/analysis"
)

// Analyzer is the JSON-regression guard.
var Analyzer = &analysis.Analyzer{
	Name: "jsoncreep",
	Doc: "forbids importing encoding/json in packages converted to canonical " +
		"binary codecs (p2p, consensus, state, wal, nodestore, wire): JSON is " +
		"non-canonical and unbounded, which forks hashes and invites oversized " +
		"allocations on hot paths",
	Run: run,
}

// forbiddenMarkers are the binary-codec packages (and their subtrees).
var forbiddenMarkers = []string{
	"internal/p2p",
	"internal/consensus",
	"internal/state",
	"internal/wal",
	"internal/nodestore",
	"internal/wire",
}

// Forbidden reports whether an import path is in the JSON-free set.
func Forbidden(path string) bool {
	for _, m := range forbiddenMarkers {
		if path == m ||
			strings.HasSuffix(path, "/"+m) ||
			strings.HasPrefix(path, m+"/") ||
			strings.Contains(path, "/"+m+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !Forbidden(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "encoding/json" {
				continue
			}
			pass.Reportf(imp.Pos(),
				"package %s imports encoding/json: this package was converted to the canonical binary codec (docs/WIRE.md) — JSON is non-canonical (forks hashes across replicas) and unbounded (allocates what the input claims); use internal/wire",
				pass.Path)
		}
	}
	return nil
}
