package analysis

import (
	"encoding/gob"
	"path/filepath"
	"testing"
)

// tFact is a minimal fact type for round-trip tests.
type tFact struct {
	Kinds []string
	Via   string
}

func (*tFact) AFact() {}

// TestFactStoreRoundTrip: facts survive gob serialization to disk and
// merge into a fresh store — the property the vettool vetx path needs.
func TestFactStoreRoundTrip(t *testing.T) {
	gob.Register(&tFact{})
	s := NewFactStore()
	key := factKey{Analyzer: "nondetflow", Func: "example.com/m/util.Stamp"}
	s.put("example.com/m/util", key, &tFact{Kinds: []string{"wallclock"}, Via: "time.Now"})

	path := filepath.Join(t.TempDir(), "facts.vetx")
	if err := s.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	fresh := NewFactStore()
	if err := fresh.ReadFile(path); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	got, ok := fresh.get("example.com/m/util", key).(*tFact)
	if !ok {
		t.Fatalf("fact missing after round trip")
	}
	if got.Via != "time.Now" || len(got.Kinds) != 1 || got.Kinds[0] != "wallclock" {
		t.Errorf("fact corrupted: %+v", got)
	}
}

// TestFactStoreReadEmptyFile: an empty vetx (a unit that exported no
// facts) reads as no facts, not an error.
func TestFactStoreReadEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.vetx")
	if err := NewFactStore().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	s := NewFactStore()
	if err := s.ReadFile(path); err != nil {
		t.Fatalf("reading empty vetx: %v", err)
	}
}

// TestPkgOfFuncKey: fact records are bucketed by the package parsed
// out of the function's full name, for both plain and method forms.
func TestPkgOfFuncKey(t *testing.T) {
	for full, want := range map[string]string{
		"example.com/m/util.Stamp":        "example.com/m/util",
		"(*example.com/m/p2p.Gossiper).X": "example.com/m/p2p",
		"(example.com/m/p2p.Stats).Y":     "example.com/m/p2p",
		"main.run":                        "main",
	} {
		if got := pkgOfFuncKey(full); got != want {
			t.Errorf("pkgOfFuncKey(%q) = %q, want %q", full, got, want)
		}
	}
}
