package payment

import (
	"errors"
	"testing"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
)

func setup(t *testing.T) (*state.State, *cryptoutil.KeyPair, *cryptoutil.KeyPair) {
	t.Helper()
	st := state.New()
	a := cryptoutil.KeyFromSeed([]byte("party-a"))
	b := cryptoutil.KeyFromSeed([]byte("party-b"))
	st.Credit(a.Address(), 1000)
	st.Credit(b.Address(), 1000)
	return st, a, b
}

func TestOpenPayClose(t *testing.T) {
	st, a, b := setup(t)
	ch, err := Open(st, a, b, 400, 100)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Funds left the parties on-chain.
	if st.Balance(a.Address()) != 600 || st.Balance(b.Address()) != 900 {
		t.Fatal("deposits not debited")
	}

	// Many off-chain payments, zero on-chain activity.
	for i := 0; i < 100; i++ {
		if _, err := ch.Pay(true, 2); err != nil {
			t.Fatalf("Pay %d: %v", i, err)
		}
	}
	if _, err := ch.Pay(false, 50); err != nil {
		t.Fatalf("Pay back: %v", err)
	}
	balA, balB := ch.Balances()
	if balA != 400-200+50 || balB != 100+200-50 {
		t.Fatalf("balances %d/%d", balA, balB)
	}
	if ch.Payments() != 101 {
		t.Fatalf("payments = %d", ch.Payments())
	}

	if err := ch.CooperativeClose(st); err != nil {
		t.Fatalf("CooperativeClose: %v", err)
	}
	if st.Balance(a.Address()) != 600+250 || st.Balance(b.Address()) != 900+250 {
		t.Fatalf("settled balances %d/%d", st.Balance(a.Address()), st.Balance(b.Address()))
	}
	if !ch.Closed() {
		t.Fatal("channel should be closed")
	}
	if _, err := ch.Pay(true, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestOpenInsufficientFunds(t *testing.T) {
	st, a, b := setup(t)
	if _, err := Open(st, a, b, 5000, 1); err == nil {
		t.Fatal("overdraft open must fail")
	}
	// Failed open must not leak funds.
	if st.Balance(a.Address()) != 1000 || st.Balance(b.Address()) != 1000 {
		t.Fatal("failed open changed balances")
	}
	if _, err := Open(st, a, b, 1, 5000); err == nil {
		t.Fatal("overdraft open must fail")
	}
	if st.Balance(a.Address()) != 1000 {
		t.Fatal("A's deposit must be rolled back when B cannot fund")
	}
}

func TestPayInsufficientChannelBalance(t *testing.T) {
	st, a, b := setup(t)
	ch, err := Open(st, a, b, 10, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := ch.Pay(true, 11); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	if _, err := ch.Pay(false, 1); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
}

func TestUnilateralCloseWithStaleStateIsChallenged(t *testing.T) {
	st, a, b := setup(t)
	sim := simclock.NewSimulator()
	ch, err := Open(st, a, b, 500, 500)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stale, err := ch.Pay(true, 100) // A: 400, B: 600
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	latest, err := ch.Pay(true, 300) // A: 100, B: 900
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}

	// A tries to cheat by closing with the stale state.
	if err := ch.UnilateralClose(sim, stale, time.Hour); err != nil {
		t.Fatalf("UnilateralClose: %v", err)
	}
	// Cannot settle while the challenge window is open.
	if err := ch.SettleDispute(st, sim); !errors.Is(err, ErrChallengeLive) {
		t.Fatalf("want ErrChallengeLive, got %v", err)
	}
	// B presents the newer state.
	if err := ch.Challenge(sim, latest); err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	// Stale re-challenge is rejected.
	if err := ch.Challenge(sim, stale); !errors.Is(err, ErrStaleUpdate) {
		t.Fatalf("want ErrStaleUpdate, got %v", err)
	}
	sim.RunFor(2 * time.Hour)
	if err := ch.SettleDispute(st, sim); err != nil {
		t.Fatalf("SettleDispute: %v", err)
	}
	if st.Balance(a.Address()) != 500+100 || st.Balance(b.Address()) != 500+900 {
		t.Fatalf("dispute settled wrong: %d/%d", st.Balance(a.Address()), st.Balance(b.Address()))
	}
}

func TestChallengeAfterDeadlineRejected(t *testing.T) {
	st, a, b := setup(t)
	sim := simclock.NewSimulator()
	ch, err := Open(st, a, b, 100, 100)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stale := ch.latest
	latest, err := ch.Pay(true, 50)
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	if err := ch.UnilateralClose(sim, stale, time.Minute); err != nil {
		t.Fatalf("UnilateralClose: %v", err)
	}
	sim.RunFor(2 * time.Minute)
	if err := ch.Challenge(sim, latest); !errors.Is(err, ErrChallengeOver) {
		t.Fatalf("want ErrChallengeOver, got %v", err)
	}
}

func TestVerifyUpdateRejectsForgery(t *testing.T) {
	st, a, b := setup(t)
	ch, err := Open(st, a, b, 100, 100)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	u, err := ch.Pay(true, 10)
	if err != nil {
		t.Fatalf("Pay: %v", err)
	}
	t.Run("tampered balances", func(t *testing.T) {
		forged := u
		forged.BalanceA += 5 // breaks capacity conservation
		if err := ch.VerifyUpdate(forged); !errors.Is(err, ErrBadUpdate) {
			t.Fatalf("want ErrBadUpdate, got %v", err)
		}
	})
	t.Run("reshuffled balances", func(t *testing.T) {
		forged := u
		forged.BalanceA, forged.BalanceB = forged.BalanceB, forged.BalanceA
		if err := ch.VerifyUpdate(forged); !errors.Is(err, ErrBadUpdate) {
			t.Fatalf("want ErrBadUpdate (signature), got %v", err)
		}
	})
	t.Run("wrong channel", func(t *testing.T) {
		forged := u
		forged.ChannelID = cryptoutil.HashBytes([]byte("other"))
		if err := ch.VerifyUpdate(forged); !errors.Is(err, ErrBadUpdate) {
			t.Fatalf("want ErrBadUpdate, got %v", err)
		}
	})
}

func TestRoutePaymentMultiHop(t *testing.T) {
	// A — B — C: A pays C through B.
	st := state.New()
	a := cryptoutil.KeyFromSeed([]byte("a"))
	b := cryptoutil.KeyFromSeed([]byte("b"))
	cK := cryptoutil.KeyFromSeed([]byte("c"))
	for _, k := range []*cryptoutil.KeyPair{a, b, cK} {
		st.Credit(k.Address(), 1000)
	}
	ab, err := Open(st, a, b, 500, 500)
	if err != nil {
		t.Fatalf("Open ab: %v", err)
	}
	bc, err := Open(st, b, cK, 500, 500)
	if err != nil {
		t.Fatalf("Open bc: %v", err)
	}
	secret := []byte("the payment secret")
	lock := HashLock(secret)
	if err := RoutePayment([]*Channel{ab, bc}, []bool{true, true}, 200, secret, lock); err != nil {
		t.Fatalf("RoutePayment: %v", err)
	}
	abA, abB := ab.Balances()
	bcB, bcC := bc.Balances()
	if abA != 300 || abB != 700 || bcB != 300 || bcC != 700 {
		t.Fatalf("hop balances %d/%d %d/%d", abA, abB, bcB, bcC)
	}
}

func TestRoutePaymentFailures(t *testing.T) {
	st := state.New()
	a := cryptoutil.KeyFromSeed([]byte("a"))
	b := cryptoutil.KeyFromSeed([]byte("b"))
	st.Credit(a.Address(), 100)
	st.Credit(b.Address(), 100)
	ch, err := Open(st, a, b, 50, 50)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	secret := []byte("s")
	lock := HashLock(secret)

	t.Run("wrong preimage", func(t *testing.T) {
		if err := RoutePayment([]*Channel{ch}, []bool{true}, 10, []byte("wrong"), lock); !errors.Is(err, ErrWrongPreimage) {
			t.Fatalf("want ErrWrongPreimage, got %v", err)
		}
	})
	t.Run("insufficient hop capacity", func(t *testing.T) {
		if err := RoutePayment([]*Channel{ch}, []bool{true}, 500, secret, lock); !errors.Is(err, ErrBrokenRoute) {
			t.Fatalf("want ErrBrokenRoute, got %v", err)
		}
		// Atomicity: the failed route must not have moved anything.
		balA, balB := ch.Balances()
		if balA != 50 || balB != 50 {
			t.Fatal("failed route moved funds")
		}
	})
	t.Run("empty path", func(t *testing.T) {
		if err := RoutePayment(nil, nil, 1, secret, lock); !errors.Is(err, ErrBrokenRoute) {
			t.Fatalf("want ErrBrokenRoute, got %v", err)
		}
	})
}

func TestOnChainFootprintIsTwoTouches(t *testing.T) {
	// The E9 claim: a channel's lifetime costs two on-chain operations
	// (open and close) regardless of how many payments it carries.
	st, a, b := setup(t)
	ch, err := Open(st, a, b, 100, 100)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rootAfterOpen := st.Commit()
	for i := 0; i < 1000; i++ {
		if _, err := ch.Pay(i%2 == 0, 1); err != nil {
			t.Fatalf("Pay: %v", err)
		}
	}
	if st.Commit() != rootAfterOpen {
		t.Fatal("off-chain payments must not touch the chain state")
	}
	if err := ch.CooperativeClose(st); err != nil {
		t.Fatalf("CooperativeClose: %v", err)
	}
	if st.Commit() == rootAfterOpen {
		t.Fatal("close must settle on-chain")
	}
}
