// Package payment implements off-chain payment channels in the style of
// the Lightning network (Sections 5.2 and 5.4, [30]): two parties lock
// funds on-chain once, exchange any number of mutually signed balance
// updates off-chain, and settle on-chain once — trading a little
// decentralization (a direct counterparty) for orders of magnitude in
// throughput, which experiment E9 measures. Multi-hop payments are
// forwarded across a channel path with hash-time-locked commitments.
package payment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
)

// Channel errors, matchable with errors.Is.
var (
	ErrInsufficient   = errors.New("payment: insufficient channel balance")
	ErrBadUpdate      = errors.New("payment: invalid channel update")
	ErrStaleUpdate    = errors.New("payment: update older than known state")
	ErrClosed         = errors.New("payment: channel closed")
	ErrDisputeOpen    = errors.New("payment: dispute already open")
	ErrNoDispute      = errors.New("payment: no dispute to settle")
	ErrChallengeOver  = errors.New("payment: challenge period elapsed")
	ErrChallengeLive  = errors.New("payment: challenge period still running")
	ErrWrongPreimage  = errors.New("payment: preimage does not match hash lock")
	ErrBrokenRoute    = errors.New("payment: route hop lacks capacity")
	ErrNotParticipant = errors.New("payment: signer is not a channel party")
)

// Update is one signed off-chain state: balances at sequence Seq. Both
// signatures make it enforceable on-chain.
type Update struct {
	ChannelID cryptoutil.Hash `json:"channelId"`
	Seq       uint64          `json:"seq"`
	BalanceA  uint64          `json:"balanceA"`
	BalanceB  uint64          `json:"balanceB"`
	SigA      []byte          `json:"sigA"`
	SigB      []byte          `json:"sigB"`
}

func (u *Update) digest() cryptoutil.Hash {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], u.Seq)
	binary.BigEndian.PutUint64(buf[8:], u.BalanceA)
	binary.BigEndian.PutUint64(buf[16:], u.BalanceB)
	return cryptoutil.HashBytes([]byte("payment/update"), u.ChannelID[:], buf[:])
}

// Channel is one two-party payment channel. The struct is shared by
// both parties in simulations; each party signs with its own key.
type Channel struct {
	id       cryptoutil.Hash
	escrow   cryptoutil.Address
	keyA     *cryptoutil.KeyPair
	keyB     *cryptoutil.KeyPair
	capacity uint64
	latest   Update
	closed   bool

	// dispute state (unilateral close)
	disputeUpdate *Update
	disputeEnds   time.Time

	payments uint64
}

// Open locks depositA + depositB on-chain into the channel escrow and
// returns the channel — the single on-chain footprint until close.
func Open(st *state.State, keyA, keyB *cryptoutil.KeyPair, depositA, depositB uint64) (*Channel, error) {
	id := cryptoutil.HashBytes([]byte("payment/channel"),
		keyA.Address().Bytes(), keyB.Address().Bytes(),
		u64(depositA), u64(depositB))
	escrow := cryptoutil.AddressFromHash(id)
	if err := st.Debit(keyA.Address(), depositA); err != nil {
		return nil, fmt.Errorf("payment: fund A: %w", err)
	}
	if err := st.Debit(keyB.Address(), depositB); err != nil {
		// Roll back A's deposit.
		st.Credit(keyA.Address(), depositA)
		return nil, fmt.Errorf("payment: fund B: %w", err)
	}
	st.Credit(escrow, depositA+depositB)
	c := &Channel{
		id:       id,
		escrow:   escrow,
		keyA:     keyA,
		keyB:     keyB,
		capacity: depositA + depositB,
		latest: Update{
			ChannelID: id,
			BalanceA:  depositA,
			BalanceB:  depositB,
		},
	}
	if err := c.sign(&c.latest); err != nil {
		return nil, err
	}
	return c, nil
}

// ID returns the channel identifier.
func (c *Channel) ID() cryptoutil.Hash { return c.id }

// Balances returns the latest off-chain balances.
func (c *Channel) Balances() (a, b uint64) { return c.latest.BalanceA, c.latest.BalanceB }

// Payments returns how many off-chain transfers the channel carried.
func (c *Channel) Payments() uint64 { return c.payments }

// Pay moves amount within the channel (fromA: A→B, else B→A),
// producing and retaining a new co-signed update. This is the entire
// cost of an off-chain payment: two signatures, no blocks.
func (c *Channel) Pay(fromA bool, amount uint64) (Update, error) {
	if c.closed {
		return Update{}, ErrClosed
	}
	next := c.latest
	next.Seq++
	if fromA {
		if next.BalanceA < amount {
			return Update{}, fmt.Errorf("%w: A has %d", ErrInsufficient, next.BalanceA)
		}
		next.BalanceA -= amount
		next.BalanceB += amount
	} else {
		if next.BalanceB < amount {
			return Update{}, fmt.Errorf("%w: B has %d", ErrInsufficient, next.BalanceB)
		}
		next.BalanceB -= amount
		next.BalanceA += amount
	}
	if err := c.sign(&next); err != nil {
		return Update{}, err
	}
	c.latest = next
	c.payments++
	return next, nil
}

func (c *Channel) sign(u *Update) error {
	d := u.digest()
	sigA, err := c.keyA.Sign(d)
	if err != nil {
		return fmt.Errorf("payment: %w", err)
	}
	sigB, err := c.keyB.Sign(d)
	if err != nil {
		return fmt.Errorf("payment: %w", err)
	}
	u.SigA, u.SigB = sigA, sigB
	return nil
}

// VerifyUpdate checks an update's signatures and conservation of the
// channel capacity.
func (c *Channel) VerifyUpdate(u Update) error {
	if u.ChannelID != c.id {
		return fmt.Errorf("%w: wrong channel", ErrBadUpdate)
	}
	if u.BalanceA+u.BalanceB != c.capacity {
		return fmt.Errorf("%w: balances do not preserve capacity", ErrBadUpdate)
	}
	d := u.digest()
	if !cryptoutil.Verify(c.keyA.PublicKey(), d, u.SigA) ||
		!cryptoutil.Verify(c.keyB.PublicKey(), d, u.SigB) {
		return fmt.Errorf("%w: bad signatures", ErrBadUpdate)
	}
	return nil
}

// CooperativeClose settles the latest state on-chain immediately.
func (c *Channel) CooperativeClose(st *state.State) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.VerifyUpdate(c.latest); err != nil {
		return err
	}
	return c.settle(st, c.latest)
}

// UnilateralClose starts a dispute with a (possibly stale) update. The
// counterparty has challengePeriod to present a newer one.
func (c *Channel) UnilateralClose(clock simclock.Clock, u Update, challengePeriod time.Duration) error {
	if c.closed {
		return ErrClosed
	}
	if c.disputeUpdate != nil {
		return ErrDisputeOpen
	}
	if err := c.VerifyUpdate(u); err != nil {
		return err
	}
	cp := u
	c.disputeUpdate = &cp
	c.disputeEnds = clock.Now().Add(challengePeriod)
	return nil
}

// Challenge replaces the disputed update with a strictly newer one
// before the period ends — the defense against stale-state fraud.
func (c *Channel) Challenge(clock simclock.Clock, u Update) error {
	if c.disputeUpdate == nil {
		return ErrNoDispute
	}
	if clock.Now().After(c.disputeEnds) {
		return ErrChallengeOver
	}
	if err := c.VerifyUpdate(u); err != nil {
		return err
	}
	if u.Seq <= c.disputeUpdate.Seq {
		return fmt.Errorf("%w: seq %d <= %d", ErrStaleUpdate, u.Seq, c.disputeUpdate.Seq)
	}
	cp := u
	c.disputeUpdate = &cp
	return nil
}

// SettleDispute finalizes a unilateral close after the challenge period.
func (c *Channel) SettleDispute(st *state.State, clock simclock.Clock) error {
	if c.closed {
		return ErrClosed
	}
	if c.disputeUpdate == nil {
		return ErrNoDispute
	}
	if !clock.Now().After(c.disputeEnds) {
		return ErrChallengeLive
	}
	return c.settle(st, *c.disputeUpdate)
}

func (c *Channel) settle(st *state.State, u Update) error {
	if err := st.Debit(c.escrow, c.capacity); err != nil {
		return fmt.Errorf("payment: settle: %w", err)
	}
	st.Credit(c.keyA.Address(), u.BalanceA)
	st.Credit(c.keyB.Address(), u.BalanceB)
	c.closed = true
	return nil
}

// Closed reports whether the channel has settled on-chain.
func (c *Channel) Closed() bool { return c.closed }

// HashLock derives the lock for a payment secret.
func HashLock(secret []byte) cryptoutil.Hash {
	return cryptoutil.HashBytes([]byte("payment/htlc"), secret)
}

// RoutePayment forwards amount across a path of channels using a
// hash-time-locked commitment: every hop is conditioned on the same
// lock, the recipient reveals the secret, and all hops settle
// atomically. directions[i] is true when hop i pays A→B.
func RoutePayment(path []*Channel, directions []bool, amount uint64, secret []byte, lock cryptoutil.Hash) error {
	if len(path) == 0 || len(path) != len(directions) {
		return fmt.Errorf("%w: empty or mismatched path", ErrBrokenRoute)
	}
	if HashLock(secret) != lock {
		return ErrWrongPreimage
	}
	// Capacity check along the whole route before committing any hop —
	// the atomicity the HTLC construction provides.
	for i, ch := range path {
		a, b := ch.Balances()
		available := b
		if directions[i] {
			available = a
		}
		if available < amount {
			return fmt.Errorf("%w: hop %d has %d, needs %d", ErrBrokenRoute, i, available, amount)
		}
		if ch.Closed() {
			return fmt.Errorf("%w: hop %d closed", ErrBrokenRoute, i)
		}
	}
	for i, ch := range path {
		if _, err := ch.Pay(directions[i], amount); err != nil {
			return fmt.Errorf("payment: hop %d: %w", i, err)
		}
	}
	return nil
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
