// Package simclock provides the virtual time base of the deterministic
// network simulator. Every protocol component takes a Clock instead of
// calling time.Now, so an experiment with ten-minute block intervals
// (Bitcoin's, per Section 2.7) executes in milliseconds of wall time and
// is exactly reproducible from its seed.
//
// The Simulator is a discrete-event scheduler: callbacks fire in
// timestamp order (FIFO among equal timestamps) on a single goroutine,
// which makes simulated protocols deterministic by construction.
package simclock

import (
	"container/heap"
	"time"
)

// Clock abstracts time for protocol code. Real deployments use Wall;
// simulations use Simulator.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After schedules fn to run d from now and returns a cancelable
	// timer.
	After(d time.Duration, fn func()) *Timer
}

// Timer is a scheduled callback that can be stopped before it fires.
type Timer struct {
	stop func()
}

// Stop cancels the timer if it has not fired. It is safe to call
// multiple times and on timers that already fired.
func (t *Timer) Stop() {
	if t != nil && t.stop != nil {
		t.stop()
	}
}

// Wall is the real-time Clock used by the TCP daemon.
type Wall struct{}

var _ Clock = Wall{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// After implements Clock.
func (Wall) After(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{stop: func() { t.Stop() }}
}

// event is one scheduled callback.
type event struct {
	at       time.Time
	seq      uint64 // FIFO tiebreak for equal timestamps
	fn       func()
	canceled bool
	index    int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event virtual clock. It is not
// safe for concurrent use: all simulated protocol code runs inside its
// event loop.
type Simulator struct {
	now       time.Time
	seq       uint64
	queue     eventQueue
	processed uint64
}

var _ Clock = (*Simulator)(nil)

// NewSimulator creates a simulator starting at the Unix epoch.
func NewSimulator() *Simulator {
	return &Simulator{now: time.Unix(0, 0).UTC()}
}

// Now implements Clock.
func (s *Simulator) Now() time.Time { return s.now }

// After implements Clock: fn runs at now + d. A non-positive d runs fn
// at the current instant, after already-queued events for that instant.
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// At schedules fn for an absolute instant (clamped to now if in the
// past).
func (s *Simulator) At(t time.Time, fn func()) *Timer {
	if t.Before(s.now) {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return &Timer{stop: func() { e.canceled = true }}
}

// Pending returns the number of scheduled (possibly canceled) events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Processed returns how many events have fired.
func (s *Simulator) Processed() uint64 { return s.processed }

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.processed++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock
// to t.
func (s *Simulator) RunUntil(t time.Time) {
	for {
		next, ok := s.peek()
		if !ok || next.After(t) {
			break
		}
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor runs the simulation for a span of virtual time.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

func (s *Simulator) peek() (time.Time, bool) {
	for s.queue.Len() > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at, true
	}
	return time.Time{}, false
}
