package simclock

import (
	"testing"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := s.Now().Sub(time.Unix(0, 0).UTC()); got != 3*time.Second {
		t.Fatalf("clock advanced to %v", got)
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp events fired out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var fired []string
	s.After(time.Second, func() {
		fired = append(fired, "outer")
		s.After(time.Second, func() {
			fired = append(fired, "inner")
		})
	})
	s.Run()
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
	if got := s.Now().Sub(time.Unix(0, 0).UTC()); got != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", got)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSimulator()
	fired := false
	timer := s.After(time.Second, func() { fired = true })
	timer.Stop()
	timer.Stop() // double-stop is safe
	s.Run()
	if fired {
		t.Fatal("stopped timer must not fire")
	}
	if s.Processed() != 0 {
		t.Fatalf("processed = %d, want 0", s.Processed())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var fired []int
	s.After(1*time.Second, func() { fired = append(fired, 1) })
	s.After(5*time.Second, func() { fired = append(fired, 5) })
	s.RunUntil(s.Now().Add(3 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if got := s.Now().Sub(time.Unix(0, 0).UTC()); got != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatal("remaining event should fire on Run")
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := NewSimulator()
	s.RunFor(time.Minute)
	if got := s.Now().Sub(time.Unix(0, 0).UTC()); got != time.Minute {
		t.Fatalf("clock = %v, want 1m", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.After(-5*time.Second, func() { fired = true })
	s.Step()
	if !fired {
		t.Fatal("negative-delay event should fire immediately")
	}
	if !s.Now().Equal(time.Unix(0, 0).UTC()) {
		t.Fatal("clock must not go backward")
	}
}

func TestAtInPastClamped(t *testing.T) {
	s := NewSimulator()
	s.RunFor(time.Hour)
	fired := false
	s.At(time.Unix(0, 0), func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("past event should fire")
	}
	if s.Now().Before(time.Unix(0, 0).Add(time.Hour)) {
		t.Fatal("clock must not go backward")
	}
}

func TestWallClock(t *testing.T) {
	var w Wall
	before := time.Now()
	if w.Now().Before(before) {
		t.Fatal("wall clock should not run behind")
	}
	done := make(chan struct{})
	w.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer did not fire")
	}
	// Stopped wall timer does not fire.
	timer := w.After(50*time.Millisecond, func() { t.Error("stopped wall timer fired") })
	timer.Stop()
	time.Sleep(80 * time.Millisecond)
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := NewSimulator()
		var out []int
		for i := 0; i < 50; i++ {
			i := i
			d := time.Duration((i*37)%13) * time.Second
			s.After(d, func() { out = append(out, i) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulator runs must be deterministic")
		}
	}
}
