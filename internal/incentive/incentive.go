// Package incentive implements the economic layer of public ledgers
// described in Section 2.4: block subsidies that halve on a fixed
// schedule (Bitcoin's emission curve) plus the transaction fees the
// proposer collects. Private/consortium configurations simply use a
// zero schedule.
package incentive

// Schedule is a halving block-subsidy emission curve.
type Schedule struct {
	// InitialReward is the subsidy at height 1.
	InitialReward uint64
	// HalvingInterval is the number of blocks between halvings
	// (0 = never halve).
	HalvingInterval uint64
}

// Bitcoin-like default schedule (values scaled for simulation).
var DefaultSchedule = Schedule{InitialReward: 50, HalvingInterval: 210_000}

// NoReward is the permissioned-network schedule: no subsidy at all.
var NoReward = Schedule{}

// RewardAt returns the block subsidy at the given height. Genesis
// (height 0) mints nothing.
func (s Schedule) RewardAt(height uint64) uint64 {
	if height == 0 || s.InitialReward == 0 {
		return 0
	}
	if s.HalvingInterval == 0 {
		return s.InitialReward
	}
	halvings := (height - 1) / s.HalvingInterval
	if halvings >= 64 {
		return 0
	}
	return s.InitialReward >> halvings
}

// TotalIssued returns the cumulative subsidy through the given height —
// the money supply curve.
func (s Schedule) TotalIssued(height uint64) uint64 {
	var total uint64
	if s.HalvingInterval == 0 {
		return s.InitialReward * height
	}
	for h := uint64(1); h <= height; {
		reward := s.RewardAt(h)
		if reward == 0 {
			break
		}
		// Blocks remaining in this halving epoch.
		epochEnd := ((h-1)/s.HalvingInterval + 1) * s.HalvingInterval
		n := min(height, epochEnd) - h + 1
		total += reward * n
		h += n
	}
	return total
}
