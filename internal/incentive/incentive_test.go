package incentive

import "testing"

func TestRewardAt(t *testing.T) {
	s := Schedule{InitialReward: 50, HalvingInterval: 10}
	tests := []struct {
		height uint64
		want   uint64
	}{
		{height: 0, want: 0},
		{height: 1, want: 50},
		{height: 10, want: 50},
		{height: 11, want: 25},
		{height: 20, want: 25},
		{height: 21, want: 12},
		{height: 31, want: 6},
		{height: 1000, want: 0}, // 99 halvings → 0
	}
	for _, tt := range tests {
		if got := s.RewardAt(tt.height); got != tt.want {
			t.Errorf("RewardAt(%d) = %d, want %d", tt.height, got, tt.want)
		}
	}
}

func TestNoHalving(t *testing.T) {
	s := Schedule{InitialReward: 10}
	if s.RewardAt(1) != 10 || s.RewardAt(1_000_000) != 10 {
		t.Fatal("no-halving schedule must be flat")
	}
}

func TestNoReward(t *testing.T) {
	if NoReward.RewardAt(5) != 0 {
		t.Fatal("NoReward must mint nothing")
	}
}

func TestTotalIssued(t *testing.T) {
	s := Schedule{InitialReward: 50, HalvingInterval: 10}
	if got := s.TotalIssued(10); got != 500 {
		t.Fatalf("TotalIssued(10) = %d, want 500", got)
	}
	if got := s.TotalIssued(20); got != 500+250 {
		t.Fatalf("TotalIssued(20) = %d, want 750", got)
	}
	if got := s.TotalIssued(15); got != 500+125 {
		t.Fatalf("TotalIssued(15) = %d, want 625", got)
	}
	// Supply converges (geometric series): far future issuance is
	// bounded by 2 * epoch issuance.
	if s.TotalIssued(100000) >= 1000 {
		t.Fatalf("supply must converge below 1000, got %d", s.TotalIssued(100000))
	}
	flat := Schedule{InitialReward: 2}
	if flat.TotalIssued(7) != 14 {
		t.Fatal("flat schedule issuance")
	}
}

func TestSupplyMonotonic(t *testing.T) {
	s := DefaultSchedule
	prev := uint64(0)
	for _, h := range []uint64{1, 10, 100, 1000, 300000, 500000} {
		got := s.TotalIssued(h)
		if got < prev {
			t.Fatalf("TotalIssued not monotonic at %d", h)
		}
		prev = got
	}
}
