package shard

import (
	"errors"
	"fmt"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func signedTransfer(t *testing.T, seed string, to cryptoutil.Address, amount uint64, nonce uint64) *types.Transaction {
	t.Helper()
	k := cryptoutil.KeyFromSeed([]byte(seed))
	tx := types.NewTransfer(k.Address(), to, amount, 0, nonce)
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return tx
}

func TestRoutingDeterministic(t *testing.T) {
	c := New(4)
	a := cryptoutil.KeyFromSeed([]byte("x")).Address()
	if c.ShardOf(a) != c.ShardOf(a) {
		t.Fatal("routing must be deterministic")
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	// All shards get some accounts (probabilistic but stable for the
	// fixed derivation).
	used := make(map[int]bool)
	for i := 0; i < 64; i++ {
		used[c.ShardOf(cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("u%d", i))).Address())] = true
	}
	if len(used) != 4 {
		t.Fatalf("only %d shards used", len(used))
	}
}

// pairOnShards finds sender/recipient seeds on the same or different
// shards.
func pairOnShards(t *testing.T, c *Coordinator, same bool) (string, cryptoutil.Address) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		sSeed := fmt.Sprintf("sender-%d", i)
		rSeed := fmt.Sprintf("recipient-%d", i)
		s := cryptoutil.KeyFromSeed([]byte(sSeed)).Address()
		r := cryptoutil.KeyFromSeed([]byte(rSeed)).Address()
		if (c.ShardOf(s) == c.ShardOf(r)) == same {
			return sSeed, r
		}
	}
	t.Fatal("no suitable pair found")
	return "", cryptoutil.Address{}
}

func TestIntraShardTransfer(t *testing.T) {
	c := New(4)
	seed, to := pairOnShards(t, c, true)
	from := cryptoutil.KeyFromSeed([]byte(seed)).Address()
	c.Credit(from, 100)
	cross, err := c.Transfer(signedTransfer(t, seed, to, 40, 0))
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if cross {
		t.Fatal("same-shard transfer must not be cross-shard")
	}
	if c.Balance(from) != 60 || c.Balance(to) != 40 {
		t.Fatalf("balances %d/%d", c.Balance(from), c.Balance(to))
	}
	if c.CrossShardTxs != 0 {
		t.Fatal("no cross-shard tx should be counted")
	}
}

func TestCrossShardTransfer(t *testing.T) {
	c := New(4)
	seed, to := pairOnShards(t, c, false)
	from := cryptoutil.KeyFromSeed([]byte(seed)).Address()
	c.Credit(from, 100)
	supply := c.TotalSupply()
	cross, err := c.Transfer(signedTransfer(t, seed, to, 70, 0))
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if !cross {
		t.Fatal("expected a cross-shard transfer")
	}
	if c.Balance(from) != 30 || c.Balance(to) != 70 {
		t.Fatalf("balances %d/%d", c.Balance(from), c.Balance(to))
	}
	if c.TotalSupply() != supply {
		t.Fatal("cross-shard transfer must conserve supply")
	}
	if c.CrossShardTxs != 1 {
		t.Fatalf("CrossShardTxs = %d", c.CrossShardTxs)
	}
}

func TestReceiptReplayRejected(t *testing.T) {
	c := New(4)
	seed, to := pairOnShards(t, c, false)
	from := cryptoutil.KeyFromSeed([]byte(seed)).Address()
	c.Credit(from, 100)
	rcpt, err := c.Debit(signedTransfer(t, seed, to, 10, 0))
	if err != nil {
		t.Fatalf("Debit: %v", err)
	}
	if err := c.Redeem(rcpt); err != nil {
		t.Fatalf("Redeem: %v", err)
	}
	if err := c.Redeem(rcpt); !errors.Is(err, ErrReceiptReplay) {
		t.Fatalf("want ErrReceiptReplay, got %v", err)
	}
	if c.Balance(to) != 10 {
		t.Fatal("replay must not double-credit")
	}
}

func TestForgedReceiptRejected(t *testing.T) {
	c := New(4)
	_, to := pairOnShards(t, c, false)
	forged := Receipt{
		ID:     cryptoutil.HashBytes([]byte("forged")),
		To:     to,
		Amount: 1_000_000,
		Dest:   c.ShardOf(to),
	}
	if err := c.Redeem(forged); !errors.Is(err, ErrUnknownReceipt) {
		t.Fatalf("want ErrUnknownReceipt, got %v", err)
	}
	// Tampered amount on a real receipt is also rejected.
	seed, to2 := pairOnShards(t, c, false)
	from := cryptoutil.KeyFromSeed([]byte(seed)).Address()
	c.Credit(from, 100)
	rcpt, err := c.Debit(signedTransfer(t, seed, to2, 10, 0))
	if err != nil {
		t.Fatalf("Debit: %v", err)
	}
	rcpt.Amount = 99
	if err := c.Redeem(rcpt); !errors.Is(err, ErrUnknownReceipt) {
		t.Fatalf("want ErrUnknownReceipt for tampered receipt, got %v", err)
	}
}

func TestTransferValidation(t *testing.T) {
	c := New(2)
	k := cryptoutil.KeyFromSeed([]byte("s"))
	unsigned := types.NewTransfer(k.Address(), cryptoutil.ZeroAddress, 1, 0, 0)
	if _, err := c.Transfer(unsigned); err == nil {
		t.Fatal("unsigned transfer must fail")
	}
	signed := signedTransfer(t, "s", cryptoutil.ZeroAddress, 1, 0)
	if _, err := c.Transfer(signed); err == nil {
		t.Fatal("transfer without funds must fail")
	}
}

func TestParallelSpeedup(t *testing.T) {
	// The E8 shape: with k shards and no cross-shard traffic, the
	// makespan (Rounds) is ≈ total/k.
	load := func(shards int, txs int) (uint64, uint64) {
		c := New(shards)
		nonces := make(map[string]uint64)
		for i := 0; i < txs; i++ {
			seed := fmt.Sprintf("user-%d", i%50)
			from := cryptoutil.KeyFromSeed([]byte(seed)).Address()
			to := cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("peer-%d", i%50))).Address()
			c.Credit(from, 10)
			tx := signedTransfer(t, seed, to, 1, nonces[seed])
			nonces[seed]++
			if _, err := c.Transfer(tx); err != nil {
				t.Fatalf("Transfer: %v", err)
			}
		}
		return c.Rounds(), c.TotalOps()
	}
	r1, _ := load(1, 400)
	r8, _ := load(8, 400)
	if r8*2 >= r1 {
		t.Fatalf("8 shards should cut the makespan well below half: 1-shard %d, 8-shard %d", r1, r8)
	}
}

func TestSingleShardDegeneratesGracefully(t *testing.T) {
	c := New(1)
	seed := "solo"
	from := cryptoutil.KeyFromSeed([]byte(seed)).Address()
	to := cryptoutil.KeyFromSeed([]byte("dest")).Address()
	c.Credit(from, 10)
	cross, err := c.Transfer(signedTransfer(t, seed, to, 5, 0))
	if err != nil || cross {
		t.Fatalf("single shard: cross=%v err=%v", cross, err)
	}
	if New(0).N() != 1 {
		t.Fatal("shard count must clamp to 1")
	}
}
