// Package shard implements horizontal partitioning of the account space
// (Section 5.4, Plasma-style sharding [38]): accounts are assigned to
// shards by address hash, intra-shard transfers execute locally in
// parallel, and cross-shard transfers use a two-phase receipt — debit
// and receipt emission on the source shard, receipt redemption on the
// destination shard — with replay protection. Experiment E8 measures
// the throughput scaling and the cross-shard penalty.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// Sharding errors, matchable with errors.Is.
var (
	ErrWrongShard     = errors.New("shard: transaction routed to wrong shard")
	ErrReceiptReplay  = errors.New("shard: receipt already redeemed")
	ErrUnknownReceipt = errors.New("shard: receipt not issued by source shard")
)

// Receipt proves a cross-shard debit so the destination shard can
// credit exactly once.
type Receipt struct {
	ID     cryptoutil.Hash    `json:"id"`
	From   cryptoutil.Address `json:"from"`
	To     cryptoutil.Address `json:"to"`
	Amount uint64             `json:"amount"`
	Source int                `json:"source"`
	Dest   int                `json:"dest"`
}

// Coordinator owns the shard set and routes transactions.
type Coordinator struct {
	shards   []*state.State
	issued   map[cryptoutil.Hash]Receipt
	redeemed map[cryptoutil.Hash]bool
	seq      uint64

	// Counters for the E8 harness: per-shard operation loads.
	Ops []uint64
	// CrossShardTxs counts two-phase transfers.
	CrossShardTxs uint64
}

// New creates a coordinator over n shards.
func New(n int) *Coordinator {
	if n < 1 {
		n = 1
	}
	c := &Coordinator{
		issued:   make(map[cryptoutil.Hash]Receipt),
		redeemed: make(map[cryptoutil.Hash]bool),
		Ops:      make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		c.shards = append(c.shards, state.New())
	}
	return c
}

// N returns the shard count.
func (c *Coordinator) N() int { return len(c.shards) }

// ShardOf maps an address to its home shard.
func (c *Coordinator) ShardOf(a cryptoutil.Address) int {
	h := cryptoutil.HashBytes([]byte("shard/route"), a[:])
	return int(binary.BigEndian.Uint32(h[:4])) % len(c.shards)
}

// Shard exposes one shard's state (for inspection and funding).
func (c *Coordinator) Shard(i int) *state.State { return c.shards[i] }

// Credit funds an account on its home shard.
func (c *Coordinator) Credit(a cryptoutil.Address, amount uint64) {
	c.shards[c.ShardOf(a)].Credit(a, amount)
}

// Balance reads an account's balance from its home shard.
func (c *Coordinator) Balance(a cryptoutil.Address) uint64 {
	return c.shards[c.ShardOf(a)].Balance(a)
}

// Transfer executes a (signed) transfer, routing it by sender shard.
// Intra-shard transfers apply in one step; cross-shard transfers emit
// and immediately route a receipt. It returns whether the transfer
// crossed shards.
func (c *Coordinator) Transfer(tx *types.Transaction) (bool, error) {
	if err := tx.Verify(); err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	src := c.ShardOf(tx.From)
	dst := c.ShardOf(tx.To)
	if src == dst {
		c.Ops[src]++
		st := c.shards[src]
		if err := st.Debit(tx.From, tx.Value); err != nil {
			return false, fmt.Errorf("shard: %w", err)
		}
		st.Credit(tx.To, tx.Value)
		return false, nil
	}
	rcpt, err := c.Debit(tx)
	if err != nil {
		return true, err
	}
	if err := c.Redeem(rcpt); err != nil {
		return true, err
	}
	return true, nil
}

// Debit performs phase one of a cross-shard transfer: debit on the
// source shard and receipt issuance.
func (c *Coordinator) Debit(tx *types.Transaction) (Receipt, error) {
	src := c.ShardOf(tx.From)
	dst := c.ShardOf(tx.To)
	c.Ops[src]++
	if err := c.shards[src].Debit(tx.From, tx.Value); err != nil {
		return Receipt{}, fmt.Errorf("shard: %w", err)
	}
	c.seq++
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], c.seq)
	r := Receipt{
		ID:     cryptoutil.HashBytes([]byte("shard/receipt"), tx.From[:], tx.To[:], seq[:]),
		From:   tx.From,
		To:     tx.To,
		Amount: tx.Value,
		Source: src,
		Dest:   dst,
	}
	c.issued[r.ID] = r
	c.CrossShardTxs++
	return r, nil
}

// Redeem performs phase two: credit on the destination shard, exactly
// once.
func (c *Coordinator) Redeem(r Receipt) error {
	want, ok := c.issued[r.ID]
	if !ok || want != r {
		return fmt.Errorf("%w: %s", ErrUnknownReceipt, r.ID.Short())
	}
	if c.redeemed[r.ID] {
		return fmt.Errorf("%w: %s", ErrReceiptReplay, r.ID.Short())
	}
	c.redeemed[r.ID] = true
	c.Ops[r.Dest]++
	c.shards[r.Dest].Credit(r.To, r.Amount)
	return nil
}

// TotalSupply sums balances across all shards — conserved by both
// transfer kinds (minus any receipts issued but not yet redeemed).
func (c *Coordinator) TotalSupply() uint64 {
	var total uint64
	for _, st := range c.shards {
		for _, a := range st.Addresses() {
			total += st.Balance(a)
		}
	}
	return total
}

// Rounds estimates the parallel execution time of the recorded load:
// with every shard working concurrently, the makespan is the maximum
// per-shard operation count — the quantity E8 turns into a speedup
// curve.
func (c *Coordinator) Rounds() uint64 {
	var maxOps uint64
	for _, ops := range c.Ops {
		if ops > maxOps {
			maxOps = ops
		}
	}
	return maxOps
}

// TotalOps sums all shard operations (cross-shard transfers cost two).
func (c *Coordinator) TotalOps() uint64 {
	var total uint64
	for _, ops := range c.Ops {
		total += ops
	}
	return total
}
