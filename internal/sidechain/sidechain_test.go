package sidechain

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/wallet"
)

// setupPeg mines a main chain containing a 500-unit lock transaction
// and wires a peg whose light client has synced the main chain.
func setupPeg(t *testing.T) (peg *Peg, mainState, side *state.State, proof wallet.SPVProof, lockTx *types.Transaction, alice *wallet.Wallet) {
	t.Helper()
	alice = wallet.FromSeed("alice")
	alloc := map[cryptoutil.Address]uint64{alice.Address(): 10_000}
	c, err := node.NewCluster(node.ClusterConfig{
		N: 1,
		Engine: func(i int, key *cryptoutil.KeyPair) consensus.Engine {
			return pow.New(pow.Config{
				TargetInterval:    5 * time.Second,
				InitialDifficulty: 64,
				HashRate:          12.8,
			}, rand.New(rand.NewSource(4)))
		},
		ForkChoice: func() consensus.ForkChoice { return forkchoice.LongestChain{} },
		Alloc:      alloc,
		Rewards:    incentive.Schedule{InitialReward: 50},
		Seed:       31,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	lockTx, err = alice.Transfer(PegAddress, 500, 1)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if err := c.Nodes[0].SubmitTx(lockTx); err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	c.Start()
	c.Sim.RunFor(3 * time.Minute)
	c.Stop()

	full := c.Nodes[0]
	light := wallet.NewSPVClient(c.Genesis.Header)
	if err := light.AddHeaders(full.Chain().Headers(1, 1<<20)); err != nil {
		t.Fatalf("AddHeaders: %v", err)
	}
	proof, err = wallet.ProveTx(full.Chain(), lockTx.ID())
	if err != nil {
		t.Fatalf("ProveTx: %v", err)
	}
	side = state.New()
	peg = NewPeg(light, side, 2)
	return peg, full.State(), side, proof, lockTx, alice
}

func TestDepositMintBurnUnlock(t *testing.T) {
	peg, mainState, side, proof, lockTx, alice := setupPeg(t)

	// Mint on the side chain against the SPV proof.
	if err := peg.Mint(lockTx, proof); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if side.Balance(alice.Address()) != 500 || peg.Pegged() != 500 {
		t.Fatalf("side balance %d, pegged %d", side.Balance(alice.Address()), peg.Pegged())
	}
	// Double mint rejected.
	if err := peg.Mint(lockTx, proof); !errors.Is(err, ErrAlreadyMinted) {
		t.Fatalf("want ErrAlreadyMinted, got %v", err)
	}

	// Burn on the side chain, unlock on the main chain.
	rcpt, err := peg.Burn(alice.Address(), 200)
	if err != nil {
		t.Fatalf("Burn: %v", err)
	}
	if side.Balance(alice.Address()) != 300 || peg.Pegged() != 300 {
		t.Fatal("burn accounting wrong")
	}
	mainBefore := mainState.Balance(alice.Address())
	if err := peg.Unlock(mainState, rcpt); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	if mainState.Balance(alice.Address()) != mainBefore+200 {
		t.Fatal("unlock did not pay out")
	}
	if mainState.Balance(PegAddress) != 300 {
		t.Fatalf("peg address holds %d, want 300", mainState.Balance(PegAddress))
	}
	// Replay rejected.
	if err := peg.Unlock(mainState, rcpt); !errors.Is(err, ErrReplayedBurn) {
		t.Fatalf("want ErrReplayedBurn, got %v", err)
	}
}

func TestMintRejections(t *testing.T) {
	peg, _, _, proof, lockTx, alice := setupPeg(t)

	t.Run("forged proof", func(t *testing.T) {
		forged := proof
		forged.TxID = cryptoutil.HashBytes([]byte("phantom"))
		if err := peg.Mint(lockTx, forged); !errors.Is(err, ErrBadProof) {
			t.Fatalf("want ErrBadProof, got %v", err)
		}
	})
	t.Run("wrong recipient", func(t *testing.T) {
		other, err := alice.Transfer(cryptoutil.KeyFromSeed([]byte("bob")).Address(), 1, 1)
		if err != nil {
			t.Fatalf("Transfer: %v", err)
		}
		if err := peg.Mint(other, proof); !errors.Is(err, ErrWrongTarget) {
			t.Fatalf("want ErrWrongTarget, got %v", err)
		}
	})
	t.Run("too few confirmations", func(t *testing.T) {
		strict, _, _, proof2, lockTx2, _ := setupPeg(t)
		strict.MinConfirmations = 1 << 30
		if err := strict.Mint(lockTx2, proof2); !errors.Is(err, ErrNotConfirmed) {
			t.Fatalf("want ErrNotConfirmed, got %v", err)
		}
	})
}

func TestBurnRejections(t *testing.T) {
	peg, _, _, proof, lockTx, alice := setupPeg(t)
	if err := peg.Mint(lockTx, proof); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	if _, err := peg.Burn(alice.Address(), 10_000); !errors.Is(err, ErrBurnTooLarge) {
		t.Fatalf("want ErrBurnTooLarge, got %v", err)
	}
	// Burn by someone without side-chain funds fails.
	stranger := cryptoutil.KeyFromSeed([]byte("stranger")).Address()
	if _, err := peg.Burn(stranger, 10); err == nil {
		t.Fatal("burn without funds must fail")
	}
}

func TestUnlockForgedReceipt(t *testing.T) {
	peg, mainState, _, proof, lockTx, alice := setupPeg(t)
	if err := peg.Mint(lockTx, proof); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	forged := BurnReceipt{
		ID:     cryptoutil.HashBytes([]byte("forged")),
		Owner:  alice.Address(),
		Amount: 500,
	}
	if err := peg.Unlock(mainState, forged); !errors.Is(err, ErrUnknownBurn) {
		t.Fatalf("want ErrUnknownBurn, got %v", err)
	}
	// Tampered amount on a real receipt also fails.
	rcpt, err := peg.Burn(alice.Address(), 100)
	if err != nil {
		t.Fatalf("Burn: %v", err)
	}
	rcpt.Amount = 500
	if err := peg.Unlock(mainState, rcpt); !errors.Is(err, ErrUnknownBurn) {
		t.Fatalf("want ErrUnknownBurn for tampered receipt, got %v", err)
	}
}
