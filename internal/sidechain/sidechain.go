// Package sidechain implements a two-way pegged side chain (Section
// 5.4, [39]): value is locked to a peg address on the main chain and
// minted on the side chain against an SPV proof of the lock; burning on
// the side chain unlocks the main-chain funds against a matching
// receipt. The side chain can then run with its own (faster, more
// centralized) parameters — the paper's scalability-through-parallelism
// angle.
package sidechain

import (
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/wallet"
)

// Peg errors, matchable with errors.Is.
var (
	ErrBadProof      = errors.New("sidechain: lock proof does not verify")
	ErrWrongTarget   = errors.New("sidechain: transaction does not pay the peg address")
	ErrAlreadyMinted = errors.New("sidechain: deposit already minted")
	ErrBurnTooLarge  = errors.New("sidechain: burn exceeds pegged balance")
	ErrUnknownBurn   = errors.New("sidechain: burn receipt not issued")
	ErrReplayedBurn  = errors.New("sidechain: burn receipt already redeemed")
	ErrNotConfirmed  = errors.New("sidechain: lock lacks required confirmations")
)

// PegAddress is where main-chain deposits are locked.
var PegAddress = cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("sidechain/peg")))

// BurnReceipt certifies a side-chain burn so the main chain can unlock.
type BurnReceipt struct {
	ID     cryptoutil.Hash    `json:"id"`
	Owner  cryptoutil.Address `json:"owner"`
	Amount uint64             `json:"amount"`
}

// Peg is the side-chain half of the two-way peg: it verifies main-chain
// lock proofs against a light client and manages the pegged supply.
type Peg struct {
	light *wallet.SPVClient
	side  *state.State
	// MinConfirmations guards against minting off a branch that might
	// reorg away (the trust-by-depth rule again).
	MinConfirmations uint64

	minted   map[cryptoutil.Hash]bool // main-chain lock tx → minted
	burns    map[cryptoutil.Hash]BurnReceipt
	burnSeq  uint64
	redeemed map[cryptoutil.Hash]bool
	pegged   uint64
}

// NewPeg creates the side-chain peg around a main-chain light client
// and the side-chain state.
func NewPeg(light *wallet.SPVClient, side *state.State, minConfirmations uint64) *Peg {
	if minConfirmations == 0 {
		minConfirmations = 1
	}
	return &Peg{
		light:            light,
		side:             side,
		MinConfirmations: minConfirmations,
		minted:           make(map[cryptoutil.Hash]bool),
		burns:            make(map[cryptoutil.Hash]BurnReceipt),
		redeemed:         make(map[cryptoutil.Hash]bool),
	}
}

// Pegged returns the total side-chain supply backed by main-chain
// locks.
func (p *Peg) Pegged() uint64 { return p.pegged }

// Mint credits tx.From on the side chain after verifying, against the
// light client, that the lock transaction paying the peg address is
// committed deep enough on the main chain.
func (p *Peg) Mint(lockTx *types.Transaction, proof wallet.SPVProof) error {
	if lockTx.To != PegAddress {
		return fmt.Errorf("%w: pays %s", ErrWrongTarget, lockTx.To.Short())
	}
	id := lockTx.ID()
	if proof.TxID != id {
		return fmt.Errorf("%w: proof is for a different transaction", ErrBadProof)
	}
	if p.minted[id] {
		return fmt.Errorf("%w: %s", ErrAlreadyMinted, id.Short())
	}
	conf, err := p.light.VerifyTx(proof)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if conf < p.MinConfirmations {
		return fmt.Errorf("%w: %d < %d", ErrNotConfirmed, conf, p.MinConfirmations)
	}
	p.minted[id] = true
	p.pegged += lockTx.Value
	p.side.Credit(lockTx.From, lockTx.Value)
	return nil
}

// Burn destroys side-chain funds and issues the receipt that unlocks
// them on the main chain.
func (p *Peg) Burn(owner cryptoutil.Address, amount uint64) (BurnReceipt, error) {
	if amount > p.pegged {
		return BurnReceipt{}, fmt.Errorf("%w: %d > %d", ErrBurnTooLarge, amount, p.pegged)
	}
	if err := p.side.Debit(owner, amount); err != nil {
		return BurnReceipt{}, fmt.Errorf("sidechain: %w", err)
	}
	p.pegged -= amount
	p.burnSeq++
	var seq [8]byte
	seq[7] = byte(p.burnSeq)
	seq[6] = byte(p.burnSeq >> 8)
	r := BurnReceipt{
		ID:     cryptoutil.HashBytes([]byte("sidechain/burn"), owner[:], seq[:]),
		Owner:  owner,
		Amount: amount,
	}
	p.burns[r.ID] = r
	return r, nil
}

// Unlock releases main-chain funds from the peg address against a burn
// receipt, exactly once.
func (p *Peg) Unlock(main *state.State, r BurnReceipt) error {
	want, ok := p.burns[r.ID]
	if !ok || want != r {
		return fmt.Errorf("%w: %s", ErrUnknownBurn, r.ID.Short())
	}
	if p.redeemed[r.ID] {
		return fmt.Errorf("%w: %s", ErrReplayedBurn, r.ID.Short())
	}
	if err := main.Debit(PegAddress, r.Amount); err != nil {
		return fmt.Errorf("sidechain: %w", err)
	}
	p.redeemed[r.ID] = true
	main.Credit(r.Owner, r.Amount)
	return nil
}
