package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecordDecode throws arbitrary bytes at the frame decoder and
// the segment scanner. Invariants under fuzzing:
//
//  1. decodeFrame never panics and never returns a record without a
//     valid CRC;
//  2. a successfully decoded frame re-encodes to exactly the bytes
//     consumed (the framing is canonical);
//  3. Open on a segment with an arbitrary record area never panics and
//     always yields a log whose records are contiguous — the torn-tail
//     repair turns ANY trailing garbage into a clean prefix.
func FuzzWALRecordDecode(f *testing.F) {
	// Seed corpus: valid frames, a truncation, and a bit flip.
	valid := encodeFrame(Record{Seq: 1, Type: RecBlock, Payload: []byte("hello wal")})
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn
	garbled := append([]byte(nil), valid...)
	garbled[len(garbled)-1] ^= 0xFF
	f.Add(garbled)
	f.Add(append(append([]byte(nil), valid...), valid...)) // two frames (2nd has wrong seq)
	huge := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(huge[0:4], MaxRecordLen+1)
	f.Add(huge) // oversized length field
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1+2: frame decoding.
		rec, n, err := decodeFrame(bufio.NewReader(bytes.NewReader(data)))
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decoded frame length %d out of range (input %d)", n, len(data))
			}
			re := encodeFrame(rec)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch: %x != %x", re, data[:n])
			}
		}

		// Property 3: segment-level repair. Build a segment whose record
		// area is the fuzz input and open the directory.
		dir := t.TempDir()
		seg := make([]byte, 0, segHeaderLen+len(data))
		seg = append(seg, segMagic...)
		var first [8]byte
		binary.BigEndian.PutUint64(first[:], 1)
		seg = append(seg, first[:]...)
		seg = append(seg, data...)
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{})
		if err != nil {
			return // I/O errors are acceptable; panics are not
		}
		defer w.Close()
		want := uint64(1)
		if err := w.Replay(func(r Record) error {
			if r.Seq != want {
				t.Fatalf("non-contiguous replay: seq %d, want %d", r.Seq, want)
			}
			want++
			return nil
		}); err != nil {
			t.Fatalf("Replay after repair: %v", err)
		}
		// The repaired log must accept appends at the next seq.
		if seq, err := w.Append(RecBlock, []byte("post-repair")); err != nil || seq != want {
			t.Fatalf("append after repair: seq=%d err=%v, want %d", seq, err, want)
		}
	})
}
