package wal

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// Frame layout (everything big-endian):
//
//	u32  length   — byte length of body (seq + type + payload)
//	u32  crc32c   — Castagnoli checksum of body
//	u64  seq      ┐
//	u8   type     │ body
//	[]   payload  ┘
//
// A frame is self-checking: a torn write leaves a short frame (length
// runs past EOF) and a garbled write fails the CRC. Either way the scan
// stops at the previous frame boundary, which is exactly the valid
// prefix of the log.

// encodeFrame renders one record into its on-disk frame.
func encodeFrame(rec Record) []byte {
	bodyLen := recordHeaderLen + len(rec.Payload)
	frame := make([]byte, frameHeaderLen+bodyLen)
	binary.BigEndian.PutUint32(frame[0:4], uint32(bodyLen))
	body := frame[frameHeaderLen:]
	binary.BigEndian.PutUint64(body[0:8], rec.Seq)
	body[8] = rec.Type
	copy(body[recordHeaderLen:], rec.Payload)
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	return frame
}

// decodeFrame reads one frame from r, returning the record and the
// total frame length consumed. io.EOF at a frame boundary means a clean
// end of segment; any other failure (short read, oversized length, CRC
// mismatch) is errBadFrame — the caller truncates there.
func decodeFrame(r *bufio.Reader) (Record, int, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Record{}, 0, io.EOF // clean boundary
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, errBadFrame // torn inside the frame header
	}
	bodyLen := binary.BigEndian.Uint32(hdr[0:4])
	if bodyLen < recordHeaderLen || bodyLen > MaxRecordLen {
		return Record{}, 0, errBadFrame
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, errBadFrame // torn body
	}
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return Record{}, 0, errBadFrame // garbled
	}
	rec := Record{
		Seq:  binary.BigEndian.Uint64(body[0:8]),
		Type: body[8],
	}
	if bodyLen > recordHeaderLen {
		rec.Payload = body[recordHeaderLen:]
	}
	return rec, frameHeaderLen + int(bodyLen), nil
}
