// Package wal implements the durability layer of a peer: a segmented,
// CRC32C-framed append-only write-ahead log plus a persistent
// block-store backend (DurableStore) that journals connected blocks and
// head switches and periodically checkpoints the head state.
//
// The log is the commit point of the ledger: a block is durable once
// its record hits the WAL (subject to the configured fsync policy), and
// crash recovery replays the log — accelerated by the newest valid
// checkpoint — to reconstruct the exact pre-crash chain, or a verified
// prefix of it when the tail of the log was torn or garbled by the
// crash. See docs/PERSISTENCE.md for the record format, the fsync
// policies, the recovery algorithm, and the failure model.
//
// Concurrency: a WAL serializes all appends on one mutex by design —
// the log IS the ordering of commits, so writers must queue. All file
// I/O happens in *Locked helpers following the repo's lock-hygiene
// convention (the critical section is the single-writer append path,
// not a shared fast path).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Framing constants.
const (
	// segMagic opens every segment file (8 bytes, versioned).
	segMagic = "DCSWAL01"
	// segHeaderLen is magic + first-seq.
	segHeaderLen = len(segMagic) + 8
	// frameHeaderLen is u32 length + u32 crc32c.
	frameHeaderLen = 8
	// recordHeaderLen is u64 seq + u8 type inside the framed body.
	recordHeaderLen = 9
	// MaxRecordLen bounds one record body so a garbled length field
	// cannot force a huge allocation during recovery.
	MaxRecordLen = 32 << 20
)

// DefaultSegmentSize is the rotation threshold for segment files.
const DefaultSegmentSize = 4 << 20

// noPruneFloor marks a WAL whose prune floor was never armed: a raw
// WAL (no DurableStore in front) keeps the historical behavior where
// PruneBefore honors the caller's seq unclamped.
const noPruneFloor = ^uint64(0)

// DefaultFsyncEvery is the flush cadence of the interval fsync policy.
const DefaultFsyncEvery = 100 * time.Millisecond

// castagnoli is the CRC32C polynomial table (the checksum used by
// ext4, iSCSI, and most production WALs; hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL errors, matchable with errors.Is.
var (
	// ErrCrashed is returned by every write after an injected failpoint
	// has fired: the log behaves as if the process died mid-write.
	ErrCrashed = errors.New("wal: crashed (failpoint fired)")
	// ErrClosed is returned by writes after Close.
	ErrClosed = errors.New("wal: closed")
	// ErrTooLarge rejects records over MaxRecordLen.
	ErrTooLarge = errors.New("wal: record too large")
	// errBadFrame marks an invalid frame during a scan (torn tail,
	// garbled CRC, bad length, or a sequence discontinuity). It is
	// internal: scans convert it into truncation, never surface it.
	errBadFrame = errors.New("wal: bad frame")
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per record.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per FsyncEvery: a crash loses at
	// most the last interval's records (still a clean log prefix).
	FsyncInterval
	// FsyncNever leaves flushing to the OS: fastest, loses up to the
	// whole page cache on power failure (still a clean prefix on
	// process crash).
	FsyncNever
)

// String returns the flag-style name of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

// Options configures a WAL.
type Options struct {
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (0 = DefaultSegmentSize).
	SegmentSize int64
	// Fsync is the flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the interval policy's cadence (0 = DefaultFsyncEvery).
	FsyncEvery time.Duration
	// Clock supplies the time source for the interval policy (nil =
	// wall clock). Injected by tests.
	Clock func() time.Time
}

func (o *Options) fill() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = DefaultFsyncEvery
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// Record is one entry of the log. Seq numbers are assigned by Append,
// strictly increasing and contiguous; recovery uses them to detect
// mid-log corruption and to anchor checkpoints.
type Record struct {
	Seq     uint64
	Type    byte
	Payload []byte
}

// Stats is a snapshot of the WAL's activity counters.
type Stats struct {
	Appends       uint64 // records successfully appended this session
	Fsyncs        uint64 // explicit fsyncs issued
	Rotations     uint64 // segment rotations this session
	Segments      int    // live segment files
	Bytes         uint64 // payload+frame bytes written this session
	TornTruncated uint64 // bytes discarded by torn-tail truncation at Open
	LastSeq       uint64 // sequence number of the newest durable record
}

// WAL is a segmented append-only log. Safe for concurrent use.
type WAL struct {
	// The mutex serializes appends: the WAL is the ledger's commit
	// ordering, so there is exactly one writer at a time by design.
	mu   sync.Mutex
	dir  string
	opts Options

	active     *os.File
	activeIdx  uint64
	activeSize int64
	segments   []uint64 // live segment indexes, ascending
	nextSeq    uint64
	pruneFloor uint64 // newest seq pruning may reach (noPruneFloor = unclamped)
	lastSync   time.Time
	closed     bool
	crashed    bool

	fp fpState

	stats Stats
}

// Open opens (or creates) the log in dir, scanning existing segments
// for a torn or garbled tail. Everything from the first invalid frame
// onward — including any later segments — is truncated, so the surviving
// log is always a valid, contiguous prefix of what was written.
func Open(dir string, opts Options) (*WAL, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, nextSeq: 1, pruneFloor: noPruneFloor}
	if err := w.scanAndRepair(); err != nil {
		return nil, err
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	w.lastSync = opts.Clock()
	return w, nil
}

// segName returns the file name of segment idx.
func segName(idx uint64) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// parseSegName extracts the index from a segment file name.
func parseSegName(name string) (uint64, bool) {
	var idx uint64
	if _, err := fmt.Sscanf(name, "wal-%d.seg", &idx); err != nil {
		return 0, false
	}
	if segName(idx) != name {
		return 0, false
	}
	return idx, true
}

// scanAndRepair walks every segment in order, validating frames and
// sequence continuity. The first invalid frame truncates its segment at
// that offset and deletes every later segment.
func (w *WAL) scanAndRepair() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: readdir: %w", err)
	}
	var idxs []uint64
	for _, e := range entries {
		if idx, ok := parseSegName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	var (
		wantSeq  uint64 // 0 = take the first segment's header seq
		badFrom  = -1   // index into idxs of the first bad segment
		badAt    int64  // valid prefix length within that segment
		lastSeen uint64
	)
	for i, idx := range idxs {
		path := filepath.Join(w.dir, segName(idx))
		valid, firstSeq, last, scanErr := scanSegment(path, wantSeq, func(Record) error { return nil })
		if scanErr != nil && !errors.Is(scanErr, errBadFrame) {
			return scanErr
		}
		if wantSeq == 0 && firstSeq != 0 {
			wantSeq = firstSeq
		}
		if last != 0 {
			lastSeen = last
			wantSeq = last + 1
		} else if firstSeq != 0 {
			wantSeq = firstSeq
		}
		if errors.Is(scanErr, errBadFrame) {
			badFrom, badAt = i, valid
			break
		}
	}
	if badFrom >= 0 {
		// Truncate the damaged segment at its last valid frame and drop
		// everything after it: the crash tore the log here.
		path := filepath.Join(w.dir, segName(idxs[badFrom]))
		if st, err := os.Stat(path); err == nil && st.Size() > badAt {
			w.stats.TornTruncated += uint64(st.Size() - badAt)
		}
		if badAt < int64(segHeaderLen) {
			// Even the header is unusable: remove the file entirely.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: drop damaged segment: %w", err)
			}
			idxs = idxs[:badFrom]
		} else {
			if err := truncateFile(path, badAt); err != nil {
				return err
			}
			idxs = idxs[:badFrom+1]
		}
		// Remove all segments after the damage point.
		entries, err := os.ReadDir(w.dir)
		if err != nil {
			return fmt.Errorf("wal: readdir: %w", err)
		}
		keep := make(map[uint64]bool, len(idxs))
		for _, idx := range idxs {
			keep[idx] = true
		}
		for _, e := range entries {
			if idx, ok := parseSegName(e.Name()); ok && !keep[idx] {
				w.stats.TornTruncated += fileSize(filepath.Join(w.dir, e.Name()))
				if err := os.Remove(filepath.Join(w.dir, e.Name())); err != nil {
					return fmt.Errorf("wal: drop trailing segment: %w", err)
				}
			}
		}
	}
	w.segments = idxs
	if lastSeen > 0 {
		w.nextSeq = lastSeen + 1
	} else if len(idxs) > 0 {
		// Segments exist but hold no records (e.g. a pruned log with one
		// fresh segment): continue from the active header's first seq.
		_, firstSeq, _, _ := scanSegment(filepath.Join(w.dir, segName(idxs[len(idxs)-1])), 0, func(Record) error { return nil })
		if firstSeq > 0 {
			w.nextSeq = firstSeq
		}
	}
	w.stats.LastSeq = w.nextSeq - 1
	return nil
}

func fileSize(path string) uint64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return uint64(st.Size())
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: open for truncate: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return f.Sync()
}

// openActive opens the newest segment for appending, creating the first
// segment if the log is empty.
func (w *WAL) openActive() error {
	if len(w.segments) == 0 {
		return w.createSegmentLocked(1, w.nextSeq)
	}
	idx := w.segments[len(w.segments)-1]
	path := filepath.Join(w.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: seek: %w", err)
	}
	w.active, w.activeIdx, w.activeSize = f, idx, size
	return nil
}

// createSegmentLocked creates and activates segment idx whose first
// record will carry firstSeq.
func (w *WAL) createSegmentLocked(idx, firstSeq uint64) error {
	path := filepath.Join(w.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.BigEndian.PutUint64(hdr[len(segMagic):], firstSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if w.active != nil {
		// Rotation: make the finished segment durable before moving on.
		if err := w.active.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: sync on rotate: %w", err)
		}
		w.stats.Fsyncs++
		w.active.Close()
		w.stats.Rotations++
	}
	w.active, w.activeIdx, w.activeSize = f, idx, int64(segHeaderLen)
	w.segments = append(w.segments, idx)
	return nil
}

// Append writes one record and returns its sequence number. Durability
// depends on the fsync policy; ordering is total regardless.
func (w *WAL) Append(typ byte, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(typ, payload)
}

func (w *WAL) appendLocked(typ byte, payload []byte) (uint64, error) {
	if w.crashed {
		return 0, ErrCrashed
	}
	if w.closed {
		return 0, ErrClosed
	}
	if len(payload) > MaxRecordLen-recordHeaderLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	seq := w.nextSeq
	frame := encodeFrame(Record{Seq: seq, Type: typ, Payload: payload})

	// Rotate before the write so a record never spans segments.
	if w.activeSize > int64(segHeaderLen) && w.activeSize+int64(len(frame)) > w.opts.SegmentSize {
		if err := w.createSegmentLocked(w.activeIdx+1, seq); err != nil {
			return 0, err
		}
	}

	if w.fp.armed() {
		if crashed, err := w.fireFailpointLocked(frame); crashed {
			return 0, err
		}
	}

	if _, err := w.active.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.activeSize += int64(len(frame))
	w.nextSeq = seq + 1
	w.stats.Appends++
	w.stats.Bytes += uint64(len(frame))
	w.stats.LastSeq = seq

	switch w.opts.Fsync {
	case FsyncAlways:
		if err := w.active.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		w.stats.Fsyncs++
	case FsyncInterval:
		now := w.opts.Clock()
		if now.Sub(w.lastSync) >= w.opts.FsyncEvery {
			if err := w.active.Sync(); err != nil {
				return 0, fmt.Errorf("wal: fsync: %w", err)
			}
			w.stats.Fsyncs++
			w.lastSync = now
		}
	case FsyncNever:
	}
	return seq, nil
}

// Sync forces the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.crashed {
		return ErrCrashed
	}
	if w.closed {
		return ErrClosed
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.stats.Fsyncs++
	w.lastSync = w.opts.Clock()
	return nil
}

// Close flushes (unless crashed) and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closeLocked()
}

func (w *WAL) closeLocked() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active == nil {
		return nil
	}
	var err error
	if !w.crashed {
		err = w.active.Sync()
		if err == nil {
			w.stats.Fsyncs++
		}
	}
	if cerr := w.active.Close(); err == nil {
		err = cerr
	}
	w.active = nil
	return err
}

// Replay streams every record of the log in order. Call before
// concurrent appends begin (typically right after Open); the scan reads
// the segment files directly.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	segs := append([]uint64(nil), w.segments...)
	dir := w.dir
	w.mu.Unlock()
	var wantSeq uint64
	for _, idx := range segs {
		_, firstSeq, last, err := scanSegment(filepath.Join(dir, segName(idx)), wantSeq, fn)
		if err != nil && !errors.Is(err, errBadFrame) {
			return err
		}
		if errors.Is(err, errBadFrame) {
			// Open already repaired the log; hitting this means the file
			// changed underneath us — stop at the valid prefix.
			return nil
		}
		if last != 0 {
			wantSeq = last + 1
		} else if firstSeq != 0 {
			wantSeq = firstSeq
		}
	}
	return nil
}

// LastSeq returns the sequence number of the newest appended record
// (0 for an empty log).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Stats returns a snapshot of the activity counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.Segments = len(w.segments)
	return s
}

// SetPruneFloor arms (or raises) the prune floor: from now on,
// PruneBefore will never drop a segment holding any record with a
// sequence number above the floor. The DurableStore arms the floor with
// the newest retained checkpoint's covered seq — records above it are
// the replay suffix recovery depends on, so they must outlive any
// prune. The floor is monotonic; calls that would lower it are ignored.
func (w *WAL) SetPruneFloor(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pruneFloor == noPruneFloor || seq > w.pruneFloor {
		w.pruneFloor = seq
	}
}

// PruneFloor returns the armed prune floor and whether one is set.
func (w *WAL) PruneFloor() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pruneFloor, w.pruneFloor != noPruneFloor
}

// PruneBefore removes whole segments all of whose records have
// sequence numbers <= seq. The active segment is never removed, and on
// a WAL with an armed prune floor (every DurableStore WAL) seq is
// clamped to the newest retained checkpoint's covered seq — segments
// the checkpoint does not cover are refused, however aggressive the
// request, so recovery can always replay the post-checkpoint suffix.
// Pruning forfeits the ability to rebuild history older than the
// checkpoint; recovery then re-roots the block tree at the checkpoint
// block (see docs/PERSISTENCE.md — the node does not prune
// automatically).
func (w *WAL) PruneBefore(seq uint64) (removed int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pruneBeforeLocked(seq)
}

func (w *WAL) pruneBeforeLocked(seq uint64) (removed int, err error) {
	if seq > w.pruneFloor {
		seq = w.pruneFloor
	}
	for len(w.segments) > 1 {
		// A segment is removable when the NEXT segment starts at or
		// before seq+1: every record in it is then <= seq.
		next := filepath.Join(w.dir, segName(w.segments[1]))
		_, nextFirst, _, serr := scanSegment(next, 0, func(Record) error { return nil })
		if serr != nil && !errors.Is(serr, errBadFrame) {
			return removed, serr
		}
		if nextFirst == 0 || nextFirst > seq+1 {
			break
		}
		victim := filepath.Join(w.dir, segName(w.segments[0]))
		if err := os.Remove(victim); err != nil {
			return removed, fmt.Errorf("wal: prune: %w", err)
		}
		w.segments = w.segments[1:]
		removed++
	}
	return removed, nil
}

// scanSegment reads one segment file, calling fn for every valid
// record. It returns the byte length of the valid prefix, the header's
// first sequence number, and the last record seq seen (0 if none).
// wantSeq, when nonzero, enforces continuity with the previous segment;
// a mismatch is reported as errBadFrame at the offending record.
func scanSegment(path string, wantSeq uint64, fn func(Record) error) (valid int64, firstSeq, lastSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, 0, 0, errBadFrame
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return 0, 0, 0, errBadFrame
	}
	firstSeq = binary.BigEndian.Uint64(hdr[len(segMagic):])
	valid = int64(segHeaderLen)
	if wantSeq != 0 && firstSeq != wantSeq {
		return valid, firstSeq, 0, errBadFrame
	}
	want := firstSeq
	for {
		rec, n, derr := decodeFrame(br)
		if derr == io.EOF {
			return valid, firstSeq, lastSeq, nil
		}
		if derr != nil {
			return valid, firstSeq, lastSeq, errBadFrame
		}
		if rec.Seq != want {
			return valid, firstSeq, lastSeq, errBadFrame
		}
		if err := fn(rec); err != nil {
			return valid, firstSeq, lastSeq, err
		}
		valid += int64(n)
		lastSeq = rec.Seq
		want = rec.Seq + 1
	}
}
