package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// WAL record types written by the DurableStore.
const (
	// RecBlock journals one connected block (payload: types.Block
	// canonical encoding).
	RecBlock byte = 1
	// RecHead journals one head switch (payload: 32-byte block hash).
	RecHead byte = 2
)

// DefaultCheckpointEvery is the default block cadence between state
// checkpoints.
const DefaultCheckpointEvery = 64

// ckptMagic versions the checkpoint file format. Version 2 embeds the
// head block itself, so recovery can re-root the block tree at the
// checkpoint after the pre-checkpoint journal has been pruned.
const ckptMagic = "DCSCKPT2"

// keepCheckpoints is how many newest checkpoint files are retained; the
// second-newest survives as a fallback should the newest be torn by a
// crash during its (atomic) replacement.
const keepCheckpoints = 2

// Store errors.
var (
	// ErrStoreFailed latches after the first write failure: the store
	// refuses further writes so the in-memory chain cannot silently run
	// ahead of a broken log.
	ErrStoreFailed = errors.New("wal: durable store failed")
)

// StoreOptions configures a DurableStore.
type StoreOptions struct {
	// Fsync is the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the interval policy cadence (0 = DefaultFsyncEvery).
	FsyncEvery time.Duration
	// SegmentSize rotates WAL segments (0 = DefaultSegmentSize).
	SegmentSize int64
	// CheckpointEvery is the block-height cadence between state
	// checkpoints (0 = DefaultCheckpointEvery).
	CheckpointEvery uint64
	// Clock supplies time for the interval fsync policy (nil = wall).
	Clock func() time.Time
}

// RecoveredBlock is one journaled block with its WAL sequence number,
// used by recovery to split the replay at the newest checkpoint.
type RecoveredBlock struct {
	Seq   uint64
	Block *types.Block
}

// Checkpoint is one decoded, validated state checkpoint.
type Checkpoint struct {
	// Seq is the WAL sequence number the checkpoint covers: every
	// record with Seq <= this was reflected in State when it was taken.
	Seq uint64
	// Head and Height identify the checkpointed chain head.
	Head   cryptoutil.Hash
	Height uint64
	// StateRoot is Head's state root; State.Commit() was verified to
	// equal it when the checkpoint was loaded.
	StateRoot cryptoutil.Hash
	// State is the materialized head state (no executor installed).
	State *state.State
	// Block is the checkpointed head block itself (hash verified to
	// equal Head at load). It lets recovery adopt the checkpoint as the
	// block tree's root when pruning dropped the journal below it.
	Block *types.Block
}

// Recovery is everything OpenStore reconstructs from disk: the journal
// of blocks in log order, the last durable head switch, and the newest
// valid checkpoint (nil if none usable).
type Recovery struct {
	Blocks     []RecoveredBlock
	Head       cryptoutil.Hash // zero if no head record survived
	Checkpoint *Checkpoint
	// Truncated counts journal records dropped because a payload failed
	// to decode (CRC-valid but semantically unusable — a version skew
	// or software bug); everything after the first such record is
	// discarded to preserve prefix semantics.
	Truncated int
}

// Height of the recovery's newest block (0 when empty).
func (r *Recovery) TipHeight() uint64 {
	var h uint64
	for _, rb := range r.Blocks {
		if rb.Block.Header.Height > h {
			h = rb.Block.Header.Height
		}
	}
	return h
}

// DurableStore is the persistent block-store backend: it journals
// connected blocks and head switches into a segmented WAL under
// dir/wal/ and writes periodic state checkpoints as dir/ckpt-*.ck
// files. One DurableStore belongs to one node; it is safe for
// concurrent use.
type DurableStore struct {
	mu             sync.Mutex
	dir            string
	wal            *WAL
	opts           StoreOptions
	failed         error // latched first write failure
	lastCkptHeight uint64
	checkpoints    uint64 // written this session
}

// OpenStore opens (or initializes) the data directory, repairs the WAL
// tail, loads the newest valid checkpoint, and replays the journal. The
// returned Recovery feeds node recovery; the returned store is ready
// for new appends.
func OpenStore(dir string, opts StoreOptions) (*DurableStore, *Recovery, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: data dir: %w", err)
	}
	w, err := Open(filepath.Join(dir, "wal"), Options{
		SegmentSize: opts.SegmentSize,
		Fsync:       opts.Fsync,
		FsyncEvery:  opts.FsyncEvery,
		Clock:       opts.Clock,
	})
	if err != nil {
		return nil, nil, err
	}
	s := &DurableStore{dir: dir, wal: w, opts: opts}

	rec := &Recovery{Checkpoint: s.loadNewestCheckpoint()}
	stop := false
	if err := w.Replay(func(r Record) error {
		if stop {
			rec.Truncated++
			return nil
		}
		switch r.Type {
		case RecBlock:
			b, derr := types.DecodeBlock(r.Payload)
			if derr != nil {
				// CRC-valid but undecodable: stop collecting here so the
				// recovered chain stays a clean prefix.
				stop = true
				rec.Truncated++
				return nil
			}
			rec.Blocks = append(rec.Blocks, RecoveredBlock{Seq: r.Seq, Block: b})
		case RecHead:
			if len(r.Payload) == cryptoutil.HashSize {
				copy(rec.Head[:], r.Payload)
			}
		}
		return nil
	}); err != nil {
		w.Close()
		return nil, nil, err
	}
	// Arm the prune floor: segments above the newest checkpoint's seq
	// are the replay suffix and must never be pruned. With no usable
	// checkpoint the floor is zero — nothing may be pruned at all.
	if rec.Checkpoint != nil {
		s.lastCkptHeight = rec.Checkpoint.Height
		w.SetPruneFloor(rec.Checkpoint.Seq)
	} else {
		w.SetPruneFloor(0)
	}
	return s, rec, nil
}

// WAL exposes the underlying log (failpoint injection, stats, pruning).
func (s *DurableStore) WAL() *WAL { return s.wal }

// Dir returns the store's data directory.
func (s *DurableStore) Dir() string { return s.dir }

// Failed returns the latched first write error, nil while healthy.
func (s *DurableStore) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// StoreStats is a snapshot of the store's durability counters.
type StoreStats struct {
	WAL         Stats
	Checkpoints uint64 // checkpoints written this session
}

// Stats returns a snapshot of durability counters.
func (s *DurableStore) Stats() StoreStats {
	s.mu.Lock()
	ck := s.checkpoints
	s.mu.Unlock()
	return StoreStats{WAL: s.wal.Stats(), Checkpoints: ck}
}

// LogBlock journals one connected block. The write is the block's
// commit point: an error means durability was NOT achieved and latches
// the store into the failed state.
func (s *DurableStore) LogBlock(b *types.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if _, err := s.wal.Append(RecBlock, b.Encode()); err != nil {
		s.failed = fmt.Errorf("%w: %v", ErrStoreFailed, err)
		return s.failed
	}
	return nil
}

// LogHead journals one head switch.
func (s *DurableStore) LogHead(h cryptoutil.Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if _, err := s.wal.Append(RecHead, h.Bytes()); err != nil {
		s.failed = fmt.Errorf("%w: %v", ErrStoreFailed, err)
		return s.failed
	}
	return nil
}

// MaybeCheckpoint writes a checkpoint when the head has advanced at
// least CheckpointEvery blocks past the previous one. Returns whether a
// checkpoint was written.
func (s *DurableStore) MaybeCheckpoint(b *types.Block, root cryptoutil.Hash, st *state.State) (bool, error) {
	s.mu.Lock()
	due := b.Header.Height >= s.lastCkptHeight+s.opts.CheckpointEvery
	s.mu.Unlock()
	if !due {
		return false, nil
	}
	return true, s.Checkpoint(b, root, st)
}

// Checkpoint unconditionally writes a state checkpoint of head block b
// covering the WAL as of now, then retires all but the newest
// keepCheckpoints files. The file is written to a temp name, fsynced,
// and renamed, so a crash mid-checkpoint leaves the previous checkpoint
// intact.
func (s *DurableStore) Checkpoint(b *types.Block, root cryptoutil.Hash, st *state.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if err := s.checkpointLocked(b, root, st); err != nil {
		s.failed = fmt.Errorf("%w: %v", ErrStoreFailed, err)
		return s.failed
	}
	return nil
}

func (s *DurableStore) checkpointLocked(b *types.Block, root cryptoutil.Hash, st *state.State) error {
	head, height := b.Hash(), b.Header.Height
	snap, err := st.EncodeSnapshot()
	if err != nil {
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	// The checkpoint covers every record appended so far; flush them
	// first so the covered prefix really is durable.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	seq := s.wal.LastSeq()

	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], seq)
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], height)
	buf.Write(b8[:])
	buf.Write(head[:])
	buf.Write(root[:])
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], uint32(len(snap)))
	buf.Write(b4[:])
	buf.Write(snap)
	blk := b.Encode()
	binary.BigEndian.PutUint32(b4[:], uint32(len(blk)))
	buf.Write(b4[:])
	buf.Write(blk)
	body := buf.Bytes()[len(ckptMagic):]
	binary.BigEndian.PutUint32(b4[:], crc32.Checksum(body, castagnoli))
	buf.Write(b4[:])

	final := filepath.Join(s.dir, ckptName(seq))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	syncDir(s.dir)
	// The checkpoint now covers everything up to seq, so pruning may
	// advance to it (and no further).
	s.wal.SetPruneFloor(seq)
	s.lastCkptHeight = height
	s.checkpoints++
	s.gcCheckpointsLocked()
	return nil
}

// Close flushes and closes the store.
func (s *DurableStore) Close() error {
	return s.wal.Close()
}

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%016d.ck", seq) }

func parseCkptName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "ckpt-%d.ck", &seq); err != nil {
		return 0, false
	}
	if ckptName(seq) != name {
		return 0, false
	}
	return seq, true
}

// loadNewestCheckpoint scans dir for checkpoint files, newest first,
// and returns the first that passes CRC, decode, and state-root
// verification. Invalid files are skipped (and reported by recovery as
// simply absent), never trusted.
func (s *DurableStore) loadNewestCheckpoint() *Checkpoint {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		if ck := loadCheckpoint(filepath.Join(s.dir, ckptName(seq))); ck != nil {
			return ck
		}
	}
	return nil
}

// loadCheckpoint parses and verifies one checkpoint file; nil if it is
// damaged in any way.
func loadCheckpoint(path string) *Checkpoint {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	const fixed = 8 + 8 + 8 + cryptoutil.HashSize + cryptoutil.HashSize + 4 // magic..snaplen
	if len(data) < fixed+4 {
		return nil
	}
	if string(data[:8]) != ckptMagic {
		return nil
	}
	body := data[8 : len(data)-4]
	gotCRC := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != gotCRC {
		return nil
	}
	ck := &Checkpoint{}
	off := 8
	ck.Seq = binary.BigEndian.Uint64(data[off:])
	off += 8
	ck.Height = binary.BigEndian.Uint64(data[off:])
	off += 8
	copy(ck.Head[:], data[off:])
	off += cryptoutil.HashSize
	copy(ck.StateRoot[:], data[off:])
	off += cryptoutil.HashSize
	snapLen := binary.BigEndian.Uint32(data[off:])
	off += 4
	if off+int(snapLen)+4 > len(data)-4 {
		return nil
	}
	st, err := state.DecodeSnapshot(data[off : off+int(snapLen)])
	if err != nil {
		return nil
	}
	off += int(snapLen)
	blkLen := binary.BigEndian.Uint32(data[off:])
	off += 4
	if off+int(blkLen) != len(data)-4 {
		return nil
	}
	blk, err := types.DecodeBlock(data[off : off+int(blkLen)])
	if err != nil {
		return nil
	}
	// Re-verify the snapshot against the recorded root and the block
	// against the recorded head: a checkpoint whose state does not
	// commit to its claimed root (or whose block is not its head) is
	// worthless.
	if st.Commit() != ck.StateRoot {
		return nil
	}
	if blk.Hash() != ck.Head || blk.Header.Height != ck.Height {
		return nil
	}
	ck.State = st
	ck.Block = blk
	return ck
}

// gcCheckpointsLocked removes all but the newest keepCheckpoints
// checkpoint files (and any stale temp files).
func (s *DurableStore) gcCheckpointsLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, "ckpt-") {
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if seq, ok := parseCkptName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= keepCheckpoints {
		return
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[keepCheckpoints:] {
		_ = os.Remove(filepath.Join(s.dir, ckptName(seq)))
	}
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable. Errors
// are ignored: not all filesystems support directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
