package wal

import "fmt"

// FailMode selects how an injected crash corrupts the log, covering the
// three physical outcomes of dying mid-write.
type FailMode int

const (
	// FailNone disarms the failpoint.
	FailNone FailMode = iota
	// FailCut crashes before the frame is written at all: a clean cut
	// at the previous record boundary.
	FailCut
	// FailTorn writes only the first half of the frame: a torn record
	// that recovery must detect by its short body.
	FailTorn
	// FailGarble writes the whole frame with one payload byte flipped
	// after the CRC was computed: bit rot / misdirected write that
	// recovery must detect by checksum.
	FailGarble
)

// String returns the matrix-cell name of the mode.
func (m FailMode) String() string {
	switch m {
	case FailNone:
		return "none"
	case FailCut:
		return "cut"
	case FailTorn:
		return "torn"
	case FailGarble:
		return "garble"
	}
	return fmt.Sprintf("FailMode(%d)", int(m))
}

// fpState is the armed failpoint of one WAL, guarded by the WAL mutex.
type fpState struct {
	mode  FailMode
	at    uint64 // fire on the at-th append (1-based) counted from arming
	count uint64 // appends observed since arming
}

func (f *fpState) armed() bool { return f.mode != FailNone }

// SetFailpoint arms a deterministic crash: the nth Append after this
// call (1-based) corrupts the log according to mode and latches the WAL
// into the crashed state — every later write returns ErrCrashed, exactly
// as if the process had died. Tests reopen the directory to exercise
// recovery. Pass FailNone to disarm.
func (w *WAL) SetFailpoint(mode FailMode, nthAppend uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fp = fpState{mode: mode, at: nthAppend}
}

// Crashed reports whether the failpoint has fired.
func (w *WAL) Crashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}

// fireFailpointLocked counts one append against the armed failpoint;
// when the trigger count is reached it writes the configured corruption,
// makes it durable, and latches the crashed state. Returns crashed=true
// when the append must fail with ErrCrashed.
func (w *WAL) fireFailpointLocked(frame []byte) (bool, error) {
	w.fp.count++
	if w.fp.count < w.fp.at {
		return false, nil
	}
	mode := w.fp.mode
	w.fp = fpState{}
	w.crashed = true
	switch mode {
	case FailCut:
		// Crash before any byte of this record reaches the file.
	case FailTorn:
		if _, err := w.active.Write(frame[:len(frame)/2]); err != nil {
			return true, ErrCrashed
		}
	case FailGarble:
		garbled := append([]byte(nil), frame...)
		garbled[len(garbled)-1] ^= 0xFF // flip payload bits after the CRC
		if _, err := w.active.Write(garbled); err != nil {
			return true, ErrCrashed
		}
	}
	// Make the corruption durable so recovery sees exactly this state.
	_ = w.active.Sync()
	return true, ErrCrashed
}
