package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openT opens a WAL in a fresh temp dir and registers cleanup.
func openT(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// appendN appends n records with deterministic payloads and returns the
// payload of record seq for later comparison.
func appendN(t *testing.T, w *WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("record-%04d", i))
		if _, err := w.Append(RecBlock, payload); err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
	}
}

// replayAll collects every record in the log.
func replayAll(t *testing.T, w *WAL) []Record {
	t.Helper()
	var recs []Record
	if err := w.Replay(func(r Record) error {
		cp := r
		cp.Payload = append([]byte(nil), r.Payload...)
		recs = append(recs, cp)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, w, 25)
	recs := replayAll(t, w)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if want := fmt.Sprintf("record-%04d", i); string(r.Payload) != want {
			t.Fatalf("record %d: payload %q, want %q", i, r.Payload, want)
		}
		if r.Type != RecBlock {
			t.Fatalf("record %d: type %d, want %d", i, r.Type, RecBlock)
		}
	}
	if got := w.LastSeq(); got != 25 {
		t.Fatalf("LastSeq = %d, want 25", got)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Fsync: FsyncAlways})
	appendN(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openT(t, dir, Options{Fsync: FsyncAlways})
	if got := w2.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after reopen = %d, want 10", got)
	}
	seq, err := w2.Append(RecHead, []byte("x"))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if seq != 11 {
		t.Fatalf("next seq = %d, want 11", seq)
	}
	if recs := replayAll(t, w2); len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11", len(recs))
	}
}

func TestSegmentRotationAndContinuity(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record (~30 bytes framed) forces rotations.
	w := openT(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 128})
	appendN(t, w, 50)
	st := w.Stats()
	if st.Rotations == 0 {
		t.Fatalf("expected segment rotations, got 0 (stats %+v)", st)
	}
	if st.Segments < 2 {
		t.Fatalf("expected >= 2 segments, got %d", st.Segments)
	}
	// Sequence numbers must be contiguous across all segment boundaries.
	recs := replayAll(t, w)
	if len(recs) != 50 {
		t.Fatalf("replayed %d records, want 50", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("discontinuity at %d: seq %d", i, r.Seq)
		}
	}
	// And survive a reopen.
	w.Close()
	w2 := openT(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 128})
	if got := len(replayAll(t, w2)); got != 50 {
		t.Fatalf("after reopen: %d records, want 50", got)
	}
}

// TestCrashModesTruncateToPrefix drives each failpoint mode and asserts
// that reopening the directory recovers exactly the records appended
// before the crash — the log is always a valid prefix.
func TestCrashModesTruncateToPrefix(t *testing.T) {
	for _, mode := range []FailMode{FailCut, FailTorn, FailGarble} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			w := openT(t, dir, Options{Fsync: FsyncAlways})
			appendN(t, w, 7)
			w.SetFailpoint(mode, 1) // crash on the next append
			if _, err := w.Append(RecBlock, []byte("doomed")); !errors.Is(err, ErrCrashed) {
				t.Fatalf("append at failpoint: err = %v, want ErrCrashed", err)
			}
			if !w.Crashed() {
				t.Fatal("Crashed() = false after failpoint fired")
			}
			// The WAL is latched: every later write fails like a dead process.
			if _, err := w.Append(RecBlock, []byte("more")); !errors.Is(err, ErrCrashed) {
				t.Fatalf("append after crash: err = %v, want ErrCrashed", err)
			}
			if err := w.Sync(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("sync after crash: err = %v, want ErrCrashed", err)
			}
			w.Close()

			w2 := openT(t, dir, Options{Fsync: FsyncAlways})
			recs := replayAll(t, w2)
			if len(recs) != 7 {
				t.Fatalf("mode %s: recovered %d records, want 7", mode, len(recs))
			}
			if mode != FailCut && w2.Stats().TornTruncated == 0 {
				t.Fatalf("mode %s: expected TornTruncated > 0", mode)
			}
			// The repaired log accepts new appends at the right seq.
			seq, err := w2.Append(RecBlock, []byte("after repair"))
			if err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			if seq != 8 {
				t.Fatalf("seq after repair = %d, want 8", seq)
			}
		})
	}
}

// TestFailpointNthAppend verifies the trigger counts appends from
// arming, 1-based.
func TestFailpointNthAppend(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Fsync: FsyncAlways})
	w.SetFailpoint(FailTorn, 3)
	for i := 0; i < 2; i++ {
		if _, err := w.Append(RecBlock, []byte("ok")); err != nil {
			t.Fatalf("append %d before trigger: %v", i, err)
		}
	}
	if _, err := w.Append(RecBlock, []byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("3rd append: err = %v, want ErrCrashed", err)
	}
}

// TestMidLogCorruptionDropsSuffix garbles a byte in an early segment and
// verifies Open truncates there and deletes every later segment.
func TestMidLogCorruptionDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 128})
	appendN(t, w, 40)
	if w.Stats().Segments < 3 {
		t.Fatalf("need >= 3 segments for this test, got %d", w.Stats().Segments)
	}
	w.Close()

	// Flip one byte in the middle of the FIRST segment's record area.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("found %d segment files, want >= 3", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+frameHeaderLen+recordHeaderLen+2] ^= 0xFF // payload byte of record 1
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openT(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 128})
	recs := replayAll(t, w2)
	if len(recs) != 0 {
		t.Fatalf("recovered %d records after first-record corruption, want 0", len(recs))
	}
	if w2.Stats().Segments != 1 {
		t.Fatalf("later segments not removed: %d live", w2.Stats().Segments)
	}
	if w2.Stats().TornTruncated == 0 {
		t.Fatal("expected TornTruncated > 0")
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		w := openT(t, t.TempDir(), Options{Fsync: FsyncAlways})
		appendN(t, w, 5)
		if got := w.Stats().Fsyncs; got != 5 {
			t.Fatalf("fsyncs = %d, want 5 (one per append)", got)
		}
	})
	t.Run("never", func(t *testing.T) {
		w := openT(t, t.TempDir(), Options{Fsync: FsyncNever})
		appendN(t, w, 5)
		if got := w.Stats().Fsyncs; got != 0 {
			t.Fatalf("fsyncs = %d, want 0", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		now := time.Unix(1000, 0)
		w := openT(t, t.TempDir(), Options{
			Fsync:      FsyncInterval,
			FsyncEvery: time.Second,
			Clock:      func() time.Time { return now },
		})
		appendN(t, w, 5) // clock frozen: no interval elapsed
		if got := w.Stats().Fsyncs; got != 0 {
			t.Fatalf("fsyncs with frozen clock = %d, want 0", got)
		}
		now = now.Add(time.Second)
		appendN(t, w, 1) // interval elapsed: this append syncs
		if got := w.Stats().Fsyncs; got != 1 {
			t.Fatalf("fsyncs after interval = %d, want 1", got)
		}
		appendN(t, w, 3) // clock frozen again
		if got := w.Stats().Fsyncs; got != 1 {
			t.Fatalf("fsyncs = %d, want still 1", got)
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, " never ": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() == "" {
			t.Fatalf("empty String() for %v", got)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestAppendErrors(t *testing.T) {
	w := openT(t, t.TempDir(), Options{})
	if _, err := w.Append(RecBlock, make([]byte, MaxRecordLen)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: err = %v, want ErrTooLarge", err)
	}
	w.Close()
	if _, err := w.Append(RecBlock, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: err = %v, want ErrClosed", err)
	}
}

func TestPruneBefore(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 128})
	appendN(t, w, 40)
	before := w.Stats().Segments
	if before < 3 {
		t.Fatalf("need >= 3 segments, got %d", before)
	}
	last := w.LastSeq()
	removed, err := w.PruneBefore(last)
	if err != nil {
		t.Fatalf("PruneBefore: %v", err)
	}
	if removed == 0 {
		t.Fatal("PruneBefore removed nothing")
	}
	if got := w.Stats().Segments; got != before-removed {
		t.Fatalf("segments = %d, want %d", got, before-removed)
	}
	// The surviving suffix must still be a valid log ending at last.
	recs := replayAll(t, w)
	if len(recs) == 0 || recs[len(recs)-1].Seq != last {
		t.Fatalf("pruned log ends at %v, want last seq %d", recs, last)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("discontinuity after prune at %d", i)
		}
	}
	// Reopen continues from the same sequence.
	w.Close()
	w2 := openT(t, dir, Options{Fsync: FsyncAlways, SegmentSize: 128})
	if got := w2.LastSeq(); got != last {
		t.Fatalf("LastSeq after prune+reopen = %d, want %d", got, last)
	}
}

func TestEmptyLogOpenClose(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{})
	if got := w.LastSeq(); got != 0 {
		t.Fatalf("LastSeq of empty log = %d, want 0", got)
	}
	if recs := replayAll(t, w); len(recs) != 0 {
		t.Fatalf("empty log replayed %d records", len(recs))
	}
	w.Close()
	// Reopen the (empty but header-bearing) log.
	w2 := openT(t, dir, Options{})
	if got := w2.LastSeq(); got != 0 {
		t.Fatalf("LastSeq after reopen = %d, want 0", got)
	}
	if seq, err := w2.Append(RecBlock, []byte("first")); err != nil || seq != 1 {
		t.Fatalf("first append = %d, %v; want 1, nil", seq, err)
	}
}
