package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// testBlocks builds a deterministic linear chain of n blocks for
// journaling tests (no consensus validity needed at this layer).
func testBlocks(n int) []*types.Block {
	miner := cryptoutil.KeyFromSeed([]byte("store-test")).Address()
	parent := cryptoutil.HashBytes([]byte("genesis"))
	blocks := make([]*types.Block, 0, n)
	for i := 0; i < n; i++ {
		b := types.NewBlock(parent, uint64(i+1), int64(1000+i), miner, nil)
		blocks = append(blocks, b)
		parent = b.Hash()
	}
	return blocks
}

func openStoreT(t *testing.T, dir string, opts StoreOptions) (*DurableStore, *Recovery) {
	t.Helper()
	s, rec, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

func TestStoreJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	if len(rec.Blocks) != 0 || !rec.Head.IsZero() || rec.Checkpoint != nil {
		t.Fatalf("fresh store recovery not empty: %+v", rec)
	}
	blocks := testBlocks(5)
	for _, b := range blocks {
		if err := s.LogBlock(b); err != nil {
			t.Fatalf("LogBlock: %v", err)
		}
		if err := s.LogHead(b.Hash()); err != nil {
			t.Fatalf("LogHead: %v", err)
		}
	}
	s.Close()

	_, rec2 := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	if len(rec2.Blocks) != 5 {
		t.Fatalf("recovered %d blocks, want 5", len(rec2.Blocks))
	}
	for i, rb := range rec2.Blocks {
		if rb.Block.Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch after journal round trip", i)
		}
	}
	if rec2.Head != blocks[4].Hash() {
		t.Fatalf("recovered head %s, want %s", rec2.Head.Short(), blocks[4].Hash().Short())
	}
	if got := rec2.TipHeight(); got != 5 {
		t.Fatalf("TipHeight = %d, want 5", got)
	}
}

func TestStoreCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	blocks := testBlocks(3)
	for _, b := range blocks {
		if err := s.LogBlock(b); err != nil {
			t.Fatal(err)
		}
	}

	st := state.New()
	st.Credit(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("alice"))), 1000)
	st.Credit(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("bob"))), 7)
	root := st.Commit()
	head := blocks[2].Hash()
	if err := s.Checkpoint(blocks[2], root, st); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := s.Stats().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints stat = %d, want 1", got)
	}
	wantSeq := s.WAL().LastSeq()
	s.Close()

	_, rec := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	ck := rec.Checkpoint
	if ck == nil {
		t.Fatal("checkpoint not recovered")
	}
	if ck.Head != head || ck.Height != 3 || ck.StateRoot != root || ck.Seq != wantSeq {
		t.Fatalf("checkpoint fields %+v; want head=%s height=3 root=%s seq=%d",
			ck, head.Short(), root.Short(), wantSeq)
	}
	if ck.State.Commit() != root {
		t.Fatal("recovered checkpoint state does not commit to its root")
	}
	if ck.Block == nil || ck.Block.Hash() != head {
		t.Fatal("recovered checkpoint does not embed its head block")
	}
	if got := ck.State.Balance(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("alice")))); got != 1000 {
		t.Fatalf("recovered balance = %d, want 1000", got)
	}
}

func TestCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	st := state.New()
	st.Credit(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("a"))), 1)
	root := st.Commit()
	for i, b := range testBlocks(5) {
		if err := s.LogBlock(b); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(b, root, st); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ck"))
	if len(files) != keepCheckpoints {
		t.Fatalf("%d checkpoint files survive, want %d", len(files), keepCheckpoints)
	}
}

// TestCorruptCheckpointFallsBack garbles the newest checkpoint and
// verifies recovery falls back to the older one (never trusting a
// damaged file).
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	st := state.New()
	st.Credit(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("a"))), 1)
	root := st.Commit()
	blocks := testBlocks(2)
	for _, b := range blocks {
		if err := s.LogBlock(b); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(b, root, st); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ck"))
	if len(files) != 2 {
		t.Fatalf("want 2 checkpoint files, got %d", len(files))
	}
	newest := files[len(files)-1] // glob sorts; zero-padded names sort by seq
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	if rec.Checkpoint == nil {
		t.Fatal("no fallback checkpoint recovered")
	}
	if rec.Checkpoint.Head != blocks[0].Hash() || rec.Checkpoint.Height != 1 {
		t.Fatalf("fell back to %+v, want the height-1 checkpoint", rec.Checkpoint)
	}
}

func TestMaybeCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways, CheckpointEvery: 4})
	st := state.New()
	st.Credit(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("a"))), 1)
	root := st.Commit()
	blocks := testBlocks(9)
	wantAt := map[uint64]bool{4: true, 8: true}
	for h := uint64(1); h <= 9; h++ {
		wrote, err := s.MaybeCheckpoint(blocks[h-1], root, st)
		if err != nil {
			t.Fatalf("MaybeCheckpoint(%d): %v", h, err)
		}
		if wrote != wantAt[h] {
			t.Fatalf("MaybeCheckpoint(%d) wrote=%v, want %v", h, wrote, wantAt[h])
		}
	}
	if got := s.Stats().Checkpoints; got != 2 {
		t.Fatalf("checkpoints written = %d, want 2", got)
	}
}

// TestStoreFailureLatches verifies the store refuses all writes after
// the first failure, so the in-memory chain cannot silently outrun a
// broken log.
func TestStoreFailureLatches(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	blocks := testBlocks(3)
	if err := s.LogBlock(blocks[0]); err != nil {
		t.Fatal(err)
	}
	s.WAL().SetFailpoint(FailTorn, 1)
	if err := s.LogBlock(blocks[1]); err == nil {
		t.Fatal("LogBlock at failpoint succeeded")
	}
	if s.Failed() == nil {
		t.Fatal("Failed() = nil after write failure")
	}
	if err := s.LogBlock(blocks[2]); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("LogBlock after failure: err = %v, want ErrStoreFailed", err)
	}
	if err := s.LogHead(blocks[2].Hash()); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("LogHead after failure: err = %v, want ErrStoreFailed", err)
	}
	st := state.New()
	if err := s.Checkpoint(blocks[0], st.Commit(), st); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("Checkpoint after failure: err = %v, want ErrStoreFailed", err)
	}
	s.Close()

	// The journal survives as the pre-crash prefix.
	_, rec := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	if len(rec.Blocks) != 1 || rec.Blocks[0].Block.Hash() != blocks[0].Hash() {
		t.Fatalf("recovered %d blocks, want the 1 pre-crash block", len(rec.Blocks))
	}
}

// TestUndecodablePayloadStopsCollection writes a CRC-valid RecBlock
// whose payload is not a decodable block: recovery must stop collecting
// there to preserve prefix semantics.
func TestUndecodablePayloadStopsCollection(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	blocks := testBlocks(3)
	if err := s.LogBlock(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WAL().Append(RecBlock, []byte("not a block")); err != nil {
		t.Fatal(err)
	}
	if err := s.LogBlock(blocks[1]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, rec := openStoreT(t, dir, StoreOptions{Fsync: FsyncAlways})
	if len(rec.Blocks) != 1 {
		t.Fatalf("recovered %d blocks, want 1 (prefix before bad payload)", len(rec.Blocks))
	}
	if rec.Truncated != 2 {
		t.Fatalf("Truncated = %d, want 2 (bad record + dropped successor)", rec.Truncated)
	}
}

// TestPruneFloorProtectsReplaySuffix pins the checkpoint-seq prune
// floor: a DurableStore WAL with no checkpoint refuses to prune
// anything, and once a checkpoint exists, an arbitrarily aggressive
// PruneBefore drops only segments the checkpoint covers — every record
// above the checkpoint seq survives and replays after reopen.
func TestPruneFloorProtectsReplaySuffix(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{Fsync: FsyncAlways, SegmentSize: 256}
	s, _ := openStoreT(t, dir, opts)
	blocks := testBlocks(10)
	for _, b := range blocks[:5] {
		if err := s.LogBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	// No checkpoint: the floor is zero and nothing may be pruned,
	// however large the request.
	if removed, err := s.WAL().PruneBefore(s.WAL().LastSeq()); err != nil || removed != 0 {
		t.Fatalf("prune with no checkpoint removed %d (err %v), want 0", removed, err)
	}

	st := state.New()
	st.Credit(cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("a"))), 1)
	if err := s.Checkpoint(blocks[4], st.Commit(), st); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ckptSeq := s.WAL().LastSeq()
	if floor, armed := s.WAL().PruneFloor(); !armed || floor != ckptSeq {
		t.Fatalf("floor = %d (armed %v), want %d", floor, armed, ckptSeq)
	}
	for _, b := range blocks[5:] {
		if err := s.LogBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.WAL().PruneBefore(s.WAL().LastSeq())
	if err != nil {
		t.Fatalf("PruneBefore: %v", err)
	}
	if removed == 0 {
		t.Fatal("clamped prune removed no pre-checkpoint segments")
	}
	s.Close()

	// The pruned store still recovers the checkpoint plus the complete
	// replay suffix (every block journaled after the checkpoint).
	_, rec := openStoreT(t, dir, opts)
	if rec.Checkpoint == nil || rec.Checkpoint.Head != blocks[4].Hash() {
		t.Fatalf("recovered checkpoint %+v, want head %s", rec.Checkpoint, blocks[4].Hash().Short())
	}
	var suffix []*types.Block
	for _, rb := range rec.Blocks {
		if rb.Seq > rec.Checkpoint.Seq {
			suffix = append(suffix, rb.Block)
		}
	}
	if len(suffix) != 5 {
		t.Fatalf("replay suffix has %d blocks, want 5", len(suffix))
	}
	for i, b := range suffix {
		if b.Hash() != blocks[5+i].Hash() {
			t.Fatalf("suffix block %d mismatch", i)
		}
	}
}
