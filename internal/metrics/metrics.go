// Package metrics is a dependency-free, allocation-light metrics
// registry for the daemon and the network layer: atomic counters and
// gauges plus callback gauges, exposed in the Prometheus text format
// over HTTP (untyped samples — `name value` lines — which every
// Prometheus-compatible scraper accepts).
//
// The paper's DCS trade-offs (Section 4) are only observable if the
// running system exports its network and consensus activity; this
// package is the substrate the TCP transport, gossip layer, node, and
// ledgerd daemon all report into.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by delta (use negative deltas to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named metrics. All methods are safe for concurrent
// use; Counter/Gauge lookups are get-or-create, so hot paths can cache
// the returned pointer and update it lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds (DefBuckets when none) on first use.
// Hot paths should cache the returned pointer; Observe is lock-free.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(name, bounds...)
	r.hists[name] = h
	return h
}

// RegisterHistogram adds an externally constructed histogram to the
// registry (so a component can create its histograms standalone and
// attach them to the daemon registry later). An existing histogram with
// the same name is kept — the caller's pointer still records, but the
// first-registered family is what renders, preventing duplicate series.
func (r *Registry) RegisterHistogram(h *Histogram) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.hists[h.Name()]; ok {
		return existing
	}
	r.hists[h.Name()] = h
	return h
}

// RegisterFunc registers a callback gauge: fn is invoked at snapshot
// time. Useful for exporting values owned by another subsystem (e.g.
// node consensus counters) without double bookkeeping. Re-registering
// a name replaces the callback.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns a consistent-enough view of every metric. Callback
// gauges are evaluated outside the registry lock, so callbacks may
// themselves take locks (and may even touch this registry).
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+len(r.funcs))
	fns := make(map[string]func() int64, len(r.funcs))
	for name, c := range r.counters {
		out[name] = int64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, fn := range r.funcs {
		fns[name] = fn
	}
	r.mu.RUnlock()
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// WriteTo writes the metrics in the Prometheus text exposition format.
// All families — counters, gauges, callback gauges, and histograms —
// are merged and rendered in one pass sorted by family name, so scrapes
// are byte-stable for a given set of values (golden-testable) and
// histogram `_bucket/_sum/_count` series stay grouped.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(snap)+len(hists))
	for name := range snap {
		names = append(names, name)
	}
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var written int64
	for _, name := range names {
		if h, ok := hists[name]; ok {
			n, err := h.writeTo(w)
			written += n
			if err != nil {
				return written, err
			}
			continue
		}
		n, err := fmt.Fprintf(w, "%s %d\n", name, snap[name])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Handler serves the registry in the Prometheus text format — wire it
// under GET /metrics. The Content-Type carries the text-format version
// (`text/plain; version=0.0.4`) and families render in sorted order, so
// scrapes are stable across requests.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
