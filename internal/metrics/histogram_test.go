package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le-inclusive Prometheus
// semantics: a value exactly equal to a bucket's upper bound lands in
// that bucket, one just above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("edge_seconds", 0.1, 1, 10)
	h.Observe(0.1)  // == first bound → bucket 0
	h.Observe(0.11) // just above → bucket 1
	h.Observe(1)    // == second bound → bucket 1
	h.Observe(10)   // == last bound → bucket 2
	h.Observe(10.5) // above every bound → +Inf overflow

	snap := h.Snapshot()
	if got, want := len(snap.Bounds), 3; got != want {
		t.Fatalf("bounds = %d, want %d", got, want)
	}
	// Cumulative: <=0.1 → 1, <=1 → 3, <=10 → 4, +Inf → 5.
	wantCum := []uint64{1, 3, 4, 5}
	for i, want := range wantCum {
		if snap.Cumulative[i] != want {
			t.Errorf("cumulative[%d] = %d, want %d (snapshot %+v)", i, snap.Cumulative[i], want, snap)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d, want 5", snap.Count)
	}
	wantSum := 0.1 + 0.11 + 1 + 10 + 10.5
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

// TestHistogramBoundsSanitized checks constructor hygiene: bounds are
// sorted, duplicates collapse, and non-finite bounds are dropped (+Inf
// is implicit, never an explicit bucket).
func TestHistogramBoundsSanitized(t *testing.T) {
	h := NewHistogram("clean_seconds", 5, 1, math.Inf(1), 1, math.NaN(), 0.5, math.Inf(-1))
	snap := h.Snapshot()
	want := []float64{0.5, 1, 5}
	if len(snap.Bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", snap.Bounds, want)
	}
	for i := range want {
		if snap.Bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", snap.Bounds, want)
		}
	}
	if got, want := len(snap.Cumulative), len(snap.Bounds)+1; got != want {
		t.Fatalf("cumulative buckets = %d, want %d (+Inf overflow)", got, want)
	}
}

// TestHistogramDefaultBuckets: no explicit bounds means DefBuckets.
func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram("def_seconds")
	snap := h.Snapshot()
	if len(snap.Bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(snap.Bounds), len(DefBuckets))
	}
	h.ObserveDuration(2 * time.Millisecond)
	snap = h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1", snap.Count)
	}
}

// TestHistogramConcurrentObserve hammers Observe from many goroutines —
// the `make race` gate runs this under -race, proving the lock-free
// bucket/sum updates are sound. Count and Sum must both be exact.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("conc_seconds", 0.001, 0.01, 0.1, 1)
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread observations across all buckets including overflow.
				h.Observe(float64(i%5) * 0.03)
			}
		}(g)
	}
	wg.Wait()

	snap := h.Snapshot()
	if want := uint64(goroutines * perG); snap.Count != want {
		t.Fatalf("count = %d, want %d", snap.Count, want)
	}
	// Each goroutine observes 0, .03, .06, .09, .12 cycling: per cycle sum 0.3.
	wantSum := float64(goroutines) * float64(perG/5) * 0.30
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if snap.Cumulative[len(snap.Cumulative)-1] != snap.Count {
		t.Fatalf("+Inf bucket %d != count %d",
			snap.Cumulative[len(snap.Cumulative)-1], snap.Count)
	}
}

// TestRegistryGoldenRendering is the golden test for the text
// exposition: a registry holding a counter, a gauge, a callback gauge,
// and a histogram must render byte-for-byte in sorted family order with
// the histogram's bucket/sum/count series grouped.
func TestRegistryGoldenRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(7)
	r.Gauge("aa_gauge").Set(-3)
	r.RegisterFunc("mm_func", func() int64 { return 11 })
	h := r.Histogram("bb_lat_seconds", 0.5, 2)
	h.Observe(0.25)
	h.Observe(0.5) // boundary: lands in the 0.5 bucket
	h.Observe(3)   // overflow

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	want := "aa_gauge -3\n" +
		"bb_lat_seconds_bucket{le=\"0.5\"} 2\n" +
		"bb_lat_seconds_bucket{le=\"2\"} 2\n" +
		"bb_lat_seconds_bucket{le=\"+Inf\"} 3\n" +
		"bb_lat_seconds_sum 3.75\n" +
		"bb_lat_seconds_count 3\n" +
		"mm_func 11\n" +
		"zz_total 7\n"
	if got := sb.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegisterHistogramFirstWins: attaching a standalone histogram
// under a name that already exists keeps the first-registered family.
func TestRegisterHistogramFirstWins(t *testing.T) {
	r := NewRegistry()
	first := r.Histogram("dup_seconds", 1)
	second := NewHistogram("dup_seconds", 2)
	got := r.RegisterHistogram(second)
	if got != first {
		t.Fatalf("RegisterHistogram returned new histogram, want first-registered")
	}
	fresh := NewHistogram("solo_seconds", 1)
	if got := r.RegisterHistogram(fresh); got != fresh {
		t.Fatalf("RegisterHistogram dropped a fresh histogram")
	}
}
