package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sends_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sends_total") != c {
		t.Fatal("Counter must be get-or-create stable")
	}
	g := r.Gauge("conns")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	if r.Gauge("conns") != g {
		t.Fatal("Gauge must be get-or-create stable")
	}
}

func TestRegisterFuncAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(-2)
	r.RegisterFunc("c", func() int64 { return 42 })
	snap := r.Snapshot()
	if snap["a"] != 7 || snap["b"] != -2 || snap["c"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestFuncGaugeMayTouchRegistry(t *testing.T) {
	// Callback gauges run outside the registry lock, so a callback may
	// read other metrics without deadlocking.
	r := NewRegistry()
	r.Counter("base").Add(10)
	r.RegisterFunc("derived", func() int64 { return int64(r.Counter("base").Value()) * 2 })
	if snap := r.Snapshot(); snap["derived"] != 20 {
		t.Fatalf("derived = %d", snap["derived"])
	}
}

func TestHandlerOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("p2p_sent_total").Add(3)
	r.Gauge("p2p_conns").Set(1)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "p2p_sent_total 3\n") || !strings.Contains(body, "p2p_conns 1\n") {
		t.Fatalf("body = %q", body)
	}
	// Sorted output: "p2p_conns" before "p2p_sent_total".
	if strings.Index(body, "p2p_conns") > strings.Index(body, "p2p_sent_total") {
		t.Fatalf("output not sorted: %q", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hot").Inc()
				r.Gauge("g").Add(1)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot").Value(); got != 8000 {
		t.Fatalf("hot = %d, want 8000", got)
	}
}
