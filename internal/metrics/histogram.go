package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds: exponential
// from 100µs to 10s, suitable for the CPU-bound pipeline stages (block
// verify, state apply, fork choice).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WideBuckets cover queueing and inclusion ages up to block-interval
// scale (seconds to tens of minutes) — use for admit→inclusion age,
// where virtual-time latencies track the block interval, not the CPU.
var WideBuckets = []float64{
	0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1800,
}

// Histogram is a fixed-bucket latency histogram with atomic buckets:
// Observe is lock-free (one atomic add per bucket/count plus a CAS loop
// for the sum), so hot paths can record into it concurrently. Bucket
// upper bounds are inclusive (Prometheus `le` semantics) and the
// overflow bucket is rendered as le="+Inf".
type Histogram struct {
	name    string
	bounds  []float64 // sorted, finite upper bounds
	buckets []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram creates a histogram named name with the given bucket
// upper bounds (DefBuckets when none are given). Bounds are sorted and
// deduplicated; non-finite bounds are dropped (+Inf is implicit).
func NewHistogram(name string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	dedup := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{
		name:    name,
		bounds:  dedup,
		buckets: make([]atomic.Uint64, len(dedup)+1), // +1 = +Inf overflow
	}
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value (seconds, for latency histograms). Values
// equal to a bucket's upper bound land in that bucket (le-inclusive).
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; len(bounds) = overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the wall time elapsed since start and returns it.
func (h *Histogram) ObserveSince(start time.Time) time.Duration {
	d := time.Since(start)
	h.ObserveDuration(d)
	return d
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64
	// Cumulative[i] counts observations <= Bounds[i]; the final entry
	// (index len(Bounds)) is the +Inf bucket and equals Count.
	Cumulative []uint64
	// Sum is the total of all observed values.
	Sum float64
	// Count is the number of observations.
	Count uint64
}

// Snapshot returns a consistent-enough view: buckets are read once in
// order and cumulated, so Count always equals the +Inf bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	cum := make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: cum,
		Sum:        math.Float64frombits(h.sumBits.Load()),
		Count:      running,
	}
}

// writeTo renders the histogram in the Prometheus text exposition
// format: cumulative `_bucket{le="..."}` series, `_sum`, and `_count`.
func (h *Histogram) writeTo(w io.Writer) (int64, error) {
	snap := h.Snapshot()
	var written int64
	for i, bound := range snap.Bounds {
		n, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			h.name, formatFloat(bound), snap.Cumulative[i])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	n, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, snap.Count)
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(snap.Sum))
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = fmt.Fprintf(w, "%s_count %d\n", h.name, snap.Count)
	written += int64(n)
	return written, err
}

// formatFloat renders a float the way Prometheus clients expect
// (shortest representation that round-trips).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
