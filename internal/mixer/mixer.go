// Package mixer implements the transaction-privacy mechanism of Section
// 5.3: CoinJoin-style mixing rounds in which several users spend
// equal-denomination coins through a single joint transaction, severing
// the on-chain link between their old and fresh addresses. The package
// also ships the adversary — a taint analyzer that tries to link inputs
// to outputs — so experiment E16 can quantify the traceability the
// paper attributes to unmixed Bitcoin ([34]).
package mixer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/utxo"
)

// Mixing errors, matchable with errors.Is.
var (
	ErrWrongDenomination = errors.New("mixer: input value must equal the round denomination")
	ErrTooFew            = errors.New("mixer: round needs at least two participants")
	ErrDuplicateInput    = errors.New("mixer: input already enrolled")
)

// participant is one user's contribution to a round.
type participant struct {
	key   *cryptoutil.KeyPair
	input utxo.Outpoint
	fresh cryptoutil.Address
}

// Round collects equal-denomination inputs and produces one CoinJoin
// transaction with shuffled outputs.
type Round struct {
	denom        uint64
	fee          uint64 // per participant
	participants []participant
	enrolled     map[utxo.Outpoint]bool
}

// NewRound creates a mixing round for one denomination; each
// participant pays feePerUser from their coin.
func NewRound(denom, feePerUser uint64) *Round {
	return &Round{denom: denom, fee: feePerUser, enrolled: make(map[utxo.Outpoint]bool)}
}

// Join enrolls a participant: the coin they spend (must be exactly the
// denomination) and the fresh address that should receive the mixed
// coin.
func (r *Round) Join(set *utxo.Set, key *cryptoutil.KeyPair, input utxo.Outpoint, fresh cryptoutil.Address) error {
	out, ok := set.Get(input)
	if !ok {
		return fmt.Errorf("mixer: %w", utxo.ErrMissingInput)
	}
	if out.Value != r.denom {
		return fmt.Errorf("%w: got %d, round is %d", ErrWrongDenomination, out.Value, r.denom)
	}
	if r.enrolled[input] {
		return fmt.Errorf("%w: %s:%d", ErrDuplicateInput, input.TxID.Short(), input.Index)
	}
	r.enrolled[input] = true
	r.participants = append(r.participants, participant{key: key, input: input, fresh: fresh})
	return nil
}

// Size returns the number of enrolled participants.
func (r *Round) Size() int { return len(r.participants) }

// Execute builds, signs, and applies the CoinJoin transaction. It
// returns the transaction and the ground-truth input→output mapping
// (known only to the experiment, never derivable from the chain).
func (r *Round) Execute(set *utxo.Set, rng *rand.Rand) (*utxo.Tx, map[int]int, error) {
	k := len(r.participants)
	if k < 2 {
		return nil, nil, fmt.Errorf("%w: have %d", ErrTooFew, k)
	}
	// Canonical input order (by outpoint) so no one's position leaks
	// join order.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := r.participants[order[a]].input, r.participants[order[b]].input
		if pa.TxID != pb.TxID {
			return bytes.Compare(pa.TxID[:], pb.TxID[:]) < 0
		}
		return pa.Index < pb.Index
	})
	// Shuffled output order.
	outOrder := rng.Perm(k)

	tx := &utxo.Tx{}
	truth := make(map[int]int, k) // input position → output position
	for _, pi := range order {
		tx.Ins = append(tx.Ins, utxo.TxIn{Prev: r.participants[pi].input})
	}
	for outPos, pi := range outOrder {
		tx.Outs = append(tx.Outs, utxo.TxOut{
			Value: r.denom - r.fee,
			Owner: r.participants[pi].fresh,
		})
		for inPos, pj := range order {
			if pj == pi {
				truth[inPos] = outPos
			}
		}
	}
	for inPos, pi := range order {
		if err := tx.SignInput(inPos, r.participants[pi].key); err != nil {
			return nil, nil, err
		}
	}
	if _, err := set.Apply(tx); err != nil {
		return nil, nil, err
	}
	return tx, truth, nil
}

// Linkability returns the probability that an adversary observing only
// the chain correctly links one given input of tx to its true output,
// guessing uniformly among outputs of equal value: 1 for an ordinary
// 1-in/1-out spend, 1/k after a k-user CoinJoin.
func Linkability(tx *utxo.Tx) float64 {
	if len(tx.Outs) == 0 {
		return 0
	}
	// Count outputs per value; an input is linkable to any output of
	// the value it plausibly funds. With equal denominations this is
	// all outputs.
	counts := make(map[uint64]int, len(tx.Outs))
	for _, o := range tx.Outs {
		counts[o.Value]++
	}
	// Equal-denomination rounds have a single class.
	worst := 0
	for _, c := range counts {
		if c > worst {
			worst = c
		}
	}
	return 1 / float64(worst)
}

// TraceAttack simulates the adversary over trials: it guesses the
// output for input 0 uniformly among same-valued outputs and scores
// against the ground truth. The return is the empirical success rate —
// which converges to Linkability(tx).
func TraceAttack(tx *utxo.Tx, truth map[int]int, trials int, rng *rand.Rand) float64 {
	if trials <= 0 || len(tx.Outs) == 0 {
		return 0
	}
	want := truth[0]
	candidates := make([]int, 0, len(tx.Outs))
	v := tx.Outs[want].Value
	for i, o := range tx.Outs {
		if o.Value == v {
			candidates = append(candidates, i)
		}
	}
	hits := 0
	for i := 0; i < trials; i++ {
		if candidates[rng.Intn(len(candidates))] == want {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// ChainedLinkability returns the adversary's success probability after
// `rounds` successive k-user mixes: (1/k)^rounds — the paper's "mixer
// networks hide the transaction history" quantified.
func ChainedLinkability(k, rounds int) float64 {
	if k <= 1 {
		return 1
	}
	p := 1.0
	for i := 0; i < rounds; i++ {
		p /= float64(k)
	}
	return p
}
