package mixer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/utxo"
)

// enroll funds k users with denom-valued coins and enrolls them all.
func enroll(t *testing.T, set *utxo.Set, r *Round, k int, denom uint64) []cryptoutil.Address {
	t.Helper()
	fresh := make([]cryptoutil.Address, k)
	for i := 0; i < k; i++ {
		key := cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("user-%d", i)))
		ops := set.Mint(fmt.Sprintf("fund-%d", i), utxo.TxOut{Value: denom, Owner: key.Address()})
		freshKey := cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("fresh-%d", i)))
		fresh[i] = freshKey.Address()
		if err := r.Join(set, key, ops[0], fresh[i]); err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
	return fresh
}

func TestRoundExecute(t *testing.T) {
	set := utxo.NewSet()
	r := NewRound(100, 1)
	fresh := enroll(t, set, r, 5, 100)
	tx, truth, err := r.Execute(set, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(tx.Ins) != 5 || len(tx.Outs) != 5 {
		t.Fatalf("tx shape %d-in %d-out", len(tx.Ins), len(tx.Outs))
	}
	// Every fresh address got denom - fee.
	for _, f := range fresh {
		if got := set.BalanceOf(f); got != 99 {
			t.Fatalf("fresh addr balance = %d, want 99", got)
		}
	}
	// Ground truth is a permutation.
	seen := make(map[int]bool)
	for in, out := range truth {
		if in < 0 || in >= 5 || out < 0 || out >= 5 || seen[out] {
			t.Fatalf("truth not a permutation: %v", truth)
		}
		seen[out] = true
	}
}

func TestJoinRejections(t *testing.T) {
	set := utxo.NewSet()
	r := NewRound(100, 1)
	key := cryptoutil.KeyFromSeed([]byte("u"))
	fresh := cryptoutil.KeyFromSeed([]byte("f")).Address()

	t.Run("missing input", func(t *testing.T) {
		ghost := utxo.Outpoint{TxID: cryptoutil.HashBytes([]byte("x"))}
		if err := r.Join(set, key, ghost, fresh); !errors.Is(err, utxo.ErrMissingInput) {
			t.Fatalf("want ErrMissingInput, got %v", err)
		}
	})
	t.Run("wrong denomination", func(t *testing.T) {
		ops := set.Mint("odd", utxo.TxOut{Value: 55, Owner: key.Address()})
		if err := r.Join(set, key, ops[0], fresh); !errors.Is(err, ErrWrongDenomination) {
			t.Fatalf("want ErrWrongDenomination, got %v", err)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		ops := set.Mint("dup", utxo.TxOut{Value: 100, Owner: key.Address()})
		if err := r.Join(set, key, ops[0], fresh); err != nil {
			t.Fatalf("Join: %v", err)
		}
		if err := r.Join(set, key, ops[0], fresh); !errors.Is(err, ErrDuplicateInput) {
			t.Fatalf("want ErrDuplicateInput, got %v", err)
		}
	})
}

func TestExecuteNeedsTwo(t *testing.T) {
	set := utxo.NewSet()
	r := NewRound(100, 0)
	enroll(t, set, r, 1, 100)
	if _, _, err := r.Execute(set, rand.New(rand.NewSource(1))); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
}

func TestLinkabilityDropsWithParticipants(t *testing.T) {
	prev := 1.0
	for _, k := range []int{2, 4, 8, 16} {
		set := utxo.NewSet()
		r := NewRound(100, 0)
		enroll(t, set, r, k, 100)
		tx, _, err := r.Execute(set, rand.New(rand.NewSource(int64(k))))
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		link := Linkability(tx)
		want := 1 / float64(k)
		if math.Abs(link-want) > 1e-9 {
			t.Fatalf("k=%d linkability %.4f, want %.4f", k, link, want)
		}
		if link >= prev {
			t.Fatalf("linkability must drop with k")
		}
		prev = link
	}
}

func TestUnmixedSpendFullyLinkable(t *testing.T) {
	// A plain 1-in/1-out spend is 100% traceable — the paper's Bitcoin
	// traceability baseline.
	key := cryptoutil.KeyFromSeed([]byte("victim"))
	set := utxo.NewSet()
	ops := set.Mint("plain", utxo.TxOut{Value: 100, Owner: key.Address()})
	tx := &utxo.Tx{
		Ins:  []utxo.TxIn{{Prev: ops[0]}},
		Outs: []utxo.TxOut{{Value: 100, Owner: cryptoutil.KeyFromSeed([]byte("new")).Address()}},
	}
	if err := tx.SignInput(0, key); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if got := Linkability(tx); got != 1 {
		t.Fatalf("plain spend linkability = %.2f, want 1", got)
	}
}

func TestTraceAttackMatchesTheory(t *testing.T) {
	set := utxo.NewSet()
	r := NewRound(100, 0)
	enroll(t, set, r, 8, 100)
	rng := rand.New(rand.NewSource(5))
	tx, truth, err := r.Execute(set, rng)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	rate := TraceAttack(tx, truth, 20_000, rng)
	if math.Abs(rate-0.125) > 0.02 {
		t.Fatalf("empirical attack rate %.4f, want ≈0.125", rate)
	}
}

func TestChainedLinkability(t *testing.T) {
	tests := []struct {
		k, rounds int
		want      float64
	}{
		{k: 4, rounds: 0, want: 1},
		{k: 4, rounds: 1, want: 0.25},
		{k: 4, rounds: 3, want: 1.0 / 64},
		{k: 1, rounds: 5, want: 1},
	}
	for _, tt := range tests {
		if got := ChainedLinkability(tt.k, tt.rounds); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("ChainedLinkability(%d,%d) = %v, want %v", tt.k, tt.rounds, got, tt.want)
		}
	}
}
