// Package bench is the experiment harness: one runner per experiment in
// DESIGN.md's index (E1–E18), each regenerating a table that checks a
// figure, section, or quantitative claim of the paper. cmd/dcsbench is
// the CLI front end; EXPERIMENTS.md records paper-claim vs measured.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner executes one experiment. Scale in (0,1] shrinks the workload
// proportionally (tests use small scales; dcsbench uses 1).
type Runner func(scale float64) (*Table, error)

// Experiments is the registry, keyed by experiment ID.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"E1":  E1Consistency,
		"E2":  E2BitcoinCeiling,
		"E3":  E3ForkChoice,
		"E4":  E4Ordering,
		"E5":  E5DCSScorecard,
		"E6":  E6Proposers,
		"E7":  E7BitcoinNG,
		"E8":  E8Sharding,
		"E9":  E9PaymentChannels,
		"E10": E10DoubleSpend,
		"E11": E11SPV,
		"E12": E12OffChain,
		"E13": E13Bootstrap,
		"E14": E14PBFT,
		"E15": E15StateStructures,
		"E16": E16Mixer,
		"E17": E17Gossip,
		"E18": E18AtomicSwap,
	}
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	m := Experiments()
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric order: E2 < E10.
		return idNum(out[i]) < idNum(out[j])
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, r := range id[1:] {
		n = n*10 + int(r-'0')
	}
	return n
}

// scaled multiplies a base amount by the scale, with a floor.
func scaled(base int, scale float64, minimum int) int {
	n := int(float64(base) * scale)
	if n < minimum {
		n = minimum
	}
	return n
}
