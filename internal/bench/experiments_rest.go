package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dcsledger/internal/consensus/pbft"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/iavl"
	"dcsledger/internal/mixer"
	"dcsledger/internal/mpt"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
	"dcsledger/internal/swap"
	"dcsledger/internal/utxo"
)

// E14PBFT measures the committing-peer protocol (§2.4) across cluster
// sizes and under crash faults.
func E14PBFT(scale float64) (*Table, error) {
	ops := scaled(300, scale, 50)
	t := &Table{
		ID:         "E14",
		Title:      "PBFT throughput/latency vs cluster size and faults (§2.4)",
		PaperClaim: "committing peers execute a PBFT protocol to agree on transaction outcomes",
		Columns:    []string{"n", "f tolerated", "crashed", "executed", "msgs/op", "mean latency"},
	}
	for _, n := range []int{4, 7, 10} {
		for _, crash := range []int{0, (n - 1) / 3} {
			msgsPerOp, lat, executed, err := pbftRun(n, crash, ops)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", (n-1)/3), fmt.Sprintf("%d", crash),
				fmt.Sprintf("%d/%d", executed, ops), fmtF(msgsPerOp, 0), fmtDur(lat))
		}
	}
	t.Note("msgs/op grows O(n²) — the scalability price of Byzantine agreement; f crashed backups do not stop progress")
	return t, nil
}

func pbftRun(n, crash, ops int) (msgsPerOp float64, meanLat time.Duration, executed int, err error) {
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, int64(n*37), p2p.WithLatency(10*time.Millisecond))
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = p2p.NodeName(i)
	}
	var (
		nodes  []*pbft.Node
		doneAt []time.Time
	)
	for _, id := range ids {
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			return 0, 0, 0, err
		}
		id := id
		nodeImpl, err := pbft.NewNode(id, ids, ep, sim, pbft.Config{ViewTimeout: 10 * time.Second},
			func(seq uint64, op []byte) {
				if id == ids[1] { // a backup's view of completion
					doneAt = append(doneAt, sim.Now())
				}
			})
		if err != nil {
			return 0, 0, 0, err
		}
		mux.Handle(pbft.MsgPrefix, nodeImpl.HandleMessage)
		nodes = append(nodes, nodeImpl)
	}
	// Crash the last `crash` backups.
	for i := 0; i < crash; i++ {
		nodes[n-1-i].Stop()
	}
	start := sim.Now()
	var submitted []time.Time
	for i := 0; i < ops; i++ {
		op := []byte(fmt.Sprintf("op-%d", i))
		at := start.Add(time.Duration(i) * 20 * time.Millisecond)
		sim.At(at, func() { _ = nodes[0].Propose(op) })
		submitted = append(submitted, at)
	}
	sim.RunFor(time.Duration(ops)*20*time.Millisecond + 30*time.Second)

	executed = len(doneAt)
	if executed == 0 {
		return 0, 0, 0, fmt.Errorf("bench: pbft executed nothing")
	}
	var totalLat time.Duration
	for i, at := range doneAt {
		if i < len(submitted) {
			totalLat += at.Sub(submitted[i])
		}
	}
	meanLat = totalLat / time.Duration(executed)
	return float64(net.Stats().Sent) / float64(executed), meanLat, executed, nil
}

// E15StateStructures compares the authenticated state stores of §5.4:
// a plain map (no authentication) vs Merkle Patricia trie vs IAVL+.
func E15StateStructures(scale float64) (*Table, error) {
	keys := scaled(100_000, scale, 5000)
	t := &Table{
		ID:         "E15",
		Title:      "State structures: map vs Merkle Patricia trie vs IAVL+ (§5.4)",
		PaperClaim: "new data structures (IAVL+ tree, Merkle Patricia tree) must ensure fast validation and query response",
		Columns:    []string{"structure", "insert", "lookup", "root hash", "authenticated"},
	}
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("account-%08d", i*2654435761)) }

	// Plain map baseline.
	start := time.Now()
	m := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		m[string(keyOf(i))] = keyOf(i)
	}
	insertMap := time.Since(start)
	start = time.Now()
	for i := 0; i < keys; i++ {
		_ = m[string(keyOf(i))]
	}
	lookupMap := time.Since(start)
	t.AddRow("map", fmtDur(insertMap), fmtDur(lookupMap), "-", "no")

	// Merkle Patricia trie.
	start = time.Now()
	trie := mpt.New()
	for i := 0; i < keys; i++ {
		trie = trie.Set(keyOf(i), keyOf(i))
	}
	insertMPT := time.Since(start)
	start = time.Now()
	for i := 0; i < keys; i++ {
		if _, ok := trie.Get(keyOf(i)); !ok {
			return nil, fmt.Errorf("bench: mpt lost a key")
		}
	}
	lookupMPT := time.Since(start)
	start = time.Now()
	_ = trie.RootHash()
	rootMPT := time.Since(start)
	t.AddRow("merkle-patricia", fmtDur(insertMPT), fmtDur(lookupMPT), fmtDur(rootMPT), "yes")

	// IAVL+.
	start = time.Now()
	tree := iavl.New()
	for i := 0; i < keys; i++ {
		tree = tree.Set(keyOf(i), keyOf(i))
	}
	insertIAVL := time.Since(start)
	start = time.Now()
	for i := 0; i < keys; i++ {
		if _, ok := tree.Get(keyOf(i)); !ok {
			return nil, fmt.Errorf("bench: iavl lost a key")
		}
	}
	lookupIAVL := time.Since(start)
	start = time.Now()
	_ = tree.RootHash()
	rootIAVL := time.Since(start)
	t.AddRow("iavl+", fmtDur(insertIAVL), fmtDur(lookupIAVL), fmtDur(rootIAVL), "yes")
	t.Note("%d keys; authenticated structures pay a constant factor for verifiable roots", keys)
	return t, nil
}

// E16Mixer measures transaction traceability before and after CoinJoin
// mixing rounds (§5.3).
func E16Mixer(scale float64) (*Table, error) {
	trials := scaled(20_000, scale, 2000)
	t := &Table{
		ID:         "E16",
		Title:      "Taint-analysis linkability vs mixing (§5.3)",
		PaperClaim: "it is still possible to trace users by their activity; mixer networks hide the transaction history",
		Columns:    []string{"scenario", "participants", "rounds", "theoretical link", "empirical attack"},
	}
	// Baseline: plain spend.
	key := cryptoutil.KeyFromSeed([]byte("e16/plain"))
	set := utxo.NewSet()
	ops := set.Mint("plain", utxo.TxOut{Value: 100, Owner: key.Address()})
	plain := &utxo.Tx{
		Ins:  []utxo.TxIn{{Prev: ops[0]}},
		Outs: []utxo.TxOut{{Value: 100, Owner: addrOf("e16/new")}},
	}
	if err := plain.SignInput(0, key); err != nil {
		return nil, err
	}
	t.AddRow("unmixed spend", "1", "0", fmtF(mixer.Linkability(plain), 3), "1.000")

	rng := rand.New(rand.NewSource(16))
	for _, k := range []int{4, 16} {
		set := utxo.NewSet()
		round := mixer.NewRound(100, 0)
		for i := 0; i < k; i++ {
			uk := cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("e16/u%d/%d", k, i)))
			fops := set.Mint(fmt.Sprintf("fund%d/%d", k, i), utxo.TxOut{Value: 100, Owner: uk.Address()})
			if err := round.Join(set, uk, fops[0], addrOf(fmt.Sprintf("e16/fresh%d/%d", k, i))); err != nil {
				return nil, err
			}
		}
		tx, truth, err := round.Execute(set, rng)
		if err != nil {
			return nil, err
		}
		attack := mixer.TraceAttack(tx, truth, trials, rng)
		t.AddRow("one coinjoin", fmt.Sprintf("%d", k), "1",
			fmtF(mixer.Linkability(tx), 3), fmtF(attack, 3))
	}
	for _, rounds := range []int{1, 3} {
		t.AddRow("chained coinjoins", "16", fmt.Sprintf("%d", rounds),
			fmtF(mixer.ChainedLinkability(16, rounds), 6), "-")
	}
	return t, nil
}

// E17Gossip measures propagation delay and coverage vs gossip fanout
// (§2.3) and the fork rate the propagation delay induces.
func E17Gossip(scale float64) (*Table, error) {
	peers := scaled(64, scale, 16)
	t := &Table{
		ID:         "E17",
		Title:      "Gossip fanout vs propagation delay and fork rate (§2.3, §4.6)",
		PaperClaim: "gossiping broadcasts data among peers using multiple rounds of message exchanges",
		Columns:    []string{"fanout", "coverage", "last delivery", "msgs sent", "pow fork rate"},
	}
	for _, fanout := range []int{1, 2, 4, 8} {
		sim := simclock.NewSimulator()
		net := p2p.NewSimNetwork(sim, int64(fanout), p2p.WithLatency(50*time.Millisecond))
		rng := rand.New(rand.NewSource(17))
		ids := make([]p2p.NodeID, peers)
		for i := range ids {
			ids[i] = p2p.NodeName(i)
		}
		topo := p2p.RandomTopology(ids, 6, rng)
		var (
			reached int
			lastAt  time.Time
		)
		gossipers := make(map[p2p.NodeID]*p2p.Gossiper, peers)
		for i, id := range ids {
			mux := p2p.NewMux()
			ep, err := net.Join(id, mux.Dispatch)
			if err != nil {
				return nil, err
			}
			g := p2p.NewGossiper(ep, topo[id], fanout, rand.New(rand.NewSource(int64(i*13+1))))
			g.Subscribe("blk", func(from p2p.NodeID, payload []byte) {
				reached++
				lastAt = sim.Now()
			})
			mux.Handle(p2p.GossipMsgType, g.HandleMessage)
			gossipers[id] = g
		}
		gossipers[ids[0]].Publish("blk", []byte("block announcement"))
		sim.Run()
		stats := net.Stats()

		// Fork rate of a PoW chain whose interval is 100x the measured
		// propagation delay... measured directly with the same fanout.
		forkRate, err := forkRateWithFanout(fanout, scale)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", fanout),
			fmt.Sprintf("%d/%d", reached, peers),
			fmtDur(lastAt.Sub(time.Unix(0, 0))),
			fmt.Sprintf("%d", stats.Sent),
			fmtF(forkRate, 3))
	}
	t.Note("higher fanout trades bandwidth for faster convergence and fewer simultaneous branches")
	return t, nil
}

func forkRateWithFanout(fanout int, scale float64) (float64, error) {
	c, err := newPoWCluster(powClusterConfig{
		n: 12, seed: int64(170 + fanout), interval: 15 * time.Second,
		hashRate: 2, latency: time.Second, fanout: fanout,
		initialDif: uint64(15 * 2 * 12),
	})
	if err != nil {
		return 0, err
	}
	blocks := scaled(150, scale, 30)
	c.Start()
	c.Sim.RunFor(15 * time.Second * time.Duration(blocks))
	c.Stop()
	c.Sim.RunFor(time.Minute)
	return c.ForkRate(), nil
}

// E18AtomicSwap checks the §4.6 cross-chain swap outcome matrix:
// atomicity holds in every scenario.
func E18AtomicSwap(scale float64) (*Table, error) {
	t := &Table{
		ID:         "E18",
		Title:      "Atomic cross-chain swap outcome matrix (§4.6)",
		PaperClaim: "cross-blockchain communication supports interoperation; swaps are atomic",
		Columns:    []string{"scenario", "alice got asset 2", "bob got asset 1", "refunds", "atomic"},
	}
	type scenarioFn func() (swap.Outcome, error)
	scenarios := []struct {
		name string
		run  scenarioFn
	}{
		{name: "both cooperate", run: func() (swap.Outcome, error) { return runSwap(true, true) }},
		{name: "alice walks away", run: func() (swap.Outcome, error) { return runSwap(false, true) }},
		{name: "bob never locks", run: func() (swap.Outcome, error) { return runSwap(true, false) }},
	}
	for _, sc := range scenarios {
		o, err := sc.run()
		if err != nil {
			return nil, err
		}
		refunds := "-"
		if o.AliceRefunded || o.BobRefunded {
			refunds = fmt.Sprintf("alice=%v bob=%v", o.AliceRefunded, o.BobRefunded)
		}
		t.AddRow(sc.name, fmt.Sprintf("%v", o.AliceGotAsset2), fmt.Sprintf("%v", o.BobGotAsset1),
			refunds, fmt.Sprintf("%v", o.Atomic()))
	}
	t.Note("HTLC deadline ordering (bob's shorter than alice's) is what makes every row atomic")
	return t, nil
}

func runSwap(aliceClaims, bobLocks bool) (swap.Outcome, error) {
	st1, st2 := state.New(), state.New()
	alice := addrOf("e18/alice")
	bob := addrOf("e18/bob")
	st1.Credit(alice, 100)
	st2.Credit(bob, 100)
	chain1 := swap.NewManager(st1, "one")
	chain2 := swap.NewManager(st2, "two")
	secret := []byte("e18 secret")
	lock := swap.HashLock(secret)
	t0 := time.Unix(0, 0)

	h1, err := chain1.Lock(alice, bob, 100, lock, t0.Add(2*time.Hour))
	if err != nil {
		return swap.Outcome{}, err
	}
	var h2 *swap.HTLC
	if bobLocks {
		if h2, err = chain2.Lock(bob, alice, 100, lock, t0.Add(time.Hour)); err != nil {
			return swap.Outcome{}, err
		}
	}
	if aliceClaims && bobLocks {
		if err := chain2.Claim(h2.ID, secret, t0.Add(10*time.Minute)); err != nil {
			return swap.Outcome{}, err
		}
		published, _ := chain2.Get(h2.ID)
		if err := chain1.Claim(h1.ID, published.Preimage, t0.Add(20*time.Minute)); err != nil {
			return swap.Outcome{}, err
		}
	} else {
		// Timeouts: whoever locked refunds after their deadline.
		if bobLocks {
			if err := chain2.Refund(h2.ID, t0.Add(61*time.Minute)); err != nil {
				return swap.Outcome{}, err
			}
		}
		if err := chain1.Refund(h1.ID, t0.Add(121*time.Minute)); err != nil {
			return swap.Outcome{}, err
		}
	}
	return swap.Outcome{
		AliceGotAsset2: st2.Balance(alice) == 100,
		BobGotAsset1:   st1.Balance(bob) == 100,
		AliceRefunded:  st1.Balance(alice) == 100,
		BobRefunded:    st2.Balance(bob) == 100,
	}, nil
}
