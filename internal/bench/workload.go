package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/wallet"
)

// powClusterConfig parameterizes the standard PoW network used by
// several experiments.
type powClusterConfig struct {
	n          int
	seed       int64
	interval   time.Duration
	hashRate   float64 // per miner; keeps real puzzle difficulty low
	latency    time.Duration
	ghost      bool
	maxTxs     int
	fanout     int
	alloc      map[cryptoutil.Address]uint64
	initialDif uint64
}

func newPoWCluster(cfg powClusterConfig) (*node.Cluster, error) {
	if cfg.maxTxs == 0 {
		cfg.maxTxs = 256
	}
	if cfg.latency == 0 {
		cfg.latency = 100 * time.Millisecond
	}
	if cfg.initialDif == 0 {
		cfg.initialDif = 64
	}
	fc := func() consensus.ForkChoice { return consensus.ForkChoice(forkchoice.LongestChain{}) }
	if cfg.ghost {
		fc = func() consensus.ForkChoice { return consensus.ForkChoice(forkchoice.GHOST{}) }
	}
	return node.NewCluster(node.ClusterConfig{
		N: cfg.n,
		Engine: func(i int, key *cryptoutil.KeyPair) consensus.Engine {
			return pow.New(pow.Config{
				TargetInterval:    cfg.interval,
				InitialDifficulty: cfg.initialDif,
				HashRate:          cfg.hashRate,
			}, rand.New(rand.NewSource(cfg.seed+int64(i)+1000)))
		},
		ForkChoice:  fc,
		Alloc:       cfg.alloc,
		Rewards:     incentive.Schedule{InitialReward: 50},
		Seed:        cfg.seed,
		Latency:     cfg.latency,
		Fanout:      cfg.fanout,
		MaxBlockTxs: cfg.maxTxs,
	})
}

// txLoad schedules `count` signed transfers spread uniformly over the
// given span, each submitted at a random peer. Submission times are
// sorted per sender so nonces arrive in order (as a real wallet would
// emit them); interleaving across senders stays random.
func txLoad(c *node.Cluster, wallets []*wallet.Wallet, count int, span time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dest := wallet.FromSeed("bench/sink").Address()
	// Draw per-wallet submission instants, sorted ascending.
	times := make([][]time.Duration, len(wallets))
	for i := 0; i < count; i++ {
		wi := i % len(wallets)
		times[wi] = append(times[wi], time.Duration(rng.Int63n(int64(span))))
	}
	for _, ts := range times {
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	}
	for wi, ts := range times {
		w := wallets[wi]
		for _, at := range ts {
			peer := c.Nodes[rng.Intn(len(c.Nodes))]
			tx, err := w.Transfer(dest, 1, 1+uint64(rng.Intn(3)))
			if err != nil {
				continue
			}
			c.Sim.At(c.Sim.Now().Add(at), func() {
				_ = peer.SubmitTx(tx)
			})
		}
	}
}

// loadWallets derives funded wallets and the matching genesis alloc.
func loadWallets(n int, funds uint64) ([]*wallet.Wallet, map[cryptoutil.Address]uint64) {
	ws := make([]*wallet.Wallet, n)
	alloc := make(map[cryptoutil.Address]uint64, n)
	for i := range ws {
		ws[i] = wallet.FromSeed(fmt.Sprintf("bench/wallet/%d", i))
		alloc[ws[i].Address()] = funds
	}
	return ws, alloc
}

// committedTxs counts user (non-coinbase) transactions on the main
// chain of node 0.
func committedTxs(c *node.Cluster) int {
	n := c.Nodes[0]
	total := 0
	for h := uint64(1); h <= n.Chain().Height(); h++ {
		bh, _ := n.Chain().AtHeight(h)
		b, _ := n.Tree().Get(bh)
		total += len(b.Txs) - 1 // exclude coinbase
	}
	return total
}

// meanBlockInterval measures the average spacing of main-chain blocks.
func meanBlockInterval(c *node.Cluster) time.Duration {
	n := c.Nodes[0]
	h := n.Chain().Height()
	if h < 2 {
		return 0
	}
	firstHash, _ := n.Chain().AtHeight(1)
	lastHash, _ := n.Chain().AtHeight(h)
	first, _ := n.Tree().Get(firstHash)
	last, _ := n.Tree().Get(lastHash)
	return time.Duration(last.Header.Time-first.Header.Time) / time.Duration(h-1)
}

// proposerCounts tallies main-chain blocks per proposer.
func proposerCounts(c *node.Cluster) map[cryptoutil.Address]int {
	n := c.Nodes[0]
	counts := make(map[cryptoutil.Address]int)
	for h := uint64(1); h <= n.Chain().Height(); h++ {
		bh, _ := n.Chain().AtHeight(h)
		b, _ := n.Tree().Get(bh)
		counts[b.Header.Proposer]++
	}
	return counts
}

// gini computes the Gini coefficient of a distribution — the
// decentralization metric of the E5 scorecard (0 = perfectly equal).
func gini(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += v * float64(i+1)
		total += v
	}
	n := float64(len(sorted))
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// fmtDur renders a duration with sensible precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

func fmtF(v float64, prec int) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}
