package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/ordering"
	"dcsledger/internal/consensus/pbft"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/obs"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
	"dcsledger/internal/types"
)

// stageRingCapacity sizes the trace rings for the latency runs: large
// enough to retain every span either pipeline emits at full scale, so
// the summary tables aggregate the complete run, not a suffix.
const stageRingCapacity = 1 << 16

// StageLatency is the dcsbench -stages mode: it runs the same
// transaction workload through the two system designs the paper
// contrasts (Section 2.4) — a permissionless 4-miner PoW network and a
// permissioned solo-orderer + PBFT-committer pipeline — with the event
// tracer attached to every stage, and reports one per-stage latency
// table per run. When traceOut is non-nil, the raw spans of both runs
// are appended to it as JSONL (each line carries run="pow" or
// run="ordering"), ready for jq or a notebook.
//
// Reading the tables: CPU-bound stages (block_verify, state_apply,
// pow_seal) are wall-clock; queueing stages (tx_inclusion,
// ordering_cut, pbft_round) are virtual time on the simulated clock —
// the latency the paper's DCS throughput claims are about.
func StageLatency(scale float64, traceOut io.Writer) ([]*Table, error) {
	powTable, powTracer, err := powStageRun(scale)
	if err != nil {
		return nil, err
	}
	ordTable, ordTracer, err := orderingStageRun(scale)
	if err != nil {
		return nil, err
	}
	if traceOut != nil {
		if err := powTracer.WriteJSONL(traceOut); err != nil {
			return nil, fmt.Errorf("bench: write pow trace: %w", err)
		}
		if err := ordTracer.WriteJSONL(traceOut); err != nil {
			return nil, fmt.Errorf("bench: write ordering trace: %w", err)
		}
	}
	codecTables, err := CodecTables()
	if err != nil {
		return nil, err
	}
	return append([]*Table{powTable, ordTable}, codecTables...), nil
}

// powStageRun drives a 4-miner PoW gossip network under transaction
// load with the tracer attached to every node, engine, and fork choice.
func powStageRun(scale float64) (*Table, *obs.Tracer, error) {
	tracer := obs.NewTracer(stageRingCapacity)
	tracer.SetRun("pow")
	wallets, alloc := loadWallets(8, 1_000_000)
	c, err := node.NewCluster(node.ClusterConfig{
		N: 4,
		Engine: func(i int, key *cryptoutil.KeyPair) consensus.Engine {
			return pow.New(pow.Config{
				TargetInterval:    15 * time.Second,
				InitialDifficulty: 64,
				HashRate:          8,
			}, rand.New(rand.NewSource(9100+int64(i))))
		},
		ForkChoice: func() consensus.ForkChoice {
			return &forkchoice.Instrumented{Inner: forkchoice.LongestChain{}, Tracer: tracer}
		},
		Alloc:       alloc,
		Rewards:     incentive.Schedule{InitialReward: 50},
		Seed:        9100,
		Latency:     100 * time.Millisecond,
		MaxBlockTxs: 256,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, n := range c.Nodes {
		n.SetTracer(tracer)
	}
	span := 10 * time.Minute
	txLoad(c, wallets, scaled(300, scale, 60), span, 9101)
	c.Start()
	c.Sim.RunFor(span)
	c.Stop()
	c.Sim.RunFor(time.Minute)

	t := stageTable("pow (4 miners, 15s interval, longest chain)", tracer)
	t.Note("committed %d txs over height %d", committedTxs(c), c.Nodes[0].Chain().Height())
	return t, tracer, nil
}

// orderingStageRun drives the Hyperledger-style pipeline — solo orderer
// cutting batches into a 4-replica PBFT committer group — with the
// tracer attached to the orderer and every replica.
func orderingStageRun(scale float64) (*Table, *obs.Tracer, error) {
	tracer := obs.NewTracer(stageRingCapacity)
	tracer.SetRun("ordering")
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 9200, p2p.WithLatency(2*time.Millisecond))
	orderer := ordering.NewSolo(ordering.BatchConfig{MaxTxs: 512, Timeout: 50 * time.Millisecond}, sim)
	orderer.SetTracer(tracer)
	ids := []p2p.NodeID{"c0", "c1", "c2", "c3"}
	executed := 0
	for _, id := range ids {
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			return nil, nil, err
		}
		id := id
		committer := ordering.NewCommitter(func(b ordering.Batch) {
			if id == "c0" {
				executed += len(b.Txs)
			}
		})
		replica, err := pbft.NewNode(id, ids, ep, sim, pbft.Config{ViewTimeout: 5 * time.Second}, committer.Apply)
		if err != nil {
			return nil, nil, err
		}
		replica.SetTracer(tracer)
		committer.Attach(replica)
		mux.Handle(pbft.MsgPrefix, replica.HandleMessage)
		orderer.Subscribe(committer.OnBatch)
	}
	txCount := scaled(8000, scale, 800)
	for i := 0; i < txCount; i++ {
		tx := types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i))
		if err := orderer.Submit(tx); err != nil {
			return nil, nil, err
		}
	}
	sim.Run()
	if executed == 0 {
		return nil, nil, fmt.Errorf("bench: ordering pipeline executed nothing")
	}

	t := stageTable("ordering (solo orderer + 4 PBFT committers)", tracer)
	t.Note("executed %d txs in %d batches", executed, orderer.Delivered())
	return t, tracer, nil
}

// stageTable renders a tracer's per-stage summary as an experiment
// table: one row per pipeline stage, nearest-rank p50/p95.
func stageTable(run string, tracer *obs.Tracer) *Table {
	t := &Table{
		ID:         "STAGES",
		Title:      "Pipeline stage latencies: " + run,
		PaperClaim: "PoW trades latency for openness; ordering + PBFT commits in network round-trips (§2.4)",
		Columns:    []string{"stage", "count", "p50", "p95", "mean", "max"},
	}
	summary := tracer.Summary()
	for _, stage := range tracer.Stages() {
		s := summary[stage]
		t.AddRow(stage,
			fmt.Sprintf("%d", s.Count),
			fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.Mean), fmtDur(s.Max))
	}
	if ev := tracer.Evicted(); ev > 0 {
		t.Note("ring evicted %d spans; counts reflect the retained window", ev)
	}
	return t
}
