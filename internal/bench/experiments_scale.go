package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dcsledger/internal/bootstrap"
	"dcsledger/internal/consensus/bitcoinng"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/merkle"
	"dcsledger/internal/payment"
	"dcsledger/internal/shard"
	"dcsledger/internal/state"
	"dcsledger/internal/store"
	"dcsledger/internal/types"
	"dcsledger/internal/wallet"
)

// E7BitcoinNG compares Bitcoin-NG against plain Nakamoto at the same
// key-block interval (§2.4, [14]).
func E7BitcoinNG(scale float64) (*Table, error) {
	hours := scaled(12, scale, 2)
	cfg := bitcoinng.SimConfig{
		KeyInterval:   600 * time.Second,
		MicroInterval: 10 * time.Second,
		TxRate:        30,
		MicroCap:      4000,
		BlockCap:      4000,
		Duration:      time.Duration(hours) * time.Hour,
		Seed:          7,
	}
	ng := bitcoinng.SimulateNG(cfg)
	nak := bitcoinng.SimulateNakamoto(cfg)

	t := &Table{
		ID:         "E7",
		Title:      "Bitcoin-NG vs Nakamoto at a 10-minute key interval (§2.4)",
		PaperClaim: "PoW elects a leader who proposes the next sequence of blocks, decoupling throughput from the PoW interval",
		Columns:    []string{"protocol", "committed", "tps", "mean latency", "key blocks", "microblocks"},
	}
	t.AddRow("nakamoto", fmt.Sprintf("%d", nak.Committed), fmtF(nak.ThroughputTPS, 1),
		fmtDur(nak.MeanLatency), fmt.Sprintf("%d", nak.KeyBlocks), "0")
	t.AddRow("bitcoin-ng", fmt.Sprintf("%d", ng.Committed), fmtF(ng.ThroughputTPS, 1),
		fmtDur(ng.MeanLatency), fmt.Sprintf("%d", ng.KeyBlocks), fmt.Sprintf("%d", ng.Microblocks))
	t.Note("same tx arrival process; NG commits every 10s microblock instead of every 10m key block")
	return t, nil
}

// E8Sharding measures throughput scaling with shard count and the
// cross-shard penalty (§5.4, [38]).
func E8Sharding(scale float64) (*Table, error) {
	txCount := scaled(4000, scale, 400)
	t := &Table{
		ID:         "E8",
		Title:      "Sharded execution speedup vs cross-shard ratio (§5.4)",
		PaperClaim: "performance improves by introducing parallelism, such as sharding",
		Columns:    []string{"shards", "cross-shard %", "total ops", "makespan ops", "speedup"},
	}
	baseline := uint64(0)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, crossPct := range []int{0, 30} {
			rng := rand.New(rand.NewSource(int64(shards*100 + crossPct)))
			c := shard.New(shards)
			// Pre-derive users bucketed per shard so the cross-shard
			// ratio is controllable.
			users := make([][]string, shards)
			for i := 0; users[c.ShardOf(addrOf(fmt.Sprintf("e8/u%d", i)))] == nil ||
				shortest(users) < 8; i++ {
				seed := fmt.Sprintf("e8/u%d", i)
				s := c.ShardOf(addrOf(seed))
				users[s] = append(users[s], seed)
				if i > 10000 {
					break
				}
			}
			nonces := make(map[string]uint64)
			for i := 0; i < txCount; i++ {
				srcShard := rng.Intn(shards)
				fromSeed := users[srcShard][rng.Intn(len(users[srcShard]))]
				dstShard := srcShard
				if shards > 1 && rng.Intn(100) < crossPct {
					dstShard = (srcShard + 1 + rng.Intn(shards-1)) % shards
				}
				toSeed := users[dstShard][rng.Intn(len(users[dstShard]))]
				from := cryptoutil.KeyFromSeed([]byte(fromSeed))
				tx := types.NewTransfer(from.Address(), addrOf(toSeed), 1, 0, nonces[fromSeed])
				nonces[fromSeed]++
				if err := tx.Sign(from); err != nil {
					return nil, err
				}
				c.Credit(from.Address(), 1)
				if _, err := c.Transfer(tx); err != nil {
					return nil, fmt.Errorf("bench: shard transfer: %w", err)
				}
			}
			makespan := c.Rounds()
			if shards == 1 && crossPct == 0 {
				baseline = makespan
			}
			speedup := float64(baseline) / float64(makespan)
			t.AddRow(fmt.Sprintf("%d", shards), fmt.Sprintf("%d", crossPct),
				fmt.Sprintf("%d", c.TotalOps()), fmt.Sprintf("%d", makespan), fmtF(speedup, 2))
		}
	}
	t.Note("speedup = 1-shard makespan / k-shard makespan; cross-shard txs cost an op on both shards")
	return t, nil
}

func addrOf(seed string) cryptoutil.Address {
	return cryptoutil.KeyFromSeed([]byte(seed)).Address()
}

func shortest(buckets [][]string) int {
	m := 1 << 30
	for _, b := range buckets {
		if len(b) < m {
			m = len(b)
		}
	}
	return m
}

// E9PaymentChannels compares on-chain throughput with off-chain channel
// throughput and counts the on-chain footprint (§5.2, §5.4, [30]).
func E9PaymentChannels(scale float64) (*Table, error) {
	payments := scaled(20_000, scale, 2000)
	st := state.New()
	a := cryptoutil.KeyFromSeed([]byte("e9/a"))
	b := cryptoutil.KeyFromSeed([]byte("e9/b"))
	st.Credit(a.Address(), 1_000_000)
	st.Credit(b.Address(), 1_000_000)

	ch, err := payment.Open(st, a, b, 500_000, 500_000)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < payments; i++ {
		if _, err := ch.Pay(i%2 == 0, 1); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	if err := ch.CooperativeClose(st); err != nil {
		return nil, err
	}
	offTPS := float64(payments) / elapsed.Seconds()
	onChainCeiling := 4000.0 / 600 // the E2 Bitcoin ceiling

	t := &Table{
		ID:         "E9",
		Title:      "Off-chain payment channels vs on-chain commits (§5.4)",
		PaperClaim: "offload transactions outside the blockchain, as in the Lightning network",
		Columns:    []string{"path", "payments", "tps", "on-chain txs"},
	}
	t.AddRow("on-chain (bitcoin-like ceiling)", fmt.Sprintf("%d", payments), fmtF(onChainCeiling, 1),
		fmt.Sprintf("%d", payments))
	t.AddRow("payment channel", fmt.Sprintf("%d", payments), fmtF(offTPS, 0), "2 (open+close)")

	// Multi-hop routing across a 4-node channel graph.
	hops, err := multiHopDemo(scaled(1000, scale, 100))
	if err != nil {
		return nil, err
	}
	t.AddRow("3-hop HTLC route", fmt.Sprintf("%d", hops), "-", "6 (3 channels)")
	t.Note("channel tps is wall-clock signing speed on this host; on-chain row is the E2 ceiling")
	return t, nil
}

func multiHopDemo(n int) (int, error) {
	st := state.New()
	keys := make([]*cryptoutil.KeyPair, 4)
	for i := range keys {
		keys[i] = cryptoutil.KeyFromSeed([]byte{byte(i), 'e', '9'})
		st.Credit(keys[i].Address(), 1_000_000)
	}
	var chans []*payment.Channel
	for i := 0; i < 3; i++ {
		ch, err := payment.Open(st, keys[i], keys[i+1], 500_000, 500_000)
		if err != nil {
			return 0, err
		}
		chans = append(chans, ch)
	}
	done := 0
	for i := 0; i < n; i++ {
		secret := []byte(fmt.Sprintf("secret-%d", i))
		if err := payment.RoutePayment(chans, []bool{true, true, true}, 1, secret, payment.HashLock(secret)); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// E10DoubleSpend Monte-Carlos the §2.4 attack: the probability that an
// attacker with hash share q rewrites a transaction buried under z
// confirmations.
func E10DoubleSpend(scale float64) (*Table, error) {
	trials := scaled(20_000, scale, 2000)
	t := &Table{
		ID:         "E10",
		Title:      "Double-spend success vs attacker share and confirmation depth (§2.4)",
		PaperClaim: "altering data requires >51% of the network; trust in a block grows with its age",
		Columns:    []string{"attacker q", "z=1", "z=2", "z=4", "z=6"},
	}
	for _, q := range []float64{0.10, 0.25, 0.33, 0.45, 0.51} {
		row := []string{fmtF(q, 2)}
		for _, z := range []int{1, 2, 4, 6} {
			rng := rand.New(rand.NewSource(int64(q*100)*31 + int64(z)))
			wins := 0
			for trial := 0; trial < trials; trial++ {
				if doubleSpendRace(rng, q, z) {
					wins++
				}
			}
			row = append(row, fmtF(float64(wins)/float64(trials), 4))
		}
		t.AddRow(row...)
	}
	t.Note("success decays exponentially in z for q<0.5 and is certain for q>0.5 — the 51 percent boundary")
	return t, nil
}

// doubleSpendRace simulates one attack: the attacker must catch up from
// z blocks behind; each step one side finds the next block.
func doubleSpendRace(rng *rand.Rand, q float64, z int) bool {
	deficit := z
	for step := 0; step < 1_000_000; step++ {
		if rng.Float64() < q {
			deficit--
		} else {
			deficit++
		}
		if deficit < 0 {
			return true // attacker chain longer: history rewritten
		}
		if deficit > 200 {
			// Catch-up probability from here is ((1-q)/q)^200 — below
			// 1e-3 even at q=0.51.
			return false
		}
	}
	return false
}

// E11SPV measures Merkle proof size and light-client storage vs block
// size (§2.2, Fig. 2).
func E11SPV(scale float64) (*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "SPV proof size vs transactions per block (§2.2, Fig. 2)",
		PaperClaim: "Merkle trees provide fast lookups of transaction inclusion for lightweight clients",
		Columns:    []string{"txs/block", "proof depth", "proof bytes", "full block bytes", "ratio"},
	}
	maxN := scaled(16384, scale, 1024)
	for n := 16; n <= maxN; n *= 4 {
		leaves := make([]cryptoutil.Hash, n)
		for i := range leaves {
			leaves[i] = cryptoutil.HashUint64("e11", uint64(i))
		}
		tree := merkle.NewTree(leaves)
		p, err := tree.Prove(n / 2)
		if err != nil {
			return nil, err
		}
		// A transaction is ~200 encoded bytes.
		blockBytes := n * 200
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(p.Siblings)),
			fmt.Sprintf("%d", p.Size()), fmt.Sprintf("%d", blockBytes),
			fmtF(float64(p.Size())/float64(blockBytes), 5))
	}
	t.Note("proof grows with log2(n); the full block grows linearly")
	return t, nil
}

// E12OffChain quantifies the storage trade of §4.5: on-chain bytes per
// peer with and without off-chain anchoring.
func E12OffChain(scale float64) (*Table, error) {
	records := scaled(10_000, scale, 1000)
	const recordSize = 1024
	const peers = 16

	onChainPerPeer := records * recordSize
	anchorsPerPeer := records * cryptoutil.HashSize

	// Demonstrate the integrity/durability trade concretely.
	off := store.NewOffChainStore()
	payload := make([]byte, recordSize)
	anchors := make([]cryptoutil.Hash, records)
	for i := range anchors {
		payload[0] = byte(i)
		payload[1] = byte(i >> 8)
		anchors[i] = off.Put(payload)
	}
	// Drop one blob: the anchor survives, the data does not.
	off.Drop(anchors[0])
	_, errMissing := off.Get(anchors[0])
	// Corrupt one blob: detected against the anchor.
	off.Corrupt(anchors[1], []byte("tampered"))
	_, errCorrupt := off.Get(anchors[1])

	t := &Table{
		ID:         "E12",
		Title:      "On-chain vs off-chain data storage (§4.5)",
		PaperClaim: "off-chain storage lowers peer overhead; the trade-off is that off-chain data is no longer durable",
		Columns:    []string{"placement", "bytes/peer", "bytes network-wide", "durable", "integrity"},
	}
	t.AddRow("on-chain", fmt.Sprintf("%d", onChainPerPeer),
		fmt.Sprintf("%d", onChainPerPeer*peers), "yes (replicated)", "yes")
	t.AddRow("off-chain + anchor", fmt.Sprintf("%d", anchorsPerPeer),
		fmt.Sprintf("%d", anchorsPerPeer*peers+off.Size()), "no", "verifiable")
	t.Note("dropped blob detected: %v; corrupted blob detected: %v", errMissing != nil, errCorrupt != nil)
	t.Note("%d records x %d bytes; %d peers each replicate the chain", records, recordSize, peers)
	return t, nil
}

// E13Bootstrap compares full-download and fast-sync joining costs
// (§5.4).
func E13Bootstrap(scale float64) (*Table, error) {
	minutes := scaled(120, scale, 20)
	alice := wallet.FromSeed("alice")
	bobAddr := addrOf("bob")
	alloc := map[cryptoutil.Address]uint64{alice.Address(): 10_000_000}
	c, err := newPoWCluster(powClusterConfig{
		n: 1, seed: 131, interval: 5 * time.Second, hashRate: 12.8, alloc: alloc,
	})
	if err != nil {
		return nil, err
	}
	c.Start()
	for i := 0; i < minutes; i++ {
		tx, err := alice.Transfer(bobAddr, 10, 1)
		if err != nil {
			return nil, err
		}
		_ = c.Nodes[0].SubmitTx(tx)
		c.Sim.RunFor(time.Minute)
	}
	c.Stop()
	src := c.Nodes[0]

	genesisState := state.New()
	for a, v := range alloc {
		genesisState.Credit(a, v)
	}
	rewards := incentive.Schedule{InitialReward: 50}
	_, full, err := bootstrap.FullSync(src, genesisState, rewards)
	if err != nil {
		return nil, err
	}
	_, fast, err := bootstrap.FastSync(src, rewards, 16)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:         "E13",
		Title:      "New-peer bootstrap: full download vs fast-sync (§5.4)",
		PaperClaim: "a more efficient protocol is needed to bootstrap new miners without a full download",
		Columns:    []string{"protocol", "blocks", "headers", "txs re-executed", "bytes"},
	}
	t.AddRow("full download", fmt.Sprintf("%d", full.Blocks), "-",
		fmt.Sprintf("%d", full.TxsExecuted), fmt.Sprintf("%d", full.Bytes))
	t.AddRow("fast-sync (pivot lag 16)", fmt.Sprintf("%d", fast.Blocks),
		fmt.Sprintf("%d", fast.Headers), fmt.Sprintf("%d", fast.TxsExecuted),
		fmt.Sprintf("%d", fast.Bytes))
	t.Note("chain height %d; both syncs end at the identical verified state root", src.Chain().Height())
	return t, nil
}
