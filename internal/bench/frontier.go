package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dcsledger/internal/scenario"
)

// pbftFrontierCap bounds the PBFT rows of the frontier sweep: the
// protocol's O(n²) message complexity makes replica counts past a few
// hundred a simulation-time problem, not a measurement.
const pbftFrontierCap = 256

// FrontierTable runs the adversarial scenario preset (churn, a healing
// half/half partition, one Byzantine actor, and — durable pow — a WAL
// crash-recovery) for each requested family and size, and reports the
// DCS frontier: agreement depth, fork rate, finality latency,
// throughput, and messages per commit under attack.
//
// Every cell is run twice with the same seed; a fingerprint mismatch —
// a determinism violation — or an invariant violation is an error, not
// a number. dataDir, when non-empty, makes the pow runs durable (each
// run gets a fresh subdirectory).
func FrontierTable(families []string, sizes []int, seed int64, dataDir string) (*Table, error) {
	t := &Table{
		ID:    "FRONTIER",
		Title: "DCS frontier under adversarial scenarios (scenario harness)",
		Columns: []string{"family", "nodes", "height", "committed", "fork_rate",
			"finality", "tput/s", "msgs/commit", "fingerprint", "result"},
	}
	for _, fam := range families {
		for _, n := range sizes {
			if fam == scenario.FamilyPBFT && n > pbftFrontierCap {
				t.Note("pbft skipped at n=%d (O(n²) messaging; capped at %d replicas)", n, pbftFrontierCap)
				continue
			}
			rep, err := runFrontierCell(fam, n, seed, dataDir)
			if err != nil {
				return nil, err
			}
			result := "PASS"
			if !rep.Passed() {
				result = fmt.Sprintf("FAIL (%d violations)", len(rep.Violations))
			}
			t.AddRow(fam, fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", rep.Height),
				fmt.Sprintf("%d", rep.Committed),
				fmt.Sprintf("%.4f", rep.ForkRate),
				rep.FinalityLatency.Round(time.Millisecond).String(),
				fmt.Sprintf("%.3f", rep.Throughput),
				fmt.Sprintf("%.1f", rep.MsgsPerCommit),
				rep.Fingerprint()[:16],
				result)
		}
	}
	t.Note("each cell is two identically-seeded runs; fingerprints matched bit-for-bit (determinism contract)")
	return t, nil
}

// runFrontierCell executes one (family, size) cell twice and enforces
// the determinism contract before handing back the report.
func runFrontierCell(fam string, n int, seed int64, dataDir string) (*scenario.Report, error) {
	run := func(tag string) (*scenario.Report, error) {
		dir := ""
		if fam == scenario.FamilyPoW && dataDir != "" {
			dir = filepath.Join(dataDir, fmt.Sprintf("%s-%d-%s", fam, n, tag))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		return scenario.Run(scenario.Adversarial(fam, n, seed, dir))
	}
	r1, err := run("run1")
	if err != nil {
		return nil, fmt.Errorf("frontier %s n=%d: %w", fam, n, err)
	}
	r2, err := run("run2")
	if err != nil {
		return nil, fmt.Errorf("frontier %s n=%d (rerun): %w", fam, n, err)
	}
	if f1, f2 := r1.Fingerprint(), r2.Fingerprint(); f1 != f2 {
		return nil, fmt.Errorf("frontier %s n=%d: nondeterministic: %s vs %s\nrun1:\n%s\nrun2:\n%s",
			fam, n, f1, f2, r1, r2)
	}
	return r1, nil
}
