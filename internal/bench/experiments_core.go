package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dcsledger/internal/consensus/ordering"
	"dcsledger/internal/consensus/pbft"
	"dcsledger/internal/consensus/poet"
	"dcsledger/internal/consensus/pos"
	"dcsledger/internal/consensus/raft"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/p2p"
	"dcsledger/internal/simclock"
	"dcsledger/internal/types"
)

// E1Consistency exercises Figure 1 end to end: a gossiping PoW network
// whose peers all converge on one replicated chain.
func E1Consistency(scale float64) (*Table, error) {
	peers := scaled(16, scale, 4)
	txs := scaled(200, scale, 20)
	wallets, alloc := loadWallets(8, 1_000_000)
	c, err := newPoWCluster(powClusterConfig{
		n: peers, seed: 101, interval: 15 * time.Second, hashRate: 8, alloc: alloc,
	})
	if err != nil {
		return nil, err
	}
	span := 10 * time.Minute
	txLoad(c, wallets, txs, span, 202)
	c.Start()
	c.Sim.RunFor(span)
	c.Stop()
	c.Sim.RunFor(time.Minute)

	height := c.Nodes[0].Chain().Height()
	prefix := c.ConsistentPrefix()
	identical := 0
	head := c.Nodes[0].Chain().Head()
	for _, n := range c.Nodes {
		if n.Chain().Head() == head {
			identical++
		}
	}
	st := c.Net.Stats()

	t := &Table{
		ID:         "E1",
		Title:      "Replicated-ledger consistency over gossip (Fig. 1)",
		PaperClaim: "each peer maintains a consistent copy of the ledger (§2.1)",
		Columns:    []string{"peers", "height", "consistent prefix", "identical heads", "committed txs", "msgs delivered"},
	}
	t.AddRow(
		fmt.Sprintf("%d", peers),
		fmt.Sprintf("%d", height),
		fmt.Sprintf("%d", prefix),
		fmt.Sprintf("%d/%d", identical, peers),
		fmt.Sprintf("%d", committedTxs(c)),
		fmt.Sprintf("%d", st.Delivered),
	)
	t.Note("prefix within 2 blocks of height = agreement up to in-flight tips")
	return t, nil
}

// E2BitcoinCeiling reproduces §2.7's Bitcoin analysis: retargeting pins
// the interval at the target regardless of hash power, so throughput is
// a constant ceiling (block size / interval) instead of growing.
func E2BitcoinCeiling(scale float64) (*Table, error) {
	const (
		interval = 600 * time.Second
		blockCap = 4000 // ⇒ ceiling ≈ 6.7 tps, Bitcoin's "7 tps"
		miners   = 6
	)
	t := &Table{
		ID:         "E2",
		Title:      "PoW throughput vs hash power (Bitcoin is DC, §2.7)",
		PaperClaim: "fixed to one block per 10 minutes ⇒ ~7 tps; more hash power does not increase throughput",
		Columns:    []string{"hash power", "mean interval", "ceiling tps", "offered tps", "committed tps"},
	}
	hours := scaled(14, scale, 3)
	for _, mult := range []float64{1, 4, 16} {
		wallets, alloc := loadWallets(8, 1_000_000)
		c, err := newPoWCluster(powClusterConfig{
			n: miners, seed: 300 + int64(mult), interval: interval,
			hashRate: 2 * mult, alloc: alloc, maxTxs: blockCap,
			initialDif: uint64(600 * 2 * mult * float64(miners)),
		})
		if err != nil {
			return nil, err
		}
		span := time.Duration(hours) * time.Hour
		const offered = 0.5 // tps, below the ceiling
		txLoad(c, wallets, int(offered*span.Seconds()), span, 41)
		c.Start()
		c.Sim.RunFor(span)
		c.Stop()
		c.Sim.RunFor(30 * time.Minute)

		mean := meanBlockInterval(c)
		ceiling := float64(blockCap) / mean.Seconds()
		committed := float64(committedTxs(c)) / span.Seconds()
		t.AddRow(
			fmt.Sprintf("x%.0f", mult),
			fmtDur(mean),
			fmtF(ceiling, 2),
			fmtF(offered, 2),
			fmtF(committed, 2),
		)
	}
	t.Note("retargeting holds the interval near 10m at every hash power; ceiling stays ≈6.7 tps")
	return t, nil
}

// E3ForkChoice reproduces §2.7's Ethereum analysis: shortening the
// block interval raises throughput but multiplies branches; GHOST keeps
// selection stable where longest-chain wobbles.
func E3ForkChoice(scale float64) (*Table, error) {
	t := &Table{
		ID:         "E3",
		Title:      "Fork rate vs block interval; longest-chain vs GHOST (§2.7)",
		PaperClaim: "10–40s blocks increase branch occurrence; Ethereum mitigates with GHOST",
		Columns:    []string{"interval", "rule", "height", "stale blocks", "fork rate", "reorgs", "blocks/hour"},
	}
	blocks := scaled(300, scale, 40)
	for _, interval := range []time.Duration{600 * time.Second, 40 * time.Second, 10 * time.Second} {
		for _, ghost := range []bool{false, true} {
			c, err := newPoWCluster(powClusterConfig{
				n: 10, seed: 500, interval: interval,
				hashRate: 2, latency: 2 * time.Second, ghost: ghost,
				initialDif: uint64(interval.Seconds() * 2 * 10),
			})
			if err != nil {
				return nil, err
			}
			span := interval * time.Duration(blocks)
			c.Start()
			c.Sim.RunFor(span)
			c.Stop()
			c.Sim.RunFor(time.Minute)

			n0 := c.Nodes[0]
			total := n0.Tree().Len() - 1
			main := int(n0.Chain().Height())
			rule := "longest"
			if ghost {
				rule = "ghost"
			}
			t.AddRow(
				fmtDur(interval),
				rule,
				fmt.Sprintf("%d", main),
				fmt.Sprintf("%d", total-main),
				fmtF(c.ForkRate(), 3),
				fmt.Sprintf("%d", n0.Metrics().Reorgs),
				fmtF(float64(main)/span.Hours(), 1),
			)
		}
	}
	t.Note("fork rate grows as the interval approaches the 2s propagation latency")
	return t, nil
}

// E4Ordering reproduces §2.7's Hyperledger analysis: a permissioned
// ordering service delivers orders of magnitude more throughput than
// proof-based consensus.
func E4Ordering(scale float64) (*Table, error) {
	t := &Table{
		ID:         "E4",
		Title:      "Ordering-service throughput vs batch size (§2.7)",
		PaperClaim: "ordering service instead of PoW ⇒ throughput above 10K tps",
		Columns:    []string{"orderer", "batch", "txs", "batches", "wall tps", "virtual latency"},
	}
	txCount := scaled(50_000, scale, 2000)

	// Solo orderer: pure-CPU wall-clock throughput.
	for _, batch := range []int{16, 256, 1024} {
		sim := simclock.NewSimulator()
		solo := ordering.NewSolo(ordering.BatchConfig{MaxTxs: batch, Timeout: time.Second}, sim)
		delivered := 0
		solo.Subscribe(func(b ordering.Batch) { delivered += len(b.Txs) })
		txs := make([]*types.Transaction, txCount)
		for i := range txs {
			txs[i] = types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i))
		}
		start := time.Now()
		for _, tx := range txs {
			if err := solo.Submit(tx); err != nil {
				return nil, err
			}
		}
		sim.RunFor(2 * time.Second) // flush the final partial batch
		elapsed := time.Since(start)
		tps := float64(delivered) / elapsed.Seconds()
		t.AddRow("solo", fmt.Sprintf("%d", batch), fmt.Sprintf("%d", delivered),
			fmt.Sprintf("%d", int(solo.Delivered())), fmtF(tps, 0), "-")
	}

	// Raft orderer: replicated; throughput and latency under virtual
	// network delay.
	raftTxs := scaled(4000, scale, 400)
	for _, batch := range []int{64, 512} {
		tps, lat, err := raftOrderingRun(raftTxs, batch)
		if err != nil {
			return nil, err
		}
		t.AddRow("raft(3)", fmt.Sprintf("%d", batch), fmt.Sprintf("%d", raftTxs), "-",
			fmtF(tps, 0), fmtDur(lat))
	}
	t.Note("solo tps is wall-clock on this host; raft tps/latency are simulated with 5ms links")
	return t, nil
}

func raftOrderingRun(txCount, batch int) (tps float64, meanLatency time.Duration, err error) {
	sim := simclock.NewSimulator()
	cluster, err := newRaftOrderers(sim, 3, ordering.BatchConfig{MaxTxs: batch, Timeout: 100 * time.Millisecond})
	if err != nil {
		return 0, 0, err
	}
	var (
		delivered int
		lastAt    time.Time
	)
	cluster[0].Subscribe(func(b ordering.Batch) {
		delivered += len(b.Txs)
		lastAt = sim.Now()
	})
	// Elect a leader.
	var leader *ordering.Raft
	for i := 0; i < 100 && leader == nil; i++ {
		sim.RunFor(100 * time.Millisecond)
		for _, o := range cluster {
			if o.IsLeader() {
				leader = o
			}
		}
	}
	if leader == nil {
		return 0, 0, fmt.Errorf("bench: no raft leader")
	}
	start := sim.Now()
	// Offer txs continuously at ~2000 tps virtual.
	interval := 500 * time.Microsecond
	for i := 0; i < txCount; i++ {
		tx := types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i))
		at := start.Add(time.Duration(i) * interval)
		sim.At(at, func() { _ = leader.Submit(tx) })
	}
	sim.RunFor(time.Duration(txCount)*interval + 5*time.Second)
	if delivered == 0 {
		return 0, 0, fmt.Errorf("bench: raft ordering delivered nothing")
	}
	elapsed := lastAt.Sub(start)
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	// Mean latency approximated by batch cut timeout + replication RTT.
	return float64(delivered) / elapsed.Seconds(), lastAt.Sub(start) / time.Duration(delivered/batch+1), nil
}

// newRaftOrderers wires n raft-backed orderers on a simulated network.
func newRaftOrderers(sim *simclock.Simulator, n int, cfg ordering.BatchConfig) ([]*ordering.Raft, error) {
	net := p2p.NewSimNetwork(sim, 900, p2p.WithLatency(5*time.Millisecond))
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = p2p.NodeName(i)
	}
	out := make([]*ordering.Raft, 0, n)
	for i, id := range ids {
		var peers []p2p.NodeID
		for _, other := range ids {
			if other != id {
				peers = append(peers, other)
			}
		}
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			return nil, err
		}
		o := ordering.NewRaft(cfg, sim)
		nodeImpl := raft.NewNode(id, peers, ep, sim, rand.New(rand.NewSource(int64(i+1))),
			raft.Config{ElectionTimeout: 100 * time.Millisecond}, o.Apply)
		o.Attach(nodeImpl)
		mux.Handle(raft.MsgPrefix, nodeImpl.HandleMessage)
		nodeImpl.Start()
		out = append(out, o)
	}
	return out, nil
}

// E5DCSScorecard runs the three §2.7 configurations side by side and
// scores each on the DCS axes.
func E5DCSScorecard(scale float64) (*Table, error) {
	t := &Table{
		ID:         "E5",
		Title:      "DCS scorecard: Bitcoin-like vs Ethereum-like vs Fabric-like (§2.7)",
		PaperClaim: "a blockchain system provides only two of Decentralization, Consistency, Scalability",
		Columns:    []string{"config", "membership", "proposer gini", "fork rate", "finality", "ceiling tps", "balance"},
	}
	blocks := scaled(200, scale, 30)

	// Bitcoin-like: PoW 600s + longest chain.
	// Ethereum-like: PoW 15s + GHOST.
	type powCase struct {
		name     string
		interval time.Duration
		ghost    bool
		maxTxs   int
		balance  string
	}
	for _, pc := range []powCase{
		{name: "bitcoin-like", interval: 600 * time.Second, ghost: false, maxTxs: 4000, balance: "DC"},
		{name: "ethereum-like", interval: 15 * time.Second, ghost: true, maxTxs: 300, balance: "DC→S"},
	} {
		c, err := newPoWCluster(powClusterConfig{
			n: 8, seed: 700, interval: pc.interval, hashRate: 2,
			latency: time.Second, ghost: pc.ghost, maxTxs: pc.maxTxs,
			initialDif: uint64(pc.interval.Seconds() * 2 * 8),
		})
		if err != nil {
			return nil, err
		}
		c.Start()
		c.Sim.RunFor(pc.interval * time.Duration(blocks))
		c.Stop()
		c.Sim.RunFor(time.Minute)

		counts := proposerCounts(c)
		shares := make([]float64, 0, len(c.Nodes))
		for _, n := range c.Nodes {
			shares = append(shares, float64(counts[n.Address()]))
		}
		mean := meanBlockInterval(c)
		ceiling := float64(pc.maxTxs) / mean.Seconds()
		t.AddRow(pc.name, "open", fmtF(gini(shares), 2), fmtF(c.ForkRate(), 3),
			fmtDur(6*mean), fmtF(ceiling, 1), pc.balance)
	}

	// Fabric-like: solo ordering + PBFT committers. No forks by
	// construction; throughput from the E4 machinery.
	fabricTPS, err := fabricThroughput(scaled(20_000, scale, 2000))
	if err != nil {
		return nil, err
	}
	t.AddRow("fabric-like", "permissioned", "1.00", "0.000", "immediate", fmtF(fabricTPS, 0), "CS")
	t.Note("proposer gini 1.00 for fabric-like: a single ordering service proposes every block")
	return t, nil
}

// fabricThroughput measures solo-ordering + PBFT-commit wall throughput.
func fabricThroughput(txCount int) (float64, error) {
	sim := simclock.NewSimulator()
	net := p2p.NewSimNetwork(sim, 71, p2p.WithLatency(2*time.Millisecond))
	orderer := ordering.NewSolo(ordering.BatchConfig{MaxTxs: 512, Timeout: 50 * time.Millisecond}, sim)
	ids := []p2p.NodeID{"c0", "c1", "c2", "c3"}
	executed := 0
	for _, id := range ids {
		mux := p2p.NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			return 0, err
		}
		id := id
		c := ordering.NewCommitter(func(b ordering.Batch) {
			if id == "c0" {
				executed += len(b.Txs)
			}
		})
		nodeImpl, err := pbft.NewNode(id, ids, ep, sim, pbft.Config{ViewTimeout: 5 * time.Second}, c.Apply)
		if err != nil {
			return 0, err
		}
		c.Attach(nodeImpl)
		mux.Handle(pbft.MsgPrefix, nodeImpl.HandleMessage)
		orderer.Subscribe(c.OnBatch)
	}
	start := time.Now()
	for i := 0; i < txCount; i++ {
		tx := types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i))
		if err := orderer.Submit(tx); err != nil {
			return 0, err
		}
	}
	sim.Run()
	elapsed := time.Since(start)
	if executed == 0 {
		return 0, fmt.Errorf("bench: fabric pipeline executed nothing")
	}
	return float64(executed) / elapsed.Seconds(), nil
}

// E6Proposers compares the work and fairness of the three proposal
// families under skewed resource distributions (§2.4, §5.4).
func E6Proposers(scale float64) (*Table, error) {
	rounds := scaled(2000, scale, 300)
	const validators = 16
	t := &Table{
		ID:         "E6",
		Title:      "Proposal work and fairness: PoW vs PoS vs PoET (§5.4)",
		PaperClaim: "PoW's computational costs are prohibitive; PoS/PoET preserve safety at a fraction of the work",
		Columns:    []string{"engine", "resource skew", "wins gini", "resource gini", "work/block"},
	}
	// Resource distribution: validator i holds 2^(i/4) units (skewed).
	resources := make([]float64, validators)
	for i := range resources {
		resources[i] = float64(uint64(1) << (i / 4))
	}

	// PoW: round winner = min exponential(difficulty/hashrate).
	rng := rand.New(rand.NewSource(61))
	const difficulty = 1 << 22 // expected hashes per block
	powWins := make([]float64, validators)
	for r := 0; r < rounds; r++ {
		best, bestT := 0, 1e18
		for i, h := range resources {
			sample := rng.ExpFloat64() * difficulty / h
			if sample < bestT {
				best, bestT = i, sample
			}
		}
		powWins[best]++
	}
	t.AddRow("pow", "2^(i/4) hash", fmtF(gini(powWins), 2), fmtF(gini(resources), 2),
		fmt.Sprintf("%d hashes", difficulty))

	// PoS: stake-weighted verifiable draw.
	stakes := make(map[cryptoutil.Address]uint64, validators)
	addrAt := make([]cryptoutil.Address, validators)
	for i := range addrAt {
		addrAt[i] = cryptoutil.KeyFromSeed([]byte{byte(i), 'e', '6'}).Address()
		stakes[addrAt[i]] = uint64(resources[i])
	}
	posEngine := pos.New(pos.Config{SlotInterval: time.Second, Stakes: stakes}, simclock.NewSimulator(), nil)
	posWins := make([]float64, validators)
	parent := cryptoutil.HashBytes([]byte("e6"))
	for s := uint64(0); s < uint64(rounds); s++ {
		p, err := posEngine.ProposerForSlot(parent, s)
		if err != nil {
			return nil, err
		}
		for i, a := range addrAt {
			if a == p {
				posWins[i]++
			}
		}
	}
	t.AddRow("pos", "2^(i/4) stake", fmtF(gini(posWins), 2), fmtF(gini(resources), 2), "1 signature")

	// PoET: equal validators, min enclave wait wins.
	enclave := poet.NewEnclave([]byte("e6"))
	poetWins := make([]float64, validators)
	parentH := cryptoutil.HashBytes([]byte("poet/e6"))
	for r := 0; r < rounds; r++ {
		parentH = cryptoutil.HashBytes([]byte("round"), parentH[:])
		best, bestW := 0, time.Duration(1<<62)
		for i := range addrAt {
			w := enclave.DrawWait(parentH, addrAt[i], 30*time.Second)
			if w < bestW {
				best, bestW = i, w
			}
		}
		poetWins[best]++
	}
	equal := make([]float64, validators)
	for i := range equal {
		equal[i] = 1
	}
	t.AddRow("poet", "equal enclaves", fmtF(gini(poetWins), 2), fmtF(gini(equal), 2), "1 certificate")
	t.Note("wins gini tracks resource gini for pow/pos; poet is uniform — and costs no hashing")
	return t, nil
}
