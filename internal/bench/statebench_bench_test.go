package bench

import (
	"os"
	"testing"

	"dcsledger/internal/mpt"
	"dcsledger/internal/nodestore"
)

// BenchmarkStateCommit measures the per-block cost of persisting state:
// apply a block's worth of account updates (100 dirty accounts) to a
// disk-backed trie of 100k keys and commit the touched spine through a
// nodestore batch. bytes/op is the write amplification a node pays per
// connected block; the trie is reloaded by root each iteration so the
// figure includes lazy resolution of the touched paths.
func BenchmarkStateCommit(b *testing.B) {
	const trieKeys = 100_000
	const dirtyPerBlock = 100

	dir, err := os.MkdirTemp("", "dcsbench-commit-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := nodestore.Open(dir, nodestore.Options{Sync: nodestore.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()

	root := mpt.EmptyRoot
	for lo := 0; lo < trieKeys; lo += stateChunk {
		tr := mpt.Load(root, 0, store)
		for i := lo; i < min(lo+stateChunk, trieKeys); i++ {
			addr, leaf := stateKey(i)
			if tr, err = tr.TrySet(addr[:], leaf); err != nil {
				b.Fatal(err)
			}
		}
		batch := store.NewBatch(uint64(lo / stateChunk))
		if root, err = tr.Commit(batch); err != nil {
			b.Fatal(err)
		}
		if err = batch.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	baseBytes := store.Stats().Bytes

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tr := mpt.Load(root, trieKeys, store)
		for j := 0; j < dirtyPerBlock; j++ {
			addr, leaf := stateKey((n*dirtyPerBlock + j) % trieKeys)
			leaf[47] = byte(n)
			if tr, err = tr.TrySet(addr[:], leaf); err != nil {
				b.Fatal(err)
			}
		}
		batch := store.NewBatch(uint64(n))
		if root, err = tr.Commit(batch); err != nil {
			b.Fatal(err)
		}
		if err = batch.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	written := store.Stats().Bytes - baseBytes
	b.ReportMetric(float64(written)/float64(b.N), "disk-bytes/op")
}
