package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dcsledger/internal/obs"
)

// TestTraceDemo is the `make trace-demo` target: it runs the reduced
// -stages pipeline comparison (a 4-node PoW simulation plus the
// ordering+PBFT pipeline, both in-process on virtual clocks), asserts
// the JSONL trace parses line-by-line, and checks every pipeline stage
// each run is expected to emit actually appears with its run label.
func TestTraceDemo(t *testing.T) {
	var trace bytes.Buffer
	tables, err := StageLatency(0.05, &trace)
	if err != nil {
		t.Fatalf("StageLatency: %v", err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3 (pow, ordering, codec)", len(tables))
	}
	for _, tbl := range tables[:2] {
		out := tbl.String()
		if !strings.Contains(out, "stage") || !strings.Contains(out, "p95") {
			t.Errorf("table missing stage/p95 columns:\n%s", out)
		}
	}
	if out := tables[2].String(); !strings.Contains(out, "json B") || !strings.Contains(out, "bin B") {
		t.Errorf("codec table missing json/bin size columns:\n%s", out)
	}

	// Every JSONL line must parse as a span with a stage and run label.
	seen := make(map[string]map[string]int) // run → stage → count
	sc := bufio.NewScanner(&trace)
	lines := 0
	for sc.Scan() {
		lines++
		var s obs.Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("trace line %d %q: %v", lines, sc.Text(), err)
		}
		if s.Stage == "" {
			t.Fatalf("trace line %d has empty stage: %q", lines, sc.Text())
		}
		if s.Run != "pow" && s.Run != "ordering" {
			t.Fatalf("trace line %d has run %q, want pow|ordering", lines, s.Run)
		}
		if seen[s.Run] == nil {
			seen[s.Run] = make(map[string]int)
		}
		seen[s.Run][s.Stage]++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan trace: %v", err)
	}
	if lines == 0 {
		t.Fatal("trace is empty")
	}

	wantStages := map[string][]string{
		"pow": {
			obs.StageBlockVerify, obs.StageStateApply, obs.StageBlockConnect,
			obs.StageBlockPropose, obs.StagePowSeal, obs.StageForkChoice,
			obs.StageTxInclusion,
		},
		"ordering": {obs.StageOrderingCut, obs.StagePBFTRound},
	}
	for run, stages := range wantStages {
		for _, stage := range stages {
			if seen[run][stage] == 0 {
				t.Errorf("run %q missing stage %q (got %v)", run, stage, seen[run])
			}
		}
	}
	t.Logf("trace: %d spans, pow stages %d, ordering stages %d",
		lines, len(seen["pow"]), len(seen["ordering"]))
}
