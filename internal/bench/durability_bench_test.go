package bench

import (
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/simclock"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/wal"
)

// BenchmarkWALAppend measures the durability layer's write path for a
// block-sized record under each fsync policy — the cost a node pays per
// connected block.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, pol := range []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		b.Run(pol.String(), func(b *testing.B) {
			w, err := wal.Open(b.TempDir(), wal.Options{Fsync: pol})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(wal.RecBlock, payload); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
		})
	}
}

// benchSealedChain seals n coinbase-only blocks on a cheap-PoW engine,
// tracking per-block states exactly like a live miner would.
func benchSealedChain(b *testing.B, genesis *types.Block, n int) []*types.Block {
	b.Helper()
	eng := pow.New(pow.Config{
		TargetInterval:    10 * time.Second,
		InitialDifficulty: pow.MinDifficulty,
		RetargetWindow:    1 << 32,
		HashRate:          1,
	}, rand.New(rand.NewSource(1)))
	rewards := incentive.Schedule{InitialReward: 50}
	miner := cryptoutil.KeyFromSeed([]byte("bench-durability-miner")).Address()
	st := state.New()
	parent := genesis
	blocks := make([]*types.Block, 0, n)
	for i := 0; i < n; i++ {
		height := parent.Header.Height + 1
		reward := rewards.RewardAt(height)
		cb := types.NewCoinbase(miner, reward, height)
		blk := types.NewBlock(parent.Hash(), height, parent.Header.Time+int64(10*time.Second),
			miner, []*types.Transaction{cb})
		st = st.Copy()
		if _, err := st.ApplyBlock(blk, reward); err != nil {
			b.Fatalf("ApplyBlock: %v", err)
		}
		blk.Header.StateRoot = st.Commit()
		if err := eng.Prepare(&blk.Header, parent); err != nil {
			b.Fatalf("Prepare: %v", err)
		}
		if err := eng.Seal(blk, parent); err != nil {
			b.Fatalf("Seal: %v", err)
		}
		blocks = append(blocks, blk)
		parent = blk
	}
	return blocks
}

func benchEngine() consensus.Engine {
	return pow.New(pow.Config{
		TargetInterval:    10 * time.Second,
		InitialDifficulty: pow.MinDifficulty,
		RetargetWindow:    1 << 32,
		HashRate:          1,
	}, rand.New(rand.NewSource(2)))
}

// BenchmarkRecover measures a full crash-recovery cycle — open the data
// directory, repair the WAL tail, load the newest checkpoint, replay
// the journal into a fresh node, and re-verify the head state root —
// over a 128-block ledger.
func BenchmarkRecover(b *testing.B) {
	const blocks = 128
	dir := b.TempDir()
	genesis := node.NewGenesis("bench-durability")
	chain := benchSealedChain(b, genesis, blocks)

	newNode := func(ds *wal.DurableStore) *node.Node {
		n, err := node.New(node.Config{
			ID:         "bench",
			Key:        cryptoutil.KeyFromSeed([]byte("bench-durability")),
			Engine:     benchEngine(),
			ForkChoice: forkchoice.LongestChain{},
			Genesis:    genesis,
			Rewards:    incentive.Schedule{InitialReward: 50},
			Clock:      simclock.NewSimulator(),
			Durable:    ds,
		})
		if err != nil {
			b.Fatalf("node.New: %v", err)
		}
		return n
	}

	// Seed the directory once: journal all blocks with checkpoints on.
	ds, rec, err := wal.OpenStore(dir, wal.StoreOptions{Fsync: wal.FsyncNever, CheckpointEvery: 32})
	if err != nil {
		b.Fatalf("OpenStore: %v", err)
	}
	n := newNode(ds)
	if err := n.Recover(rec); err != nil {
		b.Fatalf("Recover: %v", err)
	}
	for _, blk := range chain {
		if err := n.HandleBlock(blk); err != nil {
			b.Fatalf("HandleBlock: %v", err)
		}
	}
	if err := ds.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, rec, err := wal.OpenStore(dir, wal.StoreOptions{Fsync: wal.FsyncNever, CheckpointEvery: 32})
		if err != nil {
			b.Fatalf("OpenStore: %v", err)
		}
		n := newNode(ds)
		if err := n.Recover(rec); err != nil {
			b.Fatalf("Recover: %v", err)
		}
		if n.Chain().Height() != blocks {
			b.Fatalf("recovered height %d, want %d", n.Chain().Height(), blocks)
		}
		ds.Close()
	}
	b.ReportMetric(float64(blocks), "blocks/recovery")
}
