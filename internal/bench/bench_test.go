package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunAtSmallScale executes every registered
// experiment at reduced scale and sanity-checks the tables.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	for _, id := range IDs() {
		id := id
		runner := Experiments()[id]
		t.Run(id, func(t *testing.T) {
			table, err := runner(0.05)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if table.ID != id {
				t.Fatalf("table id %q, want %q", table.ID, id)
			}
			if len(table.Rows) == 0 || len(table.Columns) == 0 {
				t.Fatalf("%s produced an empty table", id)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("%s row width %d, want %d", id, len(row), len(table.Columns))
				}
			}
			out := table.String()
			if !strings.Contains(out, table.Title) {
				t.Fatalf("%s render missing title", id)
			}
		})
	}
}

func TestIDsOrderedNumerically(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("got %d experiments, want 18", len(ids))
	}
	for i, id := range ids {
		want := "E" + strconv.Itoa(i+1)
		if id != want {
			t.Fatalf("ids[%d] = %s, want %s", i, id, want)
		}
	}
}

func TestGini(t *testing.T) {
	if g := gini([]float64{1, 1, 1, 1}); g > 0.01 {
		t.Fatalf("equal distribution gini = %f", g)
	}
	if g := gini([]float64{0, 0, 0, 100}); g < 0.7 {
		t.Fatalf("concentrated distribution gini = %f", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %f", g)
	}
	if g := gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-total gini = %f", g)
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID:         "EX",
		Title:      "demo",
		PaperClaim: "claim",
		Columns:    []string{"a", "long-column"},
	}
	table.AddRow("1", "2")
	table.Note("footnote %d", 7)
	out := table.String()
	for _, want := range []string{"EX", "demo", "claim", "long-column", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestE10ShapeMatchesTheory locks the paper's core security claim: at
// q>0.5 the attack always succeeds; below, deeper confirmations
// suppress it.
func TestE10ShapeMatchesTheory(t *testing.T) {
	table, err := E10DoubleSpend(0.2)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	for _, row := range table.Rows {
		q := parse(row[0])
		z1, z6 := parse(row[1]), parse(row[4])
		if q > 0.5 {
			if z6 < 0.99 {
				t.Fatalf("q=%.2f z=6 success %.3f, want ≈1", q, z6)
			}
			continue
		}
		if z6 > z1 {
			t.Fatalf("q=%.2f: success must not grow with depth (%.3f → %.3f)", q, z1, z6)
		}
	}
}

// TestE7ShapeMatchesPaper locks the Bitcoin-NG claim: much lower
// latency at equal-or-better throughput.
func TestE7ShapeMatchesPaper(t *testing.T) {
	table, err := E7BitcoinNG(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Rows: nakamoto then bitcoin-ng; columns: protocol, committed,
	// tps, latency, ...
	nak, ng := table.Rows[0], table.Rows[1]
	if nak[0] != "nakamoto" || ng[0] != "bitcoin-ng" {
		t.Fatalf("unexpected row order: %v / %v", nak, ng)
	}
}
