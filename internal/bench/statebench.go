package bench

// statebench.go measures the disk-backed authenticated state store:
// how fast an account trie of N keys builds against a nodestore with a
// bounded decoded-node cache, how much disk it occupies, that the cache
// accounting stays inside its budget while it happens, and what a
// point read and a Merkle proof cost against the committed root with
// only the cache in front of disk.

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/mpt"
	"dcsledger/internal/nodestore"
)

// stateChunk is how many keys are inserted between commits: each chunk
// loads the trie fresh by root, so in-RAM trie nodes never exceed one
// chunk and RAM is bounded by the store's cache, not the key count.
const stateChunk = 50_000

// stateKey returns the i-th synthetic account address and leaf payload
// (a plausible account record size: balance, nonce, padding).
func stateKey(i int) (cryptoutil.Address, []byte) {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	addr := cryptoutil.AddressFromHash(cryptoutil.HashBytes(seed[:]))
	leaf := make([]byte, 48)
	copy(leaf, addr[:])
	binary.BigEndian.PutUint64(leaf[40:], uint64(i)*1000)
	return addr, leaf
}

// StateStoreTable builds an account trie per key count against a
// disk-backed node store with the given cache budget (0 = the default
// 64 MiB) and reports build rate, disk footprint, cache accounting,
// and read/proof latency at each size.
func StateStoreTable(keyCounts []int, cacheBytes int64) (*Table, error) {
	if cacheBytes == 0 {
		cacheBytes = nodestore.DefaultCacheBytes
	}
	t := &Table{
		ID:         "STATE",
		Title:      "Disk-backed authenticated state: build, footprint, and proof cost",
		PaperClaim: "pervasive deployments need bounded-RAM validation state (Section 5.4: storage scalability)",
		Columns:    []string{"keys", "build", "keys/s", "disk MB", "cache MB", "cap MB", "hit%", "get", "prove"},
	}
	for _, keys := range keyCounts {
		if err := stateStoreRow(t, keys, cacheBytes); err != nil {
			return nil, err
		}
	}
	t.Note("cache MB is live decoded-node accounting after the build; the budget is enforced, not advisory")
	t.Note("get/prove are mean latencies over 2000 random keys against the committed root (cache in front of disk)")
	return t, nil
}

func stateStoreRow(t *Table, keys int, cacheBytes int64) error {
	dir, err := os.MkdirTemp("", "dcsbench-state-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := nodestore.Open(dir, nodestore.Options{Sync: nodestore.SyncNever, CacheBytes: cacheBytes})
	if err != nil {
		return err
	}
	defer store.Close()

	start := time.Now()
	root := mpt.EmptyRoot
	for lo := 0; lo < keys; lo += stateChunk {
		hi := min(lo+stateChunk, keys)
		tr := mpt.Load(root, 0, store)
		for i := lo; i < hi; i++ {
			addr, leaf := stateKey(i)
			if tr, err = tr.TrySet(addr[:], leaf); err != nil {
				return fmt.Errorf("bench: state build: %w", err)
			}
		}
		batch := store.NewBatch(uint64(lo / stateChunk))
		if root, err = tr.Commit(batch); err != nil {
			return fmt.Errorf("bench: state commit: %w", err)
		}
		if err = batch.Commit(); err != nil {
			return fmt.Errorf("bench: state batch: %w", err)
		}
	}
	build := time.Since(start)
	stats := store.Stats()
	if stats.CacheBytes > stats.CacheCap {
		return fmt.Errorf("bench: cache accounting %d exceeds budget %d", stats.CacheBytes, stats.CacheCap)
	}

	const probes = 2000
	tr := mpt.Load(root, 0, store)
	getStart := time.Now()
	for p := 0; p < probes; p++ {
		addr, _ := stateKey((p * 7919) % keys)
		if _, ok, err := tr.TryGet(addr[:]); err != nil || !ok {
			return fmt.Errorf("bench: state get %d: ok=%v err=%v", p, ok, err)
		}
	}
	getDur := time.Since(getStart) / probes
	proveStart := time.Now()
	for p := 0; p < probes; p++ {
		addr, _ := stateKey((p * 104729) % keys)
		if _, err := tr.Prove(addr[:]); err != nil {
			return fmt.Errorf("bench: state prove %d: %w", p, err)
		}
	}
	proveDur := time.Since(proveStart) / probes

	mb := func(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
	hitPct := 0.0
	if lookups := stats.CacheHits + stats.CacheMisses; lookups > 0 {
		hitPct = 100 * float64(stats.CacheHits) / float64(lookups)
	}
	t.AddRow(fmt.Sprintf("%d", keys),
		build.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(keys)/build.Seconds()),
		mb(int64(stats.Bytes)),
		mb(stats.CacheBytes),
		mb(stats.CacheCap),
		fmt.Sprintf("%.1f", hitPct),
		fmtDur(getDur),
		fmtDur(proveDur))
	return nil
}
