package bench

// codec.go measures what the binary wire/storage codecs bought: the
// seed serialized every hot-path payload with encoding/json; this PR
// moved them to the canonical binary codecs. The hot paths are now
// json-free, so the "before" side lives here as faithful mirrors of the
// seed's JSON shapes (json is allowed in bench/CLI code).

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"dcsledger/internal/consensus/ordering"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/p2p"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// Seed-era JSON wire shapes, kept only as the comparison baseline.
type jsonMessage struct {
	From p2p.NodeID `json:"from"`
	Type string     `json:"type"`
	Data []byte     `json:"data"`
}

type jsonBatch struct {
	Seq uint64               `json:"seq"`
	Txs []*types.Transaction `json:"txs"`
}

type jsonSnapshot struct {
	Accounts map[string]state.Account     `json:"accounts"`
	Code     map[string]string            `json:"code"`
	Storage  map[string]map[string]string `json:"storage"`
}

// codecIters is sized so each measurement runs in well under a second
// while averaging away scheduler noise.
const codecIters = 400

// perOp reports the mean wall-clock duration of fn over codecIters runs.
func perOp(fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < codecIters; i++ {
		fn()
	}
	return time.Since(start) / codecIters
}

// CodecTables renders the json-vs-binary comparison for the three
// payloads that dominate the wire and storage hot paths: the p2p frame,
// the ordering batch, and the state snapshot (the WAL checkpoint body).
func CodecTables() ([]*Table, error) {
	t := &Table{
		ID:         "CODEC",
		Title:      "Hot-path codecs: seed JSON vs binary wire format",
		PaperClaim: "scalability work targets the messaging/storage substrate (Section 6: throughput-oriented redesigns)",
		Columns:    []string{"payload", "json B", "bin B", "size", "json enc", "bin enc", "json dec", "bin dec"},
	}

	addRow := func(name string, jsonB, binB int, je, be, jd, bd time.Duration) {
		t.AddRow(name,
			fmt.Sprintf("%d", jsonB), fmt.Sprintf("%d", binB),
			fmt.Sprintf("%.2fx", float64(jsonB)/float64(binB)),
			fmtDur(je), fmtDur(be), fmtDur(jd), fmtDur(bd))
	}

	// p2p message: a gossiped transaction, the most frequent frame.
	tx := types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, 1000, 2, 7)
	msg := p2p.Message{From: "node-001", Type: "gossip", Data: tx.Encode()}
	jm := jsonMessage{From: msg.From, Type: msg.Type, Data: msg.Data}
	jsonMsg, err := json.Marshal(jm)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: %w", err)
	}
	binMsg := p2p.EncodeMessage(msg)
	addRow("p2p message (tx gossip)", len(jsonMsg), len(binMsg),
		perOp(func() { _, _ = json.Marshal(jm) }),
		perOp(func() { _ = p2p.EncodeMessage(msg) }),
		perOp(func() { var m jsonMessage; _ = json.Unmarshal(jsonMsg, &m) }),
		perOp(func() { _, _ = p2p.DecodeMessage(binMsg) }))

	// Ordering batch: 256 txs, the default batch-cut size. This payload
	// crosses the raft log AND the pbft operation stream per batch.
	batch := ordering.Batch{Seq: 1}
	for i := 0; i < 256; i++ {
		batch.Txs = append(batch.Txs,
			types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, uint64(i), 1, uint64(i)))
	}
	jb := jsonBatch{Seq: batch.Seq, Txs: batch.Txs}
	jsonBat, err := json.Marshal(jb)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: %w", err)
	}
	binBat := batch.Encode()
	addRow("ordering batch (256 txs)", len(jsonBat), len(binBat),
		perOp(func() { _, _ = json.Marshal(jb) }),
		perOp(func() { _ = batch.Encode() }),
		perOp(func() { var b jsonBatch; _ = json.Unmarshal(jsonBat, &b) }),
		perOp(func() { _, _ = ordering.DecodeBatch(binBat) }))

	// State snapshot: 1024 accounts with code and storage — the WAL
	// checkpoint body and the fast-sync payload.
	st := state.New()
	js := jsonSnapshot{
		Accounts: map[string]state.Account{},
		Code:     map[string]string{},
		Storage:  map[string]map[string]string{},
	}
	for i := 0; i < 1024; i++ {
		var a cryptoutil.Address
		a[0], a[1] = byte(i>>8), byte(i)
		st.Credit(a, uint64(1000+i))
		js.Accounts[a.Hex()] = state.Account{Balance: uint64(1000 + i)}
		if i%16 == 0 {
			code := bytes.Repeat([]byte{byte(i)}, 64)
			st.SetCode(a, code)
			acct := st.Account(a)
			js.Accounts[a.Hex()] = acct
			js.Code[acct.Code.Hex()] = hex.EncodeToString(code)
			st.SetStorage(a, []byte("owner"), a[:])
			js.Storage[a.Hex()] = map[string]string{
				hex.EncodeToString([]byte("owner")): hex.EncodeToString(a[:]),
			}
		}
	}
	jsonSnap, err := json.Marshal(js)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: %w", err)
	}
	binSnap, err := st.EncodeSnapshot()
	if err != nil {
		return nil, fmt.Errorf("bench: codec: %w", err)
	}
	addRow("state snapshot (1024 accts)", len(jsonSnap), len(binSnap),
		perOp(func() { _, _ = json.Marshal(js) }),
		perOp(func() { _, _ = st.EncodeSnapshot() }),
		perOp(func() { var s jsonSnapshot; _ = json.Unmarshal(jsonSnap, &s) }),
		perOp(func() { _, _ = state.DecodeSnapshot(binSnap) }))

	t.Note("size = json B / bin B; snapshot bytes are also the WAL checkpoint record body")
	t.Note("json rows replicate the seed's exact wire shapes; hot paths now carry only the binary form")
	return []*Table{t}, nil
}
