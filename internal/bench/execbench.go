package bench

// execbench.go measures optimistic parallel block execution
// (internal/exec): the same CPU-weighted block applied at several
// speculation widths across controlled conflict rates. Every parallel
// application is checked bit-identical to the serial root — a mismatch
// is a gating error, not a reported number.

import (
	"fmt"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/exec"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/vm"
)

// execLoopSrc spins a counter to make each invocation CPU-heavy, then
// stores the iteration count into the slot named by arg 0. Distinct
// slots keep invocations conflict-free; a shared slot makes every pair
// of lanes collide.
const execLoopSrc = `
	PUSH 0
loop:
	PUSH 1
	ADD
	DUP
	PUSH 300
	LT
	PUSH @loop
	JUMPI
	PUSH 0
	ARG
	SWAP
	SSTORE
	STOP
`

// execWorkload is one synthetic block and the state it applies to.
type execWorkload struct {
	parent *state.State
	block  *types.Block
	reward uint64
}

// buildExecWorkload makes a block of txCount single-tx lanes: every
// sender invokes the shared loop contract, normally on its own private
// slot. A conflictRate fraction of transactions (spread evenly through
// the block) instead target slot 0, so each one collides with whichever
// earlier lane wrote it and forces the suffix replay.
func buildExecWorkload(txCount int, conflictRate float64) (*execWorkload, error) {
	parent := state.New()
	parent.SetExecutor(vm.NewExecutor())

	owner := cryptoutil.KeyFromSeed([]byte("execbench-owner"))
	parent.Credit(owner.Address(), 1_000_000)
	deploy := &types.Transaction{
		Kind: types.TxDeploy, From: owner.Address(), Nonce: 0,
		Fee: 3, GasLimit: 100_000, Data: vm.MustAssemble(execLoopSrc),
	}
	if err := deploy.Sign(owner); err != nil {
		return nil, err
	}
	miner := cryptoutil.KeyFromSeed([]byte("execbench-miner")).Address()
	rec, err := parent.ApplyTx(deploy, miner)
	if err != nil || !rec.OK {
		return nil, fmt.Errorf("bench: exec deploy: err=%v receipt=%+v", err, rec)
	}
	contract := rec.ContractAddress

	conflictEvery := 0
	if conflictRate > 0 {
		conflictEvery = max(1, int(1/conflictRate))
	}
	var (
		txs  []*types.Transaction
		fees uint64
	)
	for i := 0; i < txCount; i++ {
		k := cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("execbench-sender-%d", i)))
		parent.Credit(k.Address(), 1_000)
		slot := uint64(i + 1)
		if conflictEvery > 0 && i%conflictEvery == 0 {
			slot = 0 // shared slot: collides with every earlier writer
		}
		tx := &types.Transaction{
			Kind: types.TxInvoke, From: k.Address(), To: contract,
			Nonce: 0, Fee: 2, GasLimit: 100_000,
			Data: vm.PackArgs(vm.WordFromUint64(slot)),
		}
		if err := tx.Sign(k); err != nil {
			return nil, err
		}
		txs = append(txs, tx)
		fees += tx.Fee
	}

	const reward = 50
	proposer := cryptoutil.KeyFromSeed([]byte("execbench-proposer")).Address()
	all := append([]*types.Transaction{types.NewCoinbase(proposer, reward+fees, 1)}, txs...)
	return &execWorkload{
		parent: parent,
		block:  types.NewBlock(cryptoutil.ZeroHash, 1, 0, proposer, all),
		reward: reward,
	}, nil
}

// applyExec runs the workload once at the given width and returns the
// wall time, committed root, and executor stats.
func applyExec(w *execWorkload, workers int) (time.Duration, cryptoutil.Hash, *exec.Stats, error) {
	ex := &exec.Executor{Workers: workers}
	start := time.Now()
	st, _, stats, err := ex.ApplyBlock(w.parent, w.block, w.reward)
	if err != nil {
		return 0, cryptoutil.Hash{}, nil, err
	}
	dur := time.Since(start)
	return dur, st.Commit(), stats, nil
}

// ExecSweepTable applies a txCount-transaction CPU-weighted block at
// each speculation width for each conflict rate and reports merge/replay
// behavior and speedup over serial. The serial root is the reference:
// any width whose committed root differs fails the sweep.
func ExecSweepTable(widths []int, rates []float64, txCount int) (*Table, error) {
	t := &Table{
		ID:         "EXEC",
		Title:      "Optimistic parallel execution: width x conflict-rate sweep",
		PaperClaim: "scalable validation needs intra-block parallelism without giving up deterministic replicated state (Section 5)",
		Columns:    []string{"conflict", "workers", "runs", "merged", "replayed", "serial", "parallel", "speedup"},
	}
	const reps = 3
	for _, rate := range rates {
		w, err := buildExecWorkload(txCount, rate)
		if err != nil {
			return nil, err
		}
		serialDur, serialRoot, _, err := applyExec(w, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: exec serial: %w", err)
		}
		for r := 1; r < reps; r++ {
			if dur, _, _, err := applyExec(w, 0); err == nil && dur < serialDur {
				serialDur = dur
			}
		}
		for _, workers := range widths {
			var (
				best  time.Duration
				stats *exec.Stats
			)
			for r := 0; r < reps; r++ {
				dur, root, s, err := applyExec(w, workers)
				if err != nil {
					return nil, fmt.Errorf("bench: exec workers=%d: %w", workers, err)
				}
				if root != serialRoot {
					return nil, fmt.Errorf("bench: exec workers=%d: root %s != serial %s",
						workers, root.Short(), serialRoot.Short())
				}
				if r == 0 || dur < best {
					best, stats = dur, s
				}
			}
			t.AddRow(fmt.Sprintf("%.0f%%", rate*100),
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", stats.Runs),
				fmt.Sprintf("%d", stats.MergedRuns),
				fmt.Sprintf("%d", stats.ReplayedTxs),
				fmtDur(serialDur),
				fmtDur(best),
				fmt.Sprintf("%.2fx", float64(serialDur)/float64(best)))
		}
	}
	t.Note("%d transactions per block, each a CPU-weighted VM invoke; best of %d runs per cell", txCount, reps)
	t.Note("every parallel root is checked bit-identical to serial before a row is reported")
	return t, nil
}
