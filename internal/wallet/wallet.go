// Package wallet implements client-side key management, transaction
// construction, and the Simple Payment Verification light client of
// Section 2.2: a client that stores only block headers and verifies
// transaction inclusion with Merkle proofs instead of holding the full
// ledger.
package wallet

import (
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/merkle"
	"dcsledger/internal/store"
	"dcsledger/internal/types"
)

// SPV errors, matchable with errors.Is.
var (
	ErrBrokenHeaderChain = errors.New("wallet: header does not extend the chain")
	ErrUnknownHeader     = errors.New("wallet: header not in light chain")
	ErrBadProof          = errors.New("wallet: Merkle proof does not verify")
	ErrTxNotFound        = errors.New("wallet: transaction not on the main chain")
)

// Wallet holds a key pair and builds signed transactions.
type Wallet struct {
	key   *cryptoutil.KeyPair
	nonce uint64
}

// New creates a wallet around an existing key.
func New(key *cryptoutil.KeyPair) *Wallet { return &Wallet{key: key} }

// FromSeed derives a deterministic wallet (simulations and tests).
func FromSeed(seed string) *Wallet {
	return New(cryptoutil.KeyFromSeed([]byte(seed)))
}

// Address returns the wallet's account address.
func (w *Wallet) Address() cryptoutil.Address { return w.key.Address() }

// Key exposes the underlying key pair.
func (w *Wallet) Key() *cryptoutil.KeyPair { return w.key }

// SetNonce aligns the wallet's local nonce counter with chain state.
func (w *Wallet) SetNonce(n uint64) { w.nonce = n }

// NextNonce returns and consumes the next nonce.
func (w *Wallet) NextNonce() uint64 {
	n := w.nonce
	w.nonce++
	return n
}

// Transfer builds and signs a value transfer using the wallet's nonce
// counter.
func (w *Wallet) Transfer(to cryptoutil.Address, value, fee uint64) (*types.Transaction, error) {
	tx := types.NewTransfer(w.Address(), to, value, fee, w.NextNonce())
	if err := tx.Sign(w.key); err != nil {
		return nil, fmt.Errorf("wallet: %w", err)
	}
	return tx, nil
}

// Deploy builds and signs a contract deployment.
func (w *Wallet) Deploy(code []byte, value, fee, gasLimit uint64) (*types.Transaction, error) {
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: w.Address(), Value: value, Fee: fee,
		Nonce: w.NextNonce(), GasLimit: gasLimit, Data: code,
	}
	if err := tx.Sign(w.key); err != nil {
		return nil, fmt.Errorf("wallet: %w", err)
	}
	return tx, nil
}

// Invoke builds and signs a contract invocation.
func (w *Wallet) Invoke(to cryptoutil.Address, input []byte, value, fee, gasLimit uint64) (*types.Transaction, error) {
	tx := &types.Transaction{
		Kind: types.TxInvoke, From: w.Address(), To: to, Value: value, Fee: fee,
		Nonce: w.NextNonce(), GasLimit: gasLimit, Data: input,
	}
	if err := tx.Sign(w.key); err != nil {
		return nil, fmt.Errorf("wallet: %w", err)
	}
	return tx, nil
}

// SPVProof bundles everything a light client needs to check that a
// transaction is committed: the enclosing header's height and the
// Merkle authentication path.
type SPVProof struct {
	Height uint64          `json:"height"`
	TxID   cryptoutil.Hash `json:"txId"`
	Proof  merkle.Proof    `json:"proof"`
}

// Size returns the proof's byte size (the E11 metric), header included.
func (p SPVProof) Size() int {
	return p.Proof.Size() + cryptoutil.HashSize + 16
}

// ProveTx builds an SPV proof for a committed transaction from a full
// node's chain view.
func ProveTx(chain *store.Chain, txID cryptoutil.Hash) (SPVProof, error) {
	blockHash, idx, ok := chain.FindTx(txID)
	if !ok {
		return SPVProof{}, fmt.Errorf("%w: %s", ErrTxNotFound, txID.Short())
	}
	b, ok := chain.Tree().Get(blockHash)
	if !ok {
		return SPVProof{}, fmt.Errorf("%w: %s", ErrTxNotFound, txID.Short())
	}
	proof, err := b.TxProof(idx)
	if err != nil {
		return SPVProof{}, fmt.Errorf("wallet: %w", err)
	}
	return SPVProof{Height: b.Header.Height, TxID: txID, Proof: proof}, nil
}

// SPVClient is the header-only light client. Headers are appended as
// the full nodes advertise them; VerifyTx then needs only an SPVProof.
type SPVClient struct {
	headers []types.BlockHeader
	// CheckSeal optionally verifies each header's proof evidence (e.g.
	// pow.CheckHeader) before acceptance.
	CheckSeal func(*types.BlockHeader) error
}

// NewSPVClient creates a light client rooted at the genesis header.
func NewSPVClient(genesis types.BlockHeader) *SPVClient {
	return &SPVClient{headers: []types.BlockHeader{genesis}}
}

// Height returns the light chain height.
func (c *SPVClient) Height() uint64 { return uint64(len(c.headers) - 1) }

// StorageBytes reports the client's storage footprint — headers only,
// the SPV selling point E11 quantifies.
func (c *SPVClient) StorageBytes() int {
	total := 0
	for i := range c.headers {
		total += len(c.headers[i].Encode())
	}
	return total
}

// AddHeaders appends main-chain headers, verifying linkage (and seal
// evidence if configured). Headers already known are skipped.
func (c *SPVClient) AddHeaders(hs []types.BlockHeader) error {
	for _, h := range hs {
		if h.Height <= c.Height() {
			continue
		}
		tip := c.headers[len(c.headers)-1]
		if h.Height != tip.Height+1 || h.ParentHash != tip.Hash() {
			return fmt.Errorf("%w: height %d", ErrBrokenHeaderChain, h.Height)
		}
		if c.CheckSeal != nil {
			if err := c.CheckSeal(&h); err != nil {
				return fmt.Errorf("wallet: header %d: %w", h.Height, err)
			}
		}
		c.headers = append(c.headers, h)
	}
	return nil
}

// HeaderAt returns the header at a height.
func (c *SPVClient) HeaderAt(height uint64) (types.BlockHeader, bool) {
	if height >= uint64(len(c.headers)) {
		return types.BlockHeader{}, false
	}
	return c.headers[height], true
}

// VerifyTx checks an SPV proof against the light chain and returns the
// transaction's confirmation count (trust-by-depth).
func (c *SPVClient) VerifyTx(p SPVProof) (uint64, error) {
	hdr, ok := c.HeaderAt(p.Height)
	if !ok {
		return 0, fmt.Errorf("%w: height %d", ErrUnknownHeader, p.Height)
	}
	proof := p.Proof
	proof.Leaf = p.TxID
	if !merkle.VerifyProof(hdr.TxRoot, proof) {
		return 0, ErrBadProof
	}
	return c.Height() - p.Height + 1, nil
}
