package wallet

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/consensus"
	"dcsledger/internal/consensus/forkchoice"
	"dcsledger/internal/consensus/pow"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/incentive"
	"dcsledger/internal/node"
	"dcsledger/internal/types"
)

func TestTransactionBuilders(t *testing.T) {
	w := FromSeed("alice")
	to := FromSeed("bob").Address()

	tr, err := w.Transfer(to, 100, 2)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("built transfer invalid: %v", err)
	}
	if tr.Nonce != 0 {
		t.Fatalf("first nonce = %d", tr.Nonce)
	}

	dep, err := w.Deploy([]byte("code"), 0, 10, 1000)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if dep.Kind != types.TxDeploy || dep.Nonce != 1 {
		t.Fatalf("deploy tx = %+v", dep)
	}
	inv, err := w.Invoke(to, []byte("input"), 5, 1, 500)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if inv.Kind != types.TxInvoke || inv.Nonce != 2 {
		t.Fatalf("invoke tx = %+v", inv)
	}
	w.SetNonce(10)
	if w.NextNonce() != 10 {
		t.Fatal("SetNonce not honored")
	}
}

// minedChain spins a single-node PoW chain with one committed transfer
// and returns the cluster plus the tx id.
func minedChain(t *testing.T) (*node.Cluster, cryptoutil.Hash) {
	t.Helper()
	alice := FromSeed("alice")
	bob := FromSeed("bob")
	c, err := node.NewCluster(node.ClusterConfig{
		N: 1,
		Engine: func(i int, key *cryptoutil.KeyPair) consensus.Engine {
			return pow.New(pow.Config{
				TargetInterval:    10 * time.Second,
				InitialDifficulty: 64,
				HashRate:          6.4,
			}, rand.New(rand.NewSource(7)))
		},
		ForkChoice: func() consensus.ForkChoice { return forkchoice.LongestChain{} },
		Alloc:      map[cryptoutil.Address]uint64{alice.Address(): 1000},
		Rewards:    incentive.Schedule{InitialReward: 50},
		Seed:       42,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	tx, err := alice.Transfer(bob.Address(), 100, 1)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if err := c.Nodes[0].SubmitTx(tx); err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	c.Start()
	c.Sim.RunFor(3 * time.Minute)
	c.Stop()
	if c.Nodes[0].Balance(bob.Address()) != 100 {
		t.Fatal("setup: transfer not mined")
	}
	return c, tx.ID()
}

func TestSPVEndToEnd(t *testing.T) {
	c, txID := minedChain(t)
	full := c.Nodes[0]

	// The light client syncs headers only.
	light := NewSPVClient(c.Genesis.Header)
	light.CheckSeal = func(h *types.BlockHeader) error {
		if !pow.CheckHeader(h) {
			return errors.New("bad pow")
		}
		return nil
	}
	headers := full.Chain().Headers(1, 1<<20)
	if err := light.AddHeaders(headers); err != nil {
		t.Fatalf("AddHeaders: %v", err)
	}
	if light.Height() != full.Chain().Height() {
		t.Fatalf("light height %d vs full %d", light.Height(), full.Chain().Height())
	}

	// The full node proves; the light client verifies.
	proof, err := ProveTx(full.Chain(), txID)
	if err != nil {
		t.Fatalf("ProveTx: %v", err)
	}
	conf, err := light.VerifyTx(proof)
	if err != nil {
		t.Fatalf("VerifyTx: %v", err)
	}
	if conf == 0 {
		t.Fatal("confirmed tx must have confirmations")
	}

	// The light client's storage is a small fraction of the full chain.
	fullBytes := 0
	for h := uint64(0); h <= full.Chain().Height(); h++ {
		bh, _ := full.Chain().AtHeight(h)
		b, _ := full.Tree().Get(bh)
		fullBytes += b.Size()
	}
	if light.StorageBytes() >= fullBytes {
		t.Fatalf("SPV storage %d not smaller than full %d", light.StorageBytes(), fullBytes)
	}
}

func TestSPVRejectsForgedProof(t *testing.T) {
	c, txID := minedChain(t)
	full := c.Nodes[0]
	light := NewSPVClient(c.Genesis.Header)
	if err := light.AddHeaders(full.Chain().Headers(1, 1<<20)); err != nil {
		t.Fatalf("AddHeaders: %v", err)
	}
	proof, err := ProveTx(full.Chain(), txID)
	if err != nil {
		t.Fatalf("ProveTx: %v", err)
	}

	t.Run("claimed different tx", func(t *testing.T) {
		forged := proof
		forged.TxID = cryptoutil.HashBytes([]byte("phantom payment"))
		if _, err := light.VerifyTx(forged); !errors.Is(err, ErrBadProof) {
			t.Fatalf("want ErrBadProof, got %v", err)
		}
	})
	t.Run("wrong height", func(t *testing.T) {
		forged := proof
		forged.Height = 0
		if _, err := light.VerifyTx(forged); !errors.Is(err, ErrBadProof) {
			t.Fatalf("want ErrBadProof, got %v", err)
		}
	})
	t.Run("height beyond chain", func(t *testing.T) {
		forged := proof
		forged.Height = 10_000
		if _, err := light.VerifyTx(forged); !errors.Is(err, ErrUnknownHeader) {
			t.Fatalf("want ErrUnknownHeader, got %v", err)
		}
	})
}

func TestSPVRejectsBrokenHeaderChain(t *testing.T) {
	c, _ := minedChain(t)
	full := c.Nodes[0]
	light := NewSPVClient(c.Genesis.Header)
	headers := full.Chain().Headers(1, 1<<20)
	// Skip a header: linkage breaks.
	if err := light.AddHeaders(headers[1:]); !errors.Is(err, ErrBrokenHeaderChain) {
		t.Fatalf("want ErrBrokenHeaderChain, got %v", err)
	}
	// Tampered header: linkage breaks at the next one.
	bad := make([]types.BlockHeader, len(headers))
	copy(bad, headers)
	bad[0].Time ^= 1
	if err := light.AddHeaders(bad); !errors.Is(err, ErrBrokenHeaderChain) {
		t.Fatalf("want ErrBrokenHeaderChain, got %v", err)
	}
}

func TestSPVCheckSealRejects(t *testing.T) {
	c, _ := minedChain(t)
	full := c.Nodes[0]
	light := NewSPVClient(c.Genesis.Header)
	light.CheckSeal = func(h *types.BlockHeader) error {
		return errors.New("always suspicious")
	}
	if err := light.AddHeaders(full.Chain().Headers(1, 2)); err == nil {
		t.Fatal("CheckSeal failure must propagate")
	}
}

func TestProveTxUnknown(t *testing.T) {
	c, _ := minedChain(t)
	if _, err := ProveTx(c.Nodes[0].Chain(), cryptoutil.HashBytes([]byte("missing"))); !errors.Is(err, ErrTxNotFound) {
		t.Fatalf("want ErrTxNotFound, got %v", err)
	}
}

func TestAddHeadersIdempotent(t *testing.T) {
	c, _ := minedChain(t)
	full := c.Nodes[0]
	light := NewSPVClient(c.Genesis.Header)
	headers := full.Chain().Headers(1, 1<<20)
	if err := light.AddHeaders(headers); err != nil {
		t.Fatalf("AddHeaders: %v", err)
	}
	if err := light.AddHeaders(headers); err != nil {
		t.Fatalf("re-adding known headers must be a no-op: %v", err)
	}
	if light.Height() != full.Chain().Height() {
		t.Fatal("height changed on duplicate add")
	}
}
