package workflow

import (
	"errors"
	"testing"

	"dcsledger/internal/contract"
	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
)

func addr(seed string) cryptoutil.Address {
	return cryptoutil.KeyFromSeed([]byte(seed)).Address()
}

// supplyChainModel mirrors Figure 3's modeling-layer example: an order
// is validated, agreed, produced, shipped, and received.
func supplyChainModel() *Model {
	return &Model{
		Name:    "supply-chain",
		States:  []string{"submitted", "validated", "agreed", "produced", "shipped", "received"},
		Initial: "submitted",
		Transitions: []Transition{
			{From: "submitted", To: "validated", Action: "validate", Role: "supplier"},
			{From: "validated", To: "agreed", Action: "agree", Role: "buyer"},
			{From: "agreed", To: "produced", Action: "produce", Role: "supplier"},
			{From: "produced", To: "shipped", Action: "ship", Role: "carrier"},
			{From: "shipped", To: "received", Action: "receive", Role: "buyer"},
		},
		Roles: map[string]cryptoutil.Address{
			"supplier": addr("supplier"),
			"buyer":    addr("buyer"),
			"carrier":  addr("carrier"),
		},
	}
}

func TestValidateAcceptsSoundModel(t *testing.T) {
	if err := supplyChainModel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{name: "empty name", mutate: func(m *Model) { m.Name = "" }},
		{name: "no states", mutate: func(m *Model) { m.States = nil }},
		{name: "duplicate state", mutate: func(m *Model) { m.States = append(m.States, "agreed") }},
		{name: "bad initial", mutate: func(m *Model) { m.Initial = "nowhere" }},
		{name: "unknown state in transition", mutate: func(m *Model) {
			m.Transitions[0].To = "mars"
		}},
		{name: "unknown role", mutate: func(m *Model) {
			m.Transitions[0].Role = "ghost"
		}},
		{name: "empty action", mutate: func(m *Model) { m.Transitions[0].Action = "" }},
		{name: "ambiguous action", mutate: func(m *Model) {
			m.Transitions = append(m.Transitions, Transition{
				From: "submitted", To: "agreed", Action: "validate", Role: "buyer",
			})
		}},
		{name: "unreachable state", mutate: func(m *Model) {
			m.States = append(m.States, "limbo")
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := supplyChainModel()
			tt.mutate(m)
			if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
				t.Fatalf("want ErrInvalidModel, got %v", err)
			}
		})
	}
}

func ctxFor(st *state.State, caller cryptoutil.Address) *contract.Context {
	return &contract.Context{
		State:  st,
		Self:   addr("process-instance"),
		Caller: caller,
	}
}

func compile(t *testing.T) contract.Native {
	t.Helper()
	c, err := supplyChainModel().Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestHappyPath(t *testing.T) {
	c := compile(t)
	st := state.New()
	steps := []struct {
		role   string
		action string
		after  string
	}{
		{role: "supplier", action: "validate", after: "validated"},
		{role: "buyer", action: "agree", after: "agreed"},
		{role: "supplier", action: "produce", after: "produced"},
		{role: "carrier", action: "ship", after: "shipped"},
		{role: "buyer", action: "receive", after: "received"},
	}
	for _, s := range steps {
		if _, err := c.Invoke(ctxFor(st, addr(s.role)), "fire", []string{s.action}); err != nil {
			t.Fatalf("fire %s: %v", s.action, err)
		}
		got, err := c.Invoke(ctxFor(st, addr("anyone")), "state", nil)
		if err != nil {
			t.Fatalf("state: %v", err)
		}
		if string(got) != s.after {
			t.Fatalf("after %s state = %s, want %s", s.action, got, s.after)
		}
	}
	// History recorded every step.
	n, err := c.Invoke(ctxFor(st, addr("anyone")), "steps", nil)
	if err != nil || string(n) != "5" {
		t.Fatalf("steps = %s (%v)", n, err)
	}
	h0, err := c.Invoke(ctxFor(st, addr("anyone")), "history", []string{"0"})
	if err != nil {
		t.Fatalf("history: %v", err)
	}
	want := "validate:validated:" + addr("supplier").Hex()
	if string(h0) != want {
		t.Fatalf("history[0] = %s, want %s", h0, want)
	}
	// Terminal state: nothing more may fire.
	if _, err := c.Invoke(ctxFor(st, addr("buyer")), "fire", []string{"receive"}); !errors.Is(err, ErrFinished) {
		t.Fatalf("want ErrFinished, got %v", err)
	}
}

func TestRoleEnforcement(t *testing.T) {
	c := compile(t)
	st := state.New()
	// The buyer cannot validate (supplier's action).
	if _, err := c.Invoke(ctxFor(st, addr("buyer")), "fire", []string{"validate"}); !errors.Is(err, ErrWrongRole) {
		t.Fatalf("want ErrWrongRole, got %v", err)
	}
	// A stranger cannot either.
	if _, err := c.Invoke(ctxFor(st, addr("stranger")), "fire", []string{"validate"}); !errors.Is(err, ErrWrongRole) {
		t.Fatalf("want ErrWrongRole, got %v", err)
	}
}

func TestOrderEnforcement(t *testing.T) {
	c := compile(t)
	st := state.New()
	// Shipping before production is rejected.
	if _, err := c.Invoke(ctxFor(st, addr("carrier")), "fire", []string{"ship"}); !errors.Is(err, ErrNoTransition) {
		t.Fatalf("want ErrNoTransition, got %v", err)
	}
	// Unknown actions are distinguished from out-of-order ones.
	if _, err := c.Invoke(ctxFor(st, addr("carrier")), "fire", []string{"teleport"}); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("want ErrUnknownAction, got %v", err)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	m := supplyChainModel()
	m.Initial = "bogus"
	if _, err := m.Compile(); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("want ErrInvalidModel, got %v", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	c := compile(t)
	st := state.New()
	if _, err := c.Invoke(ctxFor(st, addr("x")), "frobnicate", nil); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("want ErrUnknownAction, got %v", err)
	}
}

func TestTerminalDetection(t *testing.T) {
	m := supplyChainModel()
	if m.Terminal("submitted") {
		t.Fatal("submitted has outgoing transitions")
	}
	if !m.Terminal("received") {
		t.Fatal("received is terminal")
	}
}

func TestModelCanLoop(t *testing.T) {
	// Rework loops (produce → reject → produce) are legal models.
	m := &Model{
		Name:    "loop",
		States:  []string{"draft", "review"},
		Initial: "draft",
		Transitions: []Transition{
			{From: "draft", To: "review", Action: "submit", Role: "author"},
			{From: "review", To: "draft", Action: "reject", Role: "editor"},
		},
		Roles: map[string]cryptoutil.Address{
			"author": addr("author"),
			"editor": addr("editor"),
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c, err := m.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	st := state.New()
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(ctxFor(st, addr("author")), "fire", []string{"submit"}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := c.Invoke(ctxFor(st, addr("editor")), "fire", []string{"reject"}); err != nil {
			t.Fatalf("reject %d: %v", i, err)
		}
	}
	n, err := c.Invoke(ctxFor(st, addr("x")), "steps", nil)
	if err != nil || string(n) != "6" {
		t.Fatalf("steps = %s (%v)", n, err)
	}
}
