// Package workflow implements the Modeling layer of the paper's stack
// (Section 4.2): business processes are expressed as role-annotated
// state machines (a BPMN-like model: validation → agreement →
// production → shipping in Figure 3) and compiled into a contract that
// enforces the model on-chain — only the right role can fire the right
// action in the right state, and the full history is recorded.
package workflow

import (
	"errors"
	"fmt"
	"strconv"

	"dcsledger/internal/contract"
	"dcsledger/internal/cryptoutil"
)

// Model errors, matchable with errors.Is.
var (
	ErrInvalidModel  = errors.New("workflow: invalid model")
	ErrNoTransition  = errors.New("workflow: no such transition from current state")
	ErrWrongRole     = errors.New("workflow: caller does not hold the required role")
	ErrAlreadyBound  = errors.New("workflow: role already bound")
	ErrFinished      = errors.New("workflow: process reached a terminal state")
	ErrUnknownAction = errors.New("workflow: unknown action")
)

// Transition fires Action, moving the process From → To, and may only
// be fired by the holder of Role.
type Transition struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Action string `json:"action"`
	Role   string `json:"role"`
}

// Model is a role-annotated workflow state machine.
type Model struct {
	Name        string                        `json:"name"`
	States      []string                      `json:"states"`
	Initial     string                        `json:"initial"`
	Transitions []Transition                  `json:"transitions"`
	Roles       map[string]cryptoutil.Address `json:"roles"`
}

// Validate checks structural soundness: known states and roles, a valid
// initial state, deterministic actions per state, and reachability of
// every state.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalidModel)
	}
	if len(m.States) == 0 {
		return fmt.Errorf("%w: no states", ErrInvalidModel)
	}
	states := make(map[string]bool, len(m.States))
	for _, s := range m.States {
		if s == "" {
			return fmt.Errorf("%w: empty state name", ErrInvalidModel)
		}
		if states[s] {
			return fmt.Errorf("%w: duplicate state %q", ErrInvalidModel, s)
		}
		states[s] = true
	}
	if !states[m.Initial] {
		return fmt.Errorf("%w: initial state %q not declared", ErrInvalidModel, m.Initial)
	}
	type key struct{ from, action string }
	seen := make(map[key]bool)
	adjacency := make(map[string][]string)
	for _, t := range m.Transitions {
		if !states[t.From] || !states[t.To] {
			return fmt.Errorf("%w: transition %q references unknown state", ErrInvalidModel, t.Action)
		}
		if t.Action == "" {
			return fmt.Errorf("%w: transition %s→%s has no action", ErrInvalidModel, t.From, t.To)
		}
		if _, ok := m.Roles[t.Role]; !ok {
			return fmt.Errorf("%w: transition %q references unknown role %q", ErrInvalidModel, t.Action, t.Role)
		}
		k := key{from: t.From, action: t.Action}
		if seen[k] {
			return fmt.Errorf("%w: ambiguous action %q from state %q", ErrInvalidModel, t.Action, t.From)
		}
		seen[k] = true
		adjacency[t.From] = append(adjacency[t.From], t.To)
	}
	// Reachability from the initial state.
	visited := map[string]bool{m.Initial: true}
	queue := []string{m.Initial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adjacency[cur] {
			if !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			}
		}
	}
	for _, s := range m.States {
		if !visited[s] {
			return fmt.Errorf("%w: state %q unreachable from %q", ErrInvalidModel, s, m.Initial)
		}
	}
	return nil
}

// Terminal reports whether no transition leaves the given state.
func (m *Model) Terminal(stateName string) bool {
	for _, t := range m.Transitions {
		if t.From == stateName {
			return false
		}
	}
	return true
}

// Compile validates the model and returns the native contract that
// enforces it. Register the result under a name of your choosing:
//
//	registry.Register("wf/"+model.Name, model.Compile)
func (m *Model) Compile() (contract.Native, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &processContract{model: *m}, nil
}

// processContract enforces a workflow model on-chain. Contract
// functions:
//
//	fire(action)  — fire a transition (caller must hold its role)
//	state()       — current state
//	history(i)    — i-th fired action as "action:state:callerHex"
//	steps()       — number of fired transitions
type processContract struct {
	model Model
}

var _ contract.Native = (*processContract)(nil)

func (p *processContract) Invoke(ctx *contract.Context, fn string, args []string) ([]byte, error) {
	switch fn {
	case "fire":
		if len(args) != 1 {
			return nil, fmt.Errorf("workflow: fire(action): %w", ErrUnknownAction)
		}
		return nil, p.fire(ctx, args[0])
	case "state":
		return []byte(p.current(ctx)), nil
	case "steps":
		return []byte(strconv.FormatUint(ctx.GetUint("steps"), 10)), nil
	case "history":
		if len(args) != 1 {
			return nil, ErrUnknownAction
		}
		return ctx.Get("history/" + args[0]), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownAction, fn)
	}
}

func (p *processContract) current(ctx *contract.Context) string {
	if s := ctx.Get("state"); len(s) > 0 {
		return string(s)
	}
	return p.model.Initial
}

func (p *processContract) fire(ctx *contract.Context, action string) error {
	cur := p.current(ctx)
	if p.model.Terminal(cur) {
		return fmt.Errorf("%w: %q", ErrFinished, cur)
	}
	var (
		match *Transition
		known bool
	)
	for i := range p.model.Transitions {
		t := &p.model.Transitions[i]
		if t.Action != action {
			continue
		}
		known = true
		if t.From == cur {
			match = t
			break
		}
	}
	if match == nil {
		if !known {
			return fmt.Errorf("%w: %q", ErrUnknownAction, action)
		}
		return fmt.Errorf("%w: %q in state %q", ErrNoTransition, action, cur)
	}
	if holder := p.model.Roles[match.Role]; holder != ctx.Caller {
		return fmt.Errorf("%w: %q needs role %q", ErrWrongRole, action, match.Role)
	}
	ctx.Set("state", []byte(match.To))
	step := ctx.GetUint("steps")
	ctx.Set("history/"+strconv.FormatUint(step, 10),
		[]byte(action+":"+match.To+":"+ctx.Caller.Hex()))
	ctx.SetUint("steps", step+1)
	return nil
}
