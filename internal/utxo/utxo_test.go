package utxo

import (
	"errors"
	"testing"

	"dcsledger/internal/cryptoutil"
)

func fund(t *testing.T, s *Set, seed string, value uint64) (*cryptoutil.KeyPair, Outpoint) {
	t.Helper()
	k := cryptoutil.KeyFromSeed([]byte(seed))
	ops := s.Mint("fund/"+seed, TxOut{Value: value, Owner: k.Address()})
	return k, ops[0]
}

func TestMintAndBalance(t *testing.T) {
	s := NewSet()
	k, _ := fund(t, s, "alice", 100)
	if got := s.BalanceOf(k.Address()); got != 100 {
		t.Fatalf("BalanceOf = %d", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.OutpointsOf(k.Address())) != 1 {
		t.Fatal("OutpointsOf should list the minted output")
	}
}

func TestSimpleSpend(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 100)
	bob := cryptoutil.KeyFromSeed([]byte("bob"))

	tx := &Tx{
		Ins: []TxIn{{Prev: op}},
		Outs: []TxOut{
			{Value: 60, Owner: bob.Address()},
			{Value: 38, Owner: alice.Address()}, // change
		},
	}
	if err := tx.SignInput(0, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	fee, err := s.Apply(tx)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if fee != 2 {
		t.Fatalf("fee = %d, want 2", fee)
	}
	if s.BalanceOf(bob.Address()) != 60 || s.BalanceOf(alice.Address()) != 38 {
		t.Fatalf("balances %d/%d", s.BalanceOf(bob.Address()), s.BalanceOf(alice.Address()))
	}
	// The spent output is gone.
	if _, ok := s.Get(op); ok {
		t.Fatal("spent outpoint must be removed")
	}
}

func TestDoubleSpendAcrossTxs(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 100)
	mk := func() *Tx {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 100, Owner: alice.Address()}}}
		if err := tx.SignInput(0, alice); err != nil {
			t.Fatalf("SignInput: %v", err)
		}
		return tx
	}
	if _, err := s.Apply(mk()); err != nil {
		t.Fatalf("first spend: %v", err)
	}
	if _, err := s.Apply(mk()); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("second spend of same output: want ErrMissingInput, got %v", err)
	}
}

func TestDoubleSpendWithinTx(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 100)
	tx := &Tx{
		Ins:  []TxIn{{Prev: op}, {Prev: op}},
		Outs: []TxOut{{Value: 200, Owner: alice.Address()}},
	}
	if err := tx.SignInput(0, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if err := tx.SignInput(1, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if _, err := s.Apply(tx); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("want ErrDoubleSpend, got %v", err)
	}
}

func TestRejections(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 100)
	mallory := cryptoutil.KeyFromSeed([]byte("mallory"))

	t.Run("wrong owner", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 1, Owner: mallory.Address()}}}
		if err := tx.SignInput(0, mallory); err != nil {
			t.Fatalf("SignInput: %v", err)
		}
		if _, err := s.Validate(tx); !errors.Is(err, ErrWrongOwner) {
			t.Fatalf("want ErrWrongOwner, got %v", err)
		}
	})
	t.Run("tampered output", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 1, Owner: alice.Address()}}}
		if err := tx.SignInput(0, alice); err != nil {
			t.Fatalf("SignInput: %v", err)
		}
		tx.Outs[0].Value = 100 // mutate after signing
		if _, err := s.Validate(tx); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("want ErrBadSignature, got %v", err)
		}
	})
	t.Run("value overflow", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 101, Owner: alice.Address()}}}
		if err := tx.SignInput(0, alice); err != nil {
			t.Fatalf("SignInput: %v", err)
		}
		if _, err := s.Validate(tx); !errors.Is(err, ErrValueOverflow) {
			t.Fatalf("want ErrValueOverflow, got %v", err)
		}
	})
	t.Run("no inputs", func(t *testing.T) {
		tx := &Tx{Outs: []TxOut{{Value: 1, Owner: alice.Address()}}}
		if _, err := s.Validate(tx); !errors.Is(err, ErrNoInputs) {
			t.Fatalf("want ErrNoInputs, got %v", err)
		}
	})
	t.Run("no outputs", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}}
		if _, err := s.Validate(tx); !errors.Is(err, ErrNoOutputs) {
			t.Fatalf("want ErrNoOutputs, got %v", err)
		}
	})
	t.Run("missing input", func(t *testing.T) {
		ghost := Outpoint{TxID: cryptoutil.HashBytes([]byte("ghost")), Index: 0}
		tx := &Tx{Ins: []TxIn{{Prev: ghost}}, Outs: []TxOut{{Value: 1, Owner: alice.Address()}}}
		if err := tx.SignInput(0, alice); err != nil {
			t.Fatalf("SignInput: %v", err)
		}
		if _, err := s.Validate(tx); !errors.Is(err, ErrMissingInput) {
			t.Fatalf("want ErrMissingInput, got %v", err)
		}
	})
}

func TestMultiInputMultiOutputCoinJoin(t *testing.T) {
	// The CoinJoin shape the mixer uses: many senders, one transaction.
	s := NewSet()
	alice, opA := fund(t, s, "alice", 50)
	bob, opB := fund(t, s, "bob", 50)
	outA := cryptoutil.KeyFromSeed([]byte("alice-fresh")).Address()
	outB := cryptoutil.KeyFromSeed([]byte("bob-fresh")).Address()

	tx := &Tx{
		Ins:  []TxIn{{Prev: opA}, {Prev: opB}},
		Outs: []TxOut{{Value: 50, Owner: outB}, {Value: 50, Owner: outA}},
	}
	if err := tx.SignInput(0, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if err := tx.SignInput(1, bob); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if _, err := s.Apply(tx); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.BalanceOf(outA) != 50 || s.BalanceOf(outB) != 50 {
		t.Fatal("coinjoin outputs missing")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestValidateDoesNotMutate(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 10)
	tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 10, Owner: alice.Address()}}}
	if err := tx.SignInput(0, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if _, err := s.Validate(tx); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, ok := s.Get(op); !ok {
		t.Fatal("Validate must not spend")
	}
}

func TestCopyIsolation(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 10)
	c := s.Copy()
	tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 10, Owner: alice.Address()}}}
	if err := tx.SignInput(0, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if _, err := c.Apply(tx); err != nil {
		t.Fatalf("Apply on copy: %v", err)
	}
	if _, ok := s.Get(op); !ok {
		t.Fatal("apply on copy must not affect original")
	}
}

func TestTxIDBindsSignatures(t *testing.T) {
	s := NewSet()
	alice, op := fund(t, s, "alice", 10)
	tx1 := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 10, Owner: alice.Address()}}}
	tx2 := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 10, Owner: alice.Address()}}}
	if tx1.SigningDigest() != tx2.SigningDigest() {
		t.Fatal("signing digests of identical bodies must match")
	}
	if err := tx1.SignInput(0, alice); err != nil {
		t.Fatalf("SignInput: %v", err)
	}
	if tx1.ID() == tx2.ID() {
		t.Fatal("ID must commit to signatures")
	}
}
