// Package utxo implements the unspent-transaction-output model of
// Blockchain 1.0 cryptocurrencies: transactions consume previous outputs
// and create new ones, exactly the Bitcoin-style ledger the paper's
// Figure 2 depicts. The package is used by the Bitcoin-like experiment
// configurations and by the mixer (Section 5.3), whose CoinJoin rounds
// are naturally many-input many-output UTXO transactions.
package utxo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
)

// Model errors, matchable with errors.Is.
var (
	ErrMissingInput  = errors.New("utxo: input not in UTXO set")
	ErrBadSignature  = errors.New("utxo: invalid input signature")
	ErrWrongOwner    = errors.New("utxo: input not owned by signer")
	ErrValueOverflow = errors.New("utxo: outputs exceed inputs")
	ErrNoInputs      = errors.New("utxo: transaction has no inputs")
	ErrNoOutputs     = errors.New("utxo: transaction has no outputs")
	ErrDoubleSpend   = errors.New("utxo: input spent twice in one transaction")
)

// Outpoint identifies one output of a prior transaction.
type Outpoint struct {
	TxID  cryptoutil.Hash `json:"txId"`
	Index uint32          `json:"index"`
}

// TxOut is a spendable output: an amount locked to an owner address.
type TxOut struct {
	Value uint64             `json:"value"`
	Owner cryptoutil.Address `json:"owner"`
}

// TxIn spends a prior output; the signature covers the whole transaction
// body so inputs and outputs cannot be repackaged.
type TxIn struct {
	Prev   Outpoint `json:"prev"`
	PubKey []byte   `json:"pubKey,omitempty"`
	Sig    []byte   `json:"sig,omitempty"`
}

// Tx is a UTXO transaction. Minting (the coinbase case) is explicit via
// Set.Mint rather than a zero-input transaction.
type Tx struct {
	Ins  []TxIn  `json:"ins"`
	Outs []TxOut `json:"outs"`
}

// SigningDigest is the hash every input signs: all outpoints plus all
// outputs (SIGHASH_ALL semantics).
func (t *Tx) SigningDigest() cryptoutil.Hash {
	var buf bytes.Buffer
	for _, in := range t.Ins {
		buf.Write(in.Prev.TxID[:])
		var b4 [4]byte
		binary.BigEndian.PutUint32(b4[:], in.Prev.Index)
		buf.Write(b4[:])
	}
	for _, out := range t.Outs {
		var b8 [8]byte
		binary.BigEndian.PutUint64(b8[:], out.Value)
		buf.Write(b8[:])
		buf.Write(out.Owner[:])
	}
	return cryptoutil.HashBytes([]byte("utxo/tx"), buf.Bytes())
}

// ID returns the transaction identifier, committing signatures as well.
func (t *Tx) ID() cryptoutil.Hash {
	var buf bytes.Buffer
	d := t.SigningDigest()
	buf.Write(d[:])
	for _, in := range t.Ins {
		buf.Write(in.PubKey)
		buf.Write(in.Sig)
	}
	return cryptoutil.HashBytes([]byte("utxo/txid"), buf.Bytes())
}

// SignInput signs input i with key k.
func (t *Tx) SignInput(i int, k *cryptoutil.KeyPair) error {
	if i < 0 || i >= len(t.Ins) {
		return fmt.Errorf("utxo: input %d out of range", i)
	}
	sig, err := k.Sign(t.SigningDigest())
	if err != nil {
		return fmt.Errorf("sign input %d: %w", i, err)
	}
	t.Ins[i].PubKey = k.PublicKey()
	t.Ins[i].Sig = sig
	return nil
}

func (t *Tx) outputTotal() uint64 {
	var sum uint64
	for _, o := range t.Outs {
		sum += o.Value
	}
	return sum
}

// Set is the UTXO set: the spendable frontier of the chain.
type Set struct {
	utxos map[Outpoint]TxOut
}

// NewSet returns an empty UTXO set.
func NewSet() *Set {
	return &Set{utxos: make(map[Outpoint]TxOut)}
}

// Len returns the number of unspent outputs.
func (s *Set) Len() int { return len(s.utxos) }

// Get returns the output at op if it is unspent.
func (s *Set) Get(op Outpoint) (TxOut, bool) {
	o, ok := s.utxos[op]
	return o, ok
}

// BalanceOf sums the unspent value owned by addr.
func (s *Set) BalanceOf(addr cryptoutil.Address) uint64 {
	var sum uint64
	for _, o := range s.utxos {
		if o.Owner == addr {
			sum += o.Value
		}
	}
	return sum
}

// OutpointsOf lists the unspent outpoints owned by addr.
func (s *Set) OutpointsOf(addr cryptoutil.Address) []Outpoint {
	var out []Outpoint
	for op, o := range s.utxos {
		if o.Owner == addr {
			out = append(out, op)
		}
	}
	return out
}

// Mint inserts brand-new outputs (block subsidy) under a synthetic
// transaction ID derived from the given tag. Returns the outpoints.
func (s *Set) Mint(tag string, outs ...TxOut) []Outpoint {
	txid := cryptoutil.HashBytes([]byte("utxo/mint"), []byte(tag))
	ops := make([]Outpoint, len(outs))
	for i, o := range outs {
		op := Outpoint{TxID: txid, Index: uint32(i)}
		s.utxos[op] = o
		ops[i] = op
	}
	return ops
}

// Validate checks tx against the set without mutating it, returning the
// implied fee (inputs − outputs).
func (s *Set) Validate(tx *Tx) (uint64, error) {
	if len(tx.Ins) == 0 {
		return 0, ErrNoInputs
	}
	if len(tx.Outs) == 0 {
		return 0, ErrNoOutputs
	}
	digest := tx.SigningDigest()
	seen := make(map[Outpoint]bool, len(tx.Ins))
	var inTotal uint64
	for i, in := range tx.Ins {
		if seen[in.Prev] {
			return 0, fmt.Errorf("%w: input %d", ErrDoubleSpend, i)
		}
		seen[in.Prev] = true
		prev, ok := s.utxos[in.Prev]
		if !ok {
			return 0, fmt.Errorf("%w: input %d (%s:%d)", ErrMissingInput, i, in.Prev.TxID.Short(), in.Prev.Index)
		}
		if cryptoutil.PubKeyToAddress(in.PubKey) != prev.Owner {
			return 0, fmt.Errorf("%w: input %d", ErrWrongOwner, i)
		}
		if !cryptoutil.Verify(in.PubKey, digest, in.Sig) {
			return 0, fmt.Errorf("%w: input %d", ErrBadSignature, i)
		}
		inTotal += prev.Value
	}
	outTotal := tx.outputTotal()
	if outTotal > inTotal {
		return 0, fmt.Errorf("%w: in %d, out %d", ErrValueOverflow, inTotal, outTotal)
	}
	return inTotal - outTotal, nil
}

// Apply validates tx and, on success, spends its inputs and adds its
// outputs. Returns the fee.
func (s *Set) Apply(tx *Tx) (uint64, error) {
	fee, err := s.Validate(tx)
	if err != nil {
		return 0, err
	}
	for _, in := range tx.Ins {
		delete(s.utxos, in.Prev)
	}
	txid := tx.ID()
	for i, o := range tx.Outs {
		s.utxos[Outpoint{TxID: txid, Index: uint32(i)}] = o
	}
	return fee, nil
}

// Copy returns an independent copy of the set.
func (s *Set) Copy() *Set {
	ns := &Set{utxos: make(map[Outpoint]TxOut, len(s.utxos))}
	for op, o := range s.utxos {
		ns.utxos[op] = o
	}
	return ns
}
