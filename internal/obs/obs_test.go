package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingOverflowEviction fills a tiny ring past capacity and checks
// the eviction bookkeeping: Len is capped, Total counts everything,
// Evicted counts the overwritten spans, and Snapshot returns the
// surviving window oldest-first.
func TestRingOverflowEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Stage: "s", Height: uint64(i), Dur: int64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, s := range snap {
		if want := uint64(6 + i); s.Height != want {
			t.Errorf("snapshot[%d].Height = %d, want %d (oldest-first)", i, s.Height, want)
		}
	}
}

// TestRecordStampsStartAndRun: zero Start gets the wall clock, empty
// Run inherits the tracer label, and explicit values survive.
func TestRecordStampsStartAndRun(t *testing.T) {
	tr := NewTracer(8)
	tr.SetRun("pow")
	before := time.Now().UnixNano()
	tr.Record(Span{Stage: "a", Dur: 1})
	tr.Record(Span{Stage: "b", Dur: 2, Run: "custom", Start: 42})
	after := time.Now().UnixNano()

	snap := tr.Snapshot()
	if snap[0].Run != "pow" {
		t.Errorf("inherited run = %q, want pow", snap[0].Run)
	}
	if snap[0].Start < before || snap[0].Start > after {
		t.Errorf("stamped start %d outside [%d,%d]", snap[0].Start, before, after)
	}
	if snap[1].Run != "custom" || snap[1].Start != 42 {
		t.Errorf("explicit fields overwritten: %+v", snap[1])
	}
}

// TestJSONLSinkStreams: every Record is mirrored to the sink as one
// JSON object per line, and WriteJSONL re-emits the ring identically.
func TestJSONLSinkStreams(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(8)
	tr.SetSink(&sink)
	tr.SetRun("ordering")
	for i := 0; i < 3; i++ {
		tr.Record(Span{Stage: StageOrderingCut, Height: uint64(i), Dur: int64(i + 1)})
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink lines = %d, want 3", len(lines))
	}
	for i, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("sink line %d not JSON: %v", i, err)
		}
		if s.Run != "ordering" || s.Stage != StageOrderingCut || s.Height != uint64(i) {
			t.Errorf("sink span %d = %+v", i, s)
		}
	}

	var ring bytes.Buffer
	if err := tr.WriteJSONL(&ring); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if ring.String() != sink.String() {
		t.Errorf("WriteJSONL != sink stream:\nring: %q\nsink: %q", ring.String(), sink.String())
	}
	if err := tr.SinkErr(); err != nil {
		t.Errorf("SinkErr = %v, want nil", err)
	}
}

// failWriter fails after n successful writes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestSinkErrLatches: the first sink write error disables the sink and
// is reported by SinkErr; the ring keeps recording regardless.
func TestSinkErrLatches(t *testing.T) {
	boom := errors.New("disk full")
	tr := NewTracer(8)
	tr.SetSink(&failWriter{n: 1, err: boom})
	tr.Record(Span{Stage: "a", Dur: 1}) // streams fine
	tr.Record(Span{Stage: "b", Dur: 2}) // sink fails, latches
	tr.Record(Span{Stage: "c", Dur: 3}) // sink skipped
	if err := tr.SinkErr(); !errors.Is(err, boom) {
		t.Fatalf("SinkErr = %v, want %v", err, boom)
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("ring Len = %d after sink failure, want 3", got)
	}
	// SetSink resets the latch.
	tr.SetSink(&bytes.Buffer{})
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("SinkErr after SetSink = %v, want nil", err)
	}
}

// TestSummaryAndStages checks the per-stage aggregation: counts,
// min/max/mean, nearest-rank quantiles, and the sorted stage list.
func TestSummaryAndStages(t *testing.T) {
	tr := NewTracer(16)
	for i := 1; i <= 4; i++ { // fast: 1,2,3,4ms
		tr.Record(Span{Stage: "fast", Dur: int64(i) * int64(time.Millisecond)})
	}
	tr.Record(Span{Stage: "slow", Dur: int64(time.Second)})

	stages := tr.Stages()
	if want := []string{"fast", "slow"}; len(stages) != 2 || stages[0] != want[0] || stages[1] != want[1] {
		t.Fatalf("Stages = %v, want %v", stages, want)
	}
	sum := tr.Summary()
	fast := sum["fast"]
	if fast.Count != 4 {
		t.Fatalf("fast count = %d, want 4", fast.Count)
	}
	if fast.Min != time.Millisecond || fast.Max != 4*time.Millisecond {
		t.Errorf("fast min/max = %v/%v", fast.Min, fast.Max)
	}
	if want := 2500 * time.Microsecond; fast.Mean != want {
		t.Errorf("fast mean = %v, want %v", fast.Mean, want)
	}
	// Nearest-rank p50 of [1,2,3,4]ms: rank = int(0.5*4+0.5)-1 = 1 → 2ms.
	if want := 2 * time.Millisecond; fast.P50 != want {
		t.Errorf("fast p50 = %v, want %v", fast.P50, want)
	}
	// Nearest-rank p95: rank = int(0.95*4+0.5)-1 = 3 → 4ms.
	if want := 4 * time.Millisecond; fast.P95 != want {
		t.Errorf("fast p95 = %v, want %v", fast.P95, want)
	}
	slow := sum["slow"]
	if slow.Count != 1 || slow.P50 != time.Second || slow.P95 != time.Second {
		t.Errorf("slow stats = %+v", slow)
	}
}

// TestNilTracerSafe: every method must be a no-op on a nil *Tracer so
// instrumentation points never need nil checks.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.SetRun("x")
	tr.SetSink(&bytes.Buffer{})
	tr.Record(Span{Stage: "a"})
	tr.RecordSince("a", time.Now(), 1, "p")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Evicted() != 0 {
		t.Fatal("nil tracer reported non-zero counts")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("nil tracer SinkErr = %v", err)
	}
	if got := tr.Summary(); len(got) != 0 {
		t.Fatalf("nil tracer summary = %v", got)
	}
	if got := tr.Stages(); len(got) != 0 {
		t.Fatalf("nil tracer stages = %v", got)
	}
}

// TestConcurrentRecord exercises Record/Snapshot/Summary from many
// goroutines — the `make race` gate runs this under -race.
func TestConcurrentRecord(t *testing.T) {
	tr := NewTracer(128)
	tr.SetSink(&bytes.Buffer{})
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Record(Span{Stage: fmt.Sprintf("s%d", g%3), Dur: int64(i)})
				if i%100 == 0 {
					_ = tr.Snapshot()
					_ = tr.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	if want := uint64(goroutines * perG); tr.Total() != want {
		t.Fatalf("Total = %d, want %d", tr.Total(), want)
	}
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want 128", tr.Len())
	}
	if want := uint64(goroutines*perG - 128); tr.Evicted() != want {
		t.Fatalf("Evicted = %d, want %d", tr.Evicted(), want)
	}
}

// TestHandler checks both response modes of the GET /trace handler:
// plain requests stream NDJSON, ?summary=1 returns the aggregate.
func TestHandler(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Stage: StageBlockVerify, Dur: int64(time.Millisecond), Height: 3})
	tr.Record(Span{Stage: StageStateApply, Dur: int64(2 * time.Millisecond), Height: 3})
	h := Handler(tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("ndjson Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(rec.Body)
	var stages []string
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("ndjson line %q: %v", sc.Text(), err)
		}
		stages = append(stages, s.Stage)
	}
	if len(stages) != 2 || stages[0] != StageBlockVerify || stages[1] != StageStateApply {
		t.Fatalf("ndjson stages = %v", stages)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?summary=1", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("summary Content-Type = %q", ct)
	}
	var summary struct {
		Total   uint64                `json:"total"`
		Evicted uint64                `json:"evicted"`
		Stages  map[string]StageStats `json:"stages"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&summary); err != nil {
		t.Fatalf("summary decode: %v", err)
	}
	if summary.Total != 2 || summary.Evicted != 0 {
		t.Errorf("summary total/evicted = %d/%d", summary.Total, summary.Evicted)
	}
	if s, ok := summary.Stages[StageBlockVerify]; !ok || s.Count != 1 {
		t.Errorf("summary missing %s: %+v", StageBlockVerify, summary.Stages)
	}
}
