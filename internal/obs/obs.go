// Package obs is the pipeline-observability subsystem: a lightweight
// event tracer that records per-block / per-transaction span records
// (stage, start, duration, peer, height) into a bounded in-memory ring,
// with an optional JSONL sink for machine-readable traces.
//
// The paper argues the DCS trade-offs with aggregate numbers (Bitcoin's
// ~7 tx/s vs an ordering service's >10K tx/s, §2.7); seeing *why*
// requires a per-stage latency breakdown of a block's life — gossip
// receipt → verify → connect → state apply → fork choice. Every hot-path
// component (p2p transport, node, consensus engines, ordering service,
// PBFT) accepts a *Tracer; all Tracer methods are nil-safe, so
// instrumentation points cost one predictable branch when tracing is
// off. cmd/ledgerd serves the ring at GET /trace, and cmd/dcsbench
// -stages turns traces into the paper's DC-vs-CS latency comparison.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Canonical pipeline stage names. Components record these so traces
// from different subsystems compose into one per-block timeline.
const (
	// StageP2PFlush is the enqueue→flush wait of one message on a TCP
	// peer queue (recorded by p2p.TCPTransport).
	StageP2PFlush = "p2p_flush"
	// StageBlockVerify covers tx-root, signature-batch, and seal
	// verification of one block.
	StageBlockVerify = "block_verify"
	// StageStateApply is the sequential state transition (ApplyBlock +
	// root commit) of one block.
	StageStateApply = "state_apply"
	// StageBlockConnect is the full validate-and-store path (verify +
	// state apply + tree insert).
	StageBlockConnect = "block_connect"
	// StageStateRebuild is an on-demand replay of a pruned state.
	StageStateRebuild = "state_rebuild"
	// StageOrphanAdopt is one worklist pass connecting buffered
	// unknown-parent descendants.
	StageOrphanAdopt = "orphan_adopt"
	// StageForkChoice is one branch-selection evaluation.
	StageForkChoice = "fork_choice"
	// StageBlockPropose is block assembly at the proposer (tx selection,
	// self-apply, seal, local adoption).
	StageBlockPropose = "block_propose"
	// StagePowSeal is the real preimage search inside block proposal.
	StagePowSeal = "pow_seal"
	// StageTxInclusion is a transaction's admit→inclusion age: mempool
	// admission until it lands in a main-chain block (virtual time on
	// the simulator).
	StageTxInclusion = "tx_inclusion"
	// StageOrderingCut is batch formation latency at an ordering
	// service: first buffered tx until the batch is cut.
	StageOrderingCut = "ordering_cut"
	// StagePBFTRound is one PBFT slot's pre-prepare→execute round time.
	StagePBFTRound = "pbft_round"
	// StageWALAppend is one durable journal write (block or head
	// record) on the node's commit path.
	StageWALAppend = "wal_append"
	// StageRecover is one crash-recovery replay: WAL scan, checkpoint
	// load, block reconnection, and head state-root verification.
	StageRecover = "recover"
	// StageExecParallel is the optimistic parallel apply of one block:
	// speculation lanes plus the in-order merge (internal/exec).
	StageExecParallel = "exec_parallel"
	// StageExecReplay is the serial re-execution of the conflicting
	// transaction suffix inside one parallel block apply.
	StageExecReplay = "exec_replay"
)

// Span is one traced pipeline event. The zero value of optional fields
// is omitted from the JSONL encoding to keep traces compact.
type Span struct {
	// Run labels the experiment/configuration ("pow", "ordering").
	Run string `json:"run,omitempty"`
	// Stage is the pipeline stage (one of the Stage* constants).
	Stage string `json:"stage"`
	// Start is the span's start instant in Unix nanoseconds.
	Start int64 `json:"startNs,omitempty"`
	// Dur is the span duration in nanoseconds.
	Dur int64 `json:"durNs"`
	// Peer identifies the observing node (or orderer).
	Peer string `json:"peer,omitempty"`
	// Height is the block height (or batch/slot sequence number).
	Height uint64 `json:"height,omitempty"`
	// N counts the items the span covered (txs in a block, orphans
	// adopted, solve attempts).
	N uint64 `json:"n,omitempty"`
}

// Duration returns the span duration as a time.Duration.
func (s Span) Duration() time.Duration { return time.Duration(s.Dur) }

// Stopwatch is an observability-only wall-clock timer. Consensus-
// critical packages must not read time.Now directly — dcslint's
// determinism analyzer flags it, because wall time that leaks into
// state or ordering forks replicas. They start a Stopwatch instead,
// which funnels every wall-clock read through this package where its
// use is auditable: elapsed times feed histograms and trace spans,
// never consensus state.
type Stopwatch struct {
	t0 time.Time
}

// StartTimer begins an observability stopwatch.
func StartTimer() Stopwatch { return Stopwatch{t0: time.Now()} }

// Start returns the stopwatch's start instant, for interop with
// Histogram.ObserveSince and Tracer.RecordSince.
func (s Stopwatch) Start() time.Time { return s.t0 }

// StartUnixNano returns the start instant in Unix nanoseconds — the
// Span.Start encoding.
func (s Stopwatch) StartUnixNano() int64 { return s.t0.UnixNano() }

// Elapsed returns the wall time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }

// DefaultRingCapacity bounds the tracer's in-memory ring when no
// explicit capacity is given.
const DefaultRingCapacity = 4096

// Tracer records spans into a bounded ring, evicting oldest-first when
// full, and optionally streams every span to a JSONL sink. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops), so
// components can be instrumented unconditionally.
type Tracer struct {
	mu      sync.Mutex
	run     string
	buf     []Span
	next    int // ring write cursor
	full    bool
	total   uint64
	evicted uint64
	sink    io.Writer
	sinkErr error
}

// NewTracer creates a tracer whose ring holds up to capacity spans
// (DefaultRingCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// SetRun stamps all subsequently recorded spans (that don't carry their
// own Run) with the given run label.
func (t *Tracer) SetRun(run string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.run = run
}

// SetSink streams every recorded span to w as one JSON object per line
// (JSONL), in addition to the in-memory ring. The first write error
// disables the sink and is reported by SinkErr.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	t.sinkErr = nil
}

// SinkErr returns the first JSONL sink write error, if any.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Record appends a span. A zero Start is stamped with the wall clock; an
// empty Run inherits the tracer's run label. When the ring is full the
// oldest span is evicted (counted in Evicted).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Start == 0 {
		s.Start = time.Now().UnixNano()
	}
	t.mu.Lock()
	if s.Run == "" {
		s.Run = t.run
	}
	t.total++
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
		if len(t.buf) == cap(t.buf) {
			t.full = true
		}
	} else {
		t.full = true
		t.buf[t.next] = s
		t.evicted++
	}
	t.next = (t.next + 1) % cap(t.buf)
	sink := t.sink
	if sink != nil && t.sinkErr == nil {
		if data, err := json.Marshal(s); err == nil {
			data = append(data, '\n')
			if _, werr := sink.Write(data); werr != nil {
				t.sinkErr = werr
			}
		}
	}
	t.mu.Unlock()
}

// RecordSince is a convenience Record for wall-clock spans: duration is
// time.Since(start).
func (t *Tracer) RecordSince(stage string, start time.Time, height uint64, peer string) {
	if t == nil {
		return
	}
	t.Record(Span{
		Stage:  stage,
		Start:  start.UnixNano(),
		Dur:    int64(time.Since(start)),
		Height: height,
		Peer:   peer,
	})
}

// Len returns how many spans the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns how many spans have ever been recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Evicted returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Snapshot returns the ring's spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if t.full && cap(t.buf) == len(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteJSONL writes the ring's spans (oldest first) to w, one JSON
// object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Snapshot() {
		data, err := json.Marshal(s)
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// StageStats summarizes the recorded spans of one stage.
type StageStats struct {
	Count uint64        `json:"count"`
	Min   time.Duration `json:"minNs"`
	Max   time.Duration `json:"maxNs"`
	Mean  time.Duration `json:"meanNs"`
	P50   time.Duration `json:"p50Ns"`
	P95   time.Duration `json:"p95Ns"`
}

// Summary aggregates the ring per stage: count, min/max, mean, and
// nearest-rank p50/p95.
func (t *Tracer) Summary() map[string]StageStats {
	spans := t.Snapshot()
	byStage := make(map[string][]time.Duration)
	for _, s := range spans {
		byStage[s.Stage] = append(byStage[s.Stage], s.Duration())
	}
	out := make(map[string]StageStats, len(byStage))
	for stage, ds := range byStage {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		out[stage] = StageStats{
			Count: uint64(len(ds)),
			Min:   ds[0],
			Max:   ds[len(ds)-1],
			Mean:  sum / time.Duration(len(ds)),
			P50:   quantile(ds, 0.50),
			P95:   quantile(ds, 0.95),
		}
	}
	return out
}

// Stages returns the distinct stage names present in the ring, sorted.
func (t *Tracer) Stages() []string {
	seen := make(map[string]struct{})
	for _, s := range t.Snapshot() {
		seen[s.Stage] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for stage := range seen {
		out = append(out, stage)
	}
	sort.Strings(out)
	return out
}

// quantile returns the nearest-rank q-quantile of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Handler serves the tracer over HTTP — wire it under GET /trace.
// Without parameters it streams the ring as JSONL (newest data
// included); with ?summary=1 it returns the per-stage aggregate as one
// JSON object.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("summary") != "" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"total":   t.Total(),
				"evicted": t.Evicted(),
				"stages":  t.Summary(),
			})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := t.WriteJSONL(w); err != nil {
			// Mid-stream failure: nothing recoverable to send.
			fmt.Fprintf(w, `{"error":%q}`+"\n", err.Error())
		}
	})
}
