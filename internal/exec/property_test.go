package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/vm"
)

// TestRandomBlocksMatchSerial is the executor's property test: random
// 256-transaction blocks — interleaved senders, shared hot recipients,
// direct payments to the proposer, contract invocations on overlapping
// storage slots — must produce bit-identical roots and receipts at
// every speculation width, paranoid checks on. Run under -race it also
// proves the speculation lanes share nothing they shouldn't.
func TestRandomBlocksMatchSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			parent := state.New()
			parent.SetExecutor(vm.NewExecutor())
			counter := deployContract(t, parent, fmt.Sprintf("prop-owner-%d", seed), counterSrc)
			_, proposer := keyAddr(fmt.Sprintf("prop-proposer-%d", seed))

			const senders = 24
			keys := make([]*cryptoutil.KeyPair, senders)
			nonces := make([]uint64, senders)
			for i := range keys {
				keys[i] = cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("prop-%d-sender-%d", seed, i)))
				parent.Credit(keys[i].Address(), 1_000_000)
			}
			var hot [4]cryptoutil.Address
			for i := range hot {
				_, hot[i] = keyAddr(fmt.Sprintf("prop-%d-hot-%d", seed, i))
			}

			const blockTxs = 256
			txs := make([]*types.Transaction, 0, blockTxs)
			for i := 0; i < blockTxs; i++ {
				s := rng.Intn(senders)
				k := keys[s]
				var tx *types.Transaction
				switch p := rng.Intn(100); {
				case p < 10: // contract invoke, 8 slots shared by everyone
					tx = &types.Transaction{
						Kind: types.TxInvoke, From: k.Address(), To: counter,
						Nonce: nonces[s], Fee: 2, GasLimit: 100_000,
						Data: vm.PackArgs(vm.WordFromUint64(uint64(rng.Intn(8)))),
					}
				case p < 14: // pay the proposer directly
					tx = types.NewTransfer(k.Address(), proposer, 5, 2, nonces[s])
				case p < 30: // hot shared recipient
					tx = types.NewTransfer(k.Address(), hot[rng.Intn(len(hot))], 5, 2, nonces[s])
				default: // fresh unique recipient
					_, to := keyAddr(fmt.Sprintf("prop-%d-fresh-%d", seed, i))
					tx = types.NewTransfer(k.Address(), to, 5, 2, nonces[s])
				}
				nonces[s]++
				if err := tx.Sign(k); err != nil {
					t.Fatalf("Sign: %v", err)
				}
				txs = append(txs, tx)
			}
			b := blockWith(t, proposer, 50, txs...)
			assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
		})
	}
}
