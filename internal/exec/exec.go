// Package exec implements optimistic parallel transaction execution for
// block application — the throughput lever ROADMAP item 3 names once
// codecs and signature checks are off the critical path.
//
// The executor speculates a block's transactions concurrently, each lane
// on its own copy-on-write child layer of the block state with an
// attached read/write-set recorder, then merges lanes back in
// transaction-index order. A lane whose footprint conflicts with an
// earlier-indexed lane's writes (RW or WW), whose speculation failed, or
// which touched the proposer account (fees are settled invisibly at
// merge) triggers a deterministic serial replay of the remaining
// transaction suffix. The committed state root is bit-identical to
// serial ApplyBlock for every block — see docs/EXECUTION.md for the
// argument, and the Paranoid flag for the runtime assertion.
//
// Lane granularity is a run: a maximal group of consecutive same-sender
// transactions. A sender's nonce chain executes sequentially inside one
// lane, so nonce succession never shows up as a conflict (the txpool
// orders same-sender transactions contiguously for exactly this reason).
package exec

import (
	"fmt"
	"sync"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/obs"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// Executor applies blocks with optimistic parallelism.
type Executor struct {
	// Workers is the number of speculation goroutines. <= 0 disables
	// speculation entirely: ApplyBlock degenerates to serial
	// state.ApplyBlock. 1 still exercises the speculate/merge machinery
	// (useful for tests) on a single lane at a time.
	Workers int
	// Paranoid re-runs every parallel block serially on a scratch layer
	// and fails if the root or receipts diverge. Debug-only: it forfeits
	// the speedup.
	Paranoid bool
}

// Stats describes how one block application went.
type Stats struct {
	Parallel    bool // whether the speculate/merge path ran
	Workers     int  // speculation width used
	Txs         int  // user transactions in the block
	Runs        int  // speculation lanes (same-sender runs)
	MergedRuns  int  // lanes committed straight from speculation
	Conflicts   int  // lanes rejected at merge (at most 1: suffix replay)
	ReplayedTxs int  // transactions re-executed serially

	SpecDur     time.Duration // summed per-lane speculation time (CPU view)
	ReplayDur   time.Duration // wall time of the serial suffix replay
	ParallelDur time.Duration // wall time of speculate + merge + replay

	// Span anchors for the exec_parallel / exec_replay trace stages.
	StartUnixNano       int64
	ReplayStartUnixNano int64
}

// SpeedupMilli estimates the parallel speedup as the ratio of speculated
// execution time (the serial-equivalent work) to wall-clock time, in
// thousandths. Returns 0 when the parallel path did not run.
func (s *Stats) SpeedupMilli() uint64 {
	if !s.Parallel || s.ParallelDur <= 0 {
		return 0
	}
	work := s.SpecDur + s.ReplayDur
	return uint64(work * 1000 / s.ParallelDur)
}

// lane is one speculation unit: a run of consecutive same-sender
// transactions executed on a private COW child layer.
type lane struct {
	txs []*types.Transaction

	serialOnly bool // needs an executor that cannot be forked
	failed     bool // speculation errored (stale reads or truly invalid)

	child    *state.State
	access   *state.Access
	fork     state.Executor // forked contract executor, nil if unused
	receipts []*state.Receipt
	fees     uint64
	dur      time.Duration
}

// ApplyBlock applies b on a fresh child layer of parent and returns the
// layer, the receipts in block order (coinbase first), and statistics.
// parent is never mutated. The result is bit-identical to
// parent.Copy().ApplyBlock(b, reward) — including whether it errors —
// regardless of Workers.
func (e *Executor) ApplyBlock(parent *state.State, b *types.Block, reward uint64) (*state.State, []*state.Receipt, *Stats, error) {
	st := parent.Copy()
	stats := &Stats{Txs: max(len(b.Txs)-1, 0), Workers: e.Workers}
	if e.Workers <= 0 || len(b.Txs) <= 1 {
		receipts, err := st.ApplyBlock(b, reward)
		if err != nil {
			return nil, nil, stats, err
		}
		return st, receipts, stats, nil
	}

	sw := obs.StartTimer()
	stats.StartUnixNano = sw.StartUnixNano()
	if _, err := state.CheckCoinbase(b, reward); err != nil {
		return nil, nil, stats, err
	}
	cb := b.Txs[0]
	proposer := b.Header.Proposer

	// Mirror serial ApplyBlock: mint only the subsidy before any user
	// transaction; fees flow to the proposer per merged lane.
	st.Credit(cb.To, reward)
	receipts := make([]*state.Receipt, 0, len(b.Txs))
	receipts = append(receipts, &state.Receipt{TxID: cb.ID(), OK: true})

	lanes := partition(b.Txs[1:])
	stats.Parallel = true
	stats.Runs = len(lanes)

	mainExec := st.Executor()
	forkable, _ := mainExec.(state.ForkableExecutor)
	if mainExec != nil && forkable == nil {
		// The executor keeps unshareable mutable state: any lane that
		// would drive it must be replayed serially instead.
		for _, l := range lanes {
			l.serialOnly = hasExecTx(l.txs)
		}
	}

	e.speculate(st, lanes, forkable)

	// Merge in transaction-index order against the cumulative write set
	// of everything already committed. The first rejected lane ends the
	// optimistic phase; the whole remaining suffix replays serially.
	wAcc := make(map[cryptoutil.Address]struct{})
	wSlot := make(map[state.SlotKey]struct{})
	replayFrom := -1
	for i, l := range lanes {
		if l.serialOnly || l.failed || conflicts(l.access, wAcc, wSlot, proposer) {
			replayFrom = i
			stats.Conflicts++
			break
		}
		st.Absorb(l.child)
		if l.fork != nil {
			forkable.Absorb(l.fork)
		}
		st.Credit(proposer, l.fees)
		receipts = append(receipts, l.receipts...)
		for a := range l.access.WriteAccounts {
			wAcc[a] = struct{}{}
		}
		for k := range l.access.WriteSlots {
			wSlot[k] = struct{}{}
		}
		stats.MergedRuns++
		stats.SpecDur += l.dur
	}

	if replayFrom >= 0 {
		rsw := obs.StartTimer()
		stats.ReplayStartUnixNano = rsw.StartUnixNano()
		for _, l := range lanes[replayFrom:] {
			for _, tx := range l.txs {
				rec, err := st.ApplyTx(tx, proposer)
				if err != nil {
					return nil, nil, stats, fmt.Errorf("exec: replay: %w", err)
				}
				receipts = append(receipts, rec)
				stats.ReplayedTxs++
			}
		}
		stats.ReplayDur = rsw.Elapsed()
	}
	stats.ParallelDur = sw.Elapsed()

	if e.Paranoid {
		if err := e.paranoidCheck(parent, b, reward, st, receipts, mainExec, forkable); err != nil {
			return nil, nil, stats, err
		}
	}
	return st, receipts, stats, nil
}

// speculate runs every non-serial-only lane on Workers goroutines. The
// block layer st is frozen for the duration: lanes only read through it.
// Worker scheduling cannot influence the outcome — each lane's result is
// a pure function of st and its own transactions, and the merge that
// follows the barrier runs in lane-index order.
func (e *Executor) speculate(st *state.State, lanes []*lane, forkable state.ForkableExecutor) {
	workers := min(e.Workers, len(lanes))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runLane(st, lanes[i], forkable)
			}
		}()
	}
	for i, l := range lanes {
		if !l.serialOnly {
			idx <- i
		}
	}
	close(idx)
	wg.Wait()
}

// runLane executes one run of same-sender transactions on a tracked COW
// child of st with fees deferred. Any error abandons the lane: the merge
// loop will replay it serially, where the same error either reproduces
// (invalid block) or vanishes (it was an artifact of stale reads).
func runLane(st *state.State, l *lane, forkable state.ForkableExecutor) {
	sw := obs.StartTimer()
	child := st.Copy()
	l.access = state.NewAccess()
	child.Track(l.access)
	if forkable != nil {
		l.fork = forkable.Fork()
		child.SetExecutor(l.fork)
	}
	for _, tx := range l.txs {
		rec, err := child.ApplyTxDeferredFee(tx)
		if err != nil {
			l.failed = true
			break
		}
		l.receipts = append(l.receipts, rec)
		l.fees += tx.Fee
	}
	l.child = child
	l.dur = sw.Elapsed()
}

// partition splits the user transactions into maximal runs of
// consecutive same-sender transactions, preserving block order.
func partition(txs []*types.Transaction) []*lane {
	var lanes []*lane
	for i, tx := range txs {
		if i > 0 && tx.From == txs[i-1].From {
			last := lanes[len(lanes)-1]
			last.txs = append(last.txs, tx)
			continue
		}
		lanes = append(lanes, &lane{txs: txs[i : i+1 : i+1]})
	}
	return lanes
}

// conflicts reports whether the lane's footprint overlaps the cumulative
// write set of already-merged lanes (RW/WW against lower-indexed
// transactions) or touches the proposer account, whose pending fee
// credits make every read of it stale by construction.
func conflicts(a *state.Access, wAcc map[cryptoutil.Address]struct{}, wSlot map[state.SlotKey]struct{}, proposer cryptoutil.Address) bool {
	if a.Touches(proposer) {
		return true
	}
	for addr := range a.ReadAccounts {
		if _, ok := wAcc[addr]; ok {
			return true //dcslint:ignore determinism set-intersection emptiness is iteration-order independent
		}
	}
	for addr := range a.WriteAccounts {
		if _, ok := wAcc[addr]; ok {
			return true //dcslint:ignore determinism set-intersection emptiness is iteration-order independent
		}
	}
	for k := range a.ReadSlots {
		if _, ok := wSlot[k]; ok {
			return true //dcslint:ignore determinism set-intersection emptiness is iteration-order independent
		}
	}
	for k := range a.WriteSlots {
		if _, ok := wSlot[k]; ok {
			return true //dcslint:ignore determinism set-intersection emptiness is iteration-order independent
		}
	}
	return false
}

func hasExecTx(txs []*types.Transaction) bool {
	for _, tx := range txs {
		if tx.Kind == types.TxDeploy || tx.Kind == types.TxInvoke {
			return true
		}
	}
	return false
}

// paranoidCheck re-applies the block serially on a scratch layer and
// fails on any divergence in root or receipts. When the node's executor
// is non-forkable and the block carries contract transactions, the check
// is skipped: double-driving such an executor would duplicate its side
// effects (those blocks took the serial replay path anyway).
func (e *Executor) paranoidCheck(parent *state.State, b *types.Block, reward uint64, got *state.State, gotRecs []*state.Receipt, mainExec state.Executor, forkable state.ForkableExecutor) error {
	chk := parent.Copy()
	if forkable != nil {
		chk.SetExecutor(forkable.Fork())
	} else if mainExec != nil && hasExecTx(b.Txs) {
		return nil
	}
	wantRecs, err := chk.ApplyBlock(b, reward)
	if err != nil {
		return fmt.Errorf("exec: paranoid: serial re-run rejected accepted block: %w", err)
	}
	if err := ReceiptsEqual(gotRecs, wantRecs); err != nil {
		return fmt.Errorf("exec: paranoid: %w", err)
	}
	if gr, wr := got.Commit(), chk.Commit(); gr != wr {
		return fmt.Errorf("exec: paranoid: parallel root %s != serial root %s", gr.Short(), wr.Short())
	}
	return nil
}

// ReceiptsEqual reports (as an error carrying the first difference)
// whether two receipt sequences are identical field for field.
func ReceiptsEqual(got, want []*state.Receipt) error {
	if len(got) != len(want) {
		return fmt.Errorf("receipt count %d != %d", len(got), len(want))
	}
	for i := range got {
		if *got[i] != *want[i] {
			return fmt.Errorf("receipt %d: %+v != %+v", i, *got[i], *want[i])
		}
	}
	return nil
}
