package exec

import (
	"errors"
	"fmt"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/vm"
)

func keyAddr(seed string) (*cryptoutil.KeyPair, cryptoutil.Address) {
	k := cryptoutil.KeyFromSeed([]byte(seed))
	return k, k.Address()
}

func signedTransfer(t *testing.T, fromSeed string, to cryptoutil.Address, value, fee, nonce uint64) *types.Transaction {
	t.Helper()
	k, from := keyAddr(fromSeed)
	tx := types.NewTransfer(from, to, value, fee, nonce)
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return tx
}

func signedInvoke(t *testing.T, fromSeed string, to cryptoutil.Address, nonce uint64, args ...vm.Word) *types.Transaction {
	t.Helper()
	k, from := keyAddr(fromSeed)
	tx := &types.Transaction{
		Kind: types.TxInvoke, From: from, To: to,
		Nonce: nonce, Fee: 3, GasLimit: 100_000,
		Data: vm.PackArgs(args...),
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return tx
}

// blockWith wraps txs in a block whose coinbase covers reward+fees.
func blockWith(t *testing.T, proposer cryptoutil.Address, reward uint64, txs ...*types.Transaction) *types.Block {
	t.Helper()
	var fees uint64
	for _, tx := range txs {
		fees += tx.Fee
	}
	all := append([]*types.Transaction{types.NewCoinbase(proposer, reward+fees, 1)}, txs...)
	return types.NewBlock(cryptoutil.ZeroHash, 1, 0, proposer, all)
}

// assertMatchesSerial applies b at several widths and requires every
// outcome — root, receipts, error — to match serial execution.
func assertMatchesSerial(t *testing.T, parent *state.State, b *types.Block, reward uint64, widths ...int) {
	t.Helper()
	serial := parent.Copy()
	wantRecs, wantErr := serial.ApplyBlock(b, reward)
	var wantRoot cryptoutil.Hash
	if wantErr == nil {
		wantRoot = serial.Commit()
	}
	for _, w := range widths {
		ex := &Executor{Workers: w, Paranoid: true}
		st, recs, _, err := ex.ApplyBlock(parent, b, reward)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("workers=%d: err=%v, serial err=%v", w, err, wantErr)
		}
		if err != nil {
			continue
		}
		if got := st.Commit(); got != wantRoot {
			t.Fatalf("workers=%d: root %s != serial %s", w, got.Short(), wantRoot.Short())
		}
		if err := ReceiptsEqual(recs, wantRecs); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

func TestParallelMatchesSerialLowConflict(t *testing.T) {
	parent := state.New()
	_, proposer := keyAddr("proposer")
	var txs []*types.Transaction
	for i := 0; i < 16; i++ {
		seed := fmt.Sprintf("sender-%d", i)
		_, from := keyAddr(seed)
		parent.Credit(from, 1_000)
		_, to := keyAddr(fmt.Sprintf("recipient-%d", i))
		txs = append(txs, signedTransfer(t, seed, to, 100, 2, 0))
	}
	b := blockWith(t, proposer, 50, txs...)

	ex := &Executor{Workers: 4}
	_, _, stats, err := ex.ApplyBlock(parent, b, 50)
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if !stats.Parallel || stats.Runs != 16 || stats.MergedRuns != 16 || stats.Conflicts != 0 {
		t.Fatalf("stats = %+v, want 16 merged runs, 0 conflicts", stats)
	}
	assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
}

func TestSharedRecipientConflictReplays(t *testing.T) {
	parent := state.New()
	_, proposer := keyAddr("proposer")
	_, hot := keyAddr("hot-recipient")
	var txs []*types.Transaction
	for i := 0; i < 8; i++ {
		seed := fmt.Sprintf("c-sender-%d", i)
		_, from := keyAddr(seed)
		parent.Credit(from, 1_000)
		// Every transfer credits the same recipient: lane 1 writes hot,
		// lane 2 reads it (Credit is a read-modify-write) — RW conflict.
		txs = append(txs, signedTransfer(t, seed, hot, 10, 1, 0))
	}
	b := blockWith(t, proposer, 50, txs...)

	ex := &Executor{Workers: 4}
	_, _, stats, err := ex.ApplyBlock(parent, b, 50)
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if stats.Conflicts != 1 || stats.MergedRuns != 1 || stats.ReplayedTxs != 7 {
		t.Fatalf("stats = %+v, want first lane merged and 7 replayed", stats)
	}
	assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
}

func TestProposerReadTriggersReplay(t *testing.T) {
	parent := state.New()
	_, proposer := keyAddr("proposer")
	_, other := keyAddr("other")
	for _, seed := range []string{"p-a", "p-b"} {
		_, from := keyAddr(seed)
		parent.Credit(from, 1_000)
	}
	// First tx pays the proposer directly: its lane touches the account
	// where deferred fees accumulate, so nothing may merge optimistically.
	txs := []*types.Transaction{
		signedTransfer(t, "p-a", proposer, 10, 1, 0),
		signedTransfer(t, "p-b", other, 10, 1, 0),
	}
	b := blockWith(t, proposer, 50, txs...)

	ex := &Executor{Workers: 2}
	_, _, stats, err := ex.ApplyBlock(parent, b, 50)
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if stats.Conflicts != 1 || stats.ReplayedTxs != 2 {
		t.Fatalf("stats = %+v, want full replay from tx 1", stats)
	}
	assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
}

func TestSameSenderRunIsOneLane(t *testing.T) {
	parent := state.New()
	_, proposer := keyAddr("proposer")
	_, from := keyAddr("chain-sender")
	parent.Credit(from, 10_000)
	var txs []*types.Transaction
	for n := uint64(0); n < 10; n++ {
		_, to := keyAddr(fmt.Sprintf("chain-to-%d", n))
		txs = append(txs, signedTransfer(t, "chain-sender", to, 10, 1, n))
	}
	b := blockWith(t, proposer, 50, txs...)

	ex := &Executor{Workers: 4}
	_, _, stats, err := ex.ApplyBlock(parent, b, 50)
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if stats.Runs != 1 || stats.Conflicts != 0 || stats.ReplayedTxs != 0 {
		t.Fatalf("stats = %+v, want one conflict-free lane", stats)
	}
	assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
}

// counterSrc increments storage slot arg0 and logs nothing: the storage
// read-modify-write makes two invocations of the same slot conflict.
const counterSrc = `
PUSH 0
ARG
DUP
SLOAD
PUSH 1
ADD
SSTORE
STOP
`

// logSrc emits one event with topic arg0.
const logSrc = `
PUSH 0
ARG
PUSH 7
LOG
STOP
`

func deployContract(t *testing.T, st *state.State, ownerSeed string, src string) cryptoutil.Address {
	t.Helper()
	k, owner := keyAddr(ownerSeed)
	st.Credit(owner, 1_000_000)
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: owner, Nonce: st.Nonce(owner),
		Fee: 3, GasLimit: 100_000, Data: vm.MustAssemble(src),
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	_, miner := keyAddr("deploy-miner")
	rec, err := st.ApplyTx(tx, miner)
	if err != nil || !rec.OK {
		t.Fatalf("deploy: %v %+v", err, rec)
	}
	return rec.ContractAddress
}

func TestContractStorageConflicts(t *testing.T) {
	parent := state.New()
	parent.SetExecutor(vm.NewExecutor())
	_, proposer := keyAddr("proposer")
	counter := deployContract(t, parent, "owner", counterSrc)

	mk := func(n int, slot uint64) *types.Transaction {
		seed := fmt.Sprintf("vm-sender-%d", n)
		_, from := keyAddr(seed)
		parent.Credit(from, 1_000)
		return signedInvoke(t, seed, counter, 0, vm.WordFromUint64(slot))
	}

	t.Run("distinct slots merge", func(t *testing.T) {
		var txs []*types.Transaction
		for i := 0; i < 8; i++ {
			txs = append(txs, mk(i, uint64(i)))
		}
		b := blockWith(t, proposer, 50, txs...)
		ex := &Executor{Workers: 4}
		_, _, stats, err := ex.ApplyBlock(parent, b, 50)
		if err != nil {
			t.Fatalf("ApplyBlock: %v", err)
		}
		if stats.MergedRuns != 8 || stats.Conflicts != 0 {
			t.Fatalf("stats = %+v, want 8 merged lanes", stats)
		}
		assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
	})

	t.Run("shared slot replays", func(t *testing.T) {
		var txs []*types.Transaction
		for i := 10; i < 16; i++ {
			txs = append(txs, mk(i, 99))
		}
		b := blockWith(t, proposer, 50, txs...)
		ex := &Executor{Workers: 4}
		st, _, stats, err := ex.ApplyBlock(parent, b, 50)
		if err != nil {
			t.Fatalf("ApplyBlock: %v", err)
		}
		if stats.Conflicts != 1 || stats.ReplayedTxs != 5 {
			t.Fatalf("stats = %+v, want suffix replay of 5", stats)
		}
		slot := vm.WordFromUint64(99)
		var got vm.Word
		copy(got[:], st.Storage(counter, slot[:]))
		if got.Uint64() != 6 {
			t.Fatalf("slot 99 = %d, want 6", got.Uint64())
		}
		assertMatchesSerial(t, parent, b, 50, 1, 2, 8)
	})
}

func TestEventOrderMatchesSerial(t *testing.T) {
	parent := state.New()
	parent.SetExecutor(vm.NewExecutor())
	_, proposer := keyAddr("proposer")
	logger := deployContract(t, parent, "log-owner", logSrc)

	var txs []*types.Transaction
	for i := 0; i < 6; i++ {
		seed := fmt.Sprintf("log-sender-%d", i)
		_, from := keyAddr(seed)
		parent.Credit(from, 1_000)
		txs = append(txs, signedInvoke(t, seed, logger, 0, vm.WordFromUint64(uint64(i))))
	}
	b := blockWith(t, proposer, 50, txs...)

	run := func(workers int) []vm.Event {
		px := parent.Copy()
		ve := vm.NewExecutor()
		px.SetExecutor(ve)
		ex := &Executor{Workers: workers}
		if _, _, _, err := ex.ApplyBlock(px, b, 50); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ve.DrainEvents()
	}
	want := run(0)
	if len(want) != 6 {
		t.Fatalf("serial produced %d events, want 6", len(want))
	}
	for _, w := range []int{1, 2, 8} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: event %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

// rigidExecutor implements state.Executor without Fork/Absorb.
type rigidExecutor struct{ inner *vm.Executor }

func (r *rigidExecutor) Deploy(st *state.State, tx *types.Transaction) (cryptoutil.Address, uint64, error) {
	return r.inner.Deploy(st, tx)
}
func (r *rigidExecutor) Invoke(st *state.State, tx *types.Transaction) (uint64, error) {
	return r.inner.Invoke(st, tx)
}

func TestNonForkableExecutorReplaysContractTxs(t *testing.T) {
	parent := state.New()
	parent.SetExecutor(vm.NewExecutor())
	counter := deployContract(t, parent, "rigid-owner", counterSrc)
	parent.SetExecutor(&rigidExecutor{inner: vm.NewExecutor()})
	_, proposer := keyAddr("proposer")

	_, a := keyAddr("rigid-a")
	parent.Credit(a, 1_000)
	_, to := keyAddr("rigid-to")
	txs := []*types.Transaction{
		signedTransfer(t, "rigid-a", to, 10, 1, 0),
		func() *types.Transaction {
			seed := "rigid-b"
			_, from := keyAddr(seed)
			parent.Credit(from, 1_000)
			return signedInvoke(t, seed, counter, 0, vm.WordFromUint64(1))
		}(),
	}
	b := blockWith(t, proposer, 50, txs...)

	ex := &Executor{Workers: 2}
	st, _, stats, err := ex.ApplyBlock(parent, b, 50)
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if stats.MergedRuns != 1 || stats.ReplayedTxs != 1 {
		t.Fatalf("stats = %+v, want transfer merged and invoke replayed", stats)
	}
	serial := parent.Copy()
	if _, err := serial.ApplyBlock(b, 50); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if st.Commit() != serial.Commit() {
		t.Fatal("root mismatch with non-forkable executor")
	}
}

func TestInvalidBlockRejectedAtEveryWidth(t *testing.T) {
	parent := state.New()
	_, proposer := keyAddr("proposer")
	_, from := keyAddr("bad-sender")
	parent.Credit(from, 1_000)
	_, to := keyAddr("bad-to")
	// Nonce 5 is invalid (account is at 0) at merge and serial alike.
	bad := signedTransfer(t, "bad-sender", to, 10, 1, 5)
	b := blockWith(t, proposer, 50, bad)

	for _, w := range []int{0, 1, 2, 8} {
		ex := &Executor{Workers: w}
		if _, _, _, err := ex.ApplyBlock(parent, b, 50); !errors.Is(err, state.ErrBadNonce) {
			t.Fatalf("workers=%d: err = %v, want ErrBadNonce", w, err)
		}
	}
}

func TestParentNeverMutated(t *testing.T) {
	parent := state.New()
	_, proposer := keyAddr("proposer")
	_, from := keyAddr("mut-sender")
	parent.Credit(from, 1_000)
	before := parent.Commit()

	_, to := keyAddr("mut-to")
	b := blockWith(t, proposer, 50, signedTransfer(t, "mut-sender", to, 10, 1, 0))
	ex := &Executor{Workers: 2}
	if _, _, _, err := ex.ApplyBlock(parent, b, 50); err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if parent.Commit() != before {
		t.Fatal("parent state mutated by ApplyBlock")
	}
}
