package store

import (
	"errors"
	"fmt"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func genesis() *types.Block {
	return types.NewBlock(cryptoutil.ZeroHash, 0, 0, cryptoutil.ZeroAddress, nil)
}

// child makes a block on top of parent with a unique marker transaction.
func child(parent *types.Block, marker string) *types.Block {
	miner := cryptoutil.KeyFromSeed([]byte(marker)).Address()
	cb := types.NewCoinbase(miner, 50, parent.Header.Height+1)
	cb.Data = []byte(marker)
	return types.NewBlock(parent.Hash(), parent.Header.Height+1, int64(parent.Header.Height+1), miner, []*types.Transaction{cb})
}

func TestBlockTreeAddGet(t *testing.T) {
	g := genesis()
	tree := NewBlockTree(g)
	b1 := child(g, "b1")
	if err := tree.Add(b1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	got, ok := tree.Get(b1.Hash())
	if !ok || got.Hash() != b1.Hash() {
		t.Fatal("Get after Add failed")
	}
	if tree.Len() != 2 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestBlockTreeRejects(t *testing.T) {
	g := genesis()
	tree := NewBlockTree(g)
	b1 := child(g, "b1")
	if err := tree.Add(b1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	t.Run("duplicate", func(t *testing.T) {
		if err := tree.Add(b1); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("want ErrDuplicate, got %v", err)
		}
	})
	t.Run("orphan", func(t *testing.T) {
		orphan := child(child(g, "unseen"), "orphan")
		if err := tree.Add(orphan); !errors.Is(err, ErrUnknownParent) {
			t.Fatalf("want ErrUnknownParent, got %v", err)
		}
	})
	t.Run("bad height", func(t *testing.T) {
		bad := child(g, "bad")
		bad.Header.Height = 7
		if err := tree.Add(bad); !errors.Is(err, ErrBadHeight) {
			t.Fatalf("want ErrBadHeight, got %v", err)
		}
	})
}

// buildFork creates:
//
//	g — a1 — a2 — a3
//	  \ b1 — b2
func buildFork(t *testing.T) (*BlockTree, *types.Block, []*types.Block, []*types.Block) {
	t.Helper()
	g := genesis()
	tree := NewBlockTree(g)
	a1 := child(g, "a1")
	a2 := child(a1, "a2")
	a3 := child(a2, "a3")
	b1 := child(g, "b1")
	b2 := child(b1, "b2")
	for _, b := range []*types.Block{a1, a2, a3, b1, b2} {
		if err := tree.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return tree, g, []*types.Block{a1, a2, a3}, []*types.Block{b1, b2}
}

func TestTipsAndChildren(t *testing.T) {
	tree, g, as, bs := buildFork(t)
	tips := tree.Tips()
	if len(tips) != 2 {
		t.Fatalf("tips = %d, want 2", len(tips))
	}
	want := map[cryptoutil.Hash]bool{as[2].Hash(): true, bs[1].Hash(): true}
	for _, tip := range tips {
		if !want[tip] {
			t.Fatalf("unexpected tip %s", tip.Short())
		}
	}
	if len(tree.Children(g.Hash())) != 2 {
		t.Fatal("genesis should have two children")
	}
}

func TestPathAncestorCommonAncestor(t *testing.T) {
	tree, g, as, bs := buildFork(t)
	path, err := tree.PathFromGenesis(as[2].Hash())
	if err != nil {
		t.Fatalf("PathFromGenesis: %v", err)
	}
	if len(path) != 4 || path[0] != g.Hash() || path[3] != as[2].Hash() {
		t.Fatalf("path = %v", path)
	}
	ok, err := tree.Ancestor(as[0].Hash(), as[2].Hash())
	if err != nil || !ok {
		t.Fatalf("a1 should be ancestor of a3: %v %v", ok, err)
	}
	ok, err = tree.Ancestor(bs[0].Hash(), as[2].Hash())
	if err != nil || ok {
		t.Fatalf("b1 must not be ancestor of a3: %v %v", ok, err)
	}
	ca, err := tree.CommonAncestor(as[2].Hash(), bs[1].Hash())
	if err != nil {
		t.Fatalf("CommonAncestor: %v", err)
	}
	if ca != g.Hash() {
		t.Fatalf("common ancestor = %s, want genesis", ca.Short())
	}
	ca2, err := tree.CommonAncestor(as[2].Hash(), as[1].Hash())
	if err != nil || ca2 != as[1].Hash() {
		t.Fatalf("common ancestor on same branch = %s", ca2.Short())
	}
}

func TestSubtreeSize(t *testing.T) {
	tree, g, as, bs := buildFork(t)
	tests := []struct {
		name string
		h    cryptoutil.Hash
		want int
	}{
		{name: "genesis", h: g.Hash(), want: 6},
		{name: "a1", h: as[0].Hash(), want: 3},
		{name: "b1", h: bs[0].Hash(), want: 2},
		{name: "a3 leaf", h: as[2].Hash(), want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tree.SubtreeSize(tt.h)
			if err != nil {
				t.Fatalf("SubtreeSize: %v", err)
			}
			if got != tt.want {
				t.Fatalf("SubtreeSize = %d, want %d", got, tt.want)
			}
		})
	}
	if _, err := tree.SubtreeSize(cryptoutil.HashBytes([]byte("nope"))); !errors.Is(err, ErrUnknownBlock) {
		t.Fatal("unknown block must error")
	}
}

func TestTotalDifficulty(t *testing.T) {
	g := genesis()
	tree := NewBlockTree(g)
	b1 := child(g, "b1")
	b1.Header.Difficulty = 10
	b2 := child(b1, "b2")
	b2.Header.Difficulty = 20
	if err := tree.Add(b1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := tree.Add(b2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	td, err := tree.TotalDifficulty(b2.Hash())
	if err != nil {
		t.Fatalf("TotalDifficulty: %v", err)
	}
	if td != 30 {
		t.Fatalf("TotalDifficulty = %d, want 30", td)
	}
}

func TestChainSetHeadAndReorg(t *testing.T) {
	tree, _, as, bs := buildFork(t)
	c := NewChain(tree)
	removed, added, err := c.SetHead(as[2].Hash())
	if err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	if len(removed) != 0 || len(added) != 3 {
		t.Fatalf("removed/added = %d/%d", len(removed), len(added))
	}
	if c.Height() != 3 || c.Head() != as[2].Hash() {
		t.Fatalf("height %d head %s", c.Height(), c.Head().Short())
	}

	// Reorg to the b branch.
	removed, added, err = c.SetHead(bs[1].Hash())
	if err != nil {
		t.Fatalf("SetHead reorg: %v", err)
	}
	if len(removed) != 3 || len(added) != 2 {
		t.Fatalf("reorg removed/added = %d/%d", len(removed), len(added))
	}
	if c.Contains(as[0].Hash()) {
		t.Fatal("a-branch must leave the main chain")
	}
	if !c.Contains(bs[0].Hash()) || !c.Contains(bs[1].Hash()) {
		t.Fatal("b-branch must be on the main chain")
	}
}

func TestChainConfirmationsAndLookup(t *testing.T) {
	tree, g, as, _ := buildFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[2].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	if got := c.Confirmations(as[2].Hash()); got != 1 {
		t.Fatalf("tip confirmations = %d, want 1", got)
	}
	if got := c.Confirmations(g.Hash()); got != 4 {
		t.Fatalf("genesis confirmations = %d, want 4", got)
	}
	// Off-chain block: zero confirmations.
	offChain := child(g, "b1")
	if got := c.Confirmations(offChain.Hash()); got != 0 {
		t.Fatalf("fork block confirmations = %d, want 0", got)
	}

	// Transaction lookup.
	txID := as[1].Txs[0].ID()
	bh, idx, ok := c.FindTx(txID)
	if !ok || bh != as[1].Hash() || idx != 0 {
		t.Fatalf("FindTx = %s %d %v", bh.Short(), idx, ok)
	}
	// After reorg away, the tx disappears from the index.
	b1 := child(g, "b1")
	if _, _, err := c.SetHead(b1.Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	if _, _, ok := c.FindTx(txID); ok {
		t.Fatal("tx from reorged-out block must vanish from index")
	}
}

func TestChainAtHeightAndHeaders(t *testing.T) {
	tree, g, as, _ := buildFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[2].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	h0, ok := c.AtHeight(0)
	if !ok || h0 != g.Hash() {
		t.Fatal("AtHeight(0) should be genesis")
	}
	if _, ok := c.AtHeight(99); ok {
		t.Fatal("AtHeight past tip should miss")
	}
	hs := c.Headers(1, 2)
	if len(hs) != 2 || hs[0].Height != 1 || hs[1].Height != 2 {
		t.Fatalf("Headers = %+v", hs)
	}
	if got := c.Headers(10, 5); len(got) != 0 {
		t.Fatal("Headers past tip should be empty")
	}
}

func TestOffChainStore(t *testing.T) {
	s := NewOffChainStore()
	blob := []byte("medical record, kept off-chain for privacy")
	anchor := s.Put(blob)

	got, err := s.Get(anchor)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(blob) {
		t.Fatal("blob mismatch")
	}

	t.Run("missing", func(t *testing.T) {
		s.Drop(anchor)
		if _, err := s.Get(anchor); !errors.Is(err, ErrBlobMissing) {
			t.Fatalf("want ErrBlobMissing, got %v", err)
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		anchor2 := s.Put(blob)
		s.Corrupt(anchor2, []byte("tampered"))
		if _, err := s.Get(anchor2); !errors.Is(err, ErrBlobCorrupted) {
			t.Fatalf("want ErrBlobCorrupted, got %v", err)
		}
	})
}

func TestOffChainStoreSize(t *testing.T) {
	s := NewOffChainStore()
	for i := 0; i < 5; i++ {
		s.Put([]byte(fmt.Sprintf("blob-%d-%s", i, string(make([]byte, 100)))))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Size() < 500 {
		t.Fatalf("Size = %d", s.Size())
	}
}

// TestChildrenReturnsCopy pins the aliasing contract of the child
// accessor: the returned slice is the caller's to mutate, and writing
// through it must never corrupt the tree's child index.
func TestChildrenReturnsCopy(t *testing.T) {
	tree, g, as, bs := buildFork(t)
	kids := tree.Children(g.Hash())
	if len(kids) != 2 {
		t.Fatalf("genesis children = %d, want 2", len(kids))
	}
	kids[0], kids[1] = cryptoutil.ZeroHash, cryptoutil.ZeroHash

	again := tree.Children(g.Hash())
	want := map[cryptoutil.Hash]bool{as[0].Hash(): true, bs[0].Hash(): true}
	for _, k := range again {
		if !want[k] {
			t.Fatalf("child index corrupted through returned slice: got %s", k.Short())
		}
	}
	// The structural walks that depend on the index still work.
	if _, err := tree.PathFromGenesis(as[2].Hash()); err != nil {
		t.Fatalf("PathFromGenesis after caller mutation: %v", err)
	}
}
