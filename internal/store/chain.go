package store

import (
	"sync"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

// Chain is the main-chain view over a block tree: the branch currently
// selected by the fork-choice rule, indexed by height. It also answers
// the "block age" question the paper ties trust to (Section 2.2) via
// Confirmations.
//
// Heights are absolute block-header heights. They coincide with slice
// positions only when the tree is rooted at a height-0 genesis; a tree
// re-rooted at a checkpoint (recovery from a pruned journal) starts at
// the checkpoint's height, and everything below it is simply absent.
type Chain struct {
	mu       sync.RWMutex
	tree     *BlockTree
	base     uint64 // header height of the tree root (byHeight[0])
	byHeight []cryptoutil.Hash
	txIndex  map[cryptoutil.Hash]txLocation
}

type txLocation struct {
	block cryptoutil.Hash
	index int
}

// NewChain creates a main-chain view with the tree's root block as head.
func NewChain(tree *BlockTree) *Chain {
	c := &Chain{tree: tree, txIndex: make(map[cryptoutil.Hash]txLocation)}
	if gb, ok := tree.Get(tree.Genesis()); ok {
		c.base = gb.Header.Height
	}
	c.setHeadLocked(tree.Genesis())
	return c
}

// Tree returns the underlying block tree.
func (c *Chain) Tree() *BlockTree { return c.tree }

// SetHead re-points the main chain at the branch ending in tip,
// rebuilding the height and transaction indexes. It returns the hashes
// that left the main chain (the reorged-out blocks) and those that
// joined it, which callers use to return transactions to the mempool and
// replay state.
func (c *Chain) SetHead(tip cryptoutil.Hash) (removed, added []cryptoutil.Hash, err error) {
	path, err := c.tree.PathFromGenesis(tip)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.byHeight
	// Find divergence point.
	n := min(len(old), len(path))
	div := 0
	for div < n && old[div] == path[div] {
		div++
	}
	removed = append(removed, old[div:]...)
	added = append(added, path[div:]...)
	c.byHeight = path
	for _, h := range removed {
		b, _ := c.tree.Get(h)
		for _, tx := range b.Txs {
			delete(c.txIndex, tx.ID())
		}
	}
	for _, h := range added {
		b, _ := c.tree.Get(h)
		for i, tx := range b.Txs {
			c.txIndex[tx.ID()] = txLocation{block: h, index: i}
		}
	}
	return removed, added, nil
}

func (c *Chain) setHeadLocked(tip cryptoutil.Hash) {
	path, err := c.tree.PathFromGenesis(tip)
	if err != nil {
		return
	}
	c.byHeight = path
	for _, h := range path {
		b, _ := c.tree.Get(h)
		for i, tx := range b.Txs {
			c.txIndex[tx.ID()] = txLocation{block: h, index: i}
		}
	}
}

// Head returns the current main-chain tip hash.
func (c *Chain) Head() cryptoutil.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byHeight[len(c.byHeight)-1]
}

// HeadBlock returns the current main-chain tip block.
func (c *Chain) HeadBlock() *types.Block {
	b, _ := c.tree.Get(c.Head())
	return b
}

// Height returns the head's absolute header height (a height-0 genesis
// root makes this the main-chain length minus one).
func (c *Chain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base + uint64(len(c.byHeight)-1)
}

// AtHeight returns the main-chain block hash at the given absolute
// height (false below a re-rooted tree's base).
func (c *Chain) AtHeight(h uint64) (cryptoutil.Hash, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if h < c.base || h-c.base >= uint64(len(c.byHeight)) {
		return cryptoutil.ZeroHash, false
	}
	return c.byHeight[h-c.base], true
}

// Contains reports whether block h is on the main chain.
func (c *Chain) Contains(h cryptoutil.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.tree.Get(h)
	if !ok {
		return false
	}
	ht := b.Header.Height
	return ht >= c.base && ht-c.base < uint64(len(c.byHeight)) && c.byHeight[ht-c.base] == h
}

// Confirmations returns how many blocks follow h on the main chain,
// plus one (so the tip has 1 confirmation). Zero means not on the main
// chain — the paper's "trust grows with block age" quantity.
func (c *Chain) Confirmations(h cryptoutil.Hash) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.tree.Get(h)
	if !ok {
		return 0
	}
	ht := b.Header.Height
	if ht < c.base || ht-c.base >= uint64(len(c.byHeight)) || c.byHeight[ht-c.base] != h {
		return 0
	}
	return uint64(len(c.byHeight)) - (ht - c.base)
}

// FindTx locates a transaction on the main chain, returning its block
// hash and index within the block.
func (c *Chain) FindTx(txID cryptoutil.Hash) (blockHash cryptoutil.Hash, index int, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, ok := c.txIndex[txID]
	if !ok {
		return cryptoutil.ZeroHash, 0, false
	}
	return loc.block, loc.index, true
}

// Headers returns the main-chain headers from height `from` (inclusive),
// at most limit entries — the feed an SPV client or fast-sync peer pulls.
func (c *Chain) Headers(from uint64, limit int) []types.BlockHeader {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []types.BlockHeader
	if from < c.base {
		from = c.base
	}
	for h := from; h-c.base < uint64(len(c.byHeight)) && len(out) < limit; h++ {
		b, _ := c.tree.Get(c.byHeight[h-c.base])
		out = append(out, b.Header)
	}
	return out
}
