// Package store holds the persistence layer of a peer: the block tree
// (all blocks ever received, including branches — the raw material for
// branch-selection algorithms), the main-chain index derived from a fork
// choice, and the off-chain store of Section 4.5 (bulk data kept outside
// the blockchain, anchored on-chain by hash).
package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

// Block tree errors, matchable with errors.Is.
var (
	ErrUnknownParent = errors.New("store: unknown parent block")
	ErrUnknownBlock  = errors.New("store: unknown block")
	ErrDuplicate     = errors.New("store: duplicate block")
	ErrBadHeight     = errors.New("store: height must be parent height + 1")
	ErrHasGenesis    = errors.New("store: genesis already set")
)

// BlockTree stores every received block, indexed by hash, with a
// child index so branch-selection algorithms can walk the tree. It is
// safe for concurrent use.
type BlockTree struct {
	mu       sync.RWMutex
	blocks   map[cryptoutil.Hash]*types.Block
	children map[cryptoutil.Hash][]cryptoutil.Hash
	genesis  cryptoutil.Hash
}

// NewBlockTree creates a block tree rooted at the given genesis block.
func NewBlockTree(genesis *types.Block) *BlockTree {
	t := &BlockTree{
		blocks:   make(map[cryptoutil.Hash]*types.Block),
		children: make(map[cryptoutil.Hash][]cryptoutil.Hash),
	}
	h := genesis.Hash()
	t.blocks[h] = genesis
	t.genesis = h
	return t
}

// Genesis returns the genesis block hash.
func (t *BlockTree) Genesis() cryptoutil.Hash {
	return t.genesis
}

// Add inserts a block whose parent must already be present.
func (t *BlockTree) Add(b *types.Block) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := b.Hash()
	if _, ok := t.blocks[h]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, h.Short())
	}
	parent, ok := t.blocks[b.Header.ParentHash]
	if !ok {
		return fmt.Errorf("%w: %s (parent of %s)", ErrUnknownParent, b.Header.ParentHash.Short(), h.Short())
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: got %d, parent at %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	t.blocks[h] = b
	t.children[b.Header.ParentHash] = append(t.children[b.Header.ParentHash], h)
	return nil
}

// Get returns the block with the given hash.
func (t *BlockTree) Get(h cryptoutil.Hash) (*types.Block, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b, ok := t.blocks[h]
	return b, ok
}

// Has reports whether the block is in the tree.
func (t *BlockTree) Has(h cryptoutil.Hash) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.blocks[h]
	return ok
}

// Len returns the number of blocks in the tree (including genesis).
func (t *BlockTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.blocks)
}

// Children returns the direct children of h.
func (t *BlockTree) Children(h cryptoutil.Hash) []cryptoutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]cryptoutil.Hash, len(t.children[h]))
	copy(out, t.children[h])
	return out
}

// Tips returns the hashes of all leaf blocks (chain tips of every
// branch).
func (t *BlockTree) Tips() []cryptoutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []cryptoutil.Hash
	for h := range t.blocks {
		if len(t.children[h]) == 0 {
			out = append(out, h)
		}
	}
	// Sorted so callers see one canonical order: fork-choice folds over
	// tips, and map-iteration order must not leak into anything a
	// replica computes.
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// PathFromGenesis returns the block hashes from genesis to h inclusive.
func (t *BlockTree) PathFromGenesis(h cryptoutil.Hash) ([]cryptoutil.Hash, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var rev []cryptoutil.Hash
	cur := h
	for {
		b, ok := t.blocks[cur]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownBlock, cur.Short())
		}
		rev = append(rev, cur)
		if cur == t.genesis {
			break
		}
		cur = b.Header.ParentHash
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Ancestor reports whether a is an ancestor of (or equal to) b.
func (t *BlockTree) Ancestor(a, b cryptoutil.Hash) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := b
	for {
		if cur == a {
			return true, nil
		}
		blk, ok := t.blocks[cur]
		if !ok {
			return false, fmt.Errorf("%w: %s", ErrUnknownBlock, cur.Short())
		}
		if cur == t.genesis {
			return false, nil
		}
		cur = blk.Header.ParentHash
	}
}

// CommonAncestor returns the deepest block that is an ancestor of both a
// and b.
func (t *BlockTree) CommonAncestor(a, b cryptoutil.Hash) (cryptoutil.Hash, error) {
	pa, err := t.PathFromGenesis(a)
	if err != nil {
		return cryptoutil.ZeroHash, err
	}
	pb, err := t.PathFromGenesis(b)
	if err != nil {
		return cryptoutil.ZeroHash, err
	}
	n := min(len(pa), len(pb))
	last := t.genesis
	for i := 0; i < n && pa[i] == pb[i]; i++ {
		last = pa[i]
	}
	return last, nil
}

// SubtreeSize returns the number of blocks in the subtree rooted at h
// (including h itself). It is the weight function of the GHOST branch
// selection rule.
func (t *BlockTree) SubtreeSize(h cryptoutil.Hash) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, ok := t.blocks[h]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, h.Short())
	}
	count := 0
	stack := []cryptoutil.Hash{h}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		stack = append(stack, t.children[cur]...)
	}
	return count, nil
}

// Height returns the height of block h.
func (t *BlockTree) Height(h cryptoutil.Hash) (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b, ok := t.blocks[h]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlock, h.Short())
	}
	return b.Header.Height, nil
}

// TotalDifficulty sums header difficulty from genesis to h: the
// heaviest-chain weight used by difficulty-aware longest-chain selection.
func (t *BlockTree) TotalDifficulty(h cryptoutil.Hash) (uint64, error) {
	path, err := t.PathFromGenesis(h)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sum uint64
	for _, hh := range path {
		sum += t.blocks[hh].Header.Difficulty
	}
	return sum, nil
}
