package store

import (
	"errors"
	"fmt"
	"sync"

	"dcsledger/internal/cryptoutil"
)

// Off-chain store errors.
var (
	ErrBlobMissing   = errors.New("store: off-chain blob missing")
	ErrBlobCorrupted = errors.New("store: off-chain blob does not match anchor")
)

// OffChainStore keeps bulk data outside the blockchain while the chain
// stores only the anchoring hash (Section 4.5). The trade-off the paper
// describes is explicit in the API: Get can fail with ErrBlobMissing —
// off-chain data is not durable — whereas integrity is still verifiable
// against the on-chain anchor.
type OffChainStore struct {
	mu    sync.RWMutex
	blobs map[cryptoutil.Hash][]byte
}

// NewOffChainStore returns an empty off-chain store.
func NewOffChainStore() *OffChainStore {
	return &OffChainStore{blobs: make(map[cryptoutil.Hash][]byte)}
}

// Put stores a blob and returns its anchor hash — the value to record
// on-chain.
func (s *OffChainStore) Put(blob []byte) cryptoutil.Hash {
	h := cryptoutil.HashBytes([]byte("offchain"), blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[h] = append([]byte(nil), blob...)
	return h
}

// Get retrieves the blob for an anchor, verifying integrity.
func (s *OffChainStore) Get(anchor cryptoutil.Hash) ([]byte, error) {
	s.mu.RLock()
	blob, ok := s.blobs[anchor]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobMissing, anchor.Short())
	}
	if cryptoutil.HashBytes([]byte("offchain"), blob) != anchor {
		return nil, fmt.Errorf("%w: %s", ErrBlobCorrupted, anchor.Short())
	}
	return blob, nil
}

// Drop deletes a blob, modeling the paper's durability caveat: off-chain
// data may disappear while its on-chain anchor persists.
func (s *OffChainStore) Drop(anchor cryptoutil.Hash) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, anchor)
}

// Corrupt overwrites a stored blob in place without updating its anchor,
// for failure-injection tests.
func (s *OffChainStore) Corrupt(anchor cryptoutil.Hash, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[anchor]; ok {
		s.blobs[anchor] = append([]byte(nil), data...)
	}
}

// Size returns the total bytes held off-chain.
func (s *OffChainStore) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, b := range s.blobs {
		total += len(b)
	}
	return total
}

// Len returns the number of stored blobs.
func (s *OffChainStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}
