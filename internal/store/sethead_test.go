package store

import (
	"testing"

	"dcsledger/internal/types"
)

// deepFork builds a fork below an interior block (not genesis):
//
//	g — a1 — a2 — a3 — a4
//	           \ c3 — c4
func deepFork(t *testing.T) (tree *BlockTree, g *types.Block, as, cs []*types.Block) {
	t.Helper()
	g = genesis()
	tree = NewBlockTree(g)
	a1 := child(g, "a1")
	a2 := child(a1, "a2")
	a3 := child(a2, "a3")
	a4 := child(a3, "a4")
	c3 := child(a2, "c3")
	c4 := child(c3, "c4")
	for _, b := range []*types.Block{a1, a2, a3, a4, c3, c4} {
		if err := tree.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return tree, g, []*types.Block{a1, a2, a3, a4}, []*types.Block{c3, c4}
}

// TestSetHeadNoOp repoints the chain at its current head: nothing may
// move.
func TestSetHeadNoOp(t *testing.T) {
	tree, _, as, _ := deepFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[3].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	removed, added, err := c.SetHead(as[3].Hash())
	if err != nil {
		t.Fatalf("no-op SetHead: %v", err)
	}
	if len(removed) != 0 || len(added) != 0 {
		t.Fatalf("no-op moved blocks: removed %d added %d", len(removed), len(added))
	}
	if c.Head() != as[3].Hash() || c.Height() != 4 {
		t.Fatalf("no-op changed head to %s@%d", c.Head().Short(), c.Height())
	}
}

// TestSetHeadToAncestor rolls the head back down its own branch: pure
// removal, nothing added.
func TestSetHeadToAncestor(t *testing.T) {
	tree, _, as, _ := deepFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[3].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	removed, added, err := c.SetHead(as[1].Hash()) // a4, a3 leave
	if err != nil {
		t.Fatalf("rollback SetHead: %v", err)
	}
	if len(added) != 0 {
		t.Fatalf("rollback added %d blocks", len(added))
	}
	if len(removed) != 2 || removed[0] != as[2].Hash() || removed[1] != as[3].Hash() {
		t.Fatalf("rollback removed wrong blocks: %v", removed)
	}
	if c.Height() != 2 || c.Head() != as[1].Hash() {
		t.Fatalf("head after rollback %s@%d", c.Head().Short(), c.Height())
	}
	// The rolled-off blocks' txs leave the index; the survivors' stay.
	if _, _, ok := c.FindTx(as[3].Txs[0].ID()); ok {
		t.Fatal("rolled-off tx still indexed")
	}
	if _, _, ok := c.FindTx(as[1].Txs[0].ID()); !ok {
		t.Fatal("surviving tx lost from index")
	}
	// Confirmations reflect the shorter chain.
	if got := c.Confirmations(as[1].Hash()); got != 1 {
		t.Fatalf("new tip confirmations = %d, want 1", got)
	}
	if got := c.Confirmations(as[3].Hash()); got != 0 {
		t.Fatalf("rolled-off block confirmations = %d, want 0", got)
	}
}

// TestSetHeadMidChainReorg switches between branches that diverge at an
// interior block: the common prefix (g, a1, a2) must not appear in
// either removed or added.
func TestSetHeadMidChainReorg(t *testing.T) {
	tree, g, as, cs := deepFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[3].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	removed, added, err := c.SetHead(cs[1].Hash())
	if err != nil {
		t.Fatalf("reorg SetHead: %v", err)
	}
	if len(removed) != 2 || removed[0] != as[2].Hash() || removed[1] != as[3].Hash() {
		t.Fatalf("removed = %v, want [a3 a4]", removed)
	}
	if len(added) != 2 || added[0] != cs[0].Hash() || added[1] != cs[1].Hash() {
		t.Fatalf("added = %v, want [c3 c4]", added)
	}
	// Common prefix stays on-chain throughout.
	for _, b := range []*types.Block{g, as[0], as[1]} {
		if !c.Contains(b.Hash()) {
			t.Fatalf("common-prefix block h=%d left the chain", b.Header.Height)
		}
	}
	// Equal-height switch: a3 and c3 sit at the same height; only c3 is
	// canonical now.
	if c.Contains(as[2].Hash()) {
		t.Fatal("a3 still canonical after reorg")
	}
	if h, ok := c.AtHeight(3); !ok || h != cs[0].Hash() {
		t.Fatalf("AtHeight(3) = %s, want c3", h.Short())
	}
}

// TestSetHeadReorgRoundTrip reorgs away and back, asserting the tx
// index and confirmations are fully restored — the invariant crash
// recovery leans on when it replays head switches.
func TestSetHeadReorgRoundTrip(t *testing.T) {
	tree, _, as, cs := deepFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[3].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	txA3 := as[2].Txs[0].ID()
	if _, _, err := c.SetHead(cs[1].Hash()); err != nil {
		t.Fatalf("reorg: %v", err)
	}
	if _, _, ok := c.FindTx(txA3); ok {
		t.Fatal("a3 tx indexed while on the c branch")
	}
	removed, added, err := c.SetHead(as[3].Hash())
	if err != nil {
		t.Fatalf("reorg back: %v", err)
	}
	if len(removed) != 2 || len(added) != 2 {
		t.Fatalf("round trip removed/added = %d/%d, want 2/2", len(removed), len(added))
	}
	bh, idx, ok := c.FindTx(txA3)
	if !ok || bh != as[2].Hash() || idx != 0 {
		t.Fatalf("a3 tx not restored: %s %d %v", bh.Short(), idx, ok)
	}
	if got := c.Confirmations(as[2].Hash()); got != 2 {
		t.Fatalf("a3 confirmations after round trip = %d, want 2", got)
	}
	if c.Height() != 4 || c.Head() != as[3].Hash() {
		t.Fatalf("head after round trip %s@%d", c.Head().Short(), c.Height())
	}
}

// TestSetHeadUnknownBlock must fail without disturbing the chain.
func TestSetHeadUnknownBlock(t *testing.T) {
	tree, g, as, _ := deepFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[3].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	stranger := child(child(g, "unseen"), "stranger") // never added to the tree
	if _, _, err := c.SetHead(stranger.Hash()); err == nil {
		t.Fatal("SetHead to unknown block succeeded")
	}
	if c.Head() != as[3].Hash() || c.Height() != 4 {
		t.Fatalf("failed SetHead disturbed the chain: %s@%d", c.Head().Short(), c.Height())
	}
	if _, _, ok := c.FindTx(as[3].Txs[0].ID()); !ok {
		t.Fatal("failed SetHead disturbed the tx index")
	}
}

// TestSetHeadToGenesis rolls all the way back to the trust anchor.
func TestSetHeadToGenesis(t *testing.T) {
	tree, g, as, _ := deepFork(t)
	c := NewChain(tree)
	if _, _, err := c.SetHead(as[3].Hash()); err != nil {
		t.Fatalf("SetHead: %v", err)
	}
	removed, added, err := c.SetHead(g.Hash())
	if err != nil {
		t.Fatalf("SetHead(genesis): %v", err)
	}
	if len(removed) != 4 || len(added) != 0 {
		t.Fatalf("removed/added = %d/%d, want 4/0", len(removed), len(added))
	}
	if c.Height() != 0 || c.Head() != g.Hash() {
		t.Fatalf("head = %s@%d, want genesis@0", c.Head().Short(), c.Height())
	}
	if got := c.Confirmations(g.Hash()); got != 1 {
		t.Fatalf("genesis confirmations = %d, want 1", got)
	}
}
