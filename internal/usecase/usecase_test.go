package usecase

import (
	"errors"
	"strings"
	"testing"
)

// cryptocurrencyCase is a Blockchain 1.0 public-money template.
func cryptocurrencyCase() UseCase {
	return UseCase{
		Name:   "p2p-cash",
		Intent: "peer-to-peer electronic cash without intermediaries",
		Actors: []Actor{
			{Name: "users", Role: RoleSubmitter, Known: false, Trusted: false, Count: 1_000_000},
			{Name: "miners", Role: RoleMaintainer, Known: false, Trusted: false, Count: 10_000},
		},
		DataObjects: []DataObject{
			{Name: "transactions"},
		},
		Performance: Performance{ExpectedTPS: 7, MaxLatencySec: 3600, GlobalUserbase: true},
	}
}

// supplyChainCase is a Blockchain 3.0 consortium template.
func supplyChainCase() UseCase {
	return UseCase{
		Name:   "food-supply-chain",
		Intent: "trace produce from farm to shelf across competing companies",
		Actors: []Actor{
			{Name: "producers", Role: RoleSubmitter, Known: true, Trusted: false, Count: 200},
			{Name: "auditors", Role: RoleQuerier, Known: true, Trusted: true, Count: 5},
			{Name: "consortium peers", Role: RoleMaintainer, Known: true, Trusted: false, Count: 12},
			{Name: "integrators", Role: RoleContractAuthor, Known: true, Trusted: false, Count: 3},
		},
		DataObjects: []DataObject{
			{Name: "shipment records", Confidential: true},
			{Name: "quality certificates", Bulky: true},
			{Name: "handover workflow", Executable: true},
		},
		Performance: Performance{ExpectedTPS: 2000, MaxLatencySec: 2, RegulatoryBounds: true},
	}
}

func TestValidate(t *testing.T) {
	uc := cryptocurrencyCase()
	if err := uc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*UseCase)
		want   string
	}{
		{name: "no name", mutate: func(u *UseCase) { u.Name = "" }, want: "name"},
		{name: "no intent", mutate: func(u *UseCase) { u.Intent = "" }, want: "intent"},
		{name: "no actors", mutate: func(u *UseCase) { u.Actors = nil }, want: "actors"},
		{name: "no maintainer", mutate: func(u *UseCase) { u.Actors = u.Actors[:1] }, want: "maintainer"},
		{name: "no data", mutate: func(u *UseCase) { u.DataObjects = nil }, want: "data objects"},
		{name: "no tps", mutate: func(u *UseCase) { u.Performance.ExpectedTPS = 0 }, want: "throughput"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			u := cryptocurrencyCase()
			tt.mutate(&u)
			err := u.Validate()
			if !errors.Is(err, ErrIncomplete) {
				t.Fatalf("want ErrIncomplete, got %v", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q should mention %q", err, tt.want)
			}
		})
	}
}

func TestAdviseCryptocurrency(t *testing.T) {
	rec, err := Advise(cryptocurrencyCase())
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if rec.Ledger != Public {
		t.Fatalf("ledger = %s, want public", rec.Ledger)
	}
	if rec.Consensus != "pow" || rec.Balance != DC {
		t.Fatalf("consensus %s, balance %s", rec.Consensus, rec.Balance)
	}
	if rec.Generation != "1.0" || rec.SmartContracts {
		t.Fatalf("generation %s, contracts %v", rec.Generation, rec.SmartContracts)
	}
	if len(rec.Reasons) == 0 {
		t.Fatal("advice must come with reasons")
	}
}

func TestAdviseSupplyChain(t *testing.T) {
	rec, err := Advise(supplyChainCase())
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if rec.Ledger != Consortium {
		t.Fatalf("ledger = %s, want consortium", rec.Ledger)
	}
	if rec.Consensus != "ordering+pbft" || rec.Balance != CS {
		t.Fatalf("consensus %s, balance %s", rec.Consensus, rec.Balance)
	}
	if !rec.SmartContracts || !rec.OffChainData || !rec.Channels {
		t.Fatalf("feature flags: %+v", rec)
	}
	if rec.Generation != "3.0" {
		t.Fatalf("generation = %s", rec.Generation)
	}
}

func TestAdviseHighThroughputPublic(t *testing.T) {
	uc := cryptocurrencyCase()
	uc.Performance.ExpectedTPS = 5000
	rec, err := Advise(uc)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if rec.Consensus != "pos" || rec.ForkChoice != "ghost" {
		t.Fatalf("high-tps public should use pos+ghost, got %s+%s", rec.Consensus, rec.ForkChoice)
	}
	if !rec.Sharding || !rec.PaymentChannel || rec.Balance != DS {
		t.Fatalf("scaling features missing: %+v", rec)
	}
}

func TestAdvisePrivate(t *testing.T) {
	uc := supplyChainCase()
	for i := range uc.Actors {
		uc.Actors[i].Trusted = true
	}
	rec, err := Advise(uc)
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if rec.Ledger != Private || rec.Consensus != "raft-ordering" {
		t.Fatalf("trusted maintainers should yield private raft, got %s/%s", rec.Ledger, rec.Consensus)
	}
}

func TestAdviseRejectsIncomplete(t *testing.T) {
	if _, err := Advise(UseCase{}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
}

func TestLedgerTypeString(t *testing.T) {
	if Public.String() != "public" || Consortium.String() != "consortium" || Private.String() != "private" {
		t.Fatal("strings changed")
	}
}
