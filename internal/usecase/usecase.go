// Package usecase implements the Application-layer methodology of
// Section 5.1: the paper's use-case template as a typed structure, and
// a rule-based advisor that maps a filled template to a recommended
// platform configuration — ledger type, consensus family, and the DCS
// balance — following the trade-offs of Sections 2.7 and 5.4.
package usecase

import (
	"errors"
	"fmt"
	"strings"
)

// Validation errors.
var ErrIncomplete = errors.New("usecase: template incomplete")

// ActorRole classifies participants per the paper's template questions.
type ActorRole int

// Actor roles.
const (
	// RoleSubmitter sends transactions.
	RoleSubmitter ActorRole = iota + 1
	// RoleContractAuthor creates smart contracts.
	RoleContractAuthor
	// RoleMaintainer maintains the blockchain (verifies, stores).
	RoleMaintainer
	// RoleQuerier only reads.
	RoleQuerier
)

// Actor is one participant class.
type Actor struct {
	Name    string    `json:"name"`
	Role    ActorRole `json:"role"`
	Known   bool      `json:"known"`   // identity known to the network?
	Trusted bool      `json:"trusted"` // trusted by the other actors?
	Count   int       `json:"count"`   // expected population
}

// DataObject describes something stored or executed on-chain.
type DataObject struct {
	Name string `json:"name"`
	// Confidential data must not leave a defined boundary (Section 5.3).
	Confidential bool `json:"confidential"`
	// Bulky objects (documents, sensor archives) favor off-chain
	// storage with on-chain anchors (Section 4.5).
	Bulky bool `json:"bulky"`
	// Executable objects are smart contracts.
	Executable bool `json:"executable"`
}

// Performance captures the template's requirement questions.
type Performance struct {
	ExpectedTPS      float64 `json:"expectedTps"`
	MaxLatencySec    float64 `json:"maxLatencySec"`
	AnnualGrowthPct  float64 `json:"annualGrowthPct"`
	GlobalUserbase   bool    `json:"globalUserbase"`
	RegulatoryBounds bool    `json:"regulatoryBounds"` // data-residency constraints
}

// UseCase is the filled Section 5.1 template.
type UseCase struct {
	Name        string       `json:"name"`
	Intent      string       `json:"intent"`
	Actors      []Actor      `json:"actors"`
	DataObjects []DataObject `json:"dataObjects"`
	Performance Performance  `json:"performance"`
}

// Validate checks the template answers every section.
func (u *UseCase) Validate() error {
	var missing []string
	if u.Name == "" {
		missing = append(missing, "name")
	}
	if u.Intent == "" {
		missing = append(missing, "intent")
	}
	if len(u.Actors) == 0 {
		missing = append(missing, "actors")
	}
	hasMaintainer := false
	for _, a := range u.Actors {
		if a.Role == RoleMaintainer {
			hasMaintainer = true
		}
	}
	if len(u.Actors) > 0 && !hasMaintainer {
		missing = append(missing, "a maintainer actor")
	}
	if len(u.DataObjects) == 0 {
		missing = append(missing, "data objects")
	}
	if u.Performance.ExpectedTPS <= 0 {
		missing = append(missing, "expected throughput")
	}
	if len(missing) > 0 {
		return fmt.Errorf("%w: missing %s", ErrIncomplete, strings.Join(missing, ", "))
	}
	return nil
}

// LedgerType is the public/consortium/private axis (Section 2.1).
type LedgerType int

// Ledger types.
const (
	Public LedgerType = iota + 1
	Consortium
	Private
)

// String implements fmt.Stringer.
func (l LedgerType) String() string {
	switch l {
	case Public:
		return "public"
	case Consortium:
		return "consortium"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("LedgerType(%d)", int(l))
	}
}

// DCS names the two properties the recommended design prioritizes
// (Section 2.7's pick-two conjecture).
type DCS string

// DCS balances.
const (
	DC DCS = "decentralization+consistency"
	CS DCS = "consistency+scalability"
	DS DCS = "decentralization+scalability"
)

// Recommendation is the advisor's output.
type Recommendation struct {
	Ledger         LedgerType `json:"ledger"`
	Consensus      string     `json:"consensus"`
	ForkChoice     string     `json:"forkChoice,omitempty"`
	Balance        DCS        `json:"balance"`
	SmartContracts bool       `json:"smartContracts"`
	OffChainData   bool       `json:"offChainData"`
	Channels       bool       `json:"channels"`
	PaymentChannel bool       `json:"paymentChannels"`
	Sharding       bool       `json:"sharding"`
	Generation     string     `json:"generation"` // 1.0 / 2.0 / 3.0
	Reasons        []string   `json:"reasons"`
}

// Advise maps a validated template to a platform recommendation using
// the paper's decision logic.
func Advise(u UseCase) (Recommendation, error) {
	if err := u.Validate(); err != nil {
		return Recommendation{}, err
	}
	var (
		rec    Recommendation
		reason = func(format string, args ...any) {
			rec.Reasons = append(rec.Reasons, fmt.Sprintf(format, args...))
		}
	)

	// 1. Trust model → ledger type (Section 2.1).
	maintainersKnown, maintainersTrusted := true, true
	for _, a := range u.Actors {
		if a.Role != RoleMaintainer {
			continue
		}
		maintainersKnown = maintainersKnown && a.Known
		maintainersTrusted = maintainersTrusted && a.Trusted
	}
	switch {
	case !maintainersKnown:
		rec.Ledger = Public
		reason("maintainers are anonymous: a public ledger with incentives is required")
	case maintainersTrusted:
		rec.Ledger = Private
		reason("maintainers are known and mutually trusted: a private ledger suffices")
	default:
		rec.Ledger = Consortium
		reason("maintainers are known but do not fully trust each other: consortium ledger")
	}

	// 2. Throughput → consensus family (Section 2.7).
	switch rec.Ledger {
	case Public:
		rec.Balance = DC
		if u.Performance.ExpectedTPS > 100 {
			rec.Consensus = "pos"
			rec.ForkChoice = "ghost"
			reason("public network above ~100 tps: proof-of-stake with GHOST to tolerate short block intervals")
		} else {
			rec.Consensus = "pow"
			rec.ForkChoice = "longest-chain"
			reason("modest public throughput: proof-of-work with Nakamoto consensus is battle-tested")
		}
		if u.Performance.ExpectedTPS > 1000 {
			rec.Sharding = true
			rec.PaymentChannel = true
			rec.Balance = DS
			reason("thousands of tps on a public network: shard the state and move hot paths to payment channels (consistency weakens to eventual)")
		}
	case Consortium:
		rec.Balance = CS
		rec.Consensus = "ordering+pbft"
		reason("consortium: ordering service with PBFT validation trades open membership for >10K tps")
	case Private:
		rec.Balance = CS
		rec.Consensus = "raft-ordering"
		reason("private single-org deployment: crash-fault-tolerant ordering is enough")
	}

	// 3. Data objects → contract layer and data layer features.
	for _, d := range u.DataObjects {
		if d.Executable {
			rec.SmartContracts = true
			reason("object %q executes on-chain: smart-contract support required", d.Name)
		}
		if d.Bulky {
			rec.OffChainData = true
			reason("object %q is bulky: store off-chain, anchor hash on-chain", d.Name)
		}
		if d.Confidential {
			if rec.Ledger == Public {
				reason("object %q is confidential on a public ledger: use a mixer or zero-knowledge techniques", d.Name)
			} else {
				rec.Channels = true
				reason("object %q is confidential: isolate it in a channel privacy domain", d.Name)
			}
		}
	}
	if u.Performance.RegulatoryBounds && rec.Ledger != Public {
		rec.Channels = true
		reason("regulatory data-residency bounds: channels keep data inside the declared boundary")
	}

	// 4. Generation classification (Section 3).
	switch {
	case rec.Ledger != Public:
		rec.Generation = "3.0"
	case rec.SmartContracts:
		rec.Generation = "2.0"
	default:
		rec.Generation = "1.0"
	}
	return rec, nil
}
