package p2p

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/metrics"
)

// nullTransport is a concurrency-safe Transport stub that counts sends.
type nullTransport struct {
	self  NodeID
	peers []NodeID
	sent  atomic.Uint64
}

func (n *nullTransport) Self() NodeID               { return n.self }
func (n *nullTransport) Send(NodeID, Message) error { n.sent.Add(1); return nil }
func (n *nullTransport) Peers() []NodeID            { return n.peers }

// TestGossipConcurrentPublishAndHandle hammers one gossiper from many
// goroutines mixing Publish and HandleMessage (the paths invoked
// concurrently by TCP reader goroutines via Mux.Dispatch). Run with
// -race: the seed gossiper mutated seen/subs/delivered unsynchronized.
func TestGossipConcurrentPublishAndHandle(t *testing.T) {
	tr := &nullTransport{self: "self", peers: []NodeID{"b", "c", "d"}}
	g := NewGossiper(tr, []NodeID{"b", "c", "d"}, 2, rand.New(rand.NewSource(1)))

	var delivered atomic.Uint64
	g.Subscribe("t", func(NodeID, []byte) { delivered.Add(1) })

	const (
		workers = 8
		items   = 200
	)
	envFor := func(w, k int) []byte {
		payload := []byte(fmt.Sprintf("h-%d-%d", w, k))
		return encodeEnvelope(envelope{
			ID:      cryptoutil.HashBytes([]byte("gossip/t"), payload),
			Topic:   "t",
			Payload: payload,
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < items; k++ {
				if w%2 == 0 {
					g.Publish("t", []byte(fmt.Sprintf("p-%d-%d", w, k)))
				} else {
					// Every odd worker injects the same envelopes, so
					// all but one handler call is a duplicate.
					g.HandleMessage(Message{From: "peer", Type: GossipMsgType, Data: envFor(1, k)})
				}
			}
		}()
	}
	wg.Wait()

	// Distinct items: workers/2 publishers × items unique payloads,
	// plus `items` distinct injected envelopes (shared by all odd
	// workers).
	want := uint64(workers/2*items + items)
	if got := g.Delivered(); got != want {
		t.Fatalf("delivered %d, want %d", got, want)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("callback delivered %d, want %d", got, want)
	}
	st := g.Stats()
	if st.Duplicates == 0 {
		t.Fatal("expected duplicate suppressions > 0")
	}
	// Each first-seen item is forwarded to fanout=2 neighbors.
	if st.Forwarded != 2*want {
		t.Fatalf("forwarded %d, want %d", st.Forwarded, 2*want)
	}
	if tr.sent.Load() != 2*want {
		t.Fatalf("transport sends %d, want %d", tr.sent.Load(), 2*want)
	}
}

// TestPickNeighborsReturnsCopy guards against the seed bug where the
// internal neighbor slice leaked by reference when |neighbors| <=
// fanout, letting callers mutate overlay state.
func TestPickNeighborsReturnsCopy(t *testing.T) {
	tr := &nullTransport{self: "self"}
	g := NewGossiper(tr, []NodeID{"b", "c"}, 4, rand.New(rand.NewSource(1)))
	picked := g.pickNeighbors()
	if len(picked) != 2 {
		t.Fatalf("picked %v", picked)
	}
	picked[0] = "mutated"
	if ns := g.Neighbors(); ns[0] != "b" || ns[1] != "c" {
		t.Fatalf("internal neighbors mutated: %v", ns)
	}
	// Neighbors() must also return a copy.
	ns := g.Neighbors()
	ns[0] = "mutated"
	if again := g.Neighbors(); again[0] != "b" {
		t.Fatalf("Neighbors leaked internal slice: %v", again)
	}
}

// TestGossipOverConcurrentTCPMesh runs real gossip over the TCP
// transport: three nodes publish concurrently and everyone must
// deliver every distinct item exactly once, race-clean.
func TestGossipOverConcurrentTCPMesh(t *testing.T) {
	const (
		nodes   = 3
		perNode = 50
	)
	cfg := TCPConfig{QueueSize: 4096}

	trs := make([]*TCPTransport, nodes)
	gs := make([]*Gossiper, nodes)
	counts := make([]atomic.Uint64, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		mux := NewMux()
		tr, err := NewTCPTransportConfig(NodeName(i), "127.0.0.1:0", mux.Dispatch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
		var neighbors []NodeID
		for j := 0; j < nodes; j++ {
			if j != i {
				neighbors = append(neighbors, NodeName(j))
			}
		}
		g := NewGossiper(tr, neighbors, len(neighbors), rand.New(rand.NewSource(int64(i+1))))
		g.Subscribe("tx", func(NodeID, []byte) { counts[i].Add(1) })
		mux.Handle(GossipMsgType, g.HandleMessage)
		gs[i] = g
	}
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i != j {
				trs[i].AddPeer(NodeName(j), trs[j].Addr())
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				gs[i].Publish("tx", []byte(fmt.Sprintf("item-%d-%d", i, k)))
			}
		}()
	}
	wg.Wait()

	want := uint64(nodes * perNode)
	for i := 0; i < nodes; i++ {
		i := i
		waitFor(t, 10*time.Second, func() bool { return counts[i].Load() == want },
			fmt.Sprintf("node %d delivered %d/%d", i, counts[i].Load(), want))
	}
	for i, tr := range trs {
		if st := tr.Stats(); st.RecvErrors != 0 {
			t.Fatalf("node %d: %d decode errors", i, st.RecvErrors)
		}
		if d := gs[i].Delivered(); d != want {
			t.Fatalf("node %d delivered %d, want %d", i, d, want)
		}
	}
}

// TestGossipRegisterMetrics exports gossip counters through a registry.
func TestGossipRegisterMetrics(t *testing.T) {
	tr := &nullTransport{self: "self"}
	g := NewGossiper(tr, []NodeID{"b"}, 1, rand.New(rand.NewSource(1)))
	reg := metrics.NewRegistry()
	g.RegisterMetrics(reg)
	g.Publish("t", []byte("one"))
	g.Publish("t", []byte("one")) // duplicate
	snap := reg.Snapshot()
	if snap["gossip_delivered_total"] != 1 || snap["gossip_duplicate_total"] != 1 || snap["gossip_forwarded_total"] != 1 {
		t.Fatalf("snapshot %v", snap)
	}
}

// TestSeenCacheBounded proves the duplicate-suppression cache evicts
// FIFO at the configured cap: live entries never exceed the cap, the
// oldest IDs are forgotten first, and the queue's backing array is
// compacted rather than growing with total traffic.
func TestSeenCacheBounded(t *testing.T) {
	tr := &nullTransport{self: "n0"}
	g := NewGossiper(tr, nil, 1, rand.New(rand.NewSource(1)))
	g.SetSeenCap(8)

	var ids []cryptoutil.Hash
	for i := 0; i < 40; i++ {
		id := cryptoutil.HashBytes([]byte{byte(i)})
		ids = append(ids, id)
		if !g.markSeen(id) {
			t.Fatalf("fresh id %d reported as duplicate", i)
		}
		g.mu.Lock()
		live, qlen, head := len(g.seen), len(g.seenQ), g.seenHead
		g.mu.Unlock()
		if live > 8 {
			t.Fatalf("after %d inserts: %d live entries, cap 8", i+1, live)
		}
		if qlen-head > 8+1 || qlen > 2*(8+1) {
			t.Fatalf("after %d inserts: queue len %d head %d — compaction failed", i+1, qlen, head)
		}
	}
	// The newest 8 are still deduplicated; the oldest were evicted and
	// count as fresh again.
	if g.markSeen(ids[len(ids)-1]) {
		t.Error("newest id should still be in the seen-cache")
	}
	if !g.markSeen(ids[0]) {
		t.Error("oldest id should have been evicted FIFO")
	}
}

// TestSetSeenCapShrinksLive lowering the cap evicts immediately.
func TestSetSeenCapShrinksLive(t *testing.T) {
	tr := &nullTransport{self: "n0"}
	g := NewGossiper(tr, nil, 1, rand.New(rand.NewSource(1)))
	for i := 0; i < 16; i++ {
		g.markSeen(cryptoutil.HashBytes([]byte{byte(i)}))
	}
	g.SetSeenCap(4)
	g.mu.Lock()
	live := len(g.seen)
	g.mu.Unlock()
	if live != 4 {
		t.Fatalf("after SetSeenCap(4): %d live entries", live)
	}
}
