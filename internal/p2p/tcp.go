package p2p

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"dcsledger/internal/metrics"
	"dcsledger/internal/obs"
	"dcsledger/internal/wire"
)

// Transport errors.
var (
	// ErrClosed is returned by Send after the transport has been closed.
	ErrClosed = errors.New("p2p: transport closed")
	// ErrQueueFull is returned by Send when a peer's bounded outbound
	// queue is full; the message is counted as dropped, not delivered.
	// Gossip redundancy is expected to absorb such drops.
	ErrQueueFull = errors.New("p2p: peer send queue full")
)

// Default TCPConfig values.
const (
	DefaultDialTimeout  = 3 * time.Second
	DefaultWriteTimeout = 10 * time.Second
	DefaultQueueSize    = 256
	DefaultBackoffBase  = 50 * time.Millisecond
	DefaultBackoffMax   = 5 * time.Second
	DefaultMaxAttempts  = 4
	// DefaultReadIdleTimeout is how long an inbound connection may sit
	// with no complete frame before it is dropped, so a peer that opens
	// connections and trickles (or sends nothing) cannot pin reader
	// goroutines and sockets forever.
	DefaultReadIdleTimeout = 2 * time.Minute
)

// TCPConfig tunes the TCP transport. The zero value selects sane
// defaults for every field.
type TCPConfig struct {
	// DialTimeout bounds each connection attempt (default 3s).
	DialTimeout time.Duration
	// WriteTimeout bounds each message write (default 10s; 0 keeps the
	// default, negative disables deadlines).
	WriteTimeout time.Duration
	// QueueSize bounds each peer's outbound queue (default 256). When
	// the queue is full, Send drops the message and returns
	// ErrQueueFull instead of blocking the caller.
	QueueSize int
	// BackoffBase / BackoffMax shape the exponential reconnect backoff
	// (defaults 50ms / 5s). Each failed dial sleeps a jittered backoff
	// in [b/2, b] before the writer retries.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts is how many connect-and-write attempts one message
	// gets before it is dropped (default 4). Backoff state persists
	// across messages, so a dead peer costs at most MaxAttempts dials
	// per queued message.
	MaxAttempts int
	// MaxFrameSize caps inbound frame bodies (default DefaultMaxFrame).
	// A peer announcing a larger frame is counted
	// (p2p_recv_oversize_total) and disconnected before the body is
	// read, so one hostile message cannot OOM the node.
	MaxFrameSize uint32
	// ReadIdleTimeout bounds the gap between inbound frames (default
	// DefaultReadIdleTimeout; negative disables the deadline).
	ReadIdleTimeout time.Duration
	// Registry receives transport counters (p2p_*). Nil creates a
	// private registry, readable via Stats / Registry.
	Registry *metrics.Registry
	// Tracer receives per-message enqueue→flush spans
	// (obs.StageP2PFlush). Nil disables tracing; the histogram
	// p2p_enqueue_flush_seconds is recorded either way.
	Tracer *obs.Tracer
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.QueueSize <= 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.MaxFrameSize == 0 {
		c.MaxFrameSize = DefaultMaxFrame
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = DefaultReadIdleTimeout
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// TCPStats is a snapshot of the transport's activity counters.
type TCPStats struct {
	Enqueued      uint64 // messages accepted by Send
	Sent          uint64 // messages written to a peer connection
	Dropped       uint64 // messages dropped (queue full or retries exhausted)
	SendErrors    uint64 // write failures (each triggers a reconnect)
	DialFailures  uint64 // failed connection attempts
	Reconnects    uint64 // successful dials after a previous connection
	Recv          uint64 // messages received on inbound connections
	RecvErrors    uint64 // inbound decode failures (excluding EOF/close)
	RecvOversize  uint64 // inbound frames dropped for exceeding MaxFrameSize
	OutboundConns int64  // currently established outbound connections
	InboundConns  int64  // currently accepted inbound connections
	PeerWriters   int64  // live per-peer writer goroutines
}

// TCPTransport is the real-network transport used by the ledgerd
// daemon: length-prefixed binary frames (see docs/WIRE.md) over
// persistent TCP connections. Peers are added explicitly (static
// membership, as in a consortium network).
//
// Concurrency model: Send never performs I/O. Each peer gets a
// dedicated writer goroutine that exclusively owns the peer's
// connection and encode buffer, draining a bounded queue — each frame
// is written with a single Write call, so concurrent Sends can never
// interleave bytes on the wire. The writer
// dials lazily with a bounded timeout and reconnects with jittered
// exponential backoff; when the queue is full, Send drops the message
// (counted) rather than stalling the caller.
type TCPTransport struct {
	self    NodeID
	ln      net.Listener
	handler Handler
	cfg     TCPConfig

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	peers   map[NodeID]string // address book
	writers map[NodeID]*peerWriter
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup

	// Hot-path counters (registered in cfg.Registry).
	cEnqueued, cSent, cDropped, cSendErrors *metrics.Counter
	cDialFailures, cReconnects              *metrics.Counter
	cRecv, cRecvErrors, cRecvOversize       *metrics.Counter
	gOutbound, gInbound, gWriters           *metrics.Gauge
	hFlush                                  *metrics.Histogram
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport starts listening on bindAddr with default TCPConfig
// and handles incoming messages with h.
func NewTCPTransport(self NodeID, bindAddr string, h Handler) (*TCPTransport, error) {
	return NewTCPTransportConfig(self, bindAddr, h, TCPConfig{})
}

// NewTCPTransportConfig starts listening on bindAddr with an explicit
// configuration.
func NewTCPTransportConfig(self NodeID, bindAddr string, h Handler, cfg TCPConfig) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen %s: %w", bindAddr, err)
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCPTransport{
		self:    self,
		ln:      ln,
		handler: h,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		peers:   make(map[NodeID]string),
		writers: make(map[NodeID]*peerWriter),
		inbound: make(map[net.Conn]struct{}),

		cEnqueued:     cfg.Registry.Counter("p2p_enqueued_total"),
		cSent:         cfg.Registry.Counter("p2p_sent_total"),
		cDropped:      cfg.Registry.Counter("p2p_dropped_total"),
		cSendErrors:   cfg.Registry.Counter("p2p_send_errors_total"),
		cDialFailures: cfg.Registry.Counter("p2p_dial_failures_total"),
		cReconnects:   cfg.Registry.Counter("p2p_reconnects_total"),
		cRecv:         cfg.Registry.Counter("p2p_recv_total"),
		cRecvErrors:   cfg.Registry.Counter("p2p_recv_errors_total"),
		cRecvOversize: cfg.Registry.Counter("p2p_recv_oversize_total"),
		gOutbound:     cfg.Registry.Gauge("p2p_conns_outbound"),
		gInbound:      cfg.Registry.Gauge("p2p_conns_inbound"),
		gWriters:      cfg.Registry.Gauge("p2p_peer_writers"),
		hFlush:        cfg.Registry.Histogram("p2p_enqueue_flush_seconds"),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listening address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Self implements Transport.
func (t *TCPTransport) Self() NodeID { return t.self }

// Registry returns the metrics registry the transport reports into.
func (t *TCPTransport) Registry() *metrics.Registry { return t.cfg.Registry }

// Stats returns a snapshot of the transport counters.
func (t *TCPTransport) Stats() TCPStats {
	return TCPStats{
		Enqueued:      t.cEnqueued.Value(),
		Sent:          t.cSent.Value(),
		Dropped:       t.cDropped.Value(),
		SendErrors:    t.cSendErrors.Value(),
		DialFailures:  t.cDialFailures.Value(),
		Reconnects:    t.cReconnects.Value(),
		Recv:          t.cRecv.Value(),
		RecvErrors:    t.cRecvErrors.Value(),
		RecvOversize:  t.cRecvOversize.Value(),
		OutboundConns: t.gOutbound.Value(),
		InboundConns:  t.gInbound.Value(),
		PeerWriters:   t.gWriters.Value(),
	}
}

// AddPeer records a peer's dialable address. Re-adding a peer updates
// the address; an existing writer picks the new address up on its next
// (re)connect.
func (t *TCPTransport) AddPeer(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//dcslint:ignore unbounded address book is operator/bootstrap-populated, one entry per configured peer — not writable by remote input
	t.peers[id] = addr
}

// Peers implements Transport.
func (t *TCPTransport) Peers() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (t *TCPTransport) peerAddr(id NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.peers[id]
	return addr, ok
}

// Send implements Transport. It enqueues the message on the peer's
// bounded outbound queue and returns immediately — all dialing and I/O
// happens on the peer's writer goroutine. A full queue drops the
// message and returns ErrQueueFull.
func (t *TCPTransport) Send(to NodeID, m Message) error {
	m.From = t.self
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	w, ok := t.writers[to]
	if !ok {
		if _, known := t.peers[to]; !known {
			t.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
		}
		w = &peerWriter{
			t:     t,
			id:    to,
			queue: make(chan queuedMsg, t.cfg.QueueSize),
		}
		//dcslint:ignore unbounded keyed by the operator-configured address book (Send rejects unknown peers above), so at most len(peers) writers
		t.writers[to] = w
		t.gWriters.Add(1)
		t.wg.Add(1)
		go w.run()
	}
	t.mu.Unlock()

	select {
	case w.queue <- queuedMsg{m: m, enqueued: time.Now()}:
		t.cEnqueued.Inc()
		return nil
	default:
		t.cDropped.Inc()
		return fmt.Errorf("%w: %s", ErrQueueFull, to)
	}
}

// Close shuts the listener, writers, and all connections down and
// waits for every transport goroutine to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, w := range t.writers {
		w.closeConnLocked()
	}
	for c := range t.inbound {
		c.Close() //dcslint:ignore lockhold teardown: TCP Close never blocks and must run under t.mu so no new conn is tracked concurrently
	}
	t.mu.Unlock()
	t.cancel() // unblocks writer dials and backoff sleeps
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.gInbound.Add(1)
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.gInbound.Add(-1)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		if t.cfg.ReadIdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.cfg.ReadIdleTimeout))
		}
		body, err := wire.ReadFrame(br, t.cfg.MaxFrameSize)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				t.cRecvOversize.Inc()
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !t.isClosed() {
				t.cRecvErrors.Inc()
			}
			return
		}
		m, err := DecodeMessage(body)
		if err != nil {
			// A malformed frame means the peer does not speak the
			// protocol (or the stream desynced); drop the connection
			// rather than guess at a resync point.
			t.cRecvErrors.Inc()
			return
		}
		t.cRecv.Inc()
		if t.handler != nil {
			t.handler(m)
		}
	}
}

// queuedMsg stamps a message with its enqueue instant so the writer can
// report the enqueue→flush latency once the bytes hit the wire.
type queuedMsg struct {
	m        Message
	enqueued time.Time
}

// peerWriter owns one peer's outbound connection. Exactly one
// goroutine (run) touches conn/buf/backoff, so no locking is needed
// beyond the transport-level mu used when Close tears the conn down.
type peerWriter struct {
	t     *TCPTransport
	id    NodeID
	queue chan queuedMsg

	// Owned by the run goroutine. buf is the reusable frame-encode
	// scratch: steady-state sends allocate nothing.
	conn          net.Conn
	buf           []byte
	backoff       time.Duration
	everConnected bool

	// connMu lets Close nil the connection out from under a writer
	// that is blocked in a Write.
	connMu sync.Mutex
}

func (w *peerWriter) run() {
	defer w.t.wg.Done()
	defer func() {
		w.closeConn()
		w.t.gWriters.Add(-1)
	}()
	for {
		select {
		case <-w.t.ctx.Done():
			return
		case q := <-w.queue:
			w.write(q)
		}
	}
}

// write delivers one message, connecting (and reconnecting) as needed.
// After cfg.MaxAttempts failed connect-or-write attempts the message
// is dropped so one dead peer cannot wedge the queue forever. A
// successful flush records the enqueue→flush latency (histogram
// p2p_enqueue_flush_seconds plus an optional tracer span), covering
// queue wait, dial/backoff time, and the write itself.
func (w *peerWriter) write(q queuedMsg) {
	t := w.t
	for attempt := 0; attempt < t.cfg.MaxAttempts; attempt++ {
		if t.ctx.Err() != nil {
			return
		}
		if w.conn == nil && !w.connect() {
			continue
		}
		if t.cfg.WriteTimeout > 0 {
			_ = w.conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		}
		// Encode into the reusable scratch and write header+body with one
		// Write call so a frame can never interleave or tear.
		frame := AppendMessage(append(w.buf[:0], 0, 0, 0, 0), q.m)
		n := uint32(len(frame) - 4)
		frame[0], frame[1], frame[2], frame[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
		w.buf = frame[:0]
		if _, err := w.conn.Write(frame); err != nil {
			t.cSendErrors.Inc()
			w.closeConn()
			continue
		}
		t.cSent.Inc()
		wait := time.Since(q.enqueued)
		t.hFlush.ObserveDuration(wait)
		t.cfg.Tracer.Record(obs.Span{
			Stage: obs.StageP2PFlush,
			Start: q.enqueued.UnixNano(),
			Dur:   int64(wait),
			Peer:  string(w.id),
		})
		return
	}
	t.cDropped.Inc()
}

// connect performs one dial attempt; on failure it sleeps a jittered
// exponential backoff (interruptible by Close) and reports false.
func (w *peerWriter) connect() bool {
	t := w.t
	addr, ok := t.peerAddr(w.id)
	if !ok {
		w.sleepBackoff()
		return false
	}
	d := net.Dialer{Timeout: t.cfg.DialTimeout}
	conn, err := d.DialContext(t.ctx, "tcp", addr)
	if err != nil {
		t.cDialFailures.Inc()
		w.sleepBackoff()
		return false
	}
	w.connMu.Lock()
	w.conn = conn
	w.connMu.Unlock()
	w.backoff = 0
	if w.everConnected {
		t.cReconnects.Inc()
	}
	w.everConnected = true
	t.gOutbound.Add(1)
	return true
}

func (w *peerWriter) closeConn() {
	w.connMu.Lock()
	defer w.connMu.Unlock()
	if w.conn != nil {
		w.conn.Close() //dcslint:ignore lockhold teardown: Close never blocks and must precede clearing w.conn under the same connMu hold
		w.conn = nil
		w.t.gOutbound.Add(-1)
	}
}

// closeConnLocked closes the underlying conn without clearing the
// writer's fields; called by Close (which also cancels the context) to
// unblock a writer stuck in a Write. The writer's own closeConn (via
// its run defer) does the bookkeeping.
func (w *peerWriter) closeConnLocked() {
	w.connMu.Lock()
	defer w.connMu.Unlock()
	if w.conn != nil {
		w.conn.Close() //dcslint:ignore lockhold teardown: Close is how a writer blocked in a Write gets unstuck; it never blocks itself
	}
}

func (w *peerWriter) sleepBackoff() {
	t := w.t
	if w.backoff <= 0 {
		w.backoff = t.cfg.BackoffBase
	} else {
		w.backoff *= 2
		if w.backoff > t.cfg.BackoffMax {
			w.backoff = t.cfg.BackoffMax
		}
	}
	// Jitter in [backoff/2, backoff] to decorrelate reconnect storms.
	half := w.backoff / 2
	d := half + time.Duration(rand.Int63n(int64(half)+1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.ctx.Done():
	case <-timer.C:
	}
}
