package p2p

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
)

// ErrClosed is returned by Send after the transport has been closed.
var ErrClosed = errors.New("p2p: transport closed")

// TCPTransport is the real-network transport used by the ledgerd daemon:
// length-delimited JSON messages over persistent TCP connections. Peers
// are added explicitly (static membership, as in a consortium network).
type TCPTransport struct {
	self    NodeID
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	peers   map[NodeID]string // address book
	conns   map[NodeID]*json.Encoder
	raw     map[NodeID]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport starts listening on bindAddr and handles incoming
// messages with h.
func NewTCPTransport(self NodeID, bindAddr string, h Handler) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen %s: %w", bindAddr, err)
	}
	t := &TCPTransport{
		self:    self,
		ln:      ln,
		handler: h,
		peers:   make(map[NodeID]string),
		conns:   make(map[NodeID]*json.Encoder),
		raw:     make(map[NodeID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listening address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Self implements Transport.
func (t *TCPTransport) Self() NodeID { return t.self }

// AddPeer records a peer's dialable address.
func (t *TCPTransport) AddPeer(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Peers implements Transport.
func (t *TCPTransport) Peers() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Send implements Transport, dialing on first use and reusing the
// connection afterwards.
func (t *TCPTransport) Send(to NodeID, m Message) error {
	m.From = t.self
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	enc, ok := t.conns[to]
	if !ok {
		addr, known := t.peers[to]
		if !known {
			t.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("p2p: dial %s: %w", to, err)
		}
		enc = json.NewEncoder(conn)
		t.conns[to] = enc
		t.raw[to] = conn
	}
	t.mu.Unlock()

	if err := enc.Encode(m); err != nil {
		t.mu.Lock()
		if c, ok := t.raw[to]; ok {
			c.Close()
		}
		delete(t.conns, to)
		delete(t.raw, to)
		t.mu.Unlock()
		return fmt.Errorf("p2p: send to %s: %w", to, err)
	}
	return nil
}

// Close shuts the listener and all connections down and waits for the
// reader goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.raw {
		c.Close()
	}
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := json.NewDecoder(conn)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if t.handler != nil {
			t.handler(m)
		}
	}
}
