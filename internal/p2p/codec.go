package p2p

import (
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/wire"
)

// Wire format bounds (see docs/WIRE.md). A Message frame on the TCP
// transport is
//
//	u32 frameLen | u8 version | u16 fromLen | from | u16 typeLen | type
//	            | u32 dataLen | data
//
// and every inbound length is checked against these caps before any
// allocation happens.
const (
	// MsgVersion is the frame body version byte; decoders reject
	// anything else so the format can evolve without ambiguity.
	MsgVersion = 1
	// MaxNodeIDLen bounds Message.From on the wire.
	MaxNodeIDLen = 128
	// MaxMsgTypeLen bounds Message.Type on the wire.
	MaxMsgTypeLen = 128
	// DefaultMaxFrame is the default inbound frame cap: 16 MiB, matching
	// the per-field bound of the canonical block codec so any block the
	// codec accepts also fits one frame.
	DefaultMaxFrame = 1 << 24
)

// AppendMessage appends the binary encoding of m to dst and returns
// the extended slice. The transport reuses one scratch buffer per peer
// writer, so steady-state sends do not allocate.
func AppendMessage(dst []byte, m Message) []byte {
	dst = append(dst, MsgVersion)
	dst = appendU16(dst, uint16(len(m.From)))
	dst = append(dst, m.From...)
	dst = appendU16(dst, uint16(len(m.Type)))
	dst = append(dst, m.Type...)
	dst = appendU32(dst, uint32(len(m.Data)))
	dst = append(dst, m.Data...)
	return dst
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// EncodeMessage returns the binary encoding of m (a fresh slice).
func EncodeMessage(m Message) []byte {
	return AppendMessage(make([]byte, 0, 1+2+len(m.From)+2+len(m.Type)+4+len(m.Data)), m)
}

// DecodeMessage parses a binary message body (the frame payload, after
// the u32 length prefix has been consumed by the frame reader).
func DecodeMessage(b []byte) (Message, error) {
	r := wire.NewReader(b)
	if v := r.U8(); r.Err() == nil && v != MsgVersion {
		return Message{}, fmt.Errorf("p2p: unknown message version %d", v)
	}
	var m Message
	m.From = NodeID(r.String(MaxNodeIDLen))
	m.Type = r.String(MaxMsgTypeLen)
	m.Data = r.Blob(DefaultMaxFrame)
	if err := r.Close(); err != nil {
		return Message{}, fmt.Errorf("p2p: decode message: %w", err)
	}
	return m, nil
}

// Gossip envelope wire format:
//
//	u8 version | id (32 bytes) | u8 hops | u16 topicLen | topic
//	           | u32 payloadLen | payload
//
// The ID is recomputed from (topic, payload) on receive — see
// Gossiper.HandleMessage — so a peer cannot poison the seen-cache by
// shipping a legitimate ID over a bogus payload.
const (
	// MaxGossipTopicLen bounds the topic string on the wire.
	MaxGossipTopicLen = 128
	// MaxGossipPayload bounds one gossiped payload (16 MiB, the block
	// codec's field bound).
	MaxGossipPayload = 1 << 24
)

// encodeEnvelope returns the binary encoding of env.
func encodeEnvelope(env envelope) []byte {
	w := wire.NewBuffer(1 + cryptoutil.HashSize + 1 + 2 + len(env.Topic) + 4 + len(env.Payload))
	w.U8(MsgVersion)
	w.Raw(env.ID[:])
	w.U8(env.Hops)
	w.String(env.Topic)
	w.Blob(env.Payload)
	return w.Bytes()
}

// decodeEnvelope parses a binary gossip envelope.
func decodeEnvelope(b []byte) (envelope, error) {
	r := wire.NewReader(b)
	if v := r.U8(); r.Err() == nil && v != MsgVersion {
		return envelope{}, fmt.Errorf("p2p: unknown envelope version %d", v)
	}
	var env envelope
	r.Raw(env.ID[:])
	env.Hops = r.U8()
	env.Topic = r.String(MaxGossipTopicLen)
	env.Payload = r.Blob(MaxGossipPayload)
	if err := r.Close(); err != nil {
		return envelope{}, fmt.Errorf("p2p: decode envelope: %w", err)
	}
	return env, nil
}
