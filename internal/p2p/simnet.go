package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/simclock"
)

// Simulated-network errors.
var (
	ErrUnknownPeer = errors.New("p2p: unknown peer")
	ErrDuplicateID = errors.New("p2p: node id already joined")
)

// SimStats aggregates traffic counters for experiments.
type SimStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// SimNetwork is a deterministic in-memory network running on a virtual
// clock: messages are delivered as scheduled events after a configurable
// latency, with optional jitter, loss, and partitions. All interaction
// must happen on the simulator's event loop; the type is intentionally
// not goroutine-safe.
type SimNetwork struct {
	clock *simclock.Simulator
	rng   *rand.Rand
	seed  int64

	endpoints map[NodeID]*SimEndpoint
	departed  map[NodeID]bool
	latency   time.Duration
	jitter    time.Duration
	linkLat   map[[2]NodeID]time.Duration
	blocked   map[[2]NodeID]bool
	dropRate  float64
	partition map[NodeID]int

	stats SimStats
}

// SimOption configures a SimNetwork.
type SimOption interface{ apply(*SimNetwork) }

type simOptionFunc func(*SimNetwork)

func (f simOptionFunc) apply(n *SimNetwork) { f(n) }

// WithLatency sets the base one-way delivery latency (default 50ms).
func WithLatency(d time.Duration) SimOption {
	return simOptionFunc(func(n *SimNetwork) { n.latency = d })
}

// WithJitter adds up to d of uniformly random extra latency per message.
func WithJitter(d time.Duration) SimOption {
	return simOptionFunc(func(n *SimNetwork) { n.jitter = d })
}

// WithDropRate makes each message independently lost with probability p.
func WithDropRate(p float64) SimOption {
	return simOptionFunc(func(n *SimNetwork) { n.dropRate = p })
}

// NewSimNetwork creates a simulated network on the given clock, seeded
// for reproducibility.
func NewSimNetwork(clock *simclock.Simulator, seed int64, opts ...SimOption) *SimNetwork {
	n := &SimNetwork{
		clock:     clock,
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
		endpoints: make(map[NodeID]*SimEndpoint),
		departed:  make(map[NodeID]bool),
		latency:   50 * time.Millisecond,
		linkLat:   make(map[[2]NodeID]time.Duration),
		blocked:   make(map[[2]NodeID]bool),
		partition: make(map[NodeID]int),
	}
	for _, o := range opts {
		o.apply(n)
	}
	return n
}

// Join registers a node and its message handler, returning its endpoint.
func (n *SimNetwork) Join(id NodeID, h Handler) (*SimEndpoint, error) {
	if _, ok := n.endpoints[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	ep := &SimEndpoint{net: n, id: id, handler: h}
	n.endpoints[id] = ep
	delete(n.departed, id)
	return ep, nil
}

// Leave removes a node from the network. Queued-message semantics:
// messages already in flight to the departed node are counted Dropped at
// their delivery time (they can never reach a later incarnation), and
// subsequent sends addressed to it are accounted Sent+Dropped and return
// nil — a departed peer looks like loss, not like an addressing error.
// The node's partition-group membership is left untouched so a later
// Rejoin lands back in the same group. Returns ErrUnknownPeer if the id
// is not currently joined.
func (n *SimNetwork) Leave(id NodeID) error {
	ep, ok := n.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, id)
	}
	ep.left = true
	delete(n.endpoints, id)
	n.departed[id] = true
	return nil
}

// Rejoin re-registers a previously departed node with a fresh endpoint
// and handler. Messages queued for the old incarnation stay dropped; the
// new endpoint only receives traffic sent after the rejoin. Returns
// ErrUnknownPeer if the id never left (use Join for first-time
// registration) and ErrDuplicateID if it is currently joined.
func (n *SimNetwork) Rejoin(id NodeID, h Handler) (*SimEndpoint, error) {
	if _, ok := n.endpoints[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if !n.departed[id] {
		return nil, fmt.Errorf("%w: %s never joined", ErrUnknownPeer, id)
	}
	return n.Join(id, h)
}

// SetHandler replaces a node's handler (used when wiring a node after
// transport creation).
func (n *SimNetwork) SetHandler(id NodeID, h Handler) error {
	ep, ok := n.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, id)
	}
	ep.handler = h
	return nil
}

// SetLinkLatency overrides latency for the directed link from → to. The
// override is exact: it replaces both the base latency and any jitter,
// so a scenario script can pin a link's timing precisely.
func (n *SimNetwork) SetLinkLatency(from, to NodeID, d time.Duration) {
	n.linkLat[[2]NodeID{from, to}] = d
}

// ClearLinkLatency removes a per-link latency override, restoring the
// base-plus-jitter model for that directed link.
func (n *SimNetwork) ClearLinkLatency(from, to NodeID) {
	delete(n.linkLat, [2]NodeID{from, to})
}

// BlockLink drops all messages on the directed link from → to until
// UnblockLink or Heal. Unlike Partition's symmetric groups, this models
// asymmetric faults: from can be deaf to to while to still hears from.
func (n *SimNetwork) BlockLink(from, to NodeID) {
	n.blocked[[2]NodeID{from, to}] = true
}

// UnblockLink removes a directed link block.
func (n *SimNetwork) UnblockLink(from, to NodeID) {
	delete(n.blocked, [2]NodeID{from, to})
}

// Partition splits the network into groups; messages across group
// boundaries are dropped until Heal. Nodes not listed stay in group 0.
func (n *SimNetwork) Partition(groups ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for gi, group := range groups {
		for _, id := range group {
			n.partition[id] = gi + 1
		}
	}
}

// Heal removes all partitions and directed link blocks.
func (n *SimNetwork) Heal() {
	n.partition = make(map[NodeID]int)
	n.blocked = make(map[[2]NodeID]bool)
}

// RNGStream derives an independent deterministic random stream from the
// network seed and a label. Scenario actors draw from their own labelled
// streams so adding an actor (or reordering sends) never perturbs the
// jitter/drop stream that shapes everyone else's traffic.
func (n *SimNetwork) RNGStream(label string) *rand.Rand {
	h := cryptoutil.HashUint64("dcsledger/simnet-rng/"+label, uint64(n.seed))
	return rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(h[:8]))))
}

// Stats returns a snapshot of the traffic counters.
func (n *SimNetwork) Stats() SimStats { return n.stats }

// NodeIDs lists all joined nodes.
func (n *SimNetwork) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

func (n *SimNetwork) send(from, to NodeID, m Message) error {
	dst, ok := n.endpoints[to]
	if !ok {
		if n.departed[to] {
			// Dead peer: the message goes into the void, like loss.
			n.stats.Sent++
			n.stats.Bytes += uint64(len(m.Data))
			n.stats.Dropped++
			return nil
		}
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(m.Data))
	if n.partition[from] != n.partition[to] {
		n.stats.Dropped++
		return nil // partitioned: silently lost, like the real network
	}
	if n.blocked[[2]NodeID{from, to}] {
		n.stats.Dropped++
		return nil // asymmetric link fault
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.stats.Dropped++
		return nil
	}
	d, exact := n.linkLat[[2]NodeID{from, to}]
	if !exact {
		d = n.latency
		if n.jitter > 0 {
			d += time.Duration(n.rng.Int63n(int64(n.jitter)))
		}
	}
	m.From = from
	n.clock.After(d, func() {
		if dst.left {
			// The destination departed while the message was in flight;
			// it can never reach a later incarnation of the same id.
			n.stats.Dropped++
			return
		}
		n.stats.Delivered++
		if dst.handler != nil {
			dst.handler(m)
		}
	})
	return nil
}

// SimEndpoint is one node's attachment to a SimNetwork.
type SimEndpoint struct {
	net     *SimNetwork
	id      NodeID
	handler Handler
	left    bool // set by Leave: in-flight deliveries to this incarnation are dropped
}

var _ Transport = (*SimEndpoint)(nil)

// Self implements Transport.
func (e *SimEndpoint) Self() NodeID { return e.id }

// Send implements Transport. A stale endpoint — one whose node has
// left — sends into the void: its traffic is accounted Sent+Dropped so
// a departed node's still-running timers cannot reach the network.
func (e *SimEndpoint) Send(to NodeID, m Message) error {
	if e.left {
		e.net.stats.Sent++
		e.net.stats.Bytes += uint64(len(m.Data))
		e.net.stats.Dropped++
		return nil
	}
	return e.net.send(e.id, to, m)
}

// Peers implements Transport: the full membership, excluding self.
func (e *SimEndpoint) Peers() []NodeID {
	out := make([]NodeID, 0, len(e.net.endpoints)-1)
	for id := range e.net.endpoints {
		if id != e.id {
			out = append(out, id)
		}
	}
	return out
}
