package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dcsledger/internal/simclock"
)

// Simulated-network errors.
var (
	ErrUnknownPeer = errors.New("p2p: unknown peer")
	ErrDuplicateID = errors.New("p2p: node id already joined")
)

// SimStats aggregates traffic counters for experiments.
type SimStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// SimNetwork is a deterministic in-memory network running on a virtual
// clock: messages are delivered as scheduled events after a configurable
// latency, with optional jitter, loss, and partitions. All interaction
// must happen on the simulator's event loop; the type is intentionally
// not goroutine-safe.
type SimNetwork struct {
	clock *simclock.Simulator
	rng   *rand.Rand

	endpoints map[NodeID]*SimEndpoint
	latency   time.Duration
	jitter    time.Duration
	linkLat   map[[2]NodeID]time.Duration
	dropRate  float64
	partition map[NodeID]int

	stats SimStats
}

// SimOption configures a SimNetwork.
type SimOption interface{ apply(*SimNetwork) }

type simOptionFunc func(*SimNetwork)

func (f simOptionFunc) apply(n *SimNetwork) { f(n) }

// WithLatency sets the base one-way delivery latency (default 50ms).
func WithLatency(d time.Duration) SimOption {
	return simOptionFunc(func(n *SimNetwork) { n.latency = d })
}

// WithJitter adds up to d of uniformly random extra latency per message.
func WithJitter(d time.Duration) SimOption {
	return simOptionFunc(func(n *SimNetwork) { n.jitter = d })
}

// WithDropRate makes each message independently lost with probability p.
func WithDropRate(p float64) SimOption {
	return simOptionFunc(func(n *SimNetwork) { n.dropRate = p })
}

// NewSimNetwork creates a simulated network on the given clock, seeded
// for reproducibility.
func NewSimNetwork(clock *simclock.Simulator, seed int64, opts ...SimOption) *SimNetwork {
	n := &SimNetwork{
		clock:     clock,
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[NodeID]*SimEndpoint),
		latency:   50 * time.Millisecond,
		linkLat:   make(map[[2]NodeID]time.Duration),
		partition: make(map[NodeID]int),
	}
	for _, o := range opts {
		o.apply(n)
	}
	return n
}

// Join registers a node and its message handler, returning its endpoint.
func (n *SimNetwork) Join(id NodeID, h Handler) (*SimEndpoint, error) {
	if _, ok := n.endpoints[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	ep := &SimEndpoint{net: n, id: id, handler: h}
	n.endpoints[id] = ep
	return ep, nil
}

// SetHandler replaces a node's handler (used when wiring a node after
// transport creation).
func (n *SimNetwork) SetHandler(id NodeID, h Handler) error {
	ep, ok := n.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, id)
	}
	ep.handler = h
	return nil
}

// SetLinkLatency overrides latency for the directed link from → to.
func (n *SimNetwork) SetLinkLatency(from, to NodeID, d time.Duration) {
	n.linkLat[[2]NodeID{from, to}] = d
}

// Partition splits the network into groups; messages across group
// boundaries are dropped until Heal. Nodes not listed stay in group 0.
func (n *SimNetwork) Partition(groups ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for gi, group := range groups {
		for _, id := range group {
			n.partition[id] = gi + 1
		}
	}
}

// Heal removes all partitions.
func (n *SimNetwork) Heal() {
	n.partition = make(map[NodeID]int)
}

// Stats returns a snapshot of the traffic counters.
func (n *SimNetwork) Stats() SimStats { return n.stats }

// NodeIDs lists all joined nodes.
func (n *SimNetwork) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

func (n *SimNetwork) send(from, to NodeID, m Message) error {
	dst, ok := n.endpoints[to]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(m.Data))
	if n.partition[from] != n.partition[to] {
		n.stats.Dropped++
		return nil // partitioned: silently lost, like the real network
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.stats.Dropped++
		return nil
	}
	d := n.latency
	if ll, ok := n.linkLat[[2]NodeID{from, to}]; ok {
		d = ll
	}
	if n.jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	m.From = from
	n.clock.After(d, func() {
		n.stats.Delivered++
		if dst.handler != nil {
			dst.handler(m)
		}
	})
	return nil
}

// SimEndpoint is one node's attachment to a SimNetwork.
type SimEndpoint struct {
	net     *SimNetwork
	id      NodeID
	handler Handler
}

var _ Transport = (*SimEndpoint)(nil)

// Self implements Transport.
func (e *SimEndpoint) Self() NodeID { return e.id }

// Send implements Transport.
func (e *SimEndpoint) Send(to NodeID, m Message) error {
	return e.net.send(e.id, to, m)
}

// Peers implements Transport: the full membership, excluding self.
func (e *SimEndpoint) Peers() []NodeID {
	out := make([]NodeID, 0, len(e.net.endpoints)-1)
	for id := range e.net.endpoints {
		if id != e.id {
			out = append(out, id)
		}
	}
	return out
}
