package p2p

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestGossipSeenCachePoisoningRejected is the regression test for the
// seen-cache poisoning censorship vector: a malicious peer pre-sends a
// bogus payload under the ID of a legitimate item. The seed gossiper
// trusted the wire ID, marked it seen, and then suppressed the real
// item as a duplicate. The fix recomputes the ID from (topic, payload)
// and drops mismatches before they can touch the seen-cache.
func TestGossipSeenCachePoisoningRejected(t *testing.T) {
	tr := &nullTransport{self: "self", peers: []NodeID{"b"}}
	g := NewGossiper(tr, []NodeID{"b"}, 1, rand.New(rand.NewSource(1)))

	var got atomic.Value
	g.Subscribe("tx", func(_ NodeID, payload []byte) { got.Store(string(payload)) })

	legit := []byte("the real transaction")
	legitID := envelopeID("tx", legit)

	// Attacker claims the legitimate ID over junk bytes.
	g.HandleMessage(Message{From: "evil", Type: GossipMsgType, Data: encodeEnvelope(envelope{
		ID:      legitID,
		Topic:   "tx",
		Payload: []byte("junk"),
	})})
	if st := g.Stats(); st.IDMismatch != 1 || st.Delivered != 0 {
		t.Fatalf("poison attempt: stats %+v, want 1 mismatch, 0 delivered", st)
	}
	if got.Load() != nil {
		t.Fatalf("poison payload delivered: %q", got.Load())
	}

	// The real item must still deliver (the seed dropped it here).
	g.HandleMessage(Message{From: "honest", Type: GossipMsgType, Data: encodeEnvelope(envelope{
		ID:      legitID,
		Topic:   "tx",
		Payload: legit,
	})})
	if v, _ := got.Load().(string); v != string(legit) {
		t.Fatalf("legitimate item suppressed after poison attempt: got %q", v)
	}
	if st := g.Stats(); st.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", st.Delivered)
	}
}

// TestGossipHopTTL verifies the forwarding TTL: an envelope at or above
// maxHops is delivered (it is still new information) but not forwarded,
// so a forged high-fanout envelope cannot circulate indefinitely across
// seen-cache evictions.
func TestGossipHopTTL(t *testing.T) {
	mk := func(hops uint8, payload string) []byte {
		return encodeEnvelope(envelope{
			ID:      envelopeID("t", []byte(payload)),
			Topic:   "t",
			Payload: []byte(payload),
			Hops:    hops,
		})
	}

	tr := &nullTransport{self: "self", peers: []NodeID{"b"}}
	g := NewGossiper(tr, []NodeID{"b"}, 1, rand.New(rand.NewSource(1)))
	g.SetMaxHops(4)

	g.HandleMessage(Message{From: "peer", Type: GossipMsgType, Data: mk(3, "under")})
	if st := g.Stats(); st.Forwarded != 1 || st.TTLExpired != 0 {
		t.Fatalf("hops=3 under TTL: %+v, want forwarded", st)
	}
	g.HandleMessage(Message{From: "peer", Type: GossipMsgType, Data: mk(4, "at")})
	if st := g.Stats(); st.Forwarded != 1 || st.TTLExpired != 1 || st.Delivered != 2 {
		t.Fatalf("hops=4 at TTL: %+v, want delivered but not forwarded", st)
	}
	g.HandleMessage(Message{From: "peer", Type: GossipMsgType, Data: mk(255, "over")})
	if st := g.Stats(); st.Forwarded != 1 || st.TTLExpired != 2 || st.Delivered != 3 {
		t.Fatalf("hops=255: %+v, want delivered but not forwarded", st)
	}
}

// TestGossipHopCountIncrements checks the forwarded copy carries Hops+1.
func TestGossipHopCountIncrements(t *testing.T) {
	var forwarded atomic.Value
	tr := &captureTransport{self: "self"}
	g := NewGossiper(tr, []NodeID{"b"}, 1, rand.New(rand.NewSource(1)))
	tr.onSend = func(m Message) {
		env, err := decodeEnvelope(m.Data)
		if err != nil {
			t.Errorf("forwarded envelope does not decode: %v", err)
			return
		}
		forwarded.Store(env.Hops)
	}
	payload := []byte("x")
	g.HandleMessage(Message{From: "peer", Type: GossipMsgType, Data: encodeEnvelope(envelope{
		ID: envelopeID("t", payload), Topic: "t", Payload: payload, Hops: 2,
	})})
	if h, _ := forwarded.Load().(uint8); h != 3 {
		t.Fatalf("forwarded hops = %d, want 3", h)
	}
}

// captureTransport hands each sent message to a callback.
type captureTransport struct {
	self   NodeID
	onSend func(Message)
}

func (c *captureTransport) Self() NodeID { return c.self }
func (c *captureTransport) Send(_ NodeID, m Message) error {
	if c.onSend != nil {
		c.onSend(m)
	}
	return nil
}
func (c *captureTransport) Peers() []NodeID { return []NodeID{"b"} }

// TestOversizeInboundFrameDropped is the regression test for the
// unbounded-read OOM vector: the seed readLoop json-decoded an
// attacker-controlled stream with no size cap, so one giant message
// could exhaust memory. The frame codec must reject the frame from its
// header alone — before any body allocation — count it, and drop the
// connection.
func TestOversizeInboundFrameDropped(t *testing.T) {
	tr, err := NewTCPTransportConfig("self", "127.0.0.1:0", nil, TCPConfig{
		MaxFrameSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Header claims a 1 GiB body; no body follows.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}

	// The transport must close the connection (read returns EOF) and
	// count the oversize frame without ever reading a body.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection stayed open after oversize frame")
	}
	waitFor(t, 5*time.Second, func() bool {
		return tr.Stats().RecvOversize == 1
	}, fmt.Sprintf("oversize counter = %d, want 1", tr.Stats().RecvOversize))
	if recv := tr.Stats().Recv; recv != 0 {
		t.Fatalf("oversize frame delivered %d messages", recv)
	}
}

// TestInboundIdleReadDeadline: a peer that connects and sends nothing
// must be disconnected once ReadIdleTimeout elapses, freeing the reader
// goroutine and socket.
func TestInboundIdleReadDeadline(t *testing.T) {
	tr, err := NewTCPTransportConfig("self", "127.0.0.1:0", nil, TCPConfig{
		ReadIdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection was not dropped")
	}
	waitFor(t, 5*time.Second, func() bool {
		return tr.Stats().InboundConns == 0
	}, "inbound conn still tracked after idle drop")
}

// TestGarbageInboundBytesDropConnection: a stream that is not the frame
// protocol (e.g. an HTTP request) must be counted as a receive error
// and dropped, never looped on.
func TestGarbageInboundBytesDropConnection(t *testing.T) {
	tr, err := NewTCPTransportConfig("self", "127.0.0.1:0", nil, TCPConfig{
		MaxFrameSize: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A plausible small frame length followed by a body that is not a
	// valid Message.
	frame := make([]byte, 4+8)
	binary.BigEndian.PutUint32(frame, 8)
	copy(frame[4:], "GET / HT")
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection stayed open after garbage frame")
	}
	waitFor(t, 5*time.Second, func() bool {
		return tr.Stats().RecvErrors >= 1
	}, "garbage frame not counted as receive error")
}
