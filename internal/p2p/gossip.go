package p2p

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/metrics"
)

// GossipMsgType is the Message.Type used by the gossip protocol.
const GossipMsgType = "gossip"

// DefaultMaxHops is the default forwarding TTL: an envelope that has
// already traveled this many hops is delivered (if new) but not
// forwarded again, so a forged high-hop envelope cannot circulate
// indefinitely across seen-cache evictions. Gossip on a connected
// overlay reaches every node in O(log n) hops; 16 covers overlays far
// larger than any simulation here runs.
const DefaultMaxHops = 16

// DefaultSeenCap bounds the duplicate-suppression cache. Without a
// bound the seen-set is an unmetered memory grant to the network — any
// peer can grow it forever by publishing fresh IDs. Eviction is FIFO
// in arrival order, which is deterministic for one node's observed
// stream; the hop TTL (DefaultMaxHops) keeps an evicted-then-reseen
// item from circulating indefinitely. At 32 bytes per ID the default
// is ~2 MiB of bounded state.
const DefaultSeenCap = 65536

// envelope is one gossiped item; its binary wire format is defined in
// codec.go (decodeEnvelope) and docs/WIRE.md.
type envelope struct {
	ID      cryptoutil.Hash
	Topic   string
	Payload []byte
	Hops    uint8
}

// DeliverFunc receives a gossiped payload exactly once per node.
type DeliverFunc func(from NodeID, payload []byte)

// GossipStats snapshots a gossiper's activity counters.
type GossipStats struct {
	Delivered  uint64 // distinct items delivered locally
	Duplicates uint64 // items suppressed as already seen
	Forwarded  uint64 // copies forwarded to neighbors
	IDMismatch uint64 // envelopes dropped: wire ID != Hash(topic, payload)
	TTLExpired uint64 // envelopes delivered but not forwarded: hop TTL reached
}

// Gossiper floods published items to the node's overlay neighbors:
// push-based epidemic broadcast with duplicate suppression, the
// mechanism Section 2.3 describes for disseminating transactions and
// blocks. Each node forwards a newly seen item to min(fanout,
// |neighbors|) random neighbors.
//
// Gossiper is safe for concurrent use: HandleMessage may be invoked
// from many TCP reader goroutines while Publish runs on the node's
// application path. The mutex guards the seen-set, subscriptions,
// neighbor list, and rng; delivery callbacks and transport sends run
// outside the lock, so a callback may re-enter the gossiper (or take
// the node lock) without deadlocking.
type Gossiper struct {
	tr      Transport
	fanout  int
	maxHops uint8

	mu        sync.Mutex
	neighbors []NodeID
	rng       *rand.Rand
	seen      map[cryptoutil.Hash]struct{}
	seenQ     []cryptoutil.Hash // FIFO of live seen-IDs, oldest at seenHead
	seenHead  int
	seenCap   int
	subs      map[string]DeliverFunc

	delivered  atomic.Uint64
	duplicates atomic.Uint64
	forwarded  atomic.Uint64
	idMismatch atomic.Uint64
	ttlExpired atomic.Uint64
}

// NewGossiper creates a gossiper for the node behind tr, forwarding to
// the given overlay neighbors with the given fanout.
func NewGossiper(tr Transport, neighbors []NodeID, fanout int, rng *rand.Rand) *Gossiper {
	if fanout < 1 {
		fanout = 1
	}
	return &Gossiper{
		tr:        tr,
		neighbors: append([]NodeID(nil), neighbors...),
		fanout:    fanout,
		maxHops:   DefaultMaxHops,
		rng:       rng,
		seen:      make(map[cryptoutil.Hash]struct{}),
		seenCap:   DefaultSeenCap,
		subs:      make(map[string]DeliverFunc),
	}
}

// SetMaxHops overrides the forwarding TTL (0 restores DefaultMaxHops).
// Call before traffic starts.
func (g *Gossiper) SetMaxHops(h uint8) {
	if h == 0 {
		h = DefaultMaxHops
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.maxHops = h
}

// Subscribe registers the delivery callback for a topic.
func (g *Gossiper) Subscribe(topic string, fn DeliverFunc) {
	g.mu.Lock()
	defer g.mu.Unlock()
	//dcslint:ignore unbounded one entry per code-defined topic, registered at node wiring time — not writable by remote input
	g.subs[topic] = fn
}

// markSeen atomically records env.ID in the seen-set, reporting
// whether this call was the first to see it. The check-and-set must be
// one critical section so two concurrent readers holding the same item
// cannot both deliver it.
func (g *Gossiper) markSeen(id cryptoutil.Hash) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.seen[id]; ok {
		return false
	}
	g.seen[id] = struct{}{}
	g.seenQ = append(g.seenQ, id)
	for len(g.seen) > g.seenCap {
		delete(g.seen, g.seenQ[g.seenHead])
		g.seenHead++
	}
	// Compact the queue once the dead prefix dominates, so the backing
	// array stays O(seenCap) instead of growing with total traffic.
	if g.seenHead > g.seenCap {
		g.seenQ = append(g.seenQ[:0], g.seenQ[g.seenHead:]...)
		g.seenHead = 0
	}
	return true
}

// SetSeenCap overrides the duplicate-suppression cache bound (0
// restores DefaultSeenCap). Call before traffic starts.
func (g *Gossiper) SetSeenCap(n int) {
	if n <= 0 {
		n = DefaultSeenCap
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seenCap = n
	for len(g.seen) > g.seenCap {
		delete(g.seen, g.seenQ[g.seenHead])
		g.seenHead++
	}
}

// Publish floods payload under topic, delivering locally first.
func (g *Gossiper) Publish(topic string, payload []byte) {
	env := envelope{
		ID:      envelopeID(topic, payload),
		Topic:   topic,
		Payload: payload,
	}
	if !g.markSeen(env.ID) {
		g.duplicates.Add(1)
		return
	}
	g.deliver(g.tr.Self(), env)
	g.forward(env)
}

// HandleMessage processes an incoming gossip Message; wire it into the
// node's Mux under GossipMsgType. Safe to call from concurrent
// transport reader goroutines.
//
// The envelope's ID is never trusted: it is recomputed from (topic,
// payload) and the message is dropped on mismatch. Trusting the wire
// ID would let a malicious peer pre-claim the ID of a legitimate item
// with a bogus payload, poisoning the seen-cache so the real item is
// later suppressed as a duplicate — a censorship vector.
func (g *Gossiper) HandleMessage(m Message) {
	env, err := decodeEnvelope(m.Data)
	if err != nil {
		return // malformed gossip from a faulty peer: drop
	}
	if got := envelopeID(env.Topic, env.Payload); got != env.ID {
		g.idMismatch.Add(1)
		return
	}
	if !g.markSeen(env.ID) {
		g.duplicates.Add(1)
		return
	}
	g.deliver(m.From, env)
	g.mu.Lock()
	expired := env.Hops >= g.maxHops
	g.mu.Unlock()
	if expired {
		g.ttlExpired.Add(1)
		return
	}
	env.Hops++
	g.forward(env)
}

// envelopeID is the self-certifying gossip item identifier.
func envelopeID(topic string, payload []byte) cryptoutil.Hash {
	return cryptoutil.HashBytes([]byte("gossip/"+topic), payload)
}

// Delivered returns how many distinct items this node has delivered.
func (g *Gossiper) Delivered() uint64 { return g.delivered.Load() }

// Stats returns a snapshot of the gossip counters.
func (g *Gossiper) Stats() GossipStats {
	return GossipStats{
		Delivered:  g.delivered.Load(),
		Duplicates: g.duplicates.Load(),
		Forwarded:  g.forwarded.Load(),
		IDMismatch: g.idMismatch.Load(),
		TTLExpired: g.ttlExpired.Load(),
	}
}

// RegisterMetrics exports the gossip counters into reg as callback
// gauges (gossip_delivered_total, gossip_duplicate_total,
// gossip_forwarded_total, gossip_id_mismatch_total,
// gossip_ttl_expired_total).
func (g *Gossiper) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterFunc("gossip_delivered_total", func() int64 { return int64(g.delivered.Load()) })
	reg.RegisterFunc("gossip_duplicate_total", func() int64 { return int64(g.duplicates.Load()) })
	reg.RegisterFunc("gossip_forwarded_total", func() int64 { return int64(g.forwarded.Load()) })
	reg.RegisterFunc("gossip_id_mismatch_total", func() int64 { return int64(g.idMismatch.Load()) })
	reg.RegisterFunc("gossip_ttl_expired_total", func() int64 { return int64(g.ttlExpired.Load()) })
}

// Neighbors returns a copy of the overlay neighbor set.
func (g *Gossiper) Neighbors() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]NodeID(nil), g.neighbors...)
}

// deliver runs outside g.mu: the subscriber callback may call back
// into the gossiper or take the node's lock.
func (g *Gossiper) deliver(from NodeID, env envelope) {
	g.delivered.Add(1)
	g.mu.Lock()
	fn := g.subs[env.Topic]
	g.mu.Unlock()
	if fn != nil {
		fn(from, env.Payload)
	}
}

func (g *Gossiper) forward(env envelope) {
	data := encodeEnvelope(env)
	targets := g.pickNeighbors()
	for _, to := range targets {
		g.forwarded.Add(1)
		_ = g.tr.Send(to, Message{Type: GossipMsgType, Data: data})
	}
}

// pickNeighbors selects min(fanout, |neighbors|) random forwarding
// targets. It always returns a fresh slice — never the internal
// neighbor list — so callers cannot mutate overlay state.
func (g *Gossiper) pickNeighbors() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.neighbors) <= g.fanout {
		return append([]NodeID(nil), g.neighbors...)
	}
	idx := g.rng.Perm(len(g.neighbors))[:g.fanout]
	out := make([]NodeID, len(idx))
	for i, j := range idx {
		out[i] = g.neighbors[j]
	}
	return out
}

// RandomTopology builds a connected undirected overlay over ids: a ring
// (guaranteeing connectivity) plus random chords until each node has at
// least the requested degree. Deterministic for a given rng.
func RandomTopology(ids []NodeID, degree int, rng *rand.Rand) map[NodeID][]NodeID {
	n := len(ids)
	adj := make(map[NodeID]map[NodeID]struct{}, n)
	sorted := append([]NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		adj[id] = make(map[NodeID]struct{})
	}
	if n <= 1 {
		return flatten(adj)
	}
	link := func(a, b NodeID) {
		if a != b {
			adj[a][b] = struct{}{}
			adj[b][a] = struct{}{}
		}
	}
	// Ring for connectivity.
	for i, id := range sorted {
		link(id, sorted[(i+1)%n])
	}
	// Random chords up to the requested degree.
	if degree > n-1 {
		degree = n - 1
	}
	for _, id := range sorted {
		for attempts := 0; len(adj[id]) < degree && attempts < 10*n; attempts++ {
			link(id, sorted[rng.Intn(n)])
		}
	}
	return flatten(adj)
}

func flatten(adj map[NodeID]map[NodeID]struct{}) map[NodeID][]NodeID {
	out := make(map[NodeID][]NodeID, len(adj))
	for id, set := range adj {
		ns := make([]NodeID, 0, len(set))
		for nb := range set {
			ns = append(ns, nb)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		out[id] = ns
	}
	return out
}

// NodeName formats the conventional node identifier used across the
// simulations.
func NodeName(i int) NodeID { return NodeID(fmt.Sprintf("node-%03d", i)) }
