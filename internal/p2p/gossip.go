package p2p

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"dcsledger/internal/cryptoutil"
)

// GossipMsgType is the Message.Type used by the gossip protocol.
const GossipMsgType = "gossip"

// envelope is the wire format of one gossiped item.
type envelope struct {
	ID      cryptoutil.Hash `json:"id"`
	Topic   string          `json:"topic"`
	Payload []byte          `json:"payload"`
	Hops    int             `json:"hops"`
}

// DeliverFunc receives a gossiped payload exactly once per node.
type DeliverFunc func(from NodeID, payload []byte)

// Gossiper floods published items to the node's overlay neighbors:
// push-based epidemic broadcast with duplicate suppression, the
// mechanism Section 2.3 describes for disseminating transactions and
// blocks. Each node forwards a newly seen item to min(fanout,
// |neighbors|) random neighbors.
type Gossiper struct {
	tr        Transport
	neighbors []NodeID
	fanout    int
	rng       *rand.Rand
	seen      map[cryptoutil.Hash]struct{}
	subs      map[string]DeliverFunc
	delivered uint64
}

// NewGossiper creates a gossiper for the node behind tr, forwarding to
// the given overlay neighbors with the given fanout.
func NewGossiper(tr Transport, neighbors []NodeID, fanout int, rng *rand.Rand) *Gossiper {
	if fanout < 1 {
		fanout = 1
	}
	return &Gossiper{
		tr:        tr,
		neighbors: append([]NodeID(nil), neighbors...),
		fanout:    fanout,
		rng:       rng,
		seen:      make(map[cryptoutil.Hash]struct{}),
		subs:      make(map[string]DeliverFunc),
	}
}

// Subscribe registers the delivery callback for a topic.
func (g *Gossiper) Subscribe(topic string, fn DeliverFunc) {
	g.subs[topic] = fn
}

// Publish floods payload under topic, delivering locally first.
func (g *Gossiper) Publish(topic string, payload []byte) {
	env := envelope{
		ID:      cryptoutil.HashBytes([]byte("gossip/"+topic), payload),
		Topic:   topic,
		Payload: payload,
	}
	if _, ok := g.seen[env.ID]; ok {
		return
	}
	g.seen[env.ID] = struct{}{}
	g.deliver(g.tr.Self(), env)
	g.forward(env)
}

// HandleMessage processes an incoming gossip Message; wire it into the
// node's Mux under GossipMsgType.
func (g *Gossiper) HandleMessage(m Message) {
	var env envelope
	if err := json.Unmarshal(m.Data, &env); err != nil {
		return // malformed gossip from a faulty peer: drop
	}
	if _, ok := g.seen[env.ID]; ok {
		return
	}
	g.seen[env.ID] = struct{}{}
	g.deliver(m.From, env)
	env.Hops++
	g.forward(env)
}

// Delivered returns how many distinct items this node has delivered.
func (g *Gossiper) Delivered() uint64 { return g.delivered }

// Neighbors returns the overlay neighbor set.
func (g *Gossiper) Neighbors() []NodeID {
	return append([]NodeID(nil), g.neighbors...)
}

func (g *Gossiper) deliver(from NodeID, env envelope) {
	g.delivered++
	if fn, ok := g.subs[env.Topic]; ok {
		fn(from, env.Payload)
	}
}

func (g *Gossiper) forward(env envelope) {
	data, err := json.Marshal(env)
	if err != nil {
		return
	}
	targets := g.pickNeighbors()
	for _, to := range targets {
		_ = g.tr.Send(to, Message{Type: GossipMsgType, Data: data})
	}
}

func (g *Gossiper) pickNeighbors() []NodeID {
	if len(g.neighbors) <= g.fanout {
		return g.neighbors
	}
	idx := g.rng.Perm(len(g.neighbors))[:g.fanout]
	out := make([]NodeID, len(idx))
	for i, j := range idx {
		out[i] = g.neighbors[j]
	}
	return out
}

// RandomTopology builds a connected undirected overlay over ids: a ring
// (guaranteeing connectivity) plus random chords until each node has at
// least the requested degree. Deterministic for a given rng.
func RandomTopology(ids []NodeID, degree int, rng *rand.Rand) map[NodeID][]NodeID {
	n := len(ids)
	adj := make(map[NodeID]map[NodeID]struct{}, n)
	sorted := append([]NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		adj[id] = make(map[NodeID]struct{})
	}
	if n <= 1 {
		return flatten(adj)
	}
	link := func(a, b NodeID) {
		if a != b {
			adj[a][b] = struct{}{}
			adj[b][a] = struct{}{}
		}
	}
	// Ring for connectivity.
	for i, id := range sorted {
		link(id, sorted[(i+1)%n])
	}
	// Random chords up to the requested degree.
	if degree > n-1 {
		degree = n - 1
	}
	for _, id := range sorted {
		for attempts := 0; len(adj[id]) < degree && attempts < 10*n; attempts++ {
			link(id, sorted[rng.Intn(n)])
		}
	}
	return flatten(adj)
}

func flatten(adj map[NodeID]map[NodeID]struct{}) map[NodeID][]NodeID {
	out := make(map[NodeID][]NodeID, len(adj))
	for id, set := range adj {
		ns := make([]NodeID, 0, len(set))
		for nb := range set {
			ns = append(ns, nb)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		out[id] = ns
	}
	return out
}

// NodeName formats the conventional node identifier used across the
// simulations.
func NodeName(i int) NodeID { return NodeID(fmt.Sprintf("node-%03d", i)) }
