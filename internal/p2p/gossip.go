package p2p

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/metrics"
)

// GossipMsgType is the Message.Type used by the gossip protocol.
const GossipMsgType = "gossip"

// envelope is the wire format of one gossiped item.
type envelope struct {
	ID      cryptoutil.Hash `json:"id"`
	Topic   string          `json:"topic"`
	Payload []byte          `json:"payload"`
	Hops    int             `json:"hops"`
}

// DeliverFunc receives a gossiped payload exactly once per node.
type DeliverFunc func(from NodeID, payload []byte)

// GossipStats snapshots a gossiper's activity counters.
type GossipStats struct {
	Delivered  uint64 // distinct items delivered locally
	Duplicates uint64 // items suppressed as already seen
	Forwarded  uint64 // copies forwarded to neighbors
}

// Gossiper floods published items to the node's overlay neighbors:
// push-based epidemic broadcast with duplicate suppression, the
// mechanism Section 2.3 describes for disseminating transactions and
// blocks. Each node forwards a newly seen item to min(fanout,
// |neighbors|) random neighbors.
//
// Gossiper is safe for concurrent use: HandleMessage may be invoked
// from many TCP reader goroutines while Publish runs on the node's
// application path. The mutex guards the seen-set, subscriptions,
// neighbor list, and rng; delivery callbacks and transport sends run
// outside the lock, so a callback may re-enter the gossiper (or take
// the node lock) without deadlocking.
type Gossiper struct {
	tr     Transport
	fanout int

	mu        sync.Mutex
	neighbors []NodeID
	rng       *rand.Rand
	seen      map[cryptoutil.Hash]struct{}
	subs      map[string]DeliverFunc

	delivered  atomic.Uint64
	duplicates atomic.Uint64
	forwarded  atomic.Uint64
}

// NewGossiper creates a gossiper for the node behind tr, forwarding to
// the given overlay neighbors with the given fanout.
func NewGossiper(tr Transport, neighbors []NodeID, fanout int, rng *rand.Rand) *Gossiper {
	if fanout < 1 {
		fanout = 1
	}
	return &Gossiper{
		tr:        tr,
		neighbors: append([]NodeID(nil), neighbors...),
		fanout:    fanout,
		rng:       rng,
		seen:      make(map[cryptoutil.Hash]struct{}),
		subs:      make(map[string]DeliverFunc),
	}
}

// Subscribe registers the delivery callback for a topic.
func (g *Gossiper) Subscribe(topic string, fn DeliverFunc) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.subs[topic] = fn
}

// markSeen atomically records env.ID in the seen-set, reporting
// whether this call was the first to see it. The check-and-set must be
// one critical section so two concurrent readers holding the same item
// cannot both deliver it.
func (g *Gossiper) markSeen(id cryptoutil.Hash) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.seen[id]; ok {
		return false
	}
	g.seen[id] = struct{}{}
	return true
}

// Publish floods payload under topic, delivering locally first.
func (g *Gossiper) Publish(topic string, payload []byte) {
	env := envelope{
		ID:      cryptoutil.HashBytes([]byte("gossip/"+topic), payload),
		Topic:   topic,
		Payload: payload,
	}
	if !g.markSeen(env.ID) {
		g.duplicates.Add(1)
		return
	}
	g.deliver(g.tr.Self(), env)
	g.forward(env)
}

// HandleMessage processes an incoming gossip Message; wire it into the
// node's Mux under GossipMsgType. Safe to call from concurrent
// transport reader goroutines.
func (g *Gossiper) HandleMessage(m Message) {
	var env envelope
	if err := json.Unmarshal(m.Data, &env); err != nil {
		return // malformed gossip from a faulty peer: drop
	}
	if !g.markSeen(env.ID) {
		g.duplicates.Add(1)
		return
	}
	g.deliver(m.From, env)
	env.Hops++
	g.forward(env)
}

// Delivered returns how many distinct items this node has delivered.
func (g *Gossiper) Delivered() uint64 { return g.delivered.Load() }

// Stats returns a snapshot of the gossip counters.
func (g *Gossiper) Stats() GossipStats {
	return GossipStats{
		Delivered:  g.delivered.Load(),
		Duplicates: g.duplicates.Load(),
		Forwarded:  g.forwarded.Load(),
	}
}

// RegisterMetrics exports the gossip counters into reg as callback
// gauges (gossip_delivered_total, gossip_duplicate_total,
// gossip_forwarded_total).
func (g *Gossiper) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterFunc("gossip_delivered_total", func() int64 { return int64(g.delivered.Load()) })
	reg.RegisterFunc("gossip_duplicate_total", func() int64 { return int64(g.duplicates.Load()) })
	reg.RegisterFunc("gossip_forwarded_total", func() int64 { return int64(g.forwarded.Load()) })
}

// Neighbors returns a copy of the overlay neighbor set.
func (g *Gossiper) Neighbors() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]NodeID(nil), g.neighbors...)
}

// deliver runs outside g.mu: the subscriber callback may call back
// into the gossiper or take the node's lock.
func (g *Gossiper) deliver(from NodeID, env envelope) {
	g.delivered.Add(1)
	g.mu.Lock()
	fn := g.subs[env.Topic]
	g.mu.Unlock()
	if fn != nil {
		fn(from, env.Payload)
	}
}

func (g *Gossiper) forward(env envelope) {
	data, err := json.Marshal(env)
	if err != nil {
		return
	}
	targets := g.pickNeighbors()
	for _, to := range targets {
		g.forwarded.Add(1)
		_ = g.tr.Send(to, Message{Type: GossipMsgType, Data: data})
	}
}

// pickNeighbors selects min(fanout, |neighbors|) random forwarding
// targets. It always returns a fresh slice — never the internal
// neighbor list — so callers cannot mutate overlay state.
func (g *Gossiper) pickNeighbors() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.neighbors) <= g.fanout {
		return append([]NodeID(nil), g.neighbors...)
	}
	idx := g.rng.Perm(len(g.neighbors))[:g.fanout]
	out := make([]NodeID, len(idx))
	for i, j := range idx {
		out[i] = g.neighbors[j]
	}
	return out
}

// RandomTopology builds a connected undirected overlay over ids: a ring
// (guaranteeing connectivity) plus random chords until each node has at
// least the requested degree. Deterministic for a given rng.
func RandomTopology(ids []NodeID, degree int, rng *rand.Rand) map[NodeID][]NodeID {
	n := len(ids)
	adj := make(map[NodeID]map[NodeID]struct{}, n)
	sorted := append([]NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		adj[id] = make(map[NodeID]struct{})
	}
	if n <= 1 {
		return flatten(adj)
	}
	link := func(a, b NodeID) {
		if a != b {
			adj[a][b] = struct{}{}
			adj[b][a] = struct{}{}
		}
	}
	// Ring for connectivity.
	for i, id := range sorted {
		link(id, sorted[(i+1)%n])
	}
	// Random chords up to the requested degree.
	if degree > n-1 {
		degree = n - 1
	}
	for _, id := range sorted {
		for attempts := 0; len(adj[id]) < degree && attempts < 10*n; attempts++ {
			link(id, sorted[rng.Intn(n)])
		}
	}
	return flatten(adj)
}

func flatten(adj map[NodeID]map[NodeID]struct{}) map[NodeID][]NodeID {
	out := make(map[NodeID][]NodeID, len(adj))
	for id, set := range adj {
		ns := make([]NodeID, 0, len(set))
		for nb := range set {
			ns = append(ns, nb)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		out[id] = ns
	}
	return out
}

// NodeName formats the conventional node identifier used across the
// simulations.
func NodeName(i int) NodeID { return NodeID(fmt.Sprintf("node-%03d", i)) }
