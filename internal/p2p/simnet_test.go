package p2p

import (
	"errors"
	"testing"
	"time"

	"dcsledger/internal/simclock"
)

// TestSimNetworkSelfSend: a node may send to itself; the message goes
// through the normal latency pipeline and is counted like any other.
func TestSimNetworkSelfSend(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1, WithLatency(10*time.Millisecond))
	var got []Message
	ep, err := net.Join("a", func(m Message) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send("a", Message{Type: "x", Data: []byte("self")}); err != nil {
		t.Fatalf("self-send: %v", err)
	}
	sim.Run()
	if len(got) != 1 {
		t.Fatalf("self-send delivered %d messages, want 1", len(got))
	}
	if got[0].From != "a" || string(got[0].Data) != "self" {
		t.Fatalf("self-send message mangled: %+v", got[0])
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("self-send stats = %+v", st)
	}
}

// TestSimNetworkLinkLatencyExact: a per-link override replaces both the
// base latency and the jitter — deliveries on the overridden link land
// at exactly the override, while other links keep base+jitter.
func TestSimNetworkLinkLatencyExact(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 7,
		WithLatency(10*time.Millisecond), WithJitter(50*time.Millisecond))
	start := sim.Now()
	var abAt, acAt []time.Duration
	epA, _ := net.Join("a", nil)
	if _, err := net.Join("b", func(Message) { abAt = append(abAt, sim.Now().Sub(start)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join("c", func(Message) { acAt = append(acAt, sim.Now().Sub(start)) }); err != nil {
		t.Fatal(err)
	}
	net.SetLinkLatency("a", "b", 123*time.Millisecond)
	for i := 0; i < 20; i++ {
		if err := epA.Send("b", Message{Type: "x"}); err != nil {
			t.Fatal(err)
		}
		if err := epA.Send("c", Message{Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if len(abAt) != 20 || len(acAt) != 20 {
		t.Fatalf("deliveries: a→b %d, a→c %d, want 20 each", len(abAt), len(acAt))
	}
	for i, d := range abAt {
		if want := 123 * time.Millisecond; d != want {
			t.Fatalf("a→b delivery %d at %v, want exactly %v (no jitter)", i, d, want)
		}
	}
	jittered := false
	for _, d := range acAt {
		if d < 10*time.Millisecond || d >= 60*time.Millisecond {
			t.Fatalf("a→c delivery at %v outside base+jitter window", d)
		}
		if d != 10*time.Millisecond {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("a→c deliveries never jittered; jitter not applied")
	}
	// Clearing the override restores base+jitter.
	net.ClearLinkLatency("a", "b")
	abAt = nil
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(abAt) != 1 || abAt[0] == 123*time.Millisecond {
		t.Fatalf("after ClearLinkLatency delivery = %v", abAt)
	}
}

// TestSimNetworkDropAccounting: every send is counted exactly once as
// Delivered or Dropped, and Bytes counts payloads of all sends, dropped
// or not.
func TestSimNetworkDropAccounting(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 42, WithDropRate(0.3))
	epA, _ := net.Join("a", nil)
	delivered := 0
	if _, err := net.Join("b", func(Message) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	const total = 500
	payload := []byte("12345678") // 8 bytes
	for i := 0; i < total; i++ {
		if err := epA.Send("b", Message{Type: "x", Data: payload}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	st := net.Stats()
	if st.Sent != total {
		t.Fatalf("Sent = %d, want %d", st.Sent, total)
	}
	if st.Delivered+st.Dropped != total {
		t.Fatalf("Delivered(%d) + Dropped(%d) != Sent(%d)", st.Delivered, st.Dropped, st.Sent)
	}
	if uint64(delivered) != st.Delivered {
		t.Fatalf("handler saw %d, stats say Delivered=%d", delivered, st.Delivered)
	}
	if st.Dropped < 100 || st.Dropped > 200 {
		t.Fatalf("drop rate 0.3 dropped %d/%d", st.Dropped, total)
	}
	if st.Bytes != uint64(total*len(payload)) {
		t.Fatalf("Bytes = %d, want %d (dropped sends still count)", st.Bytes, total*len(payload))
	}
}

// TestSimNetworkPartitionUnknownPeer: partitioning may name ids that
// never joined — they simply occupy a group. Known nodes still respect
// the partition, and sends to the unknown id keep failing ErrUnknownPeer.
func TestSimNetworkPartitionUnknownPeer(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1)
	epA, _ := net.Join("a", nil)
	got := 0
	if _, err := net.Join("b", func(Message) { got++ }); err != nil {
		t.Fatal(err)
	}
	net.Partition([]NodeID{"a", "ghost"}, []NodeID{"b"})
	if err := epA.Send("ghost", Message{Type: "x"}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to unknown peer: err = %v, want ErrUnknownPeer", err)
	}
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if got != 0 {
		t.Fatal("partition with unknown member must still cut a↔b")
	}
	net.Heal()
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if got != 1 {
		t.Fatalf("after heal got %d deliveries, want 1", got)
	}
}

// TestSimNetworkLeaveRejoin pins the queued-message semantics: in-flight
// messages to a departed node are dropped at delivery time, sends to a
// departed id are Sent+Dropped without error, rejoin requires a prior
// leave, and the fresh incarnation only sees post-rejoin traffic.
func TestSimNetworkLeaveRejoin(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1, WithLatency(100*time.Millisecond))
	epA, _ := net.Join("a", nil)
	oldInbox, newInbox := 0, 0
	if _, err := net.Join("b", func(Message) { oldInbox++ }); err != nil {
		t.Fatal(err)
	}

	if err := net.Leave("never-joined"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Leave(unknown) = %v, want ErrUnknownPeer", err)
	}
	if _, err := net.Rejoin("never-joined", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Rejoin(never joined) = %v, want ErrUnknownPeer", err)
	}
	if _, err := net.Rejoin("b", nil); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("Rejoin(still joined) = %v, want ErrDuplicateID", err)
	}

	// Put a message in flight, then leave before it lands.
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(50 * time.Millisecond)
	if err := net.Leave("b"); err != nil {
		t.Fatal(err)
	}
	// Send to the departed node: no error, accounted as loss.
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatalf("send to departed peer: %v", err)
	}
	sim.RunFor(time.Second)
	if oldInbox != 0 {
		t.Fatalf("departed node received %d messages, want 0", oldInbox)
	}
	st := net.Stats()
	if st.Sent != 2 || st.Dropped != 2 || st.Delivered != 0 {
		t.Fatalf("stats after leave = %+v, want 2 sent / 2 dropped", st)
	}

	// The departed incarnation's own endpoint sends into the void.
	staleEp := func() *SimEndpoint {
		// epA is live; re-create b's situation with a scratch peer.
		ep, err := net.Join("c", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Leave("c"); err != nil {
			t.Fatal(err)
		}
		return ep
	}()
	before := net.Stats()
	if err := staleEp.Send("a", Message{Type: "x"}); err != nil {
		t.Fatalf("send from departed endpoint: %v", err)
	}
	sim.RunFor(time.Second)
	after := net.Stats()
	if after.Sent != before.Sent+1 || after.Dropped != before.Dropped+1 {
		t.Fatalf("stale-endpoint send stats: before %+v after %+v", before, after)
	}

	// Rejoin with a fresh handler: only new traffic arrives.
	if _, err := net.Rejoin("b", func(Message) { newInbox++ }); err != nil {
		t.Fatal(err)
	}
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if oldInbox != 0 || newInbox != 1 {
		t.Fatalf("after rejoin old=%d new=%d, want 0/1", oldInbox, newInbox)
	}
}

// TestSimNetworkBlockLink: directed blocks are asymmetric and cleared by
// Heal.
func TestSimNetworkBlockLink(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1)
	aGot, bGot := 0, 0
	epA, _ := net.Join("a", nil)
	var epB *SimEndpoint
	var err error
	if epB, err = net.Join("b", func(Message) { bGot++ }); err != nil {
		t.Fatal(err)
	}
	if err := net.SetHandler("a", func(Message) { aGot++ }); err != nil {
		t.Fatal(err)
	}
	net.BlockLink("a", "b")
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := epB.Send("a", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if bGot != 0 || aGot != 1 {
		t.Fatalf("asymmetric block: b got %d (want 0), a got %d (want 1)", bGot, aGot)
	}
	net.Heal()
	if err := epA.Send("b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if bGot != 1 {
		t.Fatalf("Heal must clear link blocks; b got %d", bGot)
	}
}

// TestSimNetworkRNGStreams: labelled streams are deterministic per
// (seed, label) and independent across labels.
func TestSimNetworkRNGStreams(t *testing.T) {
	sim := simclock.NewSimulator()
	netA := NewSimNetwork(sim, 99)
	netB := NewSimNetwork(sim, 99)
	netC := NewSimNetwork(sim, 100)
	seq := func(n *SimNetwork, label string) [4]int64 {
		r := n.RNGStream(label)
		var out [4]int64
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	if seq(netA, "actor/spam") != seq(netB, "actor/spam") {
		t.Fatal("same seed+label must give identical streams")
	}
	if seq(netA, "actor/spam") == seq(netA, "actor/churn") {
		t.Fatal("different labels must give different streams")
	}
	if seq(netA, "actor/spam") == seq(netC, "actor/spam") {
		t.Fatal("different seeds must give different streams")
	}
}
