package p2p

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dcsledger/internal/simclock"
)

func TestMuxLongestPrefixDispatch(t *testing.T) {
	m := NewMux()
	var got string
	m.Handle("pbft", func(msg Message) { got = "pbft" })
	m.Handle("pbft/view", func(msg Message) { got = "pbft/view" })
	m.Handle("gossip", func(msg Message) { got = "gossip" })

	m.Dispatch(Message{Type: "pbft/prepare"})
	if got != "pbft" {
		t.Fatalf("got %q", got)
	}
	m.Dispatch(Message{Type: "pbft/view-change"})
	if got != "pbft/view" {
		t.Fatalf("got %q", got)
	}
	got = ""
	m.Dispatch(Message{Type: "unknown"})
	if got != "" {
		t.Fatal("unroutable message must be dropped")
	}
}

func TestSimNetworkDelivery(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1, WithLatency(100*time.Millisecond))
	var at time.Time
	var gotFrom NodeID
	if _, err := net.Join("a", nil); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := net.Join("b", func(m Message) {
		at = sim.Now()
		gotFrom = m.From
	}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	epA := must(t, net, "a")
	if err := epA.Send("b", Message{Type: "x", Data: []byte("hi")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	sim.Run()
	if gotFrom != "a" {
		t.Fatalf("From = %q", gotFrom)
	}
	if d := at.Sub(time.Unix(0, 0).UTC()); d != 100*time.Millisecond {
		t.Fatalf("delivered at %v, want 100ms", d)
	}
}

func must(t *testing.T, n *SimNetwork, id NodeID) *SimEndpoint {
	t.Helper()
	ep, ok := n.endpoints[id]
	if !ok {
		t.Fatalf("endpoint %s missing", id)
	}
	return ep
}

func TestSimNetworkErrors(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1)
	ep, err := net.Join("a", nil)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, err := net.Join("a", nil); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("want ErrDuplicateID, got %v", err)
	}
	if err := ep.Send("ghost", Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestSimNetworkPartitionAndHeal(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1)
	var bGot, cGot int
	epA, _ := net.Join("a", nil)
	if _, err := net.Join("b", func(Message) { bGot++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join("c", func(Message) { cGot++ }); err != nil {
		t.Fatal(err)
	}
	net.Partition([]NodeID{"a", "b"}, []NodeID{"c"})
	_ = epA.Send("b", Message{Type: "x"})
	_ = epA.Send("c", Message{Type: "x"})
	sim.Run()
	if bGot != 1 || cGot != 0 {
		t.Fatalf("partition: b=%d c=%d", bGot, cGot)
	}
	net.Heal()
	_ = epA.Send("c", Message{Type: "x"})
	sim.Run()
	if cGot != 1 {
		t.Fatal("heal must restore delivery")
	}
	st := net.Stats()
	if st.Sent != 3 || st.Delivered != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSimNetworkDropRate(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 7, WithDropRate(0.5))
	delivered := 0
	epA, _ := net.Join("a", nil)
	if _, err := net.Join("b", func(Message) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	for i := 0; i < total; i++ {
		_ = epA.Send("b", Message{Type: "x"})
	}
	sim.Run()
	if delivered < 400 || delivered > 600 {
		t.Fatalf("drop rate 0.5 delivered %d/%d", delivered, total)
	}
}

func TestSimNetworkLinkLatencyOverride(t *testing.T) {
	sim := simclock.NewSimulator()
	net := NewSimNetwork(sim, 1, WithLatency(10*time.Millisecond))
	var at time.Time
	epA, _ := net.Join("a", nil)
	if _, err := net.Join("b", func(Message) { at = sim.Now() }); err != nil {
		t.Fatal(err)
	}
	net.SetLinkLatency("a", "b", time.Second)
	_ = epA.Send("b", Message{Type: "x"})
	sim.Run()
	if d := at.Sub(time.Unix(0, 0).UTC()); d != time.Second {
		t.Fatalf("link override ignored: %v", d)
	}
}

func TestRandomTopologyConnectedAndDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ids := make([]NodeID, 30)
	for i := range ids {
		ids[i] = NodeName(i)
	}
	topo := RandomTopology(ids, 4, rng)
	// Degree check.
	for id, ns := range topo {
		if len(ns) < 2 {
			t.Fatalf("node %s degree %d < 2", id, len(ns))
		}
		for _, nb := range ns {
			if nb == id {
				t.Fatalf("self loop at %s", id)
			}
		}
	}
	// Connectivity via BFS.
	visited := map[NodeID]bool{ids[0]: true}
	queue := []NodeID{ids[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range topo[cur] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(visited) != len(ids) {
		t.Fatalf("topology disconnected: reached %d/%d", len(visited), len(ids))
	}
	// Symmetry.
	for id, ns := range topo {
		for _, nb := range ns {
			found := false
			for _, back := range topo[nb] {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %s→%s not symmetric", id, nb)
			}
		}
	}
}

func TestRandomTopologyTinyNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := RandomTopology(nil, 3, rng); len(got) != 0 {
		t.Fatal("empty id set should give empty topology")
	}
	one := RandomTopology([]NodeID{"solo"}, 3, rng)
	if len(one["solo"]) != 0 {
		t.Fatal("single node has no neighbors")
	}
	two := RandomTopology([]NodeID{"a", "b"}, 5, rng)
	if len(two["a"]) != 1 || len(two["b"]) != 1 {
		t.Fatalf("two-node topology: %v", two)
	}
}

// buildGossipNetwork wires n nodes with gossipers over a random overlay.
func buildGossipNetwork(t *testing.T, sim *simclock.Simulator, n, fanout int, opts ...SimOption) (map[NodeID]*Gossiper, *SimNetwork) {
	t.Helper()
	net := NewSimNetwork(sim, 42, opts...)
	rng := rand.New(rand.NewSource(99))
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeName(i)
	}
	topo := RandomTopology(ids, 4, rng)
	gossipers := make(map[NodeID]*Gossiper, n)
	for _, id := range ids {
		id := id
		mux := NewMux()
		ep, err := net.Join(id, mux.Dispatch)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		g := NewGossiper(ep, topo[id], fanout, rand.New(rand.NewSource(int64(len(id)*7)+1)))
		mux.Handle(GossipMsgType, g.HandleMessage)
		gossipers[id] = g
	}
	return gossipers, net
}

func TestGossipReachesAllPeers(t *testing.T) {
	sim := simclock.NewSimulator()
	gossipers, _ := buildGossipNetwork(t, sim, 25, 4)
	received := make(map[NodeID]string)
	for id, g := range gossipers {
		id := id
		g.Subscribe("tx", func(from NodeID, payload []byte) {
			received[id] = string(payload)
		})
	}
	gossipers[NodeName(0)].Publish("tx", []byte("hello ledger"))
	sim.Run()
	if len(received) != 25 {
		t.Fatalf("gossip reached %d/25 nodes", len(received))
	}
	for id, v := range received {
		if v != "hello ledger" {
			t.Fatalf("node %s got %q", id, v)
		}
	}
}

func TestGossipDeliversOncePerNode(t *testing.T) {
	sim := simclock.NewSimulator()
	gossipers, _ := buildGossipNetwork(t, sim, 10, 8)
	counts := make(map[NodeID]int)
	for id, g := range gossipers {
		id := id
		g.Subscribe("blk", func(from NodeID, payload []byte) { counts[id]++ })
	}
	gossipers[NodeName(3)].Publish("blk", []byte("block-1"))
	// Publishing the same payload again must be suppressed.
	gossipers[NodeName(3)].Publish("blk", []byte("block-1"))
	sim.Run()
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("node %s delivered %d times", id, c)
		}
	}
}

func TestGossipTopicIsolation(t *testing.T) {
	sim := simclock.NewSimulator()
	gossipers, _ := buildGossipNetwork(t, sim, 5, 4)
	var wrong, right int
	g := gossipers[NodeName(1)]
	g.Subscribe("a", func(NodeID, []byte) { right++ })
	g.Subscribe("b", func(NodeID, []byte) { wrong++ })
	gossipers[NodeName(0)].Publish("a", []byte("payload"))
	sim.Run()
	if right != 1 || wrong != 0 {
		t.Fatalf("topic isolation broken: right=%d wrong=%d", right, wrong)
	}
}

func TestGossipSurvivesLoss(t *testing.T) {
	// With 20% loss and redundant fanout, gossip should still reach
	// (nearly) everyone; require at least 90%.
	sim := simclock.NewSimulator()
	gossipers, _ := buildGossipNetwork(t, sim, 40, 4, WithDropRate(0.2))
	reached := 0
	for _, g := range gossipers {
		g.Subscribe("tx", func(NodeID, []byte) { reached++ })
	}
	gossipers[NodeName(0)].Publish("tx", []byte("resilient"))
	sim.Run()
	if reached < 36 {
		t.Fatalf("gossip under loss reached only %d/40", reached)
	}
}

func TestGossipMalformedMessageIgnored(t *testing.T) {
	sim := simclock.NewSimulator()
	gossipers, net := buildGossipNetwork(t, sim, 3, 2)
	_ = gossipers
	ep, err := net.Join("attacker", nil)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := ep.Send(NodeName(0), Message{Type: GossipMsgType, Data: []byte("not json")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	sim.Run() // must not panic
}

func TestTCPTransportRoundTrip(t *testing.T) {
	gotA := make(chan Message, 4)
	gotB := make(chan Message, 4)
	a, err := NewTCPTransport("a", "127.0.0.1:0", func(m Message) { gotA <- m })
	if err != nil {
		t.Fatalf("NewTCPTransport: %v", err)
	}
	defer a.Close()
	b, err := NewTCPTransport("b", "127.0.0.1:0", func(m Message) { gotB <- m })
	if err != nil {
		t.Fatalf("NewTCPTransport: %v", err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	if err := a.Send("b", Message{Type: "ping", Data: []byte("1")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case m := <-gotB:
		if m.From != "a" || m.Type != "ping" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for message")
	}
	// Reply over the reverse direction, and reuse connections.
	for i := 0; i < 3; i++ {
		if err := b.Send("a", Message{Type: "pong"}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-gotA:
		case <-time.After(2 * time.Second):
			t.Fatal("timeout waiting for pong")
		}
	}
	if len(a.Peers()) != 1 || a.Peers()[0] != "b" {
		t.Fatalf("Peers = %v", a.Peers())
	}
}

func TestTCPTransportErrors(t *testing.T) {
	a, err := NewTCPTransport("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewTCPTransport: %v", err)
	}
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
