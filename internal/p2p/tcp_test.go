package p2p

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// TestTCPConcurrentSendStress fans messages from many goroutines across
// a 3-node full TCP mesh. The seed transport shared one json.Encoder
// per peer with no lock held during Encode, so concurrent senders
// interleaved bytes and corrupted the length-delimited stream; the
// per-peer writer must deliver every message with zero decode errors.
func TestTCPConcurrentSendStress(t *testing.T) {
	const (
		nodes      = 3
		goroutines = 8
		perSender  = 40
	)
	cfg := TCPConfig{QueueSize: 4096}

	counts := make([]atomic.Uint64, nodes)
	trs := make([]*TCPTransport, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		tr, err := NewTCPTransportConfig(NodeName(i), "127.0.0.1:0", func(m Message) {
			counts[i].Add(1)
		}, cfg)
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		defer tr.Close()
		trs[i] = tr
	}
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i != j {
				trs[i].AddPeer(NodeName(j), trs[j].Addr())
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(from, gid int) {
				defer wg.Done()
				for k := 0; k < perSender; k++ {
					payload := []byte(fmt.Sprintf("msg-%d-%d-%d", from, gid, k))
					for j := 0; j < nodes; j++ {
						if j == from {
							continue
						}
						if err := trs[from].Send(NodeName(j), Message{Type: "stress", Data: payload}); err != nil {
							t.Errorf("send %d→%d: %v", from, j, err)
							return
						}
					}
				}
			}(i, g)
		}
	}
	wg.Wait()

	want := uint64((nodes - 1) * goroutines * perSender)
	for i := 0; i < nodes; i++ {
		i := i
		waitFor(t, 10*time.Second, func() bool { return counts[i].Load() == want },
			fmt.Sprintf("node %d received %d/%d", i, counts[i].Load(), want))
	}
	for i, tr := range trs {
		st := tr.Stats()
		if st.RecvErrors != 0 {
			t.Fatalf("node %d: %d decode errors (stream corrupted)", i, st.RecvErrors)
		}
		if st.Dropped != 0 {
			t.Fatalf("node %d: %d drops", i, st.Dropped)
		}
		if st.Sent != want {
			t.Fatalf("node %d: sent %d, want %d", i, st.Sent, want)
		}
	}
}

// TestTCPReconnectAfterPeerRestart kills a peer, restarts a fresh
// transport on the same address, and checks the per-peer writer
// reconnects with backoff and resumes delivery.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	cfg := TCPConfig{
		DialTimeout: 500 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	}
	a, err := NewTCPTransportConfig("a", "127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var got1 atomic.Uint64
	b, err := NewTCPTransportConfig("b", "127.0.0.1:0", func(Message) { got1.Add(1) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()
	a.AddPeer("b", bAddr)

	if err := a.Send("b", Message{Type: "ping"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return got1.Load() == 1 }, "first delivery")

	// Kill b; sends during the outage must not block the caller.
	if err := b.Close(); err != nil {
		t.Fatalf("close b: %v", err)
	}
	start := time.Now()
	_ = a.Send("b", Message{Type: "lost"})
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Send during outage blocked %v", d)
	}

	// Restart b on the same address (retry: the old socket may linger).
	var (
		b2   *TCPTransport
		got2 atomic.Uint64
	)
	for i := 0; i < 50; i++ {
		b2, err = NewTCPTransportConfig("b", bAddr, func(Message) { got2.Add(1) }, cfg)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart b: %v", err)
	}
	defer b2.Close()

	// Keep sending until the writer reconnects and delivers.
	waitFor(t, 10*time.Second, func() bool {
		_ = a.Send("b", Message{Type: "ping2"})
		return got2.Load() > 0
	}, "delivery after restart")
	if st := a.Stats(); st.Reconnects == 0 {
		t.Fatalf("expected reconnects > 0, stats %+v", st)
	}
}

// TestTCPSendNonBlockingAndQueueFull checks that Send to an unreachable
// peer returns immediately (no dial on the caller path) and that a full
// bounded queue degrades to counted drops instead of stalling.
func TestTCPSendNonBlockingAndQueueFull(t *testing.T) {
	cfg := TCPConfig{
		QueueSize:   1,
		DialTimeout: 200 * time.Millisecond,
		BackoffBase: time.Second, // park the writer in backoff after the first failed dial
		BackoffMax:  time.Second,
		MaxAttempts: 2,
	}
	a, err := NewTCPTransportConfig("a", "127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// 127.0.0.1:1 refuses connections; the writer fails its dial and
	// parks in backoff, so the 1-slot queue fills.
	a.AddPeer("dead", "127.0.0.1:1")

	start := time.Now()
	var queueFull int
	for i := 0; i < 50; i++ {
		if err := a.Send("dead", Message{Type: "x"}); errors.Is(err, ErrQueueFull) {
			queueFull++
		}
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("50 sends to unreachable peer took %v (must not block on I/O)", d)
	}
	if queueFull == 0 {
		t.Fatal("expected ErrQueueFull with a 1-slot queue and a dead peer")
	}
	if st := a.Stats(); st.Dropped == 0 {
		t.Fatalf("expected dropped > 0, stats %+v", st)
	}
}

// TestTCPRetriesExhaustedDropsMessage checks a message bound for a dead
// peer is dropped after MaxAttempts, keeping the writer responsive.
func TestTCPRetriesExhaustedDropsMessage(t *testing.T) {
	cfg := TCPConfig{
		DialTimeout: 100 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		MaxAttempts: 2,
	}
	a, err := NewTCPTransportConfig("a", "127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer("dead", "127.0.0.1:1")
	if err := a.Send("dead", Message{Type: "x"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return a.Stats().Dropped >= 1 }, "message dropped after retries")
	if st := a.Stats(); st.DialFailures < 2 {
		t.Fatalf("expected >=2 dial failures, stats %+v", st)
	}
}

// TestTCPAddPeerUpdatesAddress checks that re-adding a peer with a new
// address redirects the writer's next reconnect.
func TestTCPAddPeerUpdatesAddress(t *testing.T) {
	cfg := TCPConfig{
		DialTimeout: 200 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
	a, err := NewTCPTransportConfig("a", "127.0.0.1:0", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var got atomic.Uint64
	b, err := NewTCPTransportConfig("b", "127.0.0.1:0", func(Message) { got.Add(1) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.AddPeer("b", "127.0.0.1:1") // wrong address first
	_ = a.Send("b", Message{Type: "x"})
	a.AddPeer("b", b.Addr()) // correct address
	waitFor(t, 10*time.Second, func() bool {
		_ = a.Send("b", Message{Type: "x"})
		return got.Load() > 0
	}, "delivery after address update")
}

// TestTCPMetricsCounters checks the registry view of a simple exchange.
func TestTCPMetricsCounters(t *testing.T) {
	var got atomic.Uint64
	a, err := NewTCPTransport("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("b", "127.0.0.1:0", func(Message) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	for i := 0; i < 5; i++ {
		if err := a.Send("b", Message{Type: "ping"}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return got.Load() == 5 }, "delivery")

	snapA := a.Registry().Snapshot()
	if snapA["p2p_enqueued_total"] != 5 || snapA["p2p_sent_total"] != 5 {
		t.Fatalf("sender snapshot %v", snapA)
	}
	if snapA["p2p_conns_outbound"] != 1 || snapA["p2p_peer_writers"] != 1 {
		t.Fatalf("sender gauges %v", snapA)
	}
	waitFor(t, 5*time.Second, func() bool {
		return b.Registry().Snapshot()["p2p_recv_total"] == 5
	}, "receiver counter")
	if snapB := b.Registry().Snapshot(); snapB["p2p_conns_inbound"] != 1 {
		t.Fatalf("receiver gauges %v", snapB)
	}

	// Close drains the gauges.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if snap := a.Registry().Snapshot(); snap["p2p_conns_outbound"] != 0 || snap["p2p_peer_writers"] != 0 {
		t.Fatalf("post-close gauges %v", snap)
	}
}
