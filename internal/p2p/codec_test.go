package p2p

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"dcsledger/internal/wire"
)

// TestMessageGoldenVector freezes the Message wire format byte-exactly.
// If this test fails, the wire format changed: that is a protocol
// break, not a refactor — bump MsgVersion and update docs/WIRE.md.
func TestMessageGoldenVector(t *testing.T) {
	m := Message{From: "node-001", Type: "pbft/prepare", Data: []byte{0xDE, 0xAD}}
	const want = "01" + // version
		"0008" + "6e6f64652d303031" + // from: "node-001"
		"000c" + "706266742f70726570617265" + // type: "pbft/prepare"
		"00000002" + "dead" // data
	if got := hex.EncodeToString(EncodeMessage(m)); got != want {
		t.Fatalf("message encoding changed:\n got %s\nwant %s", got, want)
	}
}

// TestEnvelopeGoldenVector freezes the gossip envelope wire format.
func TestEnvelopeGoldenVector(t *testing.T) {
	payload := []byte("tx-bytes")
	env := envelope{
		ID:      envelopeID("tx", payload),
		Topic:   "tx",
		Payload: payload,
		Hops:    3,
	}
	want := "01" + // version
		hex.EncodeToString(env.ID[:]) +
		"03" + // hops
		"0002" + "7478" + // topic: "tx"
		"00000008" + hex.EncodeToString(payload)
	if got := hex.EncodeToString(encodeEnvelope(env)); got != want {
		t.Fatalf("envelope encoding changed:\n got %s\nwant %s", got, want)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{},
		{From: "a", Type: "gossip", Data: nil},
		{From: "node-042", Type: "node/getblock", Data: bytes.Repeat([]byte{7}, 1024)},
		{Type: "raft/append"},
	}
	for _, m := range cases {
		got, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got.From != m.From || got.Type != m.Type || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, env := range []envelope{
		{ID: envelopeID("t", nil), Topic: "t", Hops: 0},
		{ID: envelopeID("blocks", []byte("b")), Topic: "blocks", Payload: []byte("b"), Hops: 255},
	} {
		got, err := decodeEnvelope(encodeEnvelope(env))
		if err != nil {
			t.Fatalf("%+v: %v", env, err)
		}
		if got.ID != env.ID || got.Topic != env.Topic || got.Hops != env.Hops ||
			!bytes.Equal(got.Payload, env.Payload) {
			t.Fatalf("round trip: got %+v, want %+v", got, env)
		}
	}
}

func TestDecodeMessageRejectsBadVersionAndBounds(t *testing.T) {
	good := EncodeMessage(Message{From: "a", Type: "t"})
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := DecodeMessage(bad); err == nil {
		t.Fatal("unknown version must be rejected")
	}
	// Oversized From length prefix.
	var w wire.Buffer
	w.U8(MsgVersion)
	w.U16(MaxNodeIDLen + 1)
	if _, err := DecodeMessage(w.Bytes()); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("oversize from = %v, want ErrTooLarge", err)
	}
	// Trailing bytes are non-canonical.
	if _, err := DecodeMessage(append(good, 0)); !errors.Is(err, wire.ErrTrailing) {
		t.Fatalf("trailing = %v, want ErrTrailing", err)
	}
}

// FuzzMessageDecode: the Message decoder reads attacker-controlled TCP
// frames; it must never panic and must be canonical on accepted inputs.
func FuzzMessageDecode(f *testing.F) {
	f.Add(EncodeMessage(Message{From: "node-001", Type: "gossip", Data: []byte("x")}))
	f.Add(EncodeMessage(Message{}))
	f.Add([]byte{})
	f.Add([]byte{MsgVersion, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re := EncodeMessage(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept: %x != %x", re, data)
		}
	})
}

// FuzzEnvelopeDecode: gossip envelopes arrive from arbitrary peers.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add(encodeEnvelope(envelope{ID: envelopeID("tx", []byte("p")), Topic: "tx", Payload: []byte("p")}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := decodeEnvelope(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeEnvelope(env), data) {
			t.Fatal("non-canonical envelope accepted")
		}
		// The ID check must be total on decoded envelopes.
		_ = envelopeID(env.Topic, env.Payload) == env.ID
	})
}
