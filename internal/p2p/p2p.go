// Package p2p implements the Network layer of the blockchain stack
// (Section 4.6): node identities, message transports, and the gossip
// protocol peers use to disseminate transactions and blocks over an
// unstructured overlay (Section 2.3).
//
// Two transports are provided: a deterministic in-memory simulator
// (SimNetwork) driven by a virtual clock — the substrate for every
// experiment — and a TCP transport for the real daemon.
package p2p

import (
	"strings"
	"sync"
)

// NodeID identifies a peer on the network.
type NodeID string

// Message is the unit of communication between peers. Type routes the
// message to a protocol handler ("gossip", "pbft/prepare", "sync/req",
// ...); Data is the protocol-specific payload. On the TCP transport a
// Message travels as one length-prefixed binary frame (see codec.go and
// docs/WIRE.md).
type Message struct {
	From NodeID
	Type string
	Data []byte
}

// Handler consumes an incoming message.
type Handler func(Message)

// Transport lets a node send messages and discover membership.
type Transport interface {
	// Self returns this node's identity.
	Self() NodeID
	// Send delivers a message to one peer (asynchronously).
	Send(to NodeID, m Message) error
	// Peers lists the currently known peers, excluding self.
	Peers() []NodeID
}

// Mux dispatches incoming messages to protocol handlers by the longest
// registered prefix of Message.Type. It is safe for concurrent use.
type Mux struct {
	mu     sync.RWMutex
	routes map[string]Handler
}

// NewMux returns an empty mux.
func NewMux() *Mux {
	return &Mux{routes: make(map[string]Handler)}
}

// Handle registers a handler for all message types with the given
// prefix. Registering an existing prefix replaces the handler.
func (m *Mux) Handle(prefix string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//dcslint:ignore unbounded one route per code-defined message-type prefix, registered at node wiring time — not writable by remote input
	m.routes[prefix] = h
}

// Dispatch routes one message; unroutable messages are dropped.
func (m *Mux) Dispatch(msg Message) {
	m.mu.RLock()
	var (
		best    Handler
		bestLen = -1
	)
	for prefix, h := range m.routes {
		if strings.HasPrefix(msg.Type, prefix) && len(prefix) > bestLen {
			best, bestLen = h, len(prefix)
		}
	}
	m.mu.RUnlock()
	if best != nil {
		best(msg)
	}
}
