package contract

import (
	"errors"
	"strconv"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/vm"
)

type world struct {
	st    *state.State
	ex    *Executor
	miner cryptoutil.Address
	keys  map[string]*cryptoutil.KeyPair
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		st:    state.New(),
		ex:    NewExecutor(NewRegistry()),
		miner: cryptoutil.KeyFromSeed([]byte("miner")).Address(),
		keys:  make(map[string]*cryptoutil.KeyPair),
	}
	w.st.SetExecutor(w.ex)
	return w
}

func (w *world) key(name string) *cryptoutil.KeyPair {
	k, ok := w.keys[name]
	if !ok {
		k = cryptoutil.KeyFromSeed([]byte(name))
		w.keys[name] = k
		w.st.Credit(k.Address(), 1_000_000)
	}
	return k
}

func (w *world) deploy(t *testing.T, who, contract string) cryptoutil.Address {
	t.Helper()
	k := w.key(who)
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: k.Address(),
		Nonce: w.st.Nonce(k.Address()), Fee: 100, GasLimit: 100000,
		Data: DeployPayload(contract),
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := w.st.ApplyTx(tx, w.miner)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !rec.OK {
		t.Fatalf("deploy receipt: %+v", rec)
	}
	return rec.ContractAddress
}

// invoke runs fn and returns the receipt (OK or failed).
func (w *world) invoke(t *testing.T, who string, to cryptoutil.Address, value uint64, fn string, args ...string) *state.Receipt {
	t.Helper()
	k := w.key(who)
	tx := &types.Transaction{
		Kind: types.TxInvoke, From: k.Address(), To: to, Value: value,
		Nonce: w.st.Nonce(k.Address()), Fee: 50, GasLimit: 100000,
		Data: EncodeCall(fn, args...),
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := w.st.ApplyTx(tx, w.miner)
	if err != nil {
		t.Fatalf("invoke %s: %v", fn, err)
	}
	return rec
}

func (w *world) query(t *testing.T, to cryptoutil.Address, fn string, args ...string) string {
	t.Helper()
	out, err := w.ex.Query(w.st, to, cryptoutil.ZeroAddress, fn, args...)
	if err != nil {
		t.Fatalf("query %s: %v", fn, err)
	}
	return string(out)
}

func TestTokenLifecycle(t *testing.T) {
	w := newWorld(t)
	tok := w.deploy(t, "alice", "token")
	if rec := w.invoke(t, "alice", tok, 0, "init", "1000"); !rec.OK {
		t.Fatalf("init: %+v", rec)
	}
	bob := w.key("bob").Address()
	if rec := w.invoke(t, "alice", tok, 0, "transfer", bob.Hex(), "250"); !rec.OK {
		t.Fatalf("transfer: %+v", rec)
	}
	if got := w.query(t, tok, "balanceOf", bob.Hex()); got != "250" {
		t.Fatalf("bob balance = %s", got)
	}
	if got := w.query(t, tok, "balanceOf", w.key("alice").Address().Hex()); got != "750" {
		t.Fatalf("alice balance = %s", got)
	}
	if got := w.query(t, tok, "supply"); got != "1000" {
		t.Fatalf("supply = %s", got)
	}
	// Overdraft fails and reverts.
	if rec := w.invoke(t, "bob", tok, 0, "transfer", w.key("alice").Address().Hex(), "9999"); rec.OK {
		t.Fatal("overdraft transfer must fail")
	}
	if got := w.query(t, tok, "balanceOf", bob.Hex()); got != "250" {
		t.Fatalf("failed transfer must not move funds: %s", got)
	}
	// Double init fails.
	if rec := w.invoke(t, "bob", tok, 0, "init", "5"); rec.OK {
		t.Fatal("second init must fail")
	}
}

func TestNotary(t *testing.T) {
	w := newWorld(t)
	w.ex.SetNow(777)
	notary := w.deploy(t, "alice", "notary")
	doc := cryptoutil.HashBytes([]byte("deed of sale")).Hex()
	if rec := w.invoke(t, "alice", notary, 0, "register", doc); !rec.OK {
		t.Fatalf("register: %+v", rec)
	}
	if got := w.query(t, notary, "owner", doc); got != w.key("alice").Address().Hex() {
		t.Fatalf("owner = %s", got)
	}
	if got := w.query(t, notary, "registeredAt", doc); got != "777" {
		t.Fatalf("registeredAt = %s", got)
	}
	// Second registration of the same document fails.
	if rec := w.invoke(t, "bob", notary, 0, "register", doc); rec.OK {
		t.Fatal("re-registration must fail")
	}
	// Unknown document query errors.
	if _, err := w.ex.Query(w.st, notary, cryptoutil.ZeroAddress, "owner", "beef"); err == nil {
		t.Fatal("owner of unregistered document must error")
	}
}

func TestEscrow(t *testing.T) {
	w := newWorld(t)
	esc := w.deploy(t, "buyer", "escrow")
	seller := w.key("seller").Address()
	buyerBefore := w.st.Balance(w.key("buyer").Address())
	if rec := w.invoke(t, "buyer", esc, 500, "init", seller.Hex()); !rec.OK {
		t.Fatalf("init: %+v", rec)
	}
	if w.st.Balance(esc) != 500 {
		t.Fatalf("escrow holds %d", w.st.Balance(esc))
	}
	// Only the buyer can release.
	if rec := w.invoke(t, "seller", esc, 0, "release"); rec.OK {
		t.Fatal("seller must not release")
	}
	sellerBefore := w.st.Balance(seller)
	if rec := w.invoke(t, "buyer", esc, 0, "release"); !rec.OK {
		t.Fatalf("release: %+v", rec)
	}
	if w.st.Balance(seller) != sellerBefore+500 {
		t.Fatal("seller not paid")
	}
	if w.st.Balance(esc) != 0 {
		t.Fatal("escrow should be empty")
	}
	// Double release fails.
	if rec := w.invoke(t, "buyer", esc, 0, "release"); rec.OK {
		t.Fatal("double release must fail")
	}
	_ = buyerBefore
}

func TestEscrowRefund(t *testing.T) {
	w := newWorld(t)
	esc := w.deploy(t, "buyer", "escrow")
	seller := w.key("seller").Address()
	if rec := w.invoke(t, "buyer", esc, 300, "init", seller.Hex()); !rec.OK {
		t.Fatalf("init: %+v", rec)
	}
	buyer := w.key("buyer").Address()
	before := w.st.Balance(buyer)
	if rec := w.invoke(t, "seller", esc, 0, "refund"); !rec.OK {
		t.Fatalf("refund: %+v", rec)
	}
	// Buyer paid the refund minus the fee for... the refund tx was sent
	// by the seller, so the buyer's balance strictly increases by 300.
	if w.st.Balance(buyer) != before+300 {
		t.Fatalf("buyer balance %d, want +300", w.st.Balance(buyer))
	}
}

func TestCrowdfundSuccess(t *testing.T) {
	w := newWorld(t)
	w.ex.SetNow(100)
	cf := w.deploy(t, "founder", "crowdfund")
	if rec := w.invoke(t, "founder", cf, 0, "init", "1000", "200"); !rec.OK {
		t.Fatalf("init: %+v", rec)
	}
	if rec := w.invoke(t, "backer1", cf, 600, "contribute"); !rec.OK {
		t.Fatalf("contribute: %+v", rec)
	}
	if rec := w.invoke(t, "backer2", cf, 500, "contribute"); !rec.OK {
		t.Fatalf("contribute: %+v", rec)
	}
	if got := w.query(t, cf, "raised"); got != "1100" {
		t.Fatalf("raised = %s", got)
	}
	// Claim before deadline fails.
	if rec := w.invoke(t, "founder", cf, 0, "claim"); rec.OK {
		t.Fatal("claim before deadline must fail")
	}
	// After the deadline, the founder claims.
	w.ex.SetNow(300)
	founder := w.key("founder").Address()
	before := w.st.Balance(founder)
	if rec := w.invoke(t, "founder", cf, 0, "claim"); !rec.OK {
		t.Fatalf("claim: %+v", rec)
	}
	if w.st.Balance(founder) != before+1100-50 { // fee 50 paid from founder
		t.Fatalf("founder balance delta = %d", w.st.Balance(founder)-before)
	}
	// Reclaim after success fails.
	if rec := w.invoke(t, "backer1", cf, 0, "reclaim"); rec.OK {
		t.Fatal("reclaim after success must fail")
	}
}

func TestCrowdfundFailureRefunds(t *testing.T) {
	w := newWorld(t)
	w.ex.SetNow(100)
	cf := w.deploy(t, "founder", "crowdfund")
	if rec := w.invoke(t, "founder", cf, 0, "init", "1000", "200"); !rec.OK {
		t.Fatalf("init: %+v", rec)
	}
	if rec := w.invoke(t, "backer", cf, 400, "contribute"); !rec.OK {
		t.Fatalf("contribute: %+v", rec)
	}
	w.ex.SetNow(250)
	// Contribution after deadline fails.
	if rec := w.invoke(t, "late", cf, 100, "contribute"); rec.OK {
		t.Fatal("late contribution must fail")
	}
	// Founder cannot claim a failed campaign.
	if rec := w.invoke(t, "founder", cf, 0, "claim"); rec.OK {
		t.Fatal("claim without goal must fail")
	}
	backer := w.key("backer").Address()
	before := w.st.Balance(backer)
	if rec := w.invoke(t, "backer", cf, 0, "reclaim"); !rec.OK {
		t.Fatalf("reclaim: %+v", rec)
	}
	if w.st.Balance(backer) != before+400-50 { // +400 refund, -50 fee
		t.Fatalf("backer delta = %d", w.st.Balance(backer)-before)
	}
	// Double reclaim fails.
	if rec := w.invoke(t, "backer", cf, 0, "reclaim"); rec.OK {
		t.Fatal("double reclaim must fail")
	}
}

func TestRegistryAndDispatch(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.New("token"); err != nil {
		t.Fatalf("builtin token missing: %v", err)
	}
	if _, err := reg.New("bogus"); !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("want ErrUnknownContract, got %v", err)
	}
	reg.Register("custom", func() Native { return &Notary{} })
	if _, err := reg.New("custom"); err != nil {
		t.Fatalf("custom registration: %v", err)
	}
}

func TestDeployUnknownNative(t *testing.T) {
	w := newWorld(t)
	k := w.key("alice")
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: k.Address(), Nonce: 0, Fee: 10,
		GasLimit: 1000, Data: DeployPayload("does-not-exist"),
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := w.st.ApplyTx(tx, w.miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("deploying an unregistered native must fail")
	}
}

func TestBytecodeStillWorksThroughCombinedExecutor(t *testing.T) {
	w := newWorld(t)
	k := w.key("alice")
	code := vm.MustAssemble("PUSH 0\nPUSH 1\nSSTORE\nSTOP")
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: k.Address(), Nonce: 0, Fee: 100,
		GasLimit: 10000, Data: code,
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := w.st.ApplyTx(tx, w.miner)
	if err != nil || !rec.OK {
		t.Fatalf("bytecode deploy: %v %+v", err, rec)
	}
	inv := &types.Transaction{
		Kind: types.TxInvoke, From: k.Address(), To: rec.ContractAddress,
		Nonce: 1, Fee: 50, GasLimit: 10000,
	}
	if err := inv.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec2, err := w.st.ApplyTx(inv, w.miner)
	if err != nil || !rec2.OK {
		t.Fatalf("bytecode invoke: %v %+v", err, rec2)
	}
	key := make([]byte, 32)
	got := w.st.Storage(rec.ContractAddress, key)
	var word vm.Word
	copy(word[:], got)
	if word.Uint64() != 1 {
		t.Fatalf("bytecode contract storage = %d", word.Uint64())
	}
}

func TestCallEncoding(t *testing.T) {
	data := EncodeCall("transfer", "abc", "5")
	c, err := DecodeCall(data)
	if err != nil {
		t.Fatalf("DecodeCall: %v", err)
	}
	if c.Fn != "transfer" || len(c.Args) != 2 || c.Args[1] != "5" {
		t.Fatalf("call = %+v", c)
	}
	if _, err := DecodeCall([]byte("not json")); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("want ErrBadArgs, got %v", err)
	}
	if _, err := DecodeCall([]byte(`{"args":["x"]}`)); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("empty fn: want ErrBadArgs, got %v", err)
	}
}

func TestQueryDoesNotMutate(t *testing.T) {
	w := newWorld(t)
	tok := w.deploy(t, "alice", "token")
	if rec := w.invoke(t, "alice", tok, 0, "init", "100"); !rec.OK {
		t.Fatalf("init: %+v", rec)
	}
	// A query that would mutate (transfer) runs on a copy.
	bob := w.key("bob").Address()
	if _, err := w.ex.Query(w.st, tok, w.key("alice").Address(), "transfer", bob.Hex(), "10"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := w.query(t, tok, "balanceOf", bob.Hex()); got != "0" {
		t.Fatalf("query mutated state: bob = %s", got)
	}
}

func TestUintArgParsing(t *testing.T) {
	if _, err := uintArg([]string{"12"}, 0); err != nil {
		t.Fatalf("uintArg: %v", err)
	}
	if _, err := uintArg(nil, 0); !errors.Is(err, ErrBadArgs) {
		t.Fatal("missing arg must error")
	}
	if _, err := uintArg([]string{"x"}, 0); !errors.Is(err, ErrBadArgs) {
		t.Fatal("bad number must error")
	}
	if got := strconv.FormatUint(42, 10); got != "42" {
		t.Fatal("sanity")
	}
}
