package contract

import (
	"fmt"
	"strconv"

	"dcsledger/internal/cryptoutil"
)

// Token is a minimal fungible-asset contract (Blockchain 2.0's bread
// and butter): init fixes the owner and supply, transfer moves units,
// balanceOf queries them.
type Token struct{}

// Invoke implements Native.
func (Token) Invoke(ctx *Context, fn string, args []string) ([]byte, error) {
	switch fn {
	case "init":
		// init(supply): mints supply to the caller, once.
		if !ctx.GetAddr("owner").IsZero() {
			return nil, fmt.Errorf("%w: already initialized", ErrBadState)
		}
		supply, err := uintArg(args, 0)
		if err != nil {
			return nil, err
		}
		ctx.SetAddr("owner", ctx.Caller)
		ctx.SetUint("supply", supply)
		ctx.SetUint(balKey(ctx.Caller), supply)
		return nil, nil
	case "transfer":
		// transfer(to, amount)
		to, err := addrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := uintArg(args, 1)
		if err != nil {
			return nil, err
		}
		from := ctx.GetUint(balKey(ctx.Caller))
		if from < amount {
			return nil, fmt.Errorf("%w: balance %d < %d", ErrBadState, from, amount)
		}
		ctx.SetUint(balKey(ctx.Caller), from-amount)
		ctx.SetUint(balKey(to), ctx.GetUint(balKey(to))+amount)
		return nil, nil
	case "balanceOf":
		// balanceOf(addr) -> decimal string
		a, err := addrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return []byte(strconv.FormatUint(ctx.GetUint(balKey(a)), 10)), nil
	case "supply":
		return []byte(strconv.FormatUint(ctx.GetUint("supply"), 10)), nil
	default:
		return nil, fmt.Errorf("%w: token.%s", ErrUnknownFn, fn)
	}
}

func balKey(a cryptoutil.Address) string { return "bal/" + a.Hex() }

// Notary is the document-registry contract of the paper's Figure 3:
// register(docHash) records the first claimant and timestamp;
// owner(docHash) answers who registered it.
type Notary struct{}

// Invoke implements Native.
func (Notary) Invoke(ctx *Context, fn string, args []string) ([]byte, error) {
	switch fn {
	case "register":
		if len(args) != 1 || args[0] == "" {
			return nil, fmt.Errorf("%w: register(docHash)", ErrBadArgs)
		}
		key := "doc/" + args[0]
		if len(ctx.Get(key)) != 0 {
			return nil, fmt.Errorf("%w: document already registered", ErrBadState)
		}
		ctx.SetAddr(key, ctx.Caller)
		ctx.SetUint("time/"+args[0], uint64(ctx.Time))
		return nil, nil
	case "owner":
		if len(args) != 1 {
			return nil, fmt.Errorf("%w: owner(docHash)", ErrBadArgs)
		}
		owner := ctx.GetAddr("doc/" + args[0])
		if owner.IsZero() {
			return nil, fmt.Errorf("%w: not registered", ErrBadState)
		}
		return []byte(owner.Hex()), nil
	case "registeredAt":
		if len(args) != 1 {
			return nil, fmt.Errorf("%w: registeredAt(docHash)", ErrBadArgs)
		}
		return []byte(strconv.FormatUint(ctx.GetUint("time/"+args[0]), 10)), nil
	default:
		return nil, fmt.Errorf("%w: notary.%s", ErrUnknownFn, fn)
	}
}

// Escrow holds a buyer's funds until the buyer releases them to the
// seller or the seller refunds the buyer.
type Escrow struct{}

// Invoke implements Native.
func (Escrow) Invoke(ctx *Context, fn string, args []string) ([]byte, error) {
	switch fn {
	case "init":
		// init(seller): the caller is the buyer; the deposited value is
		// held by the contract account.
		if !ctx.GetAddr("buyer").IsZero() {
			return nil, fmt.Errorf("%w: already initialized", ErrBadState)
		}
		seller, err := addrArg(args, 0)
		if err != nil {
			return nil, err
		}
		if ctx.Value == 0 {
			return nil, fmt.Errorf("%w: escrow needs a deposit", ErrBadArgs)
		}
		ctx.SetAddr("buyer", ctx.Caller)
		ctx.SetAddr("seller", seller)
		ctx.SetUint("amount", ctx.Value)
		return nil, nil
	case "release":
		if ctx.Caller != ctx.GetAddr("buyer") {
			return nil, fmt.Errorf("%w: only the buyer releases", ErrForbidden)
		}
		return nil, payout(ctx, ctx.GetAddr("seller"))
	case "refund":
		if ctx.Caller != ctx.GetAddr("seller") {
			return nil, fmt.Errorf("%w: only the seller refunds", ErrForbidden)
		}
		return nil, payout(ctx, ctx.GetAddr("buyer"))
	case "amount":
		return []byte(strconv.FormatUint(ctx.GetUint("amount"), 10)), nil
	default:
		return nil, fmt.Errorf("%w: escrow.%s", ErrUnknownFn, fn)
	}
}

func payout(ctx *Context, to cryptoutil.Address) error {
	amount := ctx.GetUint("amount")
	if amount == 0 {
		return fmt.Errorf("%w: nothing held", ErrBadState)
	}
	if err := ctx.State.Debit(ctx.Self, amount); err != nil {
		return fmt.Errorf("contract: %w", err)
	}
	ctx.State.Credit(to, amount)
	ctx.SetUint("amount", 0)
	return nil
}

// Crowdfund is the Blockchain 2.0 showcase ÐApp: contributors fund a
// goal before a deadline; the beneficiary claims if the goal is met,
// contributors reclaim otherwise.
type Crowdfund struct{}

// Invoke implements Native.
func (Crowdfund) Invoke(ctx *Context, fn string, args []string) ([]byte, error) {
	switch fn {
	case "init":
		// init(goal, deadlineUnixNano): caller becomes beneficiary.
		if !ctx.GetAddr("beneficiary").IsZero() {
			return nil, fmt.Errorf("%w: already initialized", ErrBadState)
		}
		goal, err := uintArg(args, 0)
		if err != nil {
			return nil, err
		}
		deadline, err := uintArg(args, 1)
		if err != nil {
			return nil, err
		}
		ctx.SetAddr("beneficiary", ctx.Caller)
		ctx.SetUint("goal", goal)
		ctx.SetUint("deadline", deadline)
		return nil, nil
	case "contribute":
		if ctx.Value == 0 {
			return nil, fmt.Errorf("%w: contribution needs value", ErrBadArgs)
		}
		if uint64(ctx.Time) >= ctx.GetUint("deadline") {
			return nil, fmt.Errorf("%w: campaign over", ErrBadState)
		}
		key := "given/" + ctx.Caller.Hex()
		ctx.SetUint(key, ctx.GetUint(key)+ctx.Value)
		ctx.SetUint("raised", ctx.GetUint("raised")+ctx.Value)
		return nil, nil
	case "claim":
		if ctx.Caller != ctx.GetAddr("beneficiary") {
			return nil, fmt.Errorf("%w: only the beneficiary claims", ErrForbidden)
		}
		if uint64(ctx.Time) < ctx.GetUint("deadline") {
			return nil, fmt.Errorf("%w: campaign still running", ErrBadState)
		}
		raised := ctx.GetUint("raised")
		if raised < ctx.GetUint("goal") {
			return nil, fmt.Errorf("%w: goal not met", ErrBadState)
		}
		if err := ctx.State.Debit(ctx.Self, raised); err != nil {
			return nil, fmt.Errorf("contract: %w", err)
		}
		ctx.State.Credit(ctx.Caller, raised)
		ctx.SetUint("raised", 0)
		return nil, nil
	case "reclaim":
		if uint64(ctx.Time) < ctx.GetUint("deadline") {
			return nil, fmt.Errorf("%w: campaign still running", ErrBadState)
		}
		if ctx.GetUint("raised") >= ctx.GetUint("goal") {
			return nil, fmt.Errorf("%w: goal met; funds go to the beneficiary", ErrBadState)
		}
		key := "given/" + ctx.Caller.Hex()
		given := ctx.GetUint(key)
		if given == 0 {
			return nil, fmt.Errorf("%w: nothing to reclaim", ErrBadState)
		}
		if err := ctx.State.Debit(ctx.Self, given); err != nil {
			return nil, fmt.Errorf("contract: %w", err)
		}
		ctx.State.Credit(ctx.Caller, given)
		ctx.SetUint(key, 0)
		return nil, nil
	case "raised":
		return []byte(strconv.FormatUint(ctx.GetUint("raised"), 10)), nil
	case "goal":
		return []byte(strconv.FormatUint(ctx.GetUint("goal"), 10)), nil
	default:
		return nil, fmt.Errorf("%w: crowdfund.%s", ErrUnknownFn, fn)
	}
}

func uintArg(args []string, i int) (uint64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%w: missing argument %d", ErrBadArgs, i)
	}
	v, err := strconv.ParseUint(args[i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: argument %d: %v", ErrBadArgs, i, err)
	}
	return v, nil
}

func addrArg(args []string, i int) (cryptoutil.Address, error) {
	if i >= len(args) {
		return cryptoutil.ZeroAddress, fmt.Errorf("%w: missing argument %d", ErrBadArgs, i)
	}
	a, err := cryptoutil.AddressFromHex(args[i])
	if err != nil {
		return cryptoutil.ZeroAddress, fmt.Errorf("%w: argument %d: %v", ErrBadArgs, i, err)
	}
	return a, nil
}
