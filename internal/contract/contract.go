// Package contract implements the Contract layer's second execution
// model: native contracts — deterministic Go implementations registered
// by name, the moral equivalent of Hyperledger chaincode. It also
// provides the combined executor that dispatches deploy/invoke
// transactions either to the bytecode VM or to a native contract, and
// ships the reusable contracts the paper's examples call for: a token,
// a notary (Figure 3's contract-layer example), an escrow, and a
// crowdfunding ÐApp (Section 3.2).
package contract

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
	"dcsledger/internal/vm"
)

// Package errors, matchable with errors.Is.
var (
	ErrUnknownContract = errors.New("contract: unknown native contract")
	ErrUnknownFn       = errors.New("contract: unknown function")
	ErrForbidden       = errors.New("contract: caller not authorized")
	ErrBadArgs         = errors.New("contract: bad arguments")
	ErrBadState        = errors.New("contract: invalid contract state")
)

// nativePrefix marks deploy payloads that bind a registered native
// contract instead of bytecode.
const nativePrefix = "native:"

// Context is the execution environment handed to a native contract.
type Context struct {
	State  *state.State
	Self   cryptoutil.Address
	Caller cryptoutil.Address
	Value  uint64
	Time   int64
}

// Helpers for contract storage.

// Get reads a storage slot of the contract.
func (c *Context) Get(key string) []byte { return c.State.Storage(c.Self, []byte(key)) }

// Set writes a storage slot of the contract.
func (c *Context) Set(key string, value []byte) { c.State.SetStorage(c.Self, []byte(key), value) }

// GetUint reads a uint64 slot (0 if unset).
func (c *Context) GetUint(key string) uint64 {
	b := c.Get(key)
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// SetUint writes a uint64 slot.
func (c *Context) SetUint(key string, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	c.Set(key, b[:])
}

// GetAddr reads an address slot.
func (c *Context) GetAddr(key string) cryptoutil.Address {
	var a cryptoutil.Address
	copy(a[:], c.Get(key))
	return a
}

// SetAddr writes an address slot.
func (c *Context) SetAddr(key string, a cryptoutil.Address) { c.Set(key, a[:]) }

// Native is a deterministic Go contract.
type Native interface {
	// Invoke executes one function; returning an error reverts every
	// state effect of the call.
	Invoke(ctx *Context, fn string, args []string) ([]byte, error)
}

// Call is the wire encoding of a native invocation, carried in
// Transaction.Data.
type Call struct {
	Fn   string   `json:"fn"`
	Args []string `json:"args,omitempty"`
}

// EncodeCall marshals an invocation payload.
func EncodeCall(fn string, args ...string) []byte {
	data, err := json.Marshal(Call{Fn: fn, Args: args})
	if err != nil {
		// Strings always marshal; this is unreachable.
		panic(err)
	}
	return data
}

// DecodeCall parses an invocation payload.
func DecodeCall(data []byte) (Call, error) {
	var c Call
	if err := json.Unmarshal(data, &c); err != nil {
		return Call{}, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	if c.Fn == "" {
		return Call{}, fmt.Errorf("%w: empty function", ErrBadArgs)
	}
	return c, nil
}

// Registry maps names to native contract constructors.
type Registry struct {
	factories map[string]func() Native
}

// NewRegistry returns a registry preloaded with the built-in contracts
// (token, notary, escrow, crowdfund).
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]func() Native)}
	r.Register("token", func() Native { return &Token{} })
	r.Register("notary", func() Native { return &Notary{} })
	r.Register("escrow", func() Native { return &Escrow{} })
	r.Register("crowdfund", func() Native { return &Crowdfund{} })
	return r
}

// Register adds a native contract constructor.
func (r *Registry) Register(name string, factory func() Native) {
	r.factories[name] = factory
}

// New instantiates a registered contract.
func (r *Registry) New(name string) (Native, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContract, name)
	}
	return f(), nil
}

// DeployPayload returns the Transaction.Data that deploys the named
// native contract.
func DeployPayload(name string) []byte { return []byte(nativePrefix + name) }

// Executor dispatches contract transactions to either the bytecode VM
// or a native contract, implementing state.Executor.
type Executor struct {
	registry *Registry
	vm       *vm.Executor
	// NativeBaseGas + NativeGasPerArgByte price native invocations.
	NativeBaseGas       uint64
	NativeGasPerArgByte uint64
}

var _ state.Executor = (*Executor)(nil)

// NewExecutor builds the combined executor.
func NewExecutor(registry *Registry) *Executor {
	return &Executor{
		registry:            registry,
		vm:                  vm.NewExecutor(),
		NativeBaseGas:       40,
		NativeGasPerArgByte: 2,
	}
}

// Fork implements state.ForkableExecutor: the fork shares the immutable
// registry and gas schedule but drives a forked VM executor with its own
// event buffer, so speculation lanes never share mutable state.
func (e *Executor) Fork() state.Executor {
	f := *e
	f.vm = e.vm.Fork().(*vm.Executor)
	return &f
}

// Absorb implements state.ForkableExecutor: merges a fork's VM events
// back, in the caller's (transaction-index) order.
func (e *Executor) Absorb(fork state.Executor) {
	if f, ok := fork.(*Executor); ok {
		e.vm.Absorb(f.vm)
	}
}

var _ state.ForkableExecutor = (*Executor)(nil)

// SetNow propagates block time into executions.
func (e *Executor) SetNow(now int64) { e.vm.Now = now }

// Now returns the configured block time.
func (e *Executor) Now() int64 { return e.vm.Now }

// VM exposes the underlying bytecode executor (for constant calls).
func (e *Executor) VM() *vm.Executor { return e.vm }

// Deploy implements state.Executor.
func (e *Executor) Deploy(st *state.State, tx *types.Transaction) (cryptoutil.Address, uint64, error) {
	if name, ok := nativeName(tx.Data); ok {
		if _, err := e.registry.New(name); err != nil {
			return cryptoutil.ZeroAddress, 0, err
		}
		addr := vm.ContractAddress(tx.From, tx.Nonce)
		st.SetCode(addr, tx.Data)
		return addr, e.NativeBaseGas, nil
	}
	return e.vm.Deploy(st, tx)
}

// Invoke implements state.Executor.
func (e *Executor) Invoke(st *state.State, tx *types.Transaction) (uint64, error) {
	code := st.Code(tx.To)
	name, ok := nativeName(code)
	if !ok {
		return e.vm.Invoke(st, tx)
	}
	gas := e.NativeBaseGas + uint64(len(tx.Data))*e.NativeGasPerArgByte
	if gas > tx.GasLimit {
		return tx.GasLimit, fmt.Errorf("%w: native call needs %d gas", vm.ErrOutOfGas, gas)
	}
	impl, err := e.registry.New(name)
	if err != nil {
		return gas, err
	}
	call, err := DecodeCall(tx.Data)
	if err != nil {
		return gas, err
	}
	ctx := &Context{State: st, Self: tx.To, Caller: tx.From, Value: tx.Value, Time: e.vm.Now}
	if _, err := impl.Invoke(ctx, call.Fn, call.Args); err != nil {
		return gas, err
	}
	return gas, nil
}

// Query runs a read-only native call against a copy of the state: free
// of charge and guaranteed side-effect free, mirroring the VM's
// constant calls.
func (e *Executor) Query(st *state.State, self cryptoutil.Address, caller cryptoutil.Address, fn string, args ...string) ([]byte, error) {
	code := st.Code(self)
	name, ok := nativeName(code)
	if !ok {
		return nil, fmt.Errorf("%w at %s", ErrUnknownContract, self.Short())
	}
	impl, err := e.registry.New(name)
	if err != nil {
		return nil, err
	}
	ctx := &Context{State: st.Copy(), Self: self, Caller: caller, Time: e.vm.Now}
	return impl.Invoke(ctx, fn, args)
}

func nativeName(code []byte) (string, bool) {
	s := string(code)
	if !strings.HasPrefix(s, nativePrefix) {
		return "", false
	}
	return strings.TrimPrefix(s, nativePrefix), true
}
