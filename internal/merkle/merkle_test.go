package merkle

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"dcsledger/internal/cryptoutil"
)

func leaves(n int) []cryptoutil.Hash {
	out := make([]cryptoutil.Hash, n)
	for i := range out {
		out[i] = cryptoutil.HashBytes([]byte("leaf"), []byte(strconv.Itoa(i)))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := NewTree(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree should have zero leaves")
	}
	if tr.Root() != Root(nil) {
		t.Fatal("empty roots must agree")
	}
	if _, err := tr.Prove(0); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("want ErrIndexOutOfRange, got %v", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	ls := leaves(1)
	tr := NewTree(ls)
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Leaf = ls[0]
	if !VerifyProof(tr.Root(), p) {
		t.Fatal("single-leaf proof should verify")
	}
	if len(p.Siblings) != 0 {
		t.Fatalf("single-leaf proof should be empty, got %d siblings", len(p.Siblings))
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	ls := leaves(7)
	orig := Root(ls)
	for i := range ls {
		mutated := leaves(7)
		mutated[i] = cryptoutil.HashBytes([]byte("tampered"), []byte(strconv.Itoa(i)))
		if Root(mutated) == orig {
			t.Fatalf("mutating leaf %d did not change root", i)
		}
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 15, 16, 17, 33, 100} {
		t.Run(strconv.Itoa(n), func(t *testing.T) {
			ls := leaves(n)
			tr := NewTree(ls)
			root := tr.Root()
			for i := 0; i < n; i++ {
				p, err := tr.Prove(i)
				if err != nil {
					t.Fatalf("Prove(%d): %v", i, err)
				}
				p.Leaf = ls[i]
				if !VerifyProof(root, p) {
					t.Fatalf("proof for leaf %d/%d should verify", i, n)
				}
			}
		})
	}
}

func TestWrongLeafFailsVerification(t *testing.T) {
	ls := leaves(8)
	tr := NewTree(ls)
	p, err := tr.Prove(3)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Leaf = cryptoutil.HashBytes([]byte("not in tree"))
	if VerifyProof(tr.Root(), p) {
		t.Fatal("proof with wrong leaf must fail")
	}
}

func TestWrongIndexFailsVerification(t *testing.T) {
	ls := leaves(8)
	tr := NewTree(ls)
	p, err := tr.Prove(3)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Leaf = ls[3]
	p.Index = 5
	if VerifyProof(tr.Root(), p) {
		t.Fatal("proof with wrong index must fail")
	}
}

func TestTamperedSiblingFailsVerification(t *testing.T) {
	ls := leaves(16)
	tr := NewTree(ls)
	p, err := tr.Prove(7)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Leaf = ls[7]
	p.Siblings[2] = cryptoutil.HashBytes([]byte("evil"))
	if VerifyProof(tr.Root(), p) {
		t.Fatal("proof with tampered sibling must fail")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// An interior node value must not verify as a leaf: build a two-leaf
	// tree and try to prove its root as a leaf of a one-leaf tree.
	ls := leaves(2)
	inner := NewTree(ls).Root()
	outer := NewTree([]cryptoutil.Hash{inner})
	p, err := outer.Prove(0)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	// The proof verifies for the committed leaf value (inner), but inner
	// committed as a *leaf* differs from inner as an *interior* node, so
	// the two-leaf tree's proofs cannot be replayed against outer's root.
	p.Leaf = ls[0]
	if VerifyProof(outer.Root(), p) {
		t.Fatal("leaf of inner tree must not verify against outer tree")
	}
}

func TestProofSizeLogarithmic(t *testing.T) {
	small := NewTree(leaves(16))
	big := NewTree(leaves(1024))
	ps, err := small.Prove(0)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	pb, err := big.Prove(0)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if len(ps.Siblings) != 4 || len(pb.Siblings) != 10 {
		t.Fatalf("want depths 4 and 10, got %d and %d", len(ps.Siblings), len(pb.Siblings))
	}
	if pb.Size() >= 1024*cryptoutil.HashSize {
		t.Fatal("proof should be far smaller than the leaf set")
	}
}

func TestDuplicateLastLeafOddRows(t *testing.T) {
	// With 3 leaves, leaf 2 is paired with itself; its proof must verify.
	ls := leaves(3)
	tr := NewTree(ls)
	p, err := tr.Prove(2)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	p.Leaf = ls[2]
	if !VerifyProof(tr.Root(), p) {
		t.Fatal("odd-row self-paired proof should verify")
	}
}

func TestPropertyProofsVerifyAndBind(t *testing.T) {
	// Property: for random tree sizes and indices, a correct proof
	// verifies and a proof against a different root does not.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		ls := leaves(n)
		tr := NewTree(ls)
		i := rng.Intn(n)
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		p.Leaf = ls[i]
		if !VerifyProof(tr.Root(), p) {
			return false
		}
		otherRoot := cryptoutil.HashBytes([]byte("other root"))
		return !VerifyProof(otherRoot, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
