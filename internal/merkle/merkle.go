// Package merkle implements the hash tree used to commit a block's
// transactions (Figure 2 of the paper) and the inclusion proofs behind
// Simple Payment Verification: a light client holding only block headers
// can verify that a transaction is in a block with an O(log n) proof.
//
// Leaf and interior nodes are hashed with distinct domain prefixes so a
// proof for an interior node can never be passed off as a leaf proof
// (second-preimage hardening).
package merkle

import (
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
)

var (
	// ErrIndexOutOfRange is returned by Prove for an invalid leaf index.
	ErrIndexOutOfRange = errors.New("merkle: leaf index out of range")

	emptyRoot = cryptoutil.HashBytes([]byte("merkle/empty"))
)

const (
	leafPrefix     = byte(0)
	interiorPrefix = byte(1)
)

// Tree is a Merkle tree over a fixed set of leaf hashes. When a level has
// an odd number of nodes the final node is paired with itself, as in the
// Bitcoin block format.
type Tree struct {
	// levels[0] is the hashed leaf row; the last level holds the root.
	levels [][]cryptoutil.Hash
	n      int
}

// NewTree builds a tree over the given leaf hashes. An empty leaf set is
// allowed and yields the distinguished empty root.
func NewTree(leaves []cryptoutil.Hash) *Tree {
	if len(leaves) == 0 {
		return &Tree{n: 0}
	}
	row := make([]cryptoutil.Hash, len(leaves))
	for i, l := range leaves {
		row[i] = hashLeaf(l)
	}
	levels := [][]cryptoutil.Hash{row}
	for len(row) > 1 {
		next := make([]cryptoutil.Hash, (len(row)+1)/2)
		for i := 0; i < len(row); i += 2 {
			right := row[i]
			if i+1 < len(row) {
				right = row[i+1]
			}
			next[i/2] = hashInterior(row[i], right)
		}
		levels = append(levels, next)
		row = next
	}
	return &Tree{levels: levels, n: len(leaves)}
}

// Root computes the Merkle root of the given leaves without retaining the
// tree.
func Root(leaves []cryptoutil.Hash) cryptoutil.Hash {
	return NewTree(leaves).Root()
}

// Root returns the root hash of the tree.
func (t *Tree) Root() cryptoutil.Hash {
	if t.n == 0 {
		return emptyRoot
	}
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

// Proof is an inclusion proof for one leaf: the authentication path from
// the leaf to the root. Index bits select left/right at each level.
type Proof struct {
	Leaf     cryptoutil.Hash   `json:"leaf"`
	Index    uint64            `json:"index"`
	Siblings []cryptoutil.Hash `json:"siblings"`
}

// Size returns the proof size in bytes, the quantity the SPV experiment
// (E11) reports.
func (p Proof) Size() int {
	return cryptoutil.HashSize*(len(p.Siblings)+1) + 8
}

// Prove returns the inclusion proof for the leaf at index i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.n {
		return Proof{}, fmt.Errorf("%w: %d of %d", ErrIndexOutOfRange, i, t.n)
	}
	p := Proof{Index: uint64(i)}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		row := t.levels[lvl]
		sib := idx ^ 1
		if sib >= len(row) {
			sib = idx // odd row: node paired with itself
		}
		p.Siblings = append(p.Siblings, row[sib])
		idx /= 2
	}
	return p, nil
}

// VerifyProof checks that the proof's leaf is committed by root. The
// caller supplies the original (unhashed-by-the-tree) leaf hash in
// Proof.Leaf.
func VerifyProof(root cryptoutil.Hash, p Proof) bool {
	cur := hashLeaf(p.Leaf)
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx&1 == 0 {
			cur = hashInterior(cur, sib)
		} else {
			cur = hashInterior(sib, cur)
		}
		idx >>= 1
	}
	return cur == root
}

func hashLeaf(h cryptoutil.Hash) cryptoutil.Hash {
	return cryptoutil.HashBytes([]byte{leafPrefix}, h[:])
}

func hashInterior(a, b cryptoutil.Hash) cryptoutil.Hash {
	return cryptoutil.HashBytes([]byte{interiorPrefix}, a[:], b[:])
}
