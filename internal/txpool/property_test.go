package txpool

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

// TestPropertySelectionApplicable: whatever lands in the pool, Select's
// output keeps every sender's transactions in ascending nonce order —
// the invariant block building relies on.
func TestPropertySelectionApplicable(t *testing.T) {
	keys := make([]*cryptoutil.KeyPair, 4)
	for i := range keys {
		keys[i] = cryptoutil.KeyFromSeed([]byte{byte(i), 's'})
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(0)
		nonces := make(map[int]uint64)
		for i := 0; i < 40; i++ {
			ki := rng.Intn(len(keys))
			tx := types.NewTransfer(keys[ki].Address(), cryptoutil.ZeroAddress,
				1, uint64(rng.Intn(50)), nonces[ki])
			nonces[ki]++
			if err := tx.Sign(keys[ki]); err != nil {
				return false
			}
			if err := p.Add(tx); err != nil {
				return false
			}
		}
		sel := p.Select(rng.Intn(40)+1, 0)
		lastNonce := make(map[cryptoutil.Address]int64)
		for _, tx := range sel {
			prev, seen := lastNonce[tx.From]
			if seen && int64(tx.Nonce) <= prev {
				return false
			}
			lastNonce[tx.From] = int64(tx.Nonce)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPoolNeverExceedsCapacity: adds can evict but never grow
// the pool past its bound.
func TestPropertyPoolNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capN := rng.Intn(10) + 2
		p := New(capN)
		for i := 0; i < 50; i++ {
			k := cryptoutil.KeyFromSeed([]byte(fmt.Sprintf("cap/%d/%d", seed, i)))
			tx := types.NewTransfer(k.Address(), cryptoutil.ZeroAddress, 1, uint64(rng.Intn(100)), 0)
			if err := tx.Sign(k); err != nil {
				return false
			}
			_ = p.Add(tx)
			if p.Len() > capN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
