package txpool

import (
	"errors"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func tx(t *testing.T, seed string, nonce, fee uint64) *types.Transaction {
	t.Helper()
	k := cryptoutil.KeyFromSeed([]byte(seed))
	to := cryptoutil.KeyFromSeed([]byte("recipient")).Address()
	tr := types.NewTransfer(k.Address(), to, 10, fee, nonce)
	if err := tr.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return tr
}

func TestAddHasLen(t *testing.T) {
	p := New(0)
	tr := tx(t, "a", 0, 1)
	if err := p.Add(tr); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !p.Has(tr.ID()) || p.Len() != 1 {
		t.Fatal("pool should contain the tx")
	}
}

func TestAddRejects(t *testing.T) {
	p := New(0)
	t.Run("coinbase", func(t *testing.T) {
		cb := types.NewCoinbase(cryptoutil.ZeroAddress, 50, 1)
		if err := p.Add(cb); !errors.Is(err, ErrCoinbase) {
			t.Fatalf("want ErrCoinbase, got %v", err)
		}
	})
	t.Run("unsigned", func(t *testing.T) {
		bad := types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, 1, 1, 0)
		if err := p.Add(bad); !errors.Is(err, types.ErrNoSignature) {
			t.Fatalf("want ErrNoSignature, got %v", err)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		tr := tx(t, "a", 0, 1)
		if err := p.Add(tr); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := p.Add(tr); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("want ErrDuplicate, got %v", err)
		}
	})
}

func TestCapacityEviction(t *testing.T) {
	p := New(3)
	low := tx(t, "low", 0, 1)
	mid1 := tx(t, "mid1", 0, 5)
	mid2 := tx(t, "mid2", 0, 6)
	for _, tr := range []*types.Transaction{low, mid1, mid2} {
		if err := p.Add(tr); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	// A cheap newcomer is refused.
	cheap := tx(t, "cheap", 0, 1)
	if err := p.Add(cheap); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	// A rich newcomer evicts the cheapest.
	rich := tx(t, "rich", 0, 10)
	if err := p.Add(rich); err != nil {
		t.Fatalf("Add rich: %v", err)
	}
	if p.Has(low.ID()) {
		t.Fatal("lowest-fee tx should have been evicted")
	}
	if !p.Has(rich.ID()) || p.Len() != 3 {
		t.Fatal("rich tx should be pooled at capacity")
	}
	if p.MinFee() != 5 {
		t.Fatalf("MinFee = %d, want 5", p.MinFee())
	}
}

func TestSelectFeePriority(t *testing.T) {
	p := New(0)
	fees := []uint64{3, 9, 1, 7, 5}
	for i, f := range fees {
		if err := p.Add(tx(t, string(rune('a'+i)), 0, f)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	sel := p.Select(3, 0)
	if len(sel) != 3 {
		t.Fatalf("Select = %d txs", len(sel))
	}
	want := []uint64{9, 7, 5}
	for i, tr := range sel {
		if tr.Fee != want[i] {
			t.Fatalf("Select[%d].Fee = %d, want %d", i, tr.Fee, want[i])
		}
	}
	// Selection must not remove.
	if p.Len() != 5 {
		t.Fatal("Select must not drain the pool")
	}
}

func TestSelectNonceOrderPerSender(t *testing.T) {
	p := New(0)
	// Same sender, later nonce pays more: nonce order must still win so
	// the batch stays applicable.
	t0 := tx(t, "same", 0, 1)
	t1 := tx(t, "same", 1, 100)
	if err := p.Add(t1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := p.Add(t0); err != nil {
		t.Fatalf("Add: %v", err)
	}
	sel := p.Select(2, 0)
	if len(sel) != 2 || sel[0].Nonce != 0 || sel[1].Nonce != 1 {
		t.Fatalf("same-sender selection out of nonce order: %v", []uint64{sel[0].Nonce, sel[1].Nonce})
	}
}

func TestSelectByteBudget(t *testing.T) {
	p := New(0)
	for i := 0; i < 5; i++ {
		if err := p.Add(tx(t, string(rune('a'+i)), 0, uint64(i+1))); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	one := p.Select(0, len(tx(t, "z", 0, 1).Encode())+10)
	if len(one) != 1 {
		t.Fatalf("byte budget should admit exactly 1 tx, got %d", len(one))
	}
	all := p.Select(0, 0)
	if len(all) != 5 {
		t.Fatalf("unlimited budget should admit all, got %d", len(all))
	}
}

func TestRemoveAndBlockRemoval(t *testing.T) {
	p := New(0)
	t1 := tx(t, "a", 0, 1)
	t2 := tx(t, "b", 0, 2)
	if err := p.Add(t1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := p.Add(t2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	p.Remove(t1.ID())
	if p.Has(t1.ID()) || !p.Has(t2.ID()) {
		t.Fatal("Remove removed the wrong tx")
	}
	b := types.NewBlock(cryptoutil.ZeroHash, 1, 0, cryptoutil.ZeroAddress, []*types.Transaction{t2})
	p.RemoveBlockTxs(b)
	if p.Len() != 0 {
		t.Fatal("RemoveBlockTxs should empty the pool")
	}
}

func TestReadd(t *testing.T) {
	p := New(0)
	t1 := tx(t, "a", 0, 1)
	cb := types.NewCoinbase(cryptoutil.ZeroAddress, 50, 1)
	unsigned := types.NewTransfer(cryptoutil.ZeroAddress, cryptoutil.ZeroAddress, 1, 1, 0)
	p.Readd([]*types.Transaction{t1, cb, unsigned})
	if p.Len() != 1 || !p.Has(t1.ID()) {
		t.Fatal("Readd should re-pool only the valid user tx")
	}
}

func TestSelectDeterministic(t *testing.T) {
	p := New(0)
	for i := 0; i < 8; i++ {
		if err := p.Add(tx(t, string(rune('a'+i)), 0, 5)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	a := p.Select(8, 0)
	b := p.Select(8, 0)
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatal("equal-fee selection must be deterministic")
		}
	}
}

func TestEvictionDeterministicOnFeeTies(t *testing.T) {
	// Same transactions, two insertion orders: the full pool must evict
	// the same victim regardless of map iteration order, or the
	// simulator loses seed-reproducibility.
	// Build the transactions once: signatures are randomized, so re-signing
	// the same payload yields a different tx ID. Both insertion orders must
	// share the exact same signed objects for the comparison to be valid.
	base := make([]*types.Transaction, 4)
	for i := range base {
		base[i] = tx(t, string(rune('a'+i)), 0, 5) // equal fees
	}
	rich := tx(t, "whale", 0, 50)
	mk := func(order []int) map[cryptoutil.Hash]bool {
		p := New(4)
		for _, i := range order {
			if err := p.Add(base[i]); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		if err := p.Add(rich); err != nil {
			t.Fatalf("Add rich: %v", err)
		}
		got := make(map[cryptoutil.Hash]bool)
		for _, tr := range p.Select(10, 0) {
			got[tr.ID()] = true
		}
		return got
	}
	for trial := 0; trial < 8; trial++ {
		a := mk([]int{0, 1, 2, 3})
		b := mk([]int{3, 1, 0, 2})
		if len(a) != len(b) {
			t.Fatalf("pool sizes differ: %d vs %d", len(a), len(b))
		}
		for id := range a {
			if !b[id] {
				t.Fatal("eviction victim depends on insertion/map order")
			}
		}
	}
}

// TestSelectGroupsSendersOnFeeTies is the parallel-execution ordering
// regression: with every fee equal, each sender's whole nonce chain must
// occupy consecutive slots in nonce order. The optimistic executor
// (internal/exec) speculates one contiguous same-sender run per lane, so
// a chain scattered across the block would turn nonce succession into
// spurious conflicts.
func TestSelectGroupsSendersOnFeeTies(t *testing.T) {
	p := New(0)
	seeds := []string{"tie-a", "tie-b", "tie-c"}
	for _, seed := range seeds {
		for n := uint64(0); n < 10; n++ {
			if err := p.Add(tx(t, seed, n, 7)); err != nil {
				t.Fatalf("Add %s/%d: %v", seed, n, err)
			}
		}
	}
	got := p.Select(0, 0)
	if len(got) != 30 {
		t.Fatalf("Select returned %d txs, want 30", len(got))
	}
	seen := make(map[cryptoutil.Address]bool)
	for i := 0; i < len(got); i += 10 {
		from := got[i].From
		if seen[from] {
			t.Fatalf("sender %s not contiguous: reappears at slot %d", from.Short(), i)
		}
		seen[from] = true
		for k := 0; k < 10; k++ {
			cur := got[i+k]
			if cur.From != from {
				t.Fatalf("slot %d: sender %s interleaves %s's run", i+k, cur.From.Short(), from.Short())
			}
			if cur.Nonce != uint64(k) {
				t.Fatalf("slot %d: nonce %d, want %d", i+k, cur.Nonce, k)
			}
		}
	}
}
