// Package txpool implements the mempool: the set of pending transactions
// a peer has heard over gossip but not yet seen committed in a block.
// Block proposers draw from it with fee-priority selection — the market
// mechanism behind the paper's transaction-fee incentives (Section 2.4).
package txpool

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

// Pool errors, matchable with errors.Is.
var (
	ErrDuplicate = errors.New("txpool: transaction already pooled")
	ErrFull      = errors.New("txpool: pool full and fee too low")
	ErrCoinbase  = errors.New("txpool: coinbase transactions are not pooled")
)

// DefaultCapacity bounds the pool when no explicit capacity is given.
const DefaultCapacity = 4096

// Pool is a fee-prioritized mempool, safe for concurrent use.
type Pool struct {
	mu  sync.Mutex
	txs map[cryptoutil.Hash]*types.Transaction
	cap int

	// Admit→inclusion instrumentation (nil when not Instrumented):
	// admission instants per pooled tx, observed when the tx leaves the
	// pool inside a committed block.
	now       func() time.Time
	onInclude func(age time.Duration)
	admitted  map[cryptoutil.Hash]time.Time
}

// New creates a pool holding at most capacity transactions
// (DefaultCapacity if capacity <= 0).
func New(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Pool{
		txs: make(map[cryptoutil.Hash]*types.Transaction),
		cap: capacity,
	}
}

// Instrument enables admit→inclusion observability: now supplies the
// time base (pass the node's virtual or wall clock) and onInclude is
// invoked — after the pool's mutex is released, so it may call back
// into the pool — with the age of every admitted transaction that
// later leaves the pool inside a committed block. A transaction
// re-added after a reorg restarts its age at re-admission.
func (p *Pool) Instrument(now func() time.Time, onInclude func(age time.Duration)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.onInclude = onInclude
	if p.admitted == nil {
		p.admitted = make(map[cryptoutil.Hash]time.Time)
	}
}

// Add validates and inserts a transaction. When the pool is full the
// lowest-fee transaction is evicted if the newcomer pays more; otherwise
// ErrFull is returned.
func (p *Pool) Add(tx *types.Transaction) error {
	if tx.Kind == types.TxCoinbase {
		return ErrCoinbase
	}
	if err := tx.Verify(); err != nil {
		return fmt.Errorf("txpool: %w", err)
	}
	id := tx.ID()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.txs[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, id.Short())
	}
	if len(p.txs) >= p.cap {
		victim, minFee := p.cheapestLocked()
		if tx.Fee <= minFee {
			return fmt.Errorf("%w: fee %d <= floor %d", ErrFull, tx.Fee, minFee)
		}
		delete(p.txs, victim)
		delete(p.admitted, victim)
	}
	p.txs[id] = tx
	if p.now != nil {
		p.admitted[id] = p.now() //dcslint:ignore lockhold now is a pure time source (wall or virtual clock): it never blocks or re-enters the pool
	}
	return nil
}

// cheapestLocked picks the eviction victim: the lowest-fee transaction,
// with fee ties broken by largest tx hash. The tie-break matters — map
// iteration order is randomized, and a nondeterministic victim would
// break the simulator's seed-reproducibility guarantee.
func (p *Pool) cheapestLocked() (cryptoutil.Hash, uint64) {
	var (
		victim cryptoutil.Hash
		minFee = ^uint64(0)
		found  bool
	)
	for id, tx := range p.txs {
		switch {
		case !found || tx.Fee < minFee:
			victim, minFee, found = id, tx.Fee, true
		case tx.Fee == minFee && bytes.Compare(id[:], victim[:]) > 0:
			victim = id
		}
	}
	return victim, minFee
}

// Has reports whether the pool contains the transaction.
func (p *Pool) Has(id cryptoutil.Hash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.txs[id]
	return ok
}

// Len returns the number of pooled transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.txs)
}

// Select returns up to maxTxs transactions totalling at most maxBytes of
// encoded size, highest fee first; ties and same-sender sequences are
// ordered by nonce so selected batches stay applicable. maxBytes <= 0
// means unlimited. Selected transactions remain pooled until Remove.
func (p *Pool) Select(maxTxs, maxBytes int) []*types.Transaction {
	p.mu.Lock()
	all := make([]*types.Transaction, 0, len(p.txs))
	for _, tx := range p.txs {
		all = append(all, tx)
	}
	p.mu.Unlock()

	// Two-phase ordering (a single comparator mixing fee and per-sender
	// nonce is not transitive): global fee priority first, then each
	// sender's transactions are rearranged into nonce order within the
	// slots that sender occupies, so selected batches stay applicable.
	// Fee ties break by sender (then nonce, then ID) rather than by ID
	// alone, so one sender's equal-fee nonce chain lands in consecutive
	// slots: the parallel executor speculates a contiguous same-sender
	// run as a single lane, and scattering the chain across the block
	// would make every later fragment a spurious conflict.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Fee != b.Fee {
			return a.Fee > b.Fee
		}
		if a.From != b.From {
			return bytes.Compare(a.From[:], b.From[:]) < 0
		}
		if a.Nonce != b.Nonce {
			return a.Nonce < b.Nonce
		}
		ai, bi := a.ID(), b.ID()
		return bytes.Compare(ai[:], bi[:]) < 0
	})
	slots := make(map[cryptoutil.Address][]int, 8)
	for i, tx := range all {
		slots[tx.From] = append(slots[tx.From], i)
	}
	for _, idxs := range slots {
		if len(idxs) < 2 {
			continue
		}
		group := make([]*types.Transaction, len(idxs))
		for k, i := range idxs {
			group[k] = all[i]
		}
		sort.Slice(group, func(a, b int) bool { return group[a].Nonce < group[b].Nonce })
		for k, i := range idxs {
			all[i] = group[k]
		}
	}

	var (
		out   []*types.Transaction
		bytes int
	)
	for _, tx := range all {
		if maxTxs > 0 && len(out) >= maxTxs {
			break
		}
		sz := len(tx.Encode())
		if maxBytes > 0 && bytes+sz > maxBytes {
			continue
		}
		out = append(out, tx)
		bytes += sz
	}
	return out
}

// Remove deletes the given transactions (typically after block commit).
func (p *Pool) Remove(ids ...cryptoutil.Hash) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		delete(p.txs, id)
		delete(p.admitted, id)
	}
}

// RemoveBlockTxs deletes every transaction included in block b,
// reporting each instrumented transaction's admit→inclusion age. Ages
// are collected under the lock but the onInclude callback runs only
// after the pool's mutex is released, so a callback is free to call
// back into the pool.
func (p *Pool) RemoveBlockTxs(b *types.Block) {
	p.mu.Lock()
	var ages []time.Duration
	for _, tx := range b.Txs {
		id := tx.ID()
		delete(p.txs, id)
		at, stamped := p.admitted[id]
		if !stamped {
			continue
		}
		delete(p.admitted, id)
		if p.onInclude != nil && p.now != nil {
			if age := p.now().Sub(at); age >= 0 { //dcslint:ignore lockhold now is a pure time source (wall or virtual clock): it never blocks or re-enters the pool
				ages = append(ages, age)
			}
		}
	}
	onInclude := p.onInclude
	p.mu.Unlock()
	if onInclude != nil {
		for _, age := range ages {
			onInclude(age)
		}
	}
}

// Readd returns reorged-out transactions to the pool, ignoring ones that
// no longer verify or duplicate pooled entries.
func (p *Pool) Readd(txs []*types.Transaction) {
	for _, tx := range txs {
		if tx.Kind == types.TxCoinbase {
			continue
		}
		_ = p.Add(tx) // best effort: duplicates and full pool are fine
	}
}

// MinFee returns the lowest fee currently pooled (0 if empty): the fee
// floor a new transaction must beat when the pool is full.
func (p *Pool) MinFee() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.txs) == 0 {
		return 0
	}
	_, fee := p.cheapestLocked()
	return fee
}
