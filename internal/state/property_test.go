package state

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

// TestPropertySupplyConservation: any sequence of valid transfers
// conserves total supply, with fees flowing to the proposer.
func TestPropertySupplyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		keys := make([]*cryptoutil.KeyPair, 4)
		var supply uint64
		for i := range keys {
			keys[i] = cryptoutil.KeyFromSeed([]byte{byte(i), 'p'})
			amount := uint64(rng.Intn(10_000) + 100)
			s.Credit(keys[i].Address(), amount)
			supply += amount
		}
		miner := cryptoutil.KeyFromSeed([]byte("miner-p")).Address()
		nonces := make(map[int]uint64)
		for op := 0; op < 60; op++ {
			from := rng.Intn(len(keys))
			to := rng.Intn(len(keys))
			tx := types.NewTransfer(keys[from].Address(), keys[to].Address(),
				uint64(rng.Intn(200)), uint64(rng.Intn(5)), nonces[from])
			if err := tx.Sign(keys[from]); err != nil {
				return false
			}
			if _, err := s.ApplyTx(tx, miner); err == nil {
				nonces[from]++
			}
		}
		var total uint64
		for _, a := range s.Addresses() {
			total += s.Balance(a)
		}
		return total == supply
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCommitOrderInsensitive: the state root depends only on
// content, not on the order operations were issued in.
func TestPropertyCommitOrderInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			addr  cryptoutil.Address
			value uint64
			slot  byte
		}
		ops := make([]op, 12)
		for i := range ops {
			ops[i] = op{
				addr:  cryptoutil.KeyFromSeed([]byte{byte(rng.Intn(5)), 'q'}).Address(),
				value: uint64(rng.Intn(100) + 1),
				slot:  byte(rng.Intn(3)),
			}
		}
		build := func(perm []int) cryptoutil.Hash {
			s := New()
			for _, i := range perm {
				o := ops[i]
				s.Credit(o.addr, o.value)
				s.SetStorage(o.addr, []byte{o.slot}, []byte{byte(o.value)})
			}
			return s.Commit()
		}
		identity := make([]int, len(ops))
		for i := range identity {
			identity[i] = i
		}
		// Shuffle of commutative ops (credits accumulate; the last
		// storage write per (addr,slot) must win, so keep per-slot order
		// by only permuting whole-address groups... simpler: compare the
		// identity order against itself built twice, plus a reversed
		// credits-only variant.
		s1 := build(identity)
		s2 := build(identity)
		if s1 != s2 {
			return false
		}
		// Credits alone are commutative.
		creditsOnly := func(perm []int) cryptoutil.Hash {
			s := New()
			for _, i := range perm {
				s.Credit(ops[i].addr, ops[i].value)
			}
			return s.Commit()
		}
		reversed := make([]int, len(ops))
		for i := range reversed {
			reversed[i] = len(ops) - 1 - i
		}
		return creditsOnly(identity) == creditsOnly(reversed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
