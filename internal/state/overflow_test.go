package state

import (
	"errors"
	"math"
	"testing"

	"dcsledger/internal/types"
)

// TestApplyTxRejectsCostOverflowMint is the regression test for the
// uint64 mint vector: a signed transfer with Value = 2^64-1, Fee = 1
// wrapped Cost() to 0, passed the balance check with any funded
// account, wrap-debited the sender, and credited To with 2^64-1 —
// minting nearly the whole uint64 range from nothing.
func TestApplyTxRejectsCostOverflowMint(t *testing.T) {
	s := New()
	_, victim := keyAddr("mint-victim")
	_, miner := keyAddr("mint-miner")
	tx := signedTransfer(t, "mint-attacker", victim, math.MaxUint64, 1, 0)
	_, attacker := keyAddr("mint-attacker")
	s.Credit(attacker, 50) // any funded balance passed the wrapped check

	if _, err := s.ApplyTx(tx, miner); !errors.Is(err, types.ErrCostOverflow) {
		t.Fatalf("ApplyTx = %v, want ErrCostOverflow", err)
	}
	if got := s.Balance(victim); got != 0 {
		t.Fatalf("victim credited %d from nothing", got)
	}
	if got := s.Balance(attacker); got != 50 {
		t.Fatalf("attacker balance %d, want 50 untouched", got)
	}
	if got := s.Nonce(attacker); got != 0 {
		t.Fatalf("attacker nonce %d, want 0", got)
	}
}

// TestApplyBlockRejectsFeeSumOverflow: a block stuffed with huge fees
// must not wrap the expected coinbase value back into range.
func TestApplyBlockRejectsFeeSumOverflow(t *testing.T) {
	s := New()
	_, to := keyAddr("fee-to")
	_, proposer := keyAddr("fee-proposer")

	tx1 := signedTransfer(t, "fee-a", to, 0, math.MaxUint64, 0)
	tx2 := signedTransfer(t, "fee-b", to, 0, 2, 0)
	cb := types.NewCoinbase(proposer, 1, 0) // wrapped sum would be 1
	b := &types.Block{
		Header: types.BlockHeader{Proposer: proposer},
		Txs:    []*types.Transaction{cb, tx1, tx2},
	}
	if _, err := s.ApplyBlock(b, 0); !errors.Is(err, ErrBadCoinbase) {
		t.Fatalf("ApplyBlock = %v, want ErrBadCoinbase", err)
	}
}
