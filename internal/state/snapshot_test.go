package state

import (
	"testing"
)

func populated() *State {
	s := New()
	_, a := keyAddr("snap-a")
	_, b := keyAddr("snap-b")
	s.Credit(a, 100)
	s.Credit(b, 250)
	s.SetCode(a, []byte("native:token"))
	s.SetStorage(a, []byte("slot"), []byte("value"))
	s.SetStorage(a, []byte("other"), []byte{1, 2, 3})
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := populated()
	data, err := s.EncodeSnapshot()
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Commit() != s.Commit() {
		t.Fatal("snapshot round trip changed the state root")
	}
	_, a := keyAddr("snap-a")
	if got.Balance(a) != 100 || string(got.Code(a)) != "native:token" {
		t.Fatal("snapshot lost account data")
	}
	if string(got.Storage(a, []byte("slot"))) != "value" {
		t.Fatal("snapshot lost storage")
	}
}

func TestSnapshotTamperDetectedByRoot(t *testing.T) {
	s := populated()
	data, err := s.EncodeSnapshot()
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	// An attacker inflating a balance produces a different root.
	tampered := populated()
	_, b := keyAddr("snap-b")
	tampered.Credit(b, 1)
	data2, err := tampered.EncodeSnapshot()
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	s1, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	s2, err := DecodeSnapshot(data2)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if s1.Commit() == s2.Commit() {
		t.Fatal("tampered snapshot must have a different root")
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := DecodeSnapshot([]byte(`{"accounts":{"zz":{}}}`)); err == nil {
		t.Fatal("bad address must fail")
	}
}
