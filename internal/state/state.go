// Package state implements the account-model world state of the ledger:
// balances, nonces, contract code, and contract storage. State is
// committed to an authenticated Merkle Patricia trie so that every block
// header carries a verifiable state root (the Data layer of the paper's
// stack).
//
// States form copy-on-write diff layers: Copy returns an overlay that
// records only the accounts/slots written through it and reads through
// to its parent for everything else, so copying a large state is O(1)
// instead of O(accounts). A layer must be treated as frozen once it has
// children (the node freezes every per-block post-state after Commit);
// Flatten collapses a layer chain back into a single materialized base.
package state

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/mpt"
	"dcsledger/internal/types"
)

// Application errors. They are matchable with errors.Is so the mempool
// and block validator can distinguish permanently invalid transactions
// from not-yet-valid ones.
var (
	ErrInsufficientBalance = errors.New("state: insufficient balance")
	ErrBadNonce            = errors.New("state: bad nonce")
	ErrNoExecutor          = errors.New("state: no contract executor configured")
	ErrUnknownKind         = errors.New("state: unknown transaction kind")
	ErrBadCoinbase         = errors.New("state: invalid coinbase")
)

// Account is the per-address record.
type Account struct {
	Balance uint64          `json:"balance"`
	Nonce   uint64          `json:"nonce"`
	Code    cryptoutil.Hash `json:"code,omitempty"` // hash of contract code, zero for EOAs
}

// Executor runs contract deployments and invocations against the state.
// It is implemented by the vm package (and by native contract registries)
// and injected by the node to keep this package free of a contract-layer
// dependency.
type Executor interface {
	// Deploy creates a contract from tx.Data, returning its address and
	// the gas consumed.
	Deploy(st *State, tx *types.Transaction) (cryptoutil.Address, uint64, error)
	// Invoke calls the contract at tx.To with input tx.Data, returning
	// the gas consumed.
	Invoke(st *State, tx *types.Transaction) (uint64, error)
}

// ForkableExecutor is implemented by executors whose per-execution side
// state (an event log, say) can be forked for speculative execution and
// merged back in commit order. The optimistic parallel executor
// (internal/exec) gives every speculation lane its own fork so lanes
// never share mutable executor state; executors that do not implement it
// are serial-only, and transactions that need them are replayed instead
// of speculated.
type ForkableExecutor interface {
	Executor
	// Fork returns an executor with the same configuration whose side
	// effects accumulate in a private buffer, safe to drive concurrently
	// with other forks.
	Fork() Executor
	// Absorb merges a fork's accumulated side effects into the receiver.
	// The caller invokes it in deterministic transaction-index order.
	Absorb(fork Executor)
}

// Receipt records the outcome of applying one transaction.
type Receipt struct {
	TxID            cryptoutil.Hash    `json:"txId"`
	OK              bool               `json:"ok"`
	GasUsed         uint64             `json:"gasUsed"`
	ContractAddress cryptoutil.Address `json:"contractAddress,omitempty"`
	Err             string             `json:"err,omitempty"`
}

// SlotKey identifies one contract storage slot for access tracking.
type SlotKey struct {
	Addr cryptoutil.Address
	Key  string
}

// Access records the read and write footprint of execution on a tracked
// layer: account records and storage slots. Contract code needs no set of
// its own — code bytes are content-addressed and immutable once stored,
// so the only mutable handle is the Code hash inside the account record,
// which the account sets already cover.
//
// An Access is attached to a diff layer with Track and inherited by every
// child layer Copy creates, so scratch layers staged inside ApplyTx
// record into the same footprint. It is not safe for concurrent use; the
// parallel executor gives each speculation lane its own Access.
type Access struct {
	ReadAccounts  map[cryptoutil.Address]struct{}
	WriteAccounts map[cryptoutil.Address]struct{}
	ReadSlots     map[SlotKey]struct{}
	WriteSlots    map[SlotKey]struct{}
}

// NewAccess returns an empty access footprint.
func NewAccess() *Access {
	return &Access{
		ReadAccounts:  make(map[cryptoutil.Address]struct{}),
		WriteAccounts: make(map[cryptoutil.Address]struct{}),
		ReadSlots:     make(map[SlotKey]struct{}),
		WriteSlots:    make(map[SlotKey]struct{}),
	}
}

// Touches reports whether addr appears anywhere in the footprint.
func (a *Access) Touches(addr cryptoutil.Address) bool {
	if _, ok := a.ReadAccounts[addr]; ok {
		return true
	}
	_, ok := a.WriteAccounts[addr]
	return ok
}

// State is the mutable world state. It is not safe for concurrent use;
// each node owns its state and copies it for speculative execution.
//
// A State is either a base layer (parent == nil, fully materialized) or
// a diff layer: its maps hold only entries written through this layer,
// and reads fall through to the parent chain. Deleted storage slots are
// recorded as tombstones so the parent's value stays shadowed.
type State struct {
	parent     *State
	accounts   map[cryptoutil.Address]Account
	code       map[cryptoutil.Hash][]byte
	storage    map[cryptoutil.Address]map[string][]byte
	storageDel map[cryptoutil.Address]map[string]struct{}
	executor   Executor
	track      *Access // non-nil only on speculation lanes (see Track)
	depth      int     // number of parent layers below this one
}

// New returns an empty base state.
func New() *State {
	return &State{
		accounts: make(map[cryptoutil.Address]Account),
		code:     make(map[cryptoutil.Hash][]byte),
		storage:  make(map[cryptoutil.Address]map[string][]byte),
	}
}

// SetExecutor installs the contract executor used for deploy/invoke
// transactions.
func (s *State) SetExecutor(e Executor) { s.executor = e }

// Executor returns the installed contract executor, if any.
func (s *State) Executor() Executor { return s.executor }

// Depth returns the number of diff layers below this state (0 for a
// base layer). Exposed for tests and the node's pruning heuristics.
func (s *State) Depth() int { return s.depth }

// Track attaches an access footprint to this layer: every account and
// storage read or write through it (and through child layers it spawns)
// is recorded into a. Pass nil to stop tracking.
func (s *State) Track(a *Access) { s.track = a }

// Account returns the record for addr (zero value if absent).
func (s *State) Account(addr cryptoutil.Address) Account {
	acc, _ := s.lookupAccount(addr)
	return acc
}

// lookupAccount returns addr's record and whether a record exists
// anywhere in the layer chain, recording the read on tracked layers.
func (s *State) lookupAccount(addr cryptoutil.Address) (Account, bool) {
	if s.track != nil {
		s.track.ReadAccounts[addr] = struct{}{}
	}
	for cur := s; cur != nil; cur = cur.parent {
		if acc, ok := cur.accounts[addr]; ok {
			return acc, true
		}
	}
	return Account{}, false
}

// setAccount is the single funnel for account-record writes, so tracked
// layers capture a complete write set.
func (s *State) setAccount(addr cryptoutil.Address, acc Account) {
	if s.track != nil {
		s.track.WriteAccounts[addr] = struct{}{}
	}
	s.accounts[addr] = acc
}

// Balance returns the balance of addr.
func (s *State) Balance(addr cryptoutil.Address) uint64 { return s.Account(addr).Balance }

// Nonce returns the next expected nonce of addr.
func (s *State) Nonce(addr cryptoutil.Address) uint64 { return s.Account(addr).Nonce }

// Credit adds amount to addr's balance. A zero-amount credit of an
// account that already has a record is a no-op: it neither dirties the
// layer nor counts as a write in a tracked footprint (so the zero-value
// transfer every contract invocation performs does not serialize all
// invocations of one contract). Crediting an absent account still
// creates its record, even with amount 0, exactly as before.
func (s *State) Credit(addr cryptoutil.Address, amount uint64) {
	a, exists := s.lookupAccount(addr)
	if amount == 0 && exists {
		return
	}
	a.Balance += amount
	s.setAccount(addr, a)
}

// Debit removes amount from addr's balance. Zero-amount debits of
// existing accounts skip the write (see Credit).
func (s *State) Debit(addr cryptoutil.Address, amount uint64) error {
	a, exists := s.lookupAccount(addr)
	if a.Balance < amount {
		return fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientBalance, addr.Short(), a.Balance, amount)
	}
	if amount == 0 && exists {
		return nil
	}
	a.Balance -= amount
	s.setAccount(addr, a)
	return nil
}

// SetCode stores contract code and binds it to addr.
func (s *State) SetCode(addr cryptoutil.Address, code []byte) {
	h := cryptoutil.HashBytes([]byte("state/code"), code)
	s.code[h] = append([]byte(nil), code...)
	a := s.Account(addr)
	a.Code = h
	s.setAccount(addr, a)
}

// Code returns the contract code bound to addr.
func (s *State) Code(addr cryptoutil.Address) []byte {
	h := s.Account(addr).Code
	if h.IsZero() {
		return nil
	}
	for cur := s; cur != nil; cur = cur.parent {
		if c, ok := cur.code[h]; ok {
			return c
		}
	}
	return nil
}

// IsContract reports whether addr has code.
func (s *State) IsContract(addr cryptoutil.Address) bool {
	return !s.Account(addr).Code.IsZero()
}

// SetStorage writes a contract storage slot.
func (s *State) SetStorage(addr cryptoutil.Address, key, value []byte) {
	if s.track != nil {
		s.track.WriteSlots[SlotKey{Addr: addr, Key: string(key)}] = struct{}{}
	}
	m := s.storage[addr]
	if m == nil {
		m = make(map[string][]byte)
		s.storage[addr] = m
	}
	m[string(key)] = append([]byte(nil), value...)
	if d := s.storageDel[addr]; d != nil {
		delete(d, string(key))
	}
}

// Storage reads a contract storage slot.
func (s *State) Storage(addr cryptoutil.Address, key []byte) []byte {
	k := string(key)
	if s.track != nil {
		s.track.ReadSlots[SlotKey{Addr: addr, Key: k}] = struct{}{}
	}
	for cur := s; cur != nil; cur = cur.parent {
		if m := cur.storage[addr]; m != nil {
			if v, ok := m[k]; ok {
				return v
			}
		}
		if d := cur.storageDel[addr]; d != nil {
			if _, ok := d[k]; ok {
				return nil
			}
		}
	}
	return nil
}

// DeleteStorage clears one slot.
func (s *State) DeleteStorage(addr cryptoutil.Address, key []byte) {
	k := string(key)
	if s.track != nil {
		s.track.WriteSlots[SlotKey{Addr: addr, Key: k}] = struct{}{}
	}
	if m := s.storage[addr]; m != nil {
		delete(m, k)
	}
	if s.parent == nil {
		return // base layer: nothing below to shadow
	}
	d := s.storageDel[addr]
	if d == nil {
		d = make(map[string]struct{})
		if s.storageDel == nil {
			s.storageDel = make(map[cryptoutil.Address]map[string]struct{})
		}
		s.storageDel[addr] = d
	}
	d[k] = struct{}{}
}

// Copy returns a copy-on-write diff layer over s: writes go to the new
// layer, reads fall through. The receiver must not be mutated while the
// returned layer is in use (treat it as frozen); this is O(1) versus
// the old deep copy's O(accounts).
func (s *State) Copy() *State {
	return &State{
		parent:   s,
		accounts: make(map[cryptoutil.Address]Account),
		code:     make(map[cryptoutil.Hash][]byte),
		storage:  make(map[cryptoutil.Address]map[string][]byte),
		executor: s.executor,
		track:    s.track,
		depth:    s.depth + 1,
	}
}

// Flatten merges the whole layer chain into a fresh, parentless base
// state whose Commit equals the receiver's. The node flattens the
// oldest retained per-block state on prune so dropped ancestors become
// garbage-collectable.
func (s *State) Flatten() *State {
	ns := New()
	ns.executor = s.executor
	s.forEachAccount(func(a cryptoutil.Address, acc Account) {
		ns.accounts[a] = acc
	})
	seenCode := make(map[cryptoutil.Hash]struct{})
	for cur := s; cur != nil; cur = cur.parent {
		for h, c := range cur.code {
			if _, ok := seenCode[h]; ok {
				continue
			}
			seenCode[h] = struct{}{}
			ns.code[h] = c // code is immutable once stored
		}
	}
	for _, addr := range s.storageAddrs() {
		var m map[string][]byte
		s.forEachStorage(addr, func(k string, v []byte) {
			if m == nil {
				m = make(map[string][]byte)
			}
			m[k] = v
		})
		if m != nil {
			ns.storage[addr] = m
		}
	}
	return ns
}

// Absorb folds a child diff layer (created by Copy of s) back into s.
// Exported for the optimistic parallel executor (internal/exec), which
// commits non-conflicting speculation lanes by absorbing them into the
// block layer in transaction-index order.
func (s *State) Absorb(child *State) { s.absorb(child) }

// absorb folds a child diff layer (created by Copy of s) back into s.
// It is the success path of speculative contract execution: effects are
// staged on the child and only merged when the contract completes.
func (s *State) absorb(child *State) {
	for a, acc := range child.accounts {
		s.accounts[a] = acc
	}
	for h, c := range child.code {
		s.code[h] = c
	}
	for a, dels := range child.storageDel {
		for k := range dels {
			s.DeleteStorage(a, []byte(k))
		}
	}
	for a, m := range child.storage {
		sm := s.storage[a]
		if sm == nil {
			sm = make(map[string][]byte, len(m))
			s.storage[a] = sm
		}
		for k, v := range m {
			sm[k] = v
			if d := s.storageDel[a]; d != nil {
				delete(d, k)
			}
		}
	}
}

// forEachAccount visits every live account exactly once, newest layer
// first, in UNSPECIFIED order. Every visitor must be order-independent:
// MPT insertion commutes, and the flatten/count/collect visitors write
// into maps or sort afterwards.
func (s *State) forEachAccount(fn func(cryptoutil.Address, Account)) {
	seen := make(map[cryptoutil.Address]struct{})
	for cur := s; cur != nil; cur = cur.parent {
		for a, acc := range cur.accounts {
			if _, ok := seen[a]; ok {
				continue
			}
			seen[a] = struct{}{}
			fn(a, acc) //dcslint:ignore determinism visitors are order-independent by contract (MPT insert commutes; others fill maps or sort after)
		}
	}
}

// forEachStorage visits every live slot of addr exactly once, in
// UNSPECIFIED order; visitors must be order-independent (see
// forEachAccount).
func (s *State) forEachStorage(addr cryptoutil.Address, fn func(string, []byte)) {
	seen := make(map[string]struct{})
	for cur := s; cur != nil; cur = cur.parent {
		if m := cur.storage[addr]; m != nil {
			for k, v := range m {
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				fn(k, v) //dcslint:ignore determinism visitors are order-independent by contract (storage-trie insert commutes; others fill maps or sort after)
			}
		}
		if d := cur.storageDel[addr]; d != nil {
			for k := range d {
				seen[k] = struct{}{} // shadow anything below
			}
		}
	}
}

// storageAddrs returns every address with storage writes anywhere in
// the layer chain, sorted so downstream iteration runs in the same
// order on every replica.
func (s *State) storageAddrs() []cryptoutil.Address {
	seen := make(map[cryptoutil.Address]struct{})
	for cur := s; cur != nil; cur = cur.parent {
		for a := range cur.storage {
			seen[a] = struct{}{}
		}
	}
	out := make([]cryptoutil.Address, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// ApplyTx applies one transaction, paying fees to proposer. Returns a
// receipt; a non-nil error means the transaction is invalid and must not
// be included in a block (receipts with OK=false are included failures,
// e.g. a contract that ran out of gas: the fee is still paid).
func (s *State) ApplyTx(tx *types.Transaction, proposer cryptoutil.Address) (*Receipt, error) {
	return s.applyTx(tx, proposer, false)
}

// ApplyTxDeferredFee applies one transaction WITHOUT crediting its fee to
// anyone. The optimistic parallel executor speculates with deferred fees
// so every transaction does not read-write the proposer account (which
// would make all of them conflict); it settles the fees on the block
// layer in transaction-index order at merge time. Everything else matches
// ApplyTx exactly.
func (s *State) ApplyTxDeferredFee(tx *types.Transaction) (*Receipt, error) {
	return s.applyTx(tx, cryptoutil.ZeroAddress, true)
}

func (s *State) applyTx(tx *types.Transaction, proposer cryptoutil.Address, deferFee bool) (*Receipt, error) {
	rec := &Receipt{TxID: tx.ID()}
	switch tx.Kind {
	case types.TxCoinbase:
		return nil, fmt.Errorf("%w: coinbase outside block application", ErrBadCoinbase)
	case types.TxTransfer, types.TxDeploy, types.TxInvoke:
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownKind, tx.Kind)
	}
	if err := tx.Verify(); err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	acc := s.Account(tx.From)
	if tx.Nonce != acc.Nonce {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, acc.Nonce)
	}
	cost, err := tx.Cost()
	if err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	if acc.Balance < cost {
		return nil, fmt.Errorf("%w: %s has %d, tx costs %d", ErrInsufficientBalance, tx.From.Short(), acc.Balance, cost)
	}

	// Take cost and bump the nonce up front; contract failure reverts
	// contract effects but keeps the fee (gas is paid for work done).
	acc.Balance -= cost
	acc.Nonce++
	s.setAccount(tx.From, acc)
	if !deferFee {
		s.Credit(proposer, tx.Fee)
	}

	switch tx.Kind {
	case types.TxTransfer:
		s.Credit(tx.To, tx.Value)
		rec.OK = true
	case types.TxDeploy, types.TxInvoke:
		if s.executor == nil {
			// Refund value (not the fee) and report failure.
			s.Credit(tx.From, tx.Value)
			rec.Err = ErrNoExecutor.Error()
			return rec, nil
		}
		// Stage contract effects on a scratch diff layer; merge only on
		// success so a failed contract reverts by simply dropping the
		// layer (the cost debit and fee credit above stay on s).
		work := s.Copy()
		var err error
		if tx.Kind == types.TxDeploy {
			rec.ContractAddress, rec.GasUsed, err = s.executor.Deploy(work, tx)
			if err == nil {
				work.Credit(rec.ContractAddress, tx.Value) // endowment
			}
		} else {
			work.Credit(tx.To, tx.Value) // value transferred to the contract
			rec.GasUsed, err = s.executor.Invoke(work, tx)
		}
		if err != nil {
			// Drop every contract effect, then refund the undelivered value.
			rec.Err = err.Error()
			rec.ContractAddress = cryptoutil.ZeroAddress
			s.Credit(tx.From, tx.Value)
			return rec, nil
		}
		s.absorb(work)
		rec.OK = true
	}
	return rec, nil
}

// ApplyBlock applies a full block: the leading coinbase (whose value must
// equal expectedReward plus the block's total fees) followed by every
// user transaction. It mutates the state; callers copy first if they may
// need to roll back.
func (s *State) ApplyBlock(b *types.Block, expectedReward uint64) ([]*Receipt, error) {
	if _, err := CheckCoinbase(b, expectedReward); err != nil {
		return nil, err
	}
	cb := b.Txs[0]
	receipts := make([]*Receipt, 0, len(b.Txs))
	// The coinbase mints only the subsidy; fees reach the proposer as
	// each user transaction is applied (minting the full coinbase value
	// would double-count them).
	s.Credit(cb.To, expectedReward)
	receipts = append(receipts, &Receipt{TxID: cb.ID(), OK: true})
	for i, tx := range b.Txs[1:] {
		rec, err := s.ApplyTx(tx, b.Header.Proposer)
		if err != nil {
			return nil, fmt.Errorf("state: tx %d: %w", i+1, err)
		}
		receipts = append(receipts, rec)
	}
	return receipts, nil
}

// CheckCoinbase validates the block's coinbase shape — leading coinbase
// transaction whose value equals expectedReward plus the block's total
// fees (both sums overflow-checked), nonce equal to the block height,
// zero sender — and returns the total fees. It is the consensus-critical
// preamble shared by serial ApplyBlock and the parallel executor.
func CheckCoinbase(b *types.Block, expectedReward uint64) (uint64, error) {
	if len(b.Txs) == 0 || b.Txs[0].Kind != types.TxCoinbase {
		return 0, fmt.Errorf("%w: block must start with a coinbase", ErrBadCoinbase)
	}
	// The fee sum and the reward+fees total are checked adds: a block
	// stuffed with huge fees must not wrap the expected coinbase value
	// into range.
	var fees uint64
	for _, tx := range b.Txs[1:] {
		if tx.Kind == types.TxCoinbase {
			return 0, fmt.Errorf("%w: coinbase not at position 0", ErrBadCoinbase)
		}
		if fees+tx.Fee < fees {
			return 0, fmt.Errorf("%w: block fees overflow", ErrBadCoinbase)
		}
		fees += tx.Fee
	}
	cb := b.Txs[0]
	want := expectedReward + fees
	if want < expectedReward {
		return 0, fmt.Errorf("%w: reward %d + fees %d overflows", ErrBadCoinbase, expectedReward, fees)
	}
	if cb.Value != want {
		return 0, fmt.Errorf("%w: coinbase value %d, want reward %d + fees %d",
			ErrBadCoinbase, cb.Value, expectedReward, fees)
	}
	if cb.Nonce != b.Header.Height {
		return 0, fmt.Errorf("%w: coinbase nonce %d, want height %d", ErrBadCoinbase, cb.Nonce, b.Header.Height)
	}
	if !cb.From.IsZero() {
		return 0, fmt.Errorf("%w: coinbase sender must be the zero address", ErrBadCoinbase)
	}
	return fees, nil
}

// Commit returns the authenticated root of the entire state: a Merkle
// Patricia trie over accounts, each account's entry committing its
// balance, nonce, code hash, and a nested storage-trie root.
func (s *State) Commit() cryptoutil.Hash {
	return s.AccountTrie().RootHash()
}

// AccountTrie builds the full account trie Commit hashes. The disk
// state mirror uses it to seed (or rebuild) a persistent copy of the
// trie whose root every block header carries.
func (s *State) AccountTrie() *mpt.Trie {
	tr := mpt.New()
	s.forEachAccount(func(addr cryptoutil.Address, acc Account) {
		tr = tr.Set(addr[:], s.encodeAccount(addr, acc))
	})
	return tr
}

// AccountLeaf returns the account-trie leaf value for addr — the exact
// bytes Commit stores under addr[:] — and whether addr has an account
// record (addresses with storage but no account record contribute no
// leaf, matching Commit).
func (s *State) AccountLeaf(addr cryptoutil.Address) ([]byte, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if acc, ok := cur.accounts[addr]; ok {
			return s.encodeAccount(addr, acc), true
		}
	}
	return nil, false
}

// DirtyAddresses returns every address written through THIS diff layer
// (account record, storage slot, or storage delete), sorted. On a
// per-block state layer that is exactly the set of account-trie leaves
// the block may have changed; for a base layer it is every account.
func (s *State) DirtyAddresses() []cryptoutil.Address {
	seen := make(map[cryptoutil.Address]struct{}, len(s.accounts))
	for a := range s.accounts {
		seen[a] = struct{}{}
	}
	for a := range s.storage {
		seen[a] = struct{}{}
	}
	for a := range s.storageDel {
		seen[a] = struct{}{}
	}
	out := make([]cryptoutil.Address, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Len returns the number of accounts with records.
func (s *State) Len() int {
	n := 0
	s.forEachAccount(func(cryptoutil.Address, Account) { n++ })
	return n
}

// Addresses returns all account addresses (order unspecified).
func (s *State) Addresses() []cryptoutil.Address {
	out := make([]cryptoutil.Address, 0, len(s.accounts))
	s.forEachAccount(func(a cryptoutil.Address, _ Account) {
		out = append(out, a)
	})
	return out
}

func (s *State) encodeAccount(addr cryptoutil.Address, acc Account) []byte {
	var buf bytes.Buffer
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], acc.Balance)
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], acc.Nonce)
	buf.Write(b8[:])
	buf.Write(acc.Code[:])
	sr := s.storageRoot(addr)
	buf.Write(sr[:])
	return buf.Bytes()
}

func (s *State) storageRoot(addr cryptoutil.Address) cryptoutil.Hash {
	tr := mpt.New()
	n := 0
	s.forEachStorage(addr, func(k string, v []byte) {
		tr = tr.Set([]byte(k), v)
		n++
	})
	if n == 0 {
		return mpt.EmptyRoot
	}
	return tr.RootHash()
}
