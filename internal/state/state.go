// Package state implements the account-model world state of the ledger:
// balances, nonces, contract code, and contract storage. State is
// committed to an authenticated Merkle Patricia trie so that every block
// header carries a verifiable state root (the Data layer of the paper's
// stack).
package state

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/mpt"
	"dcsledger/internal/types"
)

// Application errors. They are matchable with errors.Is so the mempool
// and block validator can distinguish permanently invalid transactions
// from not-yet-valid ones.
var (
	ErrInsufficientBalance = errors.New("state: insufficient balance")
	ErrBadNonce            = errors.New("state: bad nonce")
	ErrNoExecutor          = errors.New("state: no contract executor configured")
	ErrUnknownKind         = errors.New("state: unknown transaction kind")
	ErrBadCoinbase         = errors.New("state: invalid coinbase")
)

// Account is the per-address record.
type Account struct {
	Balance uint64          `json:"balance"`
	Nonce   uint64          `json:"nonce"`
	Code    cryptoutil.Hash `json:"code,omitempty"` // hash of contract code, zero for EOAs
}

// Executor runs contract deployments and invocations against the state.
// It is implemented by the vm package (and by native contract registries)
// and injected by the node to keep this package free of a contract-layer
// dependency.
type Executor interface {
	// Deploy creates a contract from tx.Data, returning its address and
	// the gas consumed.
	Deploy(st *State, tx *types.Transaction) (cryptoutil.Address, uint64, error)
	// Invoke calls the contract at tx.To with input tx.Data, returning
	// the gas consumed.
	Invoke(st *State, tx *types.Transaction) (uint64, error)
}

// Receipt records the outcome of applying one transaction.
type Receipt struct {
	TxID            cryptoutil.Hash    `json:"txId"`
	OK              bool               `json:"ok"`
	GasUsed         uint64             `json:"gasUsed"`
	ContractAddress cryptoutil.Address `json:"contractAddress,omitempty"`
	Err             string             `json:"err,omitempty"`
}

// State is the mutable world state. It is not safe for concurrent use;
// each node owns its state and copies it for speculative execution.
type State struct {
	accounts map[cryptoutil.Address]Account
	code     map[cryptoutil.Hash][]byte
	storage  map[cryptoutil.Address]map[string][]byte
	executor Executor
}

// New returns an empty state.
func New() *State {
	return &State{
		accounts: make(map[cryptoutil.Address]Account),
		code:     make(map[cryptoutil.Hash][]byte),
		storage:  make(map[cryptoutil.Address]map[string][]byte),
	}
}

// SetExecutor installs the contract executor used for deploy/invoke
// transactions.
func (s *State) SetExecutor(e Executor) { s.executor = e }

// Executor returns the installed contract executor, if any.
func (s *State) Executor() Executor { return s.executor }

// Account returns the record for addr (zero value if absent).
func (s *State) Account(addr cryptoutil.Address) Account { return s.accounts[addr] }

// Balance returns the balance of addr.
func (s *State) Balance(addr cryptoutil.Address) uint64 { return s.accounts[addr].Balance }

// Nonce returns the next expected nonce of addr.
func (s *State) Nonce(addr cryptoutil.Address) uint64 { return s.accounts[addr].Nonce }

// Credit adds amount to addr's balance.
func (s *State) Credit(addr cryptoutil.Address, amount uint64) {
	a := s.accounts[addr]
	a.Balance += amount
	s.accounts[addr] = a
}

// Debit removes amount from addr's balance.
func (s *State) Debit(addr cryptoutil.Address, amount uint64) error {
	a := s.accounts[addr]
	if a.Balance < amount {
		return fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientBalance, addr.Short(), a.Balance, amount)
	}
	a.Balance -= amount
	s.accounts[addr] = a
	return nil
}

// SetCode stores contract code and binds it to addr.
func (s *State) SetCode(addr cryptoutil.Address, code []byte) {
	h := cryptoutil.HashBytes([]byte("state/code"), code)
	s.code[h] = append([]byte(nil), code...)
	a := s.accounts[addr]
	a.Code = h
	s.accounts[addr] = a
}

// Code returns the contract code bound to addr.
func (s *State) Code(addr cryptoutil.Address) []byte {
	return s.code[s.accounts[addr].Code]
}

// IsContract reports whether addr has code.
func (s *State) IsContract(addr cryptoutil.Address) bool {
	return !s.accounts[addr].Code.IsZero()
}

// SetStorage writes a contract storage slot.
func (s *State) SetStorage(addr cryptoutil.Address, key, value []byte) {
	m := s.storage[addr]
	if m == nil {
		m = make(map[string][]byte)
		s.storage[addr] = m
	}
	m[string(key)] = append([]byte(nil), value...)
}

// Storage reads a contract storage slot.
func (s *State) Storage(addr cryptoutil.Address, key []byte) []byte {
	return s.storage[addr][string(key)]
}

// DeleteStorage clears one slot.
func (s *State) DeleteStorage(addr cryptoutil.Address, key []byte) {
	delete(s.storage[addr], string(key))
}

// Copy returns a deep copy for speculative execution.
func (s *State) Copy() *State {
	ns := New()
	ns.executor = s.executor
	for a, acc := range s.accounts {
		ns.accounts[a] = acc
	}
	for h, c := range s.code {
		ns.code[h] = c // code is immutable once stored
	}
	for a, m := range s.storage {
		nm := make(map[string][]byte, len(m))
		for k, v := range m {
			nm[k] = v // values are replaced wholesale, never mutated
		}
		ns.storage[a] = nm
	}
	return ns
}

// ApplyTx applies one transaction, paying fees to proposer. Returns a
// receipt; a non-nil error means the transaction is invalid and must not
// be included in a block (receipts with OK=false are included failures,
// e.g. a contract that ran out of gas: the fee is still paid).
func (s *State) ApplyTx(tx *types.Transaction, proposer cryptoutil.Address) (*Receipt, error) {
	rec := &Receipt{TxID: tx.ID()}
	switch tx.Kind {
	case types.TxCoinbase:
		return nil, fmt.Errorf("%w: coinbase outside block application", ErrBadCoinbase)
	case types.TxTransfer, types.TxDeploy, types.TxInvoke:
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownKind, tx.Kind)
	}
	if err := tx.Verify(); err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	acc := s.accounts[tx.From]
	if tx.Nonce != acc.Nonce {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, acc.Nonce)
	}
	if acc.Balance < tx.Cost() {
		return nil, fmt.Errorf("%w: %s has %d, tx costs %d", ErrInsufficientBalance, tx.From.Short(), acc.Balance, tx.Cost())
	}

	// Take cost and bump the nonce up front; contract failure reverts
	// contract effects but keeps the fee (gas is paid for work done).
	acc.Balance -= tx.Cost()
	acc.Nonce++
	s.accounts[tx.From] = acc
	s.Credit(proposer, tx.Fee)

	switch tx.Kind {
	case types.TxTransfer:
		s.Credit(tx.To, tx.Value)
		rec.OK = true
	case types.TxDeploy, types.TxInvoke:
		if s.executor == nil {
			// Refund value (not the fee) and report failure.
			s.Credit(tx.From, tx.Value)
			rec.Err = ErrNoExecutor.Error()
			return rec, nil
		}
		snapshot := s.Copy()
		var err error
		if tx.Kind == types.TxDeploy {
			rec.ContractAddress, rec.GasUsed, err = s.executor.Deploy(s, tx)
			if err == nil {
				s.Credit(rec.ContractAddress, tx.Value) // endowment
			}
		} else {
			s.Credit(tx.To, tx.Value) // value transferred to the contract
			rec.GasUsed, err = s.executor.Invoke(s, tx)
		}
		if err != nil {
			// Revert every contract effect (the snapshot already has the
			// cost debit and fee credit), then refund the undelivered value.
			*s = *snapshot
			rec.Err = err.Error()
			rec.ContractAddress = cryptoutil.ZeroAddress
			s.Credit(tx.From, tx.Value)
			return rec, nil
		}
		rec.OK = true
	}
	return rec, nil
}

// ApplyBlock applies a full block: the leading coinbase (whose value must
// equal expectedReward plus the block's total fees) followed by every
// user transaction. It mutates the state; callers copy first if they may
// need to roll back.
func (s *State) ApplyBlock(b *types.Block, expectedReward uint64) ([]*Receipt, error) {
	if len(b.Txs) == 0 || b.Txs[0].Kind != types.TxCoinbase {
		return nil, fmt.Errorf("%w: block must start with a coinbase", ErrBadCoinbase)
	}
	var fees uint64
	for _, tx := range b.Txs[1:] {
		if tx.Kind == types.TxCoinbase {
			return nil, fmt.Errorf("%w: coinbase not at position 0", ErrBadCoinbase)
		}
		fees += tx.Fee
	}
	cb := b.Txs[0]
	if cb.Value != expectedReward+fees {
		return nil, fmt.Errorf("%w: coinbase value %d, want reward %d + fees %d",
			ErrBadCoinbase, cb.Value, expectedReward, fees)
	}
	if cb.Nonce != b.Header.Height {
		return nil, fmt.Errorf("%w: coinbase nonce %d, want height %d", ErrBadCoinbase, cb.Nonce, b.Header.Height)
	}
	if !cb.From.IsZero() {
		return nil, fmt.Errorf("%w: coinbase sender must be the zero address", ErrBadCoinbase)
	}
	receipts := make([]*Receipt, 0, len(b.Txs))
	// The coinbase mints only the subsidy; fees reach the proposer as
	// each user transaction is applied (minting the full coinbase value
	// would double-count them).
	s.Credit(cb.To, expectedReward)
	receipts = append(receipts, &Receipt{TxID: cb.ID(), OK: true})
	for i, tx := range b.Txs[1:] {
		rec, err := s.ApplyTx(tx, b.Header.Proposer)
		if err != nil {
			return nil, fmt.Errorf("state: tx %d: %w", i+1, err)
		}
		receipts = append(receipts, rec)
	}
	return receipts, nil
}

// Commit returns the authenticated root of the entire state: a Merkle
// Patricia trie over accounts, each account's entry committing its
// balance, nonce, code hash, and a nested storage-trie root.
func (s *State) Commit() cryptoutil.Hash {
	tr := mpt.New()
	for addr, acc := range s.accounts {
		tr = tr.Set(addr[:], s.encodeAccount(addr, acc))
	}
	return tr.RootHash()
}

// Len returns the number of accounts with records.
func (s *State) Len() int { return len(s.accounts) }

// Addresses returns all account addresses (order unspecified).
func (s *State) Addresses() []cryptoutil.Address {
	out := make([]cryptoutil.Address, 0, len(s.accounts))
	for a := range s.accounts {
		out = append(out, a)
	}
	return out
}

func (s *State) encodeAccount(addr cryptoutil.Address, acc Account) []byte {
	var buf bytes.Buffer
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], acc.Balance)
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], acc.Nonce)
	buf.Write(b8[:])
	buf.Write(acc.Code[:])
	sr := s.storageRoot(addr)
	buf.Write(sr[:])
	return buf.Bytes()
}

func (s *State) storageRoot(addr cryptoutil.Address) cryptoutil.Hash {
	m := s.storage[addr]
	if len(m) == 0 {
		return mpt.EmptyRoot
	}
	tr := mpt.New()
	for k, v := range m {
		tr = tr.Set([]byte(k), v)
	}
	return tr.RootHash()
}
