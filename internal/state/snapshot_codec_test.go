package state

import (
	"bytes"
	"testing"
)

// TestSnapshotDeterministic: equal states must encode byte-identically
// regardless of insertion order or diff-layer structure, so checkpoint
// bytes (and their hashes) are reproducible across nodes.
func TestSnapshotDeterministic(t *testing.T) {
	_, a := keyAddr("det-a")
	_, b := keyAddr("det-b")

	mkForward := func() *State {
		s := New()
		s.Credit(a, 10)
		s.Credit(b, 20)
		s.SetCode(a, []byte("code"))
		s.SetStorage(a, []byte("k1"), []byte("v1"))
		s.SetStorage(a, []byte("k2"), []byte("v2"))
		return s
	}
	mkReverse := func() *State {
		s := New()
		s.SetStorage(a, []byte("k2"), []byte("v2"))
		s.SetStorage(a, []byte("k1"), []byte("v1"))
		s.SetCode(a, []byte("code"))
		s.Credit(b, 20)
		s.Credit(a, 10)
		return s
	}
	// Same content, but built as a diff layer over a base.
	mkLayered := func() *State {
		base := New()
		base.Credit(a, 10)
		base.SetCode(a, []byte("code"))
		child := base.Copy()
		child.Credit(b, 20)
		child.SetStorage(a, []byte("k1"), []byte("v1"))
		child.SetStorage(a, []byte("k2"), []byte("v2"))
		return child
	}

	want, err := mkForward().EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range map[string]func() *State{"reverse": mkReverse, "layered": mkLayered} {
		got, err := mk().EncodeSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s-built state encodes differently:\n got %x\nwant %x", name, got, want)
		}
	}
	// Repeated encodes of one state are also stable.
	again, err := mkForward().EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("re-encoding the same state changed bytes")
	}
}

// TestSnapshotCanonical: a decoded snapshot re-encodes byte-identically.
func TestSnapshotCanonical(t *testing.T) {
	data, err := populated().EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	re, err := s.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("snapshot round trip is not canonical")
	}
}

func TestSnapshotDecodeRejects(t *testing.T) {
	data, err := populated().EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeSnapshot(data[:len(data)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 88
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Duplicate/unsorted account keys are non-canonical. The account
	// section starts at offset 5 (version + count); each entry is
	// 20+8+8+32 = 68 bytes. Duplicating the first entry over the second
	// breaks strict ordering.
	if populated().Len() >= 2 {
		dup := append([]byte(nil), data...)
		copy(dup[5+68:5+136], dup[5:5+68])
		if _, err := DecodeSnapshot(dup); err == nil {
			t.Fatal("duplicate account key accepted")
		}
	}
}

// FuzzSnapshotDecode: checkpoint bytes come from disk and sync peers;
// the decoder must never panic and must accept only canonical input.
func FuzzSnapshotDecode(f *testing.F) {
	if seed, err := populated().EncodeSnapshot(); err == nil {
		f.Add(seed)
	}
	if empty, err := New().EncodeSnapshot(); err == nil {
		f.Add(empty)
	}
	f.Add([]byte{})
	f.Add([]byte{SnapshotCodecVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := s.EncodeSnapshot()
		if err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical snapshot accepted: %x != %x", re, data)
		}
	})
}
