package state

import (
	"errors"
	"fmt"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func keyAddr(seed string) (*cryptoutil.KeyPair, cryptoutil.Address) {
	k := cryptoutil.KeyFromSeed([]byte(seed))
	return k, k.Address()
}

func signedTransfer(t *testing.T, fromSeed string, to cryptoutil.Address, value, fee, nonce uint64) *types.Transaction {
	t.Helper()
	k, from := keyAddr(fromSeed)
	tx := types.NewTransfer(from, to, value, fee, nonce)
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return tx
}

func TestCreditDebit(t *testing.T) {
	s := New()
	_, a := keyAddr("a")
	s.Credit(a, 100)
	if s.Balance(a) != 100 {
		t.Fatalf("Balance = %d", s.Balance(a))
	}
	if err := s.Debit(a, 40); err != nil {
		t.Fatalf("Debit: %v", err)
	}
	if s.Balance(a) != 60 {
		t.Fatalf("Balance = %d", s.Balance(a))
	}
	if err := s.Debit(a, 61); !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("want ErrInsufficientBalance, got %v", err)
	}
}

func TestApplyTransfer(t *testing.T) {
	s := New()
	_, alice := keyAddr("alice")
	_, bob := keyAddr("bob")
	_, miner := keyAddr("miner")
	s.Credit(alice, 1000)

	tx := signedTransfer(t, "alice", bob, 300, 5, 0)
	rec, err := s.ApplyTx(tx, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if !rec.OK {
		t.Fatal("transfer receipt should be OK")
	}
	if s.Balance(alice) != 695 || s.Balance(bob) != 300 || s.Balance(miner) != 5 {
		t.Fatalf("balances = %d/%d/%d", s.Balance(alice), s.Balance(bob), s.Balance(miner))
	}
	if s.Nonce(alice) != 1 {
		t.Fatal("nonce must advance")
	}
}

func TestApplyTransferErrors(t *testing.T) {
	_, bob := keyAddr("bob")
	_, miner := keyAddr("miner")

	t.Run("bad nonce", func(t *testing.T) {
		s := New()
		_, alice := keyAddr("alice")
		s.Credit(alice, 1000)
		tx := signedTransfer(t, "alice", bob, 10, 1, 5)
		if _, err := s.ApplyTx(tx, miner); !errors.Is(err, ErrBadNonce) {
			t.Fatalf("want ErrBadNonce, got %v", err)
		}
	})
	t.Run("insufficient balance", func(t *testing.T) {
		s := New()
		tx := signedTransfer(t, "alice", bob, 10, 1, 0)
		if _, err := s.ApplyTx(tx, miner); !errors.Is(err, ErrInsufficientBalance) {
			t.Fatalf("want ErrInsufficientBalance, got %v", err)
		}
	})
	t.Run("unsigned", func(t *testing.T) {
		s := New()
		_, alice := keyAddr("alice")
		s.Credit(alice, 1000)
		tx := types.NewTransfer(alice, bob, 10, 1, 0)
		if _, err := s.ApplyTx(tx, miner); !errors.Is(err, types.ErrNoSignature) {
			t.Fatalf("want ErrNoSignature, got %v", err)
		}
	})
	t.Run("replay rejected", func(t *testing.T) {
		s := New()
		_, alice := keyAddr("alice")
		s.Credit(alice, 1000)
		tx := signedTransfer(t, "alice", bob, 10, 1, 0)
		if _, err := s.ApplyTx(tx, miner); err != nil {
			t.Fatalf("first apply: %v", err)
		}
		if _, err := s.ApplyTx(tx, miner); !errors.Is(err, ErrBadNonce) {
			t.Fatalf("replay must fail with ErrBadNonce, got %v", err)
		}
	})
	t.Run("standalone coinbase rejected", func(t *testing.T) {
		s := New()
		cb := types.NewCoinbase(bob, 50, 0)
		if _, err := s.ApplyTx(cb, miner); !errors.Is(err, ErrBadCoinbase) {
			t.Fatalf("want ErrBadCoinbase, got %v", err)
		}
	})
}

func TestDeployInvokeWithoutExecutor(t *testing.T) {
	s := New()
	_, alice := keyAddr("alice")
	_, miner := keyAddr("miner")
	k, _ := keyAddr("alice")
	s.Credit(alice, 100)
	tx := &types.Transaction{Kind: types.TxDeploy, From: alice, Value: 10, Fee: 3, Nonce: 0, Data: []byte("code")}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := s.ApplyTx(tx, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("deploy without executor must fail")
	}
	// Fee is paid, value refunded, nonce advanced.
	if s.Balance(alice) != 97 || s.Balance(miner) != 3 || s.Nonce(alice) != 1 {
		t.Fatalf("balances %d/%d nonce %d", s.Balance(alice), s.Balance(miner), s.Nonce(alice))
	}
}

// stubExecutor lets tests drive the deploy/invoke paths.
type stubExecutor struct {
	failInvoke bool
}

func (e *stubExecutor) Deploy(st *State, tx *types.Transaction) (cryptoutil.Address, uint64, error) {
	addr := cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("contract"), tx.From[:]))
	st.SetCode(addr, tx.Data)
	return addr, 21, nil
}

func (e *stubExecutor) Invoke(st *State, tx *types.Transaction) (uint64, error) {
	if e.failInvoke {
		st.SetStorage(tx.To, []byte("poison"), []byte("should revert"))
		return 7, fmt.Errorf("contract aborted")
	}
	st.SetStorage(tx.To, []byte("k"), tx.Data)
	return 9, nil
}

func TestDeployAndInvoke(t *testing.T) {
	s := New()
	s.SetExecutor(&stubExecutor{})
	k, alice := keyAddr("alice")
	_, miner := keyAddr("miner")
	s.Credit(alice, 1000)

	deploy := &types.Transaction{Kind: types.TxDeploy, From: alice, Value: 50, Fee: 10, Nonce: 0, Data: []byte("CODE")}
	if err := deploy.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := s.ApplyTx(deploy, miner)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !rec.OK || rec.ContractAddress.IsZero() {
		t.Fatalf("deploy receipt %+v", rec)
	}
	if !s.IsContract(rec.ContractAddress) {
		t.Fatal("contract code missing")
	}
	if s.Balance(rec.ContractAddress) != 50 {
		t.Fatal("endowment not credited")
	}

	invoke := &types.Transaction{Kind: types.TxInvoke, From: alice, To: rec.ContractAddress, Fee: 5, Nonce: 1, Data: []byte("input")}
	if err := invoke.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec2, err := s.ApplyTx(invoke, miner)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !rec2.OK || rec2.GasUsed != 9 {
		t.Fatalf("invoke receipt %+v", rec2)
	}
	if string(s.Storage(rec.ContractAddress, []byte("k"))) != "input" {
		t.Fatal("contract storage not written")
	}
}

func TestFailedInvokeRevertsButKeepsFee(t *testing.T) {
	s := New()
	s.SetExecutor(&stubExecutor{failInvoke: true})
	k, alice := keyAddr("alice")
	_, miner := keyAddr("miner")
	_, target := keyAddr("contract-addr")
	s.Credit(alice, 100)

	invoke := &types.Transaction{Kind: types.TxInvoke, From: alice, To: target, Value: 20, Fee: 4, Nonce: 0}
	if err := invoke.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := s.ApplyTx(invoke, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("failed invoke must not be OK")
	}
	if s.Storage(target, []byte("poison")) != nil {
		t.Fatal("contract effects must revert")
	}
	// Value refunded, fee kept, nonce advanced.
	if s.Balance(alice) != 96 || s.Balance(miner) != 4 || s.Balance(target) != 0 {
		t.Fatalf("balances %d/%d/%d", s.Balance(alice), s.Balance(miner), s.Balance(target))
	}
	if s.Nonce(alice) != 1 {
		t.Fatal("nonce must advance even on contract failure")
	}
}

func blockWith(t *testing.T, height uint64, proposer cryptoutil.Address, reward uint64, txs ...*types.Transaction) *types.Block {
	t.Helper()
	var fees uint64
	for _, tx := range txs {
		fees += tx.Fee
	}
	all := append([]*types.Transaction{types.NewCoinbase(proposer, reward+fees, height)}, txs...)
	return types.NewBlock(cryptoutil.ZeroHash, height, 0, proposer, all)
}

func TestApplyBlock(t *testing.T) {
	s := New()
	_, alice := keyAddr("alice")
	_, bob := keyAddr("bob")
	_, miner := keyAddr("miner")
	s.Credit(alice, 1000)

	b := blockWith(t, 1, miner, 50,
		signedTransfer(t, "alice", bob, 100, 2, 0),
		signedTransfer(t, "alice", bob, 200, 3, 1),
	)
	receipts, err := s.ApplyBlock(b, 50)
	if err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	if len(receipts) != 3 {
		t.Fatalf("receipts = %d", len(receipts))
	}
	if s.Balance(miner) != 55 { // 50 subsidy + 5 fees
		t.Fatalf("miner = %d, want 55", s.Balance(miner))
	}
	if s.Balance(alice) != 695 || s.Balance(bob) != 300 {
		t.Fatalf("alice/bob = %d/%d", s.Balance(alice), s.Balance(bob))
	}
}

func TestApplyBlockRejects(t *testing.T) {
	_, miner := keyAddr("miner")
	_, bob := keyAddr("bob")

	t.Run("no coinbase", func(t *testing.T) {
		s := New()
		_, alice := keyAddr("alice")
		s.Credit(alice, 100)
		b := types.NewBlock(cryptoutil.ZeroHash, 1, 0, miner,
			[]*types.Transaction{signedTransfer(t, "alice", bob, 1, 0, 0)})
		if _, err := s.ApplyBlock(b, 50); !errors.Is(err, ErrBadCoinbase) {
			t.Fatalf("want ErrBadCoinbase, got %v", err)
		}
	})
	t.Run("inflated coinbase", func(t *testing.T) {
		s := New()
		b := types.NewBlock(cryptoutil.ZeroHash, 1, 0, miner,
			[]*types.Transaction{types.NewCoinbase(miner, 1_000_000, 1)})
		if _, err := s.ApplyBlock(b, 50); !errors.Is(err, ErrBadCoinbase) {
			t.Fatalf("want ErrBadCoinbase, got %v", err)
		}
	})
	t.Run("second coinbase", func(t *testing.T) {
		s := New()
		b := types.NewBlock(cryptoutil.ZeroHash, 1, 0, miner, []*types.Transaction{
			types.NewCoinbase(miner, 50, 1),
			types.NewCoinbase(miner, 50, 1),
		})
		if _, err := s.ApplyBlock(b, 50); !errors.Is(err, ErrBadCoinbase) {
			t.Fatalf("want ErrBadCoinbase, got %v", err)
		}
	})
	t.Run("wrong height nonce", func(t *testing.T) {
		s := New()
		b := types.NewBlock(cryptoutil.ZeroHash, 2, 0, miner,
			[]*types.Transaction{types.NewCoinbase(miner, 50, 1)})
		if _, err := s.ApplyBlock(b, 50); !errors.Is(err, ErrBadCoinbase) {
			t.Fatalf("want ErrBadCoinbase, got %v", err)
		}
	})
}

func TestCopyIsolation(t *testing.T) {
	s := New()
	_, a := keyAddr("a")
	s.Credit(a, 10)
	s.SetStorage(a, []byte("k"), []byte("v"))
	c := s.Copy()
	c.Credit(a, 5)
	c.SetStorage(a, []byte("k"), []byte("changed"))
	if s.Balance(a) != 10 {
		t.Fatal("copy leaked balance change")
	}
	if string(s.Storage(a, []byte("k"))) != "v" {
		t.Fatal("copy leaked storage change")
	}
}

func TestCommitDeterministicAndSensitive(t *testing.T) {
	build := func(extra bool) cryptoutil.Hash {
		s := New()
		_, a := keyAddr("a")
		_, b := keyAddr("b")
		s.Credit(a, 100)
		s.Credit(b, 200)
		s.SetStorage(a, []byte("slot"), []byte("value"))
		if extra {
			s.Credit(b, 1)
		}
		return s.Commit()
	}
	if build(false) != build(false) {
		t.Fatal("commit must be deterministic")
	}
	if build(false) == build(true) {
		t.Fatal("commit must reflect balance changes")
	}
}

func TestCommitReflectsStorage(t *testing.T) {
	s := New()
	_, a := keyAddr("a")
	s.Credit(a, 1)
	r1 := s.Commit()
	s.SetStorage(a, []byte("k"), []byte("v"))
	r2 := s.Commit()
	if r1 == r2 {
		t.Fatal("storage writes must change the state root")
	}
	s.DeleteStorage(a, []byte("k"))
	if s.Commit() != r1 {
		t.Fatal("deleting the slot must restore the root")
	}
}
