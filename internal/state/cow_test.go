package state

import (
	"fmt"
	"math/rand"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/types"
)

func addrN(i int) cryptoutil.Address {
	return cryptoutil.AddressFromHash(cryptoutil.HashUint64("cow-test", uint64(i)))
}

func TestCopyIsDiffLayer(t *testing.T) {
	base := New()
	a, b := addrN(1), addrN(2)
	base.Credit(a, 100)
	base.SetStorage(a, []byte("k"), []byte("v"))

	layer := base.Copy()
	if layer.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", layer.Depth())
	}
	// Read-through.
	if layer.Balance(a) != 100 {
		t.Fatalf("layer balance = %d", layer.Balance(a))
	}
	if string(layer.Storage(a, []byte("k"))) != "v" {
		t.Fatal("layer must read through to parent storage")
	}
	// Writes stay local.
	layer.Credit(b, 7)
	layer.Credit(a, 1)
	if base.Balance(b) != 0 || base.Balance(a) != 100 {
		t.Fatal("layer write leaked into base")
	}
	if layer.Balance(a) != 101 || layer.Balance(b) != 7 {
		t.Fatal("layer write lost")
	}
	// Commit sees the merged view.
	if layer.Len() != 2 {
		t.Fatalf("layer.Len() = %d, want 2", layer.Len())
	}
}

func TestStorageTombstones(t *testing.T) {
	base := New()
	a := addrN(3)
	base.SetStorage(a, []byte("k1"), []byte("v1"))
	base.SetStorage(a, []byte("k2"), []byte("v2"))

	layer := base.Copy()
	layer.DeleteStorage(a, []byte("k1"))
	if layer.Storage(a, []byte("k1")) != nil {
		t.Fatal("deleted slot must not resurrect from parent")
	}
	if base.Storage(a, []byte("k1")) == nil {
		t.Fatal("delete leaked into base")
	}
	// Re-set after delete clears the tombstone.
	layer.SetStorage(a, []byte("k1"), []byte("v1b"))
	if string(layer.Storage(a, []byte("k1"))) != "v1b" {
		t.Fatal("set-after-delete lost")
	}

	// A layered state with a delete must commit identically to a flat
	// state that never had the slot.
	layer2 := base.Copy()
	layer2.DeleteStorage(a, []byte("k2"))
	flat := New()
	flat.SetStorage(a, []byte("k1"), []byte("v1"))
	// (account record: SetStorage doesn't create accounts, so roots
	// compare over storage tries only via Commit of identical accounts)
	if layer2.Commit() != flat.Commit() {
		t.Fatal("tombstoned layer commit != equivalent flat commit")
	}
}

// mirrorOp applies the same mutation to a layered and a flat state.
func applyRandomOps(rng *rand.Rand, dst *State, n int) {
	for i := 0; i < n; i++ {
		a := addrN(rng.Intn(12))
		switch rng.Intn(5) {
		case 0:
			dst.Credit(a, uint64(rng.Intn(50)+1))
		case 1:
			if dst.Balance(a) > 3 {
				_ = dst.Debit(a, 3)
			}
		case 2:
			dst.SetStorage(a, []byte(fmt.Sprintf("k%d", rng.Intn(6))), []byte(fmt.Sprintf("v%d", rng.Int())))
		case 3:
			dst.DeleteStorage(a, []byte(fmt.Sprintf("k%d", rng.Intn(6))))
		case 4:
			dst.SetCode(a, []byte(fmt.Sprintf("code-%d", rng.Intn(4))))
		}
	}
}

func TestLayeredCommitMatchesFlat(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		layered := New()
		flat := New()
		for round := 0; round < 6; round++ {
			applyRandomOps(rngA, layered, 30)
			applyRandomOps(rngB, flat, 30)
			layered = layered.Copy() // push a new diff layer each round
		}
		if layered.Commit() != flat.Commit() {
			t.Fatalf("seed %d: layered commit diverges from flat commit", seed)
		}

		// Flatten preserves the root and produces a base layer.
		fl := layered.Flatten()
		if fl.Depth() != 0 {
			t.Fatalf("flattened depth = %d", fl.Depth())
		}
		if fl.Commit() != layered.Commit() {
			t.Fatalf("seed %d: Flatten changed the commit root", seed)
		}
		if fl.Len() != layered.Len() {
			t.Fatalf("seed %d: Flatten changed Len: %d != %d", seed, fl.Len(), layered.Len())
		}

		// Snapshot round-trip across layers.
		snap, err := layered.EncodeSnapshot()
		if err != nil {
			t.Fatalf("EncodeSnapshot: %v", err)
		}
		dec, err := DecodeSnapshot(snap)
		if err != nil {
			t.Fatalf("DecodeSnapshot: %v", err)
		}
		if dec.Commit() != layered.Commit() {
			t.Fatalf("seed %d: snapshot round-trip changed the commit root", seed)
		}
	}
}

func TestDeepLayerChainReads(t *testing.T) {
	st := New()
	a := addrN(7)
	st.Credit(a, 1)
	st.SetCode(a, []byte("native:thing"))
	st.SetStorage(a, []byte("deep"), []byte("value"))
	for i := 0; i < 200; i++ {
		st = st.Copy()
	}
	if st.Depth() != 200 {
		t.Fatalf("depth = %d", st.Depth())
	}
	if st.Balance(a) != 1 || string(st.Code(a)) != "native:thing" ||
		string(st.Storage(a, []byte("deep"))) != "value" || !st.IsContract(a) {
		t.Fatal("reads through a deep layer chain lost data")
	}
}

func TestFailedInvokeOnLayerKeepsParentClean(t *testing.T) {
	// The contract-revert path (stage on child layer, drop on failure)
	// must also work when s itself is already a diff layer.
	base := New()
	base.SetExecutor(&stubExecutor{failInvoke: true})
	k, alice := keyAddr("cow-alice")
	_, miner := keyAddr("cow-miner")
	_, target := keyAddr("cow-contract")
	base.Credit(alice, 100)

	layer := base.Copy()
	invoke := &types.Transaction{Kind: types.TxInvoke, From: alice, To: target, Value: 20, Fee: 4, Nonce: 0}
	if err := invoke.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := layer.ApplyTx(invoke, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("failed invoke must not be OK")
	}
	if layer.Storage(target, []byte("poison")) != nil {
		t.Fatal("contract effects must revert on the layer")
	}
	if layer.Balance(alice) != 96 || layer.Balance(miner) != 4 {
		t.Fatalf("balances %d/%d", layer.Balance(alice), layer.Balance(miner))
	}
	if base.Balance(alice) != 100 || base.Balance(miner) != 0 {
		t.Fatal("ApplyTx on a layer leaked into the parent")
	}
}
