package state

import (
	"bytes"
	"fmt"
	"sort"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/wire"
)

// Snapshot wire format: a binary, deterministic full-state export, used
// by fast-sync (Section 5.4's bootstrap problem: joining peers should
// not need the whole blockchain) and by WAL checkpoints. Three sections
// — accounts, code, storage — each length-counted and sorted by key, so
// one state has exactly one snapshot encoding: equal states produce
// byte-identical snapshots, and the decoder rejects unsorted or
// duplicated keys along with any trailing bytes.
const (
	// SnapshotCodecVersion tags the encoding; bump on layout change.
	SnapshotCodecVersion = 1
	// maxSnapshotItems bounds each section's claimed element count.
	maxSnapshotItems = 1 << 24
	// maxSnapshotCodeLen bounds one contract blob.
	maxSnapshotCodeLen = 1 << 24
	// maxSnapshotKeyLen bounds one storage slot key.
	maxSnapshotKeyLen = 1 << 16
	// maxSnapshotValLen bounds one storage slot value.
	maxSnapshotValLen = 1 << 24
)

// EncodeSnapshot serializes the complete state (merged across all diff
// layers). The result is verifiable: DecodeSnapshot(...).Commit()
// equals this state's Commit(), and equal states encode byte-equal.
func (s *State) EncodeSnapshot() ([]byte, error) {
	var w wire.Buffer
	w.U8(SnapshotCodecVersion)

	// Accounts, sorted by address.
	type accEntry struct {
		addr cryptoutil.Address
		acc  Account
	}
	var accs []accEntry
	s.forEachAccount(func(a cryptoutil.Address, acc Account) {
		accs = append(accs, accEntry{a, acc})
	})
	sort.Slice(accs, func(i, j int) bool {
		return bytes.Compare(accs[i].addr[:], accs[j].addr[:]) < 0
	})
	w.U32(uint32(len(accs)))
	for _, e := range accs {
		w.Raw(e.addr[:])
		w.U64(e.acc.Balance)
		w.U64(e.acc.Nonce)
		w.Raw(e.acc.Code[:])
	}

	// Code blobs, sorted by hash.
	code := make(map[cryptoutil.Hash][]byte)
	for cur := s; cur != nil; cur = cur.parent {
		for h, blob := range cur.code {
			if _, ok := code[h]; !ok {
				code[h] = blob
			}
		}
	}
	hashes := make([]cryptoutil.Hash, 0, len(code))
	for h := range code {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		return bytes.Compare(hashes[i][:], hashes[j][:]) < 0
	})
	w.U32(uint32(len(hashes)))
	for _, h := range hashes {
		w.Raw(h[:])
		w.Blob(code[h])
	}

	// Storage, addresses sorted (storageAddrs sorts), slots sorted by key.
	type slotEntry struct {
		k string
		v []byte
	}
	var stAddrs []cryptoutil.Address
	slotsByAddr := make(map[cryptoutil.Address][]slotEntry)
	for _, a := range s.storageAddrs() {
		var slots []slotEntry
		s.forEachStorage(a, func(k string, v []byte) {
			slots = append(slots, slotEntry{k, v})
		})
		if len(slots) == 0 {
			continue
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i].k < slots[j].k })
		stAddrs = append(stAddrs, a)
		slotsByAddr[a] = slots
	}
	w.U32(uint32(len(stAddrs)))
	for _, a := range stAddrs {
		w.Raw(a[:])
		slots := slotsByAddr[a]
		w.U32(uint32(len(slots)))
		for _, sl := range slots {
			w.String(sl.k)
			w.Blob(sl.v)
		}
	}
	return w.Bytes(), nil
}

// DecodeSnapshot reconstructs a state from EncodeSnapshot output. It
// accepts only the canonical form: sections must be strictly sorted
// with no duplicate keys and no trailing bytes, so a snapshot that
// decodes successfully re-encodes byte-identically.
func DecodeSnapshot(data []byte) (*State, error) {
	rd := wire.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != SnapshotCodecVersion {
		return nil, fmt.Errorf("state: unknown snapshot version %d", v)
	}
	s := New()

	n := rd.Count(maxSnapshotItems)
	var prevAddr cryptoutil.Address
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		var a cryptoutil.Address
		var acc Account
		rd.Raw(a[:])
		acc.Balance = rd.U64()
		acc.Nonce = rd.U64()
		rd.Raw(acc.Code[:])
		if rd.Err() != nil {
			break
		}
		if i > 0 && bytes.Compare(prevAddr[:], a[:]) >= 0 {
			return nil, fmt.Errorf("state: snapshot accounts not strictly sorted")
		}
		prevAddr = a
		s.accounts[a] = acc
	}

	n = rd.Count(maxSnapshotItems)
	var prevHash cryptoutil.Hash
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		var h cryptoutil.Hash
		rd.Raw(h[:])
		blob := rd.Blob(maxSnapshotCodeLen)
		if rd.Err() != nil {
			break
		}
		if i > 0 && bytes.Compare(prevHash[:], h[:]) >= 0 {
			return nil, fmt.Errorf("state: snapshot code not strictly sorted")
		}
		prevHash = h
		s.code[h] = blob
	}

	n = rd.Count(maxSnapshotItems)
	var prevStAddr cryptoutil.Address
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		var a cryptoutil.Address
		rd.Raw(a[:])
		if rd.Err() != nil {
			break
		}
		if i > 0 && bytes.Compare(prevStAddr[:], a[:]) >= 0 {
			return nil, fmt.Errorf("state: snapshot storage not strictly sorted")
		}
		prevStAddr = a
		cnt := rd.Count(maxSnapshotItems)
		if cnt == 0 && rd.Err() == nil {
			return nil, fmt.Errorf("state: snapshot storage section empty for %s", a.Hex())
		}
		m := make(map[string][]byte, cnt)
		prevKey := ""
		for j := uint32(0); j < cnt && rd.Err() == nil; j++ {
			k := rd.String(maxSnapshotKeyLen)
			v := rd.Blob(maxSnapshotValLen)
			if rd.Err() != nil {
				break
			}
			if j > 0 && prevKey >= k {
				return nil, fmt.Errorf("state: snapshot slots not strictly sorted")
			}
			prevKey = k
			m[k] = v
		}
		if rd.Err() == nil {
			s.storage[a] = m
		}
	}

	if err := rd.Close(); err != nil {
		return nil, fmt.Errorf("state: decode snapshot: %w", err)
	}
	return s, nil
}
