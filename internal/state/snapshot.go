package state

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dcsledger/internal/cryptoutil"
)

// snapshot is the wire form of a full state export, used by fast-sync
// (Section 5.4's bootstrap problem: joining peers should not need the
// whole blockchain).
type snapshot struct {
	Accounts map[string]Account           `json:"accounts"`
	Code     map[string]string            `json:"code"`
	Storage  map[string]map[string]string `json:"storage"`
}

// EncodeSnapshot serializes the complete state (merged across all diff
// layers). The result is verifiable: DecodeSnapshot(...).Commit()
// equals this state's Commit().
func (s *State) EncodeSnapshot() ([]byte, error) {
	snap := snapshot{
		Accounts: make(map[string]Account, len(s.accounts)),
		Code:     make(map[string]string, len(s.code)),
		Storage:  make(map[string]map[string]string, len(s.storage)),
	}
	s.forEachAccount(func(a cryptoutil.Address, acc Account) {
		snap.Accounts[a.Hex()] = acc
	})
	for cur := s; cur != nil; cur = cur.parent {
		for h, code := range cur.code {
			if _, ok := snap.Code[h.Hex()]; ok {
				continue
			}
			snap.Code[h.Hex()] = hex.EncodeToString(code)
		}
	}
	for _, a := range s.storageAddrs() {
		var slots map[string]string
		s.forEachStorage(a, func(k string, v []byte) {
			if slots == nil {
				slots = make(map[string]string)
			}
			slots[hex.EncodeToString([]byte(k))] = hex.EncodeToString(v)
		})
		if slots != nil {
			snap.Storage[a.Hex()] = slots
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("state: encode snapshot: %w", err)
	}
	return data, nil
}

// DecodeSnapshot reconstructs a state from EncodeSnapshot output.
func DecodeSnapshot(data []byte) (*State, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("state: decode snapshot: %w", err)
	}
	s := New()
	for ah, acc := range snap.Accounts {
		a, err := cryptoutil.AddressFromHex(ah)
		if err != nil {
			return nil, fmt.Errorf("state: snapshot account: %w", err)
		}
		s.accounts[a] = acc
	}
	for hh, codeHex := range snap.Code {
		h, err := cryptoutil.HashFromHex(hh)
		if err != nil {
			return nil, fmt.Errorf("state: snapshot code hash: %w", err)
		}
		code, err := hex.DecodeString(codeHex)
		if err != nil {
			return nil, fmt.Errorf("state: snapshot code: %w", err)
		}
		s.code[h] = code
	}
	for ah, slots := range snap.Storage {
		a, err := cryptoutil.AddressFromHex(ah)
		if err != nil {
			return nil, fmt.Errorf("state: snapshot storage addr: %w", err)
		}
		m := make(map[string][]byte, len(slots))
		for kh, vh := range slots {
			k, err := hex.DecodeString(kh)
			if err != nil {
				return nil, fmt.Errorf("state: snapshot slot key: %w", err)
			}
			v, err := hex.DecodeString(vh)
			if err != nil {
				return nil, fmt.Errorf("state: snapshot slot value: %w", err)
			}
			m[string(k)] = v
		}
		s.storage[a] = m
	}
	return s, nil
}
