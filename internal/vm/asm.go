package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrAssemble reports an assembly-time failure.
var ErrAssemble = errors.New("vm: assembly error")

// Assemble translates SVM assembly into bytecode. Syntax, one statement
// per line:
//
//	; comment
//	label:              ; jump target
//	PUSH 42             ; decimal immediate (8 bytes)
//	PUSH @label         ; push a label's bytecode offset
//	JUMPI               ; plain opcodes
//
// Example — a counter whose invoke increments storage slot 0:
//
//	PUSH 0
//	PUSH 0
//	SLOAD      ; load slot 0
//	PUSH 1
//	ADD
//	SSTORE     ; slot0 = slot0 + 1
//	STOP
func Assemble(src string) ([]byte, error) {
	type fixup struct {
		offset int
		label  string
		line   int
	}
	var (
		code   []byte
		labels = make(map[string]uint64)
		fixups []fixup
	)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("%w: line %d: duplicate label %q", ErrAssemble, lineNo+1, name)
			}
			labels[name] = uint64(len(code))
			continue
		}
		fields := strings.Fields(line)
		mnemonic := strings.ToUpper(fields[0])
		op, ok := opByName(mnemonic)
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown mnemonic %q", ErrAssemble, lineNo+1, fields[0])
		}
		code = append(code, byte(op))
		switch op {
		case PUSH:
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: PUSH needs one operand", ErrAssemble, lineNo+1)
			}
			var imm [8]byte
			if strings.HasPrefix(fields[1], "@") {
				fixups = append(fixups, fixup{offset: len(code), label: fields[1][1:], line: lineNo + 1})
			} else {
				v, err := strconv.ParseUint(fields[1], 0, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrAssemble, lineNo+1, err)
				}
				binary.BigEndian.PutUint64(imm[:], v)
			}
			code = append(code, imm[:]...)
		case PUSHW:
			return nil, fmt.Errorf("%w: line %d: PUSHW has no textual form; use PUSH", ErrAssemble, lineNo+1)
		default:
			if len(fields) != 1 {
				return nil, fmt.Errorf("%w: line %d: %s takes no operand", ErrAssemble, lineNo+1, mnemonic)
			}
		}
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("%w: line %d: undefined label %q", ErrAssemble, f.line, f.label)
		}
		binary.BigEndian.PutUint64(code[f.offset:f.offset+8], target)
	}
	return code, nil
}

func opByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return op, true
		}
	}
	return 0, false
}

// MustAssemble panics on assembly failure; for package-level program
// constants in examples and tests.
func MustAssemble(src string) []byte {
	code, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return code
}
