package vm

import (
	"encoding/binary"
	"fmt"
)

// This file implements the contract-validation tooling the paper calls
// for in Section 5.3 ("there is a need to develop validation tools which
// can formally analyze smart contracts for bugs and incorrect behavior"):
// a static analyzer that checks SVM bytecode *before* it is committed to
// the chain, where incorrect contracts have financial consequences.

// IssueKind classifies a static finding.
type IssueKind string

// Static issue kinds.
const (
	IssueTruncated    IssueKind = "truncated-immediate"
	IssueUnknownOp    IssueKind = "unknown-opcode"
	IssueBadJump      IssueKind = "invalid-jump-target"
	IssueUnderflow    IssueKind = "stack-underflow"
	IssueNoTerminator IssueKind = "missing-terminator"
	IssueWriteOp      IssueKind = "state-write"
)

// Issue is one static finding, anchored at a bytecode offset.
type Issue struct {
	Kind   IssueKind `json:"kind"`
	Offset int       `json:"offset"`
	Detail string    `json:"detail"`
}

func (i Issue) String() string {
	return fmt.Sprintf("%s at %d: %s", i.Kind, i.Offset, i.Detail)
}

// Report is the analyzer's result.
type Report struct {
	// Instructions is the number of decoded instructions.
	Instructions int
	// Issues are the findings; an empty slice means the code passed.
	Issues []Issue
	// HasLoop reports a cycle in the control-flow graph.
	HasLoop bool
	// GasBound is a worst-case gas estimate for loop-free code
	// (0 when HasLoop: unbounded without runtime gas limits).
	GasBound uint64
	// Writes reports whether the code can modify state (SSTORE,
	// TRANSFER, LOG) — false means it is safe as a constant call.
	Writes bool
}

// OK reports whether no issues were found.
func (r *Report) OK() bool { return len(r.Issues) == 0 }

// stackEffect returns (pops, pushes) for an opcode.
func stackEffect(op Op) (pops, pushes int) {
	switch op {
	case PUSH, PUSHW, CALLER, ADDRESS, CALLVALUE, TIMESTAMP, ARGLEN:
		return 0, 1
	case POP, JUMP:
		return 1, 0
	case DUP:
		return 1, 2
	case SWAP:
		return 2, 2
	case ADD, SUB, MUL, DIV, MOD, LT, GT, EQ, AND, OR, XOR:
		return 2, 1
	case ISZERO, NOT, SLOAD, BALANCE, ARG:
		return 1, 1
	case JUMPI, SSTORE, TRANSFER, LOG:
		return 2, 0
	case RETURN:
		return 1, 0
	case STOP, REVERT:
		return 0, 0
	default:
		return 0, 0
	}
}

// instruction is one decoded operation.
type instruction struct {
	op     Op
	offset int
	next   int   // offset of the fallthrough instruction
	imm    *Word // immediate for PUSH/PUSHW
}

func terminates(op Op) bool {
	return op == STOP || op == RETURN || op == REVERT || op == JUMP
}

// Analyze statically checks bytecode: decodability, jump-target
// validity, guaranteed stack underflows on any reachable path,
// fall-off-the-end control flow, loops, and a worst-case gas bound for
// loop-free code. It is sound for code produced by Assemble (whose
// jumps are PUSH-immediate) and conservative otherwise: a jump whose
// target cannot be determined statically is reported as an issue.
func Analyze(code []byte) *Report {
	r := &Report{}
	if len(code) == 0 {
		r.Issues = append(r.Issues, Issue{Kind: IssueNoTerminator, Offset: 0, Detail: "empty code"})
		return r
	}

	// Pass 1: decode, recording instruction boundaries.
	instrs := make(map[int]*instruction)
	order := []int{}
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		if _, known := gasCost[op]; !known {
			r.Issues = append(r.Issues, Issue{Kind: IssueUnknownOp, Offset: pc,
				Detail: fmt.Sprintf("opcode %d", code[pc])})
			return r
		}
		ins := &instruction{op: op, offset: pc}
		size := 1
		switch op {
		case PUSH:
			if pc+9 > len(code) {
				r.Issues = append(r.Issues, Issue{Kind: IssueTruncated, Offset: pc, Detail: "PUSH needs 8 bytes"})
				return r
			}
			w := WordFromUint64(binary.BigEndian.Uint64(code[pc+1 : pc+9]))
			ins.imm = &w
			size = 9
		case PUSHW:
			if pc+33 > len(code) {
				r.Issues = append(r.Issues, Issue{Kind: IssueTruncated, Offset: pc, Detail: "PUSHW needs 32 bytes"})
				return r
			}
			var w Word
			copy(w[:], code[pc+1:pc+33])
			ins.imm = &w
			size = 33
		case SSTORE, TRANSFER, LOG:
			r.Writes = true
		}
		ins.next = pc + size
		instrs[pc] = ins
		order = append(order, pc)
		pc += size
	}
	r.Instructions = len(order)

	// The final instruction must not fall off the end.
	last := instrs[order[len(order)-1]]
	if !terminates(last.op) && last.op != JUMPI {
		r.Issues = append(r.Issues, Issue{Kind: IssueNoTerminator, Offset: last.offset,
			Detail: fmt.Sprintf("code ends with %s", last.op)})
	} else if last.op == JUMPI {
		r.Issues = append(r.Issues, Issue{Kind: IssueNoTerminator, Offset: last.offset,
			Detail: "conditional jump can fall off the end"})
	}

	// Pass 2: abstract interpretation over (pc, depth) states. Jump
	// targets are resolvable when the jump is immediately preceded by a
	// PUSH (the assembler's only jump shape).
	type nodeState struct {
		pc    int
		depth int
	}
	seen := make(map[nodeState]bool)
	onPath := make(map[int]int) // pc → DFS mark for loop detection
	var maxGasFrom func(st nodeState, prevImm *Word) uint64

	const depthCap = maxStack
	maxGasFrom = func(st nodeState, prevImm *Word) uint64 {
		if seen[nodeState{pc: st.pc, depth: st.depth}] {
			// Revisiting the same abstract state: cycle.
			if onPath[st.pc] > 0 {
				r.HasLoop = true
			}
			return 0
		}
		seen[nodeState{pc: st.pc, depth: st.depth}] = true
		ins, ok := instrs[st.pc]
		if !ok {
			r.Issues = append(r.Issues, Issue{Kind: IssueBadJump, Offset: st.pc,
				Detail: "control flow reaches a non-instruction offset"})
			return 0
		}
		onPath[st.pc]++
		defer func() { onPath[st.pc]-- }()

		pops, pushes := stackEffect(ins.op)
		if st.depth < pops {
			r.Issues = append(r.Issues, Issue{Kind: IssueUnderflow, Offset: st.pc,
				Detail: fmt.Sprintf("%s needs %d operands, stack has %d", ins.op, pops, st.depth)})
			return gasCost[ins.op]
		}
		depth := st.depth - pops + pushes
		if depth > depthCap {
			depth = depthCap
		}
		g := gasCost[ins.op]

		switch ins.op {
		case STOP, RETURN, REVERT:
			return g
		case JUMP, JUMPI:
			var branch uint64
			if prevImm == nil {
				r.Issues = append(r.Issues, Issue{Kind: IssueBadJump, Offset: ins.offset,
					Detail: "jump target not statically known (no preceding PUSH)"})
			} else {
				target := int(prevImm.Uint64())
				if _, ok := instrs[target]; !ok {
					r.Issues = append(r.Issues, Issue{Kind: IssueBadJump, Offset: ins.offset,
						Detail: fmt.Sprintf("target %d is not an instruction boundary", target)})
				} else {
					branch = maxGasFrom(nodeState{pc: target, depth: depth}, nil)
				}
			}
			if ins.op == JUMP {
				return g + branch
			}
			// JUMPI: worst case of taken vs fallthrough.
			fall := uint64(0)
			if ins.next < len(code) {
				fall = maxGasFrom(nodeState{pc: ins.next, depth: depth}, nil)
			}
			return g + max(branch, fall)
		default:
			if ins.next >= len(code) {
				return g // terminator issue already reported
			}
			var imm *Word
			if ins.op == PUSH || ins.op == PUSHW {
				imm = ins.imm
			}
			return g + maxGasFrom(nodeState{pc: ins.next, depth: depth}, imm)
		}
	}
	bound := maxGasFrom(nodeState{pc: 0, depth: 0}, nil)
	if !r.HasLoop {
		r.GasBound = bound
	}
	return r
}
