package vm

import (
	"errors"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
)

func env(st *state.State) *Env {
	return &Env{
		State:    st,
		Self:     cryptoutil.KeyFromSeed([]byte("contract")).Address(),
		Caller:   cryptoutil.KeyFromSeed([]byte("caller")).Address(),
		GasLimit: 100000,
	}
}

func run(t *testing.T, src string, e *Env) *Result {
	t.Helper()
	code, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, err := Execute(code, e)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint64
	}{
		{name: "add", src: "PUSH 2\nPUSH 3\nADD\nRETURN", want: 5},
		{name: "sub", src: "PUSH 10\nPUSH 4\nSUB\nRETURN", want: 6},
		{name: "mul", src: "PUSH 6\nPUSH 7\nMUL\nRETURN", want: 42},
		{name: "div", src: "PUSH 20\nPUSH 6\nDIV\nRETURN", want: 3},
		{name: "mod", src: "PUSH 20\nPUSH 6\nMOD\nRETURN", want: 2},
		{name: "lt true", src: "PUSH 1\nPUSH 2\nLT\nRETURN", want: 1},
		{name: "gt false", src: "PUSH 1\nPUSH 2\nGT\nRETURN", want: 0},
		{name: "eq", src: "PUSH 5\nPUSH 5\nEQ\nRETURN", want: 1},
		{name: "iszero", src: "PUSH 0\nISZERO\nRETURN", want: 1},
		{name: "and", src: "PUSH 12\nPUSH 10\nAND\nRETURN", want: 8},
		{name: "or", src: "PUSH 12\nPUSH 10\nOR\nRETURN", want: 14},
		{name: "xor", src: "PUSH 12\nPUSH 10\nXOR\nRETURN", want: 6},
		{name: "dup", src: "PUSH 3\nDUP\nADD\nRETURN", want: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := run(t, tt.src, env(state.New()))
			if !res.HasRet || res.Return.Uint64() != tt.want {
				t.Fatalf("Return = %d, want %d", res.Return.Uint64(), tt.want)
			}
		})
	}
}

func TestSwapOrder(t *testing.T) {
	// Stack [10, 3] → SWAP → [3, 10] → SUB computes 3-10 (wrapping).
	res := run(t, "PUSH 10\nPUSH 3\nSWAP\nSUB\nRETURN", env(state.New()))
	got := res.Return.big()
	if got.BitLen() < 250 {
		t.Fatalf("expected wrapped value, got %v", got)
	}
}

func TestSubWraps(t *testing.T) {
	res := run(t, "PUSH 3\nPUSH 5\nSUB\nRETURN", env(state.New()))
	// 3 - 5 mod 2^256 = 2^256 - 2, i.e. all 1s except last byte 0xfe.
	if res.Return[0] != 0xff || res.Return[31] != 0xfe {
		t.Fatalf("wrap result = %x", res.Return)
	}
}

func TestDivByZero(t *testing.T) {
	code := MustAssemble("PUSH 1\nPUSH 0\nDIV\nSTOP")
	if _, err := Execute(code, env(state.New())); !errors.Is(err, ErrDivByZero) {
		t.Fatalf("want ErrDivByZero, got %v", err)
	}
}

func TestJumpLoop(t *testing.T) {
	// Sum 1..5 with a loop: slot0 = counter, slot1 = acc.
	src := `
		PUSH 5          ; counter
	loop:
		DUP
		ISZERO
		PUSH @done
		JUMPI
		DUP             ; counter counter
		PUSH 1
		SLOAD           ; load acc from slot 1
		ADD             ; counter + acc
		PUSH 1
		SWAP
		SSTORE          ; slot1 = acc+counter
		PUSH 1
		SUB             ; counter-1
		PUSH @loop
		JUMP
	done:
		POP
		PUSH 1
		SLOAD
		RETURN
	`
	res := run(t, src, env(state.New()))
	if res.Return.Uint64() != 15 {
		t.Fatalf("loop sum = %d, want 15", res.Return.Uint64())
	}
}

func TestBadJump(t *testing.T) {
	code := MustAssemble("PUSH 9999\nJUMP")
	if _, err := Execute(code, env(state.New())); !errors.Is(err, ErrBadJump) {
		t.Fatalf("want ErrBadJump, got %v", err)
	}
}

func TestStorageRoundTrip(t *testing.T) {
	st := state.New()
	e := env(st)
	run(t, "PUSH 7\nPUSH 99\nSSTORE\nSTOP", e) // slot 7 = 99
	res := run(t, "PUSH 7\nSLOAD\nRETURN", e)
	if res.Return.Uint64() != 99 {
		t.Fatalf("SLOAD = %d, want 99", res.Return.Uint64())
	}
}

func TestEnvOpcodes(t *testing.T) {
	st := state.New()
	e := env(st)
	e.Value = 77
	e.Time = 123456
	e.Args = []Word{WordFromUint64(11), WordFromUint64(22)}

	if got := run(t, "CALLVALUE\nRETURN", e).Return.Uint64(); got != 77 {
		t.Fatalf("CALLVALUE = %d", got)
	}
	if got := run(t, "TIMESTAMP\nRETURN", e).Return.Uint64(); got != 123456 {
		t.Fatalf("TIMESTAMP = %d", got)
	}
	if got := run(t, "PUSH 1\nARG\nRETURN", e).Return.Uint64(); got != 22 {
		t.Fatalf("ARG 1 = %d", got)
	}
	if got := run(t, "ARGLEN\nRETURN", e).Return.Uint64(); got != 2 {
		t.Fatalf("ARGLEN = %d", got)
	}
	if got := run(t, "CALLER\nRETURN", e).Return.Address(); got != e.Caller {
		t.Fatalf("CALLER = %s", got.Short())
	}
	if got := run(t, "ADDRESS\nRETURN", e).Return.Address(); got != e.Self {
		t.Fatalf("ADDRESS = %s", got.Short())
	}
}

func TestTransferMovesValue(t *testing.T) {
	st := state.New()
	e := env(st)
	st.Credit(e.Self, 100)
	code := MustAssemble("CALLER\nPUSH 40\nTRANSFER\nSTOP")
	if _, err := Execute(code, e); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if st.Balance(e.Self) != 60 || st.Balance(e.Caller) != 40 {
		t.Fatalf("balances %d/%d", st.Balance(e.Self), st.Balance(e.Caller))
	}
	// Transfer beyond balance fails.
	code2 := MustAssemble("CALLER\nPUSH 1000\nTRANSFER\nSTOP")
	if _, err := Execute(code2, e); err == nil {
		t.Fatal("overdraft transfer must fail")
	}
}

func TestOutOfGas(t *testing.T) {
	st := state.New()
	e := env(st)
	e.GasLimit = 5
	code := MustAssemble("PUSH 1\nPUSH 2\nADD\nSTOP")
	res, err := Execute(code, e)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("want ErrOutOfGas, got %v", err)
	}
	if res.GasUsed != e.GasLimit {
		t.Fatalf("GasUsed = %d, want full limit", res.GasUsed)
	}
}

func TestGasAccounting(t *testing.T) {
	res := run(t, "PUSH 1\nPUSH 2\nADD\nSTOP", env(state.New()))
	want := gasCost[PUSH]*2 + gasCost[ADD] + gasCost[STOP]
	if res.GasUsed != want {
		t.Fatalf("GasUsed = %d, want %d", res.GasUsed, want)
	}
}

func TestReadOnlyProtection(t *testing.T) {
	st := state.New()
	e := env(st)
	e.ReadOnly = true
	for _, src := range []string{
		"PUSH 1\nPUSH 2\nSSTORE\nSTOP",
		"CALLER\nPUSH 1\nTRANSFER\nSTOP",
		"PUSH 1\nPUSH 2\nLOG\nSTOP",
	} {
		if _, err := Execute(MustAssemble(src), e); !errors.Is(err, ErrWriteProtected) {
			t.Fatalf("want ErrWriteProtected for %q, got %v", src, err)
		}
	}
	// Reads are fine.
	if _, err := Execute(MustAssemble("PUSH 0\nSLOAD\nRETURN"), e); err != nil {
		t.Fatalf("read in constant call: %v", err)
	}
}

func TestRevert(t *testing.T) {
	if _, err := Execute(MustAssemble("REVERT"), env(state.New())); !errors.Is(err, ErrReverted) {
		t.Fatalf("want ErrReverted, got %v", err)
	}
}

func TestStackErrors(t *testing.T) {
	if _, err := Execute(MustAssemble("ADD"), env(state.New())); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("want ErrStackUnderflow, got %v", err)
	}
	// Overflow: push in a loop.
	src := `
	loop:
		PUSH 1
		PUSH @loop
		JUMP
	`
	e := env(state.New())
	e.GasLimit = 1 << 30
	if _, err := Execute(MustAssemble(src), e); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("want ErrStackOverflow, got %v", err)
	}
}

func TestUnknownOpcodeAndTruncated(t *testing.T) {
	if _, err := Execute([]byte{255}, env(state.New())); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("want ErrBadOpcode, got %v", err)
	}
	if _, err := Execute([]byte{byte(PUSH), 1, 2}, env(state.New())); !errors.Is(err, ErrTruncatedCode) {
		t.Fatalf("want ErrTruncatedCode, got %v", err)
	}
}

func TestEvents(t *testing.T) {
	res := run(t, "PUSH 7\nPUSH 42\nLOG\nSTOP", env(state.New()))
	if len(res.Events) != 1 {
		t.Fatalf("events = %d", len(res.Events))
	}
	ev := res.Events[0]
	if ev.Topic.Uint64() != 7 || ev.Value.Uint64() != 42 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{name: "unknown mnemonic", src: "FROB"},
		{name: "push without operand", src: "PUSH"},
		{name: "operand on plain op", src: "ADD 3"},
		{name: "undefined label", src: "PUSH @nowhere\nJUMP"},
		{name: "duplicate label", src: "a:\na:\nSTOP"},
		{name: "bad number", src: "PUSH zebra"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble(tt.src); !errors.Is(err, ErrAssemble) {
				t.Fatalf("want ErrAssemble, got %v", err)
			}
		})
	}
}

func TestWordHelpers(t *testing.T) {
	a := cryptoutil.KeyFromSeed([]byte("w")).Address()
	if WordFromAddress(a).Address() != a {
		t.Fatal("address round trip failed")
	}
	if WordFromUint64(12345).Uint64() != 12345 {
		t.Fatal("uint64 round trip failed")
	}
	args := PackArgs(WordFromUint64(1), WordFromUint64(2))
	back := UnpackArgs(args)
	if len(back) != 2 || back[1].Uint64() != 2 {
		t.Fatal("args round trip failed")
	}
	if UnpackArgs(nil) != nil {
		t.Fatal("empty args should unpack to nil")
	}
}
