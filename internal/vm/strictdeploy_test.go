package vm

import (
	"errors"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

func TestStrictDeployRejectsBrokenContracts(t *testing.T) {
	st := state.New()
	ex := NewExecutor()
	ex.StrictDeploy = true
	st.SetExecutor(ex)
	k := cryptoutil.KeyFromSeed([]byte("dev"))
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()
	st.Credit(k.Address(), 1_000_000)

	deploy := func(nonce uint64, code []byte) *state.Receipt {
		t.Helper()
		tx := &types.Transaction{
			Kind: types.TxDeploy, From: k.Address(), Nonce: nonce,
			Fee: 100, GasLimit: 100_000, Data: code,
		}
		if err := tx.Sign(k); err != nil {
			t.Fatalf("Sign: %v", err)
		}
		rec, err := st.ApplyTx(tx, miner)
		if err != nil {
			t.Fatalf("ApplyTx: %v", err)
		}
		return rec
	}

	// A contract that underflows the stack is refused before it ever
	// reaches the chain.
	rec := deploy(0, MustAssemble("ADD\nSTOP"))
	if rec.OK {
		t.Fatal("strict deploy must reject an underflowing contract")
	}
	// A clean contract still deploys.
	rec = deploy(1, MustAssemble("PUSH 0\nPUSH 1\nSSTORE\nSTOP"))
	if !rec.OK {
		t.Fatalf("clean contract rejected: %+v", rec)
	}
	// Without strict mode the broken contract would have been accepted
	// (and failed at invoke time, costing its caller gas).
	lax := NewExecutor()
	st2 := state.New()
	st2.SetExecutor(lax)
	st2.Credit(k.Address(), 1_000_000)
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: k.Address(), Nonce: 0,
		Fee: 100, GasLimit: 100_000, Data: MustAssemble("ADD\nSTOP"),
	}
	if err := tx.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec2, err := st2.ApplyTx(tx, miner)
	if err != nil || !rec2.OK {
		t.Fatalf("lax deploy should accept: %v %+v", err, rec2)
	}
}

func TestErrRejectedByAnalysisMatchable(t *testing.T) {
	st := state.New()
	ex := NewExecutor()
	ex.StrictDeploy = true
	tx := &types.Transaction{
		Kind: types.TxDeploy, From: cryptoutil.ZeroAddress,
		GasLimit: 100_000, Data: MustAssemble("ADD\nSTOP"),
	}
	_, _, err := ex.Deploy(st, tx)
	if !errors.Is(err, ErrRejectedByAnalysis) {
		t.Fatalf("want ErrRejectedByAnalysis, got %v", err)
	}
}
