package vm

import (
	"errors"
	"testing"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// counterSrc is a contract whose invoke adds arg0 to slot 0, logs the
// new total, and whose constant call returns slot 0.
const counterSrc = `
	PUSH 0
	SLOAD       ; current total
	PUSH 0
	ARG         ; amount
	ADD
	DUP
	PUSH 0
	SWAP
	SSTORE      ; slot0 = total+amount
	PUSH 1
	SWAP
	LOG         ; topic 1, new total
	STOP
`

// querySrc reads slot 0 (constant call target).
const querySrc = "PUSH 0\nSLOAD\nRETURN"

func deployAndInvoke(t *testing.T) (*Executor, *state.State, cryptoutil.Address) {
	t.Helper()
	st := state.New()
	ex := NewExecutor()
	st.SetExecutor(ex)
	k := cryptoutil.KeyFromSeed([]byte("owner"))
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()
	st.Credit(k.Address(), 1_000_000)

	deploy := &types.Transaction{
		Kind:     types.TxDeploy,
		From:     k.Address(),
		Nonce:    0,
		Fee:      5000,
		GasLimit: 100000,
		Data:     MustAssemble(counterSrc),
	}
	if err := deploy.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := st.ApplyTx(deploy, miner)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if !rec.OK {
		t.Fatalf("deploy receipt: %+v", rec)
	}
	return ex, st, rec.ContractAddress
}

func TestDeployInvokeConstantCall(t *testing.T) {
	ex, st, contract := deployAndInvoke(t)
	k := cryptoutil.KeyFromSeed([]byte("owner"))
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()

	for i, amount := range []uint64{10, 32} {
		invoke := &types.Transaction{
			Kind:     types.TxInvoke,
			From:     k.Address(),
			To:       contract,
			Nonce:    uint64(i + 1),
			Fee:      1000,
			GasLimit: 10000,
			Data:     PackArgs(WordFromUint64(amount)),
		}
		if err := invoke.Sign(k); err != nil {
			t.Fatalf("Sign: %v", err)
		}
		rec, err := st.ApplyTx(invoke, miner)
		if err != nil {
			t.Fatalf("invoke: %v", err)
		}
		if !rec.OK || rec.GasUsed == 0 {
			t.Fatalf("invoke receipt: %+v", rec)
		}
	}

	// The committed total lives in storage slot 0.
	var w Word
	copy(w[:], st.Storage(contract, make([]byte, 32)))
	if w.Uint64() != 42 {
		t.Fatalf("slot0 = %d, want 42", w.Uint64())
	}
	// Events were accumulated.
	evs := ex.DrainEvents()
	if len(evs) != 2 || evs[1].Value.Uint64() != 42 {
		t.Fatalf("events = %+v", evs)
	}
	if len(ex.DrainEvents()) != 0 {
		t.Fatal("DrainEvents must clear")
	}
}

func TestConstantCallReturnsValue(t *testing.T) {
	st := state.New()
	ex := NewExecutor()
	contract := cryptoutil.KeyFromSeed([]byte("c")).Address()
	st.SetCode(contract, MustAssemble(querySrc))
	key := make([]byte, 32)
	val := WordFromUint64(1234)
	st.SetStorage(contract, key, val[:])

	got, err := ex.ConstantCall(st, contract, cryptoutil.ZeroAddress, nil)
	if err != nil {
		t.Fatalf("ConstantCall: %v", err)
	}
	if got.Uint64() != 1234 {
		t.Fatalf("ConstantCall = %d", got.Uint64())
	}
	// Constant calls cost the caller nothing and change nothing.
	if st.Balance(cryptoutil.ZeroAddress) != 0 {
		t.Fatal("constant call must be free")
	}
}

func TestConstantCallCannotWrite(t *testing.T) {
	st := state.New()
	ex := NewExecutor()
	contract := cryptoutil.KeyFromSeed([]byte("c")).Address()
	st.SetCode(contract, MustAssemble("PUSH 0\nPUSH 1\nSSTORE\nSTOP"))
	if _, err := ex.ConstantCall(st, contract, cryptoutil.ZeroAddress, nil); !errors.Is(err, ErrWriteProtected) {
		t.Fatalf("want ErrWriteProtected, got %v", err)
	}
}

func TestInvokeNoCode(t *testing.T) {
	st := state.New()
	ex := NewExecutor()
	st.SetExecutor(ex)
	k := cryptoutil.KeyFromSeed([]byte("owner"))
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()
	st.Credit(k.Address(), 1000)
	invoke := &types.Transaction{
		Kind: types.TxInvoke, From: k.Address(),
		To:    cryptoutil.KeyFromSeed([]byte("empty")).Address(),
		Nonce: 0, Fee: 10, GasLimit: 1000,
	}
	if err := invoke.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := st.ApplyTx(invoke, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("invoking empty address must fail")
	}
}

func TestDeployGasLimit(t *testing.T) {
	st := state.New()
	ex := NewExecutor()
	st.SetExecutor(ex)
	k := cryptoutil.KeyFromSeed([]byte("owner"))
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()
	st.Credit(k.Address(), 1000)
	deploy := &types.Transaction{
		Kind: types.TxDeploy, From: k.Address(), Nonce: 0, Fee: 10,
		GasLimit: 1, // too small for the code
		Data:     MustAssemble(counterSrc),
	}
	if err := deploy.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := st.ApplyTx(deploy, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("deploy must fail when gas limit is below code cost")
	}
}

func TestContractAddressDeterministic(t *testing.T) {
	a := cryptoutil.KeyFromSeed([]byte("a")).Address()
	if ContractAddress(a, 1) != ContractAddress(a, 1) {
		t.Fatal("contract address must be deterministic")
	}
	if ContractAddress(a, 1) == ContractAddress(a, 2) {
		t.Fatal("nonce must vary contract address")
	}
}

func TestInvokeOutOfGasRevertsViaState(t *testing.T) {
	ex, st, contract := deployAndInvoke(t)
	_ = ex
	k := cryptoutil.KeyFromSeed([]byte("owner"))
	miner := cryptoutil.KeyFromSeed([]byte("miner")).Address()
	invoke := &types.Transaction{
		Kind: types.TxInvoke, From: k.Address(), To: contract,
		Nonce: 1, Fee: 100, GasLimit: 3, // far too little
		Data: PackArgs(WordFromUint64(5)),
	}
	if err := invoke.Sign(k); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	rec, err := st.ApplyTx(invoke, miner)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if rec.OK {
		t.Fatal("out-of-gas invoke must fail")
	}
	// Storage untouched.
	if got := st.Storage(contract, make([]byte, 32)); len(got) != 0 {
		t.Fatalf("storage must be reverted, got %x", got)
	}
}
