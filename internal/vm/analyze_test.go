package vm

import (
	"testing"

	"dcsledger/internal/state"
)

func analyzeSrc(t *testing.T, src string) *Report {
	t.Helper()
	return Analyze(MustAssemble(src))
}

func hasIssue(r *Report, kind IssueKind) bool {
	for _, i := range r.Issues {
		if i.Kind == kind {
			return true
		}
	}
	return false
}

func TestAnalyzeCleanProgram(t *testing.T) {
	r := analyzeSrc(t, `
		PUSH 0
		SLOAD
		PUSH 1
		ADD
		PUSH 0
		SWAP
		SSTORE
		STOP
	`)
	if !r.OK() {
		t.Fatalf("clean program flagged: %v", r.Issues)
	}
	if r.Instructions != 8 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	if r.HasLoop {
		t.Fatal("no loop in straight-line code")
	}
	if !r.Writes {
		t.Fatal("SSTORE must be flagged as a state write")
	}
	// The gas bound matches actual execution cost.
	want := gasCost[PUSH]*3 + gasCost[SLOAD] + gasCost[ADD] + gasCost[SWAP] + gasCost[SSTORE] + gasCost[STOP]
	if r.GasBound != want {
		t.Fatalf("GasBound = %d, want %d", r.GasBound, want)
	}
}

func TestAnalyzeReadOnlyProgram(t *testing.T) {
	r := analyzeSrc(t, "PUSH 0\nSLOAD\nRETURN")
	if !r.OK() || r.Writes {
		t.Fatalf("read-only query misanalyzed: %+v", r)
	}
}

func TestAnalyzeDetectsUnderflow(t *testing.T) {
	r := analyzeSrc(t, "ADD\nSTOP")
	if !hasIssue(r, IssueUnderflow) {
		t.Fatalf("underflow not detected: %v", r.Issues)
	}
	// Underflow on only one branch is still reachable → flagged.
	r = analyzeSrc(t, `
		PUSH 0
		ARG
		PUSH @bad
		JUMPI
		STOP
	bad:
		ADD
		STOP
	`)
	if !hasIssue(r, IssueUnderflow) {
		t.Fatalf("branch underflow not detected: %v", r.Issues)
	}
}

func TestAnalyzeDetectsMissingTerminator(t *testing.T) {
	r := analyzeSrc(t, "PUSH 1\nPUSH 2\nADD")
	if !hasIssue(r, IssueNoTerminator) {
		t.Fatalf("fall-off-end not detected: %v", r.Issues)
	}
}

func TestAnalyzeDetectsBadJumpTarget(t *testing.T) {
	// Jump into the middle of a PUSH immediate.
	code := MustAssemble("PUSH 2\nJUMP\nSTOP")
	r := Analyze(code)
	if !hasIssue(r, IssueBadJump) {
		t.Fatalf("mid-immediate jump not detected: %v", r.Issues)
	}
	// Dynamic jump (target computed, not a preceding PUSH).
	r = analyzeSrc(t, "PUSH 1\nPUSH 2\nADD\nJUMP")
	if !hasIssue(r, IssueBadJump) {
		t.Fatalf("dynamic jump not flagged: %v", r.Issues)
	}
}

func TestAnalyzeDetectsLoop(t *testing.T) {
	r := analyzeSrc(t, `
	loop:
		PUSH 0
		POP
		PUSH @loop
		JUMP
	`)
	if !r.HasLoop {
		t.Fatal("loop not detected")
	}
	if r.GasBound != 0 {
		t.Fatalf("looping code must have no static gas bound, got %d", r.GasBound)
	}
}

func TestAnalyzeBranchGasBoundTakesWorstCase(t *testing.T) {
	// if-else where one branch is much more expensive.
	r := analyzeSrc(t, `
		PUSH 0
		ARG
		PUSH @expensive
		JUMPI
		STOP
	expensive:
		PUSH 1
		PUSH 2
		SSTORE
		STOP
	`)
	if !r.OK() {
		t.Fatalf("issues: %v", r.Issues)
	}
	cheap := gasCost[PUSH]*2 + gasCost[ARG] + gasCost[JUMPI] + gasCost[STOP]
	expensive := gasCost[PUSH]*2 + gasCost[ARG] + gasCost[JUMPI] +
		gasCost[PUSH]*2 + gasCost[SSTORE] + gasCost[STOP]
	if r.GasBound != max(cheap, expensive) {
		t.Fatalf("GasBound = %d, want %d", r.GasBound, expensive)
	}
	// And the bound is a true upper bound: execute the expensive path.
	st := state.New()
	env := &Env{State: st, Args: []Word{WordFromUint64(1)}, GasLimit: 1 << 20}
	res, err := Execute(MustAssemble(`
		PUSH 0
		ARG
		PUSH @expensive
		JUMPI
		STOP
	expensive:
		PUSH 1
		PUSH 2
		SSTORE
		STOP
	`), env)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.GasUsed > r.GasBound {
		t.Fatalf("execution used %d, bound said %d", res.GasUsed, r.GasBound)
	}
}

func TestAnalyzeRawBytecodeIssues(t *testing.T) {
	tests := []struct {
		name string
		code []byte
		want IssueKind
	}{
		{name: "empty", code: nil, want: IssueNoTerminator},
		{name: "unknown opcode", code: []byte{250}, want: IssueUnknownOp},
		{name: "truncated push", code: []byte{byte(PUSH), 1, 2}, want: IssueTruncated},
		{name: "truncated pushw", code: append([]byte{byte(PUSHW)}, make([]byte, 5)...), want: IssueTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := Analyze(tt.code)
			if !hasIssue(r, tt.want) {
				t.Fatalf("want %s, got %v", tt.want, r.Issues)
			}
		})
	}
}

func TestAnalyzeBuiltinContractsPass(t *testing.T) {
	// The analyzer accepts the programs this repository itself uses.
	for name, src := range map[string]string{
		"counter": counterSrc,
		"query":   querySrc,
	} {
		r := Analyze(MustAssemble(src))
		if !r.OK() {
			t.Fatalf("%s flagged: %v", name, r.Issues)
		}
	}
}

func TestIssueString(t *testing.T) {
	s := Issue{Kind: IssueBadJump, Offset: 9, Detail: "x"}.String()
	if s == "" {
		t.Fatal("empty issue string")
	}
}
