package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dcsledger/internal/cryptoutil"
	"dcsledger/internal/state"
	"dcsledger/internal/types"
)

// Executor adapts the VM to the state package's Executor interface so
// TxDeploy / TxInvoke transactions run SVM bytecode. It also offers
// ConstantCall, the gas-free read-only query path of Section 2.5.
type Executor struct {
	// DeployGasPerByte prices contract code storage.
	DeployGasPerByte uint64
	// Now supplies block time to TIMESTAMP; set by the node per block.
	Now int64
	// Events accumulates events from executed transactions; the node
	// drains it per block.
	Events []Event
	// StrictDeploy rejects contracts that fail static analysis — the
	// pre-commitment validation the paper's Section 5.3 calls for.
	StrictDeploy bool
}

var _ state.Executor = (*Executor)(nil)

// ErrNoCode reports an invoke of an address without contract code.
var ErrNoCode = errors.New("vm: no contract code at address")

// NewExecutor returns an executor with the default gas schedule.
func NewExecutor() *Executor {
	return &Executor{DeployGasPerByte: 5}
}

// ErrRejectedByAnalysis reports a deploy refused by static analysis.
var ErrRejectedByAnalysis = errors.New("vm: contract rejected by static analysis")

// Deploy implements state.Executor: stores tx.Data as contract code at
// a deterministic address derived from the creator and nonce.
func (e *Executor) Deploy(st *state.State, tx *types.Transaction) (cryptoutil.Address, uint64, error) {
	gas := uint64(len(tx.Data)) * e.DeployGasPerByte
	if gas > tx.GasLimit {
		return cryptoutil.ZeroAddress, tx.GasLimit, fmt.Errorf("%w: deploy needs %d gas", ErrOutOfGas, gas)
	}
	if e.StrictDeploy {
		if report := Analyze(tx.Data); !report.OK() {
			return cryptoutil.ZeroAddress, gas, fmt.Errorf("%w: %s", ErrRejectedByAnalysis, report.Issues[0])
		}
	}
	addr := ContractAddress(tx.From, tx.Nonce)
	st.SetCode(addr, tx.Data)
	return addr, gas, nil
}

// Invoke implements state.Executor: runs the contract at tx.To with
// tx.Data as packed arguments.
func (e *Executor) Invoke(st *state.State, tx *types.Transaction) (uint64, error) {
	code := st.Code(tx.To)
	if len(code) == 0 {
		return 0, fmt.Errorf("%w: %s", ErrNoCode, tx.To.Short())
	}
	env := &Env{
		State:    st,
		Self:     tx.To,
		Caller:   tx.From,
		Value:    tx.Value,
		Time:     e.Now,
		Args:     UnpackArgs(tx.Data),
		GasLimit: tx.GasLimit,
	}
	res, err := Execute(code, env)
	if res != nil {
		e.Events = append(e.Events, res.Events...)
	}
	if err != nil {
		return gasUsed(res, tx.GasLimit), err
	}
	return res.GasUsed, nil
}

// ConstantCall runs a read-only query against a contract: no gas is
// charged and no state may be written (the paper's free say() call).
func (e *Executor) ConstantCall(st *state.State, self cryptoutil.Address, caller cryptoutil.Address, args []Word) (Word, error) {
	code := st.Code(self)
	if len(code) == 0 {
		return Word{}, fmt.Errorf("%w: %s", ErrNoCode, self.Short())
	}
	env := &Env{
		State:    st,
		Self:     self,
		Caller:   caller,
		Time:     e.Now,
		Args:     args,
		GasLimit: 1 << 32, // bounded only to terminate loops
		ReadOnly: true,
	}
	res, err := Execute(code, env)
	if err != nil {
		return Word{}, err
	}
	return res.Return, nil
}

// Fork implements state.ForkableExecutor: the fork shares the gas
// schedule, block time, and analysis policy but accumulates events in a
// private buffer, so speculation lanes can run concurrently without
// racing on Events.
func (e *Executor) Fork() state.Executor {
	return &Executor{
		DeployGasPerByte: e.DeployGasPerByte,
		Now:              e.Now,
		StrictDeploy:     e.StrictDeploy,
	}
}

// Absorb implements state.ForkableExecutor: appends a fork's events to
// the receiver's log. The parallel executor calls it in
// transaction-index order, so the merged log matches serial execution.
func (e *Executor) Absorb(fork state.Executor) {
	if f, ok := fork.(*Executor); ok && len(f.Events) > 0 {
		e.Events = append(e.Events, f.Events...)
		f.Events = nil
	}
}

var _ state.ForkableExecutor = (*Executor)(nil)

// DrainEvents returns and clears accumulated events.
func (e *Executor) DrainEvents() []Event {
	out := e.Events
	e.Events = nil
	return out
}

func gasUsed(res *Result, limit uint64) uint64 {
	if res == nil {
		return limit
	}
	return res.GasUsed
}

// ContractAddress derives the deterministic address of a contract
// created by (creator, nonce).
func ContractAddress(creator cryptoutil.Address, nonce uint64) cryptoutil.Address {
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], nonce)
	return cryptoutil.AddressFromHash(cryptoutil.HashBytes([]byte("vm/contract"), creator[:], b8[:]))
}

// PackArgs encodes words as transaction input data.
func PackArgs(args ...Word) []byte {
	out := make([]byte, 0, len(args)*32)
	for _, a := range args {
		out = append(out, a[:]...)
	}
	return out
}

// UnpackArgs decodes transaction input data into words; a trailing
// partial word is zero-padded.
func UnpackArgs(data []byte) []Word {
	var out []Word
	for i := 0; i < len(data); i += 32 {
		var w Word
		copy(w[:], data[i:])
		out = append(out, w)
	}
	return out
}
