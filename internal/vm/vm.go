// Package vm implements the Contract layer's execution engine: a
// 256-bit-word stack virtual machine ("SVM") with gas metering, contract
// storage, value transfer, and events. It plays the role the EVM plays
// in the paper's Ethereum examples (Section 2.5): executing a
// transaction costs gas paid to the block producer, while constant
// (read-only) calls — like the paper's say() — are free and run without
// a transaction.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"dcsledger/internal/cryptoutil"
)

// Execution errors, matchable with errors.Is.
var (
	ErrOutOfGas       = errors.New("vm: out of gas")
	ErrStackUnderflow = errors.New("vm: stack underflow")
	ErrStackOverflow  = errors.New("vm: stack overflow")
	ErrBadJump        = errors.New("vm: jump to invalid destination")
	ErrBadOpcode      = errors.New("vm: unknown opcode")
	ErrReverted       = errors.New("vm: execution reverted")
	ErrWriteProtected = errors.New("vm: state write in constant call")
	ErrDivByZero      = errors.New("vm: division by zero")
	ErrTruncatedCode  = errors.New("vm: truncated immediate operand")
)

// Word is the VM's 256-bit machine word.
type Word [32]byte

// WordFromUint64 builds a word from an integer.
func WordFromUint64(v uint64) Word {
	var w Word
	binary.BigEndian.PutUint64(w[24:], v)
	return w
}

// WordFromAddress left-pads an address into a word.
func WordFromAddress(a cryptoutil.Address) Word {
	var w Word
	copy(w[12:], a[:])
	return w
}

// Uint64 truncates the word to its low 64 bits.
func (w Word) Uint64() uint64 { return binary.BigEndian.Uint64(w[24:]) }

// Address extracts the address embedded by WordFromAddress.
func (w Word) Address() cryptoutil.Address {
	var a cryptoutil.Address
	copy(a[:], w[12:])
	return a
}

// IsZero reports whether all bits are clear.
func (w Word) IsZero() bool { return w == Word{} }

func (w Word) big() *big.Int { return new(big.Int).SetBytes(w[:]) }

func wordFromBig(v *big.Int) Word {
	var w Word
	v.Mod(v, two256)
	v.FillBytes(w[:])
	return w
}

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

// Op is a bytecode opcode.
type Op byte

// Opcodes. PUSH carries an 8-byte immediate; PUSHW a 32-byte one.
const (
	STOP Op = iota + 1
	PUSH
	PUSHW
	POP
	DUP
	SWAP
	ADD
	SUB
	MUL
	DIV
	MOD
	LT
	GT
	EQ
	ISZERO
	AND
	OR
	XOR
	NOT
	JUMP
	JUMPI
	SLOAD
	SSTORE
	CALLER
	ADDRESS
	CALLVALUE
	BALANCE
	TIMESTAMP
	ARG
	ARGLEN
	TRANSFER
	LOG
	RETURN
	REVERT
)

var opNames = map[Op]string{
	STOP: "STOP", PUSH: "PUSH", PUSHW: "PUSHW", POP: "POP", DUP: "DUP",
	SWAP: "SWAP", ADD: "ADD", SUB: "SUB", MUL: "MUL", DIV: "DIV",
	MOD: "MOD", LT: "LT", GT: "GT", EQ: "EQ", ISZERO: "ISZERO",
	AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT", JUMP: "JUMP",
	JUMPI: "JUMPI", SLOAD: "SLOAD", SSTORE: "SSTORE", CALLER: "CALLER",
	ADDRESS: "ADDRESS", CALLVALUE: "CALLVALUE", BALANCE: "BALANCE",
	TIMESTAMP: "TIMESTAMP", ARG: "ARG", ARGLEN: "ARGLEN",
	TRANSFER: "TRANSFER", LOG: "LOG", RETURN: "RETURN", REVERT: "REVERT",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// gasCost is the per-opcode gas schedule.
var gasCost = map[Op]uint64{
	STOP: 0, PUSH: 3, PUSHW: 3, POP: 2, DUP: 3, SWAP: 3,
	ADD: 3, SUB: 3, MUL: 5, DIV: 5, MOD: 5,
	LT: 3, GT: 3, EQ: 3, ISZERO: 3, AND: 3, OR: 3, XOR: 3, NOT: 3,
	JUMP: 8, JUMPI: 10,
	SLOAD: 50, SSTORE: 200,
	CALLER: 2, ADDRESS: 2, CALLVALUE: 2, BALANCE: 20, TIMESTAMP: 2,
	ARG: 3, ARGLEN: 2,
	TRANSFER: 100, LOG: 30,
	RETURN: 0, REVERT: 0,
}

// StateAccess is the slice of world state the VM touches. The state
// package's State satisfies it.
type StateAccess interface {
	Storage(addr cryptoutil.Address, key []byte) []byte
	SetStorage(addr cryptoutil.Address, key, value []byte)
	Balance(addr cryptoutil.Address) uint64
	Debit(addr cryptoutil.Address, amount uint64) error
	Credit(addr cryptoutil.Address, amount uint64)
}

// Event is an emitted log entry.
type Event struct {
	Contract cryptoutil.Address `json:"contract"`
	Topic    Word               `json:"topic"`
	Value    Word               `json:"value"`
}

// Env is the execution environment of one call.
type Env struct {
	State    StateAccess
	Self     cryptoutil.Address
	Caller   cryptoutil.Address
	Value    uint64
	Time     int64
	Args     []Word
	GasLimit uint64
	// ReadOnly forbids SSTORE/TRANSFER/LOG (constant calls).
	ReadOnly bool
}

// Result is the outcome of one execution.
type Result struct {
	Return  Word
	HasRet  bool
	GasUsed uint64
	Events  []Event
}

const maxStack = 1024

// Execute runs bytecode in the given environment.
func Execute(code []byte, env *Env) (*Result, error) {
	res := &Result{}
	var stack []Word
	pc := 0

	pop := func() (Word, error) {
		if len(stack) == 0 {
			return Word{}, fmt.Errorf("%w at pc %d", ErrStackUnderflow, pc)
		}
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return w, nil
	}
	pop2 := func() (Word, Word, error) {
		b, err := pop()
		if err != nil {
			return Word{}, Word{}, err
		}
		a, err := pop()
		if err != nil {
			return Word{}, Word{}, err
		}
		return a, b, nil
	}
	push := func(w Word) error {
		if len(stack) >= maxStack {
			return fmt.Errorf("%w at pc %d", ErrStackOverflow, pc)
		}
		stack = append(stack, w)
		return nil
	}

	for pc < len(code) {
		op := Op(code[pc])
		cost, known := gasCost[op]
		if !known {
			return res, fmt.Errorf("%w: %d at pc %d", ErrBadOpcode, code[pc], pc)
		}
		if res.GasUsed+cost > env.GasLimit {
			res.GasUsed = env.GasLimit
			return res, fmt.Errorf("%w: need %d at pc %d (%s)", ErrOutOfGas, res.GasUsed+cost, pc, op)
		}
		res.GasUsed += cost
		pc++

		switch op {
		case STOP:
			return res, nil
		case PUSH:
			if pc+8 > len(code) {
				return res, ErrTruncatedCode
			}
			if err := push(WordFromUint64(binary.BigEndian.Uint64(code[pc : pc+8]))); err != nil {
				return res, err
			}
			pc += 8
		case PUSHW:
			if pc+32 > len(code) {
				return res, ErrTruncatedCode
			}
			var w Word
			copy(w[:], code[pc:pc+32])
			if err := push(w); err != nil {
				return res, err
			}
			pc += 32
		case POP:
			if _, err := pop(); err != nil {
				return res, err
			}
		case DUP:
			w, err := pop()
			if err != nil {
				return res, err
			}
			if err := push(w); err != nil {
				return res, err
			}
			if err := push(w); err != nil {
				return res, err
			}
		case SWAP:
			a, b, err := pop2()
			if err != nil {
				return res, err
			}
			if err := push(b); err != nil {
				return res, err
			}
			if err := push(a); err != nil {
				return res, err
			}
		case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR:
			a, b, err := pop2()
			if err != nil {
				return res, err
			}
			w, err := arith(op, a, b)
			if err != nil {
				return res, fmt.Errorf("%w at pc %d", err, pc-1)
			}
			if err := push(w); err != nil {
				return res, err
			}
		case LT, GT, EQ:
			a, b, err := pop2()
			if err != nil {
				return res, err
			}
			cmp := a.big().Cmp(b.big())
			truth := (op == LT && cmp < 0) || (op == GT && cmp > 0) || (op == EQ && cmp == 0)
			if err := push(boolWord(truth)); err != nil {
				return res, err
			}
		case ISZERO:
			a, err := pop()
			if err != nil {
				return res, err
			}
			if err := push(boolWord(a.IsZero())); err != nil {
				return res, err
			}
		case NOT:
			a, err := pop()
			if err != nil {
				return res, err
			}
			for i := range a {
				a[i] = ^a[i]
			}
			if err := push(a); err != nil {
				return res, err
			}
		case JUMP, JUMPI:
			dest, err := pop()
			if err != nil {
				return res, err
			}
			taken := true
			if op == JUMPI {
				cond, err := pop()
				if err != nil {
					return res, err
				}
				taken = !cond.IsZero()
			}
			if taken {
				d := dest.Uint64()
				if d >= uint64(len(code)) {
					return res, fmt.Errorf("%w: %d", ErrBadJump, d)
				}
				pc = int(d)
			}
		case SLOAD:
			k, err := pop()
			if err != nil {
				return res, err
			}
			var w Word
			copy(w[:], env.State.Storage(env.Self, k[:]))
			if err := push(w); err != nil {
				return res, err
			}
		case SSTORE:
			k, v, err := pop2()
			if err != nil {
				return res, err
			}
			if env.ReadOnly {
				return res, ErrWriteProtected
			}
			env.State.SetStorage(env.Self, k[:], v[:])
		case CALLER:
			if err := push(WordFromAddress(env.Caller)); err != nil {
				return res, err
			}
		case ADDRESS:
			if err := push(WordFromAddress(env.Self)); err != nil {
				return res, err
			}
		case CALLVALUE:
			if err := push(WordFromUint64(env.Value)); err != nil {
				return res, err
			}
		case BALANCE:
			a, err := pop()
			if err != nil {
				return res, err
			}
			if err := push(WordFromUint64(env.State.Balance(a.Address()))); err != nil {
				return res, err
			}
		case TIMESTAMP:
			if err := push(WordFromUint64(uint64(env.Time))); err != nil {
				return res, err
			}
		case ARG:
			i, err := pop()
			if err != nil {
				return res, err
			}
			var w Word
			if idx := i.Uint64(); idx < uint64(len(env.Args)) {
				w = env.Args[idx]
			}
			if err := push(w); err != nil {
				return res, err
			}
		case ARGLEN:
			if err := push(WordFromUint64(uint64(len(env.Args)))); err != nil {
				return res, err
			}
		case TRANSFER:
			to, amount, err := pop2()
			if err != nil {
				return res, err
			}
			if env.ReadOnly {
				return res, ErrWriteProtected
			}
			amt := amount.Uint64()
			if err := env.State.Debit(env.Self, amt); err != nil {
				return res, fmt.Errorf("vm: transfer: %w", err)
			}
			env.State.Credit(to.Address(), amt)
		case LOG:
			topic, value, err := pop2()
			if err != nil {
				return res, err
			}
			if env.ReadOnly {
				return res, ErrWriteProtected
			}
			res.Events = append(res.Events, Event{Contract: env.Self, Topic: topic, Value: value})
		case RETURN:
			w, err := pop()
			if err != nil {
				return res, err
			}
			res.Return = w
			res.HasRet = true
			return res, nil
		case REVERT:
			return res, ErrReverted
		}
	}
	return res, nil
}

func arith(op Op, a, b Word) (Word, error) {
	x, y := a.big(), b.big()
	switch op {
	case ADD:
		return wordFromBig(x.Add(x, y)), nil
	case SUB:
		return wordFromBig(x.Sub(x, y)), nil
	case MUL:
		return wordFromBig(x.Mul(x, y)), nil
	case DIV:
		if y.Sign() == 0 {
			return Word{}, ErrDivByZero
		}
		return wordFromBig(x.Div(x, y)), nil
	case MOD:
		if y.Sign() == 0 {
			return Word{}, ErrDivByZero
		}
		return wordFromBig(x.Mod(x, y)), nil
	case AND:
		return wordFromBig(x.And(x, y)), nil
	case OR:
		return wordFromBig(x.Or(x, y)), nil
	case XOR:
		return wordFromBig(x.Xor(x, y)), nil
	default:
		return Word{}, fmt.Errorf("%w: %s", ErrBadOpcode, op)
	}
}

func boolWord(b bool) Word {
	if b {
		return WordFromUint64(1)
	}
	return Word{}
}
