// Package channel implements multi-channel privacy domains (Section
// 5.3, Hyperledger Fabric's channels [37]): each channel is a separate
// hash-chained ledger visible only to its members, so confidential
// records provably never leave the declared boundary while integrity
// stays verifiable.
package channel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"dcsledger/internal/cryptoutil"
)

// Channel errors, matchable with errors.Is.
var (
	ErrNotMember  = errors.New("channel: caller is not a member")
	ErrExists     = errors.New("channel: channel already exists")
	ErrNotFound   = errors.New("channel: no such channel")
	ErrCorrupted  = errors.New("channel: hash chain broken")
	ErrNoMembers  = errors.New("channel: channel needs at least one member")
	ErrDuplicated = errors.New("channel: member listed twice")
)

// Record is one committed entry of a channel ledger; Prev chains it to
// its predecessor so tampering is detectable.
type Record struct {
	Seq    uint64             `json:"seq"`
	Author cryptoutil.Address `json:"author"`
	Data   []byte             `json:"data"`
	Time   int64              `json:"time"`
	Prev   cryptoutil.Hash    `json:"prev"`
}

// Hash returns the record's chained digest.
func (r *Record) Hash() cryptoutil.Hash {
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], r.Seq)
	var tm [8]byte
	binary.BigEndian.PutUint64(tm[:], uint64(r.Time))
	return cryptoutil.HashBytes([]byte("channel/record"), seq[:], r.Author[:], r.Data, tm[:], r.Prev[:])
}

// Channel is one privacy domain: a membership list plus its private
// ledger.
type Channel struct {
	mu      sync.RWMutex
	name    string
	members map[cryptoutil.Address]bool
	records []Record
	tip     cryptoutil.Hash
}

// Name returns the channel name.
func (c *Channel) Name() string { return c.name }

// IsMember reports membership.
func (c *Channel) IsMember(a cryptoutil.Address) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.members[a]
}

// Append commits a record authored by a member.
func (c *Channel) Append(author cryptoutil.Address, data []byte, now int64) (Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.members[author] {
		return Record{}, fmt.Errorf("%w: %s in %q", ErrNotMember, author.Short(), c.name)
	}
	rec := Record{
		Seq:    uint64(len(c.records)),
		Author: author,
		Data:   append([]byte(nil), data...),
		Time:   now,
		Prev:   c.tip,
	}
	c.records = append(c.records, rec)
	c.tip = rec.Hash()
	return rec, nil
}

// Read returns the full ledger — members only: the boundary guarantee
// the paper's industrial use cases require.
func (c *Channel) Read(reader cryptoutil.Address) ([]Record, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.members[reader] {
		return nil, fmt.Errorf("%w: %s in %q", ErrNotMember, reader.Short(), c.name)
	}
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out, nil
}

// Len returns the number of records (membership not required: the
// count leaks no payload).
func (c *Channel) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.records)
}

// Verify re-checks the hash chain, detecting tampering with any stored
// record.
func (c *Channel) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var prev cryptoutil.Hash
	for i := range c.records {
		r := c.records[i]
		if r.Prev != prev || r.Seq != uint64(i) {
			return fmt.Errorf("%w at record %d", ErrCorrupted, i)
		}
		prev = r.Hash()
	}
	if prev != c.tip {
		return fmt.Errorf("%w: tip mismatch", ErrCorrupted)
	}
	return nil
}

// tamper is a test hook: overwrite a record in place.
func (c *Channel) tamper(i int, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.records) {
		c.records[i].Data = data
	}
}

// Hub manages a peer's channels.
type Hub struct {
	mu       sync.RWMutex
	channels map[string]*Channel
}

// NewHub returns an empty channel hub.
func NewHub() *Hub {
	return &Hub{channels: make(map[string]*Channel)}
}

// Create provisions a channel with a fixed membership.
func (h *Hub) Create(name string, members []cryptoutil.Address) (*Channel, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	set := make(map[cryptoutil.Address]bool, len(members))
	for _, m := range members {
		if set[m] {
			return nil, fmt.Errorf("%w: %s", ErrDuplicated, m.Short())
		}
		set[m] = true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.channels[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	c := &Channel{name: name, members: set}
	h.channels[name] = c
	return c, nil
}

// Get fetches a channel by name.
func (h *Hub) Get(name string) (*Channel, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.channels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return c, nil
}

// Names lists all channels this peer hosts.
func (h *Hub) Names() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.channels))
	for n := range h.channels {
		out = append(out, n)
	}
	return out
}
